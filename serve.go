package dnhunter

// Streaming service mode at the public API surface: Engine.Serve is
// Engine.Run for unbounded input. See internal/core's serve.go for the
// mechanics (windowed flow store, overload shedding, checkpoint/restore,
// graceful drain) and docs/OPERATIONS.md for running it in production.

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/flowdb"
	"repro/internal/netio"
)

type (
	// ServeConfig tunes streaming mode: window width, flush hook, overload
	// shedding, checkpoint path, drain timeout.
	ServeConfig = core.ServeConfig
	// ServeReport is the outcome of one graceful Serve.
	ServeReport = core.ServeReport
	// ServeMetrics is the live, concurrently readable state of a serving
	// engine (packets, flows, drops, windows, ring depths).
	ServeMetrics = core.ServeMetrics
	// Server is a streaming instance of one engine configuration.
	Server = core.Server
	// ShedShard is one shard's overload drop counters.
	ShedShard = core.ShedShard
	// RestartPolicy configures serve-mode source supervision
	// (ServeConfig.Restart): transient-vs-fatal classification, the restart
	// error budget, and seeded exponential backoff.
	RestartPolicy = core.RestartPolicy
	// Window is one completed flow-store partition handed to
	// ServeConfig.FlushWindow; its DB is valid only during the call.
	Window = flowdb.Window
	// Packet is one captured frame (timestamp + bytes).
	Packet = netio.Packet
	// LoopSource replays an in-memory trace for N passes (or forever) —
	// the run-forever input for soaks and demos.
	LoopSource = netio.LoopSource
	// PacedSource throttles any source to its capture timeline.
	PacedSource = netio.PacedSource
)

// NewLoopSource wraps packets in a LoopSource; see netio.NewLoopSource.
func NewLoopSource(packets []Packet, period time.Duration, passes int) *LoopSource {
	return netio.NewLoopSource(packets, period, passes)
}

// NewPacedSource wraps src in a PacedSource; see netio.NewPacedSource.
func NewPacedSource(src PacketSource, speedup float64) *PacedSource {
	return netio.NewPacedSource(src, speedup)
}

// DefaultClassify is the default transient-vs-fatal error split used by
// RestartPolicy when Classify is nil; see core.DefaultClassify.
func DefaultClassify(err error) bool { return core.DefaultClassify(err) }

// Server builds a streaming server around this engine's configuration.
// Use it when the caller needs the live Metrics view (e.g. to mount the
// HTTP endpoint) before serving; otherwise Serve is the one-call form.
func (e *Engine) Server(cfg ServeConfig) *Server {
	return core.NewServer(e.opts.cfg, cfg)
}

// Serve streams src through the pipeline until ctx is cancelled, then
// drains gracefully: in-flight flows are flushed through the sink and the
// final window, and — with a CheckpointPath — resolver state is written
// for the next run. Unlike Run, Serve bounds memory: finished flows pass
// through rolling windows (ServeConfig.Window wide) handed to FlushWindow
// instead of accumulating in a Result.DB.
func (e *Engine) Serve(ctx context.Context, src PacketSource, cfg ServeConfig) (*ServeReport, error) {
	return e.Server(cfg).Serve(ctx, src)
}
