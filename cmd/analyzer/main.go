// Command analyzer runs the off-line analytics (paper §4) over a labeled
// flow CSV produced by cmd/dnhunter.
//
// Usage:
//
//	analyzer -flows flows.csv -orgs trace.orgs spatial zynga.com
//	analyzer -flows flows.csv -orgs trace.orgs content amazon
//	analyzer -flows flows.csv tags 25
//	analyzer -flows flows.csv -orgs trace.orgs tree linkedin.com
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/analytics"
	"repro/internal/flowdb"
	"repro/internal/orgdb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyzer: ")
	flowsPath := flag.String("flows", "flows.csv", "labeled flow CSV from cmd/dnhunter")
	orgsPath := flag.String("orgs", "", "IP->organization table (needed for spatial/content/tree)")
	topK := flag.Int("k", 10, "how many results to print")
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: analyzer [flags] {spatial|content|tags|tree} <target>")
		os.Exit(2)
	}
	verb, target := args[0], args[1]

	f, err := os.Open(*flowsPath)
	if err != nil {
		log.Fatal(err)
	}
	db, err := flowdb.ReadCSV(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	var odb *orgdb.DB
	if *orgsPath != "" {
		g, err := os.Open(*orgsPath)
		if err != nil {
			log.Fatal(err)
		}
		odb, err = orgdb.ReadText(g)
		g.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	needOrgs := func() {
		if odb == nil {
			log.Fatal("this query needs -orgs")
		}
	}

	switch verb {
	case "spatial":
		// Algorithm 2: who serves this organization?
		needOrgs()
		res := analytics.SpatialDiscovery(db, odb, target)
		fmt.Printf("%s: %d flows across %d hosting orgs\n", res.SLD, res.TotalFlows, len(res.Hosts))
		for _, h := range res.Hosts {
			fmt.Printf("  %-14s %4d servers  %6d flows (%4.1f%%)  %d FQDNs\n",
				h.Org, h.Servers, h.Flows, 100*h.FlowShare, len(h.FQDNs))
		}
	case "content":
		// Algorithm 3: what does this hosting org serve?
		needOrgs()
		top := analytics.TopDomainsOnOrg(db, odb, target, *topK)
		fmt.Printf("top %d domains hosted on %s:\n", len(top), target)
		for i, c := range top {
			fmt.Printf("  %2d. %-28s %6d flows (%4.1f%%)\n", i+1, c.Name, c.Flows, 100*c.Share)
		}
	case "tags":
		// Algorithm 4: what runs on this port?
		port, err := strconv.Atoi(target)
		if err != nil || port < 0 || port > 65535 {
			log.Fatalf("bad port %q", target)
		}
		tags := analytics.ExtractTags(db, uint16(port), *topK)
		fmt.Printf("port %d: %s\n", port, analytics.FormatTags(tags))
	case "tree":
		// Figs. 7/8: the organization's domain-structure tree.
		needOrgs()
		tree := analytics.DomainTree(db, odb, target)
		fmt.Print(tree.Render())
	default:
		log.Fatalf("unknown query %q", verb)
	}
}
