// Command dnlint runs the project's static-analysis suite (hotalloc,
// maprange, slabref, atomicfield — see internal/lint).
//
// Standalone:
//
//	go run ./cmd/dnlint ./...
//	go run ./cmd/dnlint -list-directives ./...   # suppression inventory
//
// As a vet tool (unit-checker protocol: -V=full, -flags, and per-package
// .cfg files, so results integrate with go vet's build cache):
//
//	go build -o dnlint ./cmd/dnlint
//	go vet -vettool=$(pwd)/dnlint ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dnlint: ")
	args := os.Args[1:]

	// go vet tool protocol, in the order the go command probes it.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V=") {
		printVersion(args[0])
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0])
		return
	}

	listOnly := false
	if len(args) > 0 && args[0] == "-list-directives" {
		listOnly = true
		args = args[1:]
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	runStandalone(listOnly, args)
}

// printVersion implements -V=full: the go command hashes this line into
// its build cache key, so it must change whenever the binary does.
func printVersion(arg string) {
	if arg != "-V=full" {
		log.Fatalf("unsupported flag %q", arg)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel buildID=%02x\n", exe, h.Sum(nil))
}

// diag is one finding, position-resolved for sorting and printing.
type diag struct {
	pos      token.Position
	analyzer string
	message  string
}

func runPackage(pkg *analysis.Package) []diag {
	var diags []diag
	for _, a := range lint.Analyzers {
		report := func(d analysis.Diagnostic) {
			diags = append(diags, diag{pkg.Fset.Position(d.Pos), a.Name, d.Message})
		}
		if err := a.Run(pkg.Pass(a, report)); err != nil {
			log.Fatalf("%s: %s: %v", a.Name, pkg.Path, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i].pos, diags[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

func printDiags(w io.Writer, diags []diag) {
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s [%s]\n", d.pos, d.message, d.analyzer)
	}
}

// runStandalone loads packages through `go list -export` and analyzes
// them all in one process.
func runStandalone(listOnly bool, patterns []string) {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		log.Fatal(err)
	}
	if listOnly {
		for _, pkg := range pkgs {
			for _, d := range lint.ListDirectives(pkg) {
				fmt.Printf("%s:%d: dnhunter:%s %s\n", d.Pos.Filename, d.Pos.Line, d.Name, d.Reason)
			}
		}
		return
	}
	exit := 0
	for _, pkg := range pkgs {
		diags := runPackage(pkg)
		printDiags(os.Stdout, diags)
		if len(diags) > 0 {
			exit = 1
		}
	}
	os.Exit(exit)
}

// vetConfig is the .cfg file the go command hands each vet tool
// invocation (one compilation unit per call).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one compilation unit under go vet. Diagnostics go to
// stderr and flip the exit status; the (empty — dnlint passes no facts
// between packages) vetx output must exist for the go command's cache.
func runUnit(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgFile, err)
	}
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte("dnlint\n"), 0o666); err != nil {
				log.Fatal(err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}
	imp := analysis.NewExportImporter(fset, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}, cfg.ImportMap)
	info := analysis.NewInfo()
	sizes := types.SizesFor(cfg.Compiler, runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	conf := types.Config{Importer: imp, Sizes: sizes}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		log.Fatalf("type-checking %s: %v", cfg.ImportPath, err)
	}

	pkg := &analysis.Package{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Sizes: sizes,
	}
	diags := runPackage(pkg)
	printDiags(os.Stderr, diags)
	writeVetx()
	if len(diags) > 0 {
		os.Exit(1)
	}
}
