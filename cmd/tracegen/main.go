// Command tracegen synthesizes one of the paper's named captures and
// writes it as a pcap file plus sidecars: the IP→organization table (the
// MaxMind substitute), the synthetic PTR zone, and the ground-truth flow
// labels.
//
// Usage:
//
//	tracegen -name EU1-FTTH -scale 0.5 -seed 1 -out trace
//
// writes trace.pcap, trace.orgs, trace.ptr, trace.truth.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/netio"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	name := flag.String("name", synth.NameEU1FTTH, "scenario: US-3G, EU2-ADSL, EU1-ADSL1, EU1-ADSL2, EU1-FTTH, quick")
	scale := flag.Float64("scale", 1.0, "client-count scale factor")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("out", "trace", "output file prefix")
	flag.Parse()

	var sc synth.Scenario
	if *name == "quick" {
		sc = synth.QuickScenario(*seed)
	} else {
		sc = synth.NamedScenario(*name, *scale, *seed)
	}
	tr := synth.Generate(sc)

	if err := writePcap(*out+".pcap", tr); err != nil {
		log.Fatal(err)
	}
	if err := writeOrgs(*out+".orgs", tr); err != nil {
		log.Fatal(err)
	}
	if err := writePTR(*out+".ptr", tr); err != nil {
		log.Fatal(err)
	}
	if err := writeTruth(*out+".truth", tr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d packets, %d flows, %d DNS responses -> %s.{pcap,orgs,ptr,truth}\n",
		sc.Name, len(tr.Packets), tr.Flows, tr.DNSResponses, *out)
}

func writePcap(path string, tr *synth.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := netio.NewWriter(f)
	for _, p := range tr.Packets {
		if err := w.WritePacket(p); err != nil {
			return err
		}
	}
	return w.Flush()
}

func writeOrgs(path string, tr *synth.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.OrgDB.WriteText(f)
}

func writePTR(path string, tr *synth.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	keys := make([]string, 0, len(tr.PTRZone))
	byAddr := make(map[string]string, len(tr.PTRZone))
	for addr, ptr := range tr.PTRZone {
		keys = append(keys, addr.String())
		byAddr[addr.String()] = ptr
	}
	sort.Strings(keys)
	for _, k := range keys {
		ptr := byAddr[k]
		if ptr == "" {
			ptr = "-"
		}
		fmt.Fprintf(w, "%s %s\n", k, ptr)
	}
	return w.Flush()
}

func writeTruth(path string, tr *synth.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	lines := make([]string, 0, len(tr.Truth))
	//dnhunter:unordered-ok lines are formatted per entry, then sorted before writing
	for key, fqdn := range tr.Truth {
		if fqdn == "" {
			fqdn = "-"
		}
		lines = append(lines, fmt.Sprintf("%s:%d %s:%d %s",
			key.ClientIP, key.ClientPort, key.ServerIP, key.ServerPort, fqdn))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	return w.Flush()
}
