// Command experiments regenerates every table and figure of the paper's
// evaluation on synthetic traces and prints them in paper-style form.
//
// Usage:
//
//	experiments [-scale 1.0] [-seed 1] [-shards 1] [-live-days 18] [-only T2,F4,...]
//
// Experiment ids: T1–T9 (tables), F3–F14 (figures), XV (cross-vantage
// multi-source analysis over the TRIVANTAGE scenario), SK (sketch-based
// streaming analytics vs their exact references), A (ablations).
// -shards parallelizes the pipeline runs; results are identical at any
// shard count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "client-count scale factor (1.0 ≈ a few hundred clients)")
	seed := flag.Uint64("seed", 1, "random seed; same seed reproduces identical traces")
	shards := flag.Int("shards", 1, "parallel pipeline shards (-1 = one per CPU)")
	liveDays := flag.Int("live-days", 18, "event-mode live window in days (Figs. 6/10/11, Table 8)")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	flag.Parse()

	s := experiments.NewSuite(*scale, *seed)
	s.Shards = *shards
	s.LiveDays = *liveDays

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if id != "" {
			want[id] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }
	section := func(id, out string) {
		fmt.Printf("== %s ==\n%s\n", id, out)
	}

	start := time.Now()
	if run("T1") {
		section("T1", s.Table1())
	}
	if run("T2") {
		section("T2", s.Table2())
	}
	if run("T3") {
		out, _ := s.Table3()
		section("T3", out)
	}
	if run("T4") {
		out, _ := s.Table4()
		section("T4", out)
	}
	if run("T5") {
		section("T5", s.Table5())
	}
	if run("T6") {
		section("T6", s.Table6())
	}
	if run("T7") {
		section("T7", s.Table7())
	}
	if run("T8") {
		out, _ := s.Table8()
		section("T8", out)
	}
	if run("T9") {
		section("T9", s.Table9())
	}
	if run("F3") {
		out, _, _ := s.Figure3()
		section("F3", out)
	}
	if run("F4") {
		out, _ := s.Figure4()
		section("F4", out)
	}
	if run("F5") {
		out, _ := s.Figure5()
		section("F5", out)
	}
	if run("F6") {
		out, _ := s.Figure6()
		section("F6", out)
	}
	if run("F7") {
		out, _ := s.Figure7()
		section("F7", out)
	}
	if run("F8") {
		out, _ := s.Figure8()
		section("F8", out)
	}
	if run("F9") {
		out, _ := s.Figure9()
		section("F9", out)
	}
	if run("F10") {
		out, _ := s.Figure10()
		section("F10", out)
	}
	if run("F11") {
		out, _ := s.Figure11()
		section("F11", out)
	}
	if run("F12") || run("F13") {
		out, _ := s.Figure12And13()
		section("F12/F13", out)
	}
	if run("F14") {
		out, _ := s.Figure14()
		section("F14", out)
	}
	if run("XV") {
		out, _ := s.CrossVantage()
		section("XV", out)
	}
	if run("SK") {
		out, ok := s.SketchVsExact()
		section("SK", out)
		if !ok {
			fmt.Fprintln(os.Stderr, "SK: sketch results outside documented error bounds")
			os.Exit(1)
		}
	}
	if run("A") {
		out, _ := s.AblationClistSize([]int{64, 1024, 16384, 1 << 18})
		section("A:clist", out)
		section("A:mapkind", s.AblationMapKind())
		abl, _, _ := s.AblationMultiLabel()
		section("A:multilabel", abl)
		section("A:tagscore", s.AblationTagScore(25))
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}
