// Command benchcheck guards the engine's allocation budget in CI: it
// parses `go test -bench -benchmem` output and compares each benchmark's
// allocs/op against a checked-in baseline, failing when a benchmark
// regresses by more than the tolerance.
//
// Usage:
//
//	go test -bench EngineEU1FTTH -benchmem -run '^$' -count 3 | tee bench.txt
//	benchcheck -baseline bench_baseline.json -in bench.txt
//	benchcheck -baseline bench_baseline.json -in bench.txt -update
//
// With -count > 1 the minimum allocs/op across runs is compared (allocation
// counts are stable; the minimum discards one-off runtime noise like pool
// refills after a GC). Benchmarks absent from the baseline are reported but
// not enforced: sharded variants allocate differently per GOMAXPROCS, so
// the baseline pins only the deterministic single-threaded paths. -update
// rewrites the baseline from the observed numbers for exactly the
// benchmarks it already tracks.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Baseline is the checked-in allocation budget.
type Baseline struct {
	// TolerancePct is the allowed allocs/op regression in percent.
	TolerancePct float64 `json:"tolerance_pct"`
	// Benchmarks maps the benchmark name (without the -GOMAXPROCS suffix)
	// to its budget.
	Benchmarks map[string]Budget `json:"benchmarks"`
}

// Budget is one benchmark's pinned numbers.
type Budget struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
//
//	BenchmarkEngineEU1FTTH/shards-1-4  5  5518661 ns/op  310 MB/s  10702 pkts/op  2166804 B/op  7398 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcheck: ")
	baselinePath := flag.String("baseline", "bench_baseline.json", "baseline JSON path")
	in := flag.String("in", "", "benchmark output file (default stdin)")
	tolerance := flag.Float64("tolerance", 0, "override baseline tolerance_pct when > 0")
	update := flag.Bool("update", false, "rewrite the baseline from the observed numbers")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("parsing %s: %v", *baselinePath, err)
	}
	tol := base.TolerancePct
	if *tolerance > 0 {
		tol = *tolerance
	}
	if tol <= 0 {
		tol = 10
	}

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	observed, err := parseBench(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(observed) == 0 {
		log.Fatal("no benchmark result lines found in input")
	}

	if *update {
		for name := range base.Benchmarks {
			got, ok := observed[name]
			if !ok {
				log.Fatalf("baseline benchmark %q missing from input", name)
			}
			base.Benchmarks[name] = Budget{AllocsPerOp: got}
		}
		enc, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		enc = append(enc, '\n')
		if err := os.WriteFile(*baselinePath, enc, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("updated %s", *baselinePath)
		return
	}

	failed := false
	for name, budget := range base.Benchmarks {
		got, ok := observed[name]
		if !ok {
			log.Printf("FAIL %s: tracked by baseline but missing from input", name)
			failed = true
			continue
		}
		limit := budget.AllocsPerOp * (1 + tol/100)
		switch {
		case got > limit:
			log.Printf("FAIL %s: %.0f allocs/op exceeds baseline %.0f by more than %g%%",
				name, got, budget.AllocsPerOp, tol)
			failed = true
		case got < budget.AllocsPerOp*(1-tol/100):
			// An improvement beyond tolerance deserves a baseline refresh so
			// the ratchet keeps holding; flag it without failing.
			log.Printf("ok   %s: %.0f allocs/op (baseline %.0f — improved, consider -update)",
				name, got, budget.AllocsPerOp)
		default:
			log.Printf("ok   %s: %.0f allocs/op (baseline %.0f)", name, got, budget.AllocsPerOp)
		}
	}
	for name, got := range observed {
		if _, ok := base.Benchmarks[name]; !ok {
			log.Printf("skip %s: %.0f allocs/op (not tracked)", name, got)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parseBench extracts min allocs/op per benchmark name (normalized without
// the trailing -GOMAXPROCS) from `go test -bench -benchmem` output.
func parseBench(f *os.File) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := normalizeName(m[1])
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			if fields[i+1] != "allocs/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
			}
			if prev, ok := out[name]; !ok || v < prev {
				out[name] = v
			}
		}
	}
	return out, sc.Err()
}

// normalizeName strips the trailing -GOMAXPROCS suffix go test appends, so
// baselines transfer across machines with different CPU counts. go test
// only appends the suffix when GOMAXPROCS > 1, and benchcheck runs in the
// same environment as the benchmarks it checks, so exactly the literal
// "-<GOMAXPROCS>" suffix is stripped — never a numeric tail that is part
// of the sub-benchmark name (like "shards-1" on a single-CPU machine).
func normalizeName(name string) string {
	procs := runtime.GOMAXPROCS(0)
	if procs <= 1 {
		return name
	}
	return strings.TrimSuffix(name, "-"+strconv.Itoa(procs))
}
