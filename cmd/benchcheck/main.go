// Command benchcheck guards the engine's performance budget in CI: it
// parses `go test -bench -benchmem` output and compares each benchmark's
// allocs/op and ns/op against a checked-in baseline, failing when a
// benchmark regresses by more than the metric's tolerance. It also gates
// the sharding speedup from a `cmd/bench` JSON report (-scaling).
//
// Usage:
//
//	go test -bench EngineEU1FTTH -benchmem -run '^$' -count 3 | tee bench.txt
//	benchcheck -baseline bench_baseline.json -in bench.txt
//	benchcheck -baseline bench_baseline.json -in bench.txt -metric allocs
//	benchcheck -baseline bench_baseline.json -in bench.txt -update
//	benchcheck -scaling BENCH.json -scaling-tolerance 10
//	benchcheck -analytics BENCH.json -analytics-tolerance 10
//	benchcheck -in bench.txt -overhead 'base=probe' -overhead-tolerance 2
//
// -scaling switches to the scaling gate: the input is a `cmd/bench` report
// and every multi-shard cell must reach at least (1 - tolerance%) of the
// shards=1 throughput of its (scenario, gomaxprocs) group — sharding that
// makes the engine slower than single-shard is a dispatch-path regression.
// Cells that cannot physically scale are skipped with a note: a cell whose
// recorded gomaxprocs is below its shard count only measures dispatch
// overhead, and a machine with fewer CPUs than shards (meta.num_cpu) can
// time-slice but not parallelize.
//
// -analytics gates the streaming-analytics overhead from a `cmd/bench
// -analytics` report: for every (scenario, gomaxprocs, shards) pair with
// both an analytics-off and an analytics-on cell, the on cell's ns/pkt
// must stay within tolerance (default 10%) of the off cell's. The sketch
// path is bounded-state by design; this pins it to bounded-*time* too.
//
// -overhead switches to a same-run pair gate over ordinary `go test
// -bench` output: given "base=probe" benchmark names, the probe's ns/op
// minimum must stay within -overhead-tolerance percent (default 2) of the
// base's. Because both cells come from one process on one machine, the
// tolerance can be far tighter than the cross-run baseline gates — CI uses
// it to pin the disabled fault-injection wrapper at ≤2% over the bare
// engine.
//
// -metric selects what to gate: "allocs", "ns", "bytes", or "all" (the
// default). Allocation counts are deterministic, so their tolerance is
// tight (10%); wall-clock ns/op varies with the machine, so its tolerance
// is wider (15%); bytes/op (B/op) is nearly deterministic but rounds with
// allocator size classes, so it gets the same 15% tolerance. A baseline
// without an ns_per_op / bytes_per_op entry simply skips that gate for
// that benchmark.
//
// With -count > 1 the minimum per metric across runs is compared (the
// minimum discards one-off runtime noise like pool refills after a GC).
// Benchmarks absent from the baseline are reported but not enforced:
// sharded variants allocate differently per GOMAXPROCS, so the baseline
// pins only the deterministic single-threaded paths. -update rewrites the
// baseline from the observed numbers for exactly the benchmarks it already
// tracks.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the checked-in performance budget.
type Baseline struct {
	// TolerancePct is the allowed allocs/op regression in percent.
	TolerancePct float64 `json:"tolerance_pct"`
	// NsTolerancePct is the allowed ns/op regression in percent (0 = 15).
	NsTolerancePct float64 `json:"ns_tolerance_pct,omitempty"`
	// BytesTolerancePct is the allowed bytes/op regression in percent
	// (0 = 15).
	BytesTolerancePct float64 `json:"bytes_tolerance_pct,omitempty"`
	// Benchmarks maps the benchmark name (without the -GOMAXPROCS suffix)
	// to its budget.
	Benchmarks map[string]Budget `json:"benchmarks"`
}

// Budget is one benchmark's pinned numbers. NsPerOp/BytesPerOp 0 means
// "not pinned": that gate is skipped for the benchmark.
type Budget struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
}

// observation is one benchmark's measured minima.
type observation struct {
	allocs, ns, bytes          float64
	hasAllocs, hasNs, hasBytes bool
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
//
//	BenchmarkEngineEU1FTTH/shards-1-4  5  5518661 ns/op  310 MB/s  10702 pkts/op  2166804 B/op  7398 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcheck: ")
	baselinePath := flag.String("baseline", "bench_baseline.json", "baseline JSON path")
	in := flag.String("in", "", "benchmark output file (default stdin)")
	tolerance := flag.Float64("tolerance", 0, "override baseline allocs tolerance_pct when > 0")
	nsTolerance := flag.Float64("ns-tolerance", 0, "override baseline ns_tolerance_pct when > 0")
	bytesTolerance := flag.Float64("bytes-tolerance", 0, "override baseline bytes_tolerance_pct when > 0")
	metric := flag.String("metric", "all", "which metrics to gate: allocs, ns, bytes, or all")
	update := flag.Bool("update", false, "rewrite the baseline from the observed numbers")
	scaling := flag.String("scaling", "", "cmd/bench JSON report: gate multi-shard vs shards=1 throughput instead")
	scalingTol := flag.Float64("scaling-tolerance", 10, "allowed multi-shard shortfall vs shards=1 in percent")
	scalingMin := flag.Float64("scaling-min-speedup", 0,
		"when > 0, additionally require gateable multi-shard cells to reach this speedup over shards=1 (e.g. 1.8)")
	analytics := flag.String("analytics", "", "cmd/bench JSON report: gate analytics-on vs analytics-off ns/pkt instead")
	analyticsTol := flag.Float64("analytics-tolerance", 10, "allowed analytics-on ns/pkt overhead in percent")
	overhead := flag.String("overhead", "",
		"gate one benchmark against another from the same input instead: \"base=probe\" requires probe ns/op ≤ base × (1 + tolerance)")
	overheadTol := flag.Float64("overhead-tolerance", 2, "allowed probe ns/op overhead over base in percent")
	flag.Parse()

	if *scaling != "" {
		if err := checkScaling(*scaling, *scalingTol, *scalingMin); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *analytics != "" {
		if err := checkAnalytics(*analytics, *analyticsTol); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *overhead != "" {
		if err := checkOverhead(*in, *overhead, *overheadTol); err != nil {
			log.Fatal(err)
		}
		return
	}

	gateAllocs, gateNs, gateBytes := false, false, false
	switch *metric {
	case "allocs":
		gateAllocs = true
	case "ns":
		gateNs = true
	case "bytes":
		gateBytes = true
	case "all":
		gateAllocs, gateNs, gateBytes = true, true, true
	default:
		log.Fatalf("bad -metric %q (want allocs, ns, bytes, or all)", *metric)
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("parsing %s: %v", *baselinePath, err)
	}
	tolA := base.TolerancePct
	if *tolerance > 0 {
		tolA = *tolerance
	}
	if tolA <= 0 {
		tolA = 10
	}
	tolNs := base.NsTolerancePct
	if *nsTolerance > 0 {
		tolNs = *nsTolerance
	}
	if tolNs <= 0 {
		tolNs = 15
	}
	tolBytes := base.BytesTolerancePct
	if *bytesTolerance > 0 {
		tolBytes = *bytesTolerance
	}
	if tolBytes <= 0 {
		tolBytes = 15
	}

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	observed, err := parseBench(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(observed) == 0 {
		log.Fatal("no benchmark result lines found in input")
	}

	if *update {
		for _, name := range sortedNames(base.Benchmarks) {
			got, ok := observed[name]
			if !ok {
				log.Fatalf("baseline benchmark %q missing from input", name)
			}
			// Refuse to pin a metric that was not measured: writing 0 would
			// make every later run "exceed" the baseline.
			if !got.hasAllocs {
				log.Fatalf("%s: no allocs/op in input (was -benchmem passed?)", name)
			}
			if !got.hasNs {
				log.Fatalf("%s: no ns/op in input", name)
			}
			if !got.hasBytes {
				log.Fatalf("%s: no B/op in input (was -benchmem passed?)", name)
			}
			base.Benchmarks[name] = Budget{AllocsPerOp: got.allocs, NsPerOp: got.ns, BytesPerOp: got.bytes}
		}
		enc, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		enc = append(enc, '\n')
		if err := os.WriteFile(*baselinePath, enc, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("updated %s", *baselinePath)
		return
	}

	failed := false
	// check gates one metric of one benchmark and reports the outcome.
	check := func(name, unit string, got, budget, tol float64) {
		limit := budget * (1 + tol/100)
		switch {
		case got > limit:
			log.Printf("FAIL %s: %.0f %s exceeds baseline %.0f by more than %g%%",
				name, got, unit, budget, tol)
			failed = true
		case got < budget*(1-tol/100):
			// An improvement beyond tolerance deserves a baseline refresh so
			// the ratchet keeps holding; flag it without failing.
			log.Printf("ok   %s: %.0f %s (baseline %.0f — improved, consider -update)",
				name, got, unit, budget)
		default:
			log.Printf("ok   %s: %.0f %s (baseline %.0f)", name, got, unit, budget)
		}
	}
	for _, name := range sortedNames(base.Benchmarks) {
		budget := base.Benchmarks[name]
		got, ok := observed[name]
		if !ok {
			log.Printf("FAIL %s: tracked by baseline but missing from input", name)
			failed = true
			continue
		}
		if gateAllocs {
			if !got.hasAllocs {
				log.Printf("FAIL %s: no allocs/op in input (was -benchmem passed?)", name)
				failed = true
			} else {
				check(name, "allocs/op", got.allocs, budget.AllocsPerOp, tolA)
			}
		}
		if gateNs {
			switch {
			case budget.NsPerOp <= 0:
				log.Printf("skip %s: no ns/op baseline pinned", name)
			case !got.hasNs:
				log.Printf("FAIL %s: no ns/op in input", name)
				failed = true
			default:
				check(name, "ns/op", got.ns, budget.NsPerOp, tolNs)
			}
		}
		if gateBytes {
			switch {
			case budget.BytesPerOp <= 0:
				log.Printf("skip %s: no bytes/op baseline pinned", name)
			case !got.hasBytes:
				log.Printf("FAIL %s: no B/op in input (was -benchmem passed?)", name)
				failed = true
			default:
				check(name, "B/op", got.bytes, budget.BytesPerOp, tolBytes)
			}
		}
	}
	for _, name := range sortedNames(observed) {
		if _, ok := base.Benchmarks[name]; !ok {
			got := observed[name]
			log.Printf("skip %s: %.0f allocs/op, %.0f ns/op, %.0f B/op (not tracked)", name, got.allocs, got.ns, got.bytes)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// benchReport mirrors the cmd/bench JSON schema, keeping only the fields
// the scaling gate reads.
type benchReport struct {
	Meta struct {
		NumCPU int `json:"num_cpu"`
	} `json:"meta"`
	Results []benchCell `json:"results"`
}

type benchCell struct {
	Scenario   string  `json:"scenario"`
	Shards     int     `json:"shards"`
	Readers    int     `json:"readers"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	PktsPerSec float64 `json:"pkts_per_sec"`
	NsPerPkt   float64 `json:"ns_per_pkt"`
	Analytics  bool    `json:"analytics"`
}

// checkScaling enforces the sharding gate: within every (scenario,
// gomaxprocs) group of the report, each multi-shard cell must reach at
// least (1 - tol%) of the group's shards=1 throughput — and, when
// minSpeedup > 0, at least that multiple of it (the paper-style scaling
// assertion, e.g. 1.8 for shards=4 on a ≥4-core box). Independently of
// both knobs, a gateable cell with 4+ shards must beat the shards=1
// baseline outright (> 1.0x): on a machine that can actually parallelize,
// 4-way sharding slower than single-shard is a dispatch-path regression no
// tolerance excuses. Cells the machine cannot parallelize (num_cpu or
// gomaxprocs below the shard count) are reported and skipped, so the gate
// is meaningful on many-core CI runners without failing spuriously on
// small boxes.
func checkScaling(path string, tol, minSpeedup float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("parsing %s: %v", path, err)
	}
	type groupKey struct {
		scenario  string
		procs     int
		analytics bool
	}
	base := make(map[groupKey]float64)
	for _, c := range rep.Results {
		if c.Shards == 1 {
			base[groupKey{c.Scenario, c.GOMAXPROCS, c.Analytics}] = c.PktsPerSec
		}
	}
	failed, gated := false, 0
	for _, c := range rep.Results {
		if c.Shards <= 1 {
			continue
		}
		name := fmt.Sprintf("%s gomaxprocs=%d shards=%d", c.Scenario, c.GOMAXPROCS, c.Shards)
		if c.Readers > 1 {
			name += fmt.Sprintf(" readers=%d", c.Readers)
		}
		if c.Analytics {
			name += " analytics=on"
		}
		b, ok := base[groupKey{c.Scenario, c.GOMAXPROCS, c.Analytics}]
		if !ok || b <= 0 {
			log.Printf("skip %s: no shards=1 cell in its group", name)
			continue
		}
		ratio := c.PktsPerSec / b
		floor := 1 - tol/100
		if minSpeedup > floor {
			floor = minSpeedup
		}
		switch {
		case rep.Meta.NumCPU < c.Shards:
			log.Printf("skip %s: machine has %d CPU(s), cannot scale to %d shards (%.2fx measured)",
				name, rep.Meta.NumCPU, c.Shards, ratio)
		case c.GOMAXPROCS < c.Shards:
			log.Printf("skip %s: gomaxprocs below shard count (%.2fx measured)", name, ratio)
		case c.Shards >= 4 && ratio <= 1:
			log.Printf("FAIL %s: %.2fx shards=1 — a %d-shard pipeline on %d CPUs must beat the single-shard baseline outright (> 1.0x)",
				name, ratio, c.Shards, rep.Meta.NumCPU)
			failed = true
			gated++
		case ratio < floor:
			log.Printf("FAIL %s: %.0f pkts/sec is %.2fx the shards=1 baseline %.0f (floor %.2fx)",
				name, c.PktsPerSec, ratio, b, floor)
			failed = true
			gated++
		default:
			log.Printf("ok   %s: %.0f pkts/sec, %.2fx shards=1 (floor %.2fx)",
				name, c.PktsPerSec, ratio, floor)
			gated++
		}
	}
	if gated == 0 {
		log.Printf("note: no gateable multi-shard cells (machine too small or matrix has no multi-shard runs)")
	}
	if failed {
		os.Exit(1)
	}
	return nil
}

// checkAnalytics enforces the streaming-analytics overhead gate: for each
// (scenario, gomaxprocs, shards) pair present with and without analytics,
// the analytics-on cell's ns/pkt must be at most (1 + tol%) of the
// analytics-off cell's. Pairs missing either side are reported and
// skipped; a report with no pairs at all fails, because a misconfigured
// bench run (missing -analytics) must not pass silently.
func checkAnalytics(path string, tol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("parsing %s: %v", path, err)
	}
	type cellKey struct {
		scenario string
		procs    int
		shards   int
	}
	off := make(map[cellKey]float64)
	for _, c := range rep.Results {
		if !c.Analytics {
			off[cellKey{c.Scenario, c.GOMAXPROCS, c.Shards}] = c.NsPerPkt
		}
	}
	failed, gated := false, 0
	for _, c := range rep.Results {
		if !c.Analytics {
			continue
		}
		name := fmt.Sprintf("%s gomaxprocs=%d shards=%d", c.Scenario, c.GOMAXPROCS, c.Shards)
		b, ok := off[cellKey{c.Scenario, c.GOMAXPROCS, c.Shards}]
		if !ok || b <= 0 {
			log.Printf("skip %s: no analytics-off cell to compare against", name)
			continue
		}
		overhead := 100 * (c.NsPerPkt/b - 1)
		if c.NsPerPkt > b*(1+tol/100) {
			log.Printf("FAIL %s: analytics adds %.1f%% ns/pkt (%.0f vs %.0f), tolerance %g%%",
				name, overhead, c.NsPerPkt, b, tol)
			failed = true
		} else {
			log.Printf("ok   %s: analytics adds %.1f%% ns/pkt (%.0f vs %.0f, tolerance %g%%)",
				name, overhead, c.NsPerPkt, b, tol)
		}
		gated++
	}
	if gated == 0 {
		return fmt.Errorf("%s has no analytics-on cells (was cmd/bench run with -analytics?)", path)
	}
	if failed {
		os.Exit(1)
	}
	return nil
}

// checkOverhead enforces a same-run relative gate between two benchmarks
// of one `go test -bench` output: the probe's ns/op minimum must stay
// within tol percent of the base's. Comparing two cells measured by the
// same process on the same machine sidesteps the run-to-run wall-clock
// noise that forces the absolute baseline gate's wide tolerance — which
// is what lets the disabled-fault-injection wrapper be pinned at ≤2%
// overhead over the bare engine.
func checkOverhead(inPath, spec string, tol float64) error {
	base, probe, ok := strings.Cut(spec, "=")
	if !ok || base == "" || probe == "" {
		return fmt.Errorf("bad -overhead %q (want \"base=probe\" benchmark names)", spec)
	}
	r := os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	observed, err := parseBench(r)
	if err != nil {
		return err
	}
	b, ok := observed[base]
	if !ok || !b.hasNs {
		return fmt.Errorf("base benchmark %q missing from input (or no ns/op)", base)
	}
	p, ok := observed[probe]
	if !ok || !p.hasNs {
		return fmt.Errorf("probe benchmark %q missing from input (or no ns/op)", probe)
	}
	pct := 100 * (p.ns/b.ns - 1)
	if p.ns > b.ns*(1+tol/100) {
		log.Printf("FAIL %s: %+.2f%% ns/op over %s (%.0f vs %.0f), tolerance %g%%",
			probe, pct, base, p.ns, b.ns, tol)
		os.Exit(1)
	}
	log.Printf("ok   %s: %+.2f%% ns/op over %s (%.0f vs %.0f, tolerance %g%%)",
		probe, pct, base, p.ns, b.ns, tol)
	return nil
}

// parseBench extracts the per-benchmark minima of allocs/op and ns/op
// (normalized without the trailing -GOMAXPROCS) from `go test -bench
// -benchmem` output.
func parseBench(f *os.File) (map[string]observation, error) {
	out := make(map[string]observation)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := normalizeName(m[1])
		obs := out[name]
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			switch fields[i+1] {
			case "allocs/op":
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
				}
				if !obs.hasAllocs || v < obs.allocs {
					obs.allocs, obs.hasAllocs = v, true
				}
			case "ns/op":
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
				}
				if !obs.hasNs || v < obs.ns {
					obs.ns, obs.hasNs = v, true
				}
			case "B/op":
				if err != nil {
					return nil, fmt.Errorf("bad B/op in %q: %w", sc.Text(), err)
				}
				if !obs.hasBytes || v < obs.bytes {
					obs.bytes, obs.hasBytes = v, true
				}
			}
		}
		out[name] = obs
	}
	return out, sc.Err()
}

// sortedNames returns the map's keys in sorted order, so report lines
// come out deterministically run over run.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// normalizeName strips the trailing -GOMAXPROCS suffix go test appends, so
// baselines transfer across machines with different CPU counts. go test
// only appends the suffix when GOMAXPROCS > 1, and benchcheck runs in the
// same environment as the benchmarks it checks, so exactly the literal
// "-<GOMAXPROCS>" suffix is stripped — never a numeric tail that is part
// of the sub-benchmark name (like "shards-1" on a single-CPU machine).
func normalizeName(name string) string {
	procs := runtime.GOMAXPROCS(0)
	if procs <= 1 {
		return name
	}
	return strings.TrimSuffix(name, "-"+strconv.Itoa(procs))
}
