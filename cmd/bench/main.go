// Command bench is the reproducible engine benchmark harness: it
// synthesizes named scenarios, replays each through the Engine at several
// shard counts, and emits a machine-readable JSON report. CI runs it (and
// `go test -bench`) to keep BENCH_*.json files honest; see the README's
// Performance section for the schema.
//
// Usage:
//
//	bench [-scenarios EU1-FTTH,DNS-CHURN,TRIVANTAGE] [-shards 1,4,8]
//	      [-scale 0.35] [-seed 1] [-reps 3] [-out BENCH.json]
//
// TRIVANTAGE is the multi-vantage scenario: three geographies generated
// from one seed and ingested concurrently through Engine.RunSources; its
// packet counts aggregate all three vantages.
//
// Each (scenario, shards) cell is run -reps times; the fastest repetition
// is reported (the usual benchmarking convention: minimum wall time is the
// least noisy estimator on a shared machine). Allocation metrics come from
// runtime.MemStats deltas around the timed run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	dnhunter "repro"
	"repro/internal/synth"
)

// Report is the top-level JSON document.
type Report struct {
	// Meta describes the machine and configuration the numbers came from.
	Meta Meta `json:"meta"`
	// Results holds one entry per (scenario, shards) cell.
	Results []Result `json:"results"`
}

// Meta captures the run environment.
type Meta struct {
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Scale      float64 `json:"scale"`
	Seed       uint64  `json:"seed"`
	Reps       int     `json:"reps"`
}

// Result is one benchmark cell.
type Result struct {
	Scenario string `json:"scenario"`
	Shards   int    `json:"shards"`
	// Packets replayed per repetition.
	Packets int `json:"packets"`
	// TraceBytes is the total frame bytes replayed per repetition.
	TraceBytes int64 `json:"trace_bytes"`
	// Best-repetition wall-clock metrics.
	PktsPerSec   float64 `json:"pkts_per_sec"`
	NsPerPkt     float64 `json:"ns_per_pkt"`
	AllocsPerPkt float64 `json:"allocs_per_pkt"`
	BytesPerPkt  float64 `json:"bytes_per_pkt"`
	// Flows and DNSResponses let a reader sanity-check that the pipeline
	// actually did the work (and that shard counts agree).
	Flows        uint64 `json:"flows"`
	DNSResponses uint64 `json:"dns_responses"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	scenarios := flag.String("scenarios", synth.NameEU1FTTH+","+synth.NameDNSChurn,
		"comma-separated scenario names")
	shardList := flag.String("shards", "1,4,8", "comma-separated shard counts")
	scale := flag.Float64("scale", 0.35, "scenario scale factor")
	seed := flag.Uint64("seed", 1, "synthesis seed")
	reps := flag.Int("reps", 3, "repetitions per cell (fastest wins)")
	out := flag.String("out", "", "output JSON path (default stdout)")
	flag.Parse()

	shards, err := parseInts(*shardList)
	if err != nil {
		log.Fatalf("bad -shards: %v", err)
	}
	rep := Report{
		Meta: Meta{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Scale:      *scale,
			Seed:       *seed,
			Reps:       *reps,
		},
	}
	ctx := context.Background()
	for _, name := range strings.Split(*scenarios, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		log.Printf("synthesizing %s (scale %g)...", name, *scale)
		traces := generateTraces(name, *scale, *seed)
		packets := 0
		var traceBytes int64
		for _, tr := range traces {
			packets += len(tr.Packets)
			for _, p := range tr.Packets {
				traceBytes += int64(len(p.Data))
			}
		}
		log.Printf("%s: %d packets, %.1f MB (%d vantage(s))",
			name, packets, float64(traceBytes)/1e6, len(traces))
		for _, n := range shards {
			cell, err := runCell(ctx, traces, n, *reps)
			if err != nil {
				log.Fatalf("%s shards=%d: %v", name, n, err)
			}
			cell.Scenario = name
			cell.Shards = n
			cell.Packets = packets
			cell.TraceBytes = traceBytes
			log.Printf("%s shards=%d: %.0f pkts/sec, %.0f ns/pkt, %.2f allocs/pkt, %.0f B/pkt",
				name, n, cell.PktsPerSec, cell.NsPerPkt, cell.AllocsPerPkt, cell.BytesPerPkt)
			rep.Results = append(rep.Results, cell)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// generateTraces expands a scenario name into its vantage traces: one for
// the single-capture scenarios, three (US/EU1/EU2 from one seed) for
// TRIVANTAGE.
func generateTraces(name string, scale float64, seed uint64) []*dnhunter.Trace {
	if name == synth.NameTriVantage {
		scs := synth.TriVantageScenarios(scale, seed)
		out := make([]*dnhunter.Trace, len(scs))
		for i, sc := range scs {
			out[i] = synth.Generate(sc)
		}
		return out
	}
	return []*dnhunter.Trace{dnhunter.GenerateTrace(name, scale, seed)}
}

// runCell replays the scenario's traces through an n-shard engine reps
// times and keeps the fastest repetition's metrics. A single trace runs the
// exact Run path; several run the concurrent multi-vantage path.
func runCell(ctx context.Context, traces []*dnhunter.Trace, n, reps int) (Result, error) {
	var best Result
	packets := 0
	for _, tr := range traces {
		packets += len(tr.Packets)
	}
	for i := 0; i < reps; i++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		var (
			stats dnhunter.Stats
			err   error
		)
		if len(traces) == 1 {
			var res *dnhunter.Result
			res, err = dnhunter.NewEngine(dnhunter.WithShards(n)).RunTrace(ctx, traces[0])
			if err == nil {
				stats = res.Stats
			}
		} else {
			opts := []dnhunter.Option{dnhunter.WithShards(n)}
			for _, tr := range traces {
				opts = append(opts, dnhunter.WithTraceSource(tr.Scenario.Name, tr))
			}
			var res *dnhunter.MultiResult
			res, err = dnhunter.NewEngine(opts...).RunSources(ctx)
			if err == nil {
				stats = res.Merged.Stats
			}
		}
		elapsed := time.Since(start)
		if err != nil {
			return Result{}, err
		}
		runtime.ReadMemStats(&after)
		pkts := float64(packets)
		cell := Result{
			PktsPerSec:   pkts / elapsed.Seconds(),
			NsPerPkt:     float64(elapsed.Nanoseconds()) / pkts,
			AllocsPerPkt: float64(after.Mallocs-before.Mallocs) / pkts,
			BytesPerPkt:  float64(after.TotalAlloc-before.TotalAlloc) / pkts,
			Flows:        stats.Flows,
			DNSResponses: stats.DNSResponses,
		}
		if i == 0 || cell.NsPerPkt < best.NsPerPkt {
			best = cell
		}
	}
	return best, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", f, err)
		}
		if v < 1 {
			return nil, fmt.Errorf("shard count %d < 1", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
