// Command bench is the reproducible engine benchmark harness: it
// synthesizes named scenarios, replays each through the Engine across a
// (GOMAXPROCS × shard-count) matrix, and emits a machine-readable JSON
// report. CI runs it (and `go test -bench`) to keep BENCH_*.json files
// honest; see the README's Performance section for the schema.
//
// Usage:
//
//	bench [-scenarios EU1-FTTH,DNS-CHURN,TRIVANTAGE] [-shards 1,4,8]
//	      [-readers 1] [-gomaxprocs 0] [-scale 0.35] [-seed 1] [-reps 3]
//	      [-analytics] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	      [-out BENCH.json]
//
// -readers sweeps the reader/dispatcher partition count orthogonally to
// -shards. Reader striping needs a dispatch stage, so readers>1 cells are
// skipped at shards=1. Every cell runs with the synthetic scenarios' client
// networks (10.0.0.0/16) configured — striping requires them, and the
// baseline must measure the same flow-orientation configuration.
//
// -analytics runs every cell twice — once plain, once with the standard
// streaming analytics pipeline (StreamingQueries) consuming the run's
// flows inside the timed region — and emits both results, the second
// with "analytics": true. benchcheck -analytics pairs them up and gates
// the ns/pkt overhead of the sketch path.
//
// -gomaxprocs is a comma-separated list of GOMAXPROCS values to run every
// (scenario, shards) cell under; 0 means "leave the runtime default". Each
// cell records the GOMAXPROCS it actually ran at, because a multi-shard
// number measured at GOMAXPROCS=1 measures dispatch overhead, not scaling.
// Within each (scenario, gomaxprocs) group the shards=1 cell is the
// scaling denominator: every cell's speedup_vs_1shard is its throughput
// over that baseline.
//
// TRIVANTAGE is the multi-vantage scenario: three geographies generated
// from one seed and ingested concurrently through Engine.RunSources; its
// packet counts aggregate all three vantages.
//
// Each cell is run -reps times; the fastest repetition is reported (the
// usual benchmarking convention: minimum wall time is the least noisy
// estimator on a shared machine). Allocation metrics come from
// runtime.MemStats deltas around the timed run.
//
// -cpuprofile covers every timed cell in one profile; -memprofile writes a
// heap profile after the last cell. Both are meant to be uploaded as CI
// artifacts so a dispatch-path regression can be diagnosed without a local
// reproduction.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	dnhunter "repro"
	"repro/internal/netio"
	"repro/internal/synth"
)

// Report is the top-level JSON document.
type Report struct {
	// Meta describes the machine and configuration the numbers came from.
	Meta Meta `json:"meta"`
	// Results holds one entry per (scenario, gomaxprocs, shards) cell.
	Results []Result `json:"results"`
}

// Meta captures the run environment.
type Meta struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU is the machine's logical CPU count: the hard ceiling on real
	// parallelism no matter what GOMAXPROCS says. Scaling gates must not
	// expect shards=N to beat shards=1 when NumCPU < N.
	NumCPU int `json:"num_cpu"`
	// GOMAXPROCS is the process default before any per-cell override.
	GOMAXPROCS int     `json:"gomaxprocs"`
	Scale      float64 `json:"scale"`
	Seed       uint64  `json:"seed"`
	Reps       int     `json:"reps"`
}

// Result is one benchmark cell.
type Result struct {
	Scenario string `json:"scenario"`
	Shards   int    `json:"shards"`
	// Readers is the reader/dispatcher partition count the cell ran at.
	Readers int `json:"readers"`
	// GOMAXPROCS is the value the cell actually ran at.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Packets replayed per repetition.
	Packets int `json:"packets"`
	// TraceBytes is the total frame bytes replayed per repetition.
	TraceBytes int64 `json:"trace_bytes"`
	// Best-repetition wall-clock metrics.
	PktsPerSec   float64 `json:"pkts_per_sec"`
	NsPerPkt     float64 `json:"ns_per_pkt"`
	AllocsPerPkt float64 `json:"allocs_per_pkt"`
	BytesPerPkt  float64 `json:"bytes_per_pkt"`
	// HeapInuseBytes is runtime.MemStats.HeapInuse right after the best
	// repetition: the resident working set the data structures pin, as
	// opposed to BytesPerPkt's allocation *throughput*.
	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`
	// GCCycles is how many collections the best repetition triggered —
	// the direct tax of allocation churn on the hot path.
	GCCycles uint32 `json:"gc_cycles"`
	// SpeedupVs1Shard is PktsPerSec over the shards=1 cell of the same
	// (scenario, gomaxprocs, analytics) group; 0 when that group has no
	// shards=1 cell.
	SpeedupVs1Shard float64 `json:"speedup_vs_1shard,omitempty"`
	// Analytics marks cells that ran the streaming analytics pipeline
	// over the run's flows inside the timed region.
	Analytics bool `json:"analytics,omitempty"`
	// Flows and DNSResponses let a reader sanity-check that the pipeline
	// actually did the work (and that shard counts agree).
	Flows        uint64 `json:"flows"`
	DNSResponses uint64 `json:"dns_responses"`
	// Per-reader-partition counters from the best repetition (single-trace
	// cells only; RunSources does not surface them).
	ReaderPkts          []uint64 `json:"reader_pkts,omitempty"`
	ReaderRingFullParks []uint64 `json:"reader_ring_full_parks,omitempty"`
	ReaderMeshFullParks []uint64 `json:"reader_mesh_full_parks,omitempty"`
	// BlocksRetired and BlockRetireAvgNs are the best repetition's payload
	// arena deltas: blocks fully released, and the mean time dispatch
	// handles kept a block pinned.
	BlocksRetired    uint64  `json:"blocks_retired"`
	BlockRetireAvgNs float64 `json:"block_retire_avg_ns"`
}

// benchNets is the client-network configuration every cell runs with: the
// synthetic scenarios place all clients (and the LDNS) in 10.0.0.0/16.
func benchNets() dnhunter.FlowsConfig {
	return dnhunter.FlowsConfig{ClientNets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")}}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	scenarios := flag.String("scenarios", synth.NameEU1FTTH+","+synth.NameDNSChurn,
		"comma-separated scenario names")
	shardList := flag.String("shards", "1,4,8", "comma-separated shard counts")
	readerList := flag.String("readers", "1", "comma-separated reader-partition counts (readers > 1 cells skip shards=1)")
	procList := flag.String("gomaxprocs", "0",
		"comma-separated GOMAXPROCS values per cell (0 = runtime default)")
	scale := flag.Float64("scale", 0.35, "scenario scale factor")
	seed := flag.Uint64("seed", 1, "synthesis seed")
	reps := flag.Int("reps", 3, "repetitions per cell (fastest wins)")
	analyticsOn := flag.Bool("analytics", false,
		"additionally run every cell with the streaming analytics pipeline enabled")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering all cells")
	memProfile := flag.String("memprofile", "", "write a heap profile after the last cell")
	out := flag.String("out", "", "output JSON path (default stdout)")
	flag.Parse()

	shards, err := parseInts(*shardList, 1)
	if err != nil {
		log.Fatalf("bad -shards: %v", err)
	}
	readerCounts, err := parseInts(*readerList, 1)
	if err != nil {
		log.Fatalf("bad -readers: %v", err)
	}
	procs, err := parseInts(*procList, 0)
	if err != nil {
		log.Fatalf("bad -gomaxprocs: %v", err)
	}
	defaultProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(defaultProcs)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("starting CPU profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	rep := Report{
		Meta: Meta{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: defaultProcs,
			Scale:      *scale,
			Seed:       *seed,
			Reps:       *reps,
		},
	}
	ctx := context.Background()
	for _, name := range strings.Split(*scenarios, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		log.Printf("synthesizing %s (scale %g)...", name, *scale)
		traces := generateTraces(name, *scale, *seed)
		packets := 0
		var traceBytes int64
		for _, tr := range traces {
			packets += len(tr.Packets)
			for _, p := range tr.Packets {
				traceBytes += int64(len(p.Data))
			}
		}
		log.Printf("%s: %d packets, %.1f MB (%d vantage(s))",
			name, packets, float64(traceBytes)/1e6, len(traces))
		for _, g := range procs {
			eff := g
			if eff == 0 {
				eff = defaultProcs
			}
			runtime.GOMAXPROCS(eff)
			variants := []bool{false}
			if *analyticsOn {
				variants = append(variants, true)
			}
			group := make([]Result, 0, len(shards)*len(readerCounts)*len(variants))
			for _, n := range shards {
				for _, r := range readerCounts {
					if r > 1 && n == 1 {
						continue // striping needs a dispatch stage; the engine would clamp to 1
					}
					// The off/on variants of a cell interleave at the repetition
					// level (inside runCells) so slow machine drift between
					// minutes-apart measurements cannot masquerade as analytics
					// overhead in the benchcheck -analytics pairing.
					cells, err := runCells(ctx, traces, n, r, *reps, variants)
					if err != nil {
						log.Fatalf("%s gomaxprocs=%d shards=%d readers=%d: %v", name, eff, n, r, err)
					}
					for i := range cells {
						cell := &cells[i]
						cell.Scenario = name
						cell.Shards = n
						cell.Readers = r
						cell.GOMAXPROCS = eff
						cell.Packets = packets
						cell.TraceBytes = traceBytes
						suffix := ""
						if cell.Analytics {
							suffix = " analytics=on"
						}
						log.Printf("%s gomaxprocs=%d shards=%d readers=%d%s: %.0f pkts/sec, %.0f ns/pkt, %.2f allocs/pkt, %.0f B/pkt, %.1f MB heap, %d GCs",
							name, eff, n, r, suffix, cell.PktsPerSec, cell.NsPerPkt, cell.AllocsPerPkt, cell.BytesPerPkt,
							float64(cell.HeapInuseBytes)/1e6, cell.GCCycles)
					}
					group = append(group, cells...)
				}
			}
			// Speedups are filled in after the group completes so the
			// -shards order cannot hide the shards=1 baseline. Analytics-on
			// cells scale against the analytics-on shards=1 cell.
			base := map[bool]float64{}
			for _, cell := range group {
				if cell.Shards == 1 {
					base[cell.Analytics] = cell.PktsPerSec
				}
			}
			for i := range group {
				if b := base[group[i].Analytics]; b > 0 {
					group[i].SpeedupVs1Shard = group[i].PktsPerSec / b
				}
			}
			rep.Results = append(rep.Results, group...)
		}
		runtime.GOMAXPROCS(defaultProcs)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("writing heap profile: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// generateTraces expands a scenario name into its vantage traces: one for
// the single-capture scenarios, three (US/EU1/EU2 from one seed) for
// TRIVANTAGE.
func generateTraces(name string, scale float64, seed uint64) []*dnhunter.Trace {
	if name == synth.NameTriVantage {
		scs := synth.TriVantageScenarios(scale, seed)
		out := make([]*dnhunter.Trace, len(scs))
		for i, sc := range scs {
			out[i] = synth.Generate(sc)
		}
		return out
	}
	return []*dnhunter.Trace{dnhunter.GenerateTrace(name, scale, seed)}
}

// runCells replays the scenario's traces through an n-shard engine reps
// times per variant, interleaving the variants within each repetition,
// and keeps each variant's fastest repetition. A single trace runs the
// exact Run path; several run the concurrent multi-vantage path. The
// analytics=true variant has the standard streaming query set consume
// every finished flow inside the timed region — the cost benchcheck
// -analytics gates.
func runCells(ctx context.Context, traces []*dnhunter.Trace, n, r, reps int, variants []bool) ([]Result, error) {
	best := make([]Result, len(variants))
	packets := 0
	for _, tr := range traces {
		packets += len(tr.Packets)
	}
	for i := 0; i < reps; i++ {
		for vi, analytics := range variants {
			cell, err := runOnce(ctx, traces, n, r, packets, analytics)
			if err != nil {
				return nil, err
			}
			if i == 0 || cell.NsPerPkt < best[vi].NsPerPkt {
				best[vi] = cell
			}
		}
	}
	return best, nil
}

// runOnce times a single engine replay (plus, with analytics, the
// streaming pipeline pass over its flows).
func runOnce(ctx context.Context, traces []*dnhunter.Trace, n, r, packets int, analytics bool) (Result, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	arenaBefore := netio.DefaultBlockPool().Stats()
	start := time.Now()
	var (
		stats  dnhunter.Stats
		db     *dnhunter.FlowDB
		rstats []dnhunter.ReaderStat
		err    error
	)
	base := []dnhunter.Option{dnhunter.WithShards(n), dnhunter.WithReaders(r), dnhunter.WithFlows(benchNets())}
	if len(traces) == 1 {
		var res *dnhunter.Result
		res, err = dnhunter.NewEngine(base...).RunTrace(ctx, traces[0])
		if err == nil {
			stats, db, rstats = res.Stats, res.DB, res.Readers
		}
	} else {
		opts := base
		for _, tr := range traces {
			opts = append(opts, dnhunter.WithTraceSource(tr.Scenario.Name, tr))
		}
		var res *dnhunter.MultiResult
		res, err = dnhunter.NewEngine(opts...).RunSources(ctx)
		if err == nil {
			stats, db = res.Merged.Stats, res.Merged.DB
		}
	}
	if err == nil && analytics {
		pipe := dnhunter.NewAnalyticsPipeline(dnhunter.StreamingQueries(traces[0].OrgDB)...)
		pipe.ObserveDB(db)
		if pipe.Observed() != stats.Flows {
			err = fmt.Errorf("analytics observed %d flows, engine emitted %d", pipe.Observed(), stats.Flows)
		}
	}
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}
	runtime.ReadMemStats(&after)
	arenaAfter := netio.DefaultBlockPool().Stats()
	pkts := float64(packets)
	cell := Result{
		Analytics:      analytics,
		PktsPerSec:     pkts / elapsed.Seconds(),
		NsPerPkt:       float64(elapsed.Nanoseconds()) / pkts,
		AllocsPerPkt:   float64(after.Mallocs-before.Mallocs) / pkts,
		BytesPerPkt:    float64(after.TotalAlloc-before.TotalAlloc) / pkts,
		HeapInuseBytes: after.HeapInuse,
		GCCycles:       after.NumGC - before.NumGC,
		Flows:          stats.Flows,
		DNSResponses:   stats.DNSResponses,
		BlocksRetired:  arenaAfter.Retired - arenaBefore.Retired,
	}
	if cell.BlocksRetired > 0 {
		cell.BlockRetireAvgNs = float64(arenaAfter.RetireNs-arenaBefore.RetireNs) / float64(cell.BlocksRetired)
	}
	for _, rs := range rstats {
		cell.ReaderPkts = append(cell.ReaderPkts, rs.Pkts)
		cell.ReaderRingFullParks = append(cell.ReaderRingFullParks, rs.RingFullParks)
		cell.ReaderMeshFullParks = append(cell.ReaderMeshFullParks, rs.MeshFullParks)
	}
	return cell, nil
}

// parseInts parses a comma-separated integer list, rejecting values below
// minVal.
func parseInts(s string, minVal int) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", f, err)
		}
		if v < minVal {
			return nil, fmt.Errorf("value %d < %d", v, minVal)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
