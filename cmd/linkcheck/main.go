// Command linkcheck validates relative links in markdown files: every
// [text](target) must point at an existing file (resolved against the
// markdown file's directory), and a #fragment must name a heading in the
// target file (GitHub-style anchors). External schemes (http, https,
// mailto) are skipped — CI must not depend on the network. Exit status is
// nonzero when any link is broken.
//
//	linkcheck README.md docs/*.md
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck file.md ...")
		os.Exit(2)
	}
	broken := 0
	for _, path := range os.Args[1:] {
		errs, err := checkFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		for _, e := range errs {
			fmt.Println(e)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// linkRe matches inline links [text](target); images share the syntax
// with a leading ! and are checked the same way.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkFile returns one message per broken link in the file.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var errs []string
	dir := filepath.Dir(path)
	for i, line := range strings.Split(stripFenced(string(data)), "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if msg := checkLink(dir, path, target); msg != "" {
				errs = append(errs, fmt.Sprintf("%s:%d: %s", path, i+1, msg))
			}
		}
	}
	return errs, nil
}

// stripFenced blanks the interior of ``` fenced code blocks (line count
// preserved) so link syntax inside examples is not validated.
func stripFenced(s string) string {
	lines := strings.Split(s, "\n")
	fenced := false
	for i, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "```") {
			fenced = !fenced
			lines[i] = ""
			continue
		}
		if fenced {
			lines[i] = ""
		}
	}
	return strings.Join(lines, "\n")
}

// checkLink validates one link target; empty string means OK.
func checkLink(dir, from, target string) string {
	for _, scheme := range []string{"http://", "https://", "mailto:"} {
		if strings.HasPrefix(target, scheme) {
			return ""
		}
	}
	file, frag, _ := strings.Cut(target, "#")
	resolved := from
	if file != "" {
		resolved = filepath.Join(dir, file)
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, resolved)
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.HasSuffix(resolved, ".md") {
		return "" // anchors into non-markdown files are not checkable
	}
	ok, err := hasAnchor(resolved, frag)
	if err != nil {
		return fmt.Sprintf("broken link %q: %v", target, err)
	}
	if !ok {
		return fmt.Sprintf("broken link %q: no heading for anchor #%s in %s", target, frag, resolved)
	}
	return ""
}

// hasAnchor reports whether the markdown file has a heading whose
// GitHub-style anchor equals frag.
func hasAnchor(path, frag string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	seen := map[string]int{}
	for _, line := range strings.Split(stripFenced(string(data)), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		if heading == line || !strings.HasPrefix(heading, " ") {
			continue // not a heading (e.g. #!/bin/sh in unfenced text)
		}
		a := anchor(strings.TrimSpace(heading))
		// Duplicate headings get -1, -2, ... suffixes, like GitHub.
		if n := seen[a]; n > 0 {
			seen[a] = n + 1
			a = fmt.Sprintf("%s-%d", a, n)
		} else {
			seen[a] = 1
		}
		if a == frag {
			return true, nil
		}
	}
	return false, nil
}

// anchor converts a heading to its GitHub anchor: lowercase, spaces to
// hyphens, punctuation dropped.
func anchor(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
