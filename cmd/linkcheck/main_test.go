package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "docs/OPS.md", "# Ops Guide\n\n## Alert Thresholds\ntext\n")
	md := write(t, dir, "README.md", strings.Join([]string{
		"# Title",
		"[ops](docs/OPS.md)",
		"[thresholds](docs/OPS.md#alert-thresholds)",
		"[self](#title)",
		"[ext](https://example.com/x) [mail](mailto:a@b.c)",
		"```",
		"[not a link](missing.md)",
		"```",
	}, "\n"))
	errs, err := checkFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
}

func TestBrokenFileAndAnchor(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "docs/OPS.md", "# Ops\n")
	md := write(t, dir, "README.md", strings.Join([]string{
		"[gone](docs/MISSING.md)",
		"[bad](docs/OPS.md#nope)",
		"[badself](#nothere)",
	}, "\n"))
	errs, err := checkFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 3 {
		t.Fatalf("want 3 broken links, got %d: %v", len(errs), errs)
	}
	for i, want := range []string{"MISSING.md", "#nope", "#nothere"} {
		if !strings.Contains(errs[i], want) {
			t.Fatalf("error %d = %q, want mention of %q", i, errs[i], want)
		}
	}
}

func TestDuplicateHeadingAnchors(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "doc.md", "# Setup\n## Flags\ntext\n## Flags\nmore\n")
	md := write(t, dir, "README.md", "[a](doc.md#flags)\n[b](doc.md#flags-1)\n[c](doc.md#flags-2)\n")
	errs, err := checkFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 1 || !strings.Contains(errs[0], "#flags-2") {
		t.Fatalf("want exactly #flags-2 broken, got %v", errs)
	}
}

func TestAnchorConversion(t *testing.T) {
	for in, want := range map[string]string{
		"Alert Thresholds":        "alert-thresholds",
		"Engine.Serve(ctx)":       "engineservectx",
		"What `-shed` drops mean": "what--shed-drops-mean",
	} {
		if got := anchor(in); got != want {
			t.Fatalf("anchor(%q) = %q, want %q", in, got, want)
		}
	}
}
