// Command dnhunter runs the real-time sniffer pipeline over a pcap file:
// it decodes DNS responses into the resolver (the clients' cache replica),
// reconstructs and tags flows, and writes the labeled flow database as CSV.
// With -shards > 1 packets are hashed by client address onto parallel
// pipeline shards; the labeled flows and statistics are identical to a
// single-threaded run (CSV row order may differ).
//
// Usage:
//
//	dnhunter -pcap trace.pcap -out flows.csv [-shards 8] [-clist 1048576] [-stats]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	dnhunter "repro"
	"repro/internal/flows"
	"repro/internal/netio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dnhunter: ")
	pcapPath := flag.String("pcap", "", "input pcap file (required)")
	outPath := flag.String("out", "flows.csv", "output CSV of labeled flows")
	shards := flag.Int("shards", 1, "parallel pipeline shards (-1 = one per CPU)")
	clist := flag.Int("clist", 1<<20, "resolver Clist size L (per shard)")
	history := flag.Int("history", 0, "multi-label history per (client,server) key")
	showStats := flag.Bool("stats", true, "print pipeline statistics")
	flag.Parse()
	if *pcapPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Ctrl-C cancels the run instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	in, err := os.Open(*pcapPath)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	src, err := netio.NewReader(in)
	if err != nil {
		log.Fatal(err)
	}

	eng := dnhunter.NewEngine(
		dnhunter.WithShards(*shards),
		dnhunter.WithResolver(dnhunter.ResolverConfig{ClistSize: *clist, History: *history}),
	)
	res, err := eng.Run(ctx, src)
	if err != nil {
		log.Fatal(err)
	}

	out, err := os.Create(*outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := res.DB.WriteCSV(out); err != nil {
		log.Fatal(err)
	}

	if *showStats {
		st := res.Stats
		fmt.Printf("packets: %d frames (%d TCP, %d UDP, %d malformed)\n",
			st.Parser.Frames, st.Parser.TCPSegments, st.Parser.UDPDatagram, st.Parser.Malformed)
		fmt.Printf("dns: %d responses (%d empty, %d malformed), useless %.0f%%\n",
			st.DNSResponses, st.DNSResponsesEmpty, st.DNSMalformed, 100*st.UselessDNSFraction())
		fmt.Printf("resolver: %s\n", st.Resolver)
		fmt.Printf("flows: %d total, %d labeled (%.1f%%)\n",
			st.Flows, st.LabeledFlows, 100*float64(st.LabeledFlows)/float64(max64(st.Flows, 1)))
		cov := res.DB.Coverage(0)
		for _, p := range []flows.L7Proto{flows.L7HTTP, flows.L7TLS, flows.L7P2P, flows.L7Unknown} {
			if cov.Total[p] > 0 {
				fmt.Printf("  %-5s %6d flows, %5.1f%% labeled\n", p, cov.Total[p], 100*cov.Ratio(p))
			}
		}
	}
	fmt.Printf("wrote %s (%d flows, %d shards)\n", *outPath, res.DB.Len(), eng.Shards())
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
