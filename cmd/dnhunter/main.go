// Command dnhunter runs the real-time sniffer pipeline over a pcap file:
// it decodes DNS responses into the resolver (the clients' cache replica),
// reconstructs and tags flows, and writes the labeled flow database as CSV.
//
// Usage:
//
//	dnhunter -pcap trace.pcap -out flows.csv [-clist 1048576] [-stats]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/flows"
	"repro/internal/netio"
	"repro/internal/resolver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dnhunter: ")
	pcapPath := flag.String("pcap", "", "input pcap file (required)")
	outPath := flag.String("out", "flows.csv", "output CSV of labeled flows")
	clist := flag.Int("clist", 1<<20, "resolver Clist size L")
	history := flag.Int("history", 0, "multi-label history per (client,server) key")
	showStats := flag.Bool("stats", true, "print pipeline statistics")
	flag.Parse()
	if *pcapPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	in, err := os.Open(*pcapPath)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	src, err := netio.NewReader(in)
	if err != nil {
		log.Fatal(err)
	}

	h := core.New(core.Config{
		Resolver: resolver.Config{ClistSize: *clist, History: *history},
	})
	if err := h.Run(src); err != nil {
		log.Fatal(err)
	}

	out, err := os.Create(*outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := h.DB().WriteCSV(out); err != nil {
		log.Fatal(err)
	}

	if *showStats {
		st := h.Stats()
		fmt.Printf("packets: %d frames (%d TCP, %d UDP, %d malformed)\n",
			st.Parser.Frames, st.Parser.TCPSegments, st.Parser.UDPDatagram, st.Parser.Malformed)
		fmt.Printf("dns: %d responses (%d empty, %d malformed), useless %.0f%%\n",
			st.DNSResponses, st.DNSResponsesEmpty, st.DNSMalformed, 100*st.UselessDNSFraction())
		fmt.Printf("resolver: %s\n", st.Resolver)
		fmt.Printf("flows: %d total, %d labeled (%.1f%%)\n",
			st.Flows, st.LabeledFlows, 100*float64(st.LabeledFlows)/float64(max64(st.Flows, 1)))
		cov := h.DB().Coverage(0)
		for _, p := range []flows.L7Proto{flows.L7HTTP, flows.L7TLS, flows.L7P2P, flows.L7Unknown} {
			if cov.Total[p] > 0 {
				fmt.Printf("  %-5s %6d flows, %5.1f%% labeled\n", p, cov.Total[p], 100*cov.Ratio(p))
			}
		}
	}
	fmt.Printf("wrote %s (%d flows)\n", *outPath, h.DB().Len())
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
