// Command dnhunter runs the real-time sniffer pipeline over pcap captures:
// it decodes DNS responses into the resolver (the clients' cache replica),
// reconstructs and tags flows, and writes the labeled flow database as CSV.
// With -shards > 1 packets are hashed by client address onto parallel
// pipeline shards; the labeled flows and statistics are identical to a
// single-threaded run (CSV row order may differ).
//
// A single capture:
//
//	dnhunter -pcap trace.pcap -out flows.csv [-shards 8] [-clist 1048576] [-stats]
//
// Multiple vantage points in one run (the paper's multi-deployment
// analysis): repeat -trace with name=path pairs. Each vantage runs its own
// pipeline concurrently; the CSV's vantage column records which capture
// each flow came from, and statistics print per vantage plus aggregate.
//
//	dnhunter -trace US=us.pcap -trace EU1=eu1.pcap -trace EU2=eu2.pcap -out flows.csv
//
// Streaming service mode (run-forever ingestion with windowed output, an
// HTTP metrics endpoint, overload shedding, and resolver checkpointing —
// see docs/OPERATIONS.md):
//
//	dnhunter serve -listen :8053 -pcap trace.pcap -loop 0 [-window 5m] [-shed] [-checkpoint clist.ckpt]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	dnhunter "repro"
	"repro/internal/flows"
	"repro/internal/netio"
)

// traceFlag collects repeatable -trace name=path arguments.
type traceFlag struct {
	names []string
	paths []string
}

func (t *traceFlag) String() string { return strings.Join(t.names, ",") }

func (t *traceFlag) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	t.names = append(t.names, name)
	t.paths = append(t.paths, path)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dnhunter: ")
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	pcapPath := flag.String("pcap", "", "input pcap file (single-vantage mode)")
	var traces traceFlag
	flag.Var(&traces, "trace", "named vantage capture as name=path; repeat for multi-vantage runs")
	outPath := flag.String("out", "flows.csv", "output CSV of labeled flows")
	shards := flag.Int("shards", 1, "parallel pipeline shards per vantage (-1 = one per CPU)")
	clist := flag.Int("clist", 1<<20, "resolver Clist size L (per shard)")
	history := flag.Int("history", 0, "multi-label history per (client,server) key")
	showStats := flag.Bool("stats", true, "print pipeline statistics")
	flag.Parse()
	if *pcapPath == "" && len(traces.names) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *pcapPath != "" && len(traces.names) > 0 {
		log.Fatal("use either -pcap or -trace, not both")
	}

	// Ctrl-C cancels the run instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []dnhunter.Option{
		dnhunter.WithShards(*shards),
		dnhunter.WithResolver(dnhunter.ResolverConfig{ClistSize: *clist, History: *history}),
	}
	open := func(path string) *netio.Reader {
		in, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		// The process exits right after the run; readers stay open for it.
		src, err := netio.NewReader(in)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		return src
	}

	var (
		res            *dnhunter.Result
		perVantage     map[string]*dnhunter.Result
		order          []string
		resolvedShards int
	)
	if *pcapPath != "" {
		eng := dnhunter.NewEngine(opts...)
		resolvedShards = eng.Shards()
		r, err := eng.Run(ctx, open(*pcapPath))
		if err != nil {
			log.Fatal(err)
		}
		res = r
	} else {
		for i, name := range traces.names {
			opts = append(opts, dnhunter.WithSource(name, open(traces.paths[i])))
		}
		eng := dnhunter.NewEngine(opts...)
		resolvedShards = eng.Shards()
		multi, err := eng.RunSources(ctx)
		if err != nil {
			log.Fatal(err)
		}
		res = multi.Merged
		perVantage = multi.PerVantage
		order = multi.Vantages
	}

	out, err := os.Create(*outPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.DB.WriteCSV(out); err != nil {
		log.Fatal(err)
	}
	if err := out.Close(); err != nil {
		log.Fatal(err)
	}

	if *showStats {
		for _, name := range order {
			fmt.Printf("[%s]\n", name)
			printStats(perVantage[name])
		}
		if len(order) > 0 {
			fmt.Printf("[aggregate]\n")
		}
		printStats(res)
	}
	fmt.Printf("wrote %s (%d flows, %d shards)\n", *outPath, res.DB.Len(), resolvedShards)
}

func printStats(res *dnhunter.Result) {
	st := res.Stats
	fmt.Printf("packets: %d frames (%d TCP, %d UDP, %d malformed)\n",
		st.Parser.Frames, st.Parser.TCPSegments, st.Parser.UDPDatagram, st.Parser.Malformed)
	fmt.Printf("dns: %d responses (%d empty, %d malformed), useless %.0f%%\n",
		st.DNSResponses, st.DNSResponsesEmpty, st.DNSMalformed, 100*st.UselessDNSFraction())
	fmt.Printf("resolver: %s\n", st.Resolver)
	fmt.Printf("flows: %d total, %d labeled (%.1f%%)\n",
		st.Flows, st.LabeledFlows, 100*float64(st.LabeledFlows)/float64(max64(st.Flows, 1)))
	cov := res.DB.Coverage(0)
	for _, p := range []flows.L7Proto{flows.L7HTTP, flows.L7TLS, flows.L7P2P, flows.L7Unknown} {
		if cov.Total[p] > 0 {
			fmt.Printf("  %-5s %6d flows, %5.1f%% labeled\n", p, cov.Total[p], 100*cov.Ratio(p))
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
