// The serve subcommand: run-forever streaming ingestion. Where the
// default batch mode reads a capture, writes one CSV, and exits, serve
// streams until SIGINT/SIGTERM, flushing flows through rolling windows,
// exposing live metrics over HTTP, optionally shedding load instead of
// stalling the reader, and checkpointing resolver state across restarts.
// docs/OPERATIONS.md is the runbook.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	dnhunter "repro"
	"repro/internal/netio"
	"repro/internal/serve"
)

func runServe(args []string) {
	fs := flag.NewFlagSet("dnhunter serve", flag.ExitOnError)
	listen := fs.String("listen", ":8053", "HTTP listen address for /healthz, /metrics, /stats.json")
	pcapPath := fs.String("pcap", "", "input pcap file to stream")
	scenario := fs.String("scenario", "", `synthetic input instead of -pcap: "quick" or a paper capture name (US-3G, EU1-FTTH, ...)`)
	scale := fs.Float64("scale", 1, "client-population scale for -scenario")
	seed := fs.Uint64("seed", 1, "RNG seed for -scenario")
	loop := fs.Int("loop", 1, "replay the input this many times; 0 loops forever")
	speedup := fs.Float64("speedup", 0, "pace replay to the capture timeline at this multiple; 0 replays at full speed")
	window := fs.Duration("window", 5*time.Minute, "flow-store window width (trace time)")
	shed := fs.Bool("shed", false, "shed load instead of stalling the reader when a shard backs up (needs -shards > 1)")
	checkpoint := fs.String("checkpoint", "", "resolver checkpoint file: restored at start, rewritten after a clean drain")
	analyticsOn := fs.Bool("analytics", false, "run the standard streaming analytics queries; adds /analytics.json and top-k gauges to /metrics")
	spool := fs.String("spool", "", "directory receiving one CSV per completed window; empty discards windows")
	shards := fs.Int("shards", 1, "parallel pipeline shards (-1 = one per CPU)")
	readers := fs.Int("readers", 1, "parallel reader/dispatcher partitions (-1 = one per CPU); needs -shards > 1 and -client-nets")
	clientNets := fs.String("client-nets", "", "comma-separated client CIDRs (e.g. 10.0.0.0/16); orients flows and enables -readers > 1")
	clist := fs.Int("clist", 1<<20, "resolver Clist size L (per shard)")
	history := fs.Int("history", 0, "multi-label history per (client,server) key")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain after a stop signal")
	srcRestarts := fs.Int("source-restarts", 0, "supervise the source: restart up to N times on transient read errors (0 disables supervision)")
	srcBackoff := fs.Duration("source-backoff", 50*time.Millisecond, "first restart's nominal backoff, doubling per consecutive restart")
	srcBackoffMax := fs.Duration("source-backoff-max", 5*time.Second, "backoff ceiling for supervised restarts")
	fs.Parse(args)

	if (*pcapPath == "") == (*scenario == "") {
		log.Fatal("serve: need exactly one of -pcap or -scenario")
	}

	var src dnhunter.PacketSource
	if *pcapPath != "" {
		in, err := os.Open(*pcapPath)
		if err != nil {
			log.Fatal(err)
		}
		defer in.Close()
		rd, err := netio.NewReader(in)
		if err != nil {
			log.Fatalf("%s: %v", *pcapPath, err)
		}
		if *loop != 1 {
			// Looping needs the packets in memory; drain the reader once.
			pkts, err := readAll(rd)
			if err != nil {
				log.Fatalf("%s: %v", *pcapPath, err)
			}
			src = dnhunter.NewLoopSource(pkts, 0, *loop)
		} else {
			src = rd
		}
	} else {
		var tr *dnhunter.Trace
		if *scenario == "quick" {
			tr = dnhunter.GenerateQuickTrace(*seed)
		} else {
			tr = dnhunter.GenerateTrace(*scenario, *scale, *seed)
		}
		src = dnhunter.NewLoopSource(tr.Packets, 0, *loop)
	}
	if *speedup > 0 {
		src = dnhunter.NewPacedSource(src, *speedup)
	}

	if *spool != "" {
		if err := os.MkdirAll(*spool, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	scfg := dnhunter.ServeConfig{
		Window:         *window,
		Shed:           *shed,
		CheckpointPath: *checkpoint,
		DrainTimeout:   *drainTimeout,
	}
	if *srcRestarts > 0 {
		scfg.Restart = &dnhunter.RestartPolicy{
			MaxRestarts: *srcRestarts,
			BaseBackoff: *srcBackoff,
			MaxBackoff:  *srcBackoffMax,
			Seed:        *seed,
		}
	}
	if dir := *spool; dir != "" {
		scfg.FlushWindow = func(w dnhunter.Window) error {
			return spoolWindow(dir, w)
		}
	}
	var pipe *dnhunter.AnalyticsPipeline
	if *analyticsOn {
		pipe = dnhunter.NewAnalyticsPipeline(dnhunter.StreamingQueries(nil)...)
		scfg.ObserveWindow = pipe.ObserveWindow
	}

	opts := []dnhunter.Option{
		dnhunter.WithShards(*shards),
		dnhunter.WithReaders(*readers),
		dnhunter.WithResolver(dnhunter.ResolverConfig{ClistSize: *clist, History: *history}),
	}
	if *clientNets != "" {
		var fcfg dnhunter.FlowsConfig
		for _, cidr := range strings.Split(*clientNets, ",") {
			p, err := netip.ParsePrefix(strings.TrimSpace(cidr))
			if err != nil {
				log.Fatalf("-client-nets: %v", err)
			}
			fcfg.ClientNets = append(fcfg.ClientNets, p)
		}
		opts = append(opts, dnhunter.WithFlows(fcfg))
	}
	eng := dnhunter.NewEngine(opts...)
	srv := eng.Server(scfg)

	ms := serve.New(serve.Config{Listen: *listen, Metrics: srv.Metrics(), Analytics: pipe})
	httpErrs := make(chan error, 1)
	if err := ms.Start(httpErrs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving on http://%s (shards=%d readers=%d window=%v shed=%v)\n",
		ms.Addr(), eng.Shards(), eng.Readers(), *window, *shed)

	// SIGINT/SIGTERM trigger the graceful drain, not an abort.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := srv.Serve(ctx, src)
	if err != nil {
		log.Fatal(err)
	}

	sdCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ms.Shutdown(sdCtx); err != nil {
		log.Printf("metrics shutdown: %v", err)
	} else if err := <-httpErrs; err != nil {
		log.Printf("metrics server: %v", err)
	}

	fmt.Printf("drained: %d packets, %d flows (%d labeled), %d windows\n",
		rep.Packets, rep.Stats.Flows, rep.Stats.LabeledFlows, rep.Windows)
	if rep.Dropped.Flows+rep.Dropped.DNS > 0 {
		fmt.Printf("shed: %d flow entries, %d dns entries, %d bytes\n",
			rep.Dropped.Flows, rep.Dropped.DNS, rep.Dropped.Bytes)
	}
	if rep.SourceRestarts > 0 {
		fmt.Printf("degraded: source restarted %d times (transient errors recovered)\n",
			rep.SourceRestarts)
	}
	if *checkpoint != "" {
		if rep.FreshStart != "" {
			fmt.Printf("checkpoint: rejected (%s); started fresh\n", rep.FreshStart)
		}
		fmt.Printf("checkpoint: restored %d entries, wrote %d to %s\n",
			rep.RestoredEntries, rep.CheckpointedEntries, *checkpoint)
	}
	if pipe != nil {
		fmt.Printf("analytics: observed %d flows across %s\n",
			pipe.Observed(), strings.Join(pipe.Names(), ", "))
	}
}

// readAll drains a packet source into memory (for -loop over a pcap).
func readAll(src dnhunter.PacketSource) ([]dnhunter.Packet, error) {
	var pkts []dnhunter.Packet
	for {
		p, err := src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return pkts, nil
			}
			return pkts, err
		}
		// Sources reuse their read buffer; looping needs stable copies.
		p.Data = append([]byte(nil), p.Data...)
		pkts = append(pkts, p)
	}
}

// spoolWindow writes one completed window as CSV into dir, named by the
// window index and its trace-time bounds.
func spoolWindow(dir string, w dnhunter.Window) error {
	name := fmt.Sprintf("window-%06d-%ds-%ds.csv", w.Index,
		int(w.Start.Seconds()), int(w.End.Seconds()))
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := w.DB.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
