package dnhunter

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/flows"
	"repro/internal/netio"
)

// Sink re-exports and adapters: the event-stream interface that replaces
// the legacy Options.OnTag / Config.OnDNSResponse callback fields.
type (
	// Sink receives pipeline events (tags, DNS responses, finished flows)
	// and a Close at end of run. Embed NopSink to implement it partially.
	Sink = core.Sink
	// NopSink ignores every event; embed it in custom sinks.
	NopSink = core.NopSink
	// FuncSink adapts plain functions to the Sink interface.
	FuncSink = core.FuncSink
	// FlowsConfig tunes the flow table (idle timeout, client networks).
	FlowsConfig = flows.Config
	// PacketSource yields packets in capture order (pcap reader, in-memory
	// slice, channel, ...).
	PacketSource = netio.PacketSource
	// ReaderStat is one reader partition's backpressure counters (see
	// Result.Readers and the serve-mode /metrics reader gauges).
	ReaderStat = core.ReaderStat
)

// MultiSink fans events out to several sinks in order.
func MultiSink(sinks ...Sink) Sink { return core.MultiSink(sinks...) }

// SyncSink serializes a sink behind a mutex; the Engine already does this
// for its own shards, so it is only needed when one sink is shared across
// independently running pipelines.
func SyncSink(s Sink) Sink { return core.SyncSink(s) }

// engineOptions is the accumulated functional-option state.
type engineOptions struct {
	cfg          core.EngineConfig
	keepDNSTimes bool
	sources      []core.NamedSource
}

// Option configures an Engine.
type Option func(*engineOptions)

// WithShards sets the number of parallel pipeline shards. Packets are
// hashed by client address onto shards, each owning its own resolver
// Clist, flow table, and pending-tag map. 1 (the default) reproduces the
// deterministic single-threaded pipeline exactly; any n produces the
// identical flow set and aggregate statistics as long as the per-shard
// Clist never overflows (evictions are per-shard, so an overflowing
// Clist labels slightly differently across shard counts — size it to the
// workload; the 1M-entry default has ample headroom). Pass a negative
// value to use one shard per available CPU.
func WithShards(n int) Option {
	return func(o *engineOptions) { o.cfg.Shards = n }
}

// WithReaders sets the number of parallel reader/dispatcher partitions
// feeding the shards. 1 (the default) keeps the classic single-dispatcher
// pipeline; n > 1 stripes raw frames over n dispatchers by a header-peek
// hash of the client address, each with its own parser and flow tracker,
// so the parse stage scales past one core. Pass a negative value to use
// one partition per available CPU. Requires more than one shard AND
// configured client networks (WithFlows' ClientNets) — otherwise the
// engine falls back to a single reader. Aggregate results are equivalent
// to a single reader's; see internal/core's stripe documentation for the
// exact guarantees and the best-effort cases.
func WithReaders(n int) Option {
	return func(o *engineOptions) { o.cfg.Readers = n }
}

// WithResolver overrides the per-shard resolver configuration (defaults:
// 1M-entry Clist, hash maps).
func WithResolver(cfg ResolverConfig) Option {
	return func(o *engineOptions) { o.cfg.Resolver = cfg }
}

// WithFlows overrides the per-shard flow-table configuration (idle
// timeout, client networks). The Engine owns the table's record plumbing
// and sweep scheduling, so the OnRecord and DisableAutoSweep fields are
// ignored — observe finished flows through Sink.OnFlow instead.
func WithFlows(cfg FlowsConfig) Option {
	return func(o *engineOptions) { o.cfg.Flows = cfg }
}

// WithSink attaches the event sink. The Engine serializes all sink calls
// within a run, so implementations need no internal locking; Close fires
// exactly once per Run. A Sink instance belongs to one run at a time — an
// Engine with a sink must not run concurrently with itself.
func WithSink(s Sink) Option {
	return func(o *engineOptions) { o.cfg.Sink = s }
}

// WithBatch sets the dispatcher→shard hand-off size (packets per batch,
// default 512). Only meaningful with more than one shard.
func WithBatch(n int) Option {
	return func(o *engineOptions) { o.cfg.Batch = n }
}

// WithTruth supplies ground-truth FQDNs for flows (used only for scoring,
// never for labeling). Engine.RunTrace wires this automatically from the
// trace sidecar.
func WithTruth(fn func(FlowKey) string) Option {
	return func(o *engineOptions) { o.cfg.Truth = fn }
}

// WithDNSTimes collects DNS response timestamps into Result.DNSTimes
// (needed by the Fig. 14 experiment).
func WithDNSTimes() Option {
	return func(o *engineOptions) { o.keepDNSTimes = true }
}

// WithSource registers one named packet source — a vantage point — for
// RunSources. Each vantage runs its own full pipeline (resolver, flow
// table, shards) concurrently with the others; its name labels every event
// and flow record it produces. Names must be non-empty and unique. Sources
// are consumed by one RunSources call: register fresh sources (or rebuild
// the Engine) before running again.
func WithSource(name string, src PacketSource) Option {
	return func(o *engineOptions) {
		o.sources = append(o.sources, core.NamedSource{Name: name, Src: src})
	}
}

// WithTraceSource registers a synthetic trace as a named vantage for
// RunSources, wiring the trace's ground-truth sidecar for scoring. Flow
// keys collide across vantage address spaces, so each trace must carry its
// own truth function — this option handles that.
func WithTraceSource(name string, tr *Trace) Option {
	return func(o *engineOptions) {
		o.sources = append(o.sources, core.NamedSource{Name: name, Src: tr.Source(), Truth: tr.TruthFunc()})
	}
}

// WithMergeWindow bounds the virtual-clock skew between concurrently
// ingested vantages in RunSources: no vantage runs more than d of trace
// time ahead of the slowest active one, so a shared Sink sees a roughly
// time-aligned interleave of the vantage event streams. 0 (the default)
// means 1 minute; a negative d disables pacing entirely. Single-source runs
// ignore it.
func WithMergeWindow(d time.Duration) Option {
	return func(o *engineOptions) { o.cfg.MergeWindow = d }
}

// Engine is the concurrent DN-Hunter pipeline: the replacement for the
// single-threaded Pipeline/RunTrace API. An Engine is an immutable
// configuration handle — every Run builds fresh per-shard state and a
// fresh flow database, so one Engine may be reused across traces, even
// concurrently unless a Sink is configured (a Sink instance belongs to
// one run at a time).
//
//	eng := dnhunter.NewEngine(dnhunter.WithShards(-1))
//	res, err := eng.RunTrace(ctx, trace)
type Engine struct {
	opts    engineOptions
	shards  int
	readers int
}

// NewEngine assembles an Engine from functional options. The shard and
// reader counts are resolved here (0 → 1, negative → GOMAXPROCS at
// construction time; readers additionally clamp to 1 without multiple
// shards and client networks).
func NewEngine(opts ...Option) *Engine {
	e := &Engine{}
	for _, opt := range opts {
		opt(&e.opts)
	}
	norm := core.NewEngine(e.opts.cfg)
	e.opts.cfg.Shards = norm.Shards()
	e.opts.cfg.Readers = norm.Readers()
	e.shards = e.opts.cfg.Shards
	e.readers = e.opts.cfg.Readers
	return e
}

// Shards reports the resolved shard count.
func (e *Engine) Shards() int { return e.shards }

// Readers reports the resolved reader-partition count.
func (e *Engine) Readers() int { return e.readers }

// Run drains the packet source through the pipeline and returns the merged
// labeled-flow database and statistics. It stops early with ctx.Err() when
// the context is cancelled; the sink's Close always fires exactly once.
func (e *Engine) Run(ctx context.Context, src PacketSource) (*Result, error) {
	return e.run(ctx, src, nil)
}

// RunTrace runs a synthetic trace through the pipeline, wiring the trace's
// ground-truth sidecar for scoring.
func (e *Engine) RunTrace(ctx context.Context, tr *Trace) (*Result, error) {
	res, err := e.run(ctx, tr.Source(), tr.TruthFunc())
	if err != nil {
		return nil, err
	}
	res.Trace = tr
	return res, nil
}

// MultiResult is the outcome of one multi-vantage RunSources call.
type MultiResult struct {
	// Vantages lists the source names in registration order.
	Vantages []string
	// PerVantage holds each vantage's own database, statistics, and (with
	// WithDNSTimes) DNS response times.
	PerVantage map[string]*Result
	// Merged combines all vantages: every flow stamped with its vantage
	// label in one database (partition it back with FlowDB.ByVantage),
	// aggregate statistics, and the merged DNS timeline.
	Merged *Result
}

// RunSources drains every vantage registered with WithSource /
// WithTraceSource through its own pipeline concurrently — the multi-vantage
// ingestion mode behind the paper's cross-vantage comparisons. The
// configured Sink is shared (events carry Vantage labels; Close fires
// exactly once); see WithMergeWindow for how vantages are held together in
// trace time. A single registered source produces aggregate Stats and flow
// multisets identical to Run over that source.
func (e *Engine) RunSources(ctx context.Context) (*MultiResult, error) {
	if len(e.opts.sources) == 0 {
		return nil, fmt.Errorf("dnhunter: RunSources: no sources registered (use WithSource)")
	}
	cfg := e.opts.cfg
	perDNS := make(map[string][]time.Duration)
	if e.opts.keepDNSTimes {
		collector := &FuncSink{DNS: func(ev DNSEvent) { perDNS[ev.Vantage] = append(perDNS[ev.Vantage], ev.At) }}
		if cfg.Sink != nil {
			cfg.Sink = MultiSink(cfg.Sink, collector)
		} else {
			cfg.Sink = collector
		}
	}
	out, err := core.NewEngine(cfg).RunSources(ctx, e.opts.sources)
	if err != nil {
		return nil, err
	}
	mr := &MultiResult{
		Vantages:   out.Vantages,
		PerVantage: make(map[string]*Result, len(out.Vantages)),
		Merged:     &Result{DB: out.DB, Stats: out.Stats},
	}
	for _, name := range out.Vantages {
		vr := out.PerVantage[name]
		res := &Result{DB: vr.DB, Stats: vr.Stats}
		if e.opts.keepDNSTimes {
			res.DNSTimes = perDNS[name]
			// Shards (and sink interleaving) deliver DNS events out of
			// trace order; restore it.
			sort.Slice(res.DNSTimes, func(i, j int) bool { return res.DNSTimes[i] < res.DNSTimes[j] })
			mr.Merged.DNSTimes = append(mr.Merged.DNSTimes, res.DNSTimes...)
		}
		mr.PerVantage[name] = res
	}
	if e.opts.keepDNSTimes {
		sort.Slice(mr.Merged.DNSTimes, func(i, j int) bool { return mr.Merged.DNSTimes[i] < mr.Merged.DNSTimes[j] })
	}
	return mr, nil
}

func (e *Engine) run(ctx context.Context, src PacketSource, truth func(FlowKey) string) (*Result, error) {
	cfg := e.opts.cfg
	if cfg.Truth == nil {
		cfg.Truth = truth
	}
	res := &Result{}
	if e.opts.keepDNSTimes {
		collector := &FuncSink{DNS: func(ev DNSEvent) { res.DNSTimes = append(res.DNSTimes, ev.At) }}
		if cfg.Sink != nil {
			cfg.Sink = MultiSink(cfg.Sink, collector)
		} else {
			cfg.Sink = collector
		}
	}
	eng := core.NewEngine(cfg)
	out, err := eng.Run(ctx, src)
	if err != nil {
		return nil, err
	}
	res.DB, res.Stats, res.Readers = out.DB, out.Stats, out.Readers
	if eng.Shards() > 1 {
		// Shards deliver DNS events interleaved; restore trace order.
		sort.Slice(res.DNSTimes, func(i, j int) bool { return res.DNSTimes[i] < res.DNSTimes[j] })
	}
	return res, nil
}
