package dnhunter

// bench_test.go regenerates every table and figure of the paper's
// evaluation as a testing.B target (run: go test -bench=. -benchmem).
// Trace synthesis and the pipeline run happen once per scenario and are
// shared; each bench times the experiment's analytics and reports its
// headline result as a custom metric, so `go test -bench` output doubles
// as the reproduction record.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/flows"
	"repro/internal/resolver"
	"repro/internal/synth"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
)

// suite returns the shared, lazily-built experiment suite.
func suite() *experiments.Suite {
	benchOnce.Do(func() {
		benchSuite = experiments.NewSuite(0.35, 1)
		benchSuite.LiveDays = 4
	})
	return benchSuite
}

func BenchmarkTable1Datasets(b *testing.B) {
	s := suite()
	for _, name := range synth.ScenarioNames {
		s.Run(name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table1()
	}
}

func BenchmarkTable2HitRatio(b *testing.B) {
	s := suite()
	for _, name := range synth.ScenarioNames {
		s.Run(name)
	}
	b.ResetTimer()
	var hit float64
	for i := 0; i < b.N; i++ {
		hit = s.Table2Data(synth.NameEU1ADSL1)[flows.L7HTTP]
	}
	b.ReportMetric(100*hit, "%http-hit")
	b.ReportMetric(100*s.Table2Data(synth.NameUS3G)[flows.L7HTTP], "%http-hit-3g")
}

func BenchmarkTable3ReverseLookup(b *testing.B) {
	s := suite()
	s.Run(synth.NameEU1ADSL2)
	b.ResetTimer()
	var res analytics.CompareResult
	for i := 0; i < b.N; i++ {
		_, res = s.Table3()
	}
	b.ReportMetric(100*res.Fraction(analytics.MatchExact), "%exact")
	b.ReportMetric(100*res.Fraction(analytics.MatchNone), "%no-answer")
}

func BenchmarkTable4Certificates(b *testing.B) {
	s := suite()
	s.Run(synth.NameEU1ADSL2)
	b.ResetTimer()
	var res analytics.CompareResult
	for i := 0; i < b.N; i++ {
		_, res = s.Table4()
	}
	b.ReportMetric(100*res.Fraction(analytics.MatchExact), "%cert-exact")
	b.ReportMetric(100*res.Fraction(analytics.MatchNone), "%no-cert")
}

func BenchmarkTable5ContentDiscovery(b *testing.B) {
	s := suite()
	s.Run(synth.NameUS3G)
	s.Run(synth.NameEU1ADSL1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Table5Data()
	}
}

func BenchmarkTable6TagsWellKnown(b *testing.B) {
	s := suite()
	run := s.Run(synth.NameEU1FTTH)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, port := range experiments.Table6Ports {
			analytics.ExtractTags(run.DB, port, 5)
		}
	}
}

func BenchmarkTable7TagsUnknown(b *testing.B) {
	s := suite()
	run := s.Run(synth.NameUS3G)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, port := range experiments.Table7Ports {
			analytics.ExtractTags(run.DB, port, 5)
		}
	}
}

func BenchmarkTable8Appspot(b *testing.B) {
	s := suite()
	s.Live()
	b.ResetTimer()
	var rep *analytics.AppspotReport
	for i := 0; i < b.N; i++ {
		_, rep = s.Table8()
	}
	b.ReportMetric(float64(rep.TrackerFlows), "tracker-flows")
	b.ReportMetric(float64(rep.GeneralFlows), "general-flows")
}

func BenchmarkTable9UselessDNS(b *testing.B) {
	s := suite()
	for _, name := range synth.ScenarioNames {
		s.Run(name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table9()
	}
	b.ReportMetric(100*s.Run(synth.NameEU1ADSL1).Stats.UselessDNSFraction(), "%useless-eu")
	b.ReportMetric(100*s.Run(synth.NameUS3G).Stats.UselessDNSFraction(), "%useless-3g")
}

func BenchmarkFigure3FanoutCDF(b *testing.B) {
	s := suite()
	s.Run(synth.NameEU2ADSL)
	b.ResetTimer()
	var fqdnSingle, ipSingle float64
	for i := 0; i < b.N; i++ {
		_, fqdnSingle, ipSingle = s.Figure3()
	}
	b.ReportMetric(100*fqdnSingle, "%fqdn-1ip")
	b.ReportMetric(100*ipSingle, "%ip-1fqdn")
}

func BenchmarkFigure4ServerTimeseries(b *testing.B) {
	s := suite()
	s.Run(synth.NameEU1ADSL2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Figure4()
	}
}

func BenchmarkFigure5CDNTimeseries(b *testing.B) {
	s := suite()
	s.Run(synth.NameEU1ADSL2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Figure5()
	}
}

func BenchmarkFigure6BirthProcess(b *testing.B) {
	s := suite()
	s.Live()
	b.ResetTimer()
	var bs *analytics.BirthSeries
	for i := 0; i < b.N; i++ {
		_, bs = s.Figure6()
	}
	b.ReportMetric(bs.GrowthRatio(bs.FQDN), "fqdn-late-growth")
	b.ReportMetric(bs.GrowthRatio(bs.Server), "ip-late-growth")
}

func BenchmarkFigure7DomainTree(b *testing.B) {
	s := suite()
	s.Run(synth.NameUS3G)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Figure7()
	}
}

func BenchmarkFigure8DomainTree(b *testing.B) {
	s := suite()
	s.Run(synth.NameUS3G)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Figure8()
	}
}

func BenchmarkFigure9Heatmap(b *testing.B) {
	s := suite()
	s.Run(synth.NameEU1ADSL1)
	s.Run(synth.NameUS3G)
	s.Run(synth.NameEU2ADSL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Figure9()
	}
}

func BenchmarkFigure10TagCloud(b *testing.B) {
	s := suite()
	s.Live()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Figure10()
	}
}

func BenchmarkFigure11Trackers(b *testing.B) {
	s := suite()
	s.Live()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Figure11()
	}
}

func BenchmarkFigure12FirstFlowDelay(b *testing.B) {
	s := suite()
	for _, name := range synth.ScenarioNames {
		s.Run(name)
	}
	b.ResetTimer()
	var p1 float64
	for i := 0; i < b.N; i++ {
		_, m := s.Figure12And13()
		p1 = m[synth.NameEU1FTTH][0].At(1)
	}
	b.ReportMetric(100*p1, "%first<=1s")
}

func BenchmarkFigure13AnyFlowDelay(b *testing.B) {
	s := suite()
	run := s.Run(synth.NameEU1ADSL1)
	b.ResetTimer()
	var within float64
	for i := 0; i < b.N; i++ {
		_, any := analytics.DelayCDFs(run.DB)
		within = any.At(3600)
	}
	b.ReportMetric(100*within, "%any<=1h")
}

func BenchmarkFigure14DNSRate(b *testing.B) {
	s := suite()
	run := s.Run(synth.NameEU1ADSL1)
	b.ResetTimer()
	var peak float64
	for i := 0; i < b.N; i++ {
		vals := analytics.DNSRate(run.DNSTimes, 10*time.Minute)
		peak = 0
		for _, v := range vals {
			if v > peak {
				peak = v
			}
		}
	}
	b.ReportMetric(peak, "peak-resp/10min")
}

// --- Ablation benches: the design choices DESIGN.md calls out. ---

func BenchmarkAblationClistSize(b *testing.B) {
	s := suite()
	for _, L := range []int{256, 4096, 1 << 18} {
		L := L
		b.Run(sizeName(L), func(b *testing.B) {
			var hit float64
			for i := 0; i < b.N; i++ {
				run := s.RunWithResolver(synth.NameEU1FTTH, resolver.Config{ClistSize: L})
				hit = run.Stats.Resolver.HitRatio()
			}
			b.ReportMetric(100*hit, "%hit")
		})
	}
}

func sizeName(L int) string {
	switch {
	case L >= 1<<20:
		return "L1M"
	case L >= 1<<18:
		return "L256k"
	case L >= 4096:
		return "L4k"
	default:
		return "L256"
	}
}

func BenchmarkAblationMapKind(b *testing.B) {
	s := suite()
	kinds := map[string]resolver.MapKind{"hash": resolver.MapHash, "ordered": resolver.MapOrdered}
	for name, kind := range kinds {
		kind := kind
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.RunWithResolver(synth.NameEU1FTTH, resolver.Config{ClistSize: 1 << 18, MapKind: kind})
			}
		})
	}
}

func BenchmarkAblationMultiLabel(b *testing.B) {
	s := suite()
	s.Run(synth.NameEU1ADSL2)
	b.ResetTimer()
	var confusion float64
	for i := 0; i < b.N; i++ {
		_, confusion, _ = s.AblationMultiLabel()
	}
	b.ReportMetric(100*confusion, "%confusion")
}

func BenchmarkAblationTagScore(b *testing.B) {
	s := suite()
	run := s.Run(synth.NameEU1FTTH)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analytics.ExtractTags(run.DB, 25, 5)
		analytics.ExtractTagsRaw(run.DB, 25, 5)
	}
}

// BenchmarkPipelineEndToEnd measures the full sniffer throughput:
// packets/sec through parse → resolver → tagger.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	tr := GenerateQuickTrace(5)
	b.SetBytes(int64(traceBytes(tr)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunTrace(tr, Options{})
	}
	b.ReportMetric(float64(len(tr.Packets)), "pkts/op")
}

// BenchmarkEngineEU1FTTH compares the legacy single-threaded path against
// the sharded Engine on the EU1-FTTH scenario. With GOMAXPROCS > 1 the
// multi-shard variants exceed legacy throughput (bytes/sec and pkts/sec);
// shard count 1 measures the dispatch-free inline path, which matches
// legacy minus noise.
func BenchmarkEngineEU1FTTH(b *testing.B) {
	tr := GenerateTrace("EU1-FTTH", 0.35, 1)
	size := int64(traceBytes(tr))
	pkts := float64(len(tr.Packets))

	b.Run("legacy-single-threaded", func(b *testing.B) {
		b.SetBytes(size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h := core.New(core.Config{})
			if err := h.Run(tr.Source()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(pkts, "pkts/op")
	})
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			eng := NewEngine(WithShards(shards))
			ctx := context.Background()
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.RunTrace(ctx, tr); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pkts, "pkts/op")
		})
	}
	// The same single-shard run behind an unarmed fault-injection wrapper:
	// with no schedules armed the wrapper must be a pure pass-through, and
	// CI pins its ns/op within 2% of shards-1 from the same bench run
	// (benchcheck -overhead).
	b.Run("shards-1-faults-off", func(b *testing.B) {
		eng := NewEngine(WithShards(1))
		ctx := context.Background()
		b.SetBytes(size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src := faults.NewSource(tr.Source(), faults.SourceConfig{})
			if _, err := eng.run(ctx, src, tr.TruthFunc()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(pkts, "pkts/op")
	})
}

func traceBytes(tr *Trace) int {
	n := 0
	for _, p := range tr.Packets {
		n += len(p.Data)
	}
	return n
}
