package dnhunter

// The analytics plane at the public API surface. A Pipeline is a named
// registry of incremental queries fed either from a materialized FlowDB
// (batch) or window-by-window under Engine.Serve via
// ServeConfig.ObserveWindow (streaming). Two query families exist:
// exact references (unbounded state, paper-fidelity results) and
// sketch-based streaming versions (bounded state, documented error
// bounds). See docs/ARCHITECTURE.md, "Analytics plane".
//
//	pipe := dnhunter.NewAnalyticsPipeline(dnhunter.StreamingQueries(orgs)...)
//	scfg.ObserveWindow = pipe.ObserveWindow
//	... engine serves ...
//	for _, qr := range pipe.Snapshot() { ... }

import (
	"repro/internal/analytics"
	"repro/internal/analytics/stream"
)

type (
	// AnalyticsPipeline is the query registry feeding a set of
	// AnalyticsQuery values from one flow stream.
	AnalyticsPipeline = analytics.Pipeline
	// AnalyticsQuery is one incremental analysis (observe / merge /
	// snapshot).
	AnalyticsQuery = analytics.Query
	// AnalyticsResult pairs a query name with its snapshot.
	AnalyticsResult = analytics.QueryResult
	// OrgLookup resolves a server address to its hosting organization,
	// per vantage.
	OrgLookup = analytics.OrgLookup
	// ContentShare is one row of a content-discovery snapshot (see
	// NewTopContentQuery).
	ContentShare = analytics.ContentShare
)

// NewAnalyticsPipeline builds a pipeline over the given queries; it
// panics on duplicate query names.
func NewAnalyticsPipeline(queries ...AnalyticsQuery) *AnalyticsPipeline {
	return analytics.NewPipeline(queries...)
}

// OrgLookupDB adapts an organization database into an OrgLookup (nil odb
// yields a nil lookup, which resolves every address to "unknown").
func OrgLookupDB(odb *OrgDB) OrgLookup { return analytics.OrgLookupDB(odb) }

// StreamingQueries returns the standard sketch-based query set — top
// domains/SLDs/orgs, per-SLD server footprints, provider usage, tagging
// coverage — sized for bounded state under run-forever serving. odb may
// be nil when no organization database is loaded.
func StreamingQueries(odb *OrgDB) []AnalyticsQuery {
	return stream.StandardQueries(analytics.OrgLookupDB(odb))
}

// ExactQueries returns the exact reference counterparts of
// StreamingQueries: identical query names, unbounded state. Use them for
// batch runs where paper-fidelity numbers matter more than memory. The
// top-k and footprint queries snapshot the same result shapes as their
// sketched twins; provider_usage snapshots the historical
// *ProviderFootprint.
func ExactQueries(odb *OrgDB) []AnalyticsQuery {
	lookup := analytics.OrgLookupDB(odb)
	return []AnalyticsQuery{
		analytics.NewExactTopDomains(stream.DefaultTopK),
		analytics.NewExactTopSLDs(stream.DefaultTopK),
		analytics.NewExactTopOrgs(lookup, stream.DefaultTopK),
		analytics.NewExactSLDFootprint(stream.DefaultTopK),
		analytics.NewExactProviderUsage(lookup, stream.DefaultTopK),
		analytics.NewExactCoverage(0),
	}
}

// NewTopContentQuery builds the Algorithm 3 content-discovery query (the
// Table 5 view): the top-k second-level domains served from org's
// addresses. Register it in a pipeline and feed with ObserveDB — the
// Query replacement for the deprecated TopDomainsOnOrg.
func NewTopContentQuery(org string, odb *OrgDB, k int) AnalyticsQuery {
	return analytics.NewExactTopContent(org, analytics.OrgLookupDB(odb), analytics.BySLD, k)
}
