// CDN tracking: the paper's spatial- and content-discovery analytics over
// a synthetic day. Answers the operator questions of §4: which CDNs serve
// an organization's content (and with how many servers), and what content
// a given cloud hosts at this vantage point.
package main

import (
	"context"
	"fmt"
	"log"

	dnhunter "repro"
)

func main() {
	trace := dnhunter.GenerateTrace("US-3G", 0.6, 3)
	res, err := dnhunter.NewEngine(dnhunter.WithShards(-1)).RunTrace(context.Background(), trace)
	if err != nil {
		log.Fatal(err)
	}
	db, orgs := res.DB, trace.OrgDB

	// Spatial discovery (Algorithm 2): who serves zynga.com?
	fmt.Println("== spatial discovery: zynga.com ==")
	sp := dnhunter.SpatialDiscovery(db, orgs, "zynga.com")
	fmt.Printf("%d flows, %d FQDNs\n", sp.TotalFlows, len(sp.PerFQDN))
	for _, h := range sp.Hosts {
		fmt.Printf("  %-10s %4d servers %6.1f%% of flows\n", h.Org, h.Servers, 100*h.FlowShare)
	}

	// The same for linkedin.com — the paper's Fig. 7 four-way split.
	fmt.Println("\n== spatial discovery: linkedin.com ==")
	li := dnhunter.SpatialDiscovery(db, orgs, "linkedin.com")
	for _, h := range li.Hosts {
		fmt.Printf("  %-12s %4d servers %6.1f%% of flows\n", h.Org, h.Servers, 100*h.FlowShare)
	}

	// Content discovery (Algorithm 3): what do the clouds host here? One
	// pipeline walks the DB once and feeds every registered query.
	pipe := dnhunter.NewAnalyticsPipeline(
		dnhunter.NewTopContentQuery("amazon", orgs, 10),
		dnhunter.NewTopContentQuery("akamai", orgs, 5),
	)
	pipe.ObserveDB(db)
	for _, org := range []string{"amazon", "akamai"} {
		fmt.Printf("\n== content discovery: %s ==\n", org)
		q, _ := pipe.Query("top_content:" + org)
		for i, c := range q.Snapshot().([]dnhunter.ContentShare) {
			fmt.Printf("  %2d. %-24s %5.1f%%\n", i+1, c.Name, 100*c.Share)
		}
	}
}
