// CDN tracking: the paper's spatial- and content-discovery analytics over
// a synthetic day. Answers the operator questions of §4: which CDNs serve
// an organization's content (and with how many servers), and what content
// a given cloud hosts at this vantage point.
package main

import (
	"context"
	"fmt"
	"log"

	dnhunter "repro"
)

func main() {
	trace := dnhunter.GenerateTrace("US-3G", 0.6, 3)
	res, err := dnhunter.NewEngine(dnhunter.WithShards(-1)).RunTrace(context.Background(), trace)
	if err != nil {
		log.Fatal(err)
	}
	db, orgs := res.DB, trace.OrgDB

	// Spatial discovery (Algorithm 2): who serves zynga.com?
	fmt.Println("== spatial discovery: zynga.com ==")
	sp := dnhunter.SpatialDiscovery(db, orgs, "zynga.com")
	fmt.Printf("%d flows, %d FQDNs\n", sp.TotalFlows, len(sp.PerFQDN))
	for _, h := range sp.Hosts {
		fmt.Printf("  %-10s %4d servers %6.1f%% of flows\n", h.Org, h.Servers, 100*h.FlowShare)
	}

	// The same for linkedin.com — the paper's Fig. 7 four-way split.
	fmt.Println("\n== spatial discovery: linkedin.com ==")
	li := dnhunter.SpatialDiscovery(db, orgs, "linkedin.com")
	for _, h := range li.Hosts {
		fmt.Printf("  %-12s %4d servers %6.1f%% of flows\n", h.Org, h.Servers, 100*h.FlowShare)
	}

	// Content discovery (Algorithm 3): what does Amazon's cloud host here?
	fmt.Println("\n== content discovery: amazon ==")
	for i, c := range dnhunter.TopDomainsOnOrg(db, orgs, "amazon", 10) {
		fmt.Printf("  %2d. %-24s %5.1f%%\n", i+1, c.Name, 100*c.Share)
	}

	// And Akamai, for contrast.
	fmt.Println("\n== content discovery: akamai ==")
	for i, c := range dnhunter.TopDomainsOnOrg(db, orgs, "akamai", 5) {
		fmt.Printf("  %2d. %-24s %5.1f%%\n", i+1, c.Name, 100*c.Share)
	}
}
