// Service-tag extraction: the paper's Algorithm 4 demo. Given only a
// layer-4 port number — including non-standard ones like 1337 — rank the
// DNS tokens of the flows hitting it and read off what service lives
// there, with no signatures and no prior knowledge.
package main

import (
	"context"
	"fmt"
	"log"

	dnhunter "repro"
)

func main() {
	trace := dnhunter.GenerateTrace("US-3G", 0.6, 9)
	res, err := dnhunter.NewEngine(dnhunter.WithShards(4)).RunTrace(context.Background(), trace)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("what runs on these ports? (token, Eq.1 score)")
	ports := []uint16{25, 110, 1337, 2710, 5222, 5228, 6969, 12043}
	for _, port := range ports {
		tags := dnhunter.ExtractTags(res.DB, port, 4)
		gt := trace.ServiceGT[port]
		fmt.Printf("  %-6d", port)
		for _, t := range tags {
			fmt.Printf(" (%.0f)%s", t.Score, t.Token)
		}
		fmt.Printf("   [ground truth: %s]\n", gt)
	}

	fmt.Println()
	fmt.Println("the paper's port-1337 story: the tokens alone identify the")
	fmt.Println("1337x BitTorrent tracker, which a port-number lookup cannot.")
}
