// Encrypted-traffic policy enforcement: the scenario from the paper's
// introduction. Zynga and Dropbox both run TLS on shared cloud addresses,
// so neither DPI signatures nor IP filters can separate them — but the
// DNS-derived label can, and it is available at the SYN, before any
// payload byte, so even the handshake can be policed.
package main

import (
	"fmt"

	dnhunter "repro"
)

func main() {
	policy := dnhunter.NewPolicy(
		dnhunter.Rule{Pattern: "zynga.com", Action: dnhunter.ActionBlock},
		dnhunter.Rule{Pattern: "dropbox.com", Action: dnhunter.ActionPrioritize},
		dnhunter.Rule{Pattern: "youtube.com", Action: dnhunter.ActionDeprioritize},
	)

	trace := dnhunter.GenerateTrace("EU1-FTTH", 0.3, 7)

	type verdict struct {
		blocked, prioritized, preSYN int
	}
	var v verdict
	res := dnhunter.RunTrace(trace, dnhunter.Options{
		OnTag: func(e dnhunter.TagEvent) {
			// This callback fires when the flow's FIRST packet arrives;
			// e.SYN says we caught the three-way handshake itself.
			switch policy.Decide(e.Label) {
			case dnhunter.ActionBlock:
				v.blocked++
				if e.SYN {
					v.preSYN++
				}
			case dnhunter.ActionPrioritize:
				v.prioritized++
			}
		},
	})

	fmt.Printf("flows: %d total, %d labeled\n", res.Stats.Flows, res.Stats.LabeledFlows)
	fmt.Printf("blocked (zynga.com): %d flows, %d of them at the SYN\n", v.blocked, v.preSYN)
	fmt.Printf("prioritized (dropbox.com): %d flows\n", v.prioritized)

	// Show why DPI and IP filtering fail here: blocked and prioritized
	// flows come out of the same hosting organization's address block.
	hostOrgs := map[string][2]int{}
	for _, f := range res.DB.All() {
		if !f.Labeled {
			continue
		}
		org, ok := trace.OrgDB.Lookup(f.Key.ServerIP)
		if !ok {
			continue
		}
		s := hostOrgs[org]
		switch policy.Decide(f.Label) {
		case dnhunter.ActionBlock:
			s[0]++
		case dnhunter.ActionPrioritize:
			s[1]++
		default:
			continue
		}
		hostOrgs[org] = s
	}
	for org, s := range hostOrgs {
		if s[0] > 0 && s[1] > 0 {
			fmt.Printf("hosting org %q carries %d blocked and %d prioritized flows\n", org, s[0], s[1])
			fmt.Println("(an address-block filter would have to block Dropbox to block Zynga)")
		}
	}

	fmt.Printf("\npolicy decisions: %v\n", policy.Decisions())
}
