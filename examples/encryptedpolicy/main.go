// Encrypted-traffic policy enforcement: the scenario from the paper's
// introduction. Zynga and Dropbox both run TLS on shared cloud addresses,
// so neither DPI signatures nor IP filters can separate them — but the
// DNS-derived label can, and it is available at the SYN, before any
// payload byte, so even the handshake can be policed.
//
// The enforcer is written as a dnhunter.Sink attached with WithSink: the
// Engine delivers every flow-start tag event to it, serialized even when
// the pipeline runs sharded across cores.
package main

import (
	"context"
	"fmt"
	"log"

	dnhunter "repro"
)

// enforcer is the online policy hook: a Sink that decides at flow start.
// It embeds NopSink and overrides only the event it cares about; the
// Engine serializes sink calls, so plain counters are safe at any shard
// count.
type enforcer struct {
	dnhunter.NopSink
	policy                       *dnhunter.Policy
	blocked, prioritized, preSYN int
}

// OnTag fires when a flow's FIRST packet arrives; e.SYN says we caught the
// three-way handshake itself.
func (e *enforcer) OnTag(ev dnhunter.TagEvent) {
	switch e.policy.Decide(ev.Label) {
	case dnhunter.ActionBlock:
		e.blocked++
		if ev.SYN {
			e.preSYN++
		}
	case dnhunter.ActionPrioritize:
		e.prioritized++
	}
}

func main() {
	policy := dnhunter.NewPolicy(
		dnhunter.Rule{Pattern: "zynga.com", Action: dnhunter.ActionBlock},
		dnhunter.Rule{Pattern: "dropbox.com", Action: dnhunter.ActionPrioritize},
		dnhunter.Rule{Pattern: "youtube.com", Action: dnhunter.ActionDeprioritize},
	)

	trace := dnhunter.GenerateTrace("EU1-FTTH", 0.3, 7)

	enf := &enforcer{policy: policy}
	eng := dnhunter.NewEngine(
		dnhunter.WithShards(4),
		dnhunter.WithSink(enf),
	)
	res, err := eng.RunTrace(context.Background(), trace)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("flows: %d total, %d labeled\n", res.Stats.Flows, res.Stats.LabeledFlows)
	fmt.Printf("blocked (zynga.com): %d flows, %d of them at the SYN\n", enf.blocked, enf.preSYN)
	fmt.Printf("prioritized (dropbox.com): %d flows\n", enf.prioritized)

	// Show why DPI and IP filtering fail here: blocked and prioritized
	// flows come out of the same hosting organization's address block.
	hostOrgs := map[string][2]int{}
	for _, f := range res.DB.All() {
		if !f.Labeled {
			continue
		}
		org, ok := trace.OrgDB.Lookup(f.Key.ServerIP)
		if !ok {
			continue
		}
		s := hostOrgs[org]
		switch policy.Decide(f.Label) {
		case dnhunter.ActionBlock:
			s[0]++
		case dnhunter.ActionPrioritize:
			s[1]++
		default:
			continue
		}
		hostOrgs[org] = s
	}
	for org, s := range hostOrgs {
		if s[0] > 0 && s[1] > 0 {
			fmt.Printf("hosting org %q carries %d blocked and %d prioritized flows\n", org, s[0], s[1])
			fmt.Println("(an address-block filter would have to block Dropbox to block Zynga)")
		}
	}

	fmt.Printf("\npolicy decisions: %v\n", policy.Decisions())
}
