// Quickstart: generate a small synthetic ISP trace, run the sharded
// DN-Hunter Engine over its packets, and print labeled flows plus the
// headline statistics — the minimal end-to-end tour of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	dnhunter "repro"
)

func main() {
	// A 30-minute synthetic capture: a couple dozen clients browsing the
	// modeled web (CDNs, clouds, mail, BitTorrent) behind one vantage point.
	trace := dnhunter.GenerateQuickTrace(42)
	fmt.Printf("trace: %d packets, %d flows, %d DNS responses\n\n",
		len(trace.Packets), trace.Flows, trace.DNSResponses)

	// Run the full pipeline: parse packets, replicate the clients' DNS
	// caches, tag each flow at its first packet. WithShards(-1) hashes
	// clients across one pipeline shard per CPU; the results are identical
	// to a single-threaded run.
	eng := dnhunter.NewEngine(dnhunter.WithShards(-1))
	res, err := eng.RunTrace(context.Background(), trace)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran on %d shards\n\n", eng.Shards())
	fmt.Println("first ten labeled flows:")
	shown := 0
	for _, f := range res.DB.All() {
		if !f.Labeled {
			continue
		}
		fmt.Printf("  %-46s -> %s\n", f.Key, f.Label)
		if shown++; shown == 10 {
			break
		}
	}

	st := res.Stats
	fmt.Printf("\nresolver: %s\n", st.Resolver)
	fmt.Printf("flows labeled: %d/%d (%.1f%%)\n",
		st.LabeledFlows, st.Flows, 100*float64(st.LabeledFlows)/float64(st.Flows))
	fmt.Printf("useless DNS (never followed by a flow): %.0f%%\n",
		100*st.UselessDNSFraction())

	// The tangled web in two numbers (paper Fig. 3).
	fqdns := res.DB.FQDNs()
	servers := res.DB.Servers()
	fmt.Printf("observed %d FQDNs on %d server addresses\n", len(fqdns), len(servers))
}
