package dnswire

import (
	"net/netip"
	"testing"
)

// Steady-state DNS decoding must be allocation-free: one reused Message
// decodes into its own section slices and name scratch buffer, and the
// interner hands back previously seen name strings without materializing
// new ones.

func aRecordResponse(t *testing.T) []byte {
	t.Helper()
	m := NewResponse(77, "cdn7.EXAMPLE.com", TypeA, []Record{
		{Name: "cdn7.example.com", Type: TypeCNAME, TTL: 30, Target: "edge.cdn.example.net"},
		{Name: "edge.cdn.example.net", Type: TypeA, TTL: 30, Addr: netip.MustParseAddr("192.0.2.10")},
		{Name: "edge.cdn.example.net", Type: TypeA, TTL: 30, Addr: netip.MustParseAddr("192.0.2.11")},
	})
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestUnpackARecordZeroAlloc(t *testing.T) {
	wire := aRecordResponse(t)
	var m Message
	m.SetInterner(NewInterner(0))
	// Warm up: first decode interns the names and sizes the scratch buffer
	// and section slices.
	if err := m.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	addrs := make([]netip.Addr, 0, 8)
	if n := testing.AllocsPerRun(1000, func() {
		if err := m.Unpack(wire); err != nil {
			t.Fatal(err)
		}
		addrs = m.AppendAnswerAddrs(addrs[:0])
		if len(addrs) != 2 || m.QueriedName() != "cdn7.example.com" {
			t.Fatal("bad decode")
		}
	}); n != 0 {
		t.Fatalf("steady-state A-record decode allocates %v/op, want 0", n)
	}
}

func TestUnpackTXTZeroAlloc(t *testing.T) {
	m := NewResponse(3, "example.com", TypeTXT, []Record{
		{Name: "example.com", Type: TypeTXT, TTL: 60, TXT: []string{"v=spf1 -all", "chunk two"}},
	})
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var dec Message
	dec.SetInterner(NewInterner(0))
	if err := dec.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	// TXT decoding is lazy: unpacking (and discarding) the record must not
	// allocate per character-string.
	if n := testing.AllocsPerRun(1000, func() {
		if err := dec.Unpack(wire); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("steady-state TXT decode allocates %v/op, want 0", n)
	}
}

func TestInternerSteadyState(t *testing.T) {
	in := NewInterner(4)
	a := in.Intern([]byte("example.com"))
	if got := in.Intern([]byte("example.com")); got != a {
		t.Fatal("intern miss on repeat")
	}
	if n := testing.AllocsPerRun(1000, func() {
		in.Intern([]byte("example.com"))
	}); n != 0 {
		t.Fatalf("interner hit allocates %v/op, want 0", n)
	}
	// Exceeding the bound resets instead of growing without limit.
	for i := 0; i < 16; i++ {
		in.Intern([]byte{byte('a' + i), '.', 'c', 'o', 'm'})
	}
	if in.Len() > 4 {
		t.Fatalf("interner grew past bound: %d", in.Len())
	}
	if in.Resets == 0 {
		t.Fatal("expected resets after overflow")
	}
}
