package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
	"time"
)

// Type is a DNS RR type.
type Type uint16

// RR types understood by the codec.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeSRV   Type = 33
	TypeANY   Type = 255
)

// String names the common types.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeSRV:
		return "SRV"
	case TypeANY:
		return "ANY"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class; only IN matters in practice.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes used by this codebase.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
)

// Header is the fixed 12-byte DNS header.
type Header struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is one entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// Record is one resource record. Exactly one of the typed RDATA fields is
// meaningful depending on Type; unknown types round-trip through Data.
type Record struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32

	// A / AAAA
	Addr netip.Addr
	// CNAME / NS / PTR target
	Target string
	// MX
	Pref uint16
	// TXT carries the record's character-strings. Unpack leaves it nil and
	// keeps the raw RDATA in Data instead — most sniffed TXT records are
	// discarded unread, so the strings are only materialized on demand via
	// TXTStrings. Pack serializes TXT when set, else Data verbatim.
	TXT []string
	// SRV
	Priority, Weight, Port uint16
	// Data carries RDATA verbatim for types the codec does not model (and
	// for TXT, see above). After Unpack it aliases the message buffer and
	// is valid until the next Unpack; copy before retaining.
	Data []byte
}

// TXTStrings returns the record's character-strings, decoding them from the
// raw RDATA when Unpack deferred that work. The returned slice is freshly
// allocated; it does not alias the message buffer.
func (r *Record) TXTStrings() []string {
	if r.TXT != nil || r.Type != TypeTXT {
		return r.TXT
	}
	var out []string
	for p := 0; p < len(r.Data); {
		l := int(r.Data[p])
		if p+1+l > len(r.Data) {
			break // validated during Unpack; defensive for hand-built records
		}
		out = append(out, string(r.Data[p+1:p+1+l]))
		p += 1 + l
	}
	return out
}

// Message is a whole DNS message. The zero value is ready to use; reusing
// one Message across Unpack calls reuses its section slices and name
// buffer, making steady-state decoding allocation-free. Attach a (per
// pipeline shard) Interner with SetInterner to also deduplicate the name
// strings themselves.
type Message struct {
	Header      Header
	Questions   []Question
	Answers     []Record
	Authorities []Record
	Additionals []Record

	// scratch is the reusable name-decode buffer; names are decoded into it
	// and then converted to strings (through the interner when set).
	scratch []byte
	intern  *Interner
}

// SetInterner attaches an intern table used to deduplicate name strings
// decoded by Unpack. Interned strings outlive the message; the interner is
// typically owned by the pipeline shard that owns the Message.
func (m *Message) SetInterner(in *Interner) { m.intern = in }

// internName converts the scratch-decoded name bytes to a string, through
// the intern table when one is attached.
func (m *Message) internName(b []byte) string {
	if m.intern != nil {
		return m.intern.Intern(b)
	}
	//dnhunter:alloc-ok fallback when no interner is attached (tests, one-shot decodes)
	return string(b)
}

// readNameAt decodes the name at off into the reusable scratch buffer and
// returns the interned string plus the caller-side end offset.
func (m *Message) readNameAt(msg []byte, off int) (string, int, error) {
	b, end, err := appendNameAt(msg, off, m.scratch[:0])
	if err != nil {
		return "", 0, err
	}
	m.scratch = b[:0]
	return m.internName(b), end, nil
}

// TTLDuration converts an RR TTL to a duration.
func TTLDuration(ttl uint32) time.Duration { return time.Duration(ttl) * time.Second }

// Pack serializes the message with name compression, appending to buf
// (which may be nil).
func (m *Message) Pack(buf []byte) ([]byte, error) {
	start := len(buf)
	table := make(map[string]int, 8)
	buf = append(buf, make([]byte, 12)...)
	hdr := buf[start : start+12]
	binary.BigEndian.PutUint16(hdr[0:2], m.Header.ID)
	var flags uint16
	if m.Header.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.Opcode&0xf) << 11
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.Truncated {
		flags |= 1 << 9
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.Header.RCode & 0xf)
	binary.BigEndian.PutUint16(hdr[2:4], flags)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(hdr[6:8], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(hdr[8:10], uint16(len(m.Authorities)))
	binary.BigEndian.PutUint16(hdr[10:12], uint16(len(m.Additionals)))

	var err error
	for _, q := range m.Questions {
		buf, err = appendName(buf, strings.ToLower(q.Name), table)
		if err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, sec := range [][]Record{m.Answers, m.Authorities, m.Additionals} {
		for i := range sec {
			buf, err = appendRecord(buf, &sec[i], table)
			if err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func appendRecord(buf []byte, r *Record, table map[string]int) ([]byte, error) {
	var err error
	buf, err = appendName(buf, strings.ToLower(r.Name), table)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.Type))
	class := r.Class
	if class == 0 {
		class = ClassIN
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(class))
	buf = binary.BigEndian.AppendUint32(buf, r.TTL)
	// Reserve the RDLENGTH slot, then write RDATA and patch.
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	switch r.Type {
	case TypeA:
		if !r.Addr.Is4() {
			return nil, fmt.Errorf("%w: A record with non-IPv4 address %v", ErrBadRecord, r.Addr)
		}
		a := r.Addr.As4()
		buf = append(buf, a[:]...)
	case TypeAAAA:
		if !r.Addr.Is6() || r.Addr.Is4In6() {
			return nil, fmt.Errorf("%w: AAAA record with non-IPv6 address %v", ErrBadRecord, r.Addr)
		}
		a := r.Addr.As16()
		buf = append(buf, a[:]...)
	case TypeCNAME, TypeNS, TypePTR:
		// Targets are eligible for compression.
		buf, err = appendName(buf, strings.ToLower(r.Target), table)
		if err != nil {
			return nil, err
		}
	case TypeMX:
		buf = binary.BigEndian.AppendUint16(buf, r.Pref)
		buf, err = appendName(buf, strings.ToLower(r.Target), table)
		if err != nil {
			return nil, err
		}
	case TypeTXT:
		if len(r.TXT) == 0 && len(r.Data) > 0 {
			// Round-tripping a lazily decoded record: Data is already in
			// wire format (length-prefixed character-strings).
			buf = append(buf, r.Data...)
			break
		}
		for _, s := range r.TXT {
			if len(s) > 255 {
				return nil, fmt.Errorf("%w: TXT chunk too long", ErrBadRecord)
			}
			buf = append(buf, byte(len(s)))
			buf = append(buf, s...)
		}
	case TypeSRV:
		buf = binary.BigEndian.AppendUint16(buf, r.Priority)
		buf = binary.BigEndian.AppendUint16(buf, r.Weight)
		buf = binary.BigEndian.AppendUint16(buf, r.Port)
		// RFC 2782: SRV target must not be compressed.
		buf, err = appendName(buf, strings.ToLower(r.Target), nil)
		if err != nil {
			return nil, err
		}
	default:
		buf = append(buf, r.Data...)
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > 0xffff {
		return nil, fmt.Errorf("%w: RDATA too long", ErrBadRecord)
	}
	binary.BigEndian.PutUint16(buf[lenAt:lenAt+2], uint16(rdlen))
	return buf, nil
}

// Pre-wrapped errors for the decode path: Unpack runs per captured packet,
// so rejecting a malformed message must not allocate. Callers match with
// errors.Is against the sentinels in name.go.
var (
	errHeaderTruncated   = fmt.Errorf("%w: header", ErrTruncatedMsg)
	errQuestionTruncated = fmt.Errorf("%w: question fixed part", ErrTruncatedMsg)
	errRRTruncated       = fmt.Errorf("%w: RR fixed part", ErrTruncatedMsg)
	errRDataTruncated    = fmt.Errorf("%w: RDATA", ErrTruncatedMsg)
	errBadALen           = fmt.Errorf("%w: bad A RDLENGTH", ErrBadRecord)
	errBadAAAALen        = fmt.Errorf("%w: bad AAAA RDLENGTH", ErrBadRecord)
	errBadMXLen          = fmt.Errorf("%w: bad MX RDLENGTH", ErrBadRecord)
	errBadTXTChunk       = fmt.Errorf("%w: TXT chunk", ErrBadRecord)
	errBadSRVLen         = fmt.Errorf("%w: bad SRV RDLENGTH", ErrBadRecord)
)

// Unpack parses a whole DNS message.
//
//dnhunter:hotpath
func (m *Message) Unpack(msg []byte) error {
	if len(msg) < 12 {
		return errHeaderTruncated
	}
	m.Header.ID = binary.BigEndian.Uint16(msg[0:2])
	flags := binary.BigEndian.Uint16(msg[2:4])
	m.Header.Response = flags&(1<<15) != 0
	m.Header.Opcode = uint8(flags >> 11 & 0xf)
	m.Header.Authoritative = flags&(1<<10) != 0
	m.Header.Truncated = flags&(1<<9) != 0
	m.Header.RecursionDesired = flags&(1<<8) != 0
	m.Header.RecursionAvailable = flags&(1<<7) != 0
	m.Header.RCode = RCode(flags & 0xf)
	qd := int(binary.BigEndian.Uint16(msg[4:6]))
	an := int(binary.BigEndian.Uint16(msg[6:8]))
	ns := int(binary.BigEndian.Uint16(msg[8:10]))
	ar := int(binary.BigEndian.Uint16(msg[10:12]))

	off := 12
	m.Questions = m.Questions[:0]
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = m.readNameAt(msg, off)
		if err != nil {
			return err
		}
		if off+4 > len(msg) {
			return errQuestionTruncated
		}
		q.Type = Type(binary.BigEndian.Uint16(msg[off : off+2]))
		q.Class = Class(binary.BigEndian.Uint16(msg[off+2 : off+4]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	m.Answers, off, err = m.readRecords(msg, off, an, m.Answers[:0])
	if err != nil {
		return err
	}
	m.Authorities, off, err = m.readRecords(msg, off, ns, m.Authorities[:0])
	if err != nil {
		return err
	}
	m.Additionals, _, err = m.readRecords(msg, off, ar, m.Additionals[:0])
	return err
}

func (m *Message) readRecords(msg []byte, off, n int, dst []Record) ([]Record, int, error) {
	var err error
	for i := 0; i < n; i++ {
		var r Record
		r.Name, off, err = m.readNameAt(msg, off)
		if err != nil {
			return dst, off, err
		}
		if off+10 > len(msg) {
			return dst, off, errRRTruncated
		}
		r.Type = Type(binary.BigEndian.Uint16(msg[off : off+2]))
		r.Class = Class(binary.BigEndian.Uint16(msg[off+2 : off+4]))
		r.TTL = binary.BigEndian.Uint32(msg[off+4 : off+8])
		rdlen := int(binary.BigEndian.Uint16(msg[off+8 : off+10]))
		off += 10
		if off+rdlen > len(msg) {
			return dst, off, errRDataTruncated
		}
		rdata := msg[off : off+rdlen]
		switch r.Type {
		case TypeA:
			if rdlen != 4 {
				return dst, off, errBadALen
			}
			var a [4]byte
			copy(a[:], rdata)
			r.Addr = netip.AddrFrom4(a)
		case TypeAAAA:
			if rdlen != 16 {
				return dst, off, errBadAAAALen
			}
			var a [16]byte
			copy(a[:], rdata)
			r.Addr = netip.AddrFrom16(a)
		case TypeCNAME, TypeNS, TypePTR:
			r.Target, _, err = m.readNameAt(msg, off)
			if err != nil {
				return dst, off, err
			}
		case TypeMX:
			if rdlen < 3 {
				return dst, off, errBadMXLen
			}
			r.Pref = binary.BigEndian.Uint16(rdata[0:2])
			r.Target, _, err = m.readNameAt(msg, off+2)
			if err != nil {
				return dst, off, err
			}
		case TypeTXT:
			// Validate the chunk structure but defer string materialization
			// to TXTStrings: the sniffer discards most TXT records unread.
			for p := 0; p < rdlen; {
				l := int(rdata[p])
				if p+1+l > rdlen {
					return dst, off, errBadTXTChunk
				}
				p += 1 + l
			}
			r.Data = rdata
		case TypeSRV:
			if rdlen < 7 {
				return dst, off, errBadSRVLen
			}
			r.Priority = binary.BigEndian.Uint16(rdata[0:2])
			r.Weight = binary.BigEndian.Uint16(rdata[2:4])
			r.Port = binary.BigEndian.Uint16(rdata[4:6])
			r.Target, _, err = m.readNameAt(msg, off+6)
			if err != nil {
				return dst, off, err
			}
		default:
			r.Data = rdata
		}
		off += rdlen
		dst = append(dst, r)
	}
	return dst, off, nil
}

// AnswerAddrs returns the A/AAAA addresses in the answer section, following
// the common CDN pattern where CNAME chains terminate in address records.
// This is exactly the "answer list" the paper's DNS Resolver stores.
func (m *Message) AnswerAddrs() []netip.Addr {
	return m.AppendAnswerAddrs(nil)
}

// AppendAnswerAddrs appends the answer section's A/AAAA addresses to dst
// and returns the extended slice. Passing a reused dst[:0] keeps the
// sniffer's per-response address gathering allocation-free.
func (m *Message) AppendAnswerAddrs(dst []netip.Addr) []netip.Addr {
	for i := range m.Answers {
		r := &m.Answers[i]
		if (r.Type == TypeA || r.Type == TypeAAAA) && r.Addr.IsValid() {
			dst = append(dst, r.Addr)
		}
	}
	return dst
}

// QueriedName returns the lowercased name of the first question, or "".
// Unpack already lowercases names, so for decoded messages this returns the
// question string as-is without allocating.
func (m *Message) QueriedName() string {
	if len(m.Questions) == 0 {
		return ""
	}
	return strings.ToLower(m.Questions[0].Name)
}

// NewResponse builds a response for the single question (name, qtype) with
// the given answer records, the usual shape the synthesizer's LDNS emits.
func NewResponse(id uint16, name string, qtype Type, answers []Record) *Message {
	return &Message{
		Header: Header{
			ID:                 id,
			Response:           true,
			RecursionDesired:   true,
			RecursionAvailable: true,
		},
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
		Answers:   answers,
	}
}

// NewQuery builds a recursive query for (name, qtype).
func NewQuery(id uint16, name string, qtype Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}
