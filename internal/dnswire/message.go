package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
	"time"
)

// Type is a DNS RR type.
type Type uint16

// RR types understood by the codec.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeSRV   Type = 33
	TypeANY   Type = 255
)

// String names the common types.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeSRV:
		return "SRV"
	case TypeANY:
		return "ANY"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class; only IN matters in practice.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes used by this codebase.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
)

// Header is the fixed 12-byte DNS header.
type Header struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is one entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// Record is one resource record. Exactly one of the typed RDATA fields is
// meaningful depending on Type; unknown types round-trip through Data.
type Record struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32

	// A / AAAA
	Addr netip.Addr
	// CNAME / NS / PTR target
	Target string
	// MX
	Pref uint16
	// TXT
	TXT []string
	// SRV
	Priority, Weight, Port uint16
	// Data carries RDATA verbatim for types the codec does not model.
	Data []byte
}

// Message is a whole DNS message.
type Message struct {
	Header      Header
	Questions   []Question
	Answers     []Record
	Authorities []Record
	Additionals []Record
}

// TTLDuration converts an RR TTL to a duration.
func TTLDuration(ttl uint32) time.Duration { return time.Duration(ttl) * time.Second }

// Pack serializes the message with name compression, appending to buf
// (which may be nil).
func (m *Message) Pack(buf []byte) ([]byte, error) {
	start := len(buf)
	table := make(map[string]int, 8)
	buf = append(buf, make([]byte, 12)...)
	hdr := buf[start : start+12]
	binary.BigEndian.PutUint16(hdr[0:2], m.Header.ID)
	var flags uint16
	if m.Header.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.Opcode&0xf) << 11
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.Truncated {
		flags |= 1 << 9
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.Header.RCode & 0xf)
	binary.BigEndian.PutUint16(hdr[2:4], flags)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(hdr[6:8], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(hdr[8:10], uint16(len(m.Authorities)))
	binary.BigEndian.PutUint16(hdr[10:12], uint16(len(m.Additionals)))

	var err error
	for _, q := range m.Questions {
		buf, err = appendName(buf, strings.ToLower(q.Name), table)
		if err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, sec := range [][]Record{m.Answers, m.Authorities, m.Additionals} {
		for i := range sec {
			buf, err = appendRecord(buf, &sec[i], table)
			if err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func appendRecord(buf []byte, r *Record, table map[string]int) ([]byte, error) {
	var err error
	buf, err = appendName(buf, strings.ToLower(r.Name), table)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.Type))
	class := r.Class
	if class == 0 {
		class = ClassIN
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(class))
	buf = binary.BigEndian.AppendUint32(buf, r.TTL)
	// Reserve the RDLENGTH slot, then write RDATA and patch.
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	switch r.Type {
	case TypeA:
		if !r.Addr.Is4() {
			return nil, fmt.Errorf("%w: A record with non-IPv4 address %v", ErrBadRecord, r.Addr)
		}
		a := r.Addr.As4()
		buf = append(buf, a[:]...)
	case TypeAAAA:
		if !r.Addr.Is6() || r.Addr.Is4In6() {
			return nil, fmt.Errorf("%w: AAAA record with non-IPv6 address %v", ErrBadRecord, r.Addr)
		}
		a := r.Addr.As16()
		buf = append(buf, a[:]...)
	case TypeCNAME, TypeNS, TypePTR:
		// Targets are eligible for compression.
		buf, err = appendName(buf, strings.ToLower(r.Target), table)
		if err != nil {
			return nil, err
		}
	case TypeMX:
		buf = binary.BigEndian.AppendUint16(buf, r.Pref)
		buf, err = appendName(buf, strings.ToLower(r.Target), table)
		if err != nil {
			return nil, err
		}
	case TypeTXT:
		for _, s := range r.TXT {
			if len(s) > 255 {
				return nil, fmt.Errorf("%w: TXT chunk too long", ErrBadRecord)
			}
			buf = append(buf, byte(len(s)))
			buf = append(buf, s...)
		}
	case TypeSRV:
		buf = binary.BigEndian.AppendUint16(buf, r.Priority)
		buf = binary.BigEndian.AppendUint16(buf, r.Weight)
		buf = binary.BigEndian.AppendUint16(buf, r.Port)
		// RFC 2782: SRV target must not be compressed.
		buf, err = appendName(buf, strings.ToLower(r.Target), nil)
		if err != nil {
			return nil, err
		}
	default:
		buf = append(buf, r.Data...)
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > 0xffff {
		return nil, fmt.Errorf("%w: RDATA too long", ErrBadRecord)
	}
	binary.BigEndian.PutUint16(buf[lenAt:lenAt+2], uint16(rdlen))
	return buf, nil
}

// Unpack parses a whole DNS message.
func (m *Message) Unpack(msg []byte) error {
	if len(msg) < 12 {
		return fmt.Errorf("%w: %d bytes", ErrTruncatedMsg, len(msg))
	}
	m.Header.ID = binary.BigEndian.Uint16(msg[0:2])
	flags := binary.BigEndian.Uint16(msg[2:4])
	m.Header.Response = flags&(1<<15) != 0
	m.Header.Opcode = uint8(flags >> 11 & 0xf)
	m.Header.Authoritative = flags&(1<<10) != 0
	m.Header.Truncated = flags&(1<<9) != 0
	m.Header.RecursionDesired = flags&(1<<8) != 0
	m.Header.RecursionAvailable = flags&(1<<7) != 0
	m.Header.RCode = RCode(flags & 0xf)
	qd := int(binary.BigEndian.Uint16(msg[4:6]))
	an := int(binary.BigEndian.Uint16(msg[6:8]))
	ns := int(binary.BigEndian.Uint16(msg[8:10]))
	ar := int(binary.BigEndian.Uint16(msg[10:12]))

	off := 12
	m.Questions = m.Questions[:0]
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = readName(msg, off)
		if err != nil {
			return err
		}
		if off+4 > len(msg) {
			return fmt.Errorf("%w: question fixed part", ErrTruncatedMsg)
		}
		q.Type = Type(binary.BigEndian.Uint16(msg[off : off+2]))
		q.Class = Class(binary.BigEndian.Uint16(msg[off+2 : off+4]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	m.Answers, off, err = readRecords(msg, off, an, m.Answers[:0])
	if err != nil {
		return err
	}
	m.Authorities, off, err = readRecords(msg, off, ns, m.Authorities[:0])
	if err != nil {
		return err
	}
	m.Additionals, _, err = readRecords(msg, off, ar, m.Additionals[:0])
	return err
}

func readRecords(msg []byte, off, n int, dst []Record) ([]Record, int, error) {
	var err error
	for i := 0; i < n; i++ {
		var r Record
		r.Name, off, err = readName(msg, off)
		if err != nil {
			return dst, off, err
		}
		if off+10 > len(msg) {
			return dst, off, fmt.Errorf("%w: RR fixed part", ErrTruncatedMsg)
		}
		r.Type = Type(binary.BigEndian.Uint16(msg[off : off+2]))
		r.Class = Class(binary.BigEndian.Uint16(msg[off+2 : off+4]))
		r.TTL = binary.BigEndian.Uint32(msg[off+4 : off+8])
		rdlen := int(binary.BigEndian.Uint16(msg[off+8 : off+10]))
		off += 10
		if off+rdlen > len(msg) {
			return dst, off, fmt.Errorf("%w: RDATA", ErrTruncatedMsg)
		}
		rdata := msg[off : off+rdlen]
		switch r.Type {
		case TypeA:
			if rdlen != 4 {
				return dst, off, fmt.Errorf("%w: A RDLENGTH %d", ErrBadRecord, rdlen)
			}
			var a [4]byte
			copy(a[:], rdata)
			r.Addr = netip.AddrFrom4(a)
		case TypeAAAA:
			if rdlen != 16 {
				return dst, off, fmt.Errorf("%w: AAAA RDLENGTH %d", ErrBadRecord, rdlen)
			}
			var a [16]byte
			copy(a[:], rdata)
			r.Addr = netip.AddrFrom16(a)
		case TypeCNAME, TypeNS, TypePTR:
			r.Target, _, err = readName(msg, off)
			if err != nil {
				return dst, off, err
			}
		case TypeMX:
			if rdlen < 3 {
				return dst, off, fmt.Errorf("%w: MX RDLENGTH %d", ErrBadRecord, rdlen)
			}
			r.Pref = binary.BigEndian.Uint16(rdata[0:2])
			r.Target, _, err = readName(msg, off+2)
			if err != nil {
				return dst, off, err
			}
		case TypeTXT:
			for p := 0; p < rdlen; {
				l := int(rdata[p])
				if p+1+l > rdlen {
					return dst, off, fmt.Errorf("%w: TXT chunk", ErrBadRecord)
				}
				r.TXT = append(r.TXT, string(rdata[p+1:p+1+l]))
				p += 1 + l
			}
		case TypeSRV:
			if rdlen < 7 {
				return dst, off, fmt.Errorf("%w: SRV RDLENGTH %d", ErrBadRecord, rdlen)
			}
			r.Priority = binary.BigEndian.Uint16(rdata[0:2])
			r.Weight = binary.BigEndian.Uint16(rdata[2:4])
			r.Port = binary.BigEndian.Uint16(rdata[4:6])
			r.Target, _, err = readName(msg, off+6)
			if err != nil {
				return dst, off, err
			}
		default:
			r.Data = append([]byte(nil), rdata...)
		}
		off += rdlen
		dst = append(dst, r)
	}
	return dst, off, nil
}

// AnswerAddrs returns the A/AAAA addresses in the answer section, following
// the common CDN pattern where CNAME chains terminate in address records.
// This is exactly the "answer list" the paper's DNS Resolver stores.
func (m *Message) AnswerAddrs() []netip.Addr {
	var out []netip.Addr
	for _, r := range m.Answers {
		if (r.Type == TypeA || r.Type == TypeAAAA) && r.Addr.IsValid() {
			out = append(out, r.Addr)
		}
	}
	return out
}

// QueriedName returns the lowercased name of the first question, or "".
func (m *Message) QueriedName() string {
	if len(m.Questions) == 0 {
		return ""
	}
	return strings.ToLower(m.Questions[0].Name)
}

// NewResponse builds a response for the single question (name, qtype) with
// the given answer records, the usual shape the synthesizer's LDNS emits.
func NewResponse(id uint16, name string, qtype Type, answers []Record) *Message {
	return &Message{
		Header: Header{
			ID:                 id,
			Response:           true,
			RecursionDesired:   true,
			RecursionAvailable: true,
		},
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
		Answers:   answers,
	}
}

// NewQuery builds a recursive query for (name, qtype).
func NewQuery(id uint16, name string, qtype Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}
