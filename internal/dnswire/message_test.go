package dnswire

import (
	"errors"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mustPack(t *testing.T, m *Message) []byte {
	t.Helper()
	raw, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestHeaderRoundTrip(t *testing.T) {
	m := &Message{Header: Header{
		ID: 0xbeef, Response: true, Opcode: 2, Authoritative: true,
		Truncated: true, RecursionDesired: true, RecursionAvailable: true,
		RCode: RCodeNXDomain,
	}}
	raw := mustPack(t, m)
	var got Message
	if err := got.Unpack(raw); err != nil {
		t.Fatal(err)
	}
	if got.Header != m.Header {
		t.Fatalf("header = %+v, want %+v", got.Header, m.Header)
	}
}

func TestQueryResponseRoundTrip(t *testing.T) {
	ans := []Record{
		{Name: "www.example.com", Type: TypeA, TTL: 300, Addr: netip.MustParseAddr("93.184.216.34")},
		{Name: "www.example.com", Type: TypeA, TTL: 300, Addr: netip.MustParseAddr("93.184.216.35")},
	}
	m := NewResponse(42, "www.example.com", TypeA, ans)
	raw := mustPack(t, m)

	var got Message
	if err := got.Unpack(raw); err != nil {
		t.Fatal(err)
	}
	if got.QueriedName() != "www.example.com" {
		t.Fatalf("question = %q", got.QueriedName())
	}
	addrs := got.AnswerAddrs()
	if len(addrs) != 2 || addrs[0] != ans[0].Addr || addrs[1] != ans[1].Addr {
		t.Fatalf("addrs = %v", addrs)
	}
	if got.Answers[0].TTL != 300 {
		t.Fatalf("TTL = %d", got.Answers[0].TTL)
	}
}

func TestCompressionSavesSpace(t *testing.T) {
	// Repeating the same owner name must compress to pointers.
	var answers []Record
	for i := 0; i < 10; i++ {
		answers = append(answers, Record{
			Name: "static.content.cdn.example.com", Type: TypeA, TTL: 60,
			Addr: netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}),
		})
	}
	m := NewResponse(1, "static.content.cdn.example.com", TypeA, answers)
	raw := mustPack(t, m)
	nameLen := len("static.content.cdn.example.com") + 2
	uncompressed := 12 + nameLen + 4 + 10*(nameLen+10+4)
	if len(raw) >= uncompressed {
		t.Fatalf("no compression: %d >= %d", len(raw), uncompressed)
	}
	// And it must still parse.
	var got Message
	if err := got.Unpack(raw); err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 10 || got.Answers[9].Name != "static.content.cdn.example.com" {
		t.Fatalf("answers = %+v", got.Answers)
	}
}

func TestCNAMEChain(t *testing.T) {
	ans := []Record{
		{Name: "www.zynga.com", Type: TypeCNAME, TTL: 120, Target: "www.zynga.com.edgekey.net"},
		{Name: "www.zynga.com.edgekey.net", Type: TypeCNAME, TTL: 60, Target: "e1234.a.akamaiedge.net"},
		{Name: "e1234.a.akamaiedge.net", Type: TypeA, TTL: 20, Addr: netip.MustParseAddr("23.1.2.3")},
	}
	m := NewResponse(7, "www.zynga.com", TypeA, ans)
	raw := mustPack(t, m)
	var got Message
	if err := got.Unpack(raw); err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Target != "www.zynga.com.edgekey.net" {
		t.Fatalf("cname target = %q", got.Answers[0].Target)
	}
	if addrs := got.AnswerAddrs(); len(addrs) != 1 || addrs[0] != ans[2].Addr {
		t.Fatalf("addrs = %v", addrs)
	}
}

func TestAAAARoundTrip(t *testing.T) {
	addr := netip.MustParseAddr("2001:db8::42")
	m := NewResponse(9, "v6.example.com", TypeAAAA, []Record{
		{Name: "v6.example.com", Type: TypeAAAA, TTL: 30, Addr: addr},
	})
	var got Message
	if err := got.Unpack(mustPack(t, m)); err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Addr != addr {
		t.Fatalf("addr = %v", got.Answers[0].Addr)
	}
}

func TestPTRRoundTrip(t *testing.T) {
	m := NewResponse(3, "34.216.184.93.in-addr.arpa", TypePTR, []Record{
		{Name: "34.216.184.93.in-addr.arpa", Type: TypePTR, TTL: 3600, Target: "a93-184-216-34.deploy.akamaitechnologies.com"},
	})
	var got Message
	if err := got.Unpack(mustPack(t, m)); err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Target != "a93-184-216-34.deploy.akamaitechnologies.com" {
		t.Fatalf("target = %q", got.Answers[0].Target)
	}
}

func TestMXTXTSRVRoundTrip(t *testing.T) {
	m := NewResponse(4, "example.com", TypeANY, []Record{
		{Name: "example.com", Type: TypeMX, TTL: 600, Pref: 10, Target: "aspmx.l.google.com"},
		{Name: "example.com", Type: TypeTXT, TTL: 600, TXT: []string{"v=spf1 -all", "second"}},
		{Name: "_sip._tcp.example.com", Type: TypeSRV, TTL: 60, Priority: 1, Weight: 5, Port: 5060, Target: "sip.example.com"},
	})
	var got Message
	if err := got.Unpack(mustPack(t, m)); err != nil {
		t.Fatal(err)
	}
	mx, txt, srv := got.Answers[0], got.Answers[1], got.Answers[2]
	if mx.Pref != 10 || mx.Target != "aspmx.l.google.com" {
		t.Fatalf("mx = %+v", mx)
	}
	if txt.TXT != nil {
		t.Fatalf("TXT should stay lazy after Unpack, got %+v", txt.TXT)
	}
	if s := txt.TXTStrings(); !reflect.DeepEqual(s, []string{"v=spf1 -all", "second"}) {
		t.Fatalf("txt = %+v", s)
	}
	// A lazily decoded TXT record must survive a re-Pack unchanged.
	var again Message
	if err := again.Unpack(mustPack(t, &got)); err != nil {
		t.Fatal(err)
	}
	if g := again.Answers[1].TXTStrings(); !reflect.DeepEqual(g, []string{"v=spf1 -all", "second"}) {
		t.Fatalf("re-packed txt = %+v", g)
	}
	if srv.Priority != 1 || srv.Weight != 5 || srv.Port != 5060 || srv.Target != "sip.example.com" {
		t.Fatalf("srv = %+v", srv)
	}
}

func TestUnknownTypeOpaque(t *testing.T) {
	m := NewResponse(5, "example.com", Type(99), []Record{
		{Name: "example.com", Type: Type(99), TTL: 1, Data: []byte{1, 2, 3, 4}},
	})
	var got Message
	if err := got.Unpack(mustPack(t, m)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Answers[0].Data, []byte{1, 2, 3, 4}) {
		t.Fatalf("data = %v", got.Answers[0].Data)
	}
}

func TestSectionsRoundTrip(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 11, Response: true},
		Questions: []Question{{Name: "example.com", Type: TypeA, Class: ClassIN}},
		Answers:   []Record{{Name: "example.com", Type: TypeA, TTL: 5, Addr: netip.MustParseAddr("1.2.3.4")}},
		Authorities: []Record{
			{Name: "example.com", Type: TypeNS, TTL: 5, Target: "ns1.example.com"},
		},
		Additionals: []Record{
			{Name: "ns1.example.com", Type: TypeA, TTL: 5, Addr: netip.MustParseAddr("5.6.7.8")},
		},
	}
	var got Message
	if err := got.Unpack(mustPack(t, m)); err != nil {
		t.Fatal(err)
	}
	if len(got.Authorities) != 1 || got.Authorities[0].Target != "ns1.example.com" {
		t.Fatalf("authorities = %+v", got.Authorities)
	}
	if len(got.Additionals) != 1 || got.Additionals[0].Addr != netip.MustParseAddr("5.6.7.8") {
		t.Fatalf("additionals = %+v", got.Additionals)
	}
}

func TestCaseInsensitiveNames(t *testing.T) {
	m := NewResponse(2, "WWW.Example.COM", TypeA, []Record{
		{Name: "WWW.Example.COM", Type: TypeA, TTL: 1, Addr: netip.MustParseAddr("9.9.9.9")},
	})
	var got Message
	if err := got.Unpack(mustPack(t, m)); err != nil {
		t.Fatal(err)
	}
	if got.QueriedName() != "www.example.com" {
		t.Fatalf("name = %q", got.QueriedName())
	}
}

func TestTruncatedInputs(t *testing.T) {
	full := mustPack(t, NewResponse(1, "www.example.com", TypeA, []Record{
		{Name: "www.example.com", Type: TypeA, TTL: 1, Addr: netip.MustParseAddr("1.1.1.1")},
	}))
	for n := 0; n < len(full); n++ {
		var got Message
		if err := got.Unpack(full[:n]); err == nil {
			t.Fatalf("no error at truncation point %d", n)
		}
	}
}

func TestPointerLoopRejected(t *testing.T) {
	// Header + question whose name is a pointer to itself.
	raw := make([]byte, 12, 16)
	raw[5] = 1 // QDCOUNT=1
	raw = append(raw, 0xc0, 12)
	raw = append(raw, 0, 1, 0, 1)
	var got Message
	if err := got.Unpack(raw); !errors.Is(err, ErrPointerLoop) {
		t.Fatalf("err = %v, want pointer loop", err)
	}
}

func TestForwardPointerRejected(t *testing.T) {
	raw := make([]byte, 12, 20)
	raw[5] = 1
	raw = append(raw, 0xc0, 40) // forward pointer
	raw = append(raw, 0, 1, 0, 1)
	var got Message
	if err := got.Unpack(raw); err == nil {
		t.Fatal("expected error for forward pointer")
	}
}

func TestOversizedLabelRejected(t *testing.T) {
	long := strings.Repeat("a", 64)
	m := NewQuery(1, long+".com", TypeA)
	if _, err := m.Pack(nil); !errors.Is(err, ErrBadName) {
		t.Fatalf("err = %v", err)
	}
}

func TestOversizedNameRejected(t *testing.T) {
	var labels []string
	for i := 0; i < 50; i++ {
		labels = append(labels, "abcdefgh")
	}
	m := NewQuery(1, strings.Join(labels, "."), TypeA)
	if _, err := m.Pack(nil); !errors.Is(err, ErrBadName) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadARDLength(t *testing.T) {
	// A record with RDLENGTH 3.
	m := NewResponse(1, "x.com", TypeA, nil)
	raw := mustPack(t, m)
	raw[7] = 1                       // ANCOUNT=1
	raw = append(raw, 0xc0, 12)      // name ptr to question
	raw = append(raw, 0, 1, 0, 1)    // TYPE A, CLASS IN
	raw = append(raw, 0, 0, 0, 5)    // TTL
	raw = append(raw, 0, 3, 1, 2, 3) // RDLENGTH 3
	var got Message
	if err := got.Unpack(raw); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("err = %v", err)
	}
}

func TestARecordWithV6AddrRejected(t *testing.T) {
	m := NewResponse(1, "x.com", TypeA, []Record{
		{Name: "x.com", Type: TypeA, Addr: netip.MustParseAddr("::1")},
	})
	if _, err := m.Pack(nil); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyNameRoot(t *testing.T) {
	m := NewQuery(1, "", TypeNS)
	var got Message
	if err := got.Unpack(mustPack(t, m)); err != nil {
		t.Fatal(err)
	}
	if got.QueriedName() != "" {
		t.Fatalf("name = %q", got.QueriedName())
	}
}

func TestTTLDuration(t *testing.T) {
	if TTLDuration(90) != 90*time.Second {
		t.Fatal("TTLDuration")
	}
}

func TestUnpackNeverPanicsOnFuzz(t *testing.T) {
	f := func(data []byte) bool {
		var m Message
		_ = m.Unpack(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripNames(t *testing.T) {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789-"
	mkLabel := func(b byte, n uint8) string {
		l := 1 + int(n)%10
		var sb strings.Builder
		for i := 0; i < l; i++ {
			sb.WriteByte(alpha[(int(b)+i)%len(alpha)])
		}
		return sb.String()
	}
	f := func(a, b byte, na, nb uint8, ttl uint32) bool {
		name := mkLabel(a, na) + "." + mkLabel(b, nb) + ".example.com"
		m := NewResponse(1, name, TypeA, []Record{
			{Name: name, Type: TypeA, TTL: ttl, Addr: netip.AddrFrom4([4]byte{1, 2, 3, 4})},
		})
		raw, err := m.Pack(nil)
		if err != nil {
			return false
		}
		var got Message
		if err := got.Unpack(raw); err != nil {
			return false
		}
		return got.QueriedName() == name && got.Answers[0].TTL == ttl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageReuseBetweenUnpacks(t *testing.T) {
	// Unpacking into the same Message must fully reset sections.
	m1 := NewResponse(1, "a.example.com", TypeA, []Record{
		{Name: "a.example.com", Type: TypeA, TTL: 1, Addr: netip.MustParseAddr("1.1.1.1")},
		{Name: "a.example.com", Type: TypeA, TTL: 1, Addr: netip.MustParseAddr("2.2.2.2")},
	})
	m2 := NewQuery(2, "b.example.com", TypeA)
	var got Message
	if err := got.Unpack(mustPack(t, m1)); err != nil {
		t.Fatal(err)
	}
	if err := got.Unpack(mustPack(t, m2)); err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 0 || got.QueriedName() != "b.example.com" {
		t.Fatalf("stale state: %+v", got)
	}
}

func BenchmarkUnpackTypicalResponse(b *testing.B) {
	var answers []Record
	for i := 0; i < 8; i++ {
		answers = append(answers, Record{
			Name: "edge.cdn.example.com", Type: TypeA, TTL: 30,
			Addr: netip.AddrFrom4([4]byte{10, 1, 0, byte(i)}),
		})
	}
	raw, err := NewResponse(1, "edge.cdn.example.com", TypeA, answers).Pack(nil)
	if err != nil {
		b.Fatal(err)
	}
	var m Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Unpack(raw); err != nil {
			b.Fatal(err)
		}
	}
}
