// Package dnswire implements the DNS wire protocol (RFC 1035): message
// header, questions, and resource records with label compression on both
// encode and decode paths. It is the substrate under DN-Hunter's DNS
// response sniffer and the synthesizer's DNS server model.
//
// The codec is strict where the sniffer needs it to be (bounds, pointer
// loops, label limits) and tolerant elsewhere: unknown RR types are carried
// as opaque RDATA so a capture with exotic records still parses.
package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Limits from RFC 1035 §2.3.4.
const (
	maxLabelLen = 63
	maxNameLen  = 255
)

// Errors returned by the codec.
var (
	ErrTruncatedMsg = errors.New("dnswire: truncated message")
	ErrBadName      = errors.New("dnswire: malformed name")
	ErrPointerLoop  = errors.New("dnswire: compression pointer loop")
	ErrBadRecord    = errors.New("dnswire: malformed resource record")
)

// appendName encodes a dotted name at the end of msg, using and updating the
// compression table (suffix -> offset of its first occurrence). The table
// may be nil to disable compression.
func appendName(msg []byte, name string, table map[string]int) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return append(msg, 0), nil
	}
	if len(name) > maxNameLen-2 {
		return msg, fmt.Errorf("%w: name too long (%d)", ErrBadName, len(name))
	}
	labels := strings.Split(name, ".")
	for i := range labels {
		suffix := strings.Join(labels[i:], ".")
		if table != nil {
			if off, ok := table[suffix]; ok && off < 0x3fff {
				// Emit a pointer to the earlier occurrence and stop.
				return append(msg, 0xc0|byte(off>>8), byte(off)), nil
			}
			if len(msg) < 0x3fff {
				table[suffix] = len(msg)
			}
		}
		label := labels[i]
		if label == "" || len(label) > maxLabelLen {
			return msg, fmt.Errorf("%w: label %q", ErrBadName, label)
		}
		msg = append(msg, byte(len(label)))
		msg = append(msg, label...)
	}
	return append(msg, 0), nil
}

// appendNameAt decodes a possibly compressed name starting at off in msg,
// appending it to dst in lowercase dotted form (no trailing dot). It returns
// the extended buffer and the offset just past the name's representation at
// the call site (pointers do not advance the caller's cursor beyond the
// 2-byte pointer itself). Decoding into a caller-owned scratch buffer is the
// allocation-free core of the sniffer's DNS path; Message.readNameAt wraps
// it with the reusable scratch buffer and intern table.
var (
	errNamePastEnd     = fmt.Errorf("%w: name runs past message", ErrTruncatedMsg)
	errDanglingPointer = fmt.Errorf("%w: dangling pointer", ErrTruncatedMsg)
	errReservedLabel   = fmt.Errorf("%w: reserved label type", ErrBadName)
	errLabelPastEnd    = fmt.Errorf("%w: label runs past message", ErrTruncatedMsg)
	errNameTooLong     = fmt.Errorf("%w: name too long", ErrBadName)
)

func appendNameAt(msg []byte, off int, dst []byte) ([]byte, int, error) {
	mark := len(dst)
	cursor := off
	end := -1 // caller-visible end, set at the first pointer
	hops := 0
	total := 0
	for {
		if cursor >= len(msg) {
			return dst[:mark], 0, errNamePastEnd
		}
		c := msg[cursor]
		switch {
		case c == 0:
			if end < 0 {
				end = cursor + 1
			}
			return dst, end, nil
		case c&0xc0 == 0xc0:
			if cursor+1 >= len(msg) {
				return dst[:mark], 0, errDanglingPointer
			}
			ptr := int(c&0x3f)<<8 | int(msg[cursor+1])
			if end < 0 {
				end = cursor + 2
			}
			hops++
			if hops > 32 || ptr >= cursor {
				// Forward or excessive pointers indicate a loop or garbage;
				// RFC-compliant compression only points backwards.
				return dst[:mark], 0, ErrPointerLoop
			}
			cursor = ptr
		case c&0xc0 != 0:
			return dst[:mark], 0, errReservedLabel
		default:
			l := int(c)
			if cursor+1+l > len(msg) {
				return dst[:mark], 0, errLabelPastEnd
			}
			total += l + 1
			if total > maxNameLen {
				return dst[:mark], 0, errNameTooLong
			}
			if len(dst) > mark {
				dst = append(dst, '.')
			}
			for _, ch := range msg[cursor+1 : cursor+1+l] {
				if 'A' <= ch && ch <= 'Z' {
					ch += 'a' - 'A'
				}
				dst = append(dst, ch)
			}
			cursor += 1 + l
		}
	}
}
