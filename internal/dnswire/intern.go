package dnswire

// Interner deduplicates decoded domain-name strings. The sniffer decodes
// names into a reusable scratch buffer; converting that buffer to a string
// normally allocates once per name per packet. Because the population of
// names at a vantage point is small and heavy-tailed (the paper's Fig. 6
// shows the FQDN birth process flattening within minutes), interning turns
// the steady state into a map probe with zero allocations: Go compiles the
// map[string] lookup keyed by string(b) without materializing the string.
//
// An Interner is not safe for concurrent use; the engine keeps one per
// shard. It is bounded: once maxEntries distinct names have been interned
// the table is reset rather than grown without limit, so a churn-heavy
// trace (random tracker hostnames, DGA malware) degrades to one allocation
// per name instead of exhausting memory.
type Interner struct {
	m   map[string]string
	max int
	// Resets counts table wipes caused by hitting the bound; a nonzero
	// value on a steady workload means maxEntries is undersized.
	Resets uint64
}

// defaultInternerSize bounds the table at roughly the resolver's default
// Clist order of magnitude; ~64k distinct names covers every synthetic
// scenario and the paper's vantage points with wide margin.
const defaultInternerSize = 1 << 16

// NewInterner creates a bounded interner. maxEntries <= 0 selects the
// default bound.
func NewInterner(maxEntries int) *Interner {
	if maxEntries <= 0 {
		maxEntries = defaultInternerSize
	}
	return &Interner{m: make(map[string]string, 256), max: maxEntries}
}

// Intern returns the canonical string for b, allocating only the first time
// a distinct name is seen.
func (in *Interner) Intern(b []byte) string {
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	if len(in.m) >= in.max {
		//dnhunter:alloc-ok bounded-size reset, at most once per max distinct names
		in.m = make(map[string]string, 256)
		in.Resets++
	}
	//dnhunter:alloc-ok allocates only on the first sighting of a distinct name; repeats hit the map above
	s := string(b)
	in.m[s] = s
	return s
}

// Len reports the number of distinct strings currently held.
func (in *Interner) Len() int { return len(in.m) }
