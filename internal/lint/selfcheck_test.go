package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/checktest"
)

// The fixture tests pin each analyzer against a seeded-violation
// package: every positive finding and every sanctioned idiom is
// asserted, so a regression in either direction fails the build.

func TestHotAllocFixture(t *testing.T) {
	checktest.Run(t, ".", "./testdata/src/hotalloc", lint.HotAlloc)
}

func TestMapRangeFixture(t *testing.T) {
	checktest.Run(t, ".", "./testdata/src/maprange", lint.MapRange)
}

func TestSlabRefFixture(t *testing.T) {
	checktest.Run(t, ".", "./testdata/src/slabref", lint.SlabRef)
}

func TestAtomicFieldFixture(t *testing.T) {
	checktest.Run(t, ".", "./testdata/src/atomicfield", lint.AtomicField)
}

// TestRepoIsClean runs the full dnlint suite over every package in the
// module and asserts zero unjustified findings — the burned-in state of
// the repository is part of its test contract.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := analysis.Load(".", "repro/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, a := range lint.Analyzers {
			pass := pkg.Pass(a, func(d analysis.Diagnostic) {
				t.Errorf("%s: %s [%s]", pkg.Fset.Position(d.Pos), d.Message, a.Name)
			})
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
}
