package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// MapRange pins the byte-reproducible-output guarantee: in code
// reachable from output emission, ranging over a map is forbidden
// unless the iteration is provably order-insensitive. Emission scope is
// the built-in package set below (flowdb CSV, analytics results, the
// experiment suites, every cmd/ binary) plus any function annotated
// //dnhunter:emitpath.
//
// An order-insensitive map range is one whose body only collects: it
// appends to local slices that are sorted later in the same function,
// writes other maps, or bumps integer counters. Anything else — calling
// out, emitting, accumulating floats (addition order changes the low
// bits), or taking the first/best element — needs either a sort or a
// //dnhunter:unordered-ok <reason> justification.
var MapRange = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "forbid order-sensitive map iteration in code reachable from output emission",
	Run:  runMapRange,
}

// emitRoots are the package paths (exact, or prefix when ending in "/")
// that are reachable from output emission by construction.
var emitRoots = []string{
	"repro/internal/flowdb",
	"repro/internal/analytics",
	"repro/internal/analytics/stream",
	"repro/internal/experiments",
	"repro/cmd/",
}

func inEmitScope(path string) bool {
	path = sanitizedPkgPath(path)
	for _, r := range emitRoots {
		if strings.HasSuffix(r, "/") {
			if strings.HasPrefix(path, r) {
				return true
			}
		} else if path == r {
			return true
		}
	}
	return false
}

func runMapRange(pass *analysis.Pass) error {
	ds := scanDirectives(pass)
	pkgScoped := inEmitScope(pass.Pkg.Path())
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pkgScoped && !ds.funcHas(fd, dirEmitPath) {
				continue
			}
			checkEmitFunc(pass, ds, fd)
		}
	}
	return nil
}

func checkEmitFunc(pass *analysis.Pass, ds *directives, fd *ast.FuncDecl) {
	if pass.InTestFile(fd.Pos()) {
		return
	}
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := info.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
			return true
		}
		if reason := collectorVerdict(info, rs, fd); reason != "" {
			ds.report(rs.Pos(), "map iteration order is random; %s — sort the keys or justify with %s%s <reason>", reason, directivePrefix, dirUnorderedOK)
		}
		return true
	})
}

// collectorVerdict returns "" when the map range is order-insensitive,
// or a short explanation of why it is not.
func collectorVerdict(info *types.Info, rs *ast.RangeStmt, fd *ast.FuncDecl) string {
	var appendTargets []string
	for _, stmt := range rs.Body.List {
		switch stmt := stmt.(type) {
		case *ast.AssignStmt:
			if r := classifyAssign(info, stmt, &appendTargets); r != "" {
				return r
			}
		case *ast.IncDecStmt:
			if !isIntLvalue(info, stmt.X) {
				return "the loop body mutates non-integer state"
			}
		default:
			return "the loop body does more than collect"
		}
	}
	for _, target := range appendTargets {
		if !sortedAfter(info, fd, rs, target) {
			return "elements collected into " + target + " are never sorted"
		}
	}
	return ""
}

// classifyAssign accepts map writes, integer accumulation, and
// self-appends (recording the target for the later-sort requirement).
func classifyAssign(info *types.Info, stmt *ast.AssignStmt, appendTargets *[]string) string {
	// x = append(x, ...) collector.
	if len(stmt.Lhs) == 1 && len(stmt.Rhs) == 1 {
		if call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
					lhs := exprPath(info, stmt.Lhs[0])
					if lhs != "" && lhs == exprPath(info, call.Args[0]) {
						*appendTargets = append(*appendTargets, lhs)
						return ""
					}
				}
			}
		}
	}
	for _, lhs := range stmt.Lhs {
		lhs := ast.Unparen(lhs)
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if _, isMap := info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
				// Writing another map keeps determinism — unless the
				// write accumulates floats, where addition order leaks
				// into the low bits.
				if stmt.Tok != token.ASSIGN && isFloat(info.TypeOf(lhs)) {
					return "float accumulation depends on addition order"
				}
				continue
			}
		}
		if stmt.Tok == token.ASSIGN || stmt.Tok == token.DEFINE {
			return "the loop body overwrites state (last iteration wins)"
		}
		if !isIntLvalue(info, lhs) {
			return "the loop body accumulates non-integer state"
		}
	}
	if containsCall(info, stmt.Rhs) {
		return "the loop body calls out"
	}
	return ""
}

func isIntLvalue(info *types.Info, e ast.Expr) bool {
	b, ok := info.TypeOf(e).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// containsCall reports whether any expression calls a non-builtin
// function (len/cap and conversions stay allowed in collector bodies).
func containsCall(info *types.Info, exprs []ast.Expr) bool {
	found := false
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
					return true
				}
			}
			found = true
			return false
		})
	}
	return found
}

// sortFuncs are the recognized deterministic-ordering calls.
var sortFuncs = map[string]bool{
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// sortedAfter reports whether target is passed to a recognized sort
// call positioned after the range statement in the same function.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt, target string) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		callee := staticCallee(info, call)
		if callee == nil || !sortFuncs[pkgPathOf(callee)+"."+callee.Name()] {
			return true
		}
		if exprPath(info, call.Args[0]) == target {
			sorted = true
		}
		return true
	})
	return sorted
}
