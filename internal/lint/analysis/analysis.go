// Package analysis is a self-contained miniature of
// golang.org/x/tools/go/analysis: just enough surface (Analyzer, Pass,
// Diagnostic) for the project's dnlint analyzers to be written in the
// standard modular style, without pulling the x/tools module into the
// build. The shapes mirror x/tools deliberately, so migrating the
// analyzers onto the real framework is a mechanical import swap.
//
// Two drivers exist: Load (load.go) builds whole-module passes for the
// standalone dnlint binary and the in-repo self-check test, and
// cmd/dnlint's unit mode speaks the `go vet -vettool` protocol, building
// one Pass per compilation unit from the vet config file.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. Run inspects a single package via
// the Pass and reports findings through pass.Report; analyzers must be
// modular (no state shared across packages beyond source annotations).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// directives; it must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by dnlint -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is the analysis of a single package: its syntax, its type
// information, and a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files is the package's parsed syntax, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and object resolutions for Files.
	TypesInfo *types.Info
	// TypesSizes gives the target platform's layout rules (field offsets
	// for the atomicfield padding check).
	TypesSizes types.Sizes
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// InTestFile reports whether pos lies in a _test.go file. The analyzers
// skip test files so that findings are identical between the standalone
// loader (which feeds non-test files only) and `go vet -vettool` (which
// also type-checks the test variants of each package).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}
