package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready to be analyzed.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// Pass builds a Pass over the package for one analyzer.
func (p *Package) Pass(a *Analyzer, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:   a,
		Fset:       p.Fset,
		Files:      p.Files,
		Pkg:        p.Types,
		TypesInfo:  p.Info,
		TypesSizes: p.Sizes,
		Report:     report,
	}
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// Load lists patterns from dir with the go tool, then parses and
// type-checks every matched (non-dependency) package from source.
// Imports — std or module-local — resolve through compiler export data
// produced by `go list -export`, so no dependency is ever re-parsed and
// the whole load works offline against the build cache.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}, nil)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported by the lint loader", t.ImportPath)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	sizes := types.SizesFor("gc", runtime.GOARCH)
	conf := types.Config{Importer: imp, Sizes: sizes}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info, Sizes: sizes}, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// NewExportImporter wraps the standard gc-export-data importer with a
// lookup function and an optional import-path remapping (the vet config
// ImportMap, which folds vendor directories onto canonical paths).
func NewExportImporter(fset *token.FileSet, lookup func(string) (io.ReadCloser, error), importMap map[string]string) types.Importer {
	return &exportImporter{
		gc:  importer.ForCompiler(fset, "gc", lookup),
		rem: importMap,
	}
}

type exportImporter struct {
	gc  types.Importer
	rem map[string]string
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if e.rem != nil {
		if mapped, ok := e.rem[path]; ok {
			path = mapped
		}
	}
	return e.gc.Import(path)
}
