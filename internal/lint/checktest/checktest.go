// Package checktest runs a lint analyzer over a fixture package and
// matches its diagnostics against `// want "regexp"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// Each fixture line that should produce findings carries a trailing
// comment listing one quoted regexp per expected finding:
//
//	s := string(b) // want `string\(bytes\) conversion`
//
// Both `...`-quoted and "..."-quoted forms are accepted. The test fails
// on any unexpected diagnostic and any unmatched expectation, so
// fixtures pin both the positive and the negative behavior.
package checktest

import (
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// wantRE matches one quoted expectation in a want comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads pattern (a package path or ./-relative directory, resolved
// from dir) and checks analyzer a against the fixture's expectations.
func Run(t *testing.T, dir, pattern string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(dir, pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("pattern %s matched %d packages, want 1", pattern, len(pkgs))
	}
	pkg := pkgs[0]

	expects := parseExpectations(t, pkg)
	var diags []analysis.Diagnostic
	pass := pkg.Pass(a, func(d analysis.Diagnostic) { diags = append(diags, d) })
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		matched := false
		for _, e := range expects {
			if e.hit || e.file != p.Filename || e.line != p.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", e.file, e.line, e.raw)
		}
	}
}

// parseExpectations extracts `// want ...` comments from the fixture.
func parseExpectations(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Accept both `// want ...` and `/* want ... */`; the block
				// form lets an expectation share a line with a //dnhunter:
				// directive under test.
				body := c.Text
				if strings.HasPrefix(body, "/*") {
					body = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(body, "/*"), "*/"))
				} else {
					body = strings.TrimSpace(strings.TrimPrefix(body, "//"))
				}
				text, ok := strings.CutPrefix(body, "want ")
				if !ok {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text, -1) {
					pattern, err := unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", p, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", p, q, err)
					}
					out = append(out, &expectation{file: p.Filename, line: p.Line, re: re, raw: q})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}
