package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// walkParents traverses root, invoking fn with each node and the stack
// of its ancestors (nearest last). Returning false skips the subtree.
func walkParents(root ast.Node, fn func(n ast.Node, parents []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Subtree skipped: Inspect sends no closing nil for it, so
			// the node must not be pushed.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// staticCallee resolves the *types.Func a call statically invokes, or
// nil for indirect calls (func values, interface methods) and builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// exprPath renders an lvalue-ish expression as a dotted path anchored at
// its root object ("h.addrs", "t.free"), ignoring index and slice
// operations ("h.addrs[:0]" → "h.addrs"). It returns "" when the
// expression has no identifier root (literals, call results, nil).
func exprPath(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			return e.Name
		}
		return ""
	case *ast.SelectorExpr:
		base := exprPath(info, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprPath(info, e.X)
	case *ast.SliceExpr:
		return exprPath(info, e.X)
	case *ast.StarExpr:
		return exprPath(info, e.X)
	}
	return ""
}

// isByteOrRuneSlice reports whether t is []byte or []rune.
func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pkgPathOf returns the package path of a function, or "".
func pkgPathOf(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// sanitizedPkgPath strips go vet's test-variant suffix
// ("repro/internal/flows [repro/internal/flows.test]" → base path) so
// package-scoped rules behave identically under both drivers.
func sanitizedPkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}
