package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// AtomicField guards the two atomic-hygiene rules the SPSC ring depends
// on:
//
//  1. A struct field accessed through sync/atomic functions anywhere in
//     the package must never also be read or written plainly — the
//     plain access races with the atomic one.
//  2. In structs annotated //dnhunter:hotatomic, the atomic progress
//     counters (atomic.Uint64 and friends, plus any field from rule 1)
//     must sit on distinct cache lines: producer and consumer each spin
//     on their own index, and sharing a 64-byte line turns that into
//     cross-core ping-pong. atomic.Bool flags are exempt — they are
//     rarely-written state, not per-operation counters.
var AtomicField = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "flag mixed atomic/plain field access and unpadded atomic counters in //dnhunter:hotatomic structs",
	Run:  runAtomicField,
}

// cacheLine is the padding granularity the ring structs are built for.
const cacheLine = 64

func runAtomicField(pass *analysis.Pass) error {
	ds := scanDirectives(pass)
	atomicUses, plainUses := collectFieldAccesses(pass)

	// Rule 1: mixed atomic and plain access to the same field.
	var mixed []*types.Var
	for field := range atomicUses {
		if len(plainUses[field]) > 0 {
			mixed = append(mixed, field)
		}
	}
	sort.Slice(mixed, func(i, j int) bool { return mixed[i].Pos() < mixed[j].Pos() })
	for _, field := range mixed {
		pos := plainUses[field][0]
		for _, p := range plainUses[field][1:] {
			if p < pos {
				pos = p
			}
		}
		ds.report(pos, "field %s is accessed with sync/atomic elsewhere in this package; this plain access races — use atomic access everywhere or a typed atomic", field.Name())
	}

	// Rule 2: cache-line separation inside //dnhunter:hotatomic structs.
	var hotObjs []types.Object
	for obj := range ds.types {
		if ds.typeHas(obj, dirHotAtomic) {
			hotObjs = append(hotObjs, obj)
		}
	}
	sort.Slice(hotObjs, func(i, j int) bool { return hotObjs[i].Pos() < hotObjs[j].Pos() })
	for _, obj := range hotObjs {
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			ds.report(obj.Pos(), "%s%s applies to struct types only", directivePrefix, dirHotAtomic)
			continue
		}
		checkPadding(pass, ds, obj, st, atomicUses)
	}
	return nil
}

// collectFieldAccesses walks the package and splits every field access
// into atomic (the &x.f argument of a sync/atomic call) and plain
// (everything else), keyed by the field object.
func collectFieldAccesses(pass *analysis.Pass) (atomicUses, plainUses map[*types.Var][]token.Pos) {
	atomicUses = make(map[*types.Var][]token.Pos)
	plainUses = make(map[*types.Var][]token.Pos)
	info := pass.TypesInfo

	// Selector nodes consumed by a sync/atomic call, to exclude from the
	// plain sweep.
	viaAtomic := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(info, call)
			if pkgPathOf(callee) != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || unary.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if field := fieldOf(info, sel); field != nil {
				viaAtomic[sel] = true
				atomicUses[field] = append(atomicUses[field], sel.Pos())
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || viaAtomic[sel] {
				return true
			}
			if field := fieldOf(info, sel); field != nil {
				plainUses[field] = append(plainUses[field], sel.Pos())
			}
			return true
		})
	}
	return atomicUses, plainUses
}

// fieldOf resolves a selector to the struct field it names, or nil for
// methods, qualified identifiers, and non-field selections.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if v, ok := info.ObjectOf(sel.Sel).(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// checkPadding verifies that every pair of atomic counter fields in a
// hotatomic struct is at least a cache line apart.
func checkPadding(pass *analysis.Pass, ds *directives, obj types.Object, st *types.Struct, atomicUses map[*types.Var][]token.Pos) {
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	offsets := pass.TypesSizes.Offsetsof(fields)

	type counter struct {
		field  *types.Var
		offset int64
	}
	var counters []counter
	for i, f := range fields {
		if isAtomicCounter(f.Type()) || len(atomicUses[f]) > 0 {
			counters = append(counters, counter{f, offsets[i]})
		}
	}
	for i := 1; i < len(counters); i++ {
		prev, cur := counters[i-1], counters[i]
		if cur.offset-prev.offset < cacheLine {
			ds.report(cur.field.Pos(), "atomic fields %s.%s and %s.%s are %d bytes apart and share a cache line; insert [%d]byte padding between them",
				obj.Name(), prev.field.Name(), obj.Name(), cur.field.Name(), cur.offset-prev.offset, cacheLine)
		}
	}
}

// isAtomicCounter reports whether t is one of sync/atomic's typed
// progress counters. atomic.Bool is deliberately excluded.
func isAtomicCounter(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tobj := n.Obj()
	if tobj.Pkg() == nil || tobj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch tobj.Name() {
	case "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
		return true
	}
	return false
}
