// Package slabref is the fixture for the slabref analyzer: every way a
// slab-slot pointer can outlive a statement is seeded once, and the
// sanctioned statement-scoped accessor shows the justified suppression.
package slabref

//dnhunter:slab
type node struct {
	key  uint64
	next uint32
}

type table struct {
	slab  []node
	head  *node   // want `struct field holds a slab-slot pointer`
	cache []*node // want `struct field holds a slab-slot pointer`
}

var global *node

func (t *table) at(i uint32) *node {
	//dnhunter:slab-ok statement-scoped accessor; callers must not retain across growth
	return &t.slab[i]
}

func (t *table) bad(i uint32) *node {
	return &t.slab[i] // want `returning a slab-slot pointer`
}

func (t *table) uses(i uint32) uint64 {
	n := t.at(i) // local variable: statement-scoped, allowed
	return n.key
}

func (t *table) store(i uint32) {
	global = t.at(i) // want `storing a slab-slot pointer outside a local variable`
}

func (t *table) collect(i uint32, dst []*node) []*node {
	return append(dst, t.at(i)) // want `appending a slab-slot pointer`
}

func (t *table) send(ch chan *node, i uint32) {
	ch <- t.at(i) // want `sending a slab-slot pointer`
}

func (t *table) lit(i uint32) {
	_ = []*node{t.at(i)} // want `composite literal`
}

// Unmarked types stay out of scope.
type other struct{ v int }

type holder struct{ o *other }
