// Package maprange is the fixture for the maprange analyzer. The
// package path is outside the built-in emit scope, so every checked
// function opts in with //dnhunter:emitpath — which also pins the
// marker mechanism itself.
package maprange

import (
	"fmt"
	"sort"
)

//dnhunter:emitpath
func emitBad(m map[string]int) {
	for k, v := range m { // want `map iteration order is random`
		fmt.Println(k, v)
	}
}

//dnhunter:emitpath
func emitSorted(m map[string]int) {
	var keys []string
	for k := range m { // collector with a later sort: deterministic
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

//dnhunter:emitpath
func emitUnsortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // want `never sorted`
		keys = append(keys, k)
	}
	return keys
}

//dnhunter:emitpath
func emitCounts(m map[string]int) int {
	n := 0
	for _, v := range m { // integer accumulation: order-insensitive
		n += v
	}
	return n
}

//dnhunter:emitpath
func emitFloatSum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `accumulates non-integer state`
		s += v
	}
	return s
}

//dnhunter:emitpath
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m { // map write: deterministic result
		out[v] = k
	}
	return out
}

//dnhunter:emitpath
func sumInto(m, out map[string]float64) {
	for k, v := range m { // want `float accumulation`
		out[k] += v
	}
}

//dnhunter:emitpath
func anyKey(m map[string]int) string {
	//dnhunter:unordered-ok any element works; result feeds a cache probe, not output
	for k := range m {
		return k
	}
	return ""
}

// notEmit is outside the emit scope: unchecked.
func notEmit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
