// Package atomicfield is the fixture for the atomicfield analyzer:
// mixed atomic/plain access to one field, an unpadded hotatomic struct,
// and the padded layout the ring actually uses.
package atomicfield

import "sync/atomic"

// counter mixes sync/atomic calls with a plain read of the same field.
type counter struct {
	n uint64
}

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1) // the atomic side: allowed on its own
}

func (c *counter) read() uint64 {
	return c.n // want `accessed with sync/atomic elsewhere`
}

//dnhunter:hotatomic
type ring struct {
	head atomic.Uint64
	tail atomic.Uint64 // want `share a cache line`
}

//dnhunter:hotatomic
type paddedRing struct {
	head   atomic.Uint64
	_      [56]byte
	tail   atomic.Uint64 // 64 bytes from head: allowed
	closed atomic.Bool   // Bool flags are exempt from the padding rule
}

//dnhunter:hotatomic
type notStruct int // want `applies to struct types only`

// fine uses typed atomics only: no mixed access, no marker, no finding.
type fine struct {
	v atomic.Uint64
}

func (f *fine) get() uint64 { return f.v.Load() }
