// Package hotalloc is the fixture for the hotalloc analyzer: positive
// cases carry `want` expectations, negative cases pin the allowed
// idioms (map-index keys, comparisons, self-append, return-append,
// justified suppressions, cold functions).
package hotalloc

import "fmt"

var sink any

type table struct {
	buf   []byte
	names map[string]int
}

//dnhunter:hotpath
func (t *table) Process(b []byte) int {
	s := string(b) // want `string\(bytes\) conversion allocates`
	_ = s
	if n, ok := t.names[string(b)]; ok { // map-index key: no allocation
		return n
	}
	if string(b) == "www" { // comparison: no allocation
		return 1
	}
	return t.helper(b)
}

// helper carries no marker: it is hot by propagation from Process.
func (t *table) helper(b []byte) int {
	t.buf = append(t.buf, b...) // self-append into a reused buffer
	x := append(t.buf, 0)       // want `append result is not written back`
	_ = x
	m := map[string]int{} // want `map literal allocates`
	_ = m
	fmt.Println(len(b)) // want `fmt\.Println allocates`
	p := new(table)     // want `new allocates`
	_ = p
	return 0
}

//dnhunter:hotpath
func grow(dst []byte, b byte) []byte {
	return append(dst, b) // Append*-style API: the caller owns dst
}

//dnhunter:hotpath
func boxed(v int) {
	consume(v) // want `implicit conversion of int to interface`
}

func consume(v any) { sink = v }

//dnhunter:hotpath
func lazyInit(t *table) {
	if t.buf == nil {
		//dnhunter:alloc-ok one-time lazy init, amortized to zero per packet
		t.buf = make([]byte, 0, 1024)
	}
	t.names = make(map[string]int) // want `make allocates`
}

//dnhunter:hotpath
func reasonless(t *table) {
	/* want `needs a reason string` */ //dnhunter:alloc-ok
	t.names = make(map[string]int)
}

//dnhunter:hotpath
func escape() func() int {
	n := 0
	f := func() int { n++; return n } // want `closure may escape`
	return f
}

//dnhunter:hotpath
func iife() int {
	return func() int { return 1 }() // immediately invoked: stack-allocated
}

// cold is unreferenced from any hot function: unchecked.
func cold(b []byte) string {
	return string(b)
}

func misplaced() {
	/* want `must be in the doc comment of a function` */ //dnhunter:hotpath
	_ = cold(nil)
}

/* want `unknown directive` */ //dnhunter:bogus
