// Package lint holds dnlint, the project's static-analysis suite: four
// analyzers that machine-enforce the engine's hot-path invariants
// (zero steady-state allocation, deterministic emit order, slab-handle
// discipline, atomic-field hygiene). The analyzers are driven by
// cmd/dnlint (standalone or as a `go vet -vettool`) and by the in-repo
// self-check test, and are configured through //dnhunter: source
// directives documented in the README's "Static analysis" section.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Directive names. Markers annotate declarations; suppressions justify
// one finding on the same (or immediately preceding) line and MUST carry
// a reason string, which dnlint echoes into the CI job summary.
const (
	// dirHotPath marks a function as packet-rate hot. hotalloc checks it
	// and every function in the same package it (transitively)
	// references; cross-package callees must carry their own marker.
	dirHotPath = "hotpath"
	// dirEmitPath marks a function as reachable from output emission, so
	// maprange applies to it even outside the built-in emit packages.
	dirEmitPath = "emitpath"
	// dirSlab marks a slab-backed element type: pointers to it must not
	// outlive a statement-local use (slabref).
	dirSlab = "slab"
	// dirHotAtomic marks a struct whose atomic index fields must be
	// cache-line separated (atomicfield).
	dirHotAtomic = "hotatomic"

	// Per-analyzer suppressions.
	dirAllocOK     = "alloc-ok"
	dirUnorderedOK = "unordered-ok"
	dirSlabOK      = "slab-ok"
	dirAtomicOK    = "atomic-ok"
)

// directivePrefix introduces every dnlint directive comment.
const directivePrefix = "//dnhunter:"

var knownDirectives = map[string]bool{
	dirHotPath: true, dirEmitPath: true, dirSlab: true, dirHotAtomic: true,
	dirAllocOK: true, dirUnorderedOK: true, dirSlabOK: true, dirAtomicOK: true,
}

// suppressionFor maps analyzer name → its suppression directive.
var suppressionFor = map[string]string{
	"hotalloc":    dirAllocOK,
	"maprange":    dirUnorderedOK,
	"slabref":     dirSlabOK,
	"atomicfield": dirAtomicOK,
}

// directive is one parsed //dnhunter: comment.
type directive struct {
	name   string
	reason string
	pos    token.Pos
	// attached records that a marker directive was associated with a
	// declaration; unattached markers are dead and get reported.
	attached bool
}

type lineKey struct {
	file string
	line int
}

// directives indexes every //dnhunter: comment of a pass.
type directives struct {
	pass    *analysis.Pass
	funcs   map[*ast.FuncDecl][]*directive
	types   map[types.Object][]*directive
	byLine  map[lineKey][]*directive
	all     []*directive
	flagged map[*directive]bool // reasonless suppressions already reported
}

// scanDirectives parses the directives of every file in the pass and
// attaches markers to the declarations they document.
func scanDirectives(pass *analysis.Pass) *directives {
	ds := &directives{
		pass:    pass,
		funcs:   make(map[*ast.FuncDecl][]*directive),
		types:   make(map[types.Object][]*directive),
		byLine:  make(map[lineKey][]*directive),
		flagged: make(map[*directive]bool),
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(rest, " ")
				d := &directive{name: name, reason: strings.TrimSpace(reason), pos: c.Pos()}
				ds.all = append(ds.all, d)
				p := pass.Fset.Position(c.Pos())
				k := lineKey{p.Filename, p.Line}
				ds.byLine[k] = append(ds.byLine[k], d)
			}
		}
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				for _, d := range ds.inGroup(decl.Doc) {
					d.attached = true
					ds.funcs[decl] = append(ds.funcs[decl], d)
				}
			case *ast.GenDecl:
				if decl.Tok != token.TYPE {
					continue
				}
				shared := ds.inGroup(decl.Doc)
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					obj := pass.TypesInfo.Defs[ts.Name]
					if obj == nil {
						continue
					}
					list := append(append([]*directive(nil), shared...), ds.inGroup(ts.Doc)...)
					list = append(list, ds.inGroup(ts.Comment)...)
					for _, d := range list {
						d.attached = true
						ds.types[obj] = append(ds.types[obj], d)
					}
				}
			}
		}
	}
	return ds
}

func (ds *directives) inGroup(cg *ast.CommentGroup) []*directive {
	if cg == nil {
		return nil
	}
	var out []*directive
	for _, d := range ds.all {
		if d.pos >= cg.Pos() && d.pos <= cg.End() {
			out = append(out, d)
		}
	}
	return out
}

// funcHas reports whether decl carries the named marker.
func (ds *directives) funcHas(decl *ast.FuncDecl, name string) bool {
	for _, d := range ds.funcs[decl] {
		if d.name == name {
			return true
		}
	}
	return false
}

// typeHas reports whether the named type's declaration carries the marker.
func (ds *directives) typeHas(obj types.Object, name string) bool {
	for _, d := range ds.types[obj] {
		if d.name == name {
			return true
		}
	}
	return false
}

// suppression returns the suppression directive covering pos (same line
// or the line immediately above), or nil.
func (ds *directives) suppression(pos token.Pos, name string) *directive {
	p := ds.pass.Fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range ds.byLine[lineKey{p.Filename, line}] {
			if d.name == name {
				return d
			}
		}
	}
	return nil
}

// report delivers a finding unless a suppression with a reason covers
// pos. A reasonless suppression does not suppress: it is itself reported
// (once), so every silenced finding carries a justification the CI
// summary can echo.
func (ds *directives) report(pos token.Pos, format string, args ...any) {
	if ds.pass.InTestFile(pos) {
		return
	}
	name := suppressionFor[ds.pass.Analyzer.Name]
	if d := ds.suppression(pos, name); d != nil {
		if d.reason != "" {
			return
		}
		if !ds.flagged[d] {
			ds.flagged[d] = true
			ds.pass.Reportf(d.pos, "%s%s needs a reason string justifying the suppression", directivePrefix, name)
		}
		return
	}
	ds.pass.Reportf(pos, format, args...)
}

// validate reports unknown and misplaced directives. It is called from
// exactly one analyzer (hotalloc) so each problem is reported once per
// package.
func (ds *directives) validate() {
	markers := map[string]bool{dirHotPath: true, dirEmitPath: true, dirSlab: true, dirHotAtomic: true}
	for _, d := range ds.all {
		if ds.pass.InTestFile(d.pos) {
			continue
		}
		switch {
		case !knownDirectives[d.name]:
			ds.pass.Reportf(d.pos, "unknown directive %s%s", directivePrefix, d.name)
		case markers[d.name] && !d.attached:
			ds.pass.Reportf(d.pos, "%s%s must be in the doc comment of a %s declaration", directivePrefix, d.name, markerTarget(d.name))
		}
	}
}

func markerTarget(name string) string {
	if name == dirSlab || name == dirHotAtomic {
		return "type"
	}
	return "function"
}
