package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// SlabRef enforces the uint32-handle discipline around slab-backed
// storage. Types annotated //dnhunter:slab (the flows slab element, the
// resolver pairNode, the ring entry arenas) live in growable slices:
// any *T into one of them is invalidated the moment the slab grows, so
// such pointers must stay statement-scoped. References across
// statements use uint32 handles re-resolved through the accessor.
//
// The analyzer flags every way a *T can outlive a statement: declaring
// a struct field (or slice/array/map/channel element) of type *T,
// assigning a *T to anything but a function-local variable, returning
// it, sending it on a channel, appending it to a slice, or placing it
// in a composite literal. The sanctioned narrow accessors (`at`)
// suppress their return with //dnhunter:slab-ok <reason>.
var SlabRef = &analysis.Analyzer{
	Name: "slabref",
	Doc:  "flag slab-slot pointers (//dnhunter:slab element types) that can outlive a statement",
	Run:  runSlabRef,
}

func runSlabRef(pass *analysis.Pass) error {
	ds := scanDirectives(pass)

	// The package's slab-marked type objects.
	slabs := make(map[types.Object]bool)
	for obj, list := range ds.types {
		for _, d := range list {
			if d.name == dirSlab {
				slabs[obj] = true
			}
		}
	}
	if len(slabs) == 0 {
		return nil
	}

	isSlabPtr := func(t types.Type) bool {
		p, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		n, ok := p.Elem().(*types.Named)
		return ok && slabs[n.Obj()]
	}

	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				checkSlabFields(pass, ds, n, isSlabPtr)
			case *ast.AssignStmt:
				checkSlabAssign(pass, ds, n, isSlabPtr)
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if t := info.TypeOf(r); t != nil && isSlabPtr(t) {
						ds.report(r.Pos(), "returning a slab-slot pointer lets it outlive slab growth; return a uint32 handle (or justify a statement-scoped accessor with %s%s <reason>)", directivePrefix, dirSlabOK)
					}
				}
			case *ast.SendStmt:
				if t := info.TypeOf(n.Value); t != nil && isSlabPtr(t) {
					ds.report(n.Value.Pos(), "sending a slab-slot pointer across a channel outlives slab growth; send a uint32 handle")
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
						for _, arg := range n.Args[1:] {
							if t := info.TypeOf(arg); t != nil && isSlabPtr(t) {
								ds.report(arg.Pos(), "appending a slab-slot pointer stores it past slab growth; store a uint32 handle")
							}
						}
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if t := info.TypeOf(v); t != nil && isSlabPtr(t) {
						ds.report(v.Pos(), "storing a slab-slot pointer in a composite literal outlives slab growth; store a uint32 handle")
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkSlabFields flags struct fields whose type can hold a slab-slot
// pointer: a field is storage by definition, so *T never belongs there.
func checkSlabFields(pass *analysis.Pass, ds *directives, st *ast.StructType, isSlabPtr func(types.Type) bool) {
	for _, field := range st.Fields.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if containsSlabPtr(t, isSlabPtr, 0) {
			ds.report(field.Pos(), "struct field holds a slab-slot pointer, which dangles after slab growth; store a uint32 handle")
		}
	}
}

// containsSlabPtr reports whether t is, or directly contains, a
// slab-slot pointer (through slices, arrays, maps, and channels).
func containsSlabPtr(t types.Type, isSlabPtr func(types.Type) bool, depth int) bool {
	if depth > 4 {
		return false
	}
	if isSlabPtr(t) {
		return true
	}
	switch t := t.Underlying().(type) {
	case *types.Slice:
		return containsSlabPtr(t.Elem(), isSlabPtr, depth+1)
	case *types.Array:
		return containsSlabPtr(t.Elem(), isSlabPtr, depth+1)
	case *types.Map:
		return containsSlabPtr(t.Key(), isSlabPtr, depth+1) || containsSlabPtr(t.Elem(), isSlabPtr, depth+1)
	case *types.Chan:
		return containsSlabPtr(t.Elem(), isSlabPtr, depth+1)
	}
	return false
}

// checkSlabAssign flags assignments of slab-slot pointers to anything
// but function-local variables. A statement-scoped local (`f := t.at(i)`)
// is the sanctioned way to touch a slot; fields, elements, dereferences,
// and package-level variables persist past the statement.
func checkSlabAssign(pass *analysis.Pass, ds *directives, stmt *ast.AssignStmt, isSlabPtr func(types.Type) bool) {
	info := pass.TypesInfo
	if len(stmt.Lhs) != len(stmt.Rhs) {
		return // tuple assignment from a call: covered at the return site
	}
	for i, rhs := range stmt.Rhs {
		t := info.TypeOf(rhs)
		if t == nil || !isSlabPtr(t) {
			continue
		}
		if isLocalVar(pass, stmt.Lhs[i]) {
			continue
		}
		ds.report(stmt.Lhs[i].Pos(), "storing a slab-slot pointer outside a local variable outlives slab growth; store a uint32 handle")
	}
}

// isLocalVar reports whether e names a function-local variable (or the
// blank identifier).
func isLocalVar(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Parent() != nil && v.Parent() != pass.Pkg.Scope()
}
