package lint

import (
	"go/token"
	"sort"

	"repro/internal/lint/analysis"
)

// DirectiveInfo is one //dnhunter: directive, for tooling that reports
// on the suppression inventory (dnlint -list-directives, the CI
// summary).
type DirectiveInfo struct {
	Pos    token.Position
	Name   string
	Reason string
}

// ListDirectives returns every //dnhunter: directive in the package's
// files, sorted by position.
func ListDirectives(pkg *analysis.Package) []DirectiveInfo {
	pass := pkg.Pass(HotAlloc, func(analysis.Diagnostic) {})
	ds := scanDirectives(pass)
	out := make([]DirectiveInfo, 0, len(ds.all))
	for _, d := range ds.all {
		out = append(out, DirectiveInfo{
			Pos:    pass.Fset.Position(d.pos),
			Name:   d.name,
			Reason: d.reason,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}
