package lint

import "repro/internal/lint/analysis"

// Analyzers is the dnlint suite, in the order diagnostics are emitted.
var Analyzers = []*analysis.Analyzer{
	HotAlloc,
	MapRange,
	SlabRef,
	AtomicField,
}
