package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// HotAlloc flags allocation-prone constructs in the packet-rate hot
// path. A function is hot when its declaration carries
// //dnhunter:hotpath, or when a hot function in the same package
// references it (transitively) — so annotating the entry points
// (Parser.Parse, Table.Add, Resolver.Insert, the shard dispatch loop)
// covers their whole intra-package call trees. Cross-package callees
// must carry their own marker: the analyzer is modular, like go vet.
//
// Flagged constructs: string<->[]byte/[]rune conversions (except map
// index keys and ==/!= comparisons, which the compiler performs without
// allocating), fmt.* calls, map/slice composite literals, make and new,
// append that does not write back to the slice it extends (or a fresh
// slice), implicit interface boxing of call arguments, and closures
// that are not immediately invoked. Intentional allocations (amortized
// slab growth, one-time lazy init) are justified in place with
// //dnhunter:alloc-ok <reason>.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation-prone constructs in //dnhunter:hotpath functions and their intra-package callees",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) error {
	ds := scanDirectives(pass)
	ds.validate() // exactly one analyzer validates directive placement

	// Collect this package's function declarations.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	// Seed with annotated functions, then propagate hotness along
	// intra-package references (calls and method values alike: a
	// function handed to a hot function as a callback runs hot).
	hot := make(map[*types.Func]string) // func → root annotation it is reached from
	var queue []*types.Func
	for obj, fd := range decls {
		if ds.funcHas(fd, dirHotPath) {
			hot[obj] = obj.Name()
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		ast.Inspect(decls[obj].Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if _, ok := decls[callee]; ok {
				if _, seen := hot[callee]; !seen {
					hot[callee] = hot[obj]
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	// Check hot bodies in file order (deterministic reporting).
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if root, isHot := hot[obj]; isHot {
				checkHotBody(pass, ds, fd, root)
			}
		}
	}
	return nil
}

func checkHotBody(pass *analysis.Pass, ds *directives, fd *ast.FuncDecl, root string) {
	if pass.InTestFile(fd.Pos()) {
		return
	}
	info := pass.TypesInfo
	walkParents(fd.Body, func(n ast.Node, parents []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, ds, n, parents, root)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				ds.report(n.Pos(), "hot path (via %s): map literal allocates", root)
			case *types.Slice:
				ds.report(n.Pos(), "hot path (via %s): slice literal allocates", root)
			}
		case *ast.FuncLit:
			if !immediatelyInvoked(n, parents) {
				ds.report(n.Pos(), "hot path (via %s): closure may escape and allocate; hoist it or justify with %s%s", root, directivePrefix, dirAllocOK)
			}
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, ds *directives, call *ast.CallExpr, parents []ast.Node, root string) {
	info := pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		checkHotConversion(ds, info, call, tv.Type, parents, root)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			checkHotBuiltin(ds, info, call, b.Name(), parents, root)
			return
		}
	}
	if callee := staticCallee(info, call); pkgPathOf(callee) == "fmt" {
		ds.report(call.Pos(), "hot path (via %s): fmt.%s allocates; format off the hot path", root, callee.Name())
		return // boxing into fmt's ...any params needs no second finding
	}
	checkHotBoxing(ds, info, call, root)
}

// checkHotConversion flags string([]byte), []byte(string), []rune and
// string(rune) conversions, which copy per call. Map-index keys and
// ==/!= operands are exempt: the compiler performs those without
// materializing the string.
func checkHotConversion(ds *directives, info *types.Info, call *ast.CallExpr, target types.Type, parents []ast.Node, root string) {
	if len(call.Args) != 1 {
		return
	}
	argT := info.TypeOf(call.Args[0])
	if argT == nil {
		return
	}
	var what string
	switch {
	case isString(target) && isByteOrRuneSlice(argT):
		what = "string(bytes)"
	case isByteOrRuneSlice(target) && isString(argT):
		what = "[]byte(string)"
	default:
		return
	}
	if p := len(parents); p > 0 {
		switch parent := parents[p-1].(type) {
		case *ast.IndexExpr:
			if parent.Index == call {
				if _, isMap := info.TypeOf(parent.X).Underlying().(*types.Map); isMap {
					return // m[string(b)] lookup: no allocation
				}
			}
		case *ast.BinaryExpr:
			if parent.Op == token.EQL || parent.Op == token.NEQ {
				return // string(a) == s comparison: no allocation
			}
		}
	}
	ds.report(call.Pos(), "hot path (via %s): %s conversion allocates per call", root, what)
}

func checkHotBuiltin(ds *directives, info *types.Info, call *ast.CallExpr, name string, parents []ast.Node, root string) {
	switch name {
	case "make":
		ds.report(call.Pos(), "hot path (via %s): make allocates; preallocate or justify amortized growth with %s%s", root, directivePrefix, dirAllocOK)
	case "new":
		ds.report(call.Pos(), "hot path (via %s): new allocates", root)
	case "append":
		checkHotAppend(ds, info, call, parents, root)
	}
}

// checkHotAppend allows the two idioms the hot path is built on —
// x = append(x, ...) into a recycled buffer, and the Append*-style
// `return append(dst, ...)` where the caller owns dst — and flags
// everything else: appends to fresh slices always allocate, and appends
// stored under a different name both hide growth and alias the base.
func checkHotAppend(ds *directives, info *types.Info, call *ast.CallExpr, parents []ast.Node, root string) {
	if len(call.Args) == 0 {
		return
	}
	base := exprPath(info, call.Args[0])
	if base == "" {
		ds.report(call.Pos(), "hot path (via %s): append to a fresh slice allocates", root)
		return
	}
	if len(parents) > 0 {
		switch parent := parents[len(parents)-1].(type) {
		case *ast.ReturnStmt:
			return // Append*-style API: the caller owns the buffer
		case *ast.AssignStmt:
			for i, rhs := range parent.Rhs {
				if ast.Unparen(rhs) == call && i < len(parent.Lhs) && exprPath(info, parent.Lhs[i]) == base {
					return // self-append into a reused buffer
				}
			}
		}
	}
	ds.report(call.Pos(), "hot path (via %s): append result is not written back to %s; growth allocates and the base may alias", root, base)
}

// checkHotBoxing flags implicit interface conversions at call sites:
// passing a concrete value where a parameter is an interface boxes it.
func checkHotBoxing(ds *directives, info *types.Info, call *ast.CallExpr, root string) {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			param = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			param = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(param) {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.IsNil() || tv.Type == nil || types.IsInterface(tv.Type) {
			continue
		}
		ds.report(arg.Pos(), "hot path (via %s): implicit conversion of %s to interface %s boxes (may allocate)", root, tv.Type, param)
	}
}

// immediatelyInvoked reports whether lit is the callee of a direct call
// expression (not via go/defer, which still allocate the closure).
func immediatelyInvoked(lit *ast.FuncLit, parents []ast.Node) bool {
	if len(parents) < 2 {
		return false
	}
	call, ok := parents[len(parents)-1].(*ast.CallExpr)
	if !ok || ast.Unparen(call.Fun) != lit {
		return false
	}
	switch parents[len(parents)-2].(type) {
	case *ast.GoStmt, *ast.DeferStmt:
		return false
	}
	return true
}
