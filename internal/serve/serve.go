// Package serve exposes a streaming engine's live state over HTTP: a
// health endpoint for orchestration probes, a Prometheus-format metrics
// endpoint for scraping, and a JSON snapshot for humans with curl. It
// reads only the atomic counters core.ServeMetrics publishes, so a
// scrape never contends with the packet path.
//
// Endpoints:
//
//	GET /healthz         200 "ok" while serving, 200 "degraded" while serving
//	                     after source restarts or a checkpoint fresh start,
//	                     503 "draining" during drain
//	GET /metrics         Prometheus text exposition (see OPERATIONS.md)
//	GET /stats.json      the same numbers as one JSON object
//	GET /analytics.json  live analytics-pipeline snapshot (when configured)
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
)

// Config configures a metrics server.
type Config struct {
	// Listen is the TCP listen address, e.g. ":8053" or "127.0.0.1:0".
	Listen string
	// Metrics is the engine's live metrics view; required.
	Metrics *core.ServeMetrics
	// Analytics, when non-nil, enables GET /analytics.json (the pipeline's
	// live snapshot in registration order) and the top-k gauges on
	// /metrics. The pipeline's own mutex makes snapshotting safe while the
	// serving goroutine feeds it.
	Analytics *analytics.Pipeline
}

// Server serves the observability endpoints for one streaming engine.
type Server struct {
	cfg  Config
	mux  *http.ServeMux
	http *http.Server
	ln   net.Listener

	mu         sync.Mutex
	lastScrape time.Time
	lastPkts   uint64
	rate       float64
	started    time.Time
}

// New builds a server; call Start to begin listening.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("/healthz", s.healthz)
	s.mux.HandleFunc("/metrics", s.metrics)
	s.mux.HandleFunc("/stats.json", s.statsJSON)
	if cfg.Analytics != nil {
		s.mux.HandleFunc("/analytics.json", s.analyticsJSON)
	}
	return s
}

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start begins listening on cfg.Listen and serves until Shutdown. It
// returns once the listener is bound, so Addr is valid immediately;
// errs receives the terminal serve error (nil on clean shutdown).
func (s *Server) Start(errs chan<- error) error {
	ln, err := net.Listen("tcp", s.cfg.Listen)
	if err != nil {
		return err
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		err := s.http.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		if errs != nil {
			errs <- err
		}
	}()
	return nil
}

// Addr returns the bound listen address (resolving ":0" ports).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops the HTTP server, waiting for in-flight scrapes.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.http == nil {
		return nil
	}
	return s.http.Shutdown(ctx)
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	// Draining wins: the pod is going away, stop routing to it. Degraded
	// still answers 200 — the engine is serving, just with gaps (source
	// restarts, checkpoint fresh start) — so orchestrators keep it while
	// operators alert on the body or on dnhunter_degraded.
	if s.cfg.Metrics.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.cfg.Metrics.Degraded() {
		fmt.Fprintln(w, "degraded")
		return
	}
	fmt.Fprintln(w, "ok")
}

// sample is one consistent point-in-time reading of every exported value.
type sample struct {
	Packets         uint64            `json:"packets"`
	Bytes           uint64            `json:"bytes"`
	PktsPerSec      float64           `json:"pkts_per_sec"`
	TraceClock      float64           `json:"trace_clock_seconds"`
	Flows           uint64            `json:"flows"`
	Labeled         uint64            `json:"labeled_flows"`
	Tags            uint64            `json:"tags"`
	DNSResponses    uint64            `json:"dns_responses"`
	Dropped         core.ShedShard    `json:"dropped"`
	DropShards      []core.ShedShard  `json:"dropped_per_shard,omitempty"`
	Windows         uint64            `json:"windows_flushed"`
	FlushLag        float64           `json:"window_flush_lag_seconds"`
	RingDepths      []int             `json:"ring_depths,omitempty"`
	Readers         []core.ReaderStat `json:"readers,omitempty"`
	ArenaRetired    uint64            `json:"arena_blocks_retired"`
	ArenaAvgNs      float64           `json:"arena_block_retire_avg_ns"`
	Restored        uint64            `json:"restored_entries"`
	Draining        bool              `json:"draining"`
	Degraded        bool              `json:"degraded"`
	FaultsTransient uint64            `json:"fault_source_errors_transient"`
	FaultsFatal     uint64            `json:"fault_source_errors_fatal"`
	SourceRestarts  uint64            `json:"fault_source_restarts"`
	FreshStarts     uint64            `json:"fault_checkpoint_fresh_starts"`
	BudgetTotal     int64             `json:"fault_error_budget_total"`
	BudgetRemaining int64             `json:"fault_error_budget_remaining"`
	HeapInuse       uint64            `json:"heap_inuse_bytes"`
	Uptime          float64           `json:"uptime_seconds"`
}

// snapshot reads the metrics and updates the scrape-to-scrape packet
// rate under the mutex.
func (s *Server) snapshot() sample {
	m := s.cfg.Metrics
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	pkts := m.Packets()
	now := time.Now()
	s.mu.Lock()
	if !s.lastScrape.IsZero() {
		if dt := now.Sub(s.lastScrape).Seconds(); dt > 0 {
			s.rate = float64(pkts-s.lastPkts) / dt
		}
	}
	s.lastScrape = now
	s.lastPkts = pkts
	rate := s.rate
	uptime := now.Sub(s.started).Seconds()
	s.mu.Unlock()

	ar := m.ArenaStats()
	var retireAvg float64
	if ar.Retired > 0 {
		retireAvg = float64(ar.RetireNs) / float64(ar.Retired)
	}
	ftr, ffa := m.SourceErrors()
	btot, brem := m.RestartBudget()

	return sample{
		Packets:         pkts,
		Bytes:           m.Bytes(),
		PktsPerSec:      rate,
		TraceClock:      m.TraceClock().Seconds(),
		Flows:           m.Flows(),
		Labeled:         m.LabeledFlows(),
		Tags:            m.Tags(),
		DNSResponses:    m.DNSResponses(),
		Dropped:         m.Shed.Totals(),
		DropShards:      m.Shed.PerShard(),
		Windows:         m.WindowsFlushed(),
		FlushLag:        m.WindowFlushLag().Seconds(),
		RingDepths:      m.RingDepths(),
		Readers:         m.ReaderStats(),
		ArenaRetired:    ar.Retired,
		ArenaAvgNs:      retireAvg,
		Restored:        m.RestoredEntries(),
		Draining:        m.Draining(),
		Degraded:        m.Degraded(),
		FaultsTransient: ftr,
		FaultsFatal:     ffa,
		SourceRestarts:  m.SourceRestarts(),
		FreshStarts:     m.CheckpointFreshStarts(),
		BudgetTotal:     btot,
		BudgetRemaining: brem,
		HeapInuse:       ms.HeapInuse,
		Uptime:          uptime,
	}
}

func (s *Server) statsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.snapshot())
}

// analyticsEnvelope is the /analytics.json document.
type analyticsEnvelope struct {
	// ObservedFlows counts flows fed to the pipeline so far. In serve mode
	// it trails dnhunter_flows_total by up to one window: the pipeline
	// observes flows at window rotation, not at emission.
	ObservedFlows uint64                  `json:"observed_flows"`
	Queries       []analytics.QueryResult `json:"queries"`
}

func (s *Server) analyticsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(analyticsEnvelope{
		ObservedFlows: s.cfg.Analytics.Observed(),
		Queries:       s.cfg.Analytics.Snapshot(),
	})
}

// labelEscape escapes a Prometheus label value (backslash, quote,
// newline — the three characters the exposition format reserves).
func labelEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// analyticsMetrics renders the top-k query snapshots as labeled gauge
// series. Only TopKResult-shaped queries surface here — counts with a
// bounded, low-cardinality label set; the full structured results live
// on /analytics.json.
func analyticsMetrics(b *strings.Builder, p *analytics.Pipeline) {
	type series struct {
		query, key string
		count      uint64
	}
	var out []series
	for _, qr := range p.Snapshot() {
		tk, ok := qr.Result.(analytics.TopKResult)
		if !ok {
			continue
		}
		for _, e := range tk.Entries {
			out = append(out, series{query: qr.Name, key: e.Key, count: e.Count})
		}
	}
	if len(out) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP dnhunter_analytics_topk Estimated flow count per top-k key, by query.\n# TYPE dnhunter_analytics_topk gauge\n")
	for _, sr := range out {
		fmt.Fprintf(b, "dnhunter_analytics_topk{query=\"%s\",key=\"%s\"} %d\n", labelEscape(sr.query), labelEscape(sr.key), sr.count)
	}
}

// metrics writes the Prometheus text exposition format (version 0.0.4):
// "# HELP"/"# TYPE" comment pairs followed by one sample per line. The
// format is plain text by design, so stdlib fmt is all it takes.
func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	sm := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gaugeF := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gaugeU := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("dnhunter_packets_total", "Frames read from the packet source.", sm.Packets)
	counter("dnhunter_bytes_total", "Frame bytes read from the packet source.", sm.Bytes)
	gaugeF("dnhunter_pkts_per_sec", "Packet rate over the last scrape interval.", sm.PktsPerSec)
	gaugeF("dnhunter_trace_clock_seconds", "Newest packet timestamp read (trace time).", sm.TraceClock)
	counter("dnhunter_flows_total", "Finished labeled-flow records emitted.", sm.Flows)
	counter("dnhunter_labeled_flows_total", "Emitted records that carried a DNS label.", sm.Labeled)
	counter("dnhunter_tags_total", "Flows tagged at their first packet.", sm.Tags)
	counter("dnhunter_dns_responses_total", "Decoded address-bearing DNS responses.", sm.DNSResponses)
	counter("dnhunter_dropped_flows_total", "Flow-path entries shed under overload.", sm.Dropped.Flows)
	counter("dnhunter_dropped_dns_total", "DNS entries shed under overload (lost tagging coverage).", sm.Dropped.DNS)
	counter("dnhunter_dropped_bytes_total", "Payload bytes shed under overload.", sm.Dropped.Bytes)
	counter("dnhunter_windows_flushed_total", "Completed flowdb windows flushed.", sm.Windows)
	gaugeF("dnhunter_window_flush_lag_seconds", "Trace time of flows buffered in the open window.", sm.FlushLag)
	if len(sm.RingDepths) > 0 {
		fmt.Fprintf(&b, "# HELP dnhunter_ring_depth Published-but-unconsumed slots per shard ring.\n# TYPE dnhunter_ring_depth gauge\n")
		for i, d := range sm.RingDepths {
			fmt.Fprintf(&b, "dnhunter_ring_depth{shard=\"%d\"} %d\n", i, d)
		}
	}
	if len(sm.Readers) > 0 {
		readerSeries := func(name, help string, v func(core.ReaderStat) uint64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for i, rs := range sm.Readers {
				fmt.Fprintf(&b, "%s{reader=\"%d\"} %d\n", name, i, v(rs))
			}
		}
		readerSeries("dnhunter_reader_pkts_total", "Raw frames routed to each reader partition.",
			func(rs core.ReaderStat) uint64 { return rs.Pkts })
		readerSeries("dnhunter_reader_ring_full_parks_total", "Stripe parks on each reader's full ingress ring (dispatcher is the bottleneck).",
			func(rs core.ReaderStat) uint64 { return rs.RingFullParks })
		readerSeries("dnhunter_reader_mesh_full_parks_total", "Dispatcher parks on full dispatcher-to-shard rings (a shard is the bottleneck).",
			func(rs core.ReaderStat) uint64 { return rs.MeshFullParks })
		readerSeries("dnhunter_reader_shed_frames_total", "Raw frames shed at ingress before any parse.",
			func(rs core.ReaderStat) uint64 { return rs.ShedFrames })
	}
	counter("dnhunter_arena_blocks_retired_total", "Payload arena blocks whose last handle was released.", sm.ArenaRetired)
	gaugeF("dnhunter_arena_block_retire_ns_avg", "Mean time payload handles keep an arena block pinned, in nanoseconds.", sm.ArenaAvgNs)
	gaugeU("dnhunter_restored_entries", "Resolver entries restored from the checkpoint.", sm.Restored)
	fmt.Fprintf(&b, "# HELP dnhunter_fault_source_errors_total Source read errors by supervisor classification.\n# TYPE dnhunter_fault_source_errors_total counter\n")
	fmt.Fprintf(&b, "dnhunter_fault_source_errors_total{class=\"transient\"} %d\n", sm.FaultsTransient)
	fmt.Fprintf(&b, "dnhunter_fault_source_errors_total{class=\"fatal\"} %d\n", sm.FaultsFatal)
	counter("dnhunter_fault_source_restarts_total", "Supervised source restarts (transient errors recovered from).", sm.SourceRestarts)
	counter("dnhunter_fault_checkpoint_fresh_starts_total", "Checkpoint files rejected at startup, answered by a fresh start.", sm.FreshStarts)
	gaugeF("dnhunter_fault_error_budget_total", "Restart error budget configured by the policy (0 = supervision off).", float64(sm.BudgetTotal))
	gaugeF("dnhunter_fault_error_budget_remaining", "Restarts left before transient source errors become fatal.", float64(sm.BudgetRemaining))
	degraded := uint64(0)
	if sm.Degraded {
		degraded = 1
	}
	gaugeU("dnhunter_degraded", "1 after source restarts or a checkpoint fresh start (sticky for the run).", degraded)
	draining := uint64(0)
	if sm.Draining {
		draining = 1
	}
	gaugeU("dnhunter_draining", "1 while the engine is draining after cancellation.", draining)
	gaugeU("dnhunter_heap_inuse_bytes", "Bytes in in-use heap spans (runtime.MemStats.HeapInuse).", sm.HeapInuse)
	gaugeF("dnhunter_uptime_seconds", "Seconds since the metrics server started.", sm.Uptime)
	if s.cfg.Analytics != nil {
		analyticsMetrics(&b, s.cfg.Analytics)
	}

	w.Write([]byte(b.String()))
}
