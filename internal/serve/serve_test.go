package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/synth"
)

// runMetrics produces a ServeMetrics populated by a real engine run.
func runMetrics(t *testing.T) *core.ServeMetrics {
	t.Helper()
	tr := synth.Generate(synth.QuickScenario(7))
	srv := core.NewServer(core.EngineConfig{Shards: 2}, core.ServeConfig{Window: 10 * time.Minute})
	if _, err := srv.Serve(context.Background(), tr.Source()); err != nil {
		t.Fatal(err)
	}
	return srv.Metrics()
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr.Code, rr.Body.String()
}

func TestHealthz(t *testing.T) {
	m := &core.ServeMetrics{}
	s := New(Config{Metrics: m})
	code, body := get(t, s.Handler(), "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy: %d %q", code, body)
	}
}

func TestMetricsExposition(t *testing.T) {
	s := New(Config{Metrics: runMetrics(t)})
	code, body := get(t, s.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"# TYPE dnhunter_packets_total counter",
		"# TYPE dnhunter_heap_inuse_bytes gauge",
		"dnhunter_flows_total ",
		"dnhunter_windows_flushed_total ",
		"dnhunter_ring_depth{shard=\"0\"} ",
		"dnhunter_ring_depth{shard=\"1\"} ",
		"dnhunter_draining 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, body)
		}
	}
	if strings.Contains(body, "dnhunter_packets_total 0\n") {
		t.Fatal("packet counter stayed zero after a real run")
	}
}

func TestStatsJSON(t *testing.T) {
	s := New(Config{Metrics: runMetrics(t)})
	code, body := get(t, s.Handler(), "/stats.json")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var sm sample
	if err := json.Unmarshal([]byte(body), &sm); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if sm.Packets == 0 || sm.Flows == 0 || sm.HeapInuse == 0 {
		t.Fatalf("zeroed snapshot: %+v", sm)
	}
	if sm.Windows == 0 {
		t.Fatal("no windows flushed in snapshot")
	}
}

func TestScrapeRate(t *testing.T) {
	m := &core.ServeMetrics{}
	s := New(Config{Metrics: m})
	get(t, s.Handler(), "/metrics") // anchor scrape
	// Fake 1000 packets arriving between scrapes via a real engine run is
	// overkill here; poke the sample path directly through two scrapes.
	time.Sleep(5 * time.Millisecond)
	_, body := get(t, s.Handler(), "/metrics")
	if !strings.Contains(body, "dnhunter_pkts_per_sec") {
		t.Fatal("rate gauge missing")
	}
}

func TestStartServesOverTCP(t *testing.T) {
	s := New(Config{Listen: "127.0.0.1:0", Metrics: runMetrics(t)})
	errs := make(chan error, 1)
	if err := s.Start(errs); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "dnhunter_packets_total") {
		t.Fatalf("TCP scrape: %d %q", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("serve error: %v", err)
	}
}
