package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/analytics/stream"
	"repro/internal/core"
	"repro/internal/flowdb"
	"repro/internal/synth"
)

// runMetrics produces a ServeMetrics populated by a real engine run.
func runMetrics(t *testing.T) *core.ServeMetrics {
	t.Helper()
	tr := synth.Generate(synth.QuickScenario(7))
	srv := core.NewServer(core.EngineConfig{Shards: 2}, core.ServeConfig{Window: 10 * time.Minute})
	if _, err := srv.Serve(context.Background(), tr.Source()); err != nil {
		t.Fatal(err)
	}
	return srv.Metrics()
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr.Code, rr.Body.String()
}

func TestHealthz(t *testing.T) {
	m := &core.ServeMetrics{}
	s := New(Config{Metrics: m})
	code, body := get(t, s.Handler(), "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy: %d %q", code, body)
	}
}

func TestMetricsExposition(t *testing.T) {
	s := New(Config{Metrics: runMetrics(t)})
	code, body := get(t, s.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"# TYPE dnhunter_packets_total counter",
		"# TYPE dnhunter_heap_inuse_bytes gauge",
		"dnhunter_flows_total ",
		"dnhunter_windows_flushed_total ",
		"dnhunter_ring_depth{shard=\"0\"} ",
		"dnhunter_ring_depth{shard=\"1\"} ",
		"dnhunter_draining 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, body)
		}
	}
	if strings.Contains(body, "dnhunter_packets_total 0\n") {
		t.Fatal("packet counter stayed zero after a real run")
	}
}

func TestStatsJSON(t *testing.T) {
	s := New(Config{Metrics: runMetrics(t)})
	code, body := get(t, s.Handler(), "/stats.json")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var sm sample
	if err := json.Unmarshal([]byte(body), &sm); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if sm.Packets == 0 || sm.Flows == 0 || sm.HeapInuse == 0 {
		t.Fatalf("zeroed snapshot: %+v", sm)
	}
	if sm.Windows == 0 {
		t.Fatal("no windows flushed in snapshot")
	}
}

// degradedMetrics produces a ServeMetrics from a run that rejected a
// corrupt checkpoint — the simplest real path into the degraded state.
func degradedMetrics(t *testing.T) *core.ServeMetrics {
	t.Helper()
	tr := synth.Generate(synth.QuickScenario(9))
	path := filepath.Join(t.TempDir(), "clist.ckpt")
	if err := os.WriteFile(path, []byte("DNHCLIST\x02 not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer(core.EngineConfig{}, core.ServeConfig{Window: 10 * time.Minute, CheckpointPath: path})
	if _, err := srv.Serve(context.Background(), tr.Source()); err != nil {
		t.Fatal(err)
	}
	return srv.Metrics()
}

func TestHealthzDegraded(t *testing.T) {
	s := New(Config{Metrics: degradedMetrics(t)})
	code, body := get(t, s.Handler(), "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "degraded") {
		t.Fatalf("degraded healthz: %d %q (must stay 200 — degraded, not dead)", code, body)
	}
}

func TestMetricsFaultExposition(t *testing.T) {
	// A healthy run exposes every fault counter, all zero.
	s := New(Config{Metrics: runMetrics(t)})
	_, body := get(t, s.Handler(), "/metrics")
	for _, want := range []string{
		`dnhunter_fault_source_errors_total{class="transient"} 0`,
		`dnhunter_fault_source_errors_total{class="fatal"} 0`,
		"dnhunter_fault_source_restarts_total 0",
		"dnhunter_fault_checkpoint_fresh_starts_total 0",
		"dnhunter_fault_error_budget_total 0",
		"dnhunter_degraded 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("healthy exposition missing %q in:\n%s", want, body)
		}
	}
	// A fresh-started run flips the degraded gauge and counts the reject.
	s = New(Config{Metrics: degradedMetrics(t)})
	_, body = get(t, s.Handler(), "/metrics")
	for _, want := range []string{
		"dnhunter_fault_checkpoint_fresh_starts_total 1",
		"dnhunter_degraded 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("degraded exposition missing %q in:\n%s", want, body)
		}
	}
}

func TestStatsJSONDegraded(t *testing.T) {
	s := New(Config{Metrics: degradedMetrics(t)})
	_, body := get(t, s.Handler(), "/stats.json")
	var sm sample
	if err := json.Unmarshal([]byte(body), &sm); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if !sm.Degraded || sm.FreshStarts != 1 {
		t.Fatalf("degraded snapshot: %+v", sm)
	}
}

func TestScrapeRate(t *testing.T) {
	m := &core.ServeMetrics{}
	s := New(Config{Metrics: m})
	get(t, s.Handler(), "/metrics") // anchor scrape
	// Fake 1000 packets arriving between scrapes via a real engine run is
	// overkill here; poke the sample path directly through two scrapes.
	time.Sleep(5 * time.Millisecond)
	_, body := get(t, s.Handler(), "/metrics")
	if !strings.Contains(body, "dnhunter_pkts_per_sec") {
		t.Fatal("rate gauge missing")
	}
}

// analyticsPipeline builds a small live pipeline with a few observed flows.
func analyticsPipeline(t *testing.T) *analytics.Pipeline {
	t.Helper()
	p := analytics.NewPipeline(stream.NewTopDomains(5, 64), stream.NewCoverage(0))
	for _, label := range []string{"a.example.com", "a.example.com", "b.example.com"} {
		f := flowdb.LabeledFlow{Label: label, SLD: "example.com", Labeled: true}
		p.Observe(&f)
	}
	return p
}

func TestAnalyticsJSON(t *testing.T) {
	s := New(Config{Metrics: &core.ServeMetrics{}, Analytics: analyticsPipeline(t)})
	code, body := get(t, s.Handler(), "/analytics.json")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var env struct {
		ObservedFlows uint64 `json:"observed_flows"`
		Queries       []struct {
			Name   string          `json:"name"`
			Result json.RawMessage `json:"result"`
		} `json:"queries"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if env.ObservedFlows != 3 {
		t.Fatalf("observed_flows = %d, want 3", env.ObservedFlows)
	}
	if len(env.Queries) != 2 || env.Queries[0].Name != "top_domains" || env.Queries[1].Name != "coverage" {
		t.Fatalf("queries: %+v", env.Queries)
	}
	if !strings.Contains(string(env.Queries[0].Result), "a.example.com") {
		t.Fatalf("top_domains result missing observed key: %s", env.Queries[0].Result)
	}
}

func TestAnalyticsJSONDisabled(t *testing.T) {
	s := New(Config{Metrics: &core.ServeMetrics{}})
	if code, _ := get(t, s.Handler(), "/analytics.json"); code != http.StatusNotFound {
		t.Fatalf("no-pipeline /analytics.json status %d, want 404", code)
	}
}

func TestAnalyticsMetricsGauges(t *testing.T) {
	s := New(Config{Metrics: &core.ServeMetrics{}, Analytics: analyticsPipeline(t)})
	_, body := get(t, s.Handler(), "/metrics")
	for _, want := range []string{
		"# TYPE dnhunter_analytics_topk gauge",
		`dnhunter_analytics_topk{query="top_domains",key="a.example.com"} 2`,
		`dnhunter_analytics_topk{query="top_domains",key="b.example.com"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, body)
		}
	}
}

func TestLabelEscape(t *testing.T) {
	if got := labelEscape("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Fatalf("labelEscape = %q", got)
	}
}

func TestStartServesOverTCP(t *testing.T) {
	s := New(Config{Listen: "127.0.0.1:0", Metrics: runMetrics(t)})
	errs := make(chan error, 1)
	if err := s.Start(errs); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "dnhunter_packets_total") {
		t.Fatalf("TCP scrape: %d %q", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("serve error: %v", err)
	}
}
