package layers

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	ip4a = netip.MustParseAddr("10.0.0.1")
	ip4b = netip.MustParseAddr("192.168.1.77")
	ip6a = netip.MustParseAddr("2001:db8::1")
	ip6b = netip.MustParseAddr("2001:db8::2")
)

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       MACAddr{1, 2, 3, 4, 5, 6},
		Src:       MACAddr{7, 8, 9, 10, 11, 12},
		EtherType: EtherTypeIPv4,
	}
	payload := []byte("hello")
	raw := e.AppendTo(nil, payload)

	var got Ethernet
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Dst != e.Dst || got.Src != e.Src || got.EtherType != e.EtherType {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatalf("payload mismatch: %q", got.Payload)
	}
}

func TestEthernetTruncated(t *testing.T) {
	var e Ethernet
	if err := e.DecodeFromBytes(make([]byte, 13)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestMACString(t *testing.T) {
	m := MACAddr{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Fatalf("got %q", m.String())
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4{TOS: 0x10, ID: 1234, TTL: 61, Protocol: IPProtocolTCP, Src: ip4a, Dst: ip4b}
	payload := []byte("payload bytes")
	raw, err := ip.AppendTo(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	var got IPv4
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Src != ip4a || got.Dst != ip4b || got.Protocol != IPProtocolTCP || got.TTL != 61 || got.ID != 1234 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !got.HeaderChecksumOK {
		t.Fatal("checksum did not verify")
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatalf("payload mismatch")
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	ip := IPv4{Protocol: IPProtocolUDP, Src: ip4a, Dst: ip4b}
	raw, err := ip.AppendTo(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw[8] ^= 0xff // corrupt TTL
	var got IPv4
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.HeaderChecksumOK {
		t.Fatal("corrupted header passed checksum")
	}
}

func TestIPv4TrailingBytesIgnored(t *testing.T) {
	// Ethernet padding after TotalLength must not leak into the payload.
	ip := IPv4{Protocol: IPProtocolTCP, Src: ip4a, Dst: ip4b}
	raw, err := ip.AppendTo(nil, []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, 0, 0, 0, 0, 0, 0)
	var got IPv4
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "abc" {
		t.Fatalf("payload = %q", got.Payload)
	}
}

func TestIPv4Malformed(t *testing.T) {
	cases := map[string][]byte{
		"short":       make([]byte, 10),
		"bad version": append([]byte{0x65}, make([]byte, 19)...),
		"bad ihl":     append([]byte{0x42}, make([]byte, 19)...),
	}
	for name, raw := range cases {
		var ip IPv4
		if err := ip.DecodeFromBytes(raw); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestIPv4RejectsV6Addr(t *testing.T) {
	ip := IPv4{Src: ip6a, Dst: ip4b}
	if _, err := ip.AppendTo(nil, nil); err == nil {
		t.Fatal("expected error for IPv6 address")
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	ip := IPv6{TrafficClass: 7, FlowLabel: 0xabcde, NextHeader: IPProtocolUDP, HopLimit: 33, Src: ip6a, Dst: ip6b}
	payload := []byte("v6 payload")
	raw, err := ip.AppendTo(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	var got IPv6
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Src != ip6a || got.Dst != ip6b || got.NextHeader != IPProtocolUDP ||
		got.HopLimit != 33 || got.TrafficClass != 7 || got.FlowLabel != 0xabcde {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatalf("payload mismatch")
	}
}

func TestIPv6Malformed(t *testing.T) {
	var ip IPv6
	if err := ip.DecodeFromBytes(make([]byte, 39)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
	bad := make([]byte, 40)
	bad[0] = 0x45
	if err := ip.DecodeFromBytes(bad); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tc := TCP{SrcPort: 443, DstPort: 51234, Seq: 1000, Ack: 2000, Flags: TCPSyn | TCPAck, Window: 4096, Urgent: 1}
	payload := []byte("GET / HTTP/1.1\r\n")
	raw, err := tc.AppendTo(nil, payload, ip4a, ip4b)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyTCPChecksum(raw, ip4a, ip4b) {
		t.Fatal("TCP checksum did not verify")
	}
	var got TCP
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 443 || got.DstPort != 51234 || got.Seq != 1000 || got.Ack != 2000 ||
		got.Flags != TCPSyn|TCPAck || got.Window != 4096 || got.Urgent != 1 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestTCPChecksumCorruption(t *testing.T) {
	tc := TCP{SrcPort: 80, DstPort: 12345, Flags: TCPAck}
	raw, err := tc.AppendTo(nil, []byte("data"), ip4a, ip4b)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 1
	if VerifyTCPChecksum(raw, ip4a, ip4b) {
		t.Fatal("corrupted segment passed checksum")
	}
}

func TestTCPChecksumV6(t *testing.T) {
	tc := TCP{SrcPort: 443, DstPort: 40000, Flags: TCPSyn}
	raw, err := tc.AppendTo(nil, nil, ip6a, ip6b)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyTCPChecksum(raw, ip6a, ip6b) {
		t.Fatal("v6 TCP checksum did not verify")
	}
}

func TestTCPFlagsString(t *testing.T) {
	if s := (TCPSyn | TCPAck).String(); s != "SA" {
		t.Fatalf("got %q", s)
	}
	if s := TCPFlags(0).String(); s != "." {
		t.Fatalf("got %q", s)
	}
}

func TestTCPMalformed(t *testing.T) {
	var tc TCP
	if err := tc.DecodeFromBytes(make([]byte, 19)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
	bad := make([]byte, 20)
	bad[12] = 0x30 // data offset 12 bytes < 20
	if err := tc.DecodeFromBytes(bad); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 53, DstPort: 33333}
	payload := []byte{0x12, 0x34, 0x81, 0x80}
	raw, err := u.AppendTo(nil, payload, ip4a, ip4b)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyUDPChecksum(raw, ip4a, ip4b) {
		t.Fatal("UDP checksum did not verify")
	}
	var got UDP
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 53 || got.DstPort != 33333 || !bytes.Equal(got.Payload, payload) {
		t.Fatalf("mismatch: %+v", got)
	}
}

func TestUDPTruncatedLength(t *testing.T) {
	u := UDP{SrcPort: 1, DstPort: 2}
	raw, err := u.AppendTo(nil, []byte("abcdef"), ip4a, ip4b)
	if err != nil {
		t.Fatal(err)
	}
	var got UDP
	if err := got.DecodeFromBytes(raw[:10]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
}

func TestIPProtocolString(t *testing.T) {
	if IPProtocolTCP.String() != "tcp" || IPProtocolUDP.String() != "udp" {
		t.Fatal("protocol names")
	}
	if IPProtocol(200).String() == "" {
		t.Fatal("unknown protocol should render")
	}
}

func TestParserTCPv4(t *testing.T) {
	var b Builder
	frame, err := b.TCPFrame(ip4a, ip4b, 40000, 443, TCPSyn, 99, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var p Parser
	info, err := p.Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasIP || !info.HasTCP || info.HasUDP {
		t.Fatalf("layer flags: %+v", info)
	}
	if info.SrcIP != ip4a || info.DstIP != ip4b || info.SrcPort != 40000 || info.DstPort != 443 {
		t.Fatalf("addressing: %+v", info)
	}
	if !info.TCPFlags.Has(TCPSyn) || info.Seq != 99 {
		t.Fatalf("tcp fields: %+v", info)
	}
	if p.Stats.TCPSegments != 1 || p.Stats.Frames != 1 {
		t.Fatalf("stats: %+v", p.Stats)
	}
}

func TestParserUDPv6(t *testing.T) {
	var b Builder
	payload := []byte("dns-ish")
	frame, err := b.UDPFrame(ip6a, ip6b, 53, 5353, payload)
	if err != nil {
		t.Fatal(err)
	}
	var p Parser
	info, err := p.Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasUDP || info.SrcPort != 53 || !bytes.Equal(info.Payload, payload) {
		t.Fatalf("info: %+v", info)
	}
}

func TestParserUnhandledEtherType(t *testing.T) {
	e := Ethernet{EtherType: EtherTypeARP}
	frame := e.AppendTo(nil, make([]byte, 28))
	var p Parser
	if _, err := p.Parse(frame); !errors.Is(err, ErrUnhandled) {
		t.Fatalf("err = %v", err)
	}
	if p.Stats.NonIP != 1 {
		t.Fatalf("stats: %+v", p.Stats)
	}
}

func TestParserOtherProto(t *testing.T) {
	ip := IPv4{Protocol: IPProtocolICMP, Src: ip4a, Dst: ip4b}
	ipRaw, err := ip.AppendTo(nil, []byte{8, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	e := Ethernet{EtherType: EtherTypeIPv4}
	frame := e.AppendTo(nil, ipRaw)
	var p Parser
	if _, err := p.Parse(frame); !errors.Is(err, ErrUnhandled) {
		t.Fatalf("err = %v", err)
	}
	if p.Stats.OtherProto != 1 {
		t.Fatalf("stats: %+v", p.Stats)
	}
}

func TestParserMalformedCounted(t *testing.T) {
	var p Parser
	if _, err := p.Parse([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error")
	}
	if p.Stats.Malformed != 1 {
		t.Fatalf("stats: %+v", p.Stats)
	}
}

func TestParserDoesNotChokeOnFuzzedFrames(t *testing.T) {
	// Property: arbitrary bytes never panic the parser.
	f := func(data []byte) bool {
		var p Parser
		_, _ = p.Parse(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTCPRoundTripPayload(t *testing.T) {
	var b Builder
	var p Parser
	f := func(payload []byte, sport, dport uint16) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		frame, err := b.TCPFrame(ip4a, ip4b, sport, dport, TCPAck|TCPPsh, 1, 1, payload)
		if err != nil {
			return false
		}
		info, err := p.Parse(frame)
		if err != nil {
			return false
		}
		return info.SrcPort == sport && info.DstPort == dport && bytes.Equal(info.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParserTCP(b *testing.B) {
	var bl Builder
	frame, err := bl.TCPFrame(ip4a, ip4b, 40000, 443, TCPAck, 1, 1, make([]byte, 512))
	if err != nil {
		b.Fatal(err)
	}
	frameCopy := append([]byte(nil), frame...)
	var p Parser
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Parse(frameCopy); err != nil {
			b.Fatal(err)
		}
	}
}
