package layers

import (
	"encoding/binary"
	"net/netip"
)

// TCPFlags is the 8-bit TCP flag field.
type TCPFlags uint8

// Individual TCP flags.
const (
	TCPFin TCPFlags = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
	TCPEce
	TCPCwr
)

// Has reports whether all flags in f are set.
func (fl TCPFlags) Has(f TCPFlags) bool { return fl&f == f }

// String renders the set flags in tcpdump-style order.
func (fl TCPFlags) String() string {
	out := make([]byte, 0, 8)
	for _, p := range []struct {
		f TCPFlags
		c byte
	}{{TCPSyn, 'S'}, {TCPFin, 'F'}, {TCPRst, 'R'}, {TCPPsh, 'P'}, {TCPAck, 'A'}, {TCPUrg, 'U'}, {TCPEce, 'E'}, {TCPCwr, 'C'}} {
		if fl.Has(p.f) {
			out = append(out, p.c)
		}
	}
	if len(out) == 0 {
		return "."
	}
	return string(out)
}

// TCP is a TCP segment header. Options are skipped via the data offset.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            TCPFlags
	Window           uint16
	Urgent           uint16
	// Payload aliases the decoded segment's payload bytes.
	Payload []byte
}

// TCPHeaderLen is the length of an option-less TCP header.
const TCPHeaderLen = 20

// DecodeFromBytes parses a TCP header.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < TCPHeaderLen {
		return errTCPTruncated
	}
	off := int(data[12]>>4) * 4
	if off < TCPHeaderLen || off > len(data) {
		return errTCPOffset
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.Flags = TCPFlags(data[13])
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Payload = data[off:]
	return nil
}

// AppendTo serializes the segment (header + payload) onto b with a correct
// checksum computed against the src/dst pseudo-header.
func (t *TCP) AppendTo(b []byte, payload []byte, src, dst netip.Addr) ([]byte, error) {
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, t.SrcPort)
	b = binary.BigEndian.AppendUint16(b, t.DstPort)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	b = append(b, 5<<4, uint8(t.Flags))
	b = binary.BigEndian.AppendUint16(b, t.Window)
	b = append(b, 0, 0) // checksum patched below
	b = binary.BigEndian.AppendUint16(b, t.Urgent)
	b = append(b, payload...)
	cs := transportChecksum(b[start:], src, dst, IPProtocolTCP)
	binary.BigEndian.PutUint16(b[start+16:start+18], cs)
	return b, nil
}

// VerifyChecksum recomputes the checksum of a raw TCP segment against the
// given addresses; it returns true when the segment verifies.
func VerifyTCPChecksum(segment []byte, src, dst netip.Addr) bool {
	if len(segment) < TCPHeaderLen {
		return false
	}
	return transportChecksum(segment, src, dst, IPProtocolTCP) == 0
}

// UDP is a UDP datagram header.
type UDP struct {
	SrcPort, DstPort uint16
	// Payload aliases the decoded datagram's payload bytes, truncated to the
	// length field.
	Payload []byte
}

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// DecodeFromBytes parses a UDP header.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return errUDPTruncated
	}
	length := int(binary.BigEndian.Uint16(data[4:6]))
	if length < UDPHeaderLen || length > len(data) {
		return errUDPLength
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Payload = data[UDPHeaderLen:length]
	return nil
}

// AppendTo serializes the datagram onto b with a correct checksum.
func (u *UDP) AppendTo(b []byte, payload []byte, src, dst netip.Addr) ([]byte, error) {
	length := UDPHeaderLen + len(payload)
	if length > 0xffff {
		return b, errUDPPayload
	}
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, uint16(length))
	b = append(b, 0, 0)
	b = append(b, payload...)
	cs := transportChecksum(b[start:], src, dst, IPProtocolUDP)
	if cs == 0 {
		cs = 0xffff // RFC 768: transmitted-zero means "no checksum"
	}
	binary.BigEndian.PutUint16(b[start+6:start+8], cs)
	return b, nil
}

// VerifyUDPChecksum recomputes the checksum of a raw UDP datagram.
func VerifyUDPChecksum(segment []byte, src, dst netip.Addr) bool {
	if len(segment) < UDPHeaderLen {
		return false
	}
	if binary.BigEndian.Uint16(segment[6:8]) == 0 {
		return true // checksum disabled by sender
	}
	return transportChecksum(segment, src, dst, IPProtocolUDP) == 0
}
