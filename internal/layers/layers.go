// Package layers implements decoding and serialization for the protocol
// stack DN-Hunter observes on the wire: Ethernet II, IPv4, IPv6, TCP and
// UDP. The design follows the gopacket DecodingLayerParser idiom: each layer
// is a plain struct with a DecodeFromBytes method that fills preallocated
// fields without allocating, so the sniffer hot path is allocation-free.
//
// Serialization (AppendTo methods) is provided because the trace synthesizer
// produces real wire bytes that the sniffer then decodes, exercising both
// directions of every codec.
package layers

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// EtherTypes used by this codebase.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeIPv6 EtherType = 0x86DD
	EtherTypeARP  EtherType = 0x0806
)

// IPProtocol identifies the transport protocol of an IP packet.
type IPProtocol uint8

// IP protocol numbers used by this codebase.
const (
	IPProtocolTCP    IPProtocol = 6
	IPProtocolUDP    IPProtocol = 17
	IPProtocolICMP   IPProtocol = 1
	IPProtocolICMPv6 IPProtocol = 58
)

// String returns the conventional protocol name.
func (p IPProtocol) String() string {
	switch p {
	case IPProtocolTCP:
		return "tcp"
	case IPProtocolUDP:
		return "udp"
	case IPProtocolICMP:
		return "icmp"
	case IPProtocolICMPv6:
		return "icmpv6"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Errors returned by the decoders. Malformed input never panics.
var (
	ErrTruncated = errors.New("layers: truncated packet")
	ErrBadHeader = errors.New("layers: malformed header")
)

// Pre-wrapped per-site errors: decoders run on the sniffer hot path where a
// malformed frame must not cost an allocation, so each failure site returns
// a static error instead of building one with fmt.Errorf. Callers match with
// errors.Is against the sentinels above.
var (
	errEthTruncated  = fmt.Errorf("ethernet: %w", ErrTruncated)
	errIPv4Truncated = fmt.Errorf("ipv4: %w", ErrTruncated)
	errIPv4Version   = fmt.Errorf("ipv4: %w: bad version", ErrBadHeader)
	errIPv4IHL       = fmt.Errorf("ipv4: %w: bad IHL", ErrBadHeader)
	errIPv4Length    = fmt.Errorf("ipv4: %w: total length beyond frame", ErrTruncated)
	errIPv4Addr      = fmt.Errorf("ipv4: %w: non-IPv4 address", ErrBadHeader)
	errIPv4Payload   = fmt.Errorf("ipv4: %w: payload too large", ErrBadHeader)
	errIPv6Truncated = fmt.Errorf("ipv6: %w", ErrTruncated)
	errIPv6Version   = fmt.Errorf("ipv6: %w: bad version", ErrBadHeader)
	errIPv6Length    = fmt.Errorf("ipv6: %w: payload length beyond frame", ErrTruncated)
	errIPv6Addr      = fmt.Errorf("ipv6: %w: non-IPv6 address", ErrBadHeader)
	errIPv6Payload   = fmt.Errorf("ipv6: %w: payload too large", ErrBadHeader)
	errTCPTruncated  = fmt.Errorf("tcp: %w", ErrTruncated)
	errTCPOffset     = fmt.Errorf("tcp: %w: bad data offset", ErrBadHeader)
	errUDPTruncated  = fmt.Errorf("udp: %w", ErrTruncated)
	errUDPLength     = fmt.Errorf("udp: %w: length beyond datagram", ErrTruncated)
	errUDPPayload    = fmt.Errorf("udp: %w: payload too large", ErrBadHeader)
)

// MACAddr is a 6-byte Ethernet hardware address.
type MACAddr [6]byte

// String formats the address in colon-hex form.
func (m MACAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst, Src  MACAddr
	EtherType EtherType
	// Payload references the decoded frame's payload bytes; it aliases the
	// input slice passed to DecodeFromBytes.
	Payload []byte
}

// EthernetHeaderLen is the length of an Ethernet II header in bytes.
const EthernetHeaderLen = 14

// DecodeFromBytes parses an Ethernet II header. The Payload field aliases
// data; callers that retain it across packets must copy.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return errEthTruncated
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = EtherType(binary.BigEndian.Uint16(data[12:14]))
	e.Payload = data[EthernetHeaderLen:]
	return nil
}

// AppendTo serializes the header followed by payload onto b.
func (e *Ethernet) AppendTo(b []byte, payload []byte) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	b = binary.BigEndian.AppendUint16(b, uint16(e.EtherType))
	return append(b, payload...)
}

// IPv4 is an IPv4 header. Options are accepted on decode (skipped via IHL)
// but never emitted on serialize.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // upper 3 bits of the fragment word
	FragOff  uint16
	TTL      uint8
	Protocol IPProtocol
	Src, Dst netip.Addr
	// Payload aliases the input slice and is truncated to TotalLength.
	Payload []byte
	// HeaderChecksumOK reports whether the received header checksum verified.
	HeaderChecksumOK bool
}

// IPv4HeaderLen is the length of an option-less IPv4 header.
const IPv4HeaderLen = 20

// DecodeFromBytes parses an IPv4 header, validating version, IHL, total
// length and the header checksum.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return errIPv4Truncated
	}
	if v := data[0] >> 4; v != 4 {
		return errIPv4Version
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || ihl > len(data) {
		return errIPv4IHL
	}
	total := int(binary.BigEndian.Uint16(data[2:4]))
	if total < ihl || total > len(data) {
		return errIPv4Length
	}
	ip.TOS = data[1]
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	frag := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(frag >> 13)
	ip.FragOff = frag & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	ip.HeaderChecksumOK = checksum(data[:ihl]) == 0
	var src, dst [4]byte
	copy(src[:], data[12:16])
	copy(dst[:], data[16:20])
	ip.Src = netip.AddrFrom4(src)
	ip.Dst = netip.AddrFrom4(dst)
	ip.Payload = data[ihl:total]
	return nil
}

// AppendTo serializes the header (with a correct checksum) followed by
// payload onto b. Src and Dst must be IPv4 addresses.
func (ip *IPv4) AppendTo(b []byte, payload []byte) ([]byte, error) {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return b, errIPv4Addr
	}
	total := IPv4HeaderLen + len(payload)
	if total > 0xffff {
		return b, errIPv4Payload
	}
	start := len(b)
	b = append(b, 0x45, ip.TOS)
	b = binary.BigEndian.AppendUint16(b, uint16(total))
	b = binary.BigEndian.AppendUint16(b, ip.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	ttl := ip.TTL
	if ttl == 0 {
		ttl = 64
	}
	b = append(b, ttl, uint8(ip.Protocol), 0, 0) // checksum patched below
	src := ip.Src.As4()
	dst := ip.Dst.As4()
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	cs := checksum(b[start : start+IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[start+10:start+12], cs)
	return append(b, payload...), nil
}

// IPv6 is a fixed IPv6 header. Extension headers are not decoded; packets
// carrying them surface NextHeader values the parser treats as unsupported.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	NextHeader   IPProtocol
	HopLimit     uint8
	Src, Dst     netip.Addr
	Payload      []byte
}

// IPv6HeaderLen is the length of the fixed IPv6 header.
const IPv6HeaderLen = 40

// DecodeFromBytes parses the fixed IPv6 header.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < IPv6HeaderLen {
		return errIPv6Truncated
	}
	if v := data[0] >> 4; v != 6 {
		return errIPv6Version
	}
	ip.TrafficClass = data[0]<<4 | data[1]>>4
	ip.FlowLabel = binary.BigEndian.Uint32(data[0:4]) & 0x000fffff
	plen := int(binary.BigEndian.Uint16(data[4:6]))
	ip.NextHeader = IPProtocol(data[6])
	ip.HopLimit = data[7]
	var src, dst [16]byte
	copy(src[:], data[8:24])
	copy(dst[:], data[24:40])
	ip.Src = netip.AddrFrom16(src)
	ip.Dst = netip.AddrFrom16(dst)
	if IPv6HeaderLen+plen > len(data) {
		return errIPv6Length
	}
	ip.Payload = data[IPv6HeaderLen : IPv6HeaderLen+plen]
	return nil
}

// AppendTo serializes the fixed header followed by payload onto b.
// Src and Dst must be IPv6 addresses.
func (ip *IPv6) AppendTo(b []byte, payload []byte) ([]byte, error) {
	if !ip.Src.Is6() || ip.Src.Is4In6() || !ip.Dst.Is6() || ip.Dst.Is4In6() {
		return b, errIPv6Addr
	}
	if len(payload) > 0xffff {
		return b, errIPv6Payload
	}
	w0 := uint32(6)<<28 | uint32(ip.TrafficClass)<<20 | ip.FlowLabel&0x000fffff
	b = binary.BigEndian.AppendUint32(b, w0)
	b = binary.BigEndian.AppendUint16(b, uint16(len(payload)))
	hop := ip.HopLimit
	if hop == 0 {
		hop = 64
	}
	b = append(b, uint8(ip.NextHeader), hop)
	src := ip.Src.As16()
	dst := ip.Dst.As16()
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	return append(b, payload...), nil
}

// checksum computes the RFC 1071 internet checksum over data.
func checksum(data []byte) uint16 {
	var sum uint32
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data[:2]))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial sum of the TCP/UDP pseudo-header.
func pseudoHeaderSum(src, dst netip.Addr, proto IPProtocol, length int) uint32 {
	var sum uint32
	add := func(b []byte) {
		for len(b) >= 2 {
			sum += uint32(binary.BigEndian.Uint16(b[:2]))
			b = b[2:]
		}
	}
	if src.Is4() && dst.Is4() {
		s, d := src.As4(), dst.As4()
		add(s[:])
		add(d[:])
	} else {
		s, d := src.As16(), dst.As16()
		add(s[:])
		add(d[:])
	}
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// transportChecksum finishes a checksum over segment with the pseudo-header
// for src/dst/proto included.
func transportChecksum(segment []byte, src, dst netip.Addr, proto IPProtocol) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	for len(segment) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(segment[:2]))
		segment = segment[2:]
	}
	if len(segment) == 1 {
		sum += uint32(segment[0]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
