package layers

import (
	"fmt"
	"net/netip"
)

// Decoded summarizes one parsed frame. All slice fields alias the frame
// buffer passed to Parser.Parse; copy before retaining.
type Decoded struct {
	// Which layers were recognized.
	HasIP, HasTCP, HasUDP bool
	SrcIP, DstIP          netip.Addr
	Proto                 IPProtocol
	SrcPort, DstPort      uint16
	TCPFlags              TCPFlags
	Seq, Ack              uint32
	// Payload is the transport payload (TCP stream bytes or UDP datagram).
	Payload []byte
}

// Parser decodes Ethernet frames into preallocated layer structs, the
// DecodingLayerParser pattern from gopacket: zero allocation per packet.
// A Parser is not safe for concurrent use.
type Parser struct {
	eth  Ethernet
	ip4  IPv4
	ip6  IPv6
	tcp  TCP
	udp  UDP
	Info Decoded

	// Stats counts decode outcomes; the sniffer reports them.
	Stats ParserStats
}

// ParserStats counts parse outcomes.
type ParserStats struct {
	Frames      uint64 // total frames offered
	Malformed   uint64 // frames rejected by a decoder
	NonIP       uint64 // frames with an unhandled EtherType
	OtherProto  uint64 // IP packets that are neither TCP nor UDP
	TCPSegments uint64
	UDPDatagram uint64
}

// Add accumulates o into s (per-shard merge).
func (s *ParserStats) Add(o ParserStats) {
	s.Frames += o.Frames
	s.Malformed += o.Malformed
	s.NonIP += o.NonIP
	s.OtherProto += o.OtherProto
	s.TCPSegments += o.TCPSegments
	s.UDPDatagram += o.UDPDatagram
}

// Parse decodes one Ethernet frame. On success Info is valid until the next
// call. Unsupported-but-well-formed frames (ARP, ICMP) return ErrUnhandled.
//
//dnhunter:hotpath
func (p *Parser) Parse(frame []byte) (*Decoded, error) {
	p.Stats.Frames++
	p.Info = Decoded{}
	if err := p.eth.DecodeFromBytes(frame); err != nil {
		p.Stats.Malformed++
		return nil, err
	}
	var (
		payload []byte
		proto   IPProtocol
	)
	switch p.eth.EtherType {
	case EtherTypeIPv4:
		if err := p.ip4.DecodeFromBytes(p.eth.Payload); err != nil {
			p.Stats.Malformed++
			return nil, err
		}
		p.Info.HasIP = true
		p.Info.SrcIP, p.Info.DstIP = p.ip4.Src, p.ip4.Dst
		proto = p.ip4.Protocol
		payload = p.ip4.Payload
	case EtherTypeIPv6:
		if err := p.ip6.DecodeFromBytes(p.eth.Payload); err != nil {
			p.Stats.Malformed++
			return nil, err
		}
		p.Info.HasIP = true
		p.Info.SrcIP, p.Info.DstIP = p.ip6.Src, p.ip6.Dst
		proto = p.ip6.NextHeader
		payload = p.ip6.Payload
	default:
		p.Stats.NonIP++
		return nil, errUnhandledEtherType
	}
	p.Info.Proto = proto
	switch proto {
	case IPProtocolTCP:
		if err := p.tcp.DecodeFromBytes(payload); err != nil {
			p.Stats.Malformed++
			return nil, err
		}
		p.Stats.TCPSegments++
		p.Info.HasTCP = true
		p.Info.SrcPort, p.Info.DstPort = p.tcp.SrcPort, p.tcp.DstPort
		p.Info.TCPFlags = p.tcp.Flags
		p.Info.Seq, p.Info.Ack = p.tcp.Seq, p.tcp.Ack
		p.Info.Payload = p.tcp.Payload
	case IPProtocolUDP:
		if err := p.udp.DecodeFromBytes(payload); err != nil {
			p.Stats.Malformed++
			return nil, err
		}
		p.Stats.UDPDatagram++
		p.Info.HasUDP = true
		p.Info.SrcPort, p.Info.DstPort = p.udp.SrcPort, p.udp.DstPort
		p.Info.Payload = p.udp.Payload
	default:
		p.Stats.OtherProto++
		return nil, errUnhandledProto
	}
	return &p.Info, nil
}

// ErrUnhandled marks frames that parsed correctly but carry a protocol the
// pipeline does not track (ARP, ICMP, ...). Callers should skip, not count
// as malformed.
var ErrUnhandled = fmt.Errorf("layers: unhandled protocol")

// Static wrappers returned on the per-packet path: a capture full of ARP or
// ICMP must not allocate an error per frame.
var (
	errUnhandledEtherType = fmt.Errorf("%w: ethertype", ErrUnhandled)
	errUnhandledProto     = fmt.Errorf("%w: ip protocol", ErrUnhandled)
)

// Builder composes full frames for the synthesizer. The zero value uses
// fixed locally administered MAC addresses; only the IP/transport fields
// matter to the pipeline.
type Builder struct {
	buf []byte
}

var (
	builderSrcMAC = MACAddr{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	builderDstMAC = MACAddr{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
)

// TCPFrame builds Ethernet+IP+TCP with the given payload. The returned slice
// is reused on the next call; copy before retaining.
func (b *Builder) TCPFrame(src, dst netip.Addr, sport, dport uint16, flags TCPFlags, seq, ack uint32, payload []byte) ([]byte, error) {
	t := TCP{SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack, Flags: flags, Window: 65535}
	seg, err := t.AppendTo(nil, payload, src, dst)
	if err != nil {
		return nil, err
	}
	return b.ipFrame(src, dst, IPProtocolTCP, seg)
}

// UDPFrame builds Ethernet+IP+UDP with the given payload.
func (b *Builder) UDPFrame(src, dst netip.Addr, sport, dport uint16, payload []byte) ([]byte, error) {
	u := UDP{SrcPort: sport, DstPort: dport}
	seg, err := u.AppendTo(nil, payload, src, dst)
	if err != nil {
		return nil, err
	}
	return b.ipFrame(src, dst, IPProtocolUDP, seg)
}

func (b *Builder) ipFrame(src, dst netip.Addr, proto IPProtocol, seg []byte) ([]byte, error) {
	b.buf = b.buf[:0]
	var ipBytes []byte
	var err error
	if src.Is4() && dst.Is4() {
		ip := IPv4{TTL: 64, Protocol: proto, Src: src, Dst: dst}
		ipBytes, err = ip.AppendTo(nil, seg)
	} else {
		ip := IPv6{NextHeader: proto, HopLimit: 64, Src: src, Dst: dst}
		ipBytes, err = ip.AppendTo(nil, seg)
	}
	if err != nil {
		return nil, err
	}
	et := EtherTypeIPv4
	if !src.Is4() {
		et = EtherTypeIPv6
	}
	eth := Ethernet{Dst: builderDstMAC, Src: builderSrcMAC, EtherType: et}
	b.buf = eth.AppendTo(b.buf, ipBytes)
	return b.buf, nil
}
