package layers

import (
	"net/netip"
	"testing"
)

// The parser is the innermost per-packet loop; it must not allocate on any
// success path, nor on the common unhandled-protocol skips.

func TestParseTCPZeroAlloc(t *testing.T) {
	var b Builder
	frame, err := b.TCPFrame(
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("192.0.2.10"),
		40000, 443, TCPAck, 7, 9, []byte("payload bytes"))
	if err != nil {
		t.Fatal(err)
	}
	frame = append([]byte(nil), frame...) // detach from the builder's buffer
	var p Parser
	if _, err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := p.Parse(frame); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("TCP parse allocates %v/op, want 0", n)
	}
}

func TestParseUDPZeroAlloc(t *testing.T) {
	var b Builder
	frame, err := b.UDPFrame(
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("192.0.2.53"),
		40000, 53, []byte{0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	frame = append([]byte(nil), frame...)
	var p Parser
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := p.Parse(frame); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("UDP parse allocates %v/op, want 0", n)
	}
}

func TestParseIPv6TCPZeroAlloc(t *testing.T) {
	var b Builder
	frame, err := b.TCPFrame(
		netip.MustParseAddr("2001:db8::1"), netip.MustParseAddr("2001:db8::2"),
		40000, 443, TCPAck, 7, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	frame = append([]byte(nil), frame...)
	var p Parser
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := p.Parse(frame); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("IPv6 TCP parse allocates %v/op, want 0", n)
	}
}

// Unhandled-but-well-formed frames (ARP, ICMP) are skipped per packet; a
// capture full of them must not allocate an error each.
func TestParseUnhandledZeroAlloc(t *testing.T) {
	arp := make([]byte, EthernetHeaderLen+28)
	eth := Ethernet{EtherType: EtherTypeARP}
	frame := eth.AppendTo(nil, arp[EthernetHeaderLen:])
	var p Parser
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := p.Parse(frame); err == nil {
			t.Fatal("ARP frame should be unhandled")
		}
	}); n != 0 {
		t.Fatalf("unhandled parse allocates %v/op, want 0", n)
	}
}
