package flows

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/layers"
)

// TestTrackerLockstepWithTable replays one pseudo-random packet stream two
// ways — directly through a Table via Add, and through the dispatcher
// arrangement (Tracker.Route deciding key/direction/expiry, the Table fed
// via AddOriented and ExpireFlow) — and requires identical emitted record
// streams, stats, and live-flow counts at every step. This is the exact
// single-shard projection of the sharded engine's equivalence contract.
func TestTrackerLockstepWithTable(t *testing.T) {
	clientNets := []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}
	const idle = 2 * time.Second

	for seed := uint64(1); seed <= 3; seed++ {
		data := make([]byte, 4*2048)
		s := seed * 977
		for i := range data {
			s += 0x9E3779B97F4A7C15
			z := s
			z ^= z >> 30
			z *= 0xBF58476D1CE4E5B9
			z ^= z >> 27
			data[i] = byte(z >> 48)
		}

		var direct, routed []Record
		// The routed table shares the tracker's seed, exactly like the
		// engine, so Route's hash is consumed via OrientedPacket.Hash; the
		// direct table keeps its own random seed.
		sharedSeed := seed*0x9E3779B97F4A7C15 | 1
		tblDirect := NewTable(Config{IdleTimeout: idle, ClientNets: clientNets, DisableAutoSweep: true,
			OnRecord: func(r Record, _ Handle) { direct = append(direct, r) }})
		tblRouted := NewTable(Config{IdleTimeout: idle, ClientNets: clientNets, DisableAutoSweep: true, Seed: sharedSeed,
			OnRecord: func(r Record, _ Handle) { routed = append(routed, r) }})
		tk := NewTracker(clientNets, idle, sharedSeed)
		if tk.IdleTimeout() != idle {
			t.Fatalf("tracker idle = %v", tk.IdleTimeout())
		}
		assign := func(netip.Addr) uint32 { return 0 }

		var cur, sweepMark time.Duration
		for i := 0; i+4 <= len(data); i += 4 {
			var d *layers.Decoded
			var sweep bool
			d, cur, sweep = decodeOp(data[i:i+4], cur)
			if sweep {
				continue // explicit sweeps are the engine's job; exercised below
			}
			tblDirect.Add(d, cur, nil)

			key, c2s, kh, shard := tk.Route(d, cur, assign)
			if shard != 0 {
				t.Fatalf("assigned shard %d", shard)
			}
			tblRouted.AddOriented(&OrientedPacket{
				Key: key, C2S: c2s, Hash: kh, TCP: d.HasTCP, Flags: d.TCPFlags, Payload: d.Payload,
			}, cur, nil)

			// The dispatcher's amortized sweep: tracker computes the expired
			// set, the table executes it; the direct table sweeps itself.
			if cur-sweepMark >= idle {
				sweepMark = cur
				tblDirect.FlushIdle(cur)
				tk.ExpireIdle(cur, func(k Key, kh uint64, _ uint32) { tblRouted.ExpireFlow(k, kh) })
			}

			if tblDirect.Active() != tblRouted.Active() || tk.Active() != tblRouted.Active() {
				t.Fatalf("seed %d op %d: active direct=%d routed=%d tracker=%d",
					seed, i/4, tblDirect.Active(), tblRouted.Active(), tk.Active())
			}
		}
		tblDirect.FlushAll()
		tblRouted.FlushAll()

		if tblDirect.Stats() != tblRouted.Stats() {
			t.Fatalf("seed %d: stats diverge:\n direct %+v\n routed %+v", seed, tblDirect.Stats(), tblRouted.Stats())
		}
		if len(direct) != len(routed) {
			t.Fatalf("seed %d: %d records direct, %d routed", seed, len(direct), len(routed))
		}
		for i := range direct {
			if !recordsEqual(direct[i], routed[i]) {
				t.Fatalf("seed %d: record %d diverges:\n direct %+v\n routed %+v", seed, i, direct[i], routed[i])
			}
		}
	}
}

// TestExpireFlowUnknownKeyNoop: an expiry command for a flow the table no
// longer holds (already closed by RST, say) must be a safe no-op.
func TestExpireFlowUnknownKeyNoop(t *testing.T) {
	tbl := NewTable(Config{})
	tbl.ExpireFlow(Key{ClientIP: fuzzClients[0], ServerIP: fuzzServers[0], ClientPort: 1, ServerPort: 2, Proto: layers.IPProtocolTCP}, 0)
	if st := tbl.Stats(); st.FlowsExpired != 0 || tbl.Active() != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
