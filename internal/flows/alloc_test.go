package flows

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/layers"
)

// A packet for a flow the table already tracks — the overwhelmingly common
// case on a busy link — must not allocate.

func TestTableHitZeroAlloc(t *testing.T) {
	tbl := NewTable(Config{OnRecord: func(Record, Handle) {}})
	syn := &layers.Decoded{
		HasIP: true, HasTCP: true,
		SrcIP: netip.MustParseAddr("10.0.0.1"), DstIP: netip.MustParseAddr("192.0.2.10"),
		Proto: layers.IPProtocolTCP, SrcPort: 40000, DstPort: 443,
		TCPFlags: layers.TCPSyn,
	}
	tbl.Add(syn, 0, nil) // creates the flow
	ack := &layers.Decoded{
		HasIP: true, HasTCP: true,
		SrcIP: syn.SrcIP, DstIP: syn.DstIP,
		Proto: layers.IPProtocolTCP, SrcPort: 40000, DstPort: 443,
		TCPFlags: layers.TCPAck,
	}
	at := 10 * time.Millisecond
	if n := testing.AllocsPerRun(1000, func() {
		tbl.Add(ack, at, nil)
	}); n != 0 {
		t.Fatalf("flow-table hit allocates %v/op, want 0", n)
	}
	if got := tbl.Active(); got != 1 {
		t.Fatalf("active = %d, want 1", got)
	}
}

// Steady churn — flows opening and closing at a constant rate — must reuse
// recycled flow structs instead of growing the heap.
func TestTableChurnSteadyStateAlloc(t *testing.T) {
	tbl := NewTable(Config{OnRecord: func(Record, Handle) {}})
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("192.0.2.10")
	cycle := func(port uint16) {
		syn := &layers.Decoded{HasIP: true, HasTCP: true, SrcIP: src, DstIP: dst,
			Proto: layers.IPProtocolTCP, SrcPort: port, DstPort: 443, TCPFlags: layers.TCPSyn}
		rst := &layers.Decoded{HasIP: true, HasTCP: true, SrcIP: src, DstIP: dst,
			Proto: layers.IPProtocolTCP, SrcPort: port, DstPort: 443, TCPFlags: layers.TCPRst}
		tbl.Add(syn, 0, nil)
		tbl.Add(rst, time.Millisecond, nil)
	}
	// Warm-up fills the free list and map capacity.
	for p := uint16(1000); p < 1100; p++ {
		cycle(p)
	}
	if n := testing.AllocsPerRun(200, func() {
		cycle(2000)
	}); n > 0.1 {
		t.Fatalf("steady flow churn allocates %v/op, want ~0", n)
	}
}
