// Package flows reconstructs transport-layer flows from decoded packets:
// the paper's "Flow Sniffer" (§3.1). Packets are aggregated on the 5-tuple
// (clientIP, serverIP, sPort, dPort, protocol), oriented so the initiator is
// the client, run through a compact TCP state machine, and classified at
// layer 7 (HTTP, TLS, P2P) from the first payload bytes — the same signals
// Tstat uses for the paper's ground truth.
package flows

import (
	"bytes"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"repro/internal/layers"
	"repro/internal/tlswire"
)

// Key identifies a flow, oriented client → server.
type Key struct {
	ClientIP   netip.Addr
	ServerIP   netip.Addr
	ClientPort uint16
	ServerPort uint16
	Proto      layers.IPProtocol
}

// String renders the key in a tcpdump-like form.
func (k Key) String() string {
	return fmt.Sprintf("%s %s:%d > %s:%d", k.Proto, k.ClientIP, k.ClientPort, k.ServerIP, k.ServerPort)
}

// Reverse returns the key with endpoints swapped.
func (k Key) Reverse() Key {
	return Key{
		ClientIP: k.ServerIP, ServerIP: k.ClientIP,
		ClientPort: k.ServerPort, ServerPort: k.ClientPort,
		Proto: k.Proto,
	}
}

// L7Proto is the coarse application classification the paper reports hit
// ratios for (Table 2).
type L7Proto uint8

// Classification outcomes.
const (
	L7Unknown L7Proto = iota
	L7HTTP
	L7TLS
	L7P2P
	L7DNS
)

// String names the classification.
func (p L7Proto) String() string {
	switch p {
	case L7HTTP:
		return "HTTP"
	case L7TLS:
		return "TLS"
	case L7P2P:
		return "P2P"
	case L7DNS:
		return "DNS"
	default:
		return "OTHER"
	}
}

// TCPState is the connection lifecycle state.
type TCPState uint8

// TCP states tracked by the table.
const (
	StateNew TCPState = iota
	StateSynSent
	StateEstablished
	StateClosing
	StateClosed
	StateReset
)

// Record is one finished (or flushed) flow, the unit stored in the labeled
// flows database.
type Record struct {
	Key        Key
	Start, End time.Duration
	// SawSYN reports whether the flow was observed from its first segment,
	// which is when pre-flow tagging can act on it.
	SawSYN bool
	State  TCPState

	PktsC2S, PktsS2C   uint64
	BytesC2S, BytesS2C uint64

	L7 L7Proto
	// HTTPHost is the Host header of the first request, when L7 == HTTP.
	HTTPHost string
	// SNI is the TLS server_name, when present.
	SNI string
	// CertNames are subject names from the server Certificate message,
	// leaf first; empty when no certificate was observed.
	CertNames []string
}

// flow is the mutable in-table state.
type flow struct {
	rec        Record
	c2sPrefix  []byte
	s2cPrefix  []byte
	classified bool
	inspected  bool
}

// prefixCap bounds the per-direction payload prefix retained for
// classification; enough for a ClientHello or an HTTP request head plus a
// ServerHello+Certificate flight.
const prefixCap = 4096

// Config tunes the table.
type Config struct {
	// IdleTimeout evicts flows with no traffic for this long. Zero means
	// the paper-style default of 5 minutes.
	IdleTimeout time.Duration
	// ClientNets orients flows when no SYN is seen: an address inside any
	// of these prefixes is the client. Empty falls back to
	// first-sender-is-client.
	ClientNets []netip.Prefix
	// OnRecord, when non-nil, receives each finished flow.
	OnRecord func(Record)
	// DisableAutoSweep turns off the amortized idle sweep inside Add. The
	// sharded engine sets it and calls FlushIdle explicitly, so every shard
	// expires flows at the same trace times as a single-threaded table.
	DisableAutoSweep bool
}

// Table reconstructs flows. Not safe for concurrent use.
type Table struct {
	cfg   Config
	flows map[Key]*flow
	stats TableStats
	sweep time.Duration
	// free recycles finished flow structs (with their prefix buffer
	// capacity), so a steady flow arrival/departure rate creates no
	// garbage. Records escape by value at emit time, never by reference.
	free []*flow
	// slab backs brand-new flow structs in blocks while the free list is
	// still filling.
	slab   []flow
	frozen []Record // records kept when OnRecord is nil
}

// TableStats counts table activity.
type TableStats struct {
	FlowsCreated uint64
	FlowsClosed  uint64
	FlowsExpired uint64
	Packets      uint64
}

// Add accumulates o into s (per-shard merge).
func (s *TableStats) Add(o TableStats) {
	s.FlowsCreated += o.FlowsCreated
	s.FlowsClosed += o.FlowsClosed
	s.FlowsExpired += o.FlowsExpired
	s.Packets += o.Packets
}

// NewTable creates a flow table.
func NewTable(cfg Config) *Table {
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	return &Table{cfg: cfg, flows: make(map[Key]*flow)}
}

// Stats returns the accumulated counters.
func (t *Table) Stats() TableStats { return t.stats }

// Active returns the number of in-flight flows.
func (t *Table) Active() int { return len(t.flows) }

func (t *Table) isClientAddr(a netip.Addr) bool {
	for _, p := range t.cfg.ClientNets {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// orient decides the flow key and direction for a decoded packet.
// It returns the canonical key and whether this packet travels c2s.
func (t *Table) orient(d *layers.Decoded) (Key, bool) {
	fwd := Key{
		ClientIP: d.SrcIP, ServerIP: d.DstIP,
		ClientPort: d.SrcPort, ServerPort: d.DstPort,
		Proto: d.Proto,
	}
	// An existing entry in either orientation wins.
	if _, ok := t.flows[fwd]; ok {
		return fwd, true
	}
	rev := fwd.Reverse()
	if _, ok := t.flows[rev]; ok {
		return rev, false
	}
	// New flow: a pure SYN marks the sender as client; otherwise prefer the
	// configured client networks; otherwise first sender is client.
	if d.HasTCP && d.TCPFlags.Has(layers.TCPSyn) && !d.TCPFlags.Has(layers.TCPAck) {
		return fwd, true
	}
	if len(t.cfg.ClientNets) > 0 {
		if t.isClientAddr(d.SrcIP) && !t.isClientAddr(d.DstIP) {
			return fwd, true
		}
		if t.isClientAddr(d.DstIP) && !t.isClientAddr(d.SrcIP) {
			return rev, false
		}
	}
	return fwd, true
}

// NewFlowFunc is invoked by Add when a flow is first seen; the paper's
// pre-flow tagging hook (label available before any payload byte).
type NewFlowFunc func(key Key, at time.Duration, sawSYN bool)

// Add processes one decoded packet at the given trace offset. onNew, when
// non-nil, fires for the first packet of every flow.
func (t *Table) Add(d *layers.Decoded, at time.Duration, onNew NewFlowFunc) {
	if !d.HasTCP && !d.HasUDP {
		return
	}
	key, c2s := t.orient(d)
	t.addOriented(key, c2s, d.HasTCP, d.TCPFlags, d.Payload, at, onNew)
}

// OrientedPacket is one pre-routed packet: the sharded dispatcher extracts
// the flow key and direction once at the reader stage, so shard tables
// skip orient's map probes entirely.
type OrientedPacket struct {
	// Key is the canonical client→server flow key. It MUST be exactly the
	// key orient would compute against this table's current entries; the
	// dispatcher guarantees that by mirroring the table's entry lifecycle.
	Key Key
	// C2S reports whether the packet travels client→server under Key.
	C2S bool
	// TCP reports a TCP segment (false: UDP datagram).
	TCP     bool
	Flags   layers.TCPFlags
	Payload []byte
}

// AddOriented processes one pre-routed packet. It is Add with the orient
// step hoisted to the caller; the two are behaviorally identical when the
// caller's key/direction mirror orient's decision.
func (t *Table) AddOriented(p *OrientedPacket, at time.Duration, onNew NewFlowFunc) {
	t.addOriented(p.Key, p.C2S, p.TCP, p.Flags, p.Payload, at, onNew)
}

// addOriented is the shared post-orientation half of Add.
func (t *Table) addOriented(key Key, c2s, hasTCP bool, flags layers.TCPFlags, payload []byte, at time.Duration, onNew NewFlowFunc) {
	t.stats.Packets++
	f, ok := t.flows[key]
	if !ok {
		f = t.newFlow()
		f.rec = Record{Key: key, Start: at, End: at}
		if hasTCP && flags.Has(layers.TCPSyn) && !flags.Has(layers.TCPAck) {
			f.rec.SawSYN = true
			f.rec.State = StateSynSent
		} else if hasTCP {
			f.rec.State = StateEstablished // midstream pickup
		}
		t.flows[key] = f
		t.stats.FlowsCreated++
		if onNew != nil {
			onNew(key, at, f.rec.SawSYN)
		}
	}
	f.rec.End = at
	if c2s {
		f.rec.PktsC2S++
		f.rec.BytesC2S += uint64(len(payload))
	} else {
		f.rec.PktsS2C++
		f.rec.BytesS2C += uint64(len(payload))
	}
	if len(payload) > 0 {
		t.capture(f, payload, c2s)
	}
	if hasTCP {
		t.advanceTCP(f, flags, key, at)
	}
	// Amortized idle sweep every IdleTimeout of trace time.
	if !t.cfg.DisableAutoSweep && at-t.sweep >= t.cfg.IdleTimeout {
		t.sweep = at
		t.FlushIdle(at)
	}
}

func (t *Table) capture(f *flow, payload []byte, c2s bool) {
	if c2s {
		if room := prefixCap - len(f.c2sPrefix); room > 0 {
			if len(payload) > room {
				payload = payload[:room]
			}
			f.c2sPrefix = append(f.c2sPrefix, payload...)
		}
	} else {
		if room := prefixCap - len(f.s2cPrefix); room > 0 {
			if len(payload) > room {
				payload = payload[:room]
			}
			f.s2cPrefix = append(f.s2cPrefix, payload...)
		}
	}
	t.classify(f)
}

func (t *Table) advanceTCP(f *flow, flags layers.TCPFlags, key Key, at time.Duration) {
	switch {
	case flags.Has(layers.TCPRst):
		f.rec.State = StateReset
		t.finish(key, f)
	case flags.Has(layers.TCPFin):
		if f.rec.State == StateClosing {
			f.rec.State = StateClosed
			t.finish(key, f)
		} else if f.rec.State != StateClosed {
			f.rec.State = StateClosing
		}
	case flags.Has(layers.TCPSyn) && flags.Has(layers.TCPAck):
		if f.rec.State == StateSynSent {
			f.rec.State = StateEstablished
		}
	}
}

// classify sets L7 once enough prefix bytes are available.
func (t *Table) classify(f *flow) {
	if !f.classified && len(f.c2sPrefix) > 0 {
		switch {
		case isHTTPRequest(f.c2sPrefix):
			f.rec.L7 = L7HTTP
			f.rec.HTTPHost = httpHost(f.c2sPrefix)
			f.classified = f.rec.HTTPHost != "" || len(f.c2sPrefix) >= prefixCap
		case tlswire.LooksLikeTLS(f.c2sPrefix):
			f.rec.L7 = L7TLS
			if info := tlswire.InspectStream(f.c2sPrefix); info.SNI != "" {
				f.rec.SNI = info.SNI
				f.classified = true
			}
		case isBitTorrent(f.c2sPrefix):
			f.rec.L7 = L7P2P
			f.classified = true
		case f.rec.Key.Proto == layers.IPProtocolUDP && (f.rec.Key.ServerPort == 53 || f.rec.Key.ClientPort == 53):
			f.rec.L7 = L7DNS
			f.classified = true
		default:
			// Leave unknown; more bytes may arrive.
			f.classified = len(f.c2sPrefix) >= 64
		}
	}
	if f.rec.L7 == L7TLS && !f.inspected && len(f.s2cPrefix) > 0 {
		info := tlswire.InspectStream(f.s2cPrefix)
		if len(info.CertificateNames) > 0 {
			f.rec.CertNames = info.CertificateNames
			f.inspected = true
		}
	}
}

func isHTTPRequest(p []byte) bool {
	for _, m := range [][]byte{[]byte("GET "), []byte("POST "), []byte("HEAD "), []byte("PUT "), []byte("DELETE "), []byte("OPTIONS "), []byte("CONNECT ")} {
		if bytes.HasPrefix(p, m) {
			return true
		}
	}
	return false
}

// hostPrefix is the header name matched by httpHost.
var hostPrefix = []byte("host:")

// httpHost extracts the Host header value from a request head prefix. It
// scans line by line without splitting, so a miss costs zero allocations;
// only a found host materializes a string.
func httpHost(p []byte) string {
	for len(p) > 0 {
		line := p
		if i := bytes.IndexByte(p, '\n'); i >= 0 {
			line = p[:i]
			p = p[i+1:]
		} else {
			p = nil
		}
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) > 5 && bytes.EqualFold(line[:5], hostPrefix) {
			return lowerString(bytes.TrimSpace(line[5:]))
		}
	}
	return ""
}

// lowerString builds a lowercase string from b with a single allocation
// (bytes.ToLower + string() would take two).
func lowerString(b []byte) string {
	var sb strings.Builder
	sb.Grow(len(b))
	for _, c := range b {
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		sb.WriteByte(c)
	}
	return sb.String()
}

// isBitTorrent recognizes the BT peer-wire handshake.
func isBitTorrent(p []byte) bool {
	return len(p) >= 20 && p[0] == 19 && bytes.HasPrefix(p[1:], []byte("BitTorrent protocol"))
}

// newFlow takes a flow struct from the free list, or carves one from the
// slab. The caller overwrites rec; prefix buffers keep their capacity.
func (t *Table) newFlow() *flow {
	if n := len(t.free); n > 0 {
		f := t.free[n-1]
		t.free = t.free[:n-1]
		return f
	}
	if len(t.slab) == 0 {
		t.slab = make([]flow, 64)
	}
	f := &t.slab[0]
	t.slab = t.slab[1:]
	return f
}

// recycle resets a finished flow and returns it to the free list. The
// record escaped by value in emit; prefix bytes are never referenced by it.
func (t *Table) recycle(f *flow) {
	f.rec = Record{}
	f.c2sPrefix = f.c2sPrefix[:0]
	f.s2cPrefix = f.s2cPrefix[:0]
	f.classified = false
	f.inspected = false
	t.free = append(t.free, f)
}

// finish emits a record and removes the flow.
func (t *Table) finish(key Key, f *flow) {
	t.classifyFinal(f)
	t.stats.FlowsClosed++
	delete(t.flows, key)
	t.emit(f.rec)
	t.recycle(f)
}

func (t *Table) classifyFinal(f *flow) {
	// One last classification pass with whatever prefix we have.
	f.classified = false
	saved := f.rec.L7
	t.classify(f)
	if f.rec.L7 == L7Unknown {
		f.rec.L7 = saved
	}
}

func (t *Table) emit(r Record) {
	if t.cfg.OnRecord != nil {
		t.cfg.OnRecord(r)
		return
	}
	t.frozen = append(t.frozen, r)
}

// FlushIdle closes every flow idle longer than the configured timeout as of
// now.
func (t *Table) FlushIdle(now time.Duration) {
	for key, f := range t.flows {
		if now-f.rec.End >= t.cfg.IdleTimeout {
			t.classifyFinal(f)
			t.stats.FlowsExpired++
			delete(t.flows, key)
			t.emit(f.rec)
			t.recycle(f)
		}
	}
}

// FlushAll closes every remaining flow (end of trace).
func (t *Table) FlushAll() {
	for key, f := range t.flows {
		t.classifyFinal(f)
		t.stats.FlowsClosed++
		delete(t.flows, key)
		t.emit(f.rec)
		t.recycle(f)
	}
}

// Records returns flows finished while no OnRecord callback was set.
func (t *Table) Records() []Record { return t.frozen }
