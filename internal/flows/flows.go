// Package flows reconstructs transport-layer flows from decoded packets:
// the paper's "Flow Sniffer" (§3.1). Packets are aggregated on the 5-tuple
// (clientIP, serverIP, sPort, dPort, protocol), oriented so the initiator is
// the client, run through a compact TCP state machine, and classified at
// layer 7 (HTTP, TLS, P2P) from the first payload bytes — the same signals
// Tstat uses for the paper's ground truth.
//
// The table is a swiss-style open-addressing map (see internal/swiss): one
// control byte per slot probed in 8-slot groups, over a dense uint32 slot
// array indexing a flow slab. Buckets hold no pointers, so the GC never
// scans them; flow structs are recycled in place. Live flows are threaded
// through an intrusive least-recently-touched list, so idle expiry visits
// only the flows it expires (plus one) instead of scanning the whole table,
// and every flush emits records in a deterministic order.
package flows

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"net/netip"
	"strings"
	"time"

	"repro/internal/layers"
	"repro/internal/swiss"
	"repro/internal/tlswire"
)

// Key identifies a flow, oriented client → server.
type Key struct {
	ClientIP   netip.Addr
	ServerIP   netip.Addr
	ClientPort uint16
	ServerPort uint16
	Proto      layers.IPProtocol
}

// String renders the key in a tcpdump-like form.
func (k Key) String() string {
	return fmt.Sprintf("%s %s:%d > %s:%d", k.Proto, k.ClientIP, k.ClientPort, k.ServerIP, k.ServerPort)
}

// Reverse returns the key with endpoints swapped.
func (k Key) Reverse() Key {
	return Key{
		ClientIP: k.ServerIP, ServerIP: k.ClientIP,
		ClientPort: k.ServerPort, ServerPort: k.ClientPort,
		Proto: k.Proto,
	}
}

// hashKey mixes a key for table placement. The two (address, port)
// endpoint hashes combine by addition, so a key and its Reverse hash
// identically: one probe resolves a packet in either direction (the probe
// compares candidates against both orientations), where an
// orientation-sensitive hash would cost a full second probe for every
// server→client packet.
func hashKey(seed uint64, k Key) uint64 {
	a := swiss.HashU64(swiss.HashAddr(seed, k.ClientIP), uint64(k.ClientPort))
	b := swiss.HashU64(swiss.HashAddr(seed, k.ServerIP), uint64(k.ServerPort))
	return swiss.HashU64(a+b, uint64(k.Proto))
}

// L7Proto is the coarse application classification the paper reports hit
// ratios for (Table 2).
type L7Proto uint8

// Classification outcomes.
const (
	L7Unknown L7Proto = iota
	L7HTTP
	L7TLS
	L7P2P
	L7DNS
)

// String names the classification.
func (p L7Proto) String() string {
	switch p {
	case L7HTTP:
		return "HTTP"
	case L7TLS:
		return "TLS"
	case L7P2P:
		return "P2P"
	case L7DNS:
		return "DNS"
	default:
		return "OTHER"
	}
}

// TCPState is the connection lifecycle state.
type TCPState uint8

// TCP states tracked by the table.
const (
	StateNew TCPState = iota
	StateSynSent
	StateEstablished
	StateClosing
	StateClosed
	StateReset
)

// Record is one finished (or flushed) flow, the unit stored in the labeled
// flows database.
type Record struct {
	Key        Key
	Start, End time.Duration
	// SawSYN reports whether the flow was observed from its first segment,
	// which is when pre-flow tagging can act on it.
	SawSYN bool
	State  TCPState

	PktsC2S, PktsS2C   uint64
	BytesC2S, BytesS2C uint64

	L7 L7Proto
	// HTTPHost is the Host header of the first request, when L7 == HTTP.
	HTTPHost string
	// SNI is the TLS server_name, when present.
	SNI string
	// CertNames are subject names from the server Certificate message,
	// leaf first; empty when no certificate was observed.
	CertNames []string
}

// Handle identifies a live flow's slot in the table slab. It is stable for
// the flow's lifetime and delivered to both NewFlowFunc and OnRecord, so a
// caller can keep per-flow sidecar state in a dense slice instead of a
// keyed map. Handles are recycled after the flow's record is emitted.
type Handle uint32

// noIdx is the nil slab index / list link.
const noIdx = ^uint32(0)

// flow is the mutable in-table state. Slots are recycled through the
// free list after emit, so references across statements use uint32 slab
// indices, never *flow.
//
//dnhunter:slab
type flow struct {
	rec  Record
	hash uint64 // cached hashKey(seed, rec.Key)
	// lastSeen is the table clock (monotone max of packet times) at the
	// flow's last packet. Expiry compares against it rather than rec.End,
	// so the recency list stays exactly ordered — and the early-stop sweep
	// exact — even when capture timestamps jitter backwards.
	lastSeen time.Duration
	// prev/next thread the intrusive recency list (least recently touched
	// at the head); noIdx terminates.
	prev, next uint32
	c2sPrefix  []byte
	s2cPrefix  []byte
	classified bool
	inspected  bool
}

// prefixCap bounds the per-direction payload prefix retained for
// classification; enough for a ClientHello or an HTTP request head plus a
// ServerHello+Certificate flight.
const prefixCap = 4096

// Config tunes the table.
type Config struct {
	// IdleTimeout evicts flows with no traffic for this long. Zero means
	// the paper-style default of 5 minutes.
	IdleTimeout time.Duration
	// ClientNets orients flows when no SYN is seen: an address inside any
	// of these prefixes is the client. Empty falls back to
	// first-sender-is-client.
	ClientNets []netip.Prefix
	// OnRecord, when non-nil, receives each finished flow along with its
	// (about-to-be-recycled) table handle.
	OnRecord func(Record, Handle)
	// DisableAutoSweep turns off the amortized idle sweep inside Add. The
	// sharded engine sets it and expires flows via explicit ExpireFlow
	// calls driven by the dispatcher's Tracker, so every shard expires
	// flows at the same trace times as a single-threaded table.
	DisableAutoSweep bool
	// Seed fixes the swiss-index hash seed; 0 (the default) draws a random
	// one. The sharded engine shares one nonzero seed between its Tracker
	// and every shard table, so the dispatcher's per-packet key hash can
	// ship with the entry (OrientedPacket.Hash) instead of being
	// recomputed on the shard.
	Seed uint64
}

// keyIndex is the bucket array of the swiss table: one control word per
// 8-slot group plus the dense uint32 slot array. Keys live in the flow
// slab (Record.Key), so this structure is entirely pointer-free.
type keyIndex struct {
	ctrl   []uint64
	slots  []uint32
	gmask  uint64 // len(ctrl) - 1
	used   int    // full slots
	tombs  int    // deleted slots
	growAt int    // rehash when used+tombs reaches this (7/8 load)
}

func (ix *keyIndex) init(groups int) {
	//dnhunter:alloc-ok rehash-time growth, amortized O(1) per insert
	ix.ctrl = make([]uint64, groups)
	for i := range ix.ctrl {
		ix.ctrl[i] = swiss.EmptyGroup
	}
	//dnhunter:alloc-ok rehash-time growth, amortized O(1) per insert
	ix.slots = make([]uint32, groups*swiss.GroupSize)
	ix.gmask = uint64(groups - 1)
	ix.used, ix.tombs = 0, 0
	ix.growAt = groups * swiss.GroupSize * 7 / 8
}

// insert places slot under h. The caller guarantees the key is absent and
// capacity is available. The first free lane along the probe sequence is
// correct: every earlier group was full, so lookups cannot stop short of it.
func (ix *keyIndex) insert(h uint64, slot uint32) {
	g := swiss.H1(h) & ix.gmask
	for step := uint64(1); ; step++ {
		w := ix.ctrl[g]
		if m := swiss.MatchFree(w); m != 0 {
			lane := swiss.FirstLane(m)
			if swiss.CtrlAt(w, lane) == swiss.CtrlDeleted {
				ix.tombs--
			}
			ix.ctrl[g] = swiss.WithCtrl(w, lane, swiss.H2(h))
			ix.slots[g*swiss.GroupSize+uint64(lane)] = slot
			ix.used++
			return
		}
		g = (g + step) & ix.gmask
	}
}

// slabChunkBits sizes the flow-slab chunks: 256 flows (~48 KB) per chunk.
// Chunks are allocated once and never copied, so slab growth neither moves
// flow structs nor pays write barriers over their pointer fields the way a
// doubling []flow append would.
const (
	slabChunkBits = 8
	slabChunkLen  = 1 << slabChunkBits
	slabChunkMask = slabChunkLen - 1
)

// Table reconstructs flows. Not safe for concurrent use.
type Table struct {
	cfg  Config
	idx  keyIndex
	seed uint64
	// slab backs every flow struct in fixed-size chunks; the index and the
	// recency list address it by uint32 slot, so growth never invalidates
	// references.
	slab    [][]flow
	slabLen uint32
	// free recycles finished flow slots (with their prefix buffer
	// capacity), so a steady flow arrival/departure rate creates no
	// garbage. Records escape by value at emit time, never by reference.
	free       []uint32
	head, tail uint32 // recency list: least recently touched at head
	stats      TableStats
	sweep      time.Duration
	// clock is the maximum packet time observed: flows are stamped with it
	// (flow.lastSeen) on every touch, keeping the recency list ordered by
	// a monotone quantity even on captures with timestamp jitter.
	clock  time.Duration
	frozen []Record // records kept when OnRecord is nil
	// sweepVisited counts the slots the last FlushIdle examined; tests use
	// it to pin the O(expired) sweep bound.
	sweepVisited int
}

// at returns the flow at slab slot i.
func (t *Table) at(i uint32) *flow {
	//dnhunter:slab-ok the sanctioned accessor; callers must not retain the pointer past slot recycling
	return &t.slab[i>>slabChunkBits][i&slabChunkMask]
}

// TableStats counts table activity.
type TableStats struct {
	FlowsCreated uint64
	FlowsClosed  uint64
	FlowsExpired uint64
	Packets      uint64
}

// Add accumulates o into s (per-shard merge).
func (s *TableStats) Add(o TableStats) {
	s.FlowsCreated += o.FlowsCreated
	s.FlowsClosed += o.FlowsClosed
	s.FlowsExpired += o.FlowsExpired
	s.Packets += o.Packets
}

// NewTable creates a flow table.
func NewTable(cfg Config) *Table {
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	seed := cfg.Seed
	for seed == 0 {
		seed = rand.Uint64()
	}
	t := &Table{cfg: cfg, seed: seed, head: noIdx, tail: noIdx}
	t.idx.init(16)
	return t
}

// Stats returns the accumulated counters.
func (t *Table) Stats() TableStats { return t.stats }

// Active returns the number of in-flight flows.
func (t *Table) Active() int { return t.idx.used }

// find returns the slab slot of key, or noIdx. Only the canonical stored
// orientation matches; use findEither for unoriented packets.
func (t *Table) find(h uint64, key Key) uint32 {
	ix := &t.idx
	h2 := swiss.H2(h)
	g := swiss.H1(h) & ix.gmask
	for step := uint64(1); ; step++ {
		w := ix.ctrl[g]
		for m := swiss.MatchH2(w, h2); m != 0; m &= m - 1 {
			s := ix.slots[g*swiss.GroupSize+uint64(swiss.FirstLane(m))]
			if t.at(s).rec.Key == key {
				return s
			}
		}
		if swiss.MatchEmpty(w) != 0 {
			return noIdx
		}
		g = (g + step) & ix.gmask
	}
}

// findEither resolves a packet's forward key against the table in one
// probe: the hash is orientation-symmetric, so candidates are compared
// against both the key and its reverse. It returns the slot and whether
// the packet travels c2s under the stored orientation ((noIdx, true) on a
// miss).
func (t *Table) findEither(h uint64, key, rev Key) (uint32, bool) {
	ix := &t.idx
	h2 := swiss.H2(h)
	g := swiss.H1(h) & ix.gmask
	for step := uint64(1); ; step++ {
		w := ix.ctrl[g]
		for m := swiss.MatchH2(w, h2); m != 0; m &= m - 1 {
			s := ix.slots[g*swiss.GroupSize+uint64(swiss.FirstLane(m))]
			if k := &t.at(s).rec.Key; *k == key {
				return s, true
			} else if *k == rev {
				return s, false
			}
		}
		if swiss.MatchEmpty(w) != 0 {
			return noIdx, true
		}
		g = (g + step) & ix.gmask
	}
}

// removeKey erases key (hashed h) from the index. When the key's group
// still has an empty lane, no probe sequence can rely on stepping past the
// erased slot, so it reverts to empty instead of leaving a tombstone.
func (t *Table) removeKey(h uint64, key Key) {
	ix := &t.idx
	h2 := swiss.H2(h)
	g := swiss.H1(h) & ix.gmask
	for step := uint64(1); ; step++ {
		w := ix.ctrl[g]
		for m := swiss.MatchH2(w, h2); m != 0; m &= m - 1 {
			lane := swiss.FirstLane(m)
			if s := ix.slots[g*swiss.GroupSize+uint64(lane)]; t.at(s).rec.Key == key {
				if swiss.MatchEmpty(w) != 0 {
					ix.ctrl[g] = swiss.WithCtrl(w, lane, swiss.CtrlEmpty)
				} else {
					ix.ctrl[g] = swiss.WithCtrl(w, lane, swiss.CtrlDeleted)
					ix.tombs++
				}
				ix.used--
				return
			}
		}
		if swiss.MatchEmpty(w) != 0 {
			return // absent; callers only remove present keys
		}
		g = (g + step) & ix.gmask
	}
}

// rehash doubles the group count when the table is genuinely full, or
// rebuilds at the same size to purge tombstones after heavy churn. Hashes
// are cached per flow, so no key is re-hashed.
func (t *Table) rehash() {
	ix := &t.idx
	groups := len(ix.ctrl)
	if ix.used >= ix.growAt/2 {
		groups *= 2
	}
	oldCtrl, oldSlots := ix.ctrl, ix.slots
	ix.init(groups)
	for g, w := range oldCtrl {
		for lane := 0; lane < swiss.GroupSize; lane++ {
			if swiss.IsFull(swiss.CtrlAt(w, lane)) {
				s := oldSlots[g*swiss.GroupSize+lane]
				ix.insert(t.at(s).hash, s)
			}
		}
	}
}

// insertKey adds key (hashed h) → slot, growing first when needed.
func (t *Table) insertKey(h uint64, slot uint32) {
	if t.idx.used+t.idx.tombs >= t.idx.growAt {
		t.rehash()
	}
	t.idx.insert(h, slot)
}

// --- intrusive recency list ---

// listPushBack appends slot i as the most recently touched flow.
func (t *Table) listPushBack(i uint32) {
	f := t.at(i)
	f.prev, f.next = t.tail, noIdx
	if t.tail != noIdx {
		t.at(t.tail).next = i
	} else {
		t.head = i
	}
	t.tail = i
}

// listRemove unlinks slot i.
func (t *Table) listRemove(i uint32) {
	f := t.at(i)
	if f.prev != noIdx {
		t.at(f.prev).next = f.next
	} else {
		t.head = f.next
	}
	if f.next != noIdx {
		t.at(f.next).prev = f.prev
	} else {
		t.tail = f.prev
	}
	f.prev, f.next = noIdx, noIdx
}

// touch moves slot i to the tail (most recently active).
func (t *Table) touch(i uint32) {
	if t.tail == i {
		return
	}
	t.listRemove(i)
	t.listPushBack(i)
}

func (t *Table) isClientAddr(a netip.Addr) bool { return containsAddr(t.cfg.ClientNets, a) }

func containsAddr(nets []netip.Prefix, a netip.Addr) bool {
	for _, p := range nets {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// NewFlowFunc is invoked by Add when a flow is first seen; the paper's
// pre-flow tagging hook (label available before any payload byte). The
// handle stays valid until OnRecord delivers the flow's record.
type NewFlowFunc func(key Key, at time.Duration, sawSYN bool, h Handle)

// Add processes one decoded packet at the given trace offset. onNew, when
// non-nil, fires for the first packet of every flow.
//
// Orientation is fused with the table probe: the hash is
// orientation-symmetric, so one probe resolves the packet whichever
// direction it travels (the former design probed once in orient and again
// in the add path). For a new flow a pure SYN marks the sender as the
// client, then the configured client networks, then first-sender.
//
//dnhunter:hotpath
func (t *Table) Add(d *layers.Decoded, at time.Duration, onNew NewFlowFunc) {
	if !d.HasTCP && !d.HasUDP {
		return
	}
	key := Key{
		ClientIP: d.SrcIP, ServerIP: d.DstIP,
		ClientPort: d.SrcPort, ServerPort: d.DstPort,
		Proto: d.Proto,
	}
	h := hashKey(t.seed, key)
	slot, c2s := t.findEither(h, key, key.Reverse())
	if slot == noIdx &&
		!(d.HasTCP && d.TCPFlags.Has(layers.TCPSyn) && !d.TCPFlags.Has(layers.TCPAck)) &&
		len(t.cfg.ClientNets) > 0 &&
		t.isClientAddr(d.DstIP) && !t.isClientAddr(d.SrcIP) {
		key, c2s = key.Reverse(), false
	}
	t.addOriented(key, h, slot, c2s, d.HasTCP, d.TCPFlags, d.Payload, at, onNew)
}

// OrientedPacket is one pre-routed packet: the sharded dispatcher extracts
// the flow key and direction once at the reader stage (Tracker.Route), so
// shard tables skip the reverse-key probe and orientation rules entirely.
type OrientedPacket struct {
	// Key is the canonical client→server flow key. It MUST be exactly the
	// key Add would compute against this table's current entries; the
	// dispatcher guarantees that by mirroring the table's entry lifecycle.
	Key Key
	// C2S reports whether the packet travels client→server under Key.
	C2S bool
	// Hash, when nonzero, is hashKey(seed, Key) under the seed this table
	// was built with (Config.Seed, shared with the dispatcher's Tracker);
	// zero makes the table compute it. A nonzero Hash under a mismatched
	// seed corrupts the index — the engine guarantees the shared seed.
	Hash uint64
	// TCP reports a TCP segment (false: UDP datagram).
	TCP     bool
	Flags   layers.TCPFlags
	Payload []byte
}

// AddOriented processes one pre-routed packet. It is Add with the
// orientation hoisted to the caller; the two are behaviorally identical
// when the caller's key/direction mirror Add's decision.
//
//dnhunter:hotpath
func (t *Table) AddOriented(p *OrientedPacket, at time.Duration, onNew NewFlowFunc) {
	h := p.Hash
	if h == 0 {
		h = hashKey(t.seed, p.Key)
	}
	t.addOriented(p.Key, h, t.find(h, p.Key), p.C2S, p.TCP, p.Flags, p.Payload, at, onNew)
}

// addOriented is the shared post-orientation half of Add. slot is the
// flow's slab slot when it already exists, else noIdx.
func (t *Table) addOriented(key Key, h uint64, slot uint32, c2s, hasTCP bool, flags layers.TCPFlags, payload []byte, at time.Duration, onNew NewFlowFunc) {
	t.stats.Packets++
	if at > t.clock {
		t.clock = at
	}
	if slot == noIdx {
		slot = t.newFlow()
		f := t.at(slot)
		f.rec = Record{Key: key, Start: at, End: at}
		f.hash = h
		if hasTCP && flags.Has(layers.TCPSyn) && !flags.Has(layers.TCPAck) {
			f.rec.SawSYN = true
			f.rec.State = StateSynSent
		} else if hasTCP {
			f.rec.State = StateEstablished // midstream pickup
		}
		t.insertKey(h, slot)
		t.listPushBack(slot)
		t.stats.FlowsCreated++
		if onNew != nil {
			onNew(key, at, f.rec.SawSYN, Handle(slot))
		}
	} else {
		t.touch(slot)
	}
	f := t.at(slot)
	f.rec.End = at
	f.lastSeen = t.clock
	if c2s {
		f.rec.PktsC2S++
		f.rec.BytesC2S += uint64(len(payload))
	} else {
		f.rec.PktsS2C++
		f.rec.BytesS2C += uint64(len(payload))
	}
	if len(payload) > 0 {
		t.capture(f, payload, c2s)
	}
	if hasTCP {
		t.advanceTCP(f, flags, slot)
	}
	// Amortized idle sweep every IdleTimeout of trace time.
	if !t.cfg.DisableAutoSweep && at-t.sweep >= t.cfg.IdleTimeout {
		t.sweep = at
		t.FlushIdle(at)
	}
}

func (t *Table) capture(f *flow, payload []byte, c2s bool) {
	if c2s {
		if room := prefixCap - len(f.c2sPrefix); room > 0 {
			if len(payload) > room {
				payload = payload[:room]
			}
			f.c2sPrefix = append(f.c2sPrefix, payload...)
		}
	} else {
		if room := prefixCap - len(f.s2cPrefix); room > 0 {
			if len(payload) > room {
				payload = payload[:room]
			}
			f.s2cPrefix = append(f.s2cPrefix, payload...)
		}
	}
	t.classify(f)
}

func (t *Table) advanceTCP(f *flow, flags layers.TCPFlags, slot uint32) {
	switch {
	case flags.Has(layers.TCPRst):
		f.rec.State = StateReset
		t.finish(slot)
	case flags.Has(layers.TCPFin):
		if f.rec.State == StateClosing {
			f.rec.State = StateClosed
			t.finish(slot)
		} else if f.rec.State != StateClosed {
			f.rec.State = StateClosing
		}
	case flags.Has(layers.TCPSyn) && flags.Has(layers.TCPAck):
		if f.rec.State == StateSynSent {
			f.rec.State = StateEstablished
		}
	}
}

// classify sets L7 once enough prefix bytes are available.
func (t *Table) classify(f *flow) {
	if !f.classified && len(f.c2sPrefix) > 0 {
		switch {
		case isHTTPRequest(f.c2sPrefix):
			f.rec.L7 = L7HTTP
			f.rec.HTTPHost = httpHost(f.c2sPrefix)
			f.classified = f.rec.HTTPHost != "" || len(f.c2sPrefix) >= prefixCap
		case tlswire.LooksLikeTLS(f.c2sPrefix):
			f.rec.L7 = L7TLS
			if info := tlswire.InspectStream(f.c2sPrefix); info.SNI != "" {
				f.rec.SNI = info.SNI
				f.classified = true
			}
		case isBitTorrent(f.c2sPrefix):
			f.rec.L7 = L7P2P
			f.classified = true
		case f.rec.Key.Proto == layers.IPProtocolUDP && (f.rec.Key.ServerPort == 53 || f.rec.Key.ClientPort == 53):
			f.rec.L7 = L7DNS
			f.classified = true
		default:
			// Leave unknown; more bytes may arrive.
			f.classified = len(f.c2sPrefix) >= 64
		}
	}
	if f.rec.L7 == L7TLS && !f.inspected && len(f.s2cPrefix) > 0 {
		info := tlswire.InspectStream(f.s2cPrefix)
		if len(info.CertificateNames) > 0 {
			f.rec.CertNames = info.CertificateNames
			f.inspected = true
		}
	}
}

// httpMethods are the request-line prefixes isHTTPRequest matches,
// hoisted so the per-packet probe does not rebuild the table.
var httpMethods = [][]byte{
	[]byte("GET "), []byte("POST "), []byte("HEAD "), []byte("PUT "),
	[]byte("DELETE "), []byte("OPTIONS "), []byte("CONNECT "),
}

func isHTTPRequest(p []byte) bool {
	for _, m := range httpMethods {
		if bytes.HasPrefix(p, m) {
			return true
		}
	}
	return false
}

// hostPrefix is the header name matched by httpHost.
var hostPrefix = []byte("host:")

// httpHost extracts the Host header value from a request head prefix. It
// scans line by line without splitting, so a miss costs zero allocations;
// only a found host materializes a string.
func httpHost(p []byte) string {
	for len(p) > 0 {
		line := p
		if i := bytes.IndexByte(p, '\n'); i >= 0 {
			line = p[:i]
			p = p[i+1:]
		} else {
			p = nil
		}
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) > 5 && bytes.EqualFold(line[:5], hostPrefix) {
			return lowerString(bytes.TrimSpace(line[5:]))
		}
	}
	return ""
}

// lowerString builds a lowercase string from b with a single allocation
// (bytes.ToLower + string() would take two).
func lowerString(b []byte) string {
	var sb strings.Builder
	sb.Grow(len(b))
	for _, c := range b {
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		sb.WriteByte(c)
	}
	return sb.String()
}

// btProto is the BT handshake protocol string, hoisted off the probe.
var btProto = []byte("BitTorrent protocol")

// isBitTorrent recognizes the BT peer-wire handshake.
func isBitTorrent(p []byte) bool {
	return len(p) >= 20 && p[0] == 19 && bytes.HasPrefix(p[1:], btProto)
}

// newFlow takes a flow slot from the free list, or carves one from the
// chunked slab. The caller overwrites rec; prefix buffers keep their
// capacity.
func (t *Table) newFlow() uint32 {
	if n := len(t.free); n > 0 {
		i := t.free[n-1]
		t.free = t.free[:n-1]
		return i
	}
	i := t.slabLen
	if i>>slabChunkBits == uint32(len(t.slab)) {
		//dnhunter:alloc-ok fixed-size chunk carve, amortized over slabChunkLen flows
		t.slab = append(t.slab, make([]flow, slabChunkLen))
	}
	t.slabLen++
	return i
}

// recycle resets a finished flow slot and returns it to the free list. The
// record escaped by value in emit; prefix bytes are never referenced by it.
func (t *Table) recycle(i uint32) {
	f := t.at(i)
	f.rec = Record{}
	f.hash = 0
	f.lastSeen = 0
	f.c2sPrefix = f.c2sPrefix[:0]
	f.s2cPrefix = f.s2cPrefix[:0]
	f.classified = false
	f.inspected = false
	t.free = append(t.free, i)
}

// finish emits a record and removes the flow (close transitions).
func (t *Table) finish(i uint32) {
	f := t.at(i)
	t.classifyFinal(f)
	t.stats.FlowsClosed++
	t.removeKey(f.hash, f.rec.Key)
	t.listRemove(i)
	t.emit(f.rec, Handle(i))
	t.recycle(i)
}

// expire emits a record and removes the flow (idle expiry).
func (t *Table) expire(i uint32) {
	f := t.at(i)
	t.classifyFinal(f)
	t.stats.FlowsExpired++
	t.removeKey(f.hash, f.rec.Key)
	t.listRemove(i)
	t.emit(f.rec, Handle(i))
	t.recycle(i)
}

func (t *Table) classifyFinal(f *flow) {
	// One last classification pass with whatever prefix we have.
	f.classified = false
	saved := f.rec.L7
	t.classify(f)
	if f.rec.L7 == L7Unknown {
		f.rec.L7 = saved
	}
}

func (t *Table) emit(r Record, h Handle) {
	if t.cfg.OnRecord != nil {
		t.cfg.OnRecord(r, h)
		return
	}
	t.frozen = append(t.frozen, r)
}

// FlushIdle closes every flow idle longer than the configured timeout as
// of now. The recency list is ordered by flow.lastSeen — a monotone table
// clock, not the raw (possibly jittering) packet timestamp — so the sweep
// walks from the least recently touched flow and stops at the first
// active one: O(expired), not O(active), exact for any input ordering,
// and the emit order (idle-first) is deterministic for a given packet
// sequence. With monotone trace time lastSeen equals rec.End and the
// expired set matches the historical full scan exactly.
//
//dnhunter:hotpath
func (t *Table) FlushIdle(now time.Duration) {
	visited := 0
	for t.head != noIdx {
		visited++
		i := t.head
		if now-t.at(i).lastSeen < t.cfg.IdleTimeout {
			break
		}
		t.expire(i)
	}
	t.sweepVisited = visited
}

// ExpireFlow expires one specific flow, regardless of its idle time; a
// no-op when the key is not present. hash, when nonzero, must be the
// key's hash under this table's seed (the dispatcher ships the tracker's
// cached one); zero makes the table compute it. The sharded engine's
// dispatcher decides the expired set centrally (Tracker.ExpireIdle, which
// applies FlushIdle's exact rule to the global packet order) and delivers
// one ExpireFlow per victim in-band, so shard tables expire exactly the
// flows a single-threaded table would, in the same relative order.
//
//dnhunter:hotpath
func (t *Table) ExpireFlow(key Key, hash uint64) {
	if hash == 0 {
		hash = hashKey(t.seed, key)
	}
	if i := t.find(hash, key); i != noIdx {
		t.expire(i)
	}
}

// FlushAll closes every remaining flow (end of trace), emitting in recency
// order (least recently touched first) — deterministic for a given packet
// sequence, where map iteration once made the order vary run to run.
func (t *Table) FlushAll() {
	for t.head != noIdx {
		t.finish(t.head)
	}
}

// Records returns flows finished while no OnRecord callback was set.
func (t *Table) Records() []Record { return t.frozen }
