package flows

import (
	"math/rand/v2"
	"net/netip"
	"time"

	"repro/internal/layers"
	"repro/internal/swiss"
)

// Tracker mirrors a fleet of shard Tables from the dispatcher's seat: it
// applies the Table's exact orientation rules and entry lifecycle (create,
// RST/second-FIN teardown, idle expiry) to the global packet order, and
// remembers which shard owns each live flow. Because it uses the same
// swiss index and the same intrusive recency list as the Table, its idle
// sweep visits flows in the same order and applies the same early-stop
// rule, so the expired set it computes is exactly the set a
// single-threaded Table would expire at the same trace time — the
// foundation of the engine's exact shard-equivalence.
//
// Not safe for concurrent use; the single dispatcher goroutine owns it.
type Tracker struct {
	idx  keyIndex
	seed uint64
	// clock mirrors Table.clock: the monotone max of packet times, stamped
	// onto flows as lastSeen so ExpireIdle's early stop stays exact under
	// timestamp jitter.
	clock time.Duration
	// slab backs tracked flows in fixed-size chunks (see Table.slab).
	slab    [][]trackedFlow
	slabLen uint32
	free    []uint32
	// head/tail thread the recency list, least recently touched first.
	head, tail uint32
	clientNets []netip.Prefix
	idle       time.Duration
}

// trackedFlow is one live-flow mirror: its key and owning shard, the
// table clock at its last packet, and whether one FIN has been seen.
type trackedFlow struct {
	key        Key
	hash       uint64
	lastSeen   time.Duration
	prev, next uint32
	shard      uint32
	closing    bool
}

// NewTracker creates a flow tracker applying the given orientation
// networks and idle timeout (zero means the Table's 5-minute default, so
// the two stay in lockstep). seed fixes the hash seed (0 draws a random
// one); the engine passes the same nonzero seed to the shard tables so
// Route's hash can ship with each entry.
func NewTracker(clientNets []netip.Prefix, idle time.Duration, seed uint64) *Tracker {
	if idle <= 0 {
		idle = 5 * time.Minute
	}
	for seed == 0 {
		seed = rand.Uint64()
	}
	tk := &Tracker{
		seed:       seed,
		head:       noIdx,
		tail:       noIdx,
		clientNets: clientNets,
		idle:       idle,
	}
	tk.idx.init(16)
	return tk
}

// at returns the tracked flow at slab slot i.
func (tk *Tracker) at(i uint32) *trackedFlow { return &tk.slab[i>>slabChunkBits][i&slabChunkMask] }

// Active returns the number of live flows tracked.
func (tk *Tracker) Active() int { return tk.idx.used }

// IdleTimeout returns the effective idle timeout.
func (tk *Tracker) IdleTimeout() time.Duration { return tk.idle }

// AdvanceClock raises the tracker's monotone packet clock to c (a no-op if
// c is not ahead). A striped deployment calls it before Route with the
// global flow clock, so a partition that has not itself seen the newest
// packets still stamps lastSeen exactly as a single global tracker would —
// Route's own monotone-max then never regresses it.
func (tk *Tracker) AdvanceClock(c time.Duration) {
	if c > tk.clock {
		tk.clock = c
	}
}

// findEither resolves a packet's forward key in one probe over the
// orientation-symmetric hash, exactly like Table.findEither.
func (tk *Tracker) findEither(h uint64, key, rev Key) (uint32, bool) {
	ix := &tk.idx
	h2 := swiss.H2(h)
	g := swiss.H1(h) & ix.gmask
	for step := uint64(1); ; step++ {
		w := ix.ctrl[g]
		for m := swiss.MatchH2(w, h2); m != 0; m &= m - 1 {
			s := ix.slots[g*swiss.GroupSize+uint64(swiss.FirstLane(m))]
			if k := &tk.at(s).key; *k == key {
				return s, true
			} else if *k == rev {
				return s, false
			}
		}
		if swiss.MatchEmpty(w) != 0 {
			return noIdx, true
		}
		g = (g + step) & ix.gmask
	}
}

func (tk *Tracker) removeKey(h uint64, key Key) {
	ix := &tk.idx
	h2 := swiss.H2(h)
	g := swiss.H1(h) & ix.gmask
	for step := uint64(1); ; step++ {
		w := ix.ctrl[g]
		for m := swiss.MatchH2(w, h2); m != 0; m &= m - 1 {
			lane := swiss.FirstLane(m)
			if s := ix.slots[g*swiss.GroupSize+uint64(lane)]; tk.at(s).key == key {
				if swiss.MatchEmpty(w) != 0 {
					ix.ctrl[g] = swiss.WithCtrl(w, lane, swiss.CtrlEmpty)
				} else {
					ix.ctrl[g] = swiss.WithCtrl(w, lane, swiss.CtrlDeleted)
					ix.tombs++
				}
				ix.used--
				return
			}
		}
		if swiss.MatchEmpty(w) != 0 {
			return
		}
		g = (g + step) & ix.gmask
	}
}

func (tk *Tracker) rehash() {
	ix := &tk.idx
	groups := len(ix.ctrl)
	if ix.used >= ix.growAt/2 {
		groups *= 2
	}
	oldCtrl, oldSlots := ix.ctrl, ix.slots
	ix.init(groups)
	for g, w := range oldCtrl {
		for lane := 0; lane < swiss.GroupSize; lane++ {
			if swiss.IsFull(swiss.CtrlAt(w, lane)) {
				s := oldSlots[g*swiss.GroupSize+lane]
				ix.insert(tk.at(s).hash, s)
			}
		}
	}
}

func (tk *Tracker) insertKey(h uint64, slot uint32) {
	if tk.idx.used+tk.idx.tombs >= tk.idx.growAt {
		tk.rehash()
	}
	tk.idx.insert(h, slot)
}

func (tk *Tracker) listPushBack(i uint32) {
	f := tk.at(i)
	f.prev, f.next = tk.tail, noIdx
	if tk.tail != noIdx {
		tk.at(tk.tail).next = i
	} else {
		tk.head = i
	}
	tk.tail = i
}

func (tk *Tracker) listRemove(i uint32) {
	f := tk.at(i)
	if f.prev != noIdx {
		tk.at(f.prev).next = f.next
	} else {
		tk.head = f.next
	}
	if f.next != noIdx {
		tk.at(f.next).prev = f.prev
	} else {
		tk.tail = f.prev
	}
	f.prev, f.next = noIdx, noIdx
}

func (tk *Tracker) touch(i uint32) {
	if tk.tail == i {
		return
	}
	tk.listRemove(i)
	tk.listPushBack(i)
}

func (tk *Tracker) newFlow() uint32 {
	if n := len(tk.free); n > 0 {
		i := tk.free[n-1]
		tk.free = tk.free[:n-1]
		return i
	}
	i := tk.slabLen
	if i>>slabChunkBits == uint32(len(tk.slab)) {
		tk.slab = append(tk.slab, make([]trackedFlow, slabChunkLen))
	}
	tk.slabLen++
	return i
}

// drop removes slot i from the index and the list and recycles it.
func (tk *Tracker) drop(i uint32) {
	f := tk.at(i)
	tk.removeKey(f.hash, f.key)
	tk.listRemove(i)
	f.key, f.hash, f.closing = Key{}, 0, false
	tk.free = append(tk.free, i)
}

// Route mirrors Table.Add's orientation and lifecycle for one decoded
// transport packet: it returns the canonical flow key, the packet's
// direction under it, the key's hash (valid for tables sharing the
// tracker's seed — ship it via OrientedPacket.Hash), and the shard owning
// the flow. assign is called once per new flow with the flow's client
// address to pick its shard. The key/direction pair is exactly what the
// owning shard's Table will compute via AddOriented.
func (tk *Tracker) Route(d *layers.Decoded, at time.Duration, assign func(netip.Addr) uint32) (Key, bool, uint64, uint32) {
	key := Key{
		ClientIP: d.SrcIP, ServerIP: d.DstIP,
		ClientPort: d.SrcPort, ServerPort: d.DstPort,
		Proto: d.Proto,
	}
	rev := key.Reverse()
	h := hashKey(tk.seed, key)
	i, c2s := tk.findEither(h, key, rev)
	if i != noIdx && !c2s {
		key = rev
	}
	if i == noIdx {
		if !(d.HasTCP && d.TCPFlags.Has(layers.TCPSyn) && !d.TCPFlags.Has(layers.TCPAck)) &&
			len(tk.clientNets) > 0 &&
			containsAddr(tk.clientNets, d.DstIP) && !containsAddr(tk.clientNets, d.SrcIP) {
			key, c2s = rev, false
		}
		i = tk.newFlow()
		f := tk.at(i)
		f.key, f.hash, f.shard = key, h, assign(key.ClientIP)
		tk.insertKey(h, i)
		tk.listPushBack(i)
	} else {
		tk.touch(i)
	}
	f := tk.at(i)
	if at > tk.clock {
		tk.clock = at
	}
	f.lastSeen = tk.clock
	shard := f.shard
	if d.HasTCP {
		// Mirror advanceTCP's finish transitions so a reused 5-tuple
		// re-orients at the same packet the table re-creates it.
		switch {
		case d.TCPFlags.Has(layers.TCPRst):
			tk.drop(i)
		case d.TCPFlags.Has(layers.TCPFin):
			if f.closing {
				tk.drop(i)
			} else {
				f.closing = true
			}
		}
	}
	return key, c2s, h, shard
}

// ExpireIdle applies Table.FlushIdle's exact rule — walk from the least
// recently touched flow, stop at the first one inside the idle window —
// and reports each victim's key, cached hash (valid for tables sharing
// the tracker's seed), and owning shard, in expiry order, after dropping
// it from the tracker.
func (tk *Tracker) ExpireIdle(now time.Duration, expire func(key Key, hash uint64, shard uint32)) {
	for tk.head != noIdx {
		i := tk.head
		f := tk.at(i)
		if now-f.lastSeen < tk.idle {
			break
		}
		key, hash, shard := f.key, f.hash, f.shard
		tk.drop(i)
		expire(key, hash, shard)
	}
}
