package flows

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/layers"
)

// --- reference model -------------------------------------------------------
//
// modelTable replicates the Table's observable semantics on top of a Go
// built-in map plus an explicit recency slice: same orientation rules, same
// TCP lifecycle, same early-stop idle expiry over the recency order, same
// emit order. The differential fuzz target drives both with the same packet
// sequence and requires identical emitted record streams — the swiss index,
// slab recycling, tombstone management, and intrusive list of the real
// table are all invisible if they are correct.

type modelFlow struct {
	rec            Record
	lastSeen       time.Duration // table clock at last touch (mirrors flow.lastSeen)
	c2sLen, s2cLen int
	classified     bool
}

type modelTable struct {
	idle       time.Duration
	clientNets []netip.Prefix
	autoSweep  bool
	flows      map[Key]*modelFlow
	order      []Key // least recently touched first
	stats      TableStats
	sweep      time.Duration
	clock      time.Duration // monotone max of packet times
	emitted    []Record
}

func newModel(cfg Config) *modelTable {
	idle := cfg.IdleTimeout
	if idle <= 0 {
		idle = 5 * time.Minute
	}
	return &modelTable{
		idle:       idle,
		clientNets: cfg.ClientNets,
		autoSweep:  !cfg.DisableAutoSweep,
		flows:      make(map[Key]*modelFlow),
	}
}

func (m *modelTable) touch(k Key) {
	for i, q := range m.order {
		if q == k {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.order = append(m.order, k)
}

func (m *modelTable) removeOrder(k Key) {
	for i, q := range m.order {
		if q == k {
			m.order = append(m.order[:i], m.order[i+1:]...)
			return
		}
	}
}

// classify replicates Table.classify for the all-zero payloads the fuzz
// uses: no protocol matches except the UDP/53 rule, and the
// unknown-after-64-bytes cutoff.
func (m *modelTable) classify(f *modelFlow) {
	if !f.classified && f.c2sLen > 0 {
		if f.rec.Key.Proto == layers.IPProtocolUDP && (f.rec.Key.ServerPort == 53 || f.rec.Key.ClientPort == 53) {
			f.rec.L7 = L7DNS
			f.classified = true
		} else {
			f.classified = f.c2sLen >= 64
		}
	}
}

func (m *modelTable) classifyFinal(f *modelFlow) {
	f.classified = false
	saved := f.rec.L7
	m.classify(f)
	if f.rec.L7 == L7Unknown {
		f.rec.L7 = saved
	}
}

func (m *modelTable) finish(k Key, f *modelFlow, expired bool) {
	m.classifyFinal(f)
	if expired {
		m.stats.FlowsExpired++
	} else {
		m.stats.FlowsClosed++
	}
	delete(m.flows, k)
	m.removeOrder(k)
	m.emitted = append(m.emitted, f.rec)
}

func (m *modelTable) add(d *layers.Decoded, at time.Duration) {
	if !d.HasTCP && !d.HasUDP {
		return
	}
	m.stats.Packets++
	if at > m.clock {
		m.clock = at
	}
	key := Key{ClientIP: d.SrcIP, ServerIP: d.DstIP, ClientPort: d.SrcPort, ServerPort: d.DstPort, Proto: d.Proto}
	c2s := true
	f, ok := m.flows[key]
	if !ok {
		rev := key.Reverse()
		if f, ok = m.flows[rev]; ok {
			key, c2s = rev, false
		}
	}
	if !ok {
		if !(d.HasTCP && d.TCPFlags.Has(layers.TCPSyn) && !d.TCPFlags.Has(layers.TCPAck)) &&
			len(m.clientNets) > 0 &&
			containsAddr(m.clientNets, d.DstIP) && !containsAddr(m.clientNets, d.SrcIP) {
			key, c2s = key.Reverse(), false
		}
		f = &modelFlow{rec: Record{Key: key, Start: at, End: at}}
		if d.HasTCP && d.TCPFlags.Has(layers.TCPSyn) && !d.TCPFlags.Has(layers.TCPAck) {
			f.rec.SawSYN = true
			f.rec.State = StateSynSent
		} else if d.HasTCP {
			f.rec.State = StateEstablished
		}
		m.flows[key] = f
		m.order = append(m.order, key)
		m.stats.FlowsCreated++
	} else {
		m.touch(key)
	}
	f.rec.End = at
	f.lastSeen = m.clock
	n := len(d.Payload)
	if c2s {
		f.rec.PktsC2S++
		f.rec.BytesC2S += uint64(n)
		f.c2sLen = min(f.c2sLen+n, prefixCap)
	} else {
		f.rec.PktsS2C++
		f.rec.BytesS2C += uint64(n)
		f.s2cLen = min(f.s2cLen+n, prefixCap)
	}
	if n > 0 {
		m.classify(f)
	}
	if d.HasTCP {
		switch {
		case d.TCPFlags.Has(layers.TCPRst):
			f.rec.State = StateReset
			m.finish(key, f, false)
		case d.TCPFlags.Has(layers.TCPFin):
			if f.rec.State == StateClosing {
				f.rec.State = StateClosed
				m.finish(key, f, false)
			} else if f.rec.State != StateClosed {
				f.rec.State = StateClosing
			}
		case d.TCPFlags.Has(layers.TCPSyn) && d.TCPFlags.Has(layers.TCPAck):
			if f.rec.State == StateSynSent {
				f.rec.State = StateEstablished
			}
		}
	}
	if m.autoSweep && at-m.sweep >= m.idle {
		m.sweep = at
		m.flushIdle(at)
	}
}

func (m *modelTable) flushIdle(now time.Duration) {
	for len(m.order) > 0 {
		k := m.order[0]
		f := m.flows[k]
		if now-f.lastSeen < m.idle {
			break
		}
		m.finish(k, f, true)
	}
}

func (m *modelTable) flushAll() {
	for len(m.order) > 0 {
		m.finish(m.order[0], m.flows[m.order[0]], false)
	}
}

// --- fuzz driver -----------------------------------------------------------

var (
	fuzzClients = []netip.Addr{
		netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("10.0.0.2"),
		netip.MustParseAddr("10.0.9.9"),
		netip.MustParseAddr("192.0.2.77"), // outside the client nets
	}
	fuzzServers = []netip.Addr{
		netip.MustParseAddr("203.0.113.1"),
		netip.MustParseAddr("203.0.113.2"),
		netip.MustParseAddr("203.0.113.3"),
		netip.MustParseAddr("198.51.100.4"),
	}
)

// decodeOp turns 4 fuzz bytes into one packet (or a sweep), shared by both
// sides of the differential test. Time mostly advances like a capture, but
// the high delta bit encodes a small backward jump (multi-queue capture
// jitter) — exercising the monotone-clock expiry clamp.
func decodeOp(b []byte, cur time.Duration) (*layers.Decoded, time.Duration, bool) {
	if b[3]&0x80 != 0 {
		cur -= time.Duration(b[3]&0x7F) * 5 * time.Millisecond
		if cur < 0 {
			cur = 0
		}
	} else {
		cur += time.Duration(b[3]) * 37 * time.Millisecond
	}
	if b[0]&0x0F == 0x0F {
		return nil, cur, true // explicit FlushIdle
	}
	src := fuzzClients[int(b[0]>>4)&3]
	dst := fuzzServers[int(b[1])&3]
	sport := 40000 + uint16(b[1]>>2)&0x0F
	dport := uint16(80)
	if b[1]&0x80 != 0 {
		dport = 53
	}
	if b[0]&0x40 != 0 { // server-to-client direction
		src, dst = dst, src
		sport, dport = dport, sport
	}
	d := &layers.Decoded{HasIP: true, SrcIP: src, DstIP: dst, SrcPort: sport, DstPort: dport}
	if b[0]&0x20 != 0 {
		d.HasUDP = true
		d.Proto = layers.IPProtocolUDP
	} else {
		d.HasTCP = true
		d.Proto = layers.IPProtocolTCP
		switch b[2] & 0x07 {
		case 0:
			d.TCPFlags = layers.TCPSyn
		case 1:
			d.TCPFlags = layers.TCPSyn | layers.TCPAck
		case 2, 3:
			d.TCPFlags = layers.TCPAck
		case 4:
			d.TCPFlags = layers.TCPAck | layers.TCPPsh
		case 5, 6:
			d.TCPFlags = layers.TCPFin | layers.TCPAck
		default:
			d.TCPFlags = layers.TCPRst
		}
	}
	if n := int(b[2] >> 3); n > 0 {
		d.Payload = make([]byte, n) // zeros: exercises counters, prefix caps
	}
	return d, cur, false
}

func recordsEqual(a, b Record) bool {
	return a.Key == b.Key && a.Start == b.Start && a.End == b.End &&
		a.SawSYN == b.SawSYN && a.State == b.State &&
		a.PktsC2S == b.PktsC2S && a.PktsS2C == b.PktsS2C &&
		a.BytesC2S == b.BytesC2S && a.BytesS2C == b.BytesS2C &&
		a.L7 == b.L7 && a.HTTPHost == b.HTTPHost && a.SNI == b.SNI
}

// FuzzTableVsMapModel drives the swiss-table Table and the built-in-map
// reference model with the same packet sequence and requires identical
// emitted record streams (order included), identical live-flow counts, and
// identical statistics.
func FuzzTableVsMapModel(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x40, 0x00, 0x07, 0x00})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x05, 0xFF, 0x0F, 0x00, 0x00, 0xFF})
	f.Add([]byte{0x10, 0x81, 0x20, 0x02, 0x50, 0x81, 0x20, 0x02, 0x0F, 0x00, 0x00, 0x80})
	f.Add([]byte{0x20, 0x03, 0xFF, 0x10, 0x60, 0x03, 0xFF, 0x10, 0x00, 0x00, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := Config{
			IdleTimeout: 2 * time.Second,
			ClientNets:  []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
		}
		var got []Record
		tbl := NewTable(Config{
			IdleTimeout: cfg.IdleTimeout,
			ClientNets:  cfg.ClientNets,
			OnRecord:    func(r Record, _ Handle) { got = append(got, r) },
		})
		mdl := newModel(cfg)

		var cur time.Duration
		for i := 0; i+4 <= len(data) && i < 4*4096; i += 4 {
			var d *layers.Decoded
			var sweep bool
			d, cur, sweep = decodeOp(data[i:i+4], cur)
			if sweep {
				tbl.FlushIdle(cur)
				mdl.flushIdle(cur)
			} else {
				tbl.Add(d, cur, nil)
				mdl.add(d, cur)
			}
			if tbl.Active() != len(mdl.flows) {
				t.Fatalf("op %d: active %d, model %d", i/4, tbl.Active(), len(mdl.flows))
			}
		}
		tbl.FlushAll()
		mdl.flushAll()

		if tbl.Stats() != mdl.stats {
			t.Fatalf("stats diverge:\n table %+v\n model %+v", tbl.Stats(), mdl.stats)
		}
		if len(got) != len(mdl.emitted) {
			t.Fatalf("emitted %d records, model %d", len(got), len(mdl.emitted))
		}
		for i := range got {
			if !recordsEqual(got[i], mdl.emitted[i]) {
				t.Fatalf("record %d diverges:\n table %+v\n model %+v", i, got[i], mdl.emitted[i])
			}
		}
	})
}

// TestTableMatchesModelSeeded runs the differential check over fixed
// pseudo-random op streams, so the model equivalence is exercised by plain
// `go test` runs too (fuzzing only executes the seed corpus there).
func TestTableMatchesModelSeeded(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		data := make([]byte, 4*2048)
		s := seed
		for i := range data {
			// splitmix64-ish byte stream
			s += 0x9E3779B97F4A7C15
			z := s
			z ^= z >> 30
			z *= 0xBF58476D1CE4E5B9
			z ^= z >> 27
			data[i] = byte(z >> 56)
		}
		var got []Record
		cfg := Config{IdleTimeout: 2 * time.Second, ClientNets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}}
		tbl := NewTable(Config{IdleTimeout: cfg.IdleTimeout, ClientNets: cfg.ClientNets,
			OnRecord: func(r Record, _ Handle) { got = append(got, r) }})
		mdl := newModel(cfg)
		var cur time.Duration
		for i := 0; i+4 <= len(data); i += 4 {
			var d *layers.Decoded
			var sweep bool
			d, cur, sweep = decodeOp(data[i:i+4], cur)
			if sweep {
				tbl.FlushIdle(cur)
				mdl.flushIdle(cur)
				continue
			}
			tbl.Add(d, cur, nil)
			mdl.add(d, cur)
		}
		tbl.FlushAll()
		mdl.flushAll()
		if tbl.Stats() != mdl.stats {
			t.Fatalf("seed %d: stats diverge:\n table %+v\n model %+v", seed, tbl.Stats(), mdl.stats)
		}
		for i := range got {
			if !recordsEqual(got[i], mdl.emitted[i]) {
				t.Fatalf("seed %d: record %d diverges:\n table %+v\n model %+v", seed, i, got[i], mdl.emitted[i])
			}
		}
	}
}

// TestEmitOrderDeterministic pins the satellite fix for nondeterministic
// emit order: two tables (with independent random hash seeds) fed the same
// packets must emit identical record sequences — order included — so CSV
// output is byte-reproducible run to run.
func TestEmitOrderDeterministic(t *testing.T) {
	mk := func() (*Table, *[]Record) {
		var recs []Record
		tbl := NewTable(Config{IdleTimeout: time.Second,
			OnRecord: func(r Record, _ Handle) { recs = append(recs, r) }})
		return tbl, &recs
	}
	a, ra := mk()
	b, rb := mk()
	srv := netip.MustParseAddr("203.0.113.9")
	for round := 0; round < 3; round++ {
		for i := 0; i < 40; i++ {
			cl := fuzzClients[i%len(fuzzClients)]
			syn := &layers.Decoded{HasIP: true, HasTCP: true, SrcIP: cl, DstIP: srv,
				Proto: layers.IPProtocolTCP, SrcPort: uint16(41000 + i), DstPort: 443, TCPFlags: layers.TCPSyn}
			at := time.Duration(round*50+i) * 13 * time.Millisecond
			a.Add(syn, at, nil)
			b.Add(syn, at, nil)
		}
		sweepAt := time.Duration(round+1) * 10 * time.Second
		a.FlushIdle(sweepAt)
		b.FlushIdle(sweepAt)
	}
	a.FlushAll()
	b.FlushAll()
	if len(*ra) != len(*rb) {
		t.Fatalf("emit counts differ: %d vs %d", len(*ra), len(*rb))
	}
	for i := range *ra {
		if !recordsEqual((*ra)[i], (*rb)[i]) {
			t.Fatalf("emit order diverges at %d:\n a %+v\n b %+v", i, (*ra)[i], (*rb)[i])
		}
	}
}

// TestFlushIdleVisitsOnlyExpired pins the O(expired) sweep: with many
// active flows and k idle ones, FlushIdle must examine k+1 slots — not the
// whole table.
func TestFlushIdleVisitsOnlyExpired(t *testing.T) {
	tbl := NewTable(Config{IdleTimeout: time.Minute})
	srv := netip.MustParseAddr("203.0.113.9")
	pktAt := func(port uint16, at time.Duration) {
		d := &layers.Decoded{HasIP: true, HasTCP: true,
			SrcIP: fuzzClients[0], DstIP: srv, Proto: layers.IPProtocolTCP,
			SrcPort: port, DstPort: 443, TCPFlags: layers.TCPSyn}
		tbl.Add(d, at, nil)
	}
	const idleFlows, activeFlows = 7, 1000
	for i := 0; i < idleFlows; i++ {
		pktAt(uint16(30000+i), 0)
	}
	for i := 0; i < activeFlows; i++ {
		pktAt(uint16(40000+i), 30*time.Second)
	}
	tbl.FlushIdle(80 * time.Second) // idle cutoff 20s: only the first batch expires
	if tbl.Stats().FlowsExpired != idleFlows {
		t.Fatalf("expired %d flows, want %d", tbl.Stats().FlowsExpired, idleFlows)
	}
	if tbl.Active() != activeFlows {
		t.Fatalf("active %d, want %d", tbl.Active(), activeFlows)
	}
	if tbl.sweepVisited > idleFlows+1 {
		t.Fatalf("sweep visited %d slots for %d expired flows (O(active) scan?)", tbl.sweepVisited, idleFlows)
	}
}

// BenchmarkFlushIdle demonstrates the sweep cost scaling with the number
// of expired flows, not the number of active ones: ns/op should be flat
// across active-table sizes for a fixed expiry batch.
func BenchmarkFlushIdle(b *testing.B) {
	srv := netip.MustParseAddr("203.0.113.9")
	for _, active := range []int{1_000, 10_000, 100_000} {
		b.Run(sizeLabel(active), func(b *testing.B) {
			const expirePer = 64
			tbl := NewTable(Config{IdleTimeout: time.Minute, DisableAutoSweep: true})
			pktAt := func(c netip.Addr, port uint16, at time.Duration) {
				d := &layers.Decoded{HasIP: true, HasTCP: true, SrcIP: c, DstIP: srv,
					Proto: layers.IPProtocolTCP, SrcPort: port, DstPort: 443, TCPFlags: layers.TCPAck}
				tbl.Add(d, at, nil)
			}
			cur := time.Duration(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// Victims go idle at cur; the active population is touched
				// afterwards, so it sits behind the victims in recency order.
				for v := 0; v < expirePer; v++ {
					pktAt(fuzzClients[1], uint16(20000+v), cur)
				}
				for a := 0; a < active; a++ {
					pktAt(fuzzClients[0], uint16(a), cur+time.Millisecond)
				}
				b.StartTimer()
				tbl.FlushIdle(cur + time.Minute) // expires exactly the victims
				b.StopTimer()
				if got := tbl.Stats().FlowsExpired; got != uint64((i+1)*expirePer) {
					b.Fatalf("expired %d, want %d", got, (i+1)*expirePer)
				}
				cur += 2 * time.Minute
				b.StartTimer()
			}
			b.ReportMetric(expirePer, "expired/op")
		})
	}
}

func sizeLabel(n int) string {
	switch {
	case n >= 100_000:
		return "active=100k"
	case n >= 10_000:
		return "active=10k"
	default:
		return "active=1k"
	}
}
