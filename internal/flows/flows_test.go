package flows

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/layers"
	"repro/internal/tlswire"
)

var (
	client = netip.MustParseAddr("10.1.2.3")
	server = netip.MustParseAddr("203.0.113.50")
)

// pkt builds a decoded TCP packet.
func pkt(src, dst netip.Addr, sport, dport uint16, flags layers.TCPFlags, payload []byte) *layers.Decoded {
	return &layers.Decoded{
		HasIP: true, HasTCP: true,
		SrcIP: src, DstIP: dst, Proto: layers.IPProtocolTCP,
		SrcPort: sport, DstPort: dport, TCPFlags: flags, Payload: payload,
	}
}

func udpPkt(src, dst netip.Addr, sport, dport uint16, payload []byte) *layers.Decoded {
	return &layers.Decoded{
		HasIP: true, HasUDP: true,
		SrcIP: src, DstIP: dst, Proto: layers.IPProtocolUDP,
		SrcPort: sport, DstPort: dport, Payload: payload,
	}
}

// runHandshake pushes a full TCP connection carrying the given client
// payload and optional server payload, then closes it.
func runConn(t *Table, at time.Duration, dport uint16, c2s, s2c []byte) {
	t.Add(pkt(client, server, 40000, dport, layers.TCPSyn, nil), at, nil)
	t.Add(pkt(server, client, dport, 40000, layers.TCPSyn|layers.TCPAck, nil), at+time.Millisecond, nil)
	t.Add(pkt(client, server, 40000, dport, layers.TCPAck, nil), at+2*time.Millisecond, nil)
	if len(c2s) > 0 {
		t.Add(pkt(client, server, 40000, dport, layers.TCPAck|layers.TCPPsh, c2s), at+3*time.Millisecond, nil)
	}
	if len(s2c) > 0 {
		t.Add(pkt(server, client, dport, 40000, layers.TCPAck|layers.TCPPsh, s2c), at+4*time.Millisecond, nil)
	}
	t.Add(pkt(client, server, 40000, dport, layers.TCPFin|layers.TCPAck, nil), at+5*time.Millisecond, nil)
	t.Add(pkt(server, client, dport, 40000, layers.TCPFin|layers.TCPAck, nil), at+6*time.Millisecond, nil)
}

func TestBasicTCPFlow(t *testing.T) {
	tbl := NewTable(Config{})
	req := []byte("GET /index.html HTTP/1.1\r\nHost: www.example.com\r\n\r\n")
	runConn(tbl, 0, 80, req, []byte("HTTP/1.1 200 OK\r\n\r\n"))
	recs := tbl.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Key.ClientIP != client || r.Key.ServerIP != server || r.Key.ServerPort != 80 {
		t.Fatalf("key = %v", r.Key)
	}
	if !r.SawSYN {
		t.Fatal("SYN not recorded")
	}
	if r.L7 != L7HTTP || r.HTTPHost != "www.example.com" {
		t.Fatalf("classification: %v %q", r.L7, r.HTTPHost)
	}
	if r.State != StateClosed {
		t.Fatalf("state = %v", r.State)
	}
	// c2s: SYN, ACK, data, FIN; s2c: SYN|ACK, data, FIN.
	if r.PktsC2S != 4 || r.PktsS2C != 3 {
		t.Fatalf("pkts = %d/%d", r.PktsC2S, r.PktsS2C)
	}
	if r.BytesC2S != uint64(len(req)) {
		t.Fatalf("bytes c2s = %d", r.BytesC2S)
	}
}

func TestTLSFlowWithSNIAndCert(t *testing.T) {
	tbl := NewTable(Config{})
	chBody, err := (&tlswire.ClientHello{ServerName: "mail.google.com"}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ch, err := tlswire.AppendRecord(nil, tlswire.RecordHandshake, chBody)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := tlswire.MarshalCertificate("*.google.com")
	if err != nil {
		t.Fatal(err)
	}
	certBody, err := (&tlswire.Certificate{Chain: [][]byte{leaf}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	shBody, err := (&tlswire.ServerHello{}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	flight, err := tlswire.AppendRecord(nil, tlswire.RecordHandshake, append(shBody, certBody...))
	if err != nil {
		t.Fatal(err)
	}
	runConn(tbl, 0, 443, ch, flight)
	recs := tbl.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.L7 != L7TLS || r.SNI != "mail.google.com" {
		t.Fatalf("classification: %v %q", r.L7, r.SNI)
	}
	if len(r.CertNames) != 1 || r.CertNames[0] != "*.google.com" {
		t.Fatalf("certs = %v", r.CertNames)
	}
}

func TestBitTorrentClassification(t *testing.T) {
	tbl := NewTable(Config{})
	hs := append([]byte{19}, []byte("BitTorrent protocol")...)
	hs = append(hs, make([]byte, 48)...)
	runConn(tbl, 0, 6881, hs, nil)
	recs := tbl.Records()
	if len(recs) != 1 || recs[0].L7 != L7P2P {
		t.Fatalf("records = %+v", recs)
	}
}

func TestUDPDNSClassification(t *testing.T) {
	tbl := NewTable(Config{})
	tbl.Add(udpPkt(client, server, 50000, 53, []byte{0, 1, 1, 0}), 0, nil)
	tbl.Add(udpPkt(server, client, 53, 50000, []byte{0, 1, 0x81, 0x80}), time.Millisecond, nil)
	tbl.FlushAll()
	recs := tbl.Records()
	if len(recs) != 1 || recs[0].L7 != L7DNS {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].PktsC2S != 1 || recs[0].PktsS2C != 1 {
		t.Fatalf("direction accounting: %+v", recs[0])
	}
}

func TestRSTClosesFlow(t *testing.T) {
	tbl := NewTable(Config{})
	tbl.Add(pkt(client, server, 40000, 80, layers.TCPSyn, nil), 0, nil)
	tbl.Add(pkt(server, client, 80, 40000, layers.TCPRst, nil), time.Millisecond, nil)
	recs := tbl.Records()
	if len(recs) != 1 || recs[0].State != StateReset {
		t.Fatalf("records = %+v", recs)
	}
	if tbl.Active() != 0 {
		t.Fatalf("active = %d", tbl.Active())
	}
}

func TestMidstreamOrientationByClientNets(t *testing.T) {
	nets := []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}
	tbl := NewTable(Config{ClientNets: nets})
	// First observed packet travels server -> client (no SYN).
	tbl.Add(pkt(server, client, 80, 40000, layers.TCPAck|layers.TCPPsh, []byte("HTTP/1.1 200 OK\r\n")), 0, nil)
	tbl.FlushAll()
	recs := tbl.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Key.ClientIP != client || r.Key.ServerIP != server {
		t.Fatalf("orientation wrong: %v", r.Key)
	}
	if r.SawSYN {
		t.Fatal("midstream flow must not claim SYN")
	}
	if r.PktsS2C != 1 || r.PktsC2S != 0 {
		t.Fatalf("direction: %+v", r)
	}
}

func TestIdleTimeoutExpiry(t *testing.T) {
	tbl := NewTable(Config{IdleTimeout: time.Minute})
	tbl.Add(pkt(client, server, 40000, 80, layers.TCPSyn, nil), 0, nil)
	tbl.FlushIdle(2 * time.Minute)
	if tbl.Active() != 0 {
		t.Fatalf("active = %d", tbl.Active())
	}
	if tbl.Stats().FlowsExpired != 1 {
		t.Fatalf("stats = %+v", tbl.Stats())
	}
}

func TestAmortizedSweepOnAdd(t *testing.T) {
	tbl := NewTable(Config{IdleTimeout: time.Minute})
	tbl.Add(pkt(client, server, 40000, 80, layers.TCPSyn, nil), 0, nil)
	// A later unrelated packet triggers the sweep of the first, idle flow.
	other := netip.MustParseAddr("10.9.9.9")
	tbl.Add(pkt(other, server, 41000, 80, layers.TCPSyn, nil), 10*time.Minute, nil)
	if tbl.Stats().FlowsExpired != 1 {
		t.Fatalf("stats = %+v", tbl.Stats())
	}
}

func TestOnNewFiresOncePerFlow(t *testing.T) {
	tbl := NewTable(Config{})
	var calls []Key
	var syns []bool
	onNew := func(k Key, _ time.Duration, sawSYN bool, _ Handle) {
		calls = append(calls, k)
		syns = append(syns, sawSYN)
	}
	tbl.Add(pkt(client, server, 40000, 443, layers.TCPSyn, nil), 0, onNew)
	tbl.Add(pkt(server, client, 443, 40000, layers.TCPSyn|layers.TCPAck, nil), 1, onNew)
	tbl.Add(pkt(client, server, 40000, 443, layers.TCPAck, nil), 2, onNew)
	if len(calls) != 1 {
		t.Fatalf("onNew fired %d times", len(calls))
	}
	if !syns[0] {
		t.Fatal("pre-flow tag hook should see the SYN")
	}
	if calls[0].ClientIP != client {
		t.Fatalf("key = %v", calls[0])
	}
}

func TestOnRecordCallback(t *testing.T) {
	var got []Record
	tbl := NewTable(Config{OnRecord: func(r Record, _ Handle) { got = append(got, r) }})
	runConn(tbl, 0, 80, []byte("GET / HTTP/1.1\r\nHost: a.b\r\n\r\n"), nil)
	if len(got) != 1 || len(tbl.Records()) != 0 {
		t.Fatalf("callback got %d, frozen %d", len(got), len(tbl.Records()))
	}
}

func TestTwoConcurrentFlowsSameHosts(t *testing.T) {
	tbl := NewTable(Config{})
	tbl.Add(pkt(client, server, 40000, 80, layers.TCPSyn, nil), 0, nil)
	tbl.Add(pkt(client, server, 40001, 80, layers.TCPSyn, nil), 0, nil)
	if tbl.Active() != 2 {
		t.Fatalf("active = %d", tbl.Active())
	}
	tbl.FlushAll()
	if len(tbl.Records()) != 2 {
		t.Fatalf("records = %d", len(tbl.Records()))
	}
}

func TestKeyStringAndReverse(t *testing.T) {
	k := Key{ClientIP: client, ServerIP: server, ClientPort: 1, ServerPort: 2, Proto: layers.IPProtocolTCP}
	if k.Reverse().Reverse() != k {
		t.Fatal("Reverse not involutive")
	}
	if k.String() == "" {
		t.Fatal("empty String")
	}
}

func TestHTTPHostLowercased(t *testing.T) {
	tbl := NewTable(Config{})
	runConn(tbl, 0, 80, []byte("GET / HTTP/1.1\r\nHost: WWW.Example.COM\r\n\r\n"), nil)
	if h := tbl.Records()[0].HTTPHost; h != "www.example.com" {
		t.Fatalf("host = %q", h)
	}
}

func TestL7StringNames(t *testing.T) {
	for p, want := range map[L7Proto]string{L7HTTP: "HTTP", L7TLS: "TLS", L7P2P: "P2P", L7DNS: "DNS", L7Unknown: "OTHER"} {
		if p.String() != want {
			t.Fatalf("%v.String() = %q", p, p.String())
		}
	}
}

func TestIgnoresNonTransportPackets(t *testing.T) {
	tbl := NewTable(Config{})
	tbl.Add(&layers.Decoded{HasIP: true}, 0, nil)
	if tbl.Stats().Packets != 0 || tbl.Active() != 0 {
		t.Fatalf("stats = %+v", tbl.Stats())
	}
}

func TestSplitHTTPHeaderAcrossSegments(t *testing.T) {
	tbl := NewTable(Config{})
	tbl.Add(pkt(client, server, 40000, 80, layers.TCPSyn, nil), 0, nil)
	tbl.Add(pkt(client, server, 40000, 80, layers.TCPAck|layers.TCPPsh, []byte("GET / HTTP/1.1\r\nHo")), 1, nil)
	tbl.Add(pkt(client, server, 40000, 80, layers.TCPAck|layers.TCPPsh, []byte("st: split.example.com\r\n\r\n")), 2, nil)
	tbl.FlushAll()
	r := tbl.Records()[0]
	if r.L7 != L7HTTP || r.HTTPHost != "split.example.com" {
		t.Fatalf("got %v %q", r.L7, r.HTTPHost)
	}
}
