// Package orgdb maps server IP addresses to the organization operating them
// — the role MaxMind/whois data plays in the paper (§4.2, §5). The
// synthesizer emits the table alongside each trace; the analytics join
// labeled flows against it for content discovery (Table 5), the CDN time
// series (Fig. 5), and the org × CDN heat maps (Fig. 9).
//
// Lookups use longest-prefix match over a sorted prefix table, the same
// discipline as a routing table, so overlapping allocations (a CDN block
// carved out of a carrier block) resolve to the most specific owner.
package orgdb

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"
)

// Entry is one prefix allocation.
type Entry struct {
	Prefix netip.Prefix
	Org    string
}

// DB is an immutable prefix → organization table. Build with New.
type DB struct {
	// entries sorted by (address, prefix length) for binary search.
	entries []Entry
	orgs    []string
}

// ErrBadFormat reports an unparsable text table.
var ErrBadFormat = errors.New("orgdb: bad format")

// New builds a database from entries. Prefixes are normalized to their
// masked form; duplicate (prefix, org) pairs collapse. The input slice is
// not retained.
func New(entries []Entry) *DB {
	db := &DB{entries: make([]Entry, 0, len(entries))}
	seen := make(map[netip.Prefix]string, len(entries))
	orgSet := make(map[string]struct{})
	for _, e := range entries {
		p := e.Prefix.Masked()
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = e.Org
		db.entries = append(db.entries, Entry{Prefix: p, Org: e.Org})
		orgSet[e.Org] = struct{}{}
	}
	sort.Slice(db.entries, func(i, j int) bool {
		a, b := db.entries[i].Prefix, db.entries[j].Prefix
		if c := a.Addr().Compare(b.Addr()); c != 0 {
			return c < 0
		}
		return a.Bits() < b.Bits()
	})
	for org := range orgSet {
		db.orgs = append(db.orgs, org)
	}
	sort.Strings(db.orgs)
	return db
}

// Len returns the number of prefixes.
func (db *DB) Len() int { return len(db.entries) }

// Orgs returns the distinct organization names, sorted.
func (db *DB) Orgs() []string { return append([]string(nil), db.orgs...) }

// Lookup returns the organization owning addr via longest-prefix match.
// ok is false when no prefix covers addr. IPv4 prefixes shorter than /8 are
// not supported (real allocations are /8 or longer).
func (db *DB) Lookup(addr netip.Addr) (org string, ok bool) {
	// Binary search to the insertion point, then scan left: any covering
	// prefix has a base address <= addr. Candidate prefixes appear before
	// the insertion point; the first (longest-bits) match wins among those
	// that contain addr. We track the best (longest) match while scanning
	// until base addresses fall below addr's possible coverage.
	i := sort.Search(len(db.entries), func(i int) bool {
		return db.entries[i].Prefix.Addr().Compare(addr) > 0
	})
	best := -1
	for j := i - 1; j >= 0; j-- {
		e := db.entries[j]
		if e.Prefix.Contains(addr) {
			if best == -1 || e.Prefix.Bits() > db.entries[best].Prefix.Bits() {
				best = j
			}
			// A match at /b means any longer (more specific) prefix would
			// sort closer to addr, i.e. at an index >= j; since we scan
			// right-to-left the first few matches include the most
			// specific. Keep scanning while base addresses could still
			// cover addr.
		}
		// Stop once even a /0 rooted at this base could not reach addr's
		// family, or we crossed address families.
		if e.Prefix.Addr().Is4() != addr.Is4() {
			break
		}
		// Heuristic bound: prefixes are at least /8 in practice; stop when
		// the base is more than a /8 away.
		if addrDelta(addr, e.Prefix.Addr()) > 1<<24 && addr.Is4() {
			break
		}
	}
	if best == -1 {
		return "", false
	}
	return db.entries[best].Org, true
}

// addrDelta returns an approximate distance between two IPv4 addresses.
func addrDelta(a, b netip.Addr) uint64 {
	if !a.Is4() || !b.Is4() {
		return 1 << 63
	}
	av := a.As4()
	bv := b.As4()
	au := uint64(av[0])<<24 | uint64(av[1])<<16 | uint64(av[2])<<8 | uint64(av[3])
	bu := uint64(bv[0])<<24 | uint64(bv[1])<<16 | uint64(bv[2])<<8 | uint64(bv[3])
	if au > bu {
		return au - bu
	}
	return bu - au
}

// WriteText serializes the table as "prefix org" lines.
func (db *DB) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range db.entries {
		if _, err := fmt.Fprintf(bw, "%s %s\n", e.Prefix, e.Org); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses a table produced by WriteText. Blank lines and lines
// starting with '#' are ignored.
func ReadText(r io.Reader) (*DB, error) {
	var entries []Entry
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadFormat, lineNo, line)
		}
		p, err := netip.ParsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
		}
		entries = append(entries, Entry{Prefix: p, Org: strings.Join(fields[1:], " ")})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(entries), nil
}
