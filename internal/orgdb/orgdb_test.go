package orgdb

import (
	"bytes"
	"errors"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func mustDB(t *testing.T, rows ...string) *DB {
	t.Helper()
	var entries []Entry
	for _, row := range rows {
		fields := strings.Fields(row)
		entries = append(entries, Entry{Prefix: netip.MustParsePrefix(fields[0]), Org: fields[1]})
	}
	return New(entries)
}

func TestLookupBasic(t *testing.T) {
	db := mustDB(t,
		"23.0.0.0/12 akamai",
		"54.224.0.0/12 amazon",
		"173.194.0.0/16 google",
	)
	cases := []struct {
		addr string
		org  string
		ok   bool
	}{
		{"23.1.2.3", "akamai", true},
		{"54.230.1.1", "amazon", true},
		{"173.194.44.10", "google", true},
		{"8.8.8.8", "", false},
	}
	for _, tc := range cases {
		org, ok := db.Lookup(netip.MustParseAddr(tc.addr))
		if ok != tc.ok || org != tc.org {
			t.Errorf("Lookup(%s) = %q, %v; want %q, %v", tc.addr, org, ok, tc.org, tc.ok)
		}
	}
}

func TestLongestPrefixWins(t *testing.T) {
	db := mustDB(t,
		"10.0.0.0/8 carrier",
		"10.20.0.0/16 cdn",
		"10.20.30.0/24 tenant",
	)
	cases := map[string]string{
		"10.1.1.1":    "carrier",
		"10.20.1.1":   "cdn",
		"10.20.30.40": "tenant",
	}
	for addr, want := range cases {
		org, ok := db.Lookup(netip.MustParseAddr(addr))
		if !ok || org != want {
			t.Errorf("Lookup(%s) = %q, %v; want %q", addr, org, ok, want)
		}
	}
}

func TestIPv6Lookup(t *testing.T) {
	db := mustDB(t, "2001:db8::/32 testnet", "10.0.0.0/8 carrier")
	org, ok := db.Lookup(netip.MustParseAddr("2001:db8::1234"))
	if !ok || org != "testnet" {
		t.Fatalf("got %q, %v", org, ok)
	}
	if _, ok := db.Lookup(netip.MustParseAddr("2002::1")); ok {
		t.Fatal("unexpected v6 match")
	}
}

func TestFamilySeparation(t *testing.T) {
	db := mustDB(t, "0.0.0.0/8 zero")
	if _, ok := db.Lookup(netip.MustParseAddr("::1")); ok {
		t.Fatal("v6 address matched a v4 prefix")
	}
}

func TestDuplicatePrefixCollapses(t *testing.T) {
	db := New([]Entry{
		{Prefix: netip.MustParsePrefix("10.0.0.0/8"), Org: "first"},
		{Prefix: netip.MustParsePrefix("10.0.0.0/8"), Org: "second"},
	})
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
	org, _ := db.Lookup(netip.MustParseAddr("10.1.1.1"))
	if org != "first" {
		t.Fatalf("org = %q", org)
	}
}

func TestPrefixNormalization(t *testing.T) {
	db := New([]Entry{{Prefix: netip.MustParsePrefix("10.55.66.77/8"), Org: "x"}})
	if org, ok := db.Lookup(netip.MustParseAddr("10.0.0.1")); !ok || org != "x" {
		t.Fatalf("unmasked prefix broke lookup: %q %v", org, ok)
	}
}

func TestOrgs(t *testing.T) {
	db := mustDB(t, "10.0.0.0/8 beta", "11.0.0.0/8 alpha", "12.0.0.0/8 beta")
	orgs := db.Orgs()
	if len(orgs) != 2 || orgs[0] != "alpha" || orgs[1] != "beta" {
		t.Fatalf("orgs = %v", orgs)
	}
}

func TestTextRoundTrip(t *testing.T) {
	db := mustDB(t, "23.0.0.0/12 akamai", "54.224.0.0/12 amazon")
	var buf bytes.Buffer
	if err := db.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), db.Len())
	}
	org, ok := got.Lookup(netip.MustParseAddr("23.1.1.1"))
	if !ok || org != "akamai" {
		t.Fatalf("lookup after round trip: %q %v", org, ok)
	}
}

func TestReadTextCommentsAndSpaces(t *testing.T) {
	in := "# comment\n\n10.0.0.0/8 my org name\n"
	db, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	org, ok := db.Lookup(netip.MustParseAddr("10.2.3.4"))
	if !ok || org != "my org name" {
		t.Fatalf("got %q %v", org, ok)
	}
}

func TestReadTextErrors(t *testing.T) {
	for _, in := range []string{"justoneword\n", "notaprefix org\n"} {
		if _, err := ReadText(strings.NewReader(in)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("input %q: err = %v", in, err)
		}
	}
}

func TestEmptyDB(t *testing.T) {
	db := New(nil)
	if _, ok := db.Lookup(netip.MustParseAddr("1.2.3.4")); ok {
		t.Fatal("empty DB matched")
	}
	if db.Len() != 0 || len(db.Orgs()) != 0 {
		t.Fatal("empty DB not empty")
	}
}

func TestQuickLookupConsistentWithLinearScan(t *testing.T) {
	// Property: Lookup agrees with a brute-force longest-prefix scan.
	prefixes := []Entry{
		{netip.MustParsePrefix("10.0.0.0/8"), "a"},
		{netip.MustParsePrefix("10.128.0.0/9"), "b"},
		{netip.MustParsePrefix("10.128.64.0/18"), "c"},
		{netip.MustParsePrefix("192.168.0.0/16"), "d"},
		{netip.MustParsePrefix("192.168.7.0/24"), "e"},
	}
	db := New(prefixes)
	f := func(b1, b2, b3, b4 uint8) bool {
		addr := netip.AddrFrom4([4]byte{b1, b2, b3, b4})
		wantOrg, wantOK := "", false
		bestBits := -1
		for _, e := range prefixes {
			if e.Prefix.Contains(addr) && e.Prefix.Bits() > bestBits {
				bestBits = e.Prefix.Bits()
				wantOrg, wantOK = e.Org, true
			}
		}
		org, ok := db.Lookup(addr)
		return org == wantOrg && ok == wantOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	var entries []Entry
	for i := 0; i < 256; i++ {
		entries = append(entries, Entry{
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(i), 0, 0, 0}), 12),
			Org:    "org",
		})
	}
	db := New(entries)
	addr := netip.MustParseAddr("100.1.2.3")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Lookup(addr)
	}
}
