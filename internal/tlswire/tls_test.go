package tlswire

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestCertificateMarshalParse(t *testing.T) {
	for _, cn := range []string{"www.example.com", "*.google.com", "a248.e.akamai.net", ""} {
		der, err := MarshalCertificate(cn)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseCertificate(der)
		if err != nil {
			t.Fatal(err)
		}
		if got != cn {
			t.Fatalf("cn = %q, want %q", got, cn)
		}
	}
}

func TestParseCertificateRejectsGarbage(t *testing.T) {
	if _, err := ParseCertificate([]byte{0xff, 0x00, 0x01}); err == nil {
		t.Fatal("expected error")
	}
}

func TestParseCertificateRejectsTrailing(t *testing.T) {
	der, err := MarshalCertificate("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseCertificate(append(der, 0)); err == nil {
		t.Fatal("expected error for trailing bytes")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	payload := []byte("handshake bytes")
	raw, err := AppendRecord(nil, RecordHandshake, payload)
	if err != nil {
		t.Fatal(err)
	}
	rec, rest, err := ReadRecord(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != RecordHandshake || string(rec.Payload) != string(payload) || len(rest) != 0 {
		t.Fatalf("rec = %+v rest = %v", rec, rest)
	}
}

func TestReadRecordErrors(t *testing.T) {
	if _, _, err := ReadRecord([]byte{22, 3}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v", err)
	}
	if _, _, err := ReadRecord([]byte{99, 3, 3, 0, 0}); !errors.Is(err, ErrNotTLS) {
		t.Fatalf("bad type: %v", err)
	}
	if _, _, err := ReadRecord([]byte{22, 9, 3, 0, 0}); !errors.Is(err, ErrNotTLS) {
		t.Fatalf("bad version: %v", err)
	}
	if _, _, err := ReadRecord([]byte{22, 3, 3, 0, 10, 1, 2}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short body: %v", err)
	}
}

func TestAppendRecordTooLarge(t *testing.T) {
	if _, err := AppendRecord(nil, RecordHandshake, make([]byte, 1<<14+1)); err == nil {
		t.Fatal("expected error")
	}
}

func TestLooksLikeTLS(t *testing.T) {
	if !LooksLikeTLS([]byte{22, 3, 1, 0, 0}) {
		t.Fatal("handshake record should look like TLS")
	}
	if LooksLikeTLS([]byte("GET / HTTP/1.1")) {
		t.Fatal("HTTP should not look like TLS")
	}
	if LooksLikeTLS([]byte{22}) {
		t.Fatal("too-short data should not look like TLS")
	}
}

func TestClientHelloSNIRoundTrip(t *testing.T) {
	ch := &ClientHello{ServerName: "mail.google.com"}
	hs, err := ch.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := AppendRecord(nil, RecordHandshake, hs)
	if err != nil {
		t.Fatal(err)
	}
	info := InspectStream(raw)
	if info.SNI != "mail.google.com" {
		t.Fatalf("SNI = %q", info.SNI)
	}
}

func TestClientHelloNoSNI(t *testing.T) {
	ch := &ClientHello{}
	hs, err := ch.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := AppendRecord(nil, RecordHandshake, hs)
	if err != nil {
		t.Fatal(err)
	}
	if info := InspectStream(raw); info.SNI != "" {
		t.Fatalf("SNI = %q, want empty", info.SNI)
	}
}

func TestServerSideCertificateFlow(t *testing.T) {
	sh, err := (&ServerHello{}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := MarshalCertificate("*.zynga.com")
	if err != nil {
		t.Fatal(err)
	}
	inter, err := MarshalCertificate("Intermediate CA")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := (&Certificate{Chain: [][]byte{leaf, inter}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// ServerHello and Certificate coalesced in one record, like real stacks.
	raw, err := AppendRecord(nil, RecordHandshake, append(sh, cert...))
	if err != nil {
		t.Fatal(err)
	}
	info := InspectStream(raw)
	if len(info.CertificateNames) != 2 || info.CertificateNames[0] != "*.zynga.com" {
		t.Fatalf("names = %v", info.CertificateNames)
	}
}

func TestCertificateAcrossTwoRecords(t *testing.T) {
	sh, err := (&ServerHello{}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := MarshalCertificate("www.dropbox.com")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := (&Certificate{Chain: [][]byte{leaf}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := AppendRecord(nil, RecordHandshake, sh)
	if err != nil {
		t.Fatal(err)
	}
	raw, err = AppendRecord(raw, RecordHandshake, cert)
	if err != nil {
		t.Fatal(err)
	}
	info := InspectStream(raw)
	if len(info.CertificateNames) != 1 || info.CertificateNames[0] != "www.dropbox.com" {
		t.Fatalf("names = %v", info.CertificateNames)
	}
}

func TestInspectStopsAtApplicationData(t *testing.T) {
	ch := &ClientHello{ServerName: "x.com"}
	hs, err := ch.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := AppendRecord(nil, RecordApplicationData, []byte("junk"))
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := AppendRecord(raw, RecordHandshake, hs)
	if err != nil {
		t.Fatal(err)
	}
	// The handshake record comes after app data, so inspection finds nothing.
	if info := InspectStream(raw2); info.SNI != "" {
		t.Fatalf("SNI = %q, want empty", info.SNI)
	}
}

func TestInspectPartialRecord(t *testing.T) {
	ch := &ClientHello{ServerName: "partial.example.com"}
	hs, err := ch.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := AppendRecord(nil, RecordHandshake, hs)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-record: inspection must return cleanly with nothing found.
	if info := InspectStream(raw[:len(raw)/2]); info.SNI != "" {
		t.Fatalf("SNI = %q from a partial record", info.SNI)
	}
}

func TestInspectNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_ = InspectStream(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSNIRoundTrip(t *testing.T) {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	f := func(a byte, n uint8) bool {
		var sb strings.Builder
		l := 1 + int(n)%40
		for i := 0; i < l; i++ {
			sb.WriteByte(alpha[(int(a)+i)%len(alpha)])
		}
		name := sb.String() + ".example.com"
		hs, err := (&ClientHello{ServerName: name}).Marshal()
		if err != nil {
			return false
		}
		raw, err := AppendRecord(nil, RecordHandshake, hs)
		if err != nil {
			return false
		}
		return InspectStream(raw).SNI == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
