// Package tlswire implements the subset of TLS needed by the paper's
// certificate-inspection baseline (§5.2.1, Table 4): the record layer and
// the ClientHello (with SNI), ServerHello, and Certificate handshake
// messages.
//
// Certificates on the wire are opaque blobs to TLS; real traffic carries
// X.509 DER. Generating full X.509 chains (keys, signatures) is irrelevant
// to the experiment — the baseline only reads the subject name — so the
// synthesizer emits a minimal DER SEQUENCE holding the subject CommonName,
// built with encoding/asn1, and the inspector parses exactly that. The
// substitution is recorded in DESIGN.md.
package tlswire

import (
	"encoding/asn1"
	"encoding/binary"
	"errors"
	"fmt"
)

// TLS record content types.
const (
	RecordHandshake       = 22
	RecordApplicationData = 23
	RecordAlert           = 21
	RecordChangeCipher    = 20
)

// Handshake message types.
const (
	HandshakeClientHello = 1
	HandshakeServerHello = 2
	HandshakeCertificate = 11
)

// VersionTLS12 is the legacy_version written into records.
const VersionTLS12 = 0x0303

// Errors returned by the codec.
var (
	ErrNotTLS    = errors.New("tlswire: not a TLS record")
	ErrTruncated = errors.New("tlswire: truncated")
	ErrMalformed = errors.New("tlswire: malformed handshake")
)

// minimalCert is the DER structure standing in for an X.509 certificate.
type minimalCert struct {
	CommonName string `asn1:"utf8"`
}

// MarshalCertificate encodes a stand-in certificate whose subject common
// name is cn. An empty cn is valid (a nameless certificate).
func MarshalCertificate(cn string) ([]byte, error) {
	return asn1.Marshal(minimalCert{CommonName: cn})
}

// ParseCertificate extracts the subject common name from a stand-in
// certificate produced by MarshalCertificate.
func ParseCertificate(der []byte) (string, error) {
	var c minimalCert
	rest, err := asn1.Unmarshal(der, &c)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if len(rest) != 0 {
		return "", fmt.Errorf("%w: trailing certificate bytes", ErrMalformed)
	}
	return c.CommonName, nil
}

// Record is one TLS record.
type Record struct {
	Type    uint8
	Version uint16
	Payload []byte
}

// AppendRecord serializes one record onto b.
func AppendRecord(b []byte, typ uint8, payload []byte) ([]byte, error) {
	if len(payload) > 1<<14 {
		return b, fmt.Errorf("%w: record payload %d > 2^14", ErrMalformed, len(payload))
	}
	b = append(b, typ)
	b = binary.BigEndian.AppendUint16(b, VersionTLS12)
	b = binary.BigEndian.AppendUint16(b, uint16(len(payload)))
	return append(b, payload...), nil
}

// ReadRecord parses one record from the front of data, returning the record
// and the remaining bytes.
func ReadRecord(data []byte) (Record, []byte, error) {
	if len(data) < 5 {
		return Record{}, data, fmt.Errorf("%w: record header", ErrTruncated)
	}
	typ := data[0]
	if typ < RecordChangeCipher || typ > RecordApplicationData {
		return Record{}, data, fmt.Errorf("%w: content type %d", ErrNotTLS, typ)
	}
	ver := binary.BigEndian.Uint16(data[1:3])
	if ver>>8 != 3 {
		return Record{}, data, fmt.Errorf("%w: version %#04x", ErrNotTLS, ver)
	}
	n := int(binary.BigEndian.Uint16(data[3:5]))
	if 5+n > len(data) {
		return Record{}, data, fmt.Errorf("%w: record body (%d of %d)", ErrTruncated, len(data)-5, n)
	}
	return Record{Type: typ, Version: ver, Payload: data[5 : 5+n]}, data[5+n:], nil
}

// LooksLikeTLS reports whether data plausibly starts a TLS stream — the
// heuristic the flow classifier uses (handshake record, SSL3+ version).
func LooksLikeTLS(data []byte) bool {
	return len(data) >= 3 && data[0] == RecordHandshake && data[1] == 3
}

// ClientHello is the subset of the ClientHello message the pipeline reads
// and writes: random, session id, one cipher suite, and the SNI extension.
type ClientHello struct {
	// ServerName is the server_name extension value; empty means the
	// extension is absent.
	ServerName string
}

// extensionServerName is the SNI extension number (RFC 6066).
const extensionServerName = 0

// Marshal encodes the ClientHello as a handshake message body (without the
// record framing).
func (ch *ClientHello) Marshal() ([]byte, error) {
	var body []byte
	body = binary.BigEndian.AppendUint16(body, VersionTLS12)
	body = append(body, make([]byte, 32)...) // random (zero; irrelevant here)
	body = append(body, 0)                   // session id length
	body = append(body, 0, 2, 0x13, 0x01)    // one cipher suite
	body = append(body, 1, 0)                // compression: null

	var exts []byte
	if ch.ServerName != "" {
		if len(ch.ServerName) > 0xffff-5 {
			return nil, fmt.Errorf("%w: server name too long", ErrMalformed)
		}
		var sni []byte
		// server_name_list: one entry of type host_name(0).
		sni = binary.BigEndian.AppendUint16(sni, uint16(len(ch.ServerName)+3))
		sni = append(sni, 0)
		sni = binary.BigEndian.AppendUint16(sni, uint16(len(ch.ServerName)))
		sni = append(sni, ch.ServerName...)
		exts = binary.BigEndian.AppendUint16(exts, extensionServerName)
		exts = binary.BigEndian.AppendUint16(exts, uint16(len(sni)))
		exts = append(exts, sni...)
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(exts)))
	body = append(body, exts...)
	return wrapHandshake(HandshakeClientHello, body)
}

// parseClientHello decodes a ClientHello handshake body.
func parseClientHello(body []byte) (*ClientHello, error) {
	ch := &ClientHello{}
	// version(2) + random(32)
	if len(body) < 35 {
		return nil, fmt.Errorf("%w: clienthello fixed part", ErrTruncated)
	}
	off := 34
	sidLen := int(body[off])
	off++
	if off+sidLen > len(body) {
		return nil, fmt.Errorf("%w: session id", ErrTruncated)
	}
	off += sidLen
	if off+2 > len(body) {
		return nil, fmt.Errorf("%w: cipher suites", ErrTruncated)
	}
	csLen := int(binary.BigEndian.Uint16(body[off:]))
	off += 2 + csLen
	if off >= len(body) {
		return nil, fmt.Errorf("%w: compression", ErrTruncated)
	}
	compLen := int(body[off])
	off += 1 + compLen
	if off+2 > len(body) {
		return ch, nil // no extensions block: legal
	}
	extLen := int(binary.BigEndian.Uint16(body[off:]))
	off += 2
	if off+extLen > len(body) {
		return nil, fmt.Errorf("%w: extensions", ErrTruncated)
	}
	exts := body[off : off+extLen]
	for len(exts) >= 4 {
		typ := binary.BigEndian.Uint16(exts[0:2])
		l := int(binary.BigEndian.Uint16(exts[2:4]))
		if 4+l > len(exts) {
			return nil, fmt.Errorf("%w: extension body", ErrTruncated)
		}
		if typ == extensionServerName && l >= 5 {
			sni := exts[4 : 4+l]
			// list length(2) + type(1) + name length(2)
			nameLen := int(binary.BigEndian.Uint16(sni[3:5]))
			if 5+nameLen <= len(sni) && sni[2] == 0 {
				ch.ServerName = string(sni[5 : 5+nameLen])
			}
		}
		exts = exts[4+l:]
	}
	return ch, nil
}

// Certificate is the Certificate handshake message: a chain of opaque
// certificate blobs, leaf first.
type Certificate struct {
	Chain [][]byte
}

// Marshal encodes the Certificate handshake message body.
func (c *Certificate) Marshal() ([]byte, error) {
	var list []byte
	for _, cert := range c.Chain {
		if len(cert) > 1<<23 {
			return nil, fmt.Errorf("%w: certificate too large", ErrMalformed)
		}
		list = appendUint24(list, len(cert))
		list = append(list, cert...)
	}
	body := appendUint24(nil, len(list))
	body = append(body, list...)
	return wrapHandshake(HandshakeCertificate, body)
}

func parseCertificate(body []byte) (*Certificate, error) {
	if len(body) < 3 {
		return nil, fmt.Errorf("%w: certificate list length", ErrTruncated)
	}
	listLen := uint24(body)
	body = body[3:]
	if listLen > len(body) {
		return nil, fmt.Errorf("%w: certificate list", ErrTruncated)
	}
	body = body[:listLen]
	c := &Certificate{}
	for len(body) > 0 {
		if len(body) < 3 {
			return nil, fmt.Errorf("%w: certificate entry length", ErrTruncated)
		}
		n := uint24(body)
		body = body[3:]
		if n > len(body) {
			return nil, fmt.Errorf("%w: certificate entry", ErrTruncated)
		}
		c.Chain = append(c.Chain, body[:n])
		body = body[n:]
	}
	return c, nil
}

// ServerHello is a minimal ServerHello used by the synthesizer to complete
// the handshake shape on the wire.
type ServerHello struct{}

// Marshal encodes a fixed minimal ServerHello handshake message.
func (sh *ServerHello) Marshal() ([]byte, error) {
	var body []byte
	body = binary.BigEndian.AppendUint16(body, VersionTLS12)
	body = append(body, make([]byte, 32)...)
	body = append(body, 0)          // session id
	body = append(body, 0x13, 0x01) // cipher
	body = append(body, 0)          // compression
	return wrapHandshake(HandshakeServerHello, body)
}

func wrapHandshake(typ uint8, body []byte) ([]byte, error) {
	if len(body) > 1<<23 {
		return nil, fmt.Errorf("%w: handshake body too large", ErrMalformed)
	}
	out := []byte{typ}
	out = appendUint24(out, len(body))
	return append(out, body...), nil
}

func appendUint24(b []byte, v int) []byte {
	return append(b, byte(v>>16), byte(v>>8), byte(v))
}

func uint24(b []byte) int {
	return int(b[0])<<16 | int(b[1])<<8 | int(b[2])
}

// HandshakeInfo is what the sniffer extracts from the first bytes of a TLS
// stream in each direction.
type HandshakeInfo struct {
	// SNI from the ClientHello, if present (client->server direction).
	SNI string
	// CertificateNames holds the subject common names of the certificate
	// chain, leaf first (server->client direction). Empty when the server
	// sent no Certificate message (e.g. session resumption).
	CertificateNames []string
}

// InspectStream walks the TLS records at the start of a reassembled stream
// prefix and extracts ClientHello SNI and Certificate subject names. It
// stops at the first non-handshake record, a partial record, or malformed
// data, returning whatever it found; inspection is best-effort exactly like
// a passive DPI device.
func InspectStream(data []byte) HandshakeInfo {
	var info HandshakeInfo
	for len(data) > 0 {
		rec, rest, err := ReadRecord(data)
		if err != nil || rec.Type != RecordHandshake {
			return info
		}
		hs := rec.Payload
		for len(hs) >= 4 {
			typ := hs[0]
			n := uint24(hs[1:4])
			if 4+n > len(hs) {
				return info
			}
			body := hs[4 : 4+n]
			switch typ {
			case HandshakeClientHello:
				if ch, err := parseClientHello(body); err == nil {
					info.SNI = ch.ServerName
				}
			case HandshakeCertificate:
				if c, err := parseCertificate(body); err == nil {
					for _, der := range c.Chain {
						if cn, err := ParseCertificate(der); err == nil {
							info.CertificateNames = append(info.CertificateNames, cn)
						}
					}
				}
			}
			hs = hs[4+n:]
		}
		data = rest
	}
	return info
}
