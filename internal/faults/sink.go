package faults

import (
	"time"

	"repro/internal/core"
	"repro/internal/flowdb"
)

// SinkConfig arms the fault kinds a Sink injects into the consumer side
// of the pipeline. Schedules see the flow-callback index (the n-th OnFlow
// call) and the flow's trace time.
type SinkConfig struct {
	// Block makes the firing OnFlow call sleep BlockFor before delivering
	// — a wedged downstream consumer. Long enough blocks are exactly what
	// ServeConfig.DrainTimeout exists to bound.
	Block    Schedule
	BlockFor time.Duration

	// Err arms a deferred failure: when it fires on a flow callback the
	// wrapper records ErrValue (default ErrSinkInjected) and Close returns
	// it — the Sink interface's only error path.
	Err      Schedule
	ErrValue error
}

// Sink wraps a pipeline sink with schedule-driven fault injection. The
// engine serializes all Sink calls (see core.Sink), so the wrapper keeps
// plain counters.
type Sink struct {
	inner core.Sink
	cfg   SinkConfig
	errV  error
	off   bool
	n     uint64
	armed error // recorded by a firing Err schedule; returned by Close
}

// NewSink wraps inner (which may be nil) with the faults cfg arms. An
// unarmed config is a transparent pass-through.
func NewSink(inner core.Sink, cfg SinkConfig) *Sink {
	s := &Sink{inner: inner, cfg: cfg, off: cfg.Block == nil && cfg.Err == nil}
	s.errV = cfg.ErrValue
	if s.errV == nil {
		s.errV = ErrSinkInjected
	}
	return s
}

// OnTag implements core.Sink.
//
//dnhunter:hotpath
func (s *Sink) OnTag(e core.TagEvent) {
	if s.inner != nil {
		s.inner.OnTag(e)
	}
}

// OnDNSResponse implements core.Sink.
//
//dnhunter:hotpath
func (s *Sink) OnDNSResponse(e core.DNSEvent) {
	if s.inner != nil {
		s.inner.OnDNSResponse(e)
	}
}

// OnFlow implements core.Sink; it is the injection point.
//
//dnhunter:hotpath
func (s *Sink) OnFlow(f flowdb.LabeledFlow) {
	if !s.off {
		n := s.n
		s.n++
		if fire(s.cfg.Block, n, f.End) {
			time.Sleep(s.cfg.BlockFor)
		}
		if s.armed == nil && fire(s.cfg.Err, n, f.End) {
			s.armed = s.errV
		}
	}
	if s.inner != nil {
		s.inner.OnFlow(f)
	}
}

// Close implements core.Sink: it closes the wrapped sink and returns the
// armed injected error, if any (the inner sink's own error wins).
func (s *Sink) Close() error {
	var err error
	if s.inner != nil {
		err = s.inner.Close()
	}
	if err == nil {
		err = s.armed
	}
	return err
}

var _ core.Sink = (*Sink)(nil)
