package faults

import (
	"io"
	"time"

	"repro/internal/netio"
)

// SourceConfig arms the fault kinds a Source injects. Every field pairs a
// Schedule (nil = never) with the fault's parameters. Two operation
// counters drive the schedules:
//
//   - stream-level faults (Err, Stall, ShortBlock) see the read-call
//     index: the n-th Next/ReadBlock/ReadBlockRef call, whatever the
//     caller's batching;
//   - frame-level faults (EOF, Truncate, ClockBack, ClockSkew) see the
//     packet index: the n-th packet delivered, regardless of how calls
//     blocked them together.
//
// Both counters advance deterministically with the stream, so a (config,
// seed) pair replays the exact same fault sequence.
type SourceConfig struct {
	// Err injects a mid-stream read error: the firing call returns
	// ErrValue (default ErrInjected, which is transient) without consuming
	// input. The stream is NOT poisoned — a retrying caller (e.g. the
	// serve supervisor) resumes where it left off.
	Err      Schedule
	ErrValue error

	// EOF ends the stream early: the firing packet index and everything
	// after it are cut, and the source reports io.EOF from then on. The
	// delivered prefix is byte-identical to the unfaulted stream's first n
	// packets — the "dying feed" fault.
	EOF Schedule

	// Stall sleeps StallFor at the top of the firing read call — an
	// exporter latency spike. Trace timestamps are unaffected.
	Stall    Schedule
	StallFor time.Duration

	// ShortBlock caps the firing block read at one packet, exercising the
	// engine's short-read handling (per-call batching collapses, refcount
	// traffic per block rises). No packets are lost.
	ShortBlock Schedule

	// Truncate cuts the firing packet's payload to TruncateTo bytes — a
	// snaplen-truncated capture frame. Parsers must survive it.
	Truncate   Schedule
	TruncateTo int

	// ClockBack jumps the firing packet's timestamp backward by
	// ClockBackBy (clamped at zero): a capture clock stepping backward.
	ClockBack   Schedule
	ClockBackBy time.Duration

	// ClockSkew jumps the firing packet's timestamp forward by
	// ClockSkewBy: a skew burst. Fired via After(d)+EveryP it models a
	// clock that degrades mid-trace.
	ClockSkew   Schedule
	ClockSkewBy time.Duration
}

// armed reports whether any schedule is set; an unarmed Source is a pure
// pass-through.
func (c *SourceConfig) armed() bool {
	return c.Err != nil || c.EOF != nil || c.Stall != nil || c.ShortBlock != nil ||
		c.Truncate != nil || c.ClockBack != nil || c.ClockSkew != nil
}

// Source wraps a packet source with schedule-driven fault injection. It
// implements netio.PacketSource, netio.BlockSource, and
// netio.BlockRefSource, so it can sit at the engine's read seam in any
// mode (including serve) without changing the read path shape. Like the
// sources it wraps, it is not safe for concurrent use.
type Source struct {
	src netio.PacketSource
	bs  netio.BlockSource // nil when src lacks block reads
	ref *netio.RefAdapter
	cfg SourceConfig
	err error // resolved ErrValue

	off   bool   // nothing armed: delegate with zero bookkeeping
	done  bool   // EOF fault latched
	calls uint64 // read-call index (stream-level schedules)
	pkts  uint64 // packet index (frame-level schedules)
	at    time.Duration
}

// NewSource wraps src with the faults cfg arms. With an empty config the
// wrapper is transparent: identical packets, timestamps, block handles,
// and errors, at one boolean test of overhead per call.
func NewSource(src netio.PacketSource, cfg SourceConfig) *Source {
	s := &Source{src: src, cfg: cfg, off: !cfg.armed()}
	if bs, ok := src.(netio.BlockSource); ok {
		s.bs = bs
	}
	s.ref = netio.NewRefAdapter(src, nil)
	s.err = cfg.ErrValue
	if s.err == nil {
		s.err = ErrInjected
	}
	return s
}

// enter runs the stream-level faults for one read call and reports
// whether the call should abort with err (errors.Is-able against
// ErrValue) before touching the wrapped source.
//
//dnhunter:hotpath
func (s *Source) enter() (short bool, err error) {
	n := s.calls
	s.calls++
	if fire(s.cfg.Stall, n, s.at) {
		time.Sleep(s.cfg.StallFor)
	}
	if s.done {
		return false, io.EOF
	}
	if fire(s.cfg.Err, n, s.at) {
		return false, s.err
	}
	return fire(s.cfg.ShortBlock, n, s.at), nil
}

// admit applies the frame-level faults to the next delivered packet,
// advancing the packet index. It reports false when the EOF fault fires:
// the packet (and the rest of the stream) must be dropped.
//
//dnhunter:hotpath
func (s *Source) admit(p *netio.Packet) bool {
	n := s.pkts
	if fire(s.cfg.EOF, n, p.Timestamp) {
		s.done = true
		return false
	}
	s.pkts++
	if fire(s.cfg.Truncate, n, p.Timestamp) && len(p.Data) > s.cfg.TruncateTo {
		p.Data = p.Data[:s.cfg.TruncateTo]
	}
	if fire(s.cfg.ClockBack, n, p.Timestamp) {
		if p.Timestamp > s.cfg.ClockBackBy {
			p.Timestamp -= s.cfg.ClockBackBy
		} else {
			p.Timestamp = 0
		}
	}
	if fire(s.cfg.ClockSkew, n, p.Timestamp) {
		p.Timestamp += s.cfg.ClockSkewBy
	}
	if p.Timestamp > s.at {
		s.at = p.Timestamp
	}
	return true
}

// Next implements netio.PacketSource.
//
//dnhunter:hotpath
func (s *Source) Next() (netio.Packet, error) {
	if s.off {
		return s.src.Next()
	}
	if _, err := s.enter(); err != nil {
		return netio.Packet{}, err
	}
	pkt, err := s.src.Next()
	if err != nil {
		return pkt, err
	}
	if !s.admit(&pkt) {
		return netio.Packet{}, io.EOF
	}
	return pkt, nil
}

// fill reads one block from the wrapped source, falling back to a single
// Next when it lacks block reads (Next's buffer-reuse contract forbids
// batching it).
//
//dnhunter:hotpath
func (s *Source) fill(dst []netio.Packet) (int, error) {
	if s.bs != nil {
		return s.bs.ReadBlock(dst)
	}
	pkt, err := s.src.Next()
	if err != nil {
		return 0, err
	}
	dst[0] = pkt
	return 1, nil
}

// ReadBlock implements netio.BlockSource.
//
//dnhunter:hotpath
func (s *Source) ReadBlock(dst []netio.Packet) (int, error) {
	if s.off {
		if s.bs != nil {
			return s.bs.ReadBlock(dst)
		}
		return s.fill(dst)
	}
	short, err := s.enter()
	if err != nil {
		return 0, err
	}
	if short && len(dst) > 1 {
		dst = dst[:1]
	}
	n, err := s.fill(dst)
	n = s.admitBlock(dst, n)
	if s.done && n == 0 {
		return 0, io.EOF
	}
	return n, err
}

// ReadBlockRef implements netio.BlockRefSource: block handles pass
// through untouched (truncation merely re-slices packet views into the
// block), so the refcount discipline under test is the engine's own.
//
//dnhunter:hotpath
func (s *Source) ReadBlockRef(dst []netio.Packet) (int, *netio.Block, error) {
	if s.off {
		return s.ref.ReadBlockRef(dst)
	}
	short, err := s.enter()
	if err != nil {
		return 0, nil, err
	}
	if short && len(dst) > 1 {
		dst = dst[:1]
	}
	n, blk, err := s.ref.ReadBlockRef(dst)
	n = s.admitBlock(dst, n)
	if n == 0 && blk != nil {
		// Every delivered packet was cut by the EOF fault; the caller
		// never sees the block, so the read's reference dies here.
		blk.Release(1)
		blk = nil
	}
	if s.done && n == 0 {
		return 0, nil, io.EOF
	}
	return n, blk, err
}

// admitBlock runs admit over a just-read block, cutting it short when the
// EOF fault fires mid-block.
//
//dnhunter:hotpath
func (s *Source) admitBlock(dst []netio.Packet, n int) int {
	for i := 0; i < n; i++ {
		if !s.admit(&dst[i]) {
			return i
		}
	}
	return n
}

// Compile-time interface checks.
var (
	_ netio.PacketSource   = (*Source)(nil)
	_ netio.BlockSource    = (*Source)(nil)
	_ netio.BlockRefSource = (*Source)(nil)
)
