package faults

import "os"

// Checkpoint-file corruption: the restore path's fault surface is a file
// that was half-written, bit-rotted, or produced by a future release.
// These helpers transform byte images deterministically (seeded where a
// choice exists) so a corrupting chaos run replays exactly.

// FlipBit returns a copy of data with one bit flipped, chosen
// deterministically from seed. Empty input is returned as an empty copy.
func FlipBit(data []byte, seed uint64) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	bit := splitmix64(seed) % uint64(len(out)*8)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// FlipBitAt returns a copy of data with bit `bit` (byte-major,
// LSB-first) flipped — for tests that must corrupt a known region, e.g.
// a checkpoint body rather than its magic.
func FlipBitAt(data []byte, bit int) []byte {
	out := append([]byte(nil), data...)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// TruncateTail returns a copy of data with n trailing bytes removed — a
// write that died before its fsync. n past len(data) yields an empty
// slice.
func TruncateTail(data []byte, n int) []byte {
	if n >= len(data) {
		return []byte{}
	}
	return append([]byte(nil), data[:len(data)-n]...)
}

// SetByte returns a copy of data with data[off] replaced by v — e.g.
// forging a checkpoint's version byte to rehearse a downgrade.
func SetByte(data []byte, off int, v byte) []byte {
	out := append([]byte(nil), data...)
	out[off] = v
	return out
}

// CorruptFile rewrites path with transform applied to its current bytes.
// The write is direct (no temp-and-rename): corruption does not deserve
// the atomicity the real checkpoint writer guarantees.
func CorruptFile(path string, transform func([]byte) []byte) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return os.WriteFile(path, transform(data), 0o644)
}
