package faults_test

// The chaos suite: every synthetic scenario is driven through the full
// serve pipeline under randomized-but-replayable fault schedules, and the
// run must end cleanly — no deadlock, a drain inside DrainTimeout, a
// balanced block pool, and (for prefix-cut faults) output byte-identical
// to an unfaulted run over the same prefix. Any failing seed replays
// exactly: CHAOS_SEED=<n> go test ./internal/faults -run Randomized.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netio"
	"repro/internal/synth"
)

// chaosFaults derives a full fault configuration from one seed. Every
// schedule is keyed off the seed, so a (scenario, seed) pair replays the
// identical fault sequence.
func chaosFaults(seed uint64) faults.SourceConfig {
	return faults.SourceConfig{
		Err:         faults.EveryP(0.01, seed),
		Stall:       faults.EveryP(0.005, seed+1),
		StallFor:    200 * time.Microsecond,
		ShortBlock:  faults.EveryP(0.05, seed+2),
		Truncate:    faults.EveryP(0.002, seed+3),
		TruncateTo:  20,
		ClockBack:   faults.EveryP(0.001, seed+4),
		ClockBackBy: 2 * time.Second,
		ClockSkew:   faults.EveryP(0.001, seed+5),
		ClockSkewBy: 5 * time.Second,
	}
}

// chaosServe runs one scenario through serve mode under the seed's fault
// schedule and asserts the graceful-degradation invariants.
func chaosServe(t *testing.T, sc synth.Scenario, seed uint64) {
	t.Helper()
	tr := synth.Generate(sc)
	before := netio.DefaultBlockPool().Stats()

	src := faults.NewSource(tr.Source(), chaosFaults(seed))
	sink := faults.NewSink(nil, faults.SinkConfig{
		Block:    faults.EveryP(0.002, seed+6),
		BlockFor: 100 * time.Microsecond,
	})
	srv := core.NewServer(
		core.EngineConfig{Shards: 2, Sink: sink},
		core.ServeConfig{
			Window:       time.Minute,
			DrainTimeout: 10 * time.Second,
			Restart: &core.RestartPolicy{
				MaxRestarts: 1 << 20, // chaos wants recovery, not budget death
				BaseBackoff: time.Millisecond,
				MaxBackoff:  2 * time.Millisecond,
				Seed:        seed,
			},
		},
	)

	start := time.Now()
	rep, err := srv.Serve(context.Background(), src)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("seed %d: Serve = %v", seed, err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("seed %d: run took %v — drain bound not honored", seed, elapsed)
	}
	if rep.Packets == 0 {
		t.Fatalf("seed %d: no packets survived the fault schedule", seed)
	}

	after := netio.DefaultBlockPool().Stats()
	if dg, dr := after.Gets-before.Gets, after.Retired-before.Retired; dg != dr {
		t.Fatalf("seed %d: block pool leaked: %d gets vs %d retires", seed, dg, dr)
	}
}

// TestChaosPinnedCorpus is the CI corpus: every paper scenario plus the
// quick trace, each under a pinned fault seed. New failures here are
// regressions, not discoveries.
func TestChaosPinnedCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos corpus is not -short")
	}
	t.Run("quick", func(t *testing.T) { chaosServe(t, synth.QuickScenario(1), 101) })
	for i, name := range synth.ScenarioNames {
		t.Run(name, func(t *testing.T) {
			chaosServe(t, synth.NamedScenario(name, 0.05, uint64(i+1)), uint64(200+i))
		})
	}
}

// TestChaosRandomized runs a short randomized matrix. The seed comes from
// CHAOS_SEED when set (replaying a CI failure) and the wall clock
// otherwise, and is always logged so a red run is reproducible.
func TestChaosRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is not -short")
	}
	seed := uint64(time.Now().UnixNano())
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		v, err := strconv.ParseUint(env, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", env, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d", seed)
	for round := uint64(0); round < 3; round++ {
		chaosServe(t, synth.QuickScenario(seed+round), seed+round*1000)
	}
}

// TestChaosPrefixEquivalence: a mid-stream EOF fault At(N) must be
// indistinguishable from a capture that simply ended after N packets —
// same stats, byte-identical CSV.
func TestChaosPrefixEquivalence(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(21))
	cut := len(tr.Packets) / 2

	eng := func() *core.Engine { return core.NewEngine(core.EngineConfig{}) }
	faulted, err := eng().Run(context.Background(),
		faults.NewSource(tr.Source(), faults.SourceConfig{EOF: faults.At(uint64(cut))}))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := eng().Run(context.Background(),
		netio.NewSlicePacketSource(tr.Packets[:cut]))
	if err != nil {
		t.Fatal(err)
	}

	if faulted.Stats != clean.Stats {
		t.Errorf("stats diverge:\nfaulted %+v\nclean   %+v", faulted.Stats, clean.Stats)
	}
	var fb, cb bytes.Buffer
	if err := faulted.DB.WriteCSV(&fb); err != nil {
		t.Fatal(err)
	}
	if err := clean.DB.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb.Bytes(), cb.Bytes()) {
		t.Error("CSV output diverges between the EOF fault and the true prefix")
	}
}

// TestChaosCheckpointCorruption: seeded corruption of a real checkpoint
// file must always yield a counted fresh start, never a crash or a silent
// restore of damaged state.
func TestChaosCheckpointCorruption(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(22))
	path := filepath.Join(t.TempDir(), "clist.ckpt")
	scfg := core.ServeConfig{Window: time.Minute, DrainTimeout: 10 * time.Second, CheckpointPath: path}

	// Write a genuine checkpoint once.
	if _, err := core.NewServer(core.EngineConfig{}, scfg).Serve(
		context.Background(), tr.Source()); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func([]byte) []byte{
		"bitflip":   func(b []byte) []byte { return faults.FlipBit(b, 7) },
		"truncated": func(b []byte) []byte { return faults.TruncateTail(b, len(b)/2) },
		"future":    func(b []byte) []byte { return faults.SetByte(b, 8, 0x7f) },
	}
	for name, transform := range corruptions {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, pristine, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := faults.CorruptFile(path, transform); err != nil {
				t.Fatal(err)
			}
			srv := core.NewServer(core.EngineConfig{}, scfg)
			rep, err := srv.Serve(context.Background(), tr.Source())
			if err != nil {
				t.Fatalf("Serve over corrupt checkpoint: %v", err)
			}
			if rep.FreshStart == "" || rep.RestoredEntries != 0 {
				t.Fatalf("corruption not answered by a fresh start: %+v", rep)
			}
			if !srv.Metrics().Degraded() {
				t.Error("fresh start did not mark the run degraded")
			}
		})
	}
}
