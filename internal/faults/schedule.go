// Package faults is the deterministic fault-injection layer: wrappers for
// every pipeline seam (packet sources, sinks, checkpoint files, trace
// clocks) whose misbehavior is driven by replayable Schedules. The paper's
// DN-Hunter runs on live vantage-point links where truncated captures,
// stalled exporters, and dying feeds are routine; this package lets the
// test suite rehearse all of them on demand — and, because every schedule
// is a pure function of its construction parameters and an operation
// index, any observed failure replays exactly from its seed.
//
// Nothing here runs in production builds by default: a wrapper with no
// schedules armed is a pure pass-through (one boolean test per call, no
// allocation — enforced by the dnlint hotpath analyzer).
package faults

import "time"

// Schedule decides, deterministically, whether a fault fires on a given
// operation. Implementations must be pure functions of their construction
// parameters, the operation index n, and the trace time at — never of
// wall-clock time or shared state — so a fault run replays exactly.
//
// What "operation" means is up to the injection point: the Source wrapper
// feeds read-call indices to stream-level schedules (Err, Stall,
// ShortBlock) and packet indices to frame-level ones (EOF, Truncate,
// ClockBack, ClockSkew); see SourceConfig. A nil Schedule never fires.
type Schedule interface {
	// Fire reports whether the fault fires for operation n (0-based,
	// monotonically increasing) at trace time at.
	Fire(n uint64, at time.Duration) bool
}

// fire is the nil-tolerant helper every wrapper uses.
//
//dnhunter:hotpath
func fire(s Schedule, n uint64, at time.Duration) bool {
	return s != nil && s.Fire(n, at)
}

// atSchedule fires exactly once, on operation N.
type atSchedule uint64

//dnhunter:hotpath
func (a atSchedule) Fire(n uint64, _ time.Duration) bool { return n == uint64(a) }

// At returns a schedule that fires on exactly operation n (0-based): the
// n-th packet for frame-level faults, the n-th read call for stream-level
// ones.
func At(n uint64) Schedule { return atSchedule(n) }

// afterSchedule fires on every operation at or past trace time d.
type afterSchedule time.Duration

//dnhunter:hotpath
func (a afterSchedule) Fire(_ uint64, at time.Duration) bool { return at >= time.Duration(a) }

// After returns a schedule that fires on every operation whose trace time
// is at or past d. Combine with a probabilistic wrapper-side effect (e.g.
// a clock-skew burst) to model a failure that sets in mid-trace.
func After(d time.Duration) Schedule { return afterSchedule(d) }

// everyP fires each operation independently with probability p, keyed on
// (seed, n) so the firing pattern is a fixed property of the seed.
type everyP struct {
	threshold uint64
	seed      uint64
}

//dnhunter:hotpath
func (e everyP) Fire(n uint64, _ time.Duration) bool {
	return splitmix64(e.seed^(n*0x9e3779b97f4a7c15)) < e.threshold
}

// EveryP returns a schedule that fires on each operation independently
// with probability p, deterministically keyed on (seed, operation index).
// p <= 0 never fires; p >= 1 always fires. Two schedules with the same
// seed fire identically; vary the seed to decorrelate fault types.
func EveryP(p float64, seed uint64) Schedule {
	switch {
	case p <= 0:
		return everyP{threshold: 0, seed: seed}
	case p >= 1:
		return everyP{threshold: ^uint64(0), seed: seed}
	}
	return everyP{threshold: uint64(p * float64(1<<63) * 2), seed: seed}
}

// splitmix64 is the 64-bit finalizer from Vigna's SplitMix64 generator:
// one invertible mixing pass good enough to decorrelate consecutive
// operation indices into an unbiased threshold test.
//
//dnhunter:hotpath
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
