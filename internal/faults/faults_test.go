package faults

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flowdb"
	"repro/internal/netio"
	"repro/internal/synth"
)

// TestScheduleAt: At(n) fires on exactly operation n.
func TestScheduleAt(t *testing.T) {
	s := At(3)
	for n := uint64(0); n < 10; n++ {
		if got, want := s.Fire(n, 0), n == 3; got != want {
			t.Errorf("At(3).Fire(%d) = %v, want %v", n, got, want)
		}
	}
}

// TestScheduleAfter: After(d) keys on trace time, not operation index.
func TestScheduleAfter(t *testing.T) {
	s := After(time.Second)
	if s.Fire(0, 999*time.Millisecond) {
		t.Error("fired before the threshold")
	}
	if !s.Fire(0, time.Second) || !s.Fire(1000, 2*time.Second) {
		t.Error("did not fire at/past the threshold")
	}
}

// TestScheduleEveryP: the firing pattern is a pure function of (p, seed),
// edge probabilities behave, and the empirical rate tracks p.
func TestScheduleEveryP(t *testing.T) {
	const N = 20000
	a, b := EveryP(0.1, 42), EveryP(0.1, 42)
	other := EveryP(0.1, 43)
	fires, diverged := 0, false
	for n := uint64(0); n < N; n++ {
		fa := a.Fire(n, 0)
		if fa != b.Fire(n, 0) {
			t.Fatalf("same (p, seed) diverged at n=%d", n)
		}
		if fa != other.Fire(n, 0) {
			diverged = true
		}
		if fa {
			fires++
		}
	}
	if !diverged {
		t.Error("different seeds produced identical firing patterns")
	}
	if rate := float64(fires) / N; rate < 0.08 || rate > 0.12 {
		t.Errorf("EveryP(0.1) empirical rate %.4f, want ~0.1", rate)
	}
	for n := uint64(0); n < 100; n++ {
		if EveryP(0, 1).Fire(n, 0) {
			t.Fatal("p=0 fired")
		}
		if !EveryP(1, 1).Fire(n, 0) {
			t.Fatal("p=1 did not fire")
		}
	}
	if fire(nil, 0, 0) {
		t.Error("nil schedule fired")
	}
}

// TestSourceUnarmedTransparent: an empty config is a pure pass-through —
// identical packets, timestamps, and stream end.
func TestSourceUnarmedTransparent(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(11))
	faulty := NewSource(tr.Source(), SourceConfig{})
	direct := tr.Source()
	for i := 0; ; i++ {
		wp, werr := direct.Next()
		gp, gerr := faulty.Next()
		if !errors.Is(gerr, werr) && (gerr != nil) != (werr != nil) {
			t.Fatalf("packet %d: err %v, want %v", i, gerr, werr)
		}
		if werr != nil {
			break
		}
		if gp.Timestamp != wp.Timestamp || !bytes.Equal(gp.Data, wp.Data) {
			t.Fatalf("packet %d differs through an unarmed wrapper", i)
		}
	}
}

// TestSourceErrResumable: a firing Err schedule returns the injected
// error once without consuming input; the retried stream is complete.
func TestSourceErrResumable(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(12))
	src := NewSource(tr.Source(), SourceConfig{Err: At(5)})
	got, injected := 0, 0
	for {
		_, err := src.Next()
		if errors.Is(err, ErrInjected) {
			injected++
			continue // a supervisor would back off and retry; we just retry
		}
		if err != nil {
			break
		}
		got++
	}
	if injected != 1 {
		t.Errorf("injected %d errors, want exactly 1 (read-call keyed)", injected)
	}
	if got != len(tr.Packets) {
		t.Errorf("delivered %d packets, want %d (error must not consume input)", got, len(tr.Packets))
	}
}

// TestSourceEOFPrefix: EOF At(N) delivers a byte-identical prefix of the
// unfaulted stream, then clean EOF forever.
func TestSourceEOFPrefix(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(13))
	const cut = 100
	src := NewSource(tr.Source(), SourceConfig{EOF: At(cut)})
	var got []netio.Packet
	for {
		p, err := src.Next()
		if err != nil {
			break
		}
		p.Data = append([]byte(nil), p.Data...)
		got = append(got, p)
	}
	if len(got) != cut {
		t.Fatalf("delivered %d packets, want %d", len(got), cut)
	}
	for i, p := range got {
		if p.Timestamp != tr.Packets[i].Timestamp || !bytes.Equal(p.Data, tr.Packets[i].Data) {
			t.Fatalf("packet %d not byte-identical to the unfaulted prefix", i)
		}
	}
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("post-cut read = %v, want io.EOF", err)
	}
}

// TestSourceFrameFaults: truncation and clock faults hit exactly the
// scheduled packet.
func TestSourceFrameFaults(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(14))
	src := NewSource(tr.Source(), SourceConfig{
		Truncate: At(3), TruncateTo: 7,
		ClockBack: At(5), ClockBackBy: time.Hour * 1000, // clamps to 0
		ClockSkew: At(6), ClockSkewBy: time.Minute,
	})
	for i := 0; i < 8; i++ {
		p, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		switch i {
		case 3:
			if len(p.Data) != 7 {
				t.Errorf("packet 3 len %d, want truncated to 7", len(p.Data))
			}
		case 5:
			if p.Timestamp != 0 {
				t.Errorf("packet 5 timestamp %v, want clamped to 0", p.Timestamp)
			}
		case 6:
			if want := tr.Packets[6].Timestamp + time.Minute; p.Timestamp != want {
				t.Errorf("packet 6 timestamp %v, want skewed to %v", p.Timestamp, want)
			}
		default:
			if p.Timestamp != tr.Packets[i].Timestamp || len(p.Data) != len(tr.Packets[i].Data) {
				t.Errorf("unscheduled packet %d was modified", i)
			}
		}
	}
}

// TestSourceShortBlock: a firing ShortBlock caps the read at one packet
// without losing any.
func TestSourceShortBlock(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(15))
	src := NewSource(tr.Source(), SourceConfig{ShortBlock: At(0)})
	dst := make([]netio.Packet, 64)
	n, err := src.ReadBlock(dst)
	if err != nil || n != 1 {
		t.Fatalf("short block read = (%d, %v), want (1, nil)", n, err)
	}
	total := n
	for {
		n, err := src.ReadBlock(dst)
		total += n
		if err != nil {
			break
		}
	}
	if total != len(tr.Packets) {
		t.Errorf("delivered %d packets, want %d", total, len(tr.Packets))
	}
}

// TestTransientMarker: the Transient wrapper satisfies the supervisor's
// default classifier and keeps errors.Is against the cause.
func TestTransientMarker(t *testing.T) {
	cause := errors.New("socket reset")
	err := Transient(cause)
	if !core.DefaultClassify(err) {
		t.Error("Transient error classified fatal")
	}
	if !errors.Is(err, cause) {
		t.Error("Transient broke errors.Is to the cause")
	}
	if core.DefaultClassify(cause) {
		t.Error("unmarked error classified transient")
	}
	if !core.DefaultClassify(ErrInjected) || !core.DefaultClassify(ErrSinkInjected) {
		t.Error("package sentinels must be transient")
	}
}

// countingSink records OnFlow deliveries behind the fault wrapper.
type countingSink struct{ flows int }

func (c *countingSink) OnTag(core.TagEvent)         {}
func (c *countingSink) OnDNSResponse(core.DNSEvent) {}
func (c *countingSink) OnFlow(flowdb.LabeledFlow)   { c.flows++ }
func (c *countingSink) Close() error                { return nil }

// TestSinkFaults: a firing Err schedule surfaces at Close; every flow
// still reaches the inner sink.
func TestSinkFaults(t *testing.T) {
	inner := &countingSink{}
	s := NewSink(inner, SinkConfig{Err: At(1), Block: At(0), BlockFor: time.Microsecond})
	for i := 0; i < 5; i++ {
		s.OnFlow(flowdb.LabeledFlow{})
	}
	if inner.flows != 5 {
		t.Errorf("inner sink saw %d flows, want 5 (faults must not drop)", inner.flows)
	}
	if err := s.Close(); !errors.Is(err, ErrSinkInjected) {
		t.Errorf("Close = %v, want ErrSinkInjected", err)
	}
	clean := NewSink(&countingSink{}, SinkConfig{})
	clean.OnFlow(flowdb.LabeledFlow{})
	if err := clean.Close(); err != nil {
		t.Errorf("unarmed sink Close = %v", err)
	}
}

// TestCorruptHelpers: deterministic byte-image transforms.
func TestCorruptHelpers(t *testing.T) {
	data := []byte("checkpoint body bytes")
	a, b := FlipBit(data, 99), FlipBit(data, 99)
	if !bytes.Equal(a, b) {
		t.Error("FlipBit not deterministic for a fixed seed")
	}
	diff := 0
	for i := range a {
		if a[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("FlipBit changed %d bytes, want exactly 1", diff)
	}
	if got := TruncateTail(data, 5); len(got) != len(data)-5 || !bytes.Equal(got, data[:len(data)-5]) {
		t.Error("TruncateTail wrong")
	}
	if got := TruncateTail(data, len(data)+10); len(got) != 0 {
		t.Error("over-truncation must yield empty")
	}
	if got := SetByte(data, 0, 'X'); got[0] != 'X' || data[0] == 'X' {
		t.Error("SetByte must copy")
	}
	if got := FlipBitAt(data, 9); got[1] != data[1]^2 {
		t.Error("FlipBitAt flipped the wrong bit")
	}

	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CorruptFile(path, func(b []byte) []byte { return TruncateTail(b, 3) }); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, data[:len(data)-3]) {
		t.Error("CorruptFile did not apply the transform")
	}
}
