package faults

import "errors"

// transientErr marks an error as transient: core.DefaultClassify (and any
// classifier honoring the convention) treats a source that returned it as
// restartable rather than dead.
type transientErr struct{ err error }

func (e transientErr) Error() string   { return e.err.Error() }
func (e transientErr) Unwrap() error   { return e.err }
func (e transientErr) Transient() bool { return true }

// Transient wraps err so it reports Transient() == true through any
// errors.As walk — the marker the serve-mode source supervisor's default
// classifier keys restarts on. errors.Is against the wrapped error still
// holds.
func Transient(err error) error { return transientErr{err: err} }

// ErrInjected is the default error a firing SourceConfig.Err schedule
// returns. It is transient, so a supervised source recovers from it by
// restarting; set SourceConfig.ErrValue to a non-transient error to
// rehearse fatal classification instead.
var ErrInjected = Transient(errors.New("faults: injected read error"))

// ErrSinkInjected is the default error a firing SinkConfig.Err schedule
// arms; the wrapped sink's Close returns it.
var ErrSinkInjected = Transient(errors.New("faults: injected sink error"))
