package netio

import (
	"encoding/binary"
	"testing"

	"repro/internal/layers"
)

// Frame builders for the peek/parse agreement corpus.

func ip4Frame(proto byte, transport []byte) []byte {
	f := make([]byte, 14+20+len(transport))
	binary.BigEndian.PutUint16(f[12:14], 0x0800)
	ip := f[14:]
	ip[0] = 0x45
	binary.BigEndian.PutUint16(ip[2:4], uint16(20+len(transport)))
	ip[8] = 64 // TTL
	ip[9] = proto
	copy(ip[12:16], []byte{10, 0, 0, 1})
	copy(ip[16:20], []byte{10, 0, 1, 2})
	copy(ip[20:], transport)
	return f
}

func ip6Frame(proto byte, transport []byte) []byte {
	f := make([]byte, 14+40+len(transport))
	binary.BigEndian.PutUint16(f[12:14], 0x86DD)
	ip := f[14:]
	ip[0] = 0x60
	binary.BigEndian.PutUint16(ip[4:6], uint16(len(transport)))
	ip[6] = proto
	ip[7] = 64 // hop limit
	ip[23] = 1 // src ::1
	ip[39] = 2 // dst ::2
	copy(ip[40:], transport)
	return f
}

func udpSeg(sport, dport uint16, payload []byte) []byte {
	s := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint16(s[0:2], sport)
	binary.BigEndian.PutUint16(s[2:4], dport)
	binary.BigEndian.PutUint16(s[4:6], uint16(8+len(payload)))
	copy(s[8:], payload)
	return s
}

func tcpSeg(sport, dport uint16, payload []byte) []byte {
	s := make([]byte, 20+len(payload))
	binary.BigEndian.PutUint16(s[0:2], sport)
	binary.BigEndian.PutUint16(s[2:4], dport)
	s[12] = 5 << 4 // data offset: no options
	copy(s[20:], payload)
	return s
}

// dnsResponse is a minimal DNS message with the QR bit set.
func dnsResponse() []byte {
	m := make([]byte, 12)
	m[2] = 0x84
	return m
}

// FuzzPeekMatchesParse pins the contract PeekFrame documents: ok=true
// exactly when a full layers.Parse succeeds (i.e. yields TCP or UDP), and
// on success the routed endpoints, ports, protocol, and DNS QR
// classification agree with the parse the owning dispatcher performs later.
// Any divergence here would split the striped pipeline's routing from its
// parsing and break reader-count equivalence.
func FuzzPeekMatchesParse(f *testing.F) {
	f.Add(ip4Frame(17, udpSeg(53, 40000, dnsResponse())))   // DNS response
	f.Add(ip4Frame(17, udpSeg(40000, 53, make([]byte, 12)))) // DNS query (QR clear)
	f.Add(ip4Frame(17, udpSeg(53, 40000, []byte{1})))        // runt DNS payload
	f.Add(ip4Frame(6, tcpSeg(443, 50000, []byte("hello"))))
	f.Add(ip6Frame(17, udpSeg(53, 40001, dnsResponse())))
	f.Add(ip6Frame(6, tcpSeg(80, 50001, nil)))
	f.Add(ip4Frame(1, []byte{8, 0, 0, 0}))                 // ICMP: parse rejects
	f.Add(ip4Frame(6, tcpSeg(1, 2, nil))[:14+20+19])       // truncated TCP header
	f.Add(ip4Frame(17, udpSeg(1, 2, nil))[:14+20+7])       // truncated UDP header
	f.Add([]byte{0, 1, 2, 3})                              // runt frame
	f.Add(append([]byte(nil), make([]byte, 60)...))        // zero EtherType
	bad := ip4Frame(17, udpSeg(1, 2, nil))
	bad[14] = 0x43 // IHL < 20
	f.Add(bad)
	short := ip4Frame(17, udpSeg(1, 2, make([]byte, 4)))
	binary.BigEndian.PutUint16(short[14+20+4:14+20+6], 99) // UDP length > datagram
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, ok := PeekFrame(data)
		var ps layers.Parser
		dec, err := ps.Parse(data)
		if ok != (err == nil) {
			t.Fatalf("peek ok=%v but parse err=%v", ok, err)
		}
		if !ok {
			return
		}
		if p.Src != dec.SrcIP || p.Dst != dec.DstIP {
			t.Errorf("endpoints diverge: peek %v→%v, parse %v→%v", p.Src, p.Dst, dec.SrcIP, dec.DstIP)
		}
		if p.SrcPort != dec.SrcPort || p.DstPort != dec.DstPort {
			t.Errorf("ports diverge: peek %d→%d, parse %d→%d", p.SrcPort, p.DstPort, dec.SrcPort, dec.DstPort)
		}
		if p.UDP != dec.HasUDP {
			t.Errorf("protocol diverges: peek UDP=%v, parse HasUDP=%v HasTCP=%v", p.UDP, dec.HasUDP, dec.HasTCP)
		}
		if p.UDP {
			want := len(dec.Payload) >= 3 && dec.Payload[2]&0x80 != 0
			if p.DNSResponse != want {
				t.Errorf("QR bit diverges: peek %v, parse-side %v (payload %d bytes)", p.DNSResponse, want, len(dec.Payload))
			}
		}
	})
}
