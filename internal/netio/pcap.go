// Package netio implements packet transport for the pipeline: the classic
// libpcap file format (read and write) and in-memory packet sources. The
// sniffer consumes any PacketSource, so traces can be replayed from disk or
// streamed straight out of the synthesizer without temporary files.
package netio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Packet is one captured frame plus its capture timestamp, expressed as an
// offset from the trace start (the pipeline runs on a virtual clock).
type Packet struct {
	// Timestamp is the capture time relative to trace start.
	Timestamp time.Duration
	// Data is the raw Ethernet frame.
	Data []byte
}

// PacketSource yields packets in capture order. Next returns io.EOF when the
// source is exhausted. The returned packet's Data may be reused by the next
// call to Next; copy before retaining.
type PacketSource interface {
	Next() (Packet, error)
}

// BlockSource is the optional bulk extension of PacketSource: ReadBlock
// frames up to len(dst) packets in one call, so a reader stage pays the
// per-call overhead (interface dispatch, header decode setup, buffered-IO
// bookkeeping) once per block instead of once per packet. It returns the
// number of packets framed; dst[:n] is valid even when err is non-nil
// (io.EOF after the final partial block, a decode error mid-block). All
// Data slices alias storage owned by the source, valid only until the next
// ReadBlock or Next call.
type BlockSource interface {
	ReadBlock(dst []Packet) (n int, err error)
}

// Classic pcap constants (little-endian variant written by this package).
const (
	pcapMagicLE     = 0xa1b2c3d4 // microsecond timestamps, writer-native order
	pcapMagicBE     = 0xd4c3b2a1 // byte-swapped file
	pcapMagicNanoLE = 0xa1b23c4d
	pcapMagicNanoBE = 0x4d3cb2a1
	pcapVersionMaj  = 2
	pcapVersionMin  = 4
	// LinkTypeEthernet is DLT_EN10MB.
	LinkTypeEthernet = 1
	// DefaultSnapLen mirrors tcpdump's modern default.
	DefaultSnapLen = 262144
)

// ErrBadMagic reports a file that does not start with a pcap magic number.
var ErrBadMagic = errors.New("netio: not a pcap file")

// Writer writes a classic pcap file (little-endian, microsecond resolution,
// Ethernet link type).
type Writer struct {
	w       *bufio.Writer
	started bool
	scratch [16]byte
	// Packets counts records written.
	Packets uint64
}

// NewWriter wraps w. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (w *Writer) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagicLE)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionMaj)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionMin)
	// thiszone=0, sigfigs=0
	binary.LittleEndian.PutUint32(hdr[16:20], DefaultSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	_, err := w.w.Write(hdr[:])
	return err
}

// WritePacket appends one record. Timestamps must be non-decreasing for the
// file to be a faithful capture, but this is not enforced.
func (w *Writer) WritePacket(p Packet) error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.started = true
	}
	usec := p.Timestamp.Microseconds()
	binary.LittleEndian.PutUint32(w.scratch[0:4], uint32(usec/1e6))
	binary.LittleEndian.PutUint32(w.scratch[4:8], uint32(usec%1e6))
	binary.LittleEndian.PutUint32(w.scratch[8:12], uint32(len(p.Data)))
	binary.LittleEndian.PutUint32(w.scratch[12:16], uint32(len(p.Data)))
	if _, err := w.w.Write(w.scratch[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(p.Data); err != nil {
		return err
	}
	w.Packets++
	return nil
}

// Flush writes any buffered data, emitting the header even for empty files.
func (w *Writer) Flush() error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.started = true
	}
	return w.w.Flush()
}

// Reader reads a classic pcap file in either byte order and either timestamp
// resolution. It implements PacketSource.
type Reader struct {
	r      *bufio.Reader
	order  binary.ByteOrder
	nanos  bool
	buf    []byte
	snap   uint32
	link   uint32
	epoch  int64 // first packet's absolute seconds, so Timestamp is an offset
	hasT0  bool
	t0frac int64
	// block is the ReadBlock arena: every frame of one block back to back.
	// offs records each frame's (offset, length) pair so Data slices can be
	// fixed up after the arena stops growing.
	block []byte
	offs  []uint32
}

// NewReader parses the global header of a pcap stream.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("netio: reading pcap header: %w", err)
	}
	rd := &Reader{r: br}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	switch magic {
	case pcapMagicLE:
		rd.order = binary.LittleEndian
	case pcapMagicNanoLE:
		rd.order, rd.nanos = binary.LittleEndian, true
	case pcapMagicBE:
		rd.order = binary.BigEndian
	case pcapMagicNanoBE:
		rd.order, rd.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("%w: magic %#08x", ErrBadMagic, magic)
	}
	rd.snap = rd.order.Uint32(hdr[16:20])
	rd.link = rd.order.Uint32(hdr[20:24])
	if rd.link != LinkTypeEthernet {
		return nil, fmt.Errorf("netio: unsupported link type %d", rd.link)
	}
	return rd, nil
}

// SnapLen returns the capture snapshot length from the file header.
func (r *Reader) SnapLen() uint32 { return r.snap }

// readRecordHeader reads and validates one 16-byte record header,
// returning the packet timestamp (relative to the trace epoch) and the
// captured length. err == io.EOF marks a clean end of stream.
func (r *Reader) readRecordHeader() (ts time.Duration, incl uint32, err error) {
	var rec [16]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.EOF {
			return 0, 0, io.EOF
		}
		return 0, 0, fmt.Errorf("netio: reading record header: %w", err)
	}
	sec := int64(r.order.Uint32(rec[0:4]))
	frac := int64(r.order.Uint32(rec[4:8]))
	incl = r.order.Uint32(rec[8:12])
	if incl > r.snap+65536 {
		return 0, 0, fmt.Errorf("netio: implausible record length %d", incl)
	}
	if !r.hasT0 {
		r.epoch, r.t0frac, r.hasT0 = sec, frac, true
	}
	if r.nanos {
		ts = time.Duration(sec-r.epoch)*time.Second + time.Duration(frac-r.t0frac)*time.Nanosecond
	} else {
		ts = time.Duration(sec-r.epoch)*time.Second + time.Duration(frac-r.t0frac)*time.Microsecond
	}
	return ts, incl, nil
}

// Next returns the next packet. Data aliases an internal buffer valid until
// the following call.
func (r *Reader) Next() (Packet, error) {
	ts, incl, err := r.readRecordHeader()
	if err != nil {
		return Packet{}, err
	}
	if cap(r.buf) < int(incl) {
		r.buf = make([]byte, incl)
	}
	r.buf = r.buf[:incl]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return Packet{}, fmt.Errorf("netio: reading record body: %w", err)
	}
	return Packet{Timestamp: ts, Data: r.buf}, nil
}

// ReadBlock implements BlockSource: it frames up to len(dst) packets into
// one reusable arena, so the per-packet cost of the reader stage collapses
// to a header decode and a copy. dst[:n] stays valid until the next
// ReadBlock or Next call.
func (r *Reader) ReadBlock(dst []Packet) (int, error) {
	r.block = r.block[:0]
	r.offs = r.offs[:0]
	n := 0
	for n < len(dst) {
		ts, incl, err := r.readRecordHeader()
		if err != nil {
			r.fixupBlock(dst, n)
			return n, err
		}
		off := len(r.block)
		need := off + int(incl)
		if cap(r.block) < need {
			grown := make([]byte, off, max(need, 2*cap(r.block)))
			copy(grown, r.block)
			r.block = grown
		}
		r.block = r.block[:need]
		if _, err := io.ReadFull(r.r, r.block[off:need]); err != nil {
			r.fixupBlock(dst, n)
			return n, fmt.Errorf("netio: reading record body: %w", err)
		}
		dst[n] = Packet{Timestamp: ts}
		r.offs = append(r.offs, uint32(off), incl)
		n++
	}
	r.fixupBlock(dst, n)
	return n, nil
}

// fixupBlock points the block's Data slices into the arena once it has
// stopped growing (growth reallocates, which would strand earlier slices).
func (r *Reader) fixupBlock(dst []Packet, n int) {
	for i := 0; i < n; i++ {
		off, ln := r.offs[2*i], r.offs[2*i+1]
		dst[i].Data = r.block[off : off+ln]
	}
}

// SlicePacketSource replays an in-memory packet slice. It implements
// PacketSource and is the zero-copy path between synthesizer and sniffer.
type SlicePacketSource struct {
	packets []Packet
	next    int
}

// NewSlicePacketSource wraps packets; the slice is not copied.
func NewSlicePacketSource(packets []Packet) *SlicePacketSource {
	return &SlicePacketSource{packets: packets}
}

// Next implements PacketSource.
func (s *SlicePacketSource) Next() (Packet, error) {
	if s.next >= len(s.packets) {
		return Packet{}, io.EOF
	}
	p := s.packets[s.next]
	s.next++
	return p, nil
}

// ReadBlock implements BlockSource by handing out packet structs straight
// from the backing slice — zero copy.
func (s *SlicePacketSource) ReadBlock(dst []Packet) (int, error) {
	n := copy(dst, s.packets[s.next:])
	if n == 0 {
		return 0, io.EOF
	}
	s.next += n
	return n, nil
}

// DataStable implements StableSource: packet Data aliases the caller's
// slice, which is never reused between reads.
func (s *SlicePacketSource) DataStable() bool { return true }

// Reset rewinds the source to the first packet.
func (s *SlicePacketSource) Reset() { s.next = 0 }

// Len returns the total number of packets.
func (s *SlicePacketSource) Len() int { return len(s.packets) }

// ChanPacketSource adapts a channel of packets to PacketSource; the producer
// closes the channel at end of trace. Used to stream synthesis concurrently
// with sniffing for long traces.
type ChanPacketSource struct {
	C <-chan Packet
}

// Next implements PacketSource.
func (c *ChanPacketSource) Next() (Packet, error) {
	p, ok := <-c.C
	if !ok {
		return Packet{}, io.EOF
	}
	return p, nil
}

// DataStable implements StableSource: the producer owns each packet's Data
// and must not reuse it after sending (the documented channel contract).
func (c *ChanPacketSource) DataStable() bool { return true }

// ReadBlock implements BlockSource: one blocking receive, then whatever is
// already queued, so a fast producer amortizes channel wakeups per block.
// Note the per-packet Data ownership is the producer's: packets from a
// channel are not invalidated by subsequent reads.
func (c *ChanPacketSource) ReadBlock(dst []Packet) (int, error) {
	p, ok := <-c.C
	if !ok {
		return 0, io.EOF
	}
	dst[0] = p
	n := 1
	for n < len(dst) {
		select {
		case p, ok := <-c.C:
			if !ok {
				return n, io.EOF
			}
			dst[n] = p
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}
