package netio

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// TestBlockPoolRecycle pins the refcount lifecycle: Get hands out one
// reference, Retain/Release balance, the final release retires the block
// into the freelist, and a subsequent Get reuses it without allocating.
func TestBlockPoolRecycle(t *testing.T) {
	p := NewBlockPool(1024, 2)
	b := p.Get(0)
	b.Retain(2)
	b.Release(1)
	if st := p.Stats(); st.Retired != 0 {
		t.Fatal("block retired with references outstanding")
	}
	b.Release(2)
	st := p.Stats()
	if st.Gets != 1 || st.Allocs != 1 || st.Retired != 1 {
		t.Fatalf("after one cycle: %+v", st)
	}
	if st.RetireNs == 0 {
		t.Error("retire latency not recorded")
	}
	if p.Get(0) == nil {
		t.Fatal("nil block")
	}
	if st := p.Stats(); st.Allocs != 1 {
		t.Fatalf("freelist miss on recycle: %+v", st)
	}
}

// TestBlockPoolOversized: a frame larger than the pool's block size gets a
// dedicated block that retires to the GC, never the freelist.
func TestBlockPoolOversized(t *testing.T) {
	p := NewBlockPool(64, 2)
	b := p.Get(1000)
	if cap(b.buf) < 1000 {
		t.Fatalf("oversized block capacity %d", cap(b.buf))
	}
	b.Release(1)
	if st := p.Stats(); st.Retired != 1 {
		t.Fatalf("oversized block not retired: %+v", st)
	}
	if b2 := p.Get(0); cap(b2.buf) != 64 {
		t.Fatalf("oversized block leaked into the freelist (cap %d)", cap(b2.buf))
	}
}

// TestBlockPoolFreelistBound: the freelist never holds more than maxFree
// blocks; the surplus is left to the garbage collector.
func TestBlockPoolFreelistBound(t *testing.T) {
	p := NewBlockPool(64, 2)
	bs := []*Block{p.Get(0), p.Get(0), p.Get(0), p.Get(0)}
	for _, b := range bs {
		b.Release(1)
	}
	if got := len(p.free); got != 2 {
		t.Fatalf("freelist holds %d blocks, want max 2", got)
	}
}

// fakeReusingSource reuses one buffer across Next calls — the contract
// that forces RefAdapter onto its copy-into-pooled-block path.
type fakeReusingSource struct {
	frames [][]byte
	buf    []byte
	next   int
}

func (s *fakeReusingSource) Next() (Packet, error) {
	if s.next >= len(s.frames) {
		return Packet{}, io.EOF
	}
	s.buf = append(s.buf[:0], s.frames[s.next]...)
	p := Packet{Timestamp: time.Duration(s.next), Data: s.buf}
	s.next++
	return p, nil
}

// TestRefAdapterStable: a StableSource's frames pass through zero-copy —
// nil block, Data aliasing the source's own storage.
func TestRefAdapterStable(t *testing.T) {
	orig := []Packet{
		{Timestamp: 1, Data: []byte("alpha")},
		{Timestamp: 2, Data: []byte("beta")},
	}
	a := NewRefAdapter(NewSlicePacketSource(orig), nil)
	dst := make([]Packet, 4)
	n, blk, _ := a.ReadBlockRef(dst)
	if n != 2 || blk != nil {
		t.Fatalf("n=%d blk=%v, want 2 packets with nil block", n, blk)
	}
	if &dst[0].Data[0] != &orig[0].Data[0] {
		t.Error("stable source copied instead of aliasing")
	}
}

// TestRefAdapterCopies: a buffer-reusing source's frames are copied once
// into a pooled block, so they survive the source's next read; the caller's
// release retires the block.
func TestRefAdapterCopies(t *testing.T) {
	pool := NewBlockPool(1024, 2)
	src := &fakeReusingSource{frames: [][]byte{[]byte("first"), []byte("second")}}
	a := NewRefAdapter(src, pool)

	dst := make([]Packet, 1)
	n, blk, err := a.ReadBlockRef(dst)
	if n != 1 || blk == nil || err != nil {
		t.Fatalf("n=%d blk=%v err=%v, want 1 packet in a pooled block", n, blk, err)
	}
	first := dst[0].Data
	if _, _, err := a.ReadBlockRef(make([]Packet, 1)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, []byte("first")) {
		t.Errorf("frame clobbered by the source's buffer reuse: %q", first)
	}
	blk.Release(1)
	if st := pool.Stats(); st.Retired != 1 {
		t.Fatalf("block not retired after release: %+v", st)
	}
}

// TestRefAdapterDelegates: a source that is already a BlockRefSource (the
// pcap Reader) is used directly — no second copy, no second pool.
func TestRefAdapterDelegates(t *testing.T) {
	raw, want := writeTestPcap(t, 10)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	a := NewRefAdapter(r, nil)
	dst := make([]Packet, 16)
	n, blk, _ := a.ReadBlockRef(dst)
	if n != 10 || blk == nil {
		t.Fatalf("n=%d blk=%v, want 10 packets in one block", n, blk)
	}
	for i := range dst[:n] {
		if !bytes.Equal(dst[i].Data, want[i].Data) {
			t.Fatalf("packet %d corrupted through delegation", i)
		}
	}
	blk.Release(1)
}

// TestReaderReadBlockRef frames pcap records straight into pooled blocks:
// contents must match the written records, a record that cannot fit the
// current block must wait for the next call (header unconsumed, no spill),
// and a record larger than a whole pooled block gets a dedicated one.
func TestReaderReadBlockRef(t *testing.T) {
	frames := [][]byte{
		bytes.Repeat([]byte{0xaa}, 100),
		bytes.Repeat([]byte{0xbb}, 200),
		bytes.Repeat([]byte{0xcc}, defaultBlockBytes+1), // oversized: dedicated block
		bytes.Repeat([]byte{0xdd}, 50),
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i, fr := range frames {
		if err := w.WritePacket(Packet{Timestamp: time.Duration(i) * time.Second, Data: fr}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	dst := make([]Packet, 8)
	for {
		n, blk, err := r.ReadBlockRef(dst)
		for i := 0; i < n; i++ {
			got = append(got, append([]byte(nil), dst[i].Data...))
		}
		if blk != nil {
			blk.Release(1)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(frames) {
		t.Fatalf("read %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Errorf("frame %d: %d bytes, want %d (corrupted)", i, len(got[i]), len(frames[i]))
		}
	}
}
