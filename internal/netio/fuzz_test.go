package netio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

// mkHeader builds a 24-byte pcap global header in the given byte order.
func mkHeader(order binary.ByteOrder, magic, snaplen, link uint32) []byte {
	hdr := make([]byte, 24)
	order.PutUint32(hdr[0:4], magic)
	order.PutUint16(hdr[4:6], pcapVersionMaj)
	order.PutUint16(hdr[6:8], pcapVersionMin)
	order.PutUint32(hdr[16:20], snaplen)
	order.PutUint32(hdr[20:24], link)
	return hdr
}

// mkRecord builds one record header + body in the given byte order.
func mkRecord(order binary.ByteOrder, sec, frac, incl, orig uint32, body []byte) []byte {
	rec := make([]byte, 16, 16+len(body))
	order.PutUint32(rec[0:4], sec)
	order.PutUint32(rec[4:8], frac)
	order.PutUint32(rec[8:12], incl)
	order.PutUint32(rec[12:16], orig)
	return append(rec, body...)
}

// TestReaderMalformedHeaders pins the reader's behaviour on the corrupt
// global headers seen in the wild: every case must fail cleanly from
// NewReader — no panic, no packet.
func TestReaderMalformedHeaders(t *testing.T) {
	cases := map[string][]byte{
		"empty":                  {},
		"truncated-4":            mkHeader(binary.LittleEndian, pcapMagicLE, 65535, LinkTypeEthernet)[:4],
		"truncated-10":           mkHeader(binary.LittleEndian, pcapMagicLE, 65535, LinkTypeEthernet)[:10],
		"truncated-23":           mkHeader(binary.LittleEndian, pcapMagicLE, 65535, LinkTypeEthernet)[:23],
		"zero-magic":             mkHeader(binary.LittleEndian, 0, 65535, LinkTypeEthernet),
		"ascii-garbage":          []byte("this is not a capture file, sorry..."),
		"non-ethernet-link":      mkHeader(binary.LittleEndian, pcapMagicLE, 65535, 101),
		"non-ethernet-link-swap": mkHeader(binary.BigEndian, pcapMagicLE, 65535, 113),
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := NewReader(bytes.NewReader(raw)); err == nil {
				t.Fatalf("NewReader accepted %q", name)
			}
		})
	}
}

// TestReaderSnaplenZero: a snaplen-0 header is legal (some tools write it);
// small records still read, but implausibly long records are rejected
// before any allocation.
func TestReaderSnaplenZero(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(mkHeader(binary.LittleEndian, pcapMagicLE, 0, LinkTypeEthernet))
	buf.Write(mkRecord(binary.LittleEndian, 1, 0, 3, 3, []byte{1, 2, 3}))
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.SnapLen() != 0 {
		t.Fatalf("snaplen = %d", r.SnapLen())
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Data, []byte{1, 2, 3}) {
		t.Fatalf("data = %v", p.Data)
	}

	// A record claiming far more bytes than snaplen+slack must error out.
	buf.Reset()
	buf.Write(mkHeader(binary.LittleEndian, pcapMagicLE, 0, LinkTypeEthernet))
	buf.Write(mkRecord(binary.LittleEndian, 1, 0, 1<<30, 1<<30, nil))
	r, err = NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("implausible record length accepted")
	}
}

// TestReaderReversedByteOrder: the same capture written in both byte orders
// must decode to identical packets.
func TestReaderReversedByteOrder(t *testing.T) {
	body := []byte{0xde, 0xad, 0xbe, 0xef}
	build := func(order binary.ByteOrder) []byte {
		var buf bytes.Buffer
		buf.Write(mkHeader(order, pcapMagicLE, 65535, LinkTypeEthernet))
		buf.Write(mkRecord(order, 100, 2500, uint32(len(body)), uint32(len(body)), body))
		buf.Write(mkRecord(order, 101, 0, 1, 1, []byte{7}))
		return buf.Bytes()
	}
	var got [2][]Packet
	for i, order := range []binary.ByteOrder{binary.LittleEndian, binary.BigEndian} {
		r, err := NewReader(bytes.NewReader(build(order)))
		if err != nil {
			t.Fatalf("order %d: %v", i, err)
		}
		for {
			p, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("order %d: %v", i, err)
			}
			got[i] = append(got[i], Packet{Timestamp: p.Timestamp, Data: append([]byte(nil), p.Data...)})
		}
	}
	if len(got[0]) != 2 || len(got[1]) != 2 {
		t.Fatalf("packet counts: %d vs %d", len(got[0]), len(got[1]))
	}
	for i := range got[0] {
		if got[0][i].Timestamp != got[1][i].Timestamp || !bytes.Equal(got[0][i].Data, got[1][i].Data) {
			t.Fatalf("packet %d differs across byte orders: %+v vs %+v", i, got[0][i], got[1][i])
		}
	}
}

// FuzzReader hammers the pcap reader with mutated captures. The corpus
// seeds every header dialect (both byte orders, both timestamp
// resolutions) and the malformed shapes the table tests pin: truncated
// global header, snaplen 0, reversed byte order, truncated and oversized
// records. The reader must never panic and never hand out packets larger
// than its plausibility bound.
func FuzzReader(f *testing.F) {
	// A healthy little-endian microsecond file via the Writer.
	var healthy bytes.Buffer
	w := NewWriter(&healthy)
	for i, body := range [][]byte{{1, 2, 3}, {4, 5}, make([]byte, 900)} {
		if err := w.WritePacket(Packet{Timestamp: time.Duration(i) * time.Second, Data: body}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(healthy.Bytes())

	// Header-only and truncated-header variants.
	f.Add(mkHeader(binary.LittleEndian, pcapMagicLE, DefaultSnapLen, LinkTypeEthernet))
	f.Add(mkHeader(binary.LittleEndian, pcapMagicLE, DefaultSnapLen, LinkTypeEthernet)[:10])
	f.Add([]byte{})

	// Snaplen 0 with one record.
	f.Add(append(mkHeader(binary.LittleEndian, pcapMagicLE, 0, LinkTypeEthernet),
		mkRecord(binary.LittleEndian, 1, 0, 2, 2, []byte{9, 9})...))

	// Reversed byte order (big-endian) and nanosecond dialects.
	f.Add(append(mkHeader(binary.BigEndian, pcapMagicLE, 65535, LinkTypeEthernet),
		mkRecord(binary.BigEndian, 100, 250000, 2, 2, []byte{0xaa, 0xbb})...))
	f.Add(append(mkHeader(binary.LittleEndian, pcapMagicNanoLE, 65535, LinkTypeEthernet),
		mkRecord(binary.LittleEndian, 10, 500, 1, 1, []byte{1})...))
	f.Add(append(mkHeader(binary.BigEndian, pcapMagicNanoLE, 65535, LinkTypeEthernet),
		mkRecord(binary.BigEndian, 10, 500, 1, 1, []byte{1})...))

	// Truncated record body and oversized record claim.
	f.Add(append(mkHeader(binary.LittleEndian, pcapMagicLE, 65535, LinkTypeEthernet),
		mkRecord(binary.LittleEndian, 1, 0, 50, 50, []byte{1, 2})...))
	f.Add(append(mkHeader(binary.LittleEndian, pcapMagicLE, 65535, LinkTypeEthernet),
		mkRecord(binary.LittleEndian, 1, 0, 1<<31, 1<<31, nil)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if len(data) >= 24 && errors.Is(err, ErrBadMagic) {
				// Fine: garbage magic must be flagged as such.
			}
			return
		}
		bound := int(r.SnapLen()) + 65536
		for i := 0; i < 10000; i++ {
			p, err := r.Next()
			if err != nil {
				return // EOF or a clean decode error both end the stream
			}
			if len(p.Data) > bound {
				t.Fatalf("packet %d bytes exceeds snaplen+slack bound %d", len(p.Data), bound)
			}
		}
	})
}
