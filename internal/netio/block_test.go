package netio

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"
)

// writeTestPcap builds an in-memory pcap with n packets of varying sizes
// and returns the encoded bytes plus the packets written.
func writeTestPcap(t *testing.T, n int) ([]byte, []Packet) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var pkts []Packet
	for i := 0; i < n; i++ {
		data := make([]byte, 14+i%97)
		for j := range data {
			data[j] = byte(i + j)
		}
		p := Packet{Timestamp: time.Duration(i) * time.Millisecond, Data: data}
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), pkts
}

// TestReadBlockMatchesNext replays the same capture through Next and
// ReadBlock (at several block sizes, including ones that leave a partial
// final block) and requires identical packet sequences.
func TestReadBlockMatchesNext(t *testing.T) {
	raw, want := writeTestPcap(t, 103)
	for _, blockLen := range []int{1, 7, 64, 103, 256} {
		t.Run(fmt.Sprintf("block=%d", blockLen), func(t *testing.T) {
			r, err := NewReader(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			dst := make([]Packet, blockLen)
			var got []Packet
			for {
				n, err := r.ReadBlock(dst)
				for i := 0; i < n; i++ {
					// Copy: the arena is reused on the next call.
					got = append(got, Packet{
						Timestamp: dst[i].Timestamp,
						Data:      append([]byte(nil), dst[i].Data...),
					})
				}
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("read %d packets, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i].Timestamp != want[i].Timestamp {
					t.Fatalf("packet %d: timestamp %v, want %v", i, got[i].Timestamp, want[i].Timestamp)
				}
				if !bytes.Equal(got[i].Data, want[i].Data) {
					t.Fatalf("packet %d: data mismatch", i)
				}
			}
		})
	}
}

// TestReadBlockArenaStableWithinBlock verifies the documented aliasing
// contract: every Data slice of one block stays intact until the next
// call, even though the arena grows while the block fills.
func TestReadBlockArenaStableWithinBlock(t *testing.T) {
	raw, want := writeTestPcap(t, 64)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Packet, 64)
	n, err := r.ReadBlock(dst)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != 64 {
		t.Fatalf("read %d packets, want 64", n)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(dst[i].Data, want[i].Data) {
			t.Fatalf("packet %d: data corrupted after later packets were framed", i)
		}
	}
}

// TestReadBlockTruncatedBody returns the packets framed before the
// truncation alongside the error.
func TestReadBlockTruncatedBody(t *testing.T) {
	raw, _ := writeTestPcap(t, 8)
	raw = raw[:len(raw)-5] // cut into the final record's body
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Packet, 16)
	n, err := r.ReadBlock(dst)
	if err == nil || err == io.EOF {
		t.Fatalf("want a body-read error, got n=%d err=%v", n, err)
	}
	if n != 7 {
		t.Fatalf("framed %d whole packets before the truncation, want 7", n)
	}
}

// TestSliceSourceReadBlock checks the zero-copy slice implementation,
// including the n<len(dst) tail and EOF-after-drain.
func TestSliceSourceReadBlock(t *testing.T) {
	pkts := make([]Packet, 10)
	for i := range pkts {
		pkts[i] = Packet{Timestamp: time.Duration(i)}
	}
	s := NewSlicePacketSource(pkts)
	dst := make([]Packet, 4)
	var total int
	for {
		n, err := s.ReadBlock(dst)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if int(dst[i].Timestamp) != total+i {
				t.Fatalf("packet %d out of order", total+i)
			}
		}
		total += n
	}
	if total != len(pkts) {
		t.Fatalf("read %d packets, want %d", total, len(pkts))
	}
}

// TestChanSourceReadBlock drains a closed channel through block reads.
func TestChanSourceReadBlock(t *testing.T) {
	ch := make(chan Packet, 16)
	for i := 0; i < 11; i++ {
		ch <- Packet{Timestamp: time.Duration(i)}
	}
	close(ch)
	src := &ChanPacketSource{C: ch}
	dst := make([]Packet, 4)
	var total int
	for {
		n, err := src.ReadBlock(dst)
		for i := 0; i < n; i++ {
			if int(dst[i].Timestamp) != total+i {
				t.Fatalf("packet %d out of order", total+i)
			}
		}
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != 11 {
		t.Fatalf("read %d packets, want 11", total)
	}
}
