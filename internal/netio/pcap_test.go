package netio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	pkts := []Packet{
		{Timestamp: 0, Data: []byte{1, 2, 3}},
		{Timestamp: 1500 * time.Millisecond, Data: []byte{4, 5, 6, 7}},
		{Timestamp: 3 * time.Second, Data: []byte{8}},
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Packets != 3 {
		t.Fatalf("Packets = %d", w.Packets)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.SnapLen() != DefaultSnapLen {
		t.Fatalf("snaplen = %d", r.SnapLen())
	}
	for i, want := range pkts {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("packet %d data = %v, want %v", i, got.Data, want.Data)
		}
		if got.Timestamp != want.Timestamp {
			t.Fatalf("packet %d ts = %v, want %v", i, got.Timestamp, want.Timestamp)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestEmptyFileHasHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 24 {
		t.Fatalf("header length = %d", buf.Len())
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader(make([]byte, 24)))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestReaderTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 10))); err == nil {
		t.Fatal("expected error")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(Packet{Data: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-2] // chop the body
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("expected error for truncated body")
	}
}

func TestReaderBigEndianFile(t *testing.T) {
	// Hand-build a big-endian microsecond pcap with one record.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], pcapMagicLE) // written BE == read as swapped
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:4], 100) // sec
	binary.BigEndian.PutUint32(rec[4:8], 250000)
	binary.BigEndian.PutUint32(rec[8:12], 2)
	binary.BigEndian.PutUint32(rec[12:16], 2)
	buf.Write(rec)
	buf.Write([]byte{0xaa, 0xbb})

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Timestamp != 0 { // first packet anchors the offset clock
		t.Fatalf("ts = %v", p.Timestamp)
	}
	if !bytes.Equal(p.Data, []byte{0xaa, 0xbb}) {
		t.Fatalf("data = %v", p.Data)
	}
}

func TestReaderNanoResolution(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagicNanoLE)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	binary.LittleEndian.PutUint32(hdr[16:20], 65535)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr)
	writeRec := func(sec, nsec, n uint32, body []byte) {
		rec := make([]byte, 16)
		binary.LittleEndian.PutUint32(rec[0:4], sec)
		binary.LittleEndian.PutUint32(rec[4:8], nsec)
		binary.LittleEndian.PutUint32(rec[8:12], n)
		binary.LittleEndian.PutUint32(rec[12:16], n)
		buf.Write(rec)
		buf.Write(body)
	}
	writeRec(10, 0, 1, []byte{1})
	writeRec(10, 500, 1, []byte{2})

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	p2, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p2.Timestamp != 500*time.Nanosecond {
		t.Fatalf("ts = %v", p2.Timestamp)
	}
}

func TestReaderUnsupportedLinkType(t *testing.T) {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagicLE)
	binary.LittleEndian.PutUint32(hdr[20:24], 101) // RAW IP
	if _, err := NewReader(bytes.NewReader(hdr)); err == nil {
		t.Fatal("expected error for non-Ethernet link type")
	}
}

func TestSlicePacketSource(t *testing.T) {
	pkts := []Packet{{Data: []byte{1}}, {Data: []byte{2}}}
	s := NewSlicePacketSource(pkts)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < 2; i++ {
		p, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if p.Data[0] != byte(i+1) {
			t.Fatalf("packet %d = %v", i, p.Data)
		}
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	s.Reset()
	if p, err := s.Next(); err != nil || p.Data[0] != 1 {
		t.Fatalf("after Reset: %v %v", p, err)
	}
}

func TestChanPacketSource(t *testing.T) {
	ch := make(chan Packet, 2)
	ch <- Packet{Data: []byte{9}}
	close(ch)
	s := &ChanPacketSource{C: ch}
	p, err := s.Next()
	if err != nil || p.Data[0] != 9 {
		t.Fatalf("got %v %v", p, err)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestQuickRoundTripArbitraryPayloads(t *testing.T) {
	f := func(bodies [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i, body := range bodies {
			if len(body) > 2000 {
				body = body[:2000]
			}
			if err := w.WritePacket(Packet{Timestamp: time.Duration(i) * time.Millisecond, Data: body}); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		for i, body := range bodies {
			if len(body) > 2000 {
				body = body[:2000]
			}
			p, err := r.Next()
			if err != nil {
				return false
			}
			if !bytes.Equal(p.Data, body) || p.Timestamp != time.Duration(i)*time.Millisecond {
				return false
			}
		}
		_, err = r.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
