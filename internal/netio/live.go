package netio

// Live-link source adapters for streaming (serve) mode. A real deployment
// points the engine at an AF_PACKET-shaped capture source; these adapters
// make a finite trace behave like one for soaks and smoke tests:
// LoopSource replays a packet slice for as many passes as asked (or
// forever), shifting timestamps so the trace clock keeps advancing, and
// PacedSource throttles any source to its capture timeline so a
// minutes-long trace takes minutes (or any speedup thereof) to serve.
//
// Both return from every ReadBlock call in bounded time — PacedSource
// sleeps at most one block's worth of trace time — which is what lets the
// engine's drain-on-cancel path (poll between blocks) stay responsive.
// Sources that can block indefinitely (ChanPacketSource on an idle
// channel) stall a drain until their next packet.

import (
	"io"
	"time"
)

// LoopSource replays an in-memory packet slice for a fixed number of
// passes, or forever, adding a per-pass timestamp offset so time keeps
// moving monotonically across passes — the run-forever input for soak
// tests. It implements PacketSource and BlockSource. Packet Data slices
// alias the backing slice (zero copy), valid until the caller's next
// read, like every other source.
type LoopSource struct {
	packets []Packet
	period  time.Duration
	passes  int // 0 = forever
	pass    int
	next    int
	offset  time.Duration
}

// NewLoopSource wraps packets (not copied). period is the trace-time
// length of one pass — pass n replays packet timestamps shifted by
// n×period; it must exceed the last packet's timestamp and defaults (when
// <= 0) to the last timestamp plus one millisecond. passes <= 0 loops
// forever.
func NewLoopSource(packets []Packet, period time.Duration, passes int) *LoopSource {
	if period <= 0 {
		if n := len(packets); n > 0 {
			period = packets[n-1].Timestamp + time.Millisecond
		} else {
			period = time.Millisecond
		}
	}
	if passes < 0 {
		passes = 0
	}
	return &LoopSource{packets: packets, period: period, passes: passes}
}

// advance steps to the next pass; ok=false when all passes are done.
func (l *LoopSource) advance() bool {
	l.pass++
	if l.passes > 0 && l.pass >= l.passes {
		return false
	}
	l.next = 0
	l.offset += l.period
	return true
}

// Next implements PacketSource.
func (l *LoopSource) Next() (Packet, error) {
	if len(l.packets) == 0 {
		return Packet{}, io.EOF
	}
	if l.next >= len(l.packets) {
		if !l.advance() {
			return Packet{}, io.EOF
		}
	}
	p := l.packets[l.next]
	l.next++
	p.Timestamp += l.offset
	return p, nil
}

// ReadBlock implements BlockSource. A block never spans a pass boundary,
// so the per-packet offset fixup stays a single addition.
func (l *LoopSource) ReadBlock(dst []Packet) (int, error) {
	if len(l.packets) == 0 {
		return 0, io.EOF
	}
	if l.next >= len(l.packets) {
		if !l.advance() {
			return 0, io.EOF
		}
	}
	n := copy(dst, l.packets[l.next:])
	l.next += n
	for i := 0; i < n; i++ {
		dst[i].Timestamp += l.offset
	}
	return n, nil
}

// Passes returns completed full passes over the packet slice.
func (l *LoopSource) Passes() int { return l.pass }

// PacedSource throttles a source to its own capture timeline: packet
// timestamps are mapped onto the wall clock (scaled by Speedup) and reads
// sleep until the frame's wall time arrives. It paces at block
// granularity — the sleep happens before a block is returned, based on
// its first packet — so throughput stays high while long-run pacing
// tracks the trace clock. It implements PacketSource and BlockSource.
type PacedSource struct {
	src     PacketSource
	bs      BlockSource
	speedup float64
	start   time.Time
	started bool
}

// NewPacedSource wraps src. speedup scales trace time onto wall time: 1
// replays in real time, 10 replays ten times faster; values <= 0 mean 1.
func NewPacedSource(src PacketSource, speedup float64) *PacedSource {
	p := &PacedSource{src: src, speedup: speedup}
	if p.speedup <= 0 {
		p.speedup = 1
	}
	if bs, ok := src.(BlockSource); ok {
		p.bs = bs
	}
	return p
}

// pace sleeps until ts maps to a wall time that has arrived.
func (p *PacedSource) pace(ts time.Duration) {
	if !p.started {
		p.started = true
		p.start = time.Now()
		return
	}
	due := p.start.Add(time.Duration(float64(ts) / p.speedup))
	if d := time.Until(due); d > 0 {
		time.Sleep(d)
	}
}

// Next implements PacketSource.
func (p *PacedSource) Next() (Packet, error) {
	pkt, err := p.src.Next()
	if err != nil {
		return pkt, err
	}
	p.pace(pkt.Timestamp)
	return pkt, nil
}

// ReadBlock implements BlockSource.
func (p *PacedSource) ReadBlock(dst []Packet) (int, error) {
	var (
		n   int
		err error
	)
	if p.bs != nil {
		n, err = p.bs.ReadBlock(dst)
	} else {
		var pkt Packet
		pkt, err = p.src.Next()
		if err == nil {
			dst[0] = pkt
			n = 1
		}
	}
	if n > 0 {
		p.pace(dst[0].Timestamp)
	}
	return n, err
}
