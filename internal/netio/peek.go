package netio

// Raw frame peek for RSS-style reader striping. The parallel pre-parse
// stage must route each frame to a reader partition by client address
// without paying a full layers.Parse — but its accept/reject outcome and
// its port-53/QR-bit classification MUST agree with the parse the owning
// dispatcher performs later, or the striped sweep clock would diverge from
// the single-reader pipeline. PeekFrame therefore mirrors, check for check,
// the validation rules of layers.Ethernet/IPv4/IPv6/TCP/UDP.DecodeFromBytes
// (pinned by FuzzPeekMatchesParse in the tests): ok=true exactly when a
// full parse would succeed AND yield a TCP or UDP packet. It reads ~40
// header bytes and never touches the payload beyond the DNS QR bit.

import (
	"encoding/binary"
	"net/netip"
)

// Peek is the routing summary of one frame.
type Peek struct {
	// Src and Dst are the IP endpoints.
	Src, Dst netip.Addr
	// SrcPort and DstPort are the transport ports.
	SrcPort, DstPort uint16
	// UDP is true for UDP, false for TCP.
	UDP bool
	// DNSResponse reports a set QR bit in a UDP payload of at least 3 bytes
	// — the same peek the dispatcher uses to attribute DNS responses to
	// their destination client. Meaningless unless UDP.
	DNSResponse bool
}

// PeekFrame classifies one Ethernet frame for reader striping. ok=false
// means a full layers.Parse would reject the frame or yield a non-TCP/UDP
// packet; such frames carry no flow key and any deterministic reader choice
// preserves equivalence.
func PeekFrame(frame []byte) (p Peek, ok bool) {
	if len(frame) < 14 { // Ethernet header
		return p, false
	}
	et := binary.BigEndian.Uint16(frame[12:14])
	data := frame[14:]
	var (
		proto   byte
		payload []byte
	)
	switch et {
	case 0x0800: // EtherTypeIPv4
		if len(data) < 20 || data[0]>>4 != 4 {
			return p, false
		}
		ihl := int(data[0]&0x0f) * 4
		if ihl < 20 || ihl > len(data) {
			return p, false
		}
		total := int(binary.BigEndian.Uint16(data[2:4]))
		if total < ihl || total > len(data) {
			return p, false
		}
		proto = data[9]
		p.Src = netip.AddrFrom4([4]byte(data[12:16]))
		p.Dst = netip.AddrFrom4([4]byte(data[16:20]))
		payload = data[ihl:total]
	case 0x86DD: // EtherTypeIPv6
		if len(data) < 40 || data[0]>>4 != 6 {
			return p, false
		}
		plen := int(binary.BigEndian.Uint16(data[4:6]))
		if 40+plen > len(data) {
			return p, false
		}
		proto = data[6]
		p.Src = netip.AddrFrom16([16]byte(data[8:24]))
		p.Dst = netip.AddrFrom16([16]byte(data[24:40]))
		payload = data[40 : 40+plen]
	default:
		return p, false
	}
	switch proto {
	case 6: // TCP
		if len(payload) < 20 {
			return p, false
		}
		off := int(payload[12]>>4) * 4
		if off < 20 || off > len(payload) {
			return p, false
		}
		p.SrcPort = binary.BigEndian.Uint16(payload[0:2])
		p.DstPort = binary.BigEndian.Uint16(payload[2:4])
	case 17: // UDP
		if len(payload) < 8 {
			return p, false
		}
		length := int(binary.BigEndian.Uint16(payload[4:6]))
		if length < 8 || length > len(payload) {
			return p, false
		}
		p.SrcPort = binary.BigEndian.Uint16(payload[0:2])
		p.DstPort = binary.BigEndian.Uint16(payload[2:4])
		p.UDP = true
		p.DNSResponse = length-8 >= 3 && payload[10]&0x80 != 0
	default:
		return p, false
	}
	return p, true
}
