package netio

// Refcounted block arenas: the storage contract behind ReadBlockRef. The
// classic ReadBlock contract ("Data valid until the next call") forces every
// pipeline stage that outlives one read to copy the payload — the sharded
// engine paid that copy twice (reader arena → ring slot arena). A Block
// instead carries an explicit reference count: the reader fills a pooled
// block once, every ring entry that aliases it takes a reference, and the
// block returns to its pool when the last reference retires. Payload bytes
// then move through the whole dispatch fanout by handle, never by copy.
//
// The pool is a plain mutex freelist, deliberately not a sync.Pool: GC
// cycles would clear a sync.Pool and force 256 KiB block reallocations at
// packet rate, re-inflating the dispatch bytes/pkt this design exists to
// eliminate. A bounded freelist keeps steady state allocation-free and lets
// the retire-latency counters live next to the storage they describe.

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// defaultBlockBytes is the pooled block capacity: large enough to hold a
// full reader block of typical frames (256 packets × ~500 B), small enough
// that a handful of in-flight blocks per reader stays modest.
const defaultBlockBytes = 256 * 1024

// defaultPoolBlocks bounds the freelist; blocks beyond it are left to the
// garbage collector (a transient burst should not pin memory forever).
const defaultPoolBlocks = 64

// Block is one refcounted frame arena. The producer that obtained it from
// Get owns one reference and fills buf; every consumer that retains a slice
// of the block past the producer's next read must take its own reference
// (Retain) and drop it when done (Release). When the count reaches zero the
// block returns to its pool and its bytes may be overwritten.
type Block struct {
	buf  []byte
	used int // producer-only fill cursor
	pool *BlockPool
	born time.Time // Get time, for retire-latency accounting
	refs atomic.Int64
}

// Retain adds n references to the block.
func (b *Block) Retain(n int64) { b.refs.Add(n) }

// Release drops n references; the final release recycles the block into its
// pool and records the Get→retire latency.
func (b *Block) Release(n int64) {
	if b.refs.Add(-n) == 0 {
		b.pool.put(b)
	}
}

// append copies frame into the block, returning the aliasing slice.
// ok=false when the frame does not fit the remaining capacity.
func (b *Block) append(frame []byte) ([]byte, bool) {
	if b.used+len(frame) > cap(b.buf) {
		return nil, false
	}
	dst := b.buf[b.used : b.used+len(frame)]
	copy(dst, frame)
	b.used += len(frame)
	return dst, true
}

// BlockPool recycles Blocks through a bounded mutex freelist and accounts
// their lifecycle (see BlockPoolStats). The zero value is not usable; use
// NewBlockPool or the package-level DefaultBlockPool.
type BlockPool struct {
	size    int
	maxFree int

	mu   sync.Mutex
	free []*Block

	gets     atomic.Uint64
	allocs   atomic.Uint64
	retired  atomic.Uint64
	retireNs atomic.Uint64
}

// NewBlockPool builds a pool of blockBytes-capacity blocks keeping at most
// maxFree on the freelist; non-positive arguments select the defaults.
func NewBlockPool(blockBytes, maxFree int) *BlockPool {
	if blockBytes <= 0 {
		blockBytes = defaultBlockBytes
	}
	if maxFree <= 0 {
		maxFree = defaultPoolBlocks
	}
	return &BlockPool{size: blockBytes, maxFree: maxFree}
}

// defaultPool backs every reader that does not bring its own pool. Blocks
// are content-free storage, so sharing it across engines is safe; the
// counters are process-wide (bench reads them as before/after deltas).
var defaultPool = NewBlockPool(0, 0)

// DefaultBlockPool returns the shared process-wide pool.
func DefaultBlockPool() *BlockPool { return defaultPool }

// Get returns a block with one reference held by the caller and capacity
// for at least minBytes (a pooled block normally; a one-off, never-pooled
// allocation when minBytes exceeds the pool's block size).
func (p *BlockPool) Get(minBytes int) *Block {
	p.gets.Add(1)
	if minBytes > p.size {
		// Oversized one-off: recycled by GC, not the freelist (put drops it).
		p.allocs.Add(1)
		b := &Block{buf: make([]byte, minBytes), pool: p, born: time.Now()}
		b.refs.Store(1)
		return b
	}
	p.mu.Lock()
	var b *Block
	if n := len(p.free); n > 0 {
		b = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if b == nil {
		p.allocs.Add(1)
		b = &Block{buf: make([]byte, p.size), pool: p}
	}
	b.used = 0
	b.born = time.Now()
	b.refs.Store(1)
	return b
}

// put recycles a fully released block, recording its retire latency.
func (p *BlockPool) put(b *Block) {
	p.retired.Add(1)
	p.retireNs.Add(uint64(time.Since(b.born)))
	if cap(b.buf) != p.size {
		return // oversized one-off
	}
	p.mu.Lock()
	if len(p.free) < p.maxFree {
		p.free = append(p.free, b)
	}
	p.mu.Unlock()
}

// BlockPoolStats is a point-in-time copy of a pool's lifecycle counters.
type BlockPoolStats struct {
	// Gets counts blocks handed out; Allocs the subset that had to be newly
	// allocated (freelist miss or oversized frame).
	Gets, Allocs uint64
	// Retired counts blocks whose last reference was released; RetireNs sums
	// their Get→retire latencies (RetireNs/Retired is the mean time payload
	// handles keep a block pinned).
	Retired, RetireNs uint64
}

// Stats returns the pool's counters. Safe concurrently with Get/Release.
func (p *BlockPool) Stats() BlockPoolStats {
	return BlockPoolStats{
		Gets:     p.gets.Load(),
		Allocs:   p.allocs.Load(),
		Retired:  p.retired.Load(),
		RetireNs: p.retireNs.Load(),
	}
}

// BlockRefSource is the refcounted bulk extension of PacketSource: one call
// frames up to len(dst) packets whose Data all alias the returned Block (or
// storage stable for the source's lifetime, when blk is nil). The caller
// receives blk holding one reference and must Release it exactly once when
// done distributing; any consumer that keeps a Data slice beyond that must
// Retain its own reference first. dst[:n] is valid alongside a non-nil err
// (io.EOF after the final partial block).
type BlockRefSource interface {
	ReadBlockRef(dst []Packet) (n int, blk *Block, err error)
}

// StableSource marks a PacketSource whose Packet.Data slices stay valid for
// the source's lifetime (no buffer reuse between reads). RefAdapter skips
// the copy into pooled blocks for such sources.
type StableSource interface {
	DataStable() bool
}

// RefAdapter turns any PacketSource into a BlockRefSource, picking the
// cheapest strategy once at construction: direct delegation when the source
// already implements BlockRefSource, zero-copy block reads when the source
// declares stable Data (nil blocks), and otherwise a single copy of each
// frame into a pooled block (the source's reuse contract forbids keeping
// its buffers).
type RefAdapter struct {
	ref    BlockRefSource
	stable bool
	bs     BlockSource
	src    PacketSource
	pool   *BlockPool
}

// NewRefAdapter wraps src; a nil pool selects DefaultBlockPool.
func NewRefAdapter(src PacketSource, pool *BlockPool) *RefAdapter {
	if pool == nil {
		pool = defaultPool
	}
	a := &RefAdapter{src: src, pool: pool}
	if rs, ok := src.(BlockRefSource); ok {
		a.ref = rs
		return a
	}
	if ss, ok := src.(StableSource); ok && ss.DataStable() {
		a.stable = true
	}
	if bs, ok := src.(BlockSource); ok {
		a.bs = bs
	}
	return a
}

// ReadBlockRef fills dst per the BlockRefSource contract (RefAdapter is
// itself a BlockRefSource, so wrappers like paced replay sources delegate
// to an embedded adapter and stay zero-copy end to end).
func (a *RefAdapter) ReadBlockRef(dst []Packet) (int, *Block, error) {
	if a.ref != nil {
		return a.ref.ReadBlockRef(dst)
	}
	n, err := a.fetch(dst)
	if n == 0 || a.stable {
		return n, nil, err
	}
	// Copy every frame once into a single pooled block: total length is
	// known up front, so one (possibly oversized) block always fits and the
	// contract's one-block-per-call shape holds.
	total := 0
	for i := 0; i < n; i++ {
		total += len(dst[i].Data)
	}
	blk := a.pool.Get(total)
	for i := 0; i < n; i++ {
		if d, ok := blk.append(dst[i].Data); ok {
			dst[i].Data = d
		}
	}
	return n, blk, err
}

// fetch is the plain-block fallback read.
func (a *RefAdapter) fetch(dst []Packet) (int, error) {
	if a.bs != nil {
		return a.bs.ReadBlock(dst)
	}
	pkt, err := a.src.Next()
	if err != nil {
		return 0, err
	}
	dst[0] = pkt
	return 1, nil
}

// ReadBlockRef implements BlockRefSource for the pcap Reader: records are
// framed straight into a pooled block, so downstream handles alias pcap
// bytes that were copied exactly once (stream buffer → block). A record
// that would not fit the current block ends the call early (its header is
// only peeked, never consumed); a single record larger than a whole pooled
// block gets a dedicated one-off block to itself.
func (r *Reader) ReadBlockRef(dst []Packet) (int, *Block, error) {
	if len(dst) == 0 {
		return 0, nil, nil
	}
	blk := defaultPool.Get(0)
	n := 0
	for n < len(dst) {
		if n > 0 {
			// Peek the next record length before committing to the header
			// read: a record that will not fit must wait for the next call's
			// fresh block. Peek errors fall through to readRecordHeader for
			// uniform error reporting.
			if hdr, err := r.r.Peek(16); err == nil {
				if incl := r.order.Uint32(hdr[8:12]); blk.used+int(incl) > cap(blk.buf) {
					return n, blk, nil
				}
			}
		}
		ts, incl, err := r.readRecordHeader()
		if err != nil {
			if n == 0 {
				blk.Release(1)
				return 0, nil, err
			}
			return n, blk, err
		}
		if blk.used+int(incl) > cap(blk.buf) {
			// Only reachable at n==0 (the peek bounds later records): one
			// oversized record gets a dedicated, never-pooled block.
			blk.Release(1)
			blk = defaultPool.Get(int(incl))
		}
		body := blk.buf[blk.used : blk.used+int(incl)]
		if _, err := io.ReadFull(r.r, body); err != nil {
			err = fmt.Errorf("netio: reading record body: %w", err)
			if n == 0 {
				blk.Release(1)
				return 0, nil, err
			}
			return n, blk, err
		}
		blk.used += int(incl)
		dst[n] = Packet{Timestamp: ts, Data: body}
		n++
	}
	return n, blk, nil
}
