package netio

import (
	"io"
	"testing"
	"time"
)

func loopPackets() []Packet {
	return []Packet{
		{Timestamp: 0, Data: []byte{1}},
		{Timestamp: 10 * time.Millisecond, Data: []byte{2}},
		{Timestamp: 25 * time.Millisecond, Data: []byte{3}},
	}
}

func TestLoopSourceFinitePasses(t *testing.T) {
	l := NewLoopSource(loopPackets(), 100*time.Millisecond, 3)
	var got []Packet
	for {
		p, err := l.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, p)
	}
	if len(got) != 9 {
		t.Fatalf("replayed %d packets, want 9", len(got))
	}
	// Pass 2's first packet starts at 2×period; time never goes backward.
	if got[6].Timestamp != 200*time.Millisecond {
		t.Fatalf("pass-2 first timestamp %v, want 200ms", got[6].Timestamp)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Timestamp <= got[i-1].Timestamp {
			t.Fatalf("timestamps not strictly increasing at %d: %v after %v", i, got[i].Timestamp, got[i-1].Timestamp)
		}
	}
}

func TestLoopSourceReadBlock(t *testing.T) {
	l := NewLoopSource(loopPackets(), 0, 2) // auto period = 25ms + 1ms
	dst := make([]Packet, 8)
	n1, err := l.ReadBlock(dst)
	if err != nil || n1 != 3 {
		t.Fatalf("block 1: n=%d err=%v", n1, err)
	}
	n2, err := l.ReadBlock(dst)
	if err != nil || n2 != 3 {
		t.Fatalf("block 2: n=%d err=%v", n2, err)
	}
	if dst[0].Timestamp != 26*time.Millisecond {
		t.Fatalf("auto period: pass-1 first timestamp %v, want 26ms", dst[0].Timestamp)
	}
	if _, err := l.ReadBlock(dst); err != io.EOF {
		t.Fatalf("after final pass: %v, want EOF", err)
	}
	if l.Passes() < 2 {
		t.Fatalf("Passes() = %d", l.Passes())
	}
}

func TestLoopSourceEmpty(t *testing.T) {
	l := NewLoopSource(nil, 0, 0)
	if _, err := l.Next(); err != io.EOF {
		t.Fatalf("empty loop Next: %v", err)
	}
	if _, err := l.ReadBlock(make([]Packet, 4)); err != io.EOF {
		t.Fatalf("empty loop ReadBlock: %v", err)
	}
}

func TestPacedSourcePacesBlocks(t *testing.T) {
	// 40ms of trace at 4x speedup ≈ 10ms of wall time minimum.
	pkts := []Packet{
		{Timestamp: 0, Data: []byte{1}},
		{Timestamp: 40 * time.Millisecond, Data: []byte{2}},
	}
	p := NewPacedSource(NewSlicePacketSource(pkts), 4)
	start := time.Now()
	dst := make([]Packet, 1)
	for {
		if _, err := p.ReadBlock(dst); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Fatalf("paced replay took %v, want >= ~10ms", elapsed)
	}
}

func TestPacedSourceUnpacedFallback(t *testing.T) {
	// A non-BlockSource inner source goes through the Next fallback.
	type nextOnly struct{ PacketSource }
	p := NewPacedSource(nextOnly{NewSlicePacketSource(loopPackets())}, 1000)
	dst := make([]Packet, 4)
	total := 0
	for {
		n, err := p.ReadBlock(dst)
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != 3 {
		t.Fatalf("fallback replayed %d packets, want 3", total)
	}
}
