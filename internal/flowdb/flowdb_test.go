package flowdb

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/flows"
	"repro/internal/layers"
)

func lf(label string, server string, port uint16, l7 flows.L7Proto, start time.Duration) LabeledFlow {
	return LabeledFlow{
		Record: flows.Record{
			Key: flows.Key{
				ClientIP:   netip.MustParseAddr("10.0.0.1"),
				ServerIP:   netip.MustParseAddr(server),
				ClientPort: 40000, ServerPort: port,
				Proto: layers.IPProtocolTCP,
			},
			Start: start, End: start + time.Second,
			L7: l7,
		},
		Label:   label,
		Labeled: label != "",
	}
}

func TestAddAndIndexes(t *testing.T) {
	db := New()
	db.Add(lf("www.example.com", "1.1.1.1", 80, flows.L7HTTP, 0))
	db.Add(lf("mail.example.com", "1.1.1.2", 443, flows.L7TLS, time.Second))
	db.Add(lf("www.other.org", "1.1.1.1", 80, flows.L7HTTP, 2*time.Second))
	db.Add(lf("", "9.9.9.9", 6881, flows.L7P2P, 3*time.Second))

	if db.Len() != 4 {
		t.Fatalf("Len = %d", db.Len())
	}
	if got := db.ByFQDN("www.example.com"); len(got) != 1 || got[0].Label != "www.example.com" {
		t.Fatalf("ByFQDN = %v", got)
	}
	if got := db.BySLD("example.com"); len(got) != 2 {
		t.Fatalf("BySLD = %d flows", len(got))
	}
	if got := db.ByServer(netip.MustParseAddr("1.1.1.1")); len(got) != 2 {
		t.Fatalf("ByServer = %d flows", len(got))
	}
	if got := db.ByPort(80); len(got) != 2 {
		t.Fatalf("ByPort = %d flows", len(got))
	}
	// Unlabeled flows appear in server/port indexes but not name indexes.
	if got := db.ByPort(6881); len(got) != 1 || got[0].Labeled {
		t.Fatalf("unlabeled flow: %v", got)
	}
	if got := db.ByFQDN(""); len(got) != 0 {
		t.Fatalf("empty-label index should be empty: %v", got)
	}
}

func TestSLDComputedOnAdd(t *testing.T) {
	db := New()
	db.Add(lf("smtp2.mail.google.com", "1.2.3.4", 25, flows.L7Unknown, 0))
	if got := db.At(0).SLD; got != "google.com" {
		t.Fatalf("SLD = %q", got)
	}
}

func TestDistinctSetters(t *testing.T) {
	db := New()
	db.Add(lf("a.x.com", "1.1.1.1", 80, flows.L7HTTP, 0))
	db.Add(lf("a.x.com", "1.1.1.2", 80, flows.L7HTTP, 0))
	db.Add(lf("b.x.com", "1.1.1.1", 80, flows.L7HTTP, 0))
	db.Add(lf("a.x.com", "1.1.1.1", 80, flows.L7HTTP, 0)) // duplicate pair

	servers := db.ServersOfFQDN("a.x.com")
	if len(servers) != 2 {
		t.Fatalf("ServersOfFQDN = %v", servers)
	}
	if servers[0].Compare(servers[1]) >= 0 {
		t.Fatal("servers not sorted")
	}
	if got := db.ServersOfSLD("x.com"); len(got) != 2 {
		t.Fatalf("ServersOfSLD = %v", got)
	}
	if got := db.FQDNsOfSLD("x.com"); len(got) != 2 || got[0] != "a.x.com" {
		t.Fatalf("FQDNsOfSLD = %v", got)
	}
}

func TestGlobalEnumerations(t *testing.T) {
	db := New()
	db.Add(lf("a.x.com", "2.2.2.2", 80, flows.L7HTTP, 0))
	db.Add(lf("b.y.org", "1.1.1.1", 443, flows.L7TLS, 0))
	if got := db.Servers(); len(got) != 2 || got[0].Compare(got[1]) >= 0 {
		t.Fatalf("Servers = %v", got)
	}
	if got := db.FQDNs(); len(got) != 2 || got[0] != "a.x.com" {
		t.Fatalf("FQDNs = %v", got)
	}
	if got := db.SLDs(); len(got) != 2 || got[0] != "x.com" {
		t.Fatalf("SLDs = %v", got)
	}
	if got := db.Ports(); len(got) != 2 || got[0] != 80 {
		t.Fatalf("Ports = %v", got)
	}
}

func TestCoverage(t *testing.T) {
	db := New()
	warm := 5 * time.Minute
	// Two labeled HTTP after warmup, one unlabeled HTTP after warmup,
	// one HTTP before warmup (excluded), one unlabeled P2P.
	db.Add(lf("a.x.com", "1.1.1.1", 80, flows.L7HTTP, warm+time.Second))
	db.Add(lf("b.x.com", "1.1.1.2", 80, flows.L7HTTP, warm+2*time.Second))
	db.Add(lf("", "1.1.1.3", 80, flows.L7HTTP, warm+3*time.Second))
	db.Add(lf("c.x.com", "1.1.1.4", 80, flows.L7HTTP, time.Second))
	db.Add(lf("", "9.9.9.9", 6881, flows.L7P2P, warm+time.Second))

	cov := db.Coverage(warm)
	if cov.Total[flows.L7HTTP] != 3 || cov.Labeled[flows.L7HTTP] != 2 {
		t.Fatalf("coverage = %+v", cov)
	}
	if r := cov.Ratio(flows.L7HTTP); r < 0.66 || r > 0.67 {
		t.Fatalf("ratio = %v", r)
	}
	if cov.Ratio(flows.L7P2P) != 0 {
		t.Fatalf("P2P ratio = %v", cov.Ratio(flows.L7P2P))
	}
	if cov.Ratio(flows.L7TLS) != 0 {
		t.Fatal("unseen protocol ratio should be 0")
	}
}

func TestAtAndAll(t *testing.T) {
	db := New()
	db.Add(lf("a.x.com", "1.1.1.1", 80, flows.L7HTTP, 0))
	if db.At(0).Label != "a.x.com" || len(db.All()) != 1 {
		t.Fatal("At/All broken")
	}
}

// TestConcurrentQueriesAfterIngest: once writing has stopped, queries may
// run concurrently — the first ones race to build the lazy indexes, which
// must be serialized internally (run under -race).
func TestConcurrentQueriesAfterIngest(t *testing.T) {
	db := New()
	for i := 0; i < 500; i++ {
		db.Add(LabeledFlow{
			Record: flows.Record{Key: flows.Key{
				ClientIP:   netip.MustParseAddr("10.0.0.1"),
				ServerIP:   netip.AddrFrom4([4]byte{203, 0, 113, byte(i)}),
				ServerPort: uint16(80 + i%3),
			}},
			Label: "cdn.example.com", Labeled: true, Vantage: "EU1",
		})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 4 {
			case 0:
				if got := len(db.ByFQDN("cdn.example.com")); got != 500 {
					t.Errorf("ByFQDN = %d", got)
				}
			case 1:
				if got := len(db.ByPort(80)); got == 0 {
					t.Error("ByPort empty")
				}
			case 2:
				if got := db.Vantages(); len(got) != 1 || got[0] != "EU1" {
					t.Errorf("Vantages = %v", got)
				}
			case 3:
				if got := len(db.Servers()); got != 256 {
					t.Errorf("Servers = %d", got)
				}
			}
		}(g)
	}
	wg.Wait()
}
