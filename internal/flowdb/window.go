package flowdb

// Rolling time-windowed partitions: the streaming (Engine.Serve) answer to
// the batch DB's append-forever growth. A Windowed store accumulates
// labeled flows into the current window's DB and, when the emission clock
// crosses the window boundary, hands the completed window to a flush
// callback and recycles the DB storage — bounded heap over unbounded
// input.
//
// Windows partition the *emission order*, not flow end times. Flows reach
// the store in the order the pipeline emits them (idle expiry emits a flow
// IdleTimeout after its last packet; end-of-run flush emits the
// residuals), and each window is a contiguous chunk of that sequence: a
// window rotates when an arriving flow's End has advanced the clock past
// the boundary, and every flow emitted before the rotation belongs to the
// closing window regardless of its own End. Two properties follow:
//
//   - Concatenating the flushed windows (plus the final Close window)
//     reproduces a batch run's DB record-for-record — nothing is
//     reordered, only chopped. TestWindowedMatchesBatch asserts this.
//   - A flow is never retroactively inserted into an already-flushed
//     window, so flushed windows are immutable the moment Flush returns.

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Window is one completed partition handed to WindowConfig.Flush. The DB
// holds every flow emitted while the window was current; Start/End bound
// the emission clock (max flow End seen so far) for which the window was
// current.
type Window struct {
	// Index is the rotation ordinal, counting every flushed window from 0.
	Index int
	// Start and End are the window's trace-time bounds [Start, End). End -
	// Start is the configured width except for the final partial window
	// flushed by Close and for windows closing an emission gap.
	Start, End time.Duration
	// DB holds the window's flows. It is valid only for the duration of
	// the Flush call: the Windowed store recycles its storage for a later
	// window as soon as Flush returns. Copy (or serialize) what must
	// outlive the call.
	DB *DB
}

// WindowConfig assembles a Windowed store.
type WindowConfig struct {
	// Width is the window length in trace time. Zero means 5 minutes.
	Width time.Duration
	// Observe sees each completed window BEFORE Flush, and before the
	// window's storage is recycled — the pre-discard hook streaming
	// analytics hang off. It runs even when Flush is nil (the common
	// serve-mode configuration: checkpoint spooling off, analytics on),
	// which is exactly the case where flows used to vanish without any
	// observer seeing them. Same lifetime contract as Flush: the Window's
	// DB is only valid for the duration of the call.
	Observe func(Window)
	// Flush receives each completed window, in order. The Window's DB is
	// reused after Flush returns — see Window.DB. A nil Flush discards
	// completed windows (useful when a Sink downstream already observed
	// every flow). A Flush error is sticky: it fails the Add that
	// triggered it and every subsequent Add and Close.
	//
	// Ordering contract per rotation: Observe(win), then Flush(win), then
	// the window's storage is recycled. An Observe hook therefore sees
	// every flow that ever entered the store, including the final partial
	// window on Close, and sees it exactly once.
	Flush func(Window) error
}

// Windowed is the rolling-window labeled-flow store. Add and Close must
// be serialized (the Engine's SyncSink already does); WindowsFlushed,
// FlushLag, and Clock are safe to call concurrently from other
// goroutines — the metrics endpoint reads them live.
type Windowed struct {
	cfg   WindowConfig
	cur   *DB
	spare *DB
	index int
	// start is the current window's lower bound; meaningless until the
	// first Add sets it.
	started bool
	start   time.Duration
	err     error

	// Shared with concurrent metric readers.
	clockNs atomic.Int64
	lagNs   atomic.Int64
	flushed atomic.Uint64
}

// NewWindowed creates a store that partitions flows into cfg.Width-wide
// windows.
func NewWindowed(cfg WindowConfig) *Windowed {
	if cfg.Width <= 0 {
		cfg.Width = 5 * time.Minute
	}
	return &Windowed{cfg: cfg, cur: New(), spare: New()}
}

// Width reports the resolved window width.
func (w *Windowed) Width() time.Duration { return w.cfg.Width }

// Add appends one flow to the current window, rotating first if f.End
// pushes the emission clock past the window boundary.
func (w *Windowed) Add(f LabeledFlow) error {
	if w.err != nil {
		return w.err
	}
	clock := time.Duration(w.clockNs.Load())
	if f.End > clock {
		clock = f.End
		w.clockNs.Store(int64(clock))
	}
	if !w.started {
		w.started = true
		w.start = (clock / w.cfg.Width) * w.cfg.Width
	} else if clock >= w.start+w.cfg.Width {
		// The clock crossed the boundary: everything emitted so far
		// belongs to the closing window. One flush covers the whole gap —
		// trailing empty windows are skipped, not flushed, so a long
		// emission pause costs one rotation, not gap/Width of them.
		if err := w.rotate(w.start + w.cfg.Width); err != nil {
			return err
		}
		w.start = (clock / w.cfg.Width) * w.cfg.Width
	}
	w.cur.Add(f)
	w.lagNs.Store(int64(clock - w.start))
	return nil
}

// rotate flushes the current window as [w.start, end) and swaps in the
// recycled spare DB.
func (w *Windowed) rotate(end time.Duration) error {
	win := Window{Index: w.index, Start: w.start, End: end, DB: w.cur}
	w.index++
	w.cur, w.spare = w.spare, w.cur
	w.cur.Reset()
	if w.cfg.Observe != nil {
		w.cfg.Observe(win)
	}
	var err error
	if w.cfg.Flush != nil {
		err = w.cfg.Flush(win)
	}
	w.spare.Reset() // drop the flushed window's records promptly
	w.flushed.Add(1)
	if err != nil {
		w.err = fmt.Errorf("flowdb: window %d flush: %w", win.Index, err)
	}
	return w.err
}

// Close flushes the final partial window (if any flows arrived since the
// last rotation) and returns the sticky error state. The store must not
// be used after Close.
func (w *Windowed) Close() error {
	if w.err != nil {
		return w.err
	}
	if !w.started || w.cur.Len() == 0 {
		return nil
	}
	end := time.Duration(w.clockNs.Load())
	if wend := w.start + w.cfg.Width; wend > end {
		end = wend
	}
	return w.rotate(end)
}

// WindowsFlushed returns the number of windows handed to Flush so far.
// Safe for concurrent use.
func (w *Windowed) WindowsFlushed() uint64 { return w.flushed.Load() }

// Clock returns the emission clock: the maximum flow End observed. Safe
// for concurrent use.
func (w *Windowed) Clock() time.Duration { return time.Duration(w.clockNs.Load()) }

// FlushLag returns how far the emission clock has advanced past the open
// window's start — how much trace time of flows is currently buffered
// awaiting the next rotation. Bounded by the window width plus the
// largest single clock jump. Safe for concurrent use.
func (w *Windowed) FlushLag() time.Duration { return time.Duration(w.lagNs.Load()) }
