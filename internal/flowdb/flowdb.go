// Package flowdb stores the labeled flows DN-Hunter emits — the "Flow
// Database" of the paper's architecture (Fig. 1) — and exposes the query
// primitives the off-line analyzer needs: by FQDN, by second-level domain,
// by server address, and by server port (Algorithms 2–4).
package flowdb

import (
	"net/netip"
	"sort"
	"sync"
	"time"

	"repro/internal/flows"
	"repro/internal/stats"
)

// LabeledFlow is one flow with the FQDN label the tagger attached.
type LabeledFlow struct {
	flows.Record
	// Label is the FQDN from the resolver; empty when the lookup missed.
	Label string
	// SLD is the second-level domain of Label (cached at insert).
	SLD string
	// Labeled reports whether the tagger hit the resolver cache.
	Labeled bool
	// PreFlow reports whether the label was available at the first packet
	// (SYN) — the paper's identify-before-the-flow-begins property.
	PreFlow bool
	// DNSDelay is flow start minus the labeling DNS response time: the
	// "first flow delay" when this is the first flow after the response.
	DNSDelay time.Duration
	// FirstAfterDNS marks the first flow following its DNS response
	// (Fig. 12 measures exactly these).
	FirstAfterDNS bool
	// Truth is the ground-truth FQDN carried by synthetic traces in a
	// sidecar; empty for real captures. Used only for scoring, never by
	// the pipeline.
	Truth string
	// Vantage names the packet source that observed the flow; empty for
	// single-source runs. Multi-vantage runs (Engine.RunSources) stamp it
	// so a merged database still partitions per vantage point.
	Vantage string
}

// DB is an append-only labeled flow store with secondary indexes.
//
// The indexes are built lazily: Add only appends (keeping the pipeline's
// per-flow cost to one slice append — no map work on the capture hot
// path), and the first query extends the indexes over whatever arrived
// since the last one.
//
// Add and Merge are not safe for concurrent use with anything. Queries
// are safe to issue concurrently with each other once writing has
// stopped — the catch-up index build they trigger is serialized by an
// internal lock — but never concurrently with Add/Merge.
type DB struct {
	recs []LabeledFlow

	// mu serializes the lazy index catch-up, so concurrent queries on a
	// finished DB never race on the map builds.
	mu sync.Mutex
	// indexed is the number of records the indexes cover; index() catches
	// the maps up before any of them is read.
	indexed   int
	byFQDN    map[string][]int
	bySLD     map[string][]int
	byServer  map[netip.Addr][]int
	byPort    map[uint16][]int
	byVantage map[string][]int
}

// New creates an empty database.
func New() *DB {
	return &DB{}
}

// Add appends one labeled flow. Index maintenance is deferred to the next
// query.
func (db *DB) Add(f LabeledFlow) {
	if f.Labeled && f.SLD == "" {
		f.SLD = stats.SLD(f.Label)
	}
	db.recs = append(db.recs, f)
}

// index catches the secondary indexes up with the record log.
func (db *DB) index() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.indexed == len(db.recs) {
		return
	}
	if db.byFQDN == nil {
		db.byFQDN = make(map[string][]int)
		db.bySLD = make(map[string][]int)
		db.byServer = make(map[netip.Addr][]int)
		db.byPort = make(map[uint16][]int)
		db.byVantage = make(map[string][]int)
	}
	for idx := db.indexed; idx < len(db.recs); idx++ {
		f := &db.recs[idx]
		if f.Labeled {
			db.byFQDN[f.Label] = append(db.byFQDN[f.Label], idx)
			db.bySLD[f.SLD] = append(db.bySLD[f.SLD], idx)
		}
		db.byServer[f.Key.ServerIP] = append(db.byServer[f.Key.ServerIP], idx)
		db.byPort[f.Key.ServerPort] = append(db.byPort[f.Key.ServerPort], idx)
		if f.Vantage != "" {
			db.byVantage[f.Vantage] = append(db.byVantage[f.Vantage], idx)
		}
	}
	db.indexed = len(db.recs)
}

// Merge appends every flow of the others into db, maintaining the indexes.
// The sharded engine combines per-shard databases with it at end of run;
// record order follows the argument order, so merging shards 0..N-1 is
// deterministic for a fixed shard count.
func (db *DB) Merge(others ...*DB) {
	grow := 0
	for _, o := range others {
		grow += len(o.recs)
	}
	if cap(db.recs)-len(db.recs) < grow {
		recs := make([]LabeledFlow, len(db.recs), len(db.recs)+grow)
		copy(recs, db.recs)
		db.recs = recs
	}
	for _, o := range others {
		for i := range o.recs {
			db.Add(o.recs[i])
		}
	}
}

// Reset empties the database for reuse, keeping the record slice's
// capacity so a steady-state consumer (the windowed store rotating
// partitions) stops allocating once its high-water mark is reached. The
// lazy indexes are dropped outright — rebuilding them on the next query
// is cheaper than emptying five maps, and a reused window DB is usually
// serialized, not queried. Not safe for concurrent use, like Add.
func (db *DB) Reset() {
	db.recs = db.recs[:0]
	db.indexed = 0
	db.byFQDN = nil
	db.bySLD = nil
	db.byServer = nil
	db.byPort = nil
	db.byVantage = nil
}

// Len returns the number of flows stored.
func (db *DB) Len() int { return len(db.recs) }

// All returns the backing slice of flows; callers must not mutate it.
func (db *DB) All() []LabeledFlow { return db.recs }

// At returns the i-th flow.
func (db *DB) At(i int) *LabeledFlow { return &db.recs[i] }

func (db *DB) gather(idxs []int) []*LabeledFlow {
	out := make([]*LabeledFlow, len(idxs))
	for i, idx := range idxs {
		out[i] = &db.recs[idx]
	}
	return out
}

// ByFQDN returns flows labeled exactly fqdn.
func (db *DB) ByFQDN(fqdn string) []*LabeledFlow { db.index(); return db.gather(db.byFQDN[fqdn]) }

// BySLD returns flows whose label belongs to the given second-level domain
// (Algorithm 2's queryByDomainName on the organization).
func (db *DB) BySLD(sld string) []*LabeledFlow { db.index(); return db.gather(db.bySLD[sld]) }

// ByServer returns flows to the given server address (Algorithm 3's query).
func (db *DB) ByServer(addr netip.Addr) []*LabeledFlow {
	db.index()
	return db.gather(db.byServer[addr])
}

// ByPort returns flows to the given server port (Algorithm 4's query).
func (db *DB) ByPort(port uint16) []*LabeledFlow { db.index(); return db.gather(db.byPort[port]) }

// ByVantage returns flows observed at the named vantage point. Flows from
// single-source runs carry no vantage and are reachable only via All.
func (db *DB) ByVantage(name string) []*LabeledFlow { db.index(); return db.gather(db.byVantage[name]) }

// Vantages returns every distinct vantage label in the database, sorted;
// empty for single-source runs.
func (db *DB) Vantages() []string {
	db.index()
	out := make([]string, 0, len(db.byVantage))
	for v := range db.byVantage {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// FQDNsOfSLD returns the distinct FQDNs labeled under sld, sorted.
func (db *DB) FQDNsOfSLD(sld string) []string {
	db.index()
	seen := make(map[string]struct{})
	for _, idx := range db.bySLD[sld] {
		seen[db.recs[idx].Label] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// ServersOfFQDN returns the distinct server addresses observed serving
// fqdn, sorted.
func (db *DB) ServersOfFQDN(fqdn string) []netip.Addr {
	db.index()
	return distinctServers(db.recs, db.byFQDN[fqdn])
}

// ServersOfSLD returns the distinct server addresses serving any FQDN of
// sld, sorted.
func (db *DB) ServersOfSLD(sld string) []netip.Addr {
	db.index()
	return distinctServers(db.recs, db.bySLD[sld])
}

func distinctServers(recs []LabeledFlow, idxs []int) []netip.Addr {
	seen := make(map[netip.Addr]struct{})
	for _, idx := range idxs {
		seen[recs[idx].Key.ServerIP] = struct{}{}
	}
	out := make([]netip.Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Servers returns every distinct server address in the database, sorted.
func (db *DB) Servers() []netip.Addr {
	db.index()
	out := make([]netip.Addr, 0, len(db.byServer))
	for a := range db.byServer {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// FQDNs returns every distinct label in the database, sorted.
func (db *DB) FQDNs() []string {
	db.index()
	out := make([]string, 0, len(db.byFQDN))
	for f := range db.byFQDN {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// SLDs returns every distinct second-level domain, sorted.
func (db *DB) SLDs() []string {
	db.index()
	out := make([]string, 0, len(db.bySLD))
	for s := range db.bySLD {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Ports returns every distinct server port, sorted.
func (db *DB) Ports() []uint16 {
	db.index()
	out := make([]uint16, 0, len(db.byPort))
	for p := range db.byPort {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LabelCoverage summarizes the hit ratio per L7 protocol — the measurement
// behind Table 2.
type LabelCoverage struct {
	Total, Labeled map[flows.L7Proto]int
}

// Coverage computes per-protocol labeling coverage for flows starting at or
// after warmup (the paper discards a 5-minute warm-up during which client
// OS caches still hold entries sniffed before the trace began).
func (db *DB) Coverage(warmup time.Duration) LabelCoverage {
	cov := LabelCoverage{
		Total:   make(map[flows.L7Proto]int),
		Labeled: make(map[flows.L7Proto]int),
	}
	for i := range db.recs {
		f := &db.recs[i]
		if f.Start < warmup {
			continue
		}
		cov.Total[f.L7]++
		if f.Labeled {
			cov.Labeled[f.L7]++
		}
	}
	return cov
}

// Ratio returns the labeled fraction for one protocol, or 0 when unseen.
func (c LabelCoverage) Ratio(p flows.L7Proto) float64 {
	if c.Total[p] == 0 {
		return 0
	}
	return float64(c.Labeled[p]) / float64(c.Total[p])
}
