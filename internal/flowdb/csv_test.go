package flowdb

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/flows"
)

func TestCSVRoundTrip(t *testing.T) {
	db := New()
	f1 := lf("www.example.com", "1.1.1.1", 443, flows.L7TLS, time.Second)
	f1.PreFlow = true
	f1.DNSDelay = 250 * time.Millisecond
	f1.FirstAfterDNS = true
	f1.BytesC2S, f1.BytesS2C = 1000, 2000
	f1.PktsC2S, f1.PktsS2C = 5, 7
	f1.SNI = "www.example.com"
	f1.CertNames = []string{"*.example.com"}
	f1.Truth = "www.example.com"
	db.Add(f1)
	db.Add(lf("", "9.9.9.9", 6881, flows.L7P2P, 2*time.Second))

	var buf bytes.Buffer
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("Len = %d", got.Len())
	}
	g := got.At(0)
	if g.Label != "www.example.com" || !g.Labeled || !g.PreFlow ||
		g.DNSDelay != 250*time.Millisecond || !g.FirstAfterDNS {
		t.Fatalf("flow 0 = %+v", g)
	}
	if g.Key != f1.Key || g.L7 != flows.L7TLS {
		t.Fatalf("key/l7 = %v %v", g.Key, g.L7)
	}
	if g.BytesC2S != 1000 || g.PktsS2C != 7 {
		t.Fatalf("counters = %+v", g)
	}
	if g.SNI != "www.example.com" || len(g.CertNames) != 1 || g.CertNames[0] != "*.example.com" {
		t.Fatalf("tls fields = %+v", g)
	}
	if g.Truth != "www.example.com" {
		t.Fatalf("truth = %q", g.Truth)
	}
	// Unlabeled flow stays unlabeled; indexes rebuilt.
	if got.At(1).Labeled {
		t.Fatal("flow 1 should be unlabeled")
	}
	if len(got.ByPort(443)) != 1 || len(got.BySLD("example.com")) != 1 {
		t.Fatal("indexes not rebuilt")
	}
}

func TestReadCSVBadHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Fatal("expected error")
	}
}

func TestReadCSVBadRow(t *testing.T) {
	var buf bytes.Buffer
	db := New()
	db.Add(lf("a.x.com", "1.1.1.1", 80, flows.L7HTTP, 0))
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	broken := strings.Replace(buf.String(), "1.1.1.1", "not-an-ip", 1)
	if _, err := ReadCSV(strings.NewReader(broken)); err == nil {
		t.Fatal("expected error for bad address")
	}
}

func TestReadCSVEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	db, err := ReadCSV(&buf)
	if err != nil || db.Len() != 0 {
		t.Fatalf("got %v %v", db.Len(), err)
	}
}

func TestCSVVantageRoundTrip(t *testing.T) {
	db := New()
	f := lf("www.example.com", "1.1.1.1", 443, flows.L7TLS, time.Second)
	f.Vantage = "EU1"
	db.Add(f)
	db.Add(lf("cdn.example.com", "2.2.2.2", 80, flows.L7HTTP, 2*time.Second)) // no vantage

	var buf bytes.Buffer
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0).Vantage != "EU1" || got.At(1).Vantage != "" {
		t.Fatalf("vantages = %q %q", got.At(0).Vantage, got.At(1).Vantage)
	}
	if len(got.ByVantage("EU1")) != 1 || len(got.Vantages()) != 1 {
		t.Fatal("vantage index not rebuilt")
	}
}

// TestReadCSVLegacyHeader: files written before the vantage column was
// added (20 columns) still load, with empty vantage labels.
func TestReadCSVLegacyHeader(t *testing.T) {
	db := New()
	db.Add(lf("www.example.com", "1.1.1.1", 443, flows.L7TLS, time.Second))
	var buf bytes.Buffer
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	// Strip the trailing vantage column from header and rows (the flow has
	// no vantage, so every line just ends with one extra separator/name).
	var legacy strings.Builder
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		line = strings.TrimSuffix(line, ",vantage")
		line = strings.TrimSuffix(line, ",")
		legacy.WriteString(line)
		legacy.WriteByte('\n')
	}
	got, err := ReadCSV(strings.NewReader(legacy.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.At(0).Vantage != "" {
		t.Fatalf("legacy load = %d flows, vantage %q", got.Len(), got.At(0).Vantage)
	}
}
