package flowdb

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/flows"
)

// wflow builds a minimal labeled flow ending at end.
func wflow(end time.Duration, label string) LabeledFlow {
	return LabeledFlow{
		Record:  flows.Record{Start: end - time.Second, End: end},
		Label:   label,
		Labeled: label != "",
	}
}

func TestWindowedRotation(t *testing.T) {
	var got []Window
	var counts []int
	w := NewWindowed(WindowConfig{
		Width: time.Minute,
		Flush: func(win Window) error {
			got = append(got, win)
			counts = append(counts, win.DB.Len())
			return nil
		},
	})
	// Two flows in window [0,1m), one in [1m,2m), one in [3m,4m) after a gap.
	for _, f := range []LabeledFlow{
		wflow(10*time.Second, "a.example.com"),
		wflow(50*time.Second, "b.example.com"),
		wflow(70*time.Second, "c.example.com"),
		wflow(200*time.Second, "d.example.com"),
	} {
		if err := w.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("flushed %d windows, want 3", len(got))
	}
	wantBounds := [][2]time.Duration{
		{0, time.Minute},
		{time.Minute, 2 * time.Minute},
		{3 * time.Minute, 4 * time.Minute},
	}
	wantCounts := []int{2, 1, 1}
	for i, win := range got {
		if win.Index != i {
			t.Errorf("window %d: index %d", i, win.Index)
		}
		if win.Start != wantBounds[i][0] || win.End != wantBounds[i][1] {
			t.Errorf("window %d: bounds [%v,%v), want [%v,%v)", i, win.Start, win.End, wantBounds[i][0], wantBounds[i][1])
		}
		if counts[i] != wantCounts[i] {
			t.Errorf("window %d: %d flows, want %d", i, counts[i], wantCounts[i])
		}
	}
	if w.WindowsFlushed() != 3 {
		t.Errorf("WindowsFlushed = %d, want 3", w.WindowsFlushed())
	}
}

// TestWindowedObserveHook: the pre-discard observer sees every flow that
// ever entered the store (including the final Close window), before
// Flush, and fires even with no Flush configured — the configuration
// where flows previously vanished unobserved.
func TestWindowedObserveHook(t *testing.T) {
	t.Run("no-flush", func(t *testing.T) {
		var seen []string
		w := NewWindowed(WindowConfig{
			Width: time.Minute,
			Observe: func(win Window) {
				for _, f := range win.DB.All() {
					seen = append(seen, f.Label)
				}
			},
		})
		labels := []string{"a.example.com", "b.example.com", "c.example.com", "d.example.com"}
		ends := []time.Duration{10 * time.Second, 50 * time.Second, 70 * time.Second, 200 * time.Second}
		for i, l := range labels {
			if err := w.Add(wflow(ends[i], l)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if len(seen) != len(labels) {
			t.Fatalf("observed %d flows, want %d", len(seen), len(labels))
		}
		for i, l := range labels {
			if seen[i] != l {
				t.Fatalf("observed[%d] = %q, want %q", i, seen[i], l)
			}
		}
	})
	t.Run("before-flush", func(t *testing.T) {
		var order []string
		w := NewWindowed(WindowConfig{
			Width:   time.Minute,
			Observe: func(win Window) { order = append(order, fmt.Sprintf("observe%d:%d", win.Index, win.DB.Len())) },
			Flush: func(win Window) error {
				order = append(order, fmt.Sprintf("flush%d:%d", win.Index, win.DB.Len()))
				return nil
			},
		})
		if err := w.Add(wflow(10*time.Second, "a.example.com")); err != nil {
			t.Fatal(err)
		}
		if err := w.Add(wflow(70*time.Second, "b.example.com")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		want := []string{"observe0:1", "flush0:1", "observe1:1", "flush1:1"}
		if len(order) != len(want) {
			t.Fatalf("order %v, want %v", order, want)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("order %v, want %v", order, want)
			}
		}
	})
}

// TestWindowedMatchesBatch: concatenating window contents reproduces the
// plain append-only DB over the same emission sequence, record for record.
func TestWindowedMatchesBatch(t *testing.T) {
	batch := New()
	concat := New()
	w := NewWindowed(WindowConfig{
		Width: 30 * time.Second,
		Flush: func(win Window) error {
			concat.Merge(win.DB)
			return nil
		},
	})
	// Emission-order flows with deliberately out-of-order End times within
	// a window (idle expiry emits in recency order, not End order).
	ends := []time.Duration{5 * time.Second, 3 * time.Second, 40 * time.Second,
		35 * time.Second, 95 * time.Second, 70 * time.Second, 100 * time.Second}
	for i, end := range ends {
		f := wflow(end, fmt.Sprintf("s%d.example.com", i))
		batch.Add(f)
		if err := w.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if concat.Len() != batch.Len() {
		t.Fatalf("concatenated windows hold %d flows, batch %d", concat.Len(), batch.Len())
	}
	for i := range batch.All() {
		if batch.At(i).Label != concat.At(i).Label || batch.At(i).End != concat.At(i).End {
			t.Fatalf("record %d diverges: batch %q@%v, windows %q@%v",
				i, batch.At(i).Label, batch.At(i).End, concat.At(i).Label, concat.At(i).End)
		}
	}
}

// TestWindowedReusesStorage: after the high-water window, rotation must
// stop growing the record slices (the bounded-heap property).
func TestWindowedReusesStorage(t *testing.T) {
	w := NewWindowed(WindowConfig{Width: time.Minute})
	perWindow := 100
	for win := 0; win < 8; win++ {
		base := time.Duration(win) * time.Minute
		for i := 0; i < perWindow; i++ {
			f := wflow(base+time.Duration(i)*100*time.Millisecond, "x.example.com")
			if err := w.Add(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Both the live and the spare DB must have settled at perWindow
	// capacity (one extra slot of slack for the boundary flow).
	if c := cap(w.cur.recs); c > 2*perWindow {
		t.Errorf("current window capacity %d after steady state, want <= %d", c, 2*perWindow)
	}
	if c := cap(w.spare.recs); c > 2*perWindow {
		t.Errorf("spare window capacity %d after steady state, want <= %d", c, 2*perWindow)
	}
}

func TestWindowedFlushErrorSticky(t *testing.T) {
	boom := errors.New("boom")
	w := NewWindowed(WindowConfig{
		Width: time.Minute,
		Flush: func(Window) error { return boom },
	})
	if err := w.Add(wflow(time.Second, "")); err != nil {
		t.Fatal(err)
	}
	err := w.Add(wflow(2*time.Minute, ""))
	if !errors.Is(err, boom) {
		t.Fatalf("Add after failing flush: %v, want %v", err, boom)
	}
	if err := w.Add(wflow(3*time.Minute, "")); !errors.Is(err, boom) {
		t.Fatalf("sticky error not returned: %v", err)
	}
	if err := w.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close after failing flush: %v, want %v", err, boom)
	}
}

func TestDBReset(t *testing.T) {
	db := New()
	db.Add(LabeledFlow{Label: "a.example.com", Labeled: true})
	if got := db.ByFQDN("a.example.com"); len(got) != 1 {
		t.Fatalf("pre-reset ByFQDN: %d", len(got))
	}
	db.Reset()
	if db.Len() != 0 {
		t.Fatalf("Len after Reset = %d", db.Len())
	}
	if got := db.ByFQDN("a.example.com"); len(got) != 0 {
		t.Fatalf("post-reset ByFQDN: %d", len(got))
	}
	db.Add(LabeledFlow{Label: "b.example.com", Labeled: true})
	if got := db.ByFQDN("b.example.com"); len(got) != 1 {
		t.Fatalf("post-reset reuse ByFQDN: %d", len(got))
	}
}
