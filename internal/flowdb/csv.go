package flowdb

import (
	"encoding/csv"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"repro/internal/flows"
	"repro/internal/layers"
)

// csv.go serializes labeled flows so cmd/dnhunter can hand results to
// cmd/analyzer (and to anything else that speaks CSV).

var csvHeader = []string{
	"start_ms", "end_ms", "client", "server", "cport", "sport", "proto",
	"l7", "label", "labeled", "preflow", "dns_delay_ms", "first_after_dns",
	"pkts_c2s", "pkts_s2c", "bytes_c2s", "bytes_s2c", "sni", "cert", "truth",
	"vantage",
}

// legacyCSVColumns is the column count before the vantage column was added;
// ReadCSV still accepts files written by older versions.
const legacyCSVColumns = 20

// WriteCSV writes the whole database as CSV with a header row.
func (db *DB) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for i := range db.recs {
		f := &db.recs[i]
		cert := ""
		if len(f.CertNames) > 0 {
			cert = f.CertNames[0]
		}
		rec := []string{
			strconv.FormatInt(f.Start.Milliseconds(), 10),
			strconv.FormatInt(f.End.Milliseconds(), 10),
			f.Key.ClientIP.String(),
			f.Key.ServerIP.String(),
			strconv.Itoa(int(f.Key.ClientPort)),
			strconv.Itoa(int(f.Key.ServerPort)),
			strconv.Itoa(int(f.Key.Proto)),
			f.L7.String(),
			f.Label,
			boolStr(f.Labeled),
			boolStr(f.PreFlow),
			strconv.FormatInt(f.DNSDelay.Milliseconds(), 10),
			boolStr(f.FirstAfterDNS),
			strconv.FormatUint(f.PktsC2S, 10),
			strconv.FormatUint(f.PktsS2C, 10),
			strconv.FormatUint(f.BytesC2S, 10),
			strconv.FormatUint(f.BytesS2C, 10),
			f.SNI,
			cert,
			f.Truth,
			f.Vantage,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// ReadCSV loads a database written by WriteCSV.
func ReadCSV(r io.Reader) (*DB, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("flowdb: reading CSV header: %w", err)
	}
	if (len(header) != len(csvHeader) && len(header) != legacyCSVColumns) || header[0] != csvHeader[0] {
		return nil, fmt.Errorf("flowdb: unexpected CSV header %v", header)
	}
	db := New()
	cr.FieldsPerRecord = len(header)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return db, nil
		}
		if err != nil {
			return nil, err
		}
		line++
		f, err := parseCSVRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("flowdb: line %d: %w", line, err)
		}
		db.Add(f)
	}
}

func parseCSVRecord(rec []string) (LabeledFlow, error) {
	var f LabeledFlow
	ms := func(s string) (time.Duration, error) {
		v, err := strconv.ParseInt(s, 10, 64)
		return time.Duration(v) * time.Millisecond, err
	}
	var err error
	if f.Start, err = ms(rec[0]); err != nil {
		return f, err
	}
	if f.End, err = ms(rec[1]); err != nil {
		return f, err
	}
	client, err := netip.ParseAddr(rec[2])
	if err != nil {
		return f, err
	}
	server, err := netip.ParseAddr(rec[3])
	if err != nil {
		return f, err
	}
	cport, err := strconv.Atoi(rec[4])
	if err != nil {
		return f, err
	}
	sport, err := strconv.Atoi(rec[5])
	if err != nil {
		return f, err
	}
	proto, err := strconv.Atoi(rec[6])
	if err != nil {
		return f, err
	}
	f.Key = flows.Key{
		ClientIP: client, ServerIP: server,
		ClientPort: uint16(cport), ServerPort: uint16(sport),
		Proto: layers.IPProtocol(proto),
	}
	f.L7 = parseL7(rec[7])
	f.Label = rec[8]
	f.Labeled = rec[9] == "1"
	f.PreFlow = rec[10] == "1"
	if f.DNSDelay, err = ms(rec[11]); err != nil {
		return f, err
	}
	f.FirstAfterDNS = rec[12] == "1"
	if f.PktsC2S, err = strconv.ParseUint(rec[13], 10, 64); err != nil {
		return f, err
	}
	if f.PktsS2C, err = strconv.ParseUint(rec[14], 10, 64); err != nil {
		return f, err
	}
	if f.BytesC2S, err = strconv.ParseUint(rec[15], 10, 64); err != nil {
		return f, err
	}
	if f.BytesS2C, err = strconv.ParseUint(rec[16], 10, 64); err != nil {
		return f, err
	}
	f.SNI = rec[17]
	if rec[18] != "" {
		f.CertNames = []string{rec[18]}
	}
	f.Truth = rec[19]
	if len(rec) > 20 {
		f.Vantage = rec[20]
	}
	return f, nil
}

func parseL7(s string) flows.L7Proto {
	switch strings.ToUpper(s) {
	case "HTTP":
		return flows.L7HTTP
	case "TLS":
		return flows.L7TLS
	case "P2P":
		return flows.L7P2P
	case "DNS":
		return flows.L7DNS
	default:
		return flows.L7Unknown
	}
}
