// Package swiss holds the shared primitives of the repo's swiss-style
// open-addressing hash tables: SWAR (SIMD-within-a-register) operations on
// 8-slot control-byte groups, and the multiply-fold hash mixers the tables
// key with.
//
// The layout follows the classic swiss-table design (Abseil's flat_hash_map,
// and Go 1.24's own runtime maps): one control byte per slot — the low 7
// bits of the hash for a full slot, a sentinel for empty/deleted — packed
// eight to a uint64 "group" so a lookup probes eight slots with a handful
// of 64-bit word operations and no per-slot branching. The tables built on
// these helpers (internal/flows, internal/resolver) keep their keys in the
// value slabs and store only uint32 slab indices in the buckets, so bucket
// storage is pointer-free: the GC never scans it, and a probe touches a
// dense ctrl word plus one 4-byte slot instead of chasing bucket pointers.
//
// Control-byte encoding (high bit set means "not full"):
//
//	0b0xxxxxxx  full    (low 7 bits of the key's hash, "h2")
//	0b10000000  empty   (never been used, terminates probe sequences)
//	0b11111110  deleted (tombstone; probe sequences continue past it)
package swiss

import (
	"encoding/binary"
	"math/bits"
	"net/netip"
)

// GroupSize is the number of slots per control word.
const GroupSize = 8

// Control byte sentinels.
const (
	CtrlEmpty   uint8 = 0b1000_0000
	CtrlDeleted uint8 = 0b1111_1110
)

// EmptyGroup is a control word of eight empty slots.
const EmptyGroup uint64 = 0x8080808080808080

const (
	loBits uint64 = 0x0101010101010101
	hiBits uint64 = 0x8080808080808080
)

// H1 is the probe-sequence part of a hash (group selection).
func H1(h uint64) uint64 { return h >> 7 }

// H2 is the control-byte part of a hash (low 7 bits).
func H2(h uint64) uint8 { return uint8(h) & 0x7F }

// MatchH2 returns a mask with bit 8i+7 set for every full lane i of g whose
// control byte equals h2. The SWAR subtraction trick can set a false
// positive on the lane above a true match — callers verify candidates by
// comparing keys, so a false positive costs one wasted compare and a false
// negative never occurs.
func MatchH2(g uint64, h2 uint8) uint64 {
	x := g ^ (loBits * uint64(h2))
	return (x - loBits) &^ x & hiBits
}

// MatchEmpty returns a mask of the empty lanes of g (exact: bit 7 set and
// bit 6 clear singles out CtrlEmpty among the sentinels).
func MatchEmpty(g uint64) uint64 { return g &^ (g << 1) & hiBits }

// MatchFree returns a mask of the empty-or-deleted lanes of g (any lane
// with the high control bit set).
func MatchFree(g uint64) uint64 { return g & hiBits }

// FirstLane returns the lane index (0..7) of the lowest set bit of a match
// mask. Iterate a mask with `for ; m != 0; m &= m - 1`.
func FirstLane(m uint64) int { return bits.TrailingZeros64(m) >> 3 }

// CtrlAt extracts lane's control byte from g.
func CtrlAt(g uint64, lane int) uint8 { return uint8(g >> (uint(lane) * 8)) }

// WithCtrl returns g with lane's control byte replaced by c.
func WithCtrl(g uint64, lane int, c uint8) uint64 {
	sh := uint(lane) * 8
	return g&^(uint64(0xFF)<<sh) | uint64(c)<<sh
}

// IsFull reports whether a control byte marks a full slot.
func IsFull(c uint8) bool { return c&0x80 == 0 }

// Hash mixing constants (splitmix64 / wyhash lineage).
const (
	k0 uint64 = 0x9E3779B97F4A7C15
	k1 uint64 = 0xD6E8FEB86659FD93
)

// Mix folds a 64x64→128-bit multiply into 64 bits; the core of the wyhash
// family and far cheaper than iterating FNV over the key bytes.
func Mix(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

// HashU64 mixes one 64-bit word into a running hash.
func HashU64(seed, v uint64) uint64 { return Mix(seed^v, k0) }

// HashAddr mixes an address into a running hash, reading it as two 64-bit
// words of its 16-byte form. IPv4 and 4-in-6 forms of the same address hash
// identically (they compare unequal, so this is merely a collision), and
// zones are ignored for the same reason.
func HashAddr(seed uint64, a netip.Addr) uint64 {
	b := a.As16()
	lo := binary.LittleEndian.Uint64(b[0:8])
	hi := binary.LittleEndian.Uint64(b[8:16])
	return Mix(seed^lo, hi^k1)
}
