package swiss

import (
	"math/bits"
	"net/netip"
	"testing"
)

// buildGroup packs eight control bytes (lane 0 first) into a group word.
func buildGroup(c [8]uint8) uint64 {
	var g uint64
	for i, b := range c {
		g |= uint64(b) << (8 * i)
	}
	return g
}

func lanesOf(m uint64) []int {
	var out []int
	for ; m != 0; m &= m - 1 {
		out = append(out, FirstLane(m))
	}
	return out
}

func TestMatchH2FindsAllTrueMatches(t *testing.T) {
	g := buildGroup([8]uint8{0x11, CtrlEmpty, 0x7F, 0x11, CtrlDeleted, 0x00, 0x11, 0x30})
	m := MatchH2(g, 0x11)
	got := map[int]bool{}
	for _, l := range lanesOf(m) {
		got[l] = true
	}
	// Every true match must be present (false positives are allowed by the
	// SWAR trick; absence of a true match is not).
	for _, want := range []int{0, 3, 6} {
		if !got[want] {
			t.Fatalf("lane %d (ctrl 0x11) not matched; mask lanes %v", want, lanesOf(m))
		}
	}
	// Sentinels must never match a full h2.
	if got[1] || got[4] {
		t.Fatalf("sentinel lane matched h2: lanes %v", lanesOf(m))
	}
}

func TestMatchH2NoFalseNegativesExhaustive(t *testing.T) {
	// For every h2 and every lane, a group holding h2 in that lane must
	// report it.
	for h2 := uint8(0); h2 < 0x80; h2++ {
		for lane := 0; lane < GroupSize; lane++ {
			g := EmptyGroup
			g = WithCtrl(g, lane, h2)
			m := MatchH2(g, h2)
			found := false
			for _, l := range lanesOf(m) {
				if l == lane {
					found = true
				}
			}
			if !found {
				t.Fatalf("h2=%#x lane=%d missed (mask %#x)", h2, lane, m)
			}
		}
	}
}

func TestMatchEmptyExact(t *testing.T) {
	g := buildGroup([8]uint8{0x11, CtrlEmpty, 0x7F, CtrlDeleted, CtrlEmpty, 0x00, 0x01, CtrlDeleted})
	want := []int{1, 4}
	got := lanesOf(MatchEmpty(g))
	if len(got) != len(want) {
		t.Fatalf("empty lanes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("empty lanes = %v, want %v", got, want)
		}
	}
	if n := bits.OnesCount64(MatchFree(g)); n != 4 {
		t.Fatalf("free lanes = %d, want 4 (2 empty + 2 deleted)", n)
	}
}

func TestCtrlRoundTrip(t *testing.T) {
	g := EmptyGroup
	for lane := 0; lane < GroupSize; lane++ {
		c := uint8(lane * 7 % 0x80)
		g = WithCtrl(g, lane, c)
		if CtrlAt(g, lane) != c {
			t.Fatalf("lane %d: ctrl = %#x, want %#x", lane, CtrlAt(g, lane), c)
		}
	}
	// Untouched high lanes preserved through low-lane writes.
	g2 := WithCtrl(g, 0, CtrlDeleted)
	for lane := 1; lane < GroupSize; lane++ {
		if CtrlAt(g2, lane) != CtrlAt(g, lane) {
			t.Fatalf("WithCtrl stomped lane %d", lane)
		}
	}
	if IsFull(CtrlEmpty) || IsFull(CtrlDeleted) || !IsFull(0x7F) || !IsFull(0) {
		t.Fatal("IsFull misclassifies sentinels")
	}
}

func TestHashAddrSpreads(t *testing.T) {
	// Sanity: distinct addresses should not collapse onto one hash. Not a
	// statistical test — just a guard against a degenerate mixer.
	seen := map[uint64]bool{}
	for i := 0; i < 256; i++ {
		a := netip.AddrFrom4([4]byte{10, 0, byte(i >> 4), byte(i)})
		seen[HashAddr(1, a)] = true
	}
	if len(seen) < 250 {
		t.Fatalf("only %d distinct hashes over 256 addresses", len(seen))
	}
	// Equal addresses hash equally regardless of 4 vs 4-in-6 form.
	v4 := netip.AddrFrom4([4]byte{192, 0, 2, 1})
	v6 := netip.AddrFrom16(v4.As16())
	if HashAddr(7, v4) != HashAddr(7, v6) {
		t.Fatal("4 and 4-in-6 forms hash differently")
	}
}
