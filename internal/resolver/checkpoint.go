package resolver

// Clist checkpoint/restore: the streaming (Engine.Serve) restart story.
// The resolver is the one pipeline stage whose state cannot be
// reconstructed from future traffic — a DNS response sniffed before a
// crash labels flows that start after the restart (clients keep resolving
// from their OS caches for minutes to hours, the very effect the paper's
// Clist replicates). A checkpoint serializes the live Clist in FIFO order
// so a restarted process resumes with the same (client, server) → FQDN
// view, and — because order is preserved — the same future eviction
// sequence.
//
// The snapshot is compacting: dead Clist slots (evicted entries awaiting
// recycling) and entries whose every back-reference was replaced are
// skipped, so a restored Clist holds only live state and may be shorter
// than the original. Restore replays entries through Insert, which
// rebuilds the lookup structure (either MapKind) and the back-references
// exactly as the original inserts did.
//
// The wire format is a small versioned binary framing (netip.Addr does
// not survive encoding/gob): addresses are length-prefixed
// netip.Addr.MarshalBinary output, strings are uvarint-length-prefixed
// UTF-8, integers are fixed-width little-endian. Version 2 appends an
// integrity trailer — a redundant version byte plus a CRC32 (IEEE,
// little-endian) over everything before it — so a truncated or bit-rotted
// file is rejected with ErrSnapshotCorrupt instead of being half-restored,
// and a file written by a newer release is rejected with
// ErrSnapshotVersion instead of being misparsed. Version-1 files (no
// trailer) are still read.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/netip"
	"time"
)

// snapshotMagicPrefix identifies the checkpoint framing; the byte after
// it is the format version.
const snapshotMagicPrefix = "DNHCLIST"

// snapshotVersion is the format WriteSnapshot emits.
const snapshotVersion = 2

// snapshotTrailerLen is the v2 trailer: version byte + CRC32.
const snapshotTrailerLen = 5

// snapshotMaxEntry bounds per-entry variable-length fields when reading,
// so a corrupt or hostile file cannot provoke huge allocations.
const (
	snapshotMaxFQDN    = 4096
	snapshotMaxServers = 1 << 16
)

// SnapshotEntry is one live Clist entry in portable form: the client that
// resolved FQDN, the server addresses the response carried (only those
// whose back-references are still live), and the entry's bookkeeping.
type SnapshotEntry struct {
	Client  netip.Addr
	Servers []netip.Addr
	FQDN    string
	// At is the trace time the DNS response was observed, relative to the
	// checkpointed run's own trace start. A restarted run's clock restarts
	// at zero, so flows labeled by restored entries can report a DNSDelay
	// spanning the restart.
	At time.Duration
	// Used carries the paper's useless-DNS bookkeeping (Table 9) across
	// the restart.
	Used bool
}

// Snapshot returns the live Clist in FIFO order (oldest first). Evicted
// slots and entries with no remaining back-references are skipped; see
// the package notes on compaction.
func (r *Resolver) Snapshot() []SnapshotEntry {
	out := make([]SnapshotEntry, 0, r.alive)
	emit := func(e *Entry) {
		if e == nil || !e.live || len(e.refs) == 0 {
			return
		}
		se := SnapshotEntry{
			// All of an entry's back-references share one client: they are
			// appended only by the Insert call that created the entry.
			Client: e.refs[0].client,
			FQDN:   e.FQDN,
			At:     e.At,
			Used:   e.Used,
		}
		se.Servers = make([]netip.Addr, len(e.refs))
		for i, ref := range e.refs {
			se.Servers[i] = ref.server
		}
		out = append(out, se)
	}
	if len(r.clist) < r.cfg.ClistSize {
		// Still filling: slots 0..len-1 are already FIFO order.
		for _, e := range r.clist {
			emit(e)
		}
		return out
	}
	// Wrapped ring: the oldest entry sits at next.
	for i := r.next; i < len(r.clist); i++ {
		emit(r.clist[i])
	}
	for i := 0; i < r.next; i++ {
		emit(r.clist[i])
	}
	return out
}

// Restore replays a snapshot into the resolver, oldest entry first, so
// the rebuilt Clist preserves the checkpointed FIFO (eviction) order. It
// must be called on a fresh resolver, before any traffic; restoring over
// live state inserts the snapshot as if it were new DNS responses.
//
// The activity counters (Stats) are left at zero — they describe the new
// process's work, not the previous one's — except ClientsPeak, which
// reflects the restored client population.
func (r *Resolver) Restore(entries []SnapshotEntry) {
	saved := r.stats
	for i := range entries {
		se := &entries[i]
		if !se.Client.IsValid() || len(se.Servers) == 0 {
			continue
		}
		r.Insert(se.Client, se.FQDN, se.Servers, se.At)
		if se.Used {
			// Insert filed the entry under every (client, server) pair;
			// any of them resolves it. lookupNode bypasses the stats.
			if n := r.lookupNode(se.Client, se.Servers[0]); n != nil {
				n.entry.Used = true
			}
		}
	}
	peak := r.stats.ClientsPeak
	r.stats = saved
	if peak > r.stats.ClientsPeak {
		r.stats.ClientsPeak = peak
	}
}

// WriteSnapshot serializes entries to w in the versioned binary framing
// (version 2: CRC32 + version trailer; see the package notes).
func WriteSnapshot(w io.Writer, entries []SnapshotEntry) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.WriteString(snapshotMagicPrefix); err != nil {
		return err
	}
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	writeAddr := func(a netip.Addr) error {
		b, err := a.MarshalBinary()
		if err != nil {
			return err
		}
		if err := bw.WriteByte(byte(len(b))); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	if err := writeUvarint(uint64(len(entries))); err != nil {
		return err
	}
	for i := range entries {
		se := &entries[i]
		if len(se.FQDN) > snapshotMaxFQDN {
			return fmt.Errorf("resolver: snapshot entry %d: FQDN longer than %d", i, snapshotMaxFQDN)
		}
		if len(se.Servers) > snapshotMaxServers {
			return fmt.Errorf("resolver: snapshot entry %d: %d servers exceeds %d", i, len(se.Servers), snapshotMaxServers)
		}
		if err := writeUvarint(uint64(len(se.FQDN))); err != nil {
			return err
		}
		if _, err := bw.WriteString(se.FQDN); err != nil {
			return err
		}
		if err := writeUvarint(uint64(se.At)); err != nil {
			return err
		}
		used := byte(0)
		if se.Used {
			used = 1
		}
		if err := bw.WriteByte(used); err != nil {
			return err
		}
		if err := writeAddr(se.Client); err != nil {
			return err
		}
		if err := writeUvarint(uint64(len(se.Servers))); err != nil {
			return err
		}
		for _, s := range se.Servers {
			if err := writeAddr(s); err != nil {
				return err
			}
		}
	}
	// Trailer: a redundant version byte under the CRC, then the CRC over
	// everything before it (magic, body, version byte).
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	_, err := w.Write(sum[:])
	return err
}

// ErrBadSnapshot reports a checkpoint stream that is not a resolver
// snapshot at all (wrong or missing magic).
var ErrBadSnapshot = errors.New("resolver: not a clist snapshot")

// ErrSnapshotCorrupt reports a recognized snapshot that fails integrity
// validation: CRC mismatch, missing trailer, or an inconsistent trailer
// version byte — truncation and bit rot land here.
var ErrSnapshotCorrupt = errors.New("resolver: clist snapshot corrupt")

// ErrSnapshotVersion reports a snapshot written by a newer format version
// than this code understands.
var ErrSnapshotVersion = errors.New("resolver: clist snapshot from a newer version")

// ReadSnapshot parses a stream written by WriteSnapshot. It reads the
// stream fully before parsing (checkpoints are bounded by the Clist size)
// so the version-2 CRC32 trailer validates every byte the parser will
// see; version-1 streams (no trailer) are still accepted. Failures map to
// ErrBadSnapshot (not a snapshot), ErrSnapshotCorrupt (integrity), or
// ErrSnapshotVersion (future format).
func ReadSnapshot(r io.Reader) ([]SnapshotEntry, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if len(data) < len(snapshotMagicPrefix)+1 || string(data[:len(snapshotMagicPrefix)]) != snapshotMagicPrefix {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	body := data[len(snapshotMagicPrefix)+1:]
	switch ver := data[len(snapshotMagicPrefix)]; {
	case ver == 1:
		// Legacy trailer-less framing: parse as written.
	case ver == snapshotVersion:
		if len(body) < snapshotTrailerLen {
			return nil, fmt.Errorf("%w: missing trailer", ErrSnapshotCorrupt)
		}
		want := binary.LittleEndian.Uint32(data[len(data)-4:])
		if got := crc32.ChecksumIEEE(data[:len(data)-4]); got != want {
			return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrSnapshotCorrupt, got, want)
		}
		if tv := data[len(data)-snapshotTrailerLen]; tv != snapshotVersion {
			return nil, fmt.Errorf("%w: trailer version %d", ErrSnapshotCorrupt, tv)
		}
		body = body[:len(body)-snapshotTrailerLen]
	default:
		return nil, fmt.Errorf("%w: version %d (this build reads <= %d)", ErrSnapshotVersion, ver, snapshotVersion)
	}
	entries, err := readSnapshotBody(bufio.NewReader(bytes.NewReader(body)))
	if err != nil {
		return nil, err
	}
	return entries, nil
}

// readSnapshotBody parses the entry framing shared by every format
// version (everything between the magic and the optional trailer).
func readSnapshotBody(br *bufio.Reader) ([]SnapshotEntry, error) {
	readAddr := func() (netip.Addr, error) {
		n, err := br.ReadByte()
		if err != nil {
			return netip.Addr{}, err
		}
		if n != 4 && n != 16 {
			return netip.Addr{}, fmt.Errorf("address length %d", n)
		}
		var buf [16]byte
		if _, err := io.ReadFull(br, buf[:n]); err != nil {
			return netip.Addr{}, err
		}
		var a netip.Addr
		if err := a.UnmarshalBinary(buf[:n]); err != nil {
			return netip.Addr{}, err
		}
		return a, nil
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("resolver: snapshot count: %w", err)
	}
	// Cap the preallocation; a lying header still costs only appends.
	entries := make([]SnapshotEntry, 0, min(count, 1<<16))
	for i := uint64(0); i < count; i++ {
		var se SnapshotEntry
		flen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("resolver: snapshot entry %d: %w", i, err)
		}
		if flen > snapshotMaxFQDN {
			return nil, fmt.Errorf("resolver: snapshot entry %d: FQDN length %d", i, flen)
		}
		fqdn := make([]byte, flen)
		if _, err := io.ReadFull(br, fqdn); err != nil {
			return nil, fmt.Errorf("resolver: snapshot entry %d: %w", i, err)
		}
		se.FQDN = string(fqdn)
		at, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("resolver: snapshot entry %d: %w", i, err)
		}
		se.At = time.Duration(at)
		used, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("resolver: snapshot entry %d: %w", i, err)
		}
		se.Used = used != 0
		if se.Client, err = readAddr(); err != nil {
			return nil, fmt.Errorf("resolver: snapshot entry %d: client: %w", i, err)
		}
		nsrv, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("resolver: snapshot entry %d: %w", i, err)
		}
		if nsrv > snapshotMaxServers {
			return nil, fmt.Errorf("resolver: snapshot entry %d: %d servers", i, nsrv)
		}
		se.Servers = make([]netip.Addr, nsrv)
		for j := range se.Servers {
			if se.Servers[j], err = readAddr(); err != nil {
				return nil, fmt.Errorf("resolver: snapshot entry %d: server %d: %w", i, j, err)
			}
		}
		entries = append(entries, se)
	}
	return entries, nil
}
