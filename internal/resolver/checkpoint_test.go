package resolver

import (
	"bytes"
	"errors"
	"fmt"
	"net/netip"
	"testing"
	"time"
)

func ckClient(i int) netip.Addr { return netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}) }
func ckServer(i int) netip.Addr { return netip.AddrFrom4([4]byte{93, 184, byte(i >> 8), byte(i)}) }

// TestSnapshotRestoreRoundTrip: a restored resolver answers every lookup
// the original answered, with the same FQDN and Used flag.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, kind := range []MapKind{MapHash, MapOrdered} {
		t.Run(fmt.Sprintf("kind=%d", kind), func(t *testing.T) {
			r := New(Config{ClistSize: 64, MapKind: kind})
			for i := 0; i < 40; i++ {
				servers := []netip.Addr{ckServer(2 * i), ckServer(2*i + 1)}
				r.Insert(ckClient(i%8), fmt.Sprintf("host%d.example.com", i), servers, time.Duration(i)*time.Second)
			}
			// Mark a few entries used through the public lookup path.
			for i := 0; i < 10; i++ {
				if e, ok := r.LookupEntry(ckClient(i%8), ckServer(2*i)); ok {
					e.Used = true
				}
			}

			snap := r.Snapshot()
			r2 := New(Config{ClistSize: 64, MapKind: kind})
			r2.Restore(snap)
			if st := r2.Stats(); st.Responses != 0 || st.Lookups != 0 {
				t.Fatalf("restore polluted activity counters: %+v", st)
			}

			for i := 0; i < 40; i++ {
				for _, srv := range []netip.Addr{ckServer(2 * i), ckServer(2*i + 1)} {
					e1, ok1 := r.LookupEntry(ckClient(i%8), srv)
					e2, ok2 := r2.LookupEntry(ckClient(i%8), srv)
					if ok1 != ok2 {
						t.Fatalf("entry %d/%v: hit %v vs restored %v", i, srv, ok1, ok2)
					}
					if !ok1 {
						continue
					}
					if e1.FQDN != e2.FQDN || e1.At != e2.At || e1.Used != e2.Used {
						t.Fatalf("entry %d/%v: (%q,%v,%v) vs restored (%q,%v,%v)",
							i, srv, e1.FQDN, e1.At, e1.Used, e2.FQDN, e2.At, e2.Used)
					}
				}
			}
			if r.Clients() != r2.Clients() {
				t.Fatalf("clients: %d vs restored %d", r.Clients(), r2.Clients())
			}
		})
	}
}

// TestSnapshotPreservesEvictionOrder: after restore, continued inserts
// evict the same entries the original resolver would have evicted.
func TestSnapshotPreservesEvictionOrder(t *testing.T) {
	const size = 16
	mkInsert := func(r *Resolver, i int) {
		r.Insert(ckClient(i), fmt.Sprintf("h%d.example.com", i), []netip.Addr{ckServer(i)}, time.Duration(i)*time.Second)
	}
	// Continuous run: 24 inserts through a 16-slot Clist.
	cont := New(Config{ClistSize: size})
	for i := 0; i < 24; i++ {
		mkInsert(cont, i)
	}
	// Split run: 20 inserts, checkpoint, restore, 4 more.
	first := New(Config{ClistSize: size})
	for i := 0; i < 20; i++ {
		mkInsert(first, i)
	}
	second := New(Config{ClistSize: size})
	second.Restore(first.Snapshot())
	for i := 20; i < 24; i++ {
		mkInsert(second, i)
	}
	for i := 0; i < 24; i++ {
		f1, ok1 := cont.Lookup(ckClient(i), ckServer(i))
		f2, ok2 := second.Lookup(ckClient(i), ckServer(i))
		if ok1 != ok2 || f1 != f2 {
			t.Fatalf("key %d: continuous (%q,%v) vs restored (%q,%v)", i, f1, ok1, f2, ok2)
		}
	}
}

// TestSnapshotSkipsDeadEntries: replaced entries (no refs left) are
// compacted out of the snapshot.
func TestSnapshotSkipsDeadEntries(t *testing.T) {
	r := New(Config{ClistSize: 8})
	r.Insert(ckClient(1), "old.example.com", []netip.Addr{ckServer(1)}, 0)
	r.Insert(ckClient(1), "new.example.com", []netip.Addr{ckServer(1)}, time.Second)
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot holds %d entries, want 1 (replaced entry compacted)", len(snap))
	}
	if snap[0].FQDN != "new.example.com" {
		t.Fatalf("snapshot kept %q", snap[0].FQDN)
	}
}

func TestSnapshotWireRoundTrip(t *testing.T) {
	entries := []SnapshotEntry{
		{
			Client:  ckClient(1),
			Servers: []netip.Addr{ckServer(1), netip.MustParseAddr("2001:db8::1")},
			FQDN:    "cdn.example.com",
			At:      90 * time.Second,
			Used:    true,
		},
		{
			Client:  netip.MustParseAddr("2001:db8::99"),
			Servers: []netip.Addr{ckServer(7)},
			FQDN:    "v6.example.org",
			At:      3 * time.Hour,
		},
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("read %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		w, g := entries[i], got[i]
		if w.Client != g.Client || w.FQDN != g.FQDN || w.At != g.At || w.Used != g.Used || len(w.Servers) != len(g.Servers) {
			t.Fatalf("entry %d: %+v vs %+v", i, w, g)
		}
		for j := range w.Servers {
			if w.Servers[j] != g.Servers[j] {
				t.Fatalf("entry %d server %d: %v vs %v", i, j, w.Servers[j], g.Servers[j])
			}
		}
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a snapshot at all"))); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("garbage accepted: %v", err)
	}
	// Truncated valid stream must error, not hang or return partial data.
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, []SnapshotEntry{{
		Client: ckClient(1), Servers: []netip.Addr{ckServer(1)}, FQDN: "x.example.com",
	}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadSnapshot(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

// ckSnapshotBytes serializes a small snapshot for the corruption tests.
func ckSnapshotBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := WriteSnapshot(&buf, []SnapshotEntry{
		{Client: ckClient(1), Servers: []netip.Addr{ckServer(1)}, FQDN: "a.example.com", At: time.Second},
		{Client: ckClient(2), Servers: []netip.Addr{ckServer(2)}, FQDN: "b.example.com", At: 2 * time.Second, Used: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRejectsTruncation: any tail loss — even a single byte —
// fails the CRC with the corrupt sentinel, never a partial restore.
func TestSnapshotRejectsTruncation(t *testing.T) {
	data := ckSnapshotBytes(t)
	for _, cut := range []int{1, 4, 5, len(data) / 2} {
		if _, err := ReadSnapshot(bytes.NewReader(data[:len(data)-cut])); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("cut %d bytes: got %v, want ErrSnapshotCorrupt", cut, err)
		}
	}
}

// TestSnapshotRejectsBitFlips: a flipped bit anywhere in the body or
// trailer is caught by the checksum.
func TestSnapshotRejectsBitFlips(t *testing.T) {
	data := ckSnapshotBytes(t)
	// Flip one bit in every byte past the magic+version header (flips in
	// the magic prefix yield ErrBadSnapshot, and a version-byte flip
	// ErrSnapshotVersion — both still rejected, tested elsewhere).
	for off := len(snapshotMagicPrefix) + 1; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 1 << (off % 8)
		if _, err := ReadSnapshot(bytes.NewReader(mut)); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("flip at byte %d: got %v, want ErrSnapshotCorrupt", off, err)
		}
	}
}

// TestSnapshotRejectsFutureVersion: a file stamped by a newer release is
// refused with the version sentinel, not misparsed.
func TestSnapshotRejectsFutureVersion(t *testing.T) {
	data := ckSnapshotBytes(t)
	mut := append([]byte(nil), data...)
	mut[len(snapshotMagicPrefix)] = snapshotVersion + 1
	if _, err := ReadSnapshot(bytes.NewReader(mut)); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("future version accepted: %v", err)
	}
}

// TestSnapshotReadsLegacyV1: a trailer-less version-1 file (what earlier
// releases wrote) still restores.
func TestSnapshotReadsLegacyV1(t *testing.T) {
	data := ckSnapshotBytes(t)
	// v2 layout: magic(8) | ver(1) | body | trailer ver(1) | crc(4).
	body := data[len(snapshotMagicPrefix)+1 : len(data)-snapshotTrailerLen]
	v1 := append([]byte(snapshotMagicPrefix+"\x01"), body...)
	got, err := ReadSnapshot(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("legacy v1 snapshot rejected: %v", err)
	}
	if len(got) != 2 || got[0].FQDN != "a.example.com" || !got[1].Used {
		t.Fatalf("legacy v1 entries mangled: %+v", got)
	}
}
