// Package resolver implements the paper's central data structure (§3.1.1,
// Fig. 2, Algorithm 1): a passive replica of the monitored clients' DNS
// caches. Each sniffed DNS response inserts one FQDN entry into a FIFO
// circular list (the Clist) of fixed size L, and links it from a lookup
// structure keyed by (clientIP, serverIP). Back-references from each entry
// to the map keys pointing at it make eviction O(refs) with no garbage
// collection pass, exactly as the paper describes.
//
// The lookup structure comes in two flavours, selected by Config.MapKind:
//
//   - MapHash (the default, and the hot path) flattens the paper's
//     two-level clientIP → serverIP → entry maps into a single swiss-style
//     open-addressing table keyed by the combined (client, server) address
//     pair — one probe per lookup instead of two chained hash maps, with
//     buckets that hold only uint32 indices into a node slab (pointer-free,
//     invisible to the GC). This models the paper's footnote-2 hash-map
//     alternative.
//   - MapOrdered keeps the paper-fidelity two-level structure with an
//     ordered inner map (a sorted slice with binary search, O(log n) like
//     the paper's C++ std::map), behind the serverMap seam.
//
// BenchmarkAblationMapKind compares them.
package resolver

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"sort"
	"time"

	"repro/internal/swiss"
)

// MapKind selects the (client, server) → entry lookup container.
type MapKind uint8

// Container choices.
const (
	// MapHash uses the flat swiss table: O(1) expected, the paper's
	// footnote-2 option.
	MapHash MapKind = iota
	// MapOrdered uses the two-level structure with a sorted inner slice
	// and binary search: O(log n) like the paper's std::map.
	MapOrdered
)

// Config tunes the resolver.
type Config struct {
	// ClistSize is L, the circular list capacity. The paper dimensions L so
	// the implied caching time covers ~1 hour of responses (§6). Zero means
	// 1<<20 entries.
	ClistSize int
	// MapKind selects the lookup-structure implementation.
	MapKind MapKind
	// History keeps up to this many previous FQDNs per (client, server) key
	// so LookupAll can return all candidate labels (§6 discusses the <4%
	// confusion from last-writer-wins; the multi-label extension resolves
	// it). Zero keeps only the latest (the paper's default behaviour).
	History int
}

// Stats counts resolver activity.
type Stats struct {
	Responses    uint64 // Insert calls
	Addresses    uint64 // serverIP keys inserted
	Replaced     uint64 // keys that pointed to an older entry
	Evictions    uint64 // Clist slots recycled
	EvictedRefs  uint64 // map keys removed by eviction
	Lookups      uint64
	Hits         uint64
	Misses       uint64
	ClientsPeak  int
	EntriesAlive int // entries currently holding at least one ref
}

// Entry is one Clist slot: an FQDN with the time its response was seen and
// the back-references that point at it.
type Entry struct {
	FQDN string
	At   time.Duration
	// Used is set by the flow tagger when the entry labels its first flow;
	// entries never used measure the paper's "useless DNS" (Table 9).
	Used bool
	refs []backref
	// live guards against double recycling.
	live bool
}

type backref struct {
	client, server netip.Addr
}

// serverMap is the MapOrdered inner container abstraction (the seam the
// paper-fidelity mode lives behind).
type serverMap interface {
	get(netip.Addr) (*node, bool)
	put(netip.Addr, *node)
	del(netip.Addr)
	size() int
}

// node holds the newest entry for a (client, server) key plus bounded
// history of displaced entries.
type node struct {
	entry *Entry
	older []*Entry // most recent first; bounded by Config.History
}

// orderedServerMap is the MapOrdered implementation: entries sorted by
// address, looked up by binary search. Matches the strict-weak-ordering
// criterion the paper describes for its C++ maps.
type orderedServerMap struct {
	keys  []netip.Addr
	nodes []*node
}

func (m *orderedServerMap) search(a netip.Addr) int {
	return sort.Search(len(m.keys), func(i int) bool { return m.keys[i].Compare(a) >= 0 })
}

func (m *orderedServerMap) get(a netip.Addr) (*node, bool) {
	i := m.search(a)
	if i < len(m.keys) && m.keys[i] == a {
		return m.nodes[i], true
	}
	return nil, false
}

func (m *orderedServerMap) put(a netip.Addr, n *node) {
	i := m.search(a)
	if i < len(m.keys) && m.keys[i] == a {
		m.nodes[i] = n
		return
	}
	m.keys = append(m.keys, netip.Addr{})
	m.nodes = append(m.nodes, nil)
	copy(m.keys[i+1:], m.keys[i:])
	copy(m.nodes[i+1:], m.nodes[i:])
	m.keys[i] = a
	m.nodes[i] = n
}

func (m *orderedServerMap) del(a netip.Addr) {
	i := m.search(a)
	if i < len(m.keys) && m.keys[i] == a {
		m.keys = append(m.keys[:i], m.keys[i+1:]...)
		m.nodes = append(m.nodes[:i], m.nodes[i+1:]...)
	}
}

func (m *orderedServerMap) size() int { return len(m.keys) }

// pairNode is one flat-table node: the (client, server) key it is filed
// under, the newest entry, and bounded history. Nodes live in a dense slab
// addressed by the uint32 slots of the swiss index; slots are recycled on
// remove, so cross-statement references use slots, never *pairNode.
//
//dnhunter:slab
type pairNode struct {
	client, server netip.Addr
	hash           uint64
	entry          *Entry
	older          []*Entry
}

// noSlot is the nil slab index.
const noSlot = ^uint32(0)

// nodeChunkBits sizes the pairNode slab chunks (256 nodes per chunk).
// Chunks are allocated once and never copied, so slab growth neither moves
// nodes nor re-pays write barriers over their pointer fields the way a
// doubling append would.
const (
	nodeChunkBits = 8
	nodeChunkLen  = 1 << nodeChunkBits
	nodeChunkMask = nodeChunkLen - 1
)

// pairTable is the flat MapHash lookup structure: a swiss index over a
// pairNode slab, keyed by the combined (client, server) address pair.
type pairTable struct {
	ctrl   []uint64
	slots  []uint32
	gmask  uint64
	used   int
	tombs  int
	growAt int

	seed uint64
	// nodes backs every pairNode in fixed-size chunks, addressed by the
	// uint32 slots of the index.
	nodes    [][]pairNode
	nodesLen uint32
	free     []uint32
	// clients counts live keys per client address; its length is the
	// number of distinct clients tracked. It is touched only when a key is
	// created or destroyed — never on the per-flow lookup path.
	clients map[netip.Addr]uint32
}

func newPairTable() *pairTable {
	t := &pairTable{seed: rand.Uint64(), clients: make(map[netip.Addr]uint32)}
	t.init(16)
	return t
}

func (t *pairTable) init(groups int) {
	//dnhunter:alloc-ok rehash-time growth, amortized O(1) per insert
	t.ctrl = make([]uint64, groups)
	for i := range t.ctrl {
		t.ctrl[i] = swiss.EmptyGroup
	}
	//dnhunter:alloc-ok rehash-time growth, amortized O(1) per insert
	t.slots = make([]uint32, groups*swiss.GroupSize)
	t.gmask = uint64(groups - 1)
	t.used, t.tombs = 0, 0
	t.growAt = groups * swiss.GroupSize * 7 / 8
}

func (t *pairTable) hash(client, server netip.Addr) uint64 {
	return swiss.HashAddr(swiss.HashAddr(t.seed, client), server)
}

// at returns the node at slab slot i.
func (t *pairTable) at(i uint32) *pairNode {
	//dnhunter:slab-ok the sanctioned accessor; callers must not retain the pointer past slot recycling
	return &t.nodes[i>>nodeChunkBits][i&nodeChunkMask]
}

// find returns the node slot for (client, server), or noSlot.
func (t *pairTable) find(h uint64, client, server netip.Addr) uint32 {
	h2 := swiss.H2(h)
	g := swiss.H1(h) & t.gmask
	for step := uint64(1); ; step++ {
		w := t.ctrl[g]
		for m := swiss.MatchH2(w, h2); m != 0; m &= m - 1 {
			s := t.slots[g*swiss.GroupSize+uint64(swiss.FirstLane(m))]
			if n := t.at(s); n.client == client && n.server == server {
				return s
			}
		}
		if swiss.MatchEmpty(w) != 0 {
			return noSlot
		}
		g = (g + step) & t.gmask
	}
}

// rawInsert places slot under h; the key must be absent and capacity
// available.
func (t *pairTable) rawInsert(h uint64, slot uint32) {
	g := swiss.H1(h) & t.gmask
	for step := uint64(1); ; step++ {
		w := t.ctrl[g]
		if m := swiss.MatchFree(w); m != 0 {
			lane := swiss.FirstLane(m)
			if swiss.CtrlAt(w, lane) == swiss.CtrlDeleted {
				t.tombs--
			}
			t.ctrl[g] = swiss.WithCtrl(w, lane, swiss.H2(h))
			t.slots[g*swiss.GroupSize+uint64(lane)] = slot
			t.used++
			return
		}
		g = (g + step) & t.gmask
	}
}

func (t *pairTable) rehash() {
	groups := len(t.ctrl)
	if t.used >= t.growAt/2 {
		groups *= 2
	}
	oldCtrl, oldSlots := t.ctrl, t.slots
	t.init(groups)
	for g, w := range oldCtrl {
		for lane := 0; lane < swiss.GroupSize; lane++ {
			if swiss.IsFull(swiss.CtrlAt(w, lane)) {
				s := oldSlots[g*swiss.GroupSize+lane]
				t.rawInsert(t.at(s).hash, s)
			}
		}
	}
}

// insert creates a node for (client, server) → e and returns its slot.
func (t *pairTable) insert(h uint64, client, server netip.Addr, e *Entry) uint32 {
	if t.used+t.tombs >= t.growAt {
		t.rehash()
	}
	var slot uint32
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		slot = t.nodesLen
		if slot>>nodeChunkBits == uint32(len(t.nodes)) {
			//dnhunter:alloc-ok fixed-size chunk carve, amortized over nodeChunkLen nodes
			t.nodes = append(t.nodes, make([]pairNode, nodeChunkLen))
		}
		t.nodesLen++
	}
	n := t.at(slot)
	n.client, n.server, n.hash, n.entry = client, server, h, e
	t.rawInsert(h, slot)
	t.clients[client]++
	return slot
}

// remove erases the key at slot from the index and recycles the node,
// dropping the client from the clients count when this was its last key.
func (t *pairTable) remove(slot uint32) {
	n := t.at(slot)
	h2 := swiss.H2(n.hash)
	g := swiss.H1(n.hash) & t.gmask
	for step := uint64(1); ; step++ {
		w := t.ctrl[g]
		for m := swiss.MatchH2(w, h2); m != 0; m &= m - 1 {
			lane := swiss.FirstLane(m)
			if t.slots[g*swiss.GroupSize+uint64(lane)] == slot {
				if swiss.MatchEmpty(w) != 0 {
					t.ctrl[g] = swiss.WithCtrl(w, lane, swiss.CtrlEmpty)
				} else {
					t.ctrl[g] = swiss.WithCtrl(w, lane, swiss.CtrlDeleted)
					t.tombs++
				}
				t.used--
				if c := t.clients[n.client] - 1; c == 0 {
					delete(t.clients, n.client)
				} else {
					t.clients[n.client] = c
				}
				n.client, n.server, n.hash, n.entry = netip.Addr{}, netip.Addr{}, 0, nil
				n.older = n.older[:0]
				t.free = append(t.free, slot)
				return
			}
		}
		if swiss.MatchEmpty(w) != 0 {
			return // unreachable for live slots
		}
		g = (g + step) & t.gmask
	}
}

// Resolver is the DNS cache replica. Not safe for concurrent use; shard by
// client address for parallel deployments (the paper suggests odd/even
// fourth-octet sharding).
type Resolver struct {
	cfg Config
	// flat is the MapHash lookup structure; nil in MapOrdered mode, where
	// clients holds the two-level paper-fidelity structure instead.
	flat    *pairTable
	clients map[netip.Addr]serverMap
	// clist grows on demand up to cfg.ClistSize and only then behaves as a
	// ring. The FIFO semantics are identical to a preallocated ring — slots
	// fill in index order before any slot is ever recycled — but a lightly
	// loaded resolver never pays for (or makes the GC scan) a million-slot
	// pointer array.
	clist []*Entry
	next  int
	// alive tracks the live Clist entries incrementally (insert ++, evict
	// --), so Stats never rescans the list.
	alive int
	// freeEntry recycles evicted Clist entries (with their refs capacity)
	// so a saturated resolver inserts without allocating. Only used when
	// History == 0: with history enabled, evicted entries can remain
	// referenced from node history lists.
	freeEntry []*Entry
	// freeNode recycles nodes dropped by eviction (MapOrdered mode).
	freeNode []*node
	// Slabs back fresh entries, nodes, and backrefs in blocks, cutting the
	// filling phase (before the Clist wraps and the free lists take over)
	// from ~3 heap objects per DNS response to ~3 per slabSize responses.
	entrySlab []Entry
	nodeSlab  []node
	refSlab   []backref
	stats     Stats
}

// slabSize is the block size for entry/node/backref slab allocation.
const slabSize = 256

// New creates a resolver.
func New(cfg Config) *Resolver {
	if cfg.ClistSize <= 0 {
		cfg.ClistSize = 1 << 20
	}
	r := &Resolver{cfg: cfg}
	if cfg.MapKind == MapOrdered {
		r.clients = make(map[netip.Addr]serverMap)
	} else {
		r.flat = newPairTable()
	}
	return r
}

// L returns the configured Clist size.
func (r *Resolver) L() int { return r.cfg.ClistSize }

// Stats returns a snapshot of the counters. EntriesAlive is maintained
// incrementally on insert/evict, so this is O(1) — it no longer rescans
// the Clist.
func (r *Resolver) Stats() Stats {
	s := r.stats
	s.EntriesAlive = r.alive
	return s
}

// Clients returns the number of clients currently tracked.
func (r *Resolver) Clients() int {
	if r.flat != nil {
		return len(r.flat.clients)
	}
	return len(r.clients)
}

func (r *Resolver) newServerMap() serverMap {
	return &orderedServerMap{}
}

// Insert records one DNS response: clientIP asked for fqdn and received the
// given server addresses (Algorithm 1, INSERT). Responses with no addresses
// are counted but change nothing.
//
//dnhunter:hotpath
func (r *Resolver) Insert(clientIP netip.Addr, fqdn string, servers []netip.Addr, at time.Duration) {
	r.stats.Responses++
	if fqdn == "" || len(servers) == 0 {
		return
	}
	entry := r.newEntry(fqdn, at)
	r.reserveRefs(entry, len(servers))
	if r.flat != nil {
		r.insertFlat(clientIP, entry, servers)
	} else {
		r.insertOrdered(clientIP, entry, servers)
	}
	// Recycle the next Clist slot (lines 22–25). While the list is still
	// below capacity L, slots are appended — index order, exactly the order
	// a preallocated ring would fill them.
	if len(r.clist) < r.cfg.ClistSize {
		r.clist = append(r.clist, entry)
		return
	}
	if old := r.clist[r.next]; old != nil && old.live {
		r.evict(old)
	}
	r.clist[r.next] = entry
	r.next++
	if r.next == len(r.clist) {
		r.next = 0
	}
}

// insertFlat links entry from every (clientIP, server) key in the flat
// table (Algorithm 1, lines 5–21, MapHash mode).
func (r *Resolver) insertFlat(clientIP netip.Addr, entry *Entry, servers []netip.Addr) {
	ft := r.flat
	hc := swiss.HashAddr(ft.seed, clientIP) // client half, shared across servers
	for _, serverIP := range servers {
		r.stats.Addresses++
		h := swiss.HashAddr(hc, serverIP)
		if slot := ft.find(h, clientIP, serverIP); slot != noSlot {
			n := ft.at(slot)
			// Replace the old reference (Algorithm 1, lines 11–15): the old
			// entry loses this back-reference; optionally it is retained as
			// history for LookupAll.
			old := n.entry
			old.removeRef(clientIP, serverIP)
			r.stats.Replaced++
			if r.cfg.History > 0 && old.FQDN != entry.FQDN {
				//dnhunter:alloc-ok history mode only (History>0); bounded prepend, off on the default path
				n.older = append([]*Entry{old}, n.older...)
				if len(n.older) > r.cfg.History {
					n.older = n.older[:r.cfg.History]
				}
			}
			n.entry = entry
		} else {
			ft.insert(h, clientIP, serverIP, entry)
			if len(ft.clients) > r.stats.ClientsPeak {
				r.stats.ClientsPeak = len(ft.clients)
			}
		}
		entry.refs = append(entry.refs, backref{client: clientIP, server: serverIP})
	}
}

// insertOrdered is insertFlat for the two-level MapOrdered structure.
func (r *Resolver) insertOrdered(clientIP netip.Addr, entry *Entry, servers []netip.Addr) {
	sm, ok := r.clients[clientIP]
	if !ok {
		sm = r.newServerMap()
		r.clients[clientIP] = sm
		if len(r.clients) > r.stats.ClientsPeak {
			r.stats.ClientsPeak = len(r.clients)
		}
	}
	for _, serverIP := range servers {
		r.stats.Addresses++
		if n, ok := sm.get(serverIP); ok {
			old := n.entry
			old.removeRef(clientIP, serverIP)
			r.stats.Replaced++
			if r.cfg.History > 0 && old.FQDN != entry.FQDN {
				//dnhunter:alloc-ok history mode only (History>0); bounded prepend, off on the default path
				n.older = append([]*Entry{old}, n.older...)
				if len(n.older) > r.cfg.History {
					n.older = n.older[:r.cfg.History]
				}
			}
			n.entry = entry
		} else {
			sm.put(serverIP, r.newNode(entry))
		}
		entry.refs = append(entry.refs, backref{client: clientIP, server: serverIP})
	}
}

// newEntry takes an entry from the free list, or carves one from the slab.
func (r *Resolver) newEntry(fqdn string, at time.Duration) *Entry {
	r.alive++
	if n := len(r.freeEntry); n > 0 {
		e := r.freeEntry[n-1]
		r.freeEntry = r.freeEntry[:n-1]
		e.FQDN, e.At, e.Used, e.live = fqdn, at, false, true
		return e
	}
	if len(r.entrySlab) == 0 {
		//dnhunter:alloc-ok fixed-size block carve, amortized over slabSize entries
		r.entrySlab = make([]Entry, slabSize)
	}
	e := &r.entrySlab[0]
	r.entrySlab = r.entrySlab[1:]
	e.FQDN, e.At, e.live = fqdn, at, true
	return e
}

// newNode takes a node from the free list, or carves one from the slab
// (MapOrdered mode; the flat table slab-allocates its own nodes).
func (r *Resolver) newNode(e *Entry) *node {
	if n := len(r.freeNode); n > 0 {
		nd := r.freeNode[n-1]
		r.freeNode = r.freeNode[:n-1]
		nd.entry = e
		return nd
	}
	if len(r.nodeSlab) == 0 {
		//dnhunter:alloc-ok fixed-size block carve, amortized over slabSize nodes
		r.nodeSlab = make([]node, slabSize)
	}
	nd := &r.nodeSlab[0]
	r.nodeSlab = r.nodeSlab[1:]
	nd.entry = e
	return nd
}

// reserveRefs gives e backref capacity for n appends, carving fresh
// capacity from the shared slab. An entry's refs are only ever appended
// inside the single Insert call that created it, so slab regions never
// interleave; the capacity limit makes a stray overflow re-allocate rather
// than stomp a neighbor.
func (r *Resolver) reserveRefs(e *Entry, n int) {
	if cap(e.refs) >= n {
		return // recycled entry with enough capacity
	}
	if len(r.refSlab) < n {
		//dnhunter:alloc-ok fixed-size block carve, amortized over slabSize backrefs
		r.refSlab = make([]backref, max(slabSize, n))
	}
	e.refs = r.refSlab[:0:n]
	r.refSlab = r.refSlab[n:]
}

// evict removes every map key still pointing at e.
func (r *Resolver) evict(e *Entry) {
	r.stats.Evictions++
	if r.flat != nil {
		r.evictFlat(e)
	} else {
		r.evictOrdered(e)
	}
	e.refs = e.refs[:0]
	e.live = false
	r.alive--
	if r.cfg.History == 0 {
		// With history enabled an evicted entry can still be referenced
		// from another node's history list, so it must not be reused; the
		// paper's default (no history) recycles it.
		r.freeEntry = append(r.freeEntry, e)
	} else {
		e.refs = nil
	}
}

func (r *Resolver) evictFlat(e *Entry) {
	ft := r.flat
	for _, ref := range e.refs {
		slot := ft.find(ft.hash(ref.client, ref.server), ref.client, ref.server)
		if slot == noSlot {
			continue
		}
		n := ft.at(slot)
		if n.entry == e {
			// Promote history if any, else drop the key.
			if len(n.older) > 0 {
				n.entry = n.older[0]
				n.older = n.older[1:]
			} else {
				ft.remove(slot)
				r.stats.EvictedRefs++
			}
			continue
		}
		// e may live only in history.
		for i, h := range n.older {
			if h == e {
				n.older = append(n.older[:i], n.older[i+1:]...)
				break
			}
		}
	}
}

func (r *Resolver) evictOrdered(e *Entry) {
	for _, ref := range e.refs {
		sm, ok := r.clients[ref.client]
		if !ok {
			continue
		}
		n, ok := sm.get(ref.server)
		if !ok {
			continue
		}
		if n.entry == e {
			if len(n.older) > 0 {
				n.entry = n.older[0]
				n.older = n.older[1:]
			} else {
				sm.del(ref.server)
				r.stats.EvictedRefs++
				n.entry = nil
				r.freeNode = append(r.freeNode, n)
				if sm.size() == 0 {
					delete(r.clients, ref.client)
				}
			}
			continue
		}
		for i, h := range n.older {
			if h == e {
				n.older = append(n.older[:i], n.older[i+1:]...)
				break
			}
		}
	}
}

// removeRef drops one back-reference from the entry (replacement path).
func (e *Entry) removeRef(client, server netip.Addr) {
	for i, ref := range e.refs {
		if ref.client == client && ref.server == server {
			e.refs = append(e.refs[:i], e.refs[i+1:]...)
			return
		}
	}
}

// Lookup returns the FQDN clientIP most recently resolved to serverIP
// (Algorithm 1, LOOKUP). ok is false on a cache miss.
func (r *Resolver) Lookup(clientIP, serverIP netip.Addr) (fqdn string, ok bool) {
	e, ok := r.LookupEntry(clientIP, serverIP)
	if !ok {
		return "", false
	}
	return e.FQDN, true
}

// LookupEntry is Lookup but returns the whole entry (FQDN plus the time the
// response was observed, used to measure first-flow delay, Fig. 12). In
// MapHash mode this is a single flat-table probe.
//
//dnhunter:hotpath
func (r *Resolver) LookupEntry(clientIP, serverIP netip.Addr) (*Entry, bool) {
	r.stats.Lookups++
	if ft := r.flat; ft != nil {
		if slot := ft.find(ft.hash(clientIP, serverIP), clientIP, serverIP); slot != noSlot {
			r.stats.Hits++
			return ft.at(slot).entry, true
		}
		r.stats.Misses++
		return nil, false
	}
	sm, ok := r.clients[clientIP]
	if !ok {
		r.stats.Misses++
		return nil, false
	}
	n, ok := sm.get(serverIP)
	if !ok {
		r.stats.Misses++
		return nil, false
	}
	r.stats.Hits++
	return n.entry, true
}

// lookupNode returns the node for (clientIP, serverIP) without touching
// the stats, or nil.
func (r *Resolver) lookupNode(clientIP, serverIP netip.Addr) *node {
	if ft := r.flat; ft != nil {
		if slot := ft.find(ft.hash(clientIP, serverIP), clientIP, serverIP); slot != noSlot {
			// pairNode and node share the entry/older shape; adapt via a
			// value copy so LookupAll has one formatting path.
			n := ft.at(slot)
			return &node{entry: n.entry, older: n.older}
		}
		return nil
	}
	sm, ok := r.clients[clientIP]
	if !ok {
		return nil
	}
	n, ok := sm.get(serverIP)
	if !ok {
		return nil
	}
	return n
}

// LookupAll returns every FQDN currently associated with (clientIP,
// serverIP), newest first. With Config.History == 0 this is at most one
// name. The multi-label extension discussed in §6.
func (r *Resolver) LookupAll(clientIP, serverIP netip.Addr) []string {
	n := r.lookupNode(clientIP, serverIP)
	if n == nil {
		return nil
	}
	out := []string{n.entry.FQDN}
	for _, h := range n.older {
		out = append(out, h.FQDN)
	}
	return out
}

// Add accumulates o into s (per-shard merge). Counters sum; ClientsPeak
// sums too, because a sharded deployment partitions clients across shards,
// so the sum of per-shard peaks is the aggregate client population (exact
// while no entries are evicted, an upper bound otherwise).
func (s *Stats) Add(o Stats) {
	s.Responses += o.Responses
	s.Addresses += o.Addresses
	s.Replaced += o.Replaced
	s.Evictions += o.Evictions
	s.EvictedRefs += o.EvictedRefs
	s.Lookups += o.Lookups
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.ClientsPeak += o.ClientsPeak
	s.EntriesAlive += o.EntriesAlive
}

// HitRatio returns Hits/Lookups, or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// String summarizes the stats for logs.
func (s Stats) String() string {
	return fmt.Sprintf("responses=%d addrs=%d replaced=%d evictions=%d lookups=%d hit=%.1f%%",
		s.Responses, s.Addresses, s.Replaced, s.Evictions, s.Lookups, 100*s.HitRatio())
}
