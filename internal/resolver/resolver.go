// Package resolver implements the paper's central data structure (§3.1.1,
// Fig. 2, Algorithm 1): a passive replica of the monitored clients' DNS
// caches. Each sniffed DNS response inserts one FQDN entry into a FIFO
// circular list (the Clist) of fixed size L, and links it from a two-level
// lookup structure clientIP → serverIP → entry. Back-references from each
// entry to the map keys pointing at it make eviction O(refs) with no
// garbage collection pass, exactly as the paper describes.
//
// The inner serverIP map comes in two flavours, selected by Config.MapKind:
// the paper's C++ std::map is modelled by an ordered slice with binary
// search (MapOrdered), and its footnote-2 alternative by Go's hash map
// (MapHash). BenchmarkAblationMapKind compares them.
package resolver

import (
	"fmt"
	"net/netip"
	"sort"
	"time"
)

// MapKind selects the inner serverIP → entry container.
type MapKind uint8

// Container choices.
const (
	// MapHash uses Go's built-in map: O(1) expected, the paper's footnote-2
	// option.
	MapHash MapKind = iota
	// MapOrdered uses a sorted slice with binary search: O(log n) like the
	// paper's std::map.
	MapOrdered
)

// Config tunes the resolver.
type Config struct {
	// ClistSize is L, the circular list capacity. The paper dimensions L so
	// the implied caching time covers ~1 hour of responses (§6). Zero means
	// 1<<20 entries.
	ClistSize int
	// MapKind selects the inner map implementation.
	MapKind MapKind
	// History keeps up to this many previous FQDNs per (client, server) key
	// so LookupAll can return all candidate labels (§6 discusses the <4%
	// confusion from last-writer-wins; the multi-label extension resolves
	// it). Zero keeps only the latest (the paper's default behaviour).
	History int
}

// Stats counts resolver activity.
type Stats struct {
	Responses    uint64 // Insert calls
	Addresses    uint64 // serverIP keys inserted
	Replaced     uint64 // keys that pointed to an older entry
	Evictions    uint64 // Clist slots recycled
	EvictedRefs  uint64 // map keys removed by eviction
	Lookups      uint64
	Hits         uint64
	Misses       uint64
	ClientsPeak  int
	EntriesAlive int // entries currently holding at least one ref
}

// Entry is one Clist slot: an FQDN with the time its response was seen and
// the back-references that point at it.
type Entry struct {
	FQDN string
	At   time.Duration
	// Used is set by the flow tagger when the entry labels its first flow;
	// entries never used measure the paper's "useless DNS" (Table 9).
	Used bool
	refs []backref
	// live guards against double recycling.
	live bool
}

type backref struct {
	client, server netip.Addr
	// prev chains history when Config.History > 0.
}

// serverMap is the inner container abstraction.
type serverMap interface {
	get(netip.Addr) (*node, bool)
	put(netip.Addr, *node)
	del(netip.Addr)
	size() int
}

// node holds the newest entry for a (client, server) key plus bounded
// history of displaced entries.
type node struct {
	entry *Entry
	older []*Entry // most recent first; bounded by Config.History
}

// hashServerMap is the MapHash implementation.
type hashServerMap map[netip.Addr]*node

func (m hashServerMap) get(a netip.Addr) (*node, bool) { n, ok := m[a]; return n, ok }
func (m hashServerMap) put(a netip.Addr, n *node)      { m[a] = n }
func (m hashServerMap) del(a netip.Addr)               { delete(m, a) }
func (m hashServerMap) size() int                      { return len(m) }

// orderedServerMap is the MapOrdered implementation: entries sorted by
// address, looked up by binary search. Matches the strict-weak-ordering
// criterion the paper describes for its C++ maps.
type orderedServerMap struct {
	keys  []netip.Addr
	nodes []*node
}

func (m *orderedServerMap) search(a netip.Addr) int {
	return sort.Search(len(m.keys), func(i int) bool { return m.keys[i].Compare(a) >= 0 })
}

func (m *orderedServerMap) get(a netip.Addr) (*node, bool) {
	i := m.search(a)
	if i < len(m.keys) && m.keys[i] == a {
		return m.nodes[i], true
	}
	return nil, false
}

func (m *orderedServerMap) put(a netip.Addr, n *node) {
	i := m.search(a)
	if i < len(m.keys) && m.keys[i] == a {
		m.nodes[i] = n
		return
	}
	m.keys = append(m.keys, netip.Addr{})
	m.nodes = append(m.nodes, nil)
	copy(m.keys[i+1:], m.keys[i:])
	copy(m.nodes[i+1:], m.nodes[i:])
	m.keys[i] = a
	m.nodes[i] = n
}

func (m *orderedServerMap) del(a netip.Addr) {
	i := m.search(a)
	if i < len(m.keys) && m.keys[i] == a {
		m.keys = append(m.keys[:i], m.keys[i+1:]...)
		m.nodes = append(m.nodes[:i], m.nodes[i+1:]...)
	}
}

func (m *orderedServerMap) size() int { return len(m.keys) }

// Resolver is the DNS cache replica. Not safe for concurrent use; shard by
// client address for parallel deployments (the paper suggests odd/even
// fourth-octet sharding).
type Resolver struct {
	cfg     Config
	clients map[netip.Addr]serverMap
	// clist grows on demand up to cfg.ClistSize and only then behaves as a
	// ring. The FIFO semantics are identical to a preallocated ring — slots
	// fill in index order before any slot is ever recycled — but a lightly
	// loaded resolver never pays for (or makes the GC scan) a million-slot
	// pointer array.
	clist []*Entry
	next  int
	// freeEntry recycles evicted Clist entries (with their refs capacity)
	// so a saturated resolver inserts without allocating. Only used when
	// History == 0: with history enabled, evicted entries can remain
	// referenced from node history lists.
	freeEntry []*Entry
	// freeNode recycles nodes dropped by eviction.
	freeNode []*node
	// Slabs back fresh entries, nodes, and backrefs in blocks, cutting the
	// filling phase (before the Clist wraps and the free lists take over)
	// from ~3 heap objects per DNS response to ~3 per slabSize responses.
	entrySlab []Entry
	nodeSlab  []node
	refSlab   []backref
	stats     Stats
}

// slabSize is the block size for entry/node/backref slab allocation.
const slabSize = 256

// New creates a resolver.
func New(cfg Config) *Resolver {
	if cfg.ClistSize <= 0 {
		cfg.ClistSize = 1 << 20
	}
	return &Resolver{
		cfg:     cfg,
		clients: make(map[netip.Addr]serverMap),
	}
}

// L returns the configured Clist size.
func (r *Resolver) L() int { return r.cfg.ClistSize }

// Stats returns a snapshot of the counters.
func (r *Resolver) Stats() Stats {
	s := r.stats
	s.EntriesAlive = 0
	for _, e := range r.clist {
		if e != nil && e.live {
			s.EntriesAlive++
		}
	}
	return s
}

// Clients returns the number of clients currently tracked.
func (r *Resolver) Clients() int { return len(r.clients) }

func (r *Resolver) newServerMap() serverMap {
	if r.cfg.MapKind == MapOrdered {
		return &orderedServerMap{}
	}
	return make(hashServerMap)
}

// Insert records one DNS response: clientIP asked for fqdn and received the
// given server addresses (Algorithm 1, INSERT). Responses with no addresses
// are counted but change nothing.
func (r *Resolver) Insert(clientIP netip.Addr, fqdn string, servers []netip.Addr, at time.Duration) {
	r.stats.Responses++
	if fqdn == "" || len(servers) == 0 {
		return
	}
	sm, ok := r.clients[clientIP]
	if !ok {
		sm = r.newServerMap()
		r.clients[clientIP] = sm
		if len(r.clients) > r.stats.ClientsPeak {
			r.stats.ClientsPeak = len(r.clients)
		}
	}
	entry := r.newEntry(fqdn, at)
	r.reserveRefs(entry, len(servers))
	for _, serverIP := range servers {
		r.stats.Addresses++
		if n, ok := sm.get(serverIP); ok {
			// Replace the old reference (Algorithm 1, lines 11–15): the old
			// entry loses this back-reference; optionally it is retained as
			// history for LookupAll.
			old := n.entry
			old.removeRef(clientIP, serverIP)
			r.stats.Replaced++
			if r.cfg.History > 0 && old.FQDN != fqdn {
				n.older = append([]*Entry{old}, n.older...)
				if len(n.older) > r.cfg.History {
					n.older = n.older[:r.cfg.History]
				}
			}
			n.entry = entry
		} else {
			sm.put(serverIP, r.newNode(entry))
		}
		entry.refs = append(entry.refs, backref{client: clientIP, server: serverIP})
	}
	// Recycle the next Clist slot (lines 22–25). While the list is still
	// below capacity L, slots are appended — index order, exactly the order
	// a preallocated ring would fill them.
	if len(r.clist) < r.cfg.ClistSize {
		r.clist = append(r.clist, entry)
		return
	}
	if old := r.clist[r.next]; old != nil && old.live {
		r.evict(old)
	}
	r.clist[r.next] = entry
	r.next++
	if r.next == len(r.clist) {
		r.next = 0
	}
}

// newEntry takes an entry from the free list, or carves one from the slab.
func (r *Resolver) newEntry(fqdn string, at time.Duration) *Entry {
	if n := len(r.freeEntry); n > 0 {
		e := r.freeEntry[n-1]
		r.freeEntry = r.freeEntry[:n-1]
		e.FQDN, e.At, e.Used, e.live = fqdn, at, false, true
		return e
	}
	if len(r.entrySlab) == 0 {
		r.entrySlab = make([]Entry, slabSize)
	}
	e := &r.entrySlab[0]
	r.entrySlab = r.entrySlab[1:]
	e.FQDN, e.At, e.live = fqdn, at, true
	return e
}

// newNode takes a node from the free list, or carves one from the slab.
func (r *Resolver) newNode(e *Entry) *node {
	if n := len(r.freeNode); n > 0 {
		nd := r.freeNode[n-1]
		r.freeNode = r.freeNode[:n-1]
		nd.entry = e
		return nd
	}
	if len(r.nodeSlab) == 0 {
		r.nodeSlab = make([]node, slabSize)
	}
	nd := &r.nodeSlab[0]
	r.nodeSlab = r.nodeSlab[1:]
	nd.entry = e
	return nd
}

// reserveRefs gives e backref capacity for n appends, carving fresh
// capacity from the shared slab. An entry's refs are only ever appended
// inside the single Insert call that created it, so slab regions never
// interleave; the capacity limit makes a stray overflow re-allocate rather
// than stomp a neighbor.
func (r *Resolver) reserveRefs(e *Entry, n int) {
	if cap(e.refs) >= n {
		return // recycled entry with enough capacity
	}
	if len(r.refSlab) < n {
		r.refSlab = make([]backref, max(slabSize, n))
	}
	e.refs = r.refSlab[:0:n]
	r.refSlab = r.refSlab[n:]
}

// evict removes every map key still pointing at e.
func (r *Resolver) evict(e *Entry) {
	r.stats.Evictions++
	for _, ref := range e.refs {
		sm, ok := r.clients[ref.client]
		if !ok {
			continue
		}
		n, ok := sm.get(ref.server)
		if !ok {
			continue
		}
		if n.entry == e {
			// Promote history if any, else drop the key.
			if len(n.older) > 0 {
				n.entry = n.older[0]
				n.older = n.older[1:]
			} else {
				sm.del(ref.server)
				r.stats.EvictedRefs++
				n.entry = nil
				r.freeNode = append(r.freeNode, n)
				if sm.size() == 0 {
					delete(r.clients, ref.client)
				}
			}
			continue
		}
		// e may live only in history.
		for i, h := range n.older {
			if h == e {
				n.older = append(n.older[:i], n.older[i+1:]...)
				break
			}
		}
	}
	e.refs = e.refs[:0]
	e.live = false
	if r.cfg.History == 0 {
		// With history enabled an evicted entry can still be referenced
		// from another node's history list, so it must not be reused; the
		// paper's default (no history) recycles it.
		r.freeEntry = append(r.freeEntry, e)
	} else {
		e.refs = nil
	}
}

// removeRef drops one back-reference from the entry (replacement path).
func (e *Entry) removeRef(client, server netip.Addr) {
	for i, ref := range e.refs {
		if ref.client == client && ref.server == server {
			e.refs = append(e.refs[:i], e.refs[i+1:]...)
			return
		}
	}
}

// Lookup returns the FQDN clientIP most recently resolved to serverIP
// (Algorithm 1, LOOKUP). ok is false on a cache miss.
func (r *Resolver) Lookup(clientIP, serverIP netip.Addr) (fqdn string, ok bool) {
	e, ok := r.LookupEntry(clientIP, serverIP)
	if !ok {
		return "", false
	}
	return e.FQDN, true
}

// LookupEntry is Lookup but returns the whole entry (FQDN plus the time the
// response was observed, used to measure first-flow delay, Fig. 12).
func (r *Resolver) LookupEntry(clientIP, serverIP netip.Addr) (*Entry, bool) {
	r.stats.Lookups++
	sm, ok := r.clients[clientIP]
	if !ok {
		r.stats.Misses++
		return nil, false
	}
	n, ok := sm.get(serverIP)
	if !ok {
		r.stats.Misses++
		return nil, false
	}
	r.stats.Hits++
	return n.entry, true
}

// LookupAll returns every FQDN currently associated with (clientIP,
// serverIP), newest first. With Config.History == 0 this is at most one
// name. The multi-label extension discussed in §6.
func (r *Resolver) LookupAll(clientIP, serverIP netip.Addr) []string {
	sm, ok := r.clients[clientIP]
	if !ok {
		return nil
	}
	n, ok := sm.get(serverIP)
	if !ok {
		return nil
	}
	out := []string{n.entry.FQDN}
	for _, h := range n.older {
		out = append(out, h.FQDN)
	}
	return out
}

// Add accumulates o into s (per-shard merge). Counters sum; ClientsPeak
// sums too, because a sharded deployment partitions clients across shards,
// so the sum of per-shard peaks is the aggregate client population (exact
// while no entries are evicted, an upper bound otherwise).
func (s *Stats) Add(o Stats) {
	s.Responses += o.Responses
	s.Addresses += o.Addresses
	s.Replaced += o.Replaced
	s.Evictions += o.Evictions
	s.EvictedRefs += o.EvictedRefs
	s.Lookups += o.Lookups
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.ClientsPeak += o.ClientsPeak
	s.EntriesAlive += o.EntriesAlive
}

// HitRatio returns Hits/Lookups, or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// String summarizes the stats for logs.
func (s Stats) String() string {
	return fmt.Sprintf("responses=%d addrs=%d replaced=%d evictions=%d lookups=%d hit=%.1f%%",
		s.Responses, s.Addresses, s.Replaced, s.Evictions, s.Lookups, 100*s.HitRatio())
}
