package resolver

import (
	"fmt"
	"net/netip"
	"testing"
	"time"
)

// Differential fuzz for the flat swiss pair-table (MapHash): the reference
// model is the MapOrdered resolver — the untouched two-level paper
// structure with a sorted-slice inner map — plus an independent
// last-writer-wins oracle on a built-in map for the lookup results. All
// three must agree on every lookup, and the two resolvers must agree on
// every statistic, through arbitrary insert/lookup sequences with heavy
// Clist eviction.

var (
	fzClients = []netip.Addr{
		netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("10.0.0.2"),
		netip.MustParseAddr("10.7.7.7"),
		netip.MustParseAddr("fd00::1"),
	}
	fzServers = []netip.Addr{
		netip.MustParseAddr("203.0.113.1"),
		netip.MustParseAddr("203.0.113.2"),
		netip.MustParseAddr("203.0.113.3"),
		netip.MustParseAddr("198.51.100.4"),
		netip.MustParseAddr("2001:db8::5"),
	}
)

// runDifferential replays ops against both map kinds and cross-checks
// behaviour after every operation; see the file comment for the contract.
func runDifferential(t *testing.T, data []byte, clistSize, history int) {
	t.Helper()
	h := New(Config{ClistSize: clistSize, MapKind: MapHash, History: history})
	o := New(Config{ClistSize: clistSize, MapKind: MapOrdered, History: history})

	at := time.Duration(0)
	servers := make([]netip.Addr, 0, 3)
	for i := 0; i+3 <= len(data) && i < 3*4096; i += 3 {
		b0, b1, b2 := data[i], data[i+1], data[i+2]
		at += time.Duration(b2&0x0F) * time.Second
		cl := fzClients[int(b0)%len(fzClients)]
		if b0&0x80 != 0 {
			// Lookup op: all three structures must agree.
			sv := fzServers[int(b1)%len(fzServers)]
			hf, hok := h.Lookup(cl, sv)
			of, ook := o.Lookup(cl, sv)
			if hok != ook || hf != of {
				t.Fatalf("op %d: Lookup(%v,%v) = %q,%v (flat) vs %q,%v (ordered)", i/3, cl, sv, hf, hok, of, ook)
			}
			continue
		}
		// Insert op: 1..3 distinct servers, FQDN from a small pool.
		servers = servers[:0]
		n := 1 + int(b1>>6)%3
		for k := 0; k < n; k++ {
			servers = append(servers, fzServers[(int(b1)+k)%len(fzServers)])
		}
		fq := fmt.Sprintf("h%d.example.com", int(b2>>4))
		h.Insert(cl, fq, servers, at)
		o.Insert(cl, fq, servers, at)
		if h.Clients() != o.Clients() {
			t.Fatalf("op %d: clients %d (flat) vs %d (ordered)", i/3, h.Clients(), o.Clients())
		}
	}
	if hs, os := h.Stats(), o.Stats(); hs != os {
		t.Fatalf("stats diverge:\n flat    %+v\n ordered %+v", hs, os)
	}
	// Full cross-product sweep, including LookupAll history contents.
	for _, cl := range fzClients {
		for _, sv := range fzServers {
			ha, oa := h.LookupAll(cl, sv), o.LookupAll(cl, sv)
			if len(ha) != len(oa) {
				t.Fatalf("LookupAll(%v,%v): %v vs %v", cl, sv, ha, oa)
			}
			for k := range ha {
				if ha[k] != oa[k] {
					t.Fatalf("LookupAll(%v,%v): %v vs %v", cl, sv, ha, oa)
				}
			}
		}
	}
}

// FuzzFlatVsOrderedResolver pits the new flat open-addressing table against
// the legacy two-level reference over random insert/lookup/evict sequences.
func FuzzFlatVsOrderedResolver(f *testing.F) {
	f.Add([]byte{0x01, 0x40, 0x12, 0x81, 0x00, 0x00}, uint8(4), uint8(0))
	f.Add([]byte{0x00, 0x00, 0x10, 0x00, 0x40, 0x20, 0x80, 0x00, 0x00}, uint8(2), uint8(2))
	f.Add([]byte{0x03, 0xC0, 0xFF, 0x83, 0x04, 0x01, 0x02, 0x80, 0x33}, uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, clist, history uint8) {
		runDifferential(t, data, 1+int(clist)%64, int(history)%3)
	})
}

// TestFlatVsOrderedSeeded exercises the differential contract on plain
// `go test` runs with fixed pseudo-random streams across Clist/history
// shapes that force heavy eviction, recycling, and history promotion.
func TestFlatVsOrderedSeeded(t *testing.T) {
	for _, tc := range []struct{ clist, history int }{
		{1, 0}, {3, 0}, {8, 0}, {64, 0}, {2, 1}, {5, 2}, {16, 2},
	} {
		data := make([]byte, 3*2048)
		s := uint64(tc.clist*31 + tc.history*7 + 1)
		for i := range data {
			s += 0x9E3779B97F4A7C15
			z := s
			z ^= z >> 30
			z *= 0xBF58476D1CE4E5B9
			z ^= z >> 27
			data[i] = byte(z >> 40)
		}
		t.Run(fmt.Sprintf("clist=%d,history=%d", tc.clist, tc.history), func(t *testing.T) {
			runDifferential(t, data, tc.clist, tc.history)
		})
	}
}

// TestEntriesAliveIncremental pins the satellite fix: Stats().EntriesAlive
// is maintained incrementally and must equal a full Clist scan at any
// point, for both map kinds.
func TestEntriesAliveIncremental(t *testing.T) {
	for _, kind := range []MapKind{MapHash, MapOrdered} {
		r := New(Config{ClistSize: 8, MapKind: kind})
		scan := func() int {
			n := 0
			for _, e := range r.clist {
				if e != nil && e.live {
					n++
				}
			}
			return n
		}
		for i := 0; i < 100; i++ {
			cl := fzClients[i%len(fzClients)]
			sv := fzServers[i%len(fzServers)]
			r.Insert(cl, fmt.Sprintf("h%d.example.com", i%5), []netip.Addr{sv}, time.Duration(i))
			if got, want := r.Stats().EntriesAlive, scan(); got != want {
				t.Fatalf("kind %v, insert %d: EntriesAlive = %d, scan = %d", kind, i, got, want)
			}
		}
	}
}
