package resolver

import (
	"net/netip"
	"testing"
	"time"
)

// Once the Clist has wrapped, the resolver runs on recycled entries and
// nodes: a saturated steady state must insert and look up without
// allocating.

func TestInsertSteadyStateZeroAlloc(t *testing.T) {
	r := New(Config{ClistSize: 32})
	client := netip.MustParseAddr("10.0.0.1")
	servers := []netip.Addr{netip.MustParseAddr("192.0.2.10"), netip.MustParseAddr("192.0.2.11")}
	// Fill the Clist past capacity so eviction and the free lists kick in.
	for i := 0; i < 128; i++ {
		r.Insert(client, "cdn.example.com", servers, time.Duration(i))
	}
	if n := testing.AllocsPerRun(1000, func() {
		r.Insert(client, "cdn.example.com", servers, time.Second)
	}); n != 0 {
		t.Fatalf("steady-state insert allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, ok := r.Lookup(client, servers[0]); !ok {
			t.Fatal("lookup miss")
		}
	}); n != 0 {
		t.Fatalf("lookup allocates %v/op, want 0", n)
	}
}

// The Clist grows lazily: a lightly loaded resolver must not preallocate
// (or make the GC repeatedly scan) the full million-slot ring.
func TestClistLazyGrowth(t *testing.T) {
	r := New(Config{ClistSize: 1 << 20})
	if got := len(r.clist); got != 0 {
		t.Fatalf("fresh resolver clist len = %d, want 0", got)
	}
	client := netip.MustParseAddr("10.0.0.1")
	for i := 0; i < 100; i++ {
		r.Insert(client, "a.example.com", []netip.Addr{netip.MustParseAddr("192.0.2.1")}, 0)
	}
	if got := len(r.clist); got != 100 {
		t.Fatalf("clist len = %d, want 100", got)
	}
	if r.stats.Evictions != 0 {
		t.Fatalf("evictions before capacity: %d", r.stats.Evictions)
	}
}
