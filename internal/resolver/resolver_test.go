package resolver

import (
	"fmt"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

var (
	c1 = netip.MustParseAddr("10.0.0.1")
	c2 = netip.MustParseAddr("10.0.0.2")
	s1 = netip.MustParseAddr("203.0.113.1")
	s2 = netip.MustParseAddr("203.0.113.2")
	s3 = netip.MustParseAddr("203.0.113.3")
)

func TestInsertLookup(t *testing.T) {
	r := New(Config{ClistSize: 8})
	r.Insert(c1, "itunes.apple.com", []netip.Addr{s1, s2}, time.Second)
	for _, s := range []netip.Addr{s1, s2} {
		got, ok := r.Lookup(c1, s)
		if !ok || got != "itunes.apple.com" {
			t.Fatalf("Lookup(%v) = %q, %v", s, got, ok)
		}
	}
	if _, ok := r.Lookup(c1, s3); ok {
		t.Fatal("unexpected hit for unqueried server")
	}
	if _, ok := r.Lookup(c2, s1); ok {
		t.Fatal("client isolation violated: c2 sees c1's resolution")
	}
}

func TestPerClientScoping(t *testing.T) {
	r := New(Config{ClistSize: 8})
	r.Insert(c1, "a.example.com", []netip.Addr{s1}, 0)
	r.Insert(c2, "b.example.com", []netip.Addr{s1}, 0)
	if got, _ := r.Lookup(c1, s1); got != "a.example.com" {
		t.Fatalf("c1 sees %q", got)
	}
	if got, _ := r.Lookup(c2, s1); got != "b.example.com" {
		t.Fatalf("c2 sees %q", got)
	}
}

func TestLastWriterWins(t *testing.T) {
	r := New(Config{ClistSize: 8})
	r.Insert(c1, "old.example.com", []netip.Addr{s1}, 0)
	r.Insert(c1, "new.example.com", []netip.Addr{s1}, time.Second)
	got, ok := r.Lookup(c1, s1)
	if !ok || got != "new.example.com" {
		t.Fatalf("Lookup = %q, %v", got, ok)
	}
	if r.Stats().Replaced != 1 {
		t.Fatalf("stats = %+v", r.Stats())
	}
}

func TestClistEviction(t *testing.T) {
	r := New(Config{ClistSize: 3})
	r.Insert(c1, "one.example.com", []netip.Addr{s1}, 0)
	r.Insert(c1, "two.example.com", []netip.Addr{s2}, 0)
	r.Insert(c1, "three.example.com", []netip.Addr{s3}, 0)
	// Fourth insert overwrites slot 0, evicting "one".
	r.Insert(c1, "four.example.com", []netip.Addr{netip.MustParseAddr("203.0.113.4")}, 0)
	if _, ok := r.Lookup(c1, s1); ok {
		t.Fatal("evicted entry still resolvable")
	}
	if got, ok := r.Lookup(c1, s2); !ok || got != "two.example.com" {
		t.Fatalf("entry two: %q %v", got, ok)
	}
	st := r.Stats()
	if st.Evictions != 1 || st.EvictedRefs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionSkipsReplacedRefs(t *testing.T) {
	// Entry A for (c1,s1) is displaced by entry B before A is evicted; A's
	// eviction must not remove B's key.
	r := New(Config{ClistSize: 2})
	r.Insert(c1, "a.example.com", []netip.Addr{s1}, 0) // slot 0
	r.Insert(c1, "b.example.com", []netip.Addr{s1}, 0) // slot 1, displaces A's ref
	// Slot 0 (A) is recycled now:
	r.Insert(c1, "c.example.com", []netip.Addr{s2}, 0)
	if got, ok := r.Lookup(c1, s1); !ok || got != "b.example.com" {
		t.Fatalf("Lookup = %q %v; eviction of displaced entry broke the map", got, ok)
	}
}

func TestClientRemovedWhenEmpty(t *testing.T) {
	r := New(Config{ClistSize: 1})
	r.Insert(c1, "a.example.com", []netip.Addr{s1}, 0)
	if r.Clients() != 1 {
		t.Fatalf("clients = %d", r.Clients())
	}
	r.Insert(c2, "b.example.com", []netip.Addr{s1}, 0) // evicts c1's only entry
	if r.Clients() != 1 {
		t.Fatalf("clients after eviction = %d", r.Clients())
	}
}

func TestMissAndHitStats(t *testing.T) {
	r := New(Config{ClistSize: 4})
	r.Insert(c1, "x.example.com", []netip.Addr{s1}, 0)
	r.Lookup(c1, s1)
	r.Lookup(c1, s2)
	r.Lookup(c2, s1)
	st := r.Stats()
	if st.Lookups != 3 || st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if hr := st.HitRatio(); hr < 0.33 || hr > 0.34 {
		t.Fatalf("hit ratio = %v", hr)
	}
}

func TestEmptyInsertIgnored(t *testing.T) {
	r := New(Config{ClistSize: 4})
	r.Insert(c1, "", []netip.Addr{s1}, 0)
	r.Insert(c1, "x.example.com", nil, 0)
	if st := r.Stats(); st.Responses != 2 || st.Addresses != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := r.Lookup(c1, s1); ok {
		t.Fatal("empty insert should not resolve")
	}
}

func TestLookupEntryTimestamp(t *testing.T) {
	r := New(Config{ClistSize: 4})
	r.Insert(c1, "x.example.com", []netip.Addr{s1}, 42*time.Second)
	e, ok := r.LookupEntry(c1, s1)
	if !ok || e.At != 42*time.Second || e.FQDN != "x.example.com" {
		t.Fatalf("entry = %+v, %v", e, ok)
	}
}

func TestHistoryLookupAll(t *testing.T) {
	r := New(Config{ClistSize: 16, History: 2})
	r.Insert(c1, "first.example.com", []netip.Addr{s1}, 0)
	r.Insert(c1, "second.example.com", []netip.Addr{s1}, 0)
	r.Insert(c1, "third.example.com", []netip.Addr{s1}, 0)
	all := r.LookupAll(c1, s1)
	want := []string{"third.example.com", "second.example.com", "first.example.com"}
	if len(all) != 3 {
		t.Fatalf("LookupAll = %v", all)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("LookupAll = %v, want %v", all, want)
		}
	}
	// History bounded at 2.
	r.Insert(c1, "fourth.example.com", []netip.Addr{s1}, 0)
	if all := r.LookupAll(c1, s1); len(all) != 3 {
		t.Fatalf("history not bounded: %v", all)
	}
}

func TestHistoryPromotionOnEviction(t *testing.T) {
	r := New(Config{ClistSize: 2, History: 2})
	r.Insert(c1, "older.example.com", []netip.Addr{s1}, 0) // slot 0
	r.Insert(c1, "newer.example.com", []netip.Addr{s1}, 0) // slot 1; older kept in history
	// Recycle slot 0 is a no-op for the key (older is history), then slot 1
	// eviction must promote older back.
	r.Insert(c1, "pad1.example.com", []netip.Addr{s2}, 0) // slot 0: evicts nothing live? (older already displaced)
	r.Insert(c1, "pad2.example.com", []netip.Addr{s3}, 0) // slot 1: evicts newer -> promote older
	got, ok := r.Lookup(c1, s1)
	if !ok || got != "older.example.com" {
		t.Fatalf("Lookup = %q %v, want promoted history entry", got, ok)
	}
}

func TestLookupAllNoHistoryMode(t *testing.T) {
	r := New(Config{ClistSize: 8})
	r.Insert(c1, "a.example.com", []netip.Addr{s1}, 0)
	r.Insert(c1, "b.example.com", []netip.Addr{s1}, 0)
	if all := r.LookupAll(c1, s1); len(all) != 1 || all[0] != "b.example.com" {
		t.Fatalf("LookupAll = %v", all)
	}
	if all := r.LookupAll(c2, s1); all != nil {
		t.Fatalf("LookupAll for unknown client = %v", all)
	}
}

func TestOrderedMapKindBehavesIdentically(t *testing.T) {
	for _, kind := range []MapKind{MapHash, MapOrdered} {
		r := New(Config{ClistSize: 64, MapKind: kind})
		for i := 0; i < 50; i++ {
			srv := netip.AddrFrom4([4]byte{198, 51, 100, byte(i)})
			r.Insert(c1, fmt.Sprintf("host%d.example.com", i), []netip.Addr{srv}, 0)
		}
		for i := 0; i < 50; i++ {
			srv := netip.AddrFrom4([4]byte{198, 51, 100, byte(i)})
			got, ok := r.Lookup(c1, srv)
			if !ok || got != fmt.Sprintf("host%d.example.com", i) {
				t.Fatalf("kind %v: Lookup(%v) = %q %v", kind, srv, got, ok)
			}
		}
	}
}

func TestOrderedServerMapOps(t *testing.T) {
	m := &orderedServerMap{}
	addrs := []netip.Addr{s3, s1, s2}
	for i, a := range addrs {
		m.put(a, &node{entry: &Entry{FQDN: fmt.Sprintf("e%d", i)}})
	}
	if m.size() != 3 {
		t.Fatalf("size = %d", m.size())
	}
	// Keys must be sorted.
	for i := 1; i < len(m.keys); i++ {
		if m.keys[i-1].Compare(m.keys[i]) >= 0 {
			t.Fatalf("keys unsorted: %v", m.keys)
		}
	}
	if n, ok := m.get(s1); !ok || n.entry.FQDN != "e1" {
		t.Fatalf("get(s1) = %v %v", n, ok)
	}
	m.put(s1, &node{entry: &Entry{FQDN: "replaced"}})
	if n, _ := m.get(s1); n.entry.FQDN != "replaced" {
		t.Fatal("put did not replace")
	}
	m.del(s1)
	if _, ok := m.get(s1); ok {
		t.Fatal("del did not remove")
	}
	m.del(s1) // idempotent
	if m.size() != 2 {
		t.Fatalf("size after del = %d", m.size())
	}
}

func TestDefaultClistSize(t *testing.T) {
	r := New(Config{})
	if r.L() != 1<<20 {
		t.Fatalf("default L = %d", r.L())
	}
}

func TestStatsString(t *testing.T) {
	if New(Config{ClistSize: 1}).Stats().String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestQuickInvariantNoDanglingRefs(t *testing.T) {
	// Property: after any insert sequence, every lookup hit returns an
	// entry that is still live, and the number of live entries never
	// exceeds L.
	f := func(ops []uint16) bool {
		const L = 8
		r := New(Config{ClistSize: L})
		clients := []netip.Addr{c1, c2}
		servers := []netip.Addr{s1, s2, s3}
		for i, op := range ops {
			cl := clients[int(op)%len(clients)]
			sv := servers[int(op>>2)%len(servers)]
			fq := fmt.Sprintf("h%d.example.com", int(op)%5)
			r.Insert(cl, fq, []netip.Addr{sv}, time.Duration(i)*time.Second)
		}
		if alive := r.Stats().EntriesAlive; alive > L {
			return false
		}
		for _, cl := range clients {
			for _, sv := range servers {
				if e, ok := r.LookupEntry(cl, sv); ok && !e.live {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHashAndOrderedAgree(t *testing.T) {
	// Property: both map kinds produce identical lookup results for any
	// insert sequence.
	f := func(ops []uint16) bool {
		h := New(Config{ClistSize: 16, MapKind: MapHash})
		o := New(Config{ClistSize: 16, MapKind: MapOrdered})
		clients := []netip.Addr{c1, c2}
		servers := []netip.Addr{s1, s2, s3}
		for i, op := range ops {
			cl := clients[int(op)%len(clients)]
			sv := servers[int(op>>3)%len(servers)]
			fq := fmt.Sprintf("h%d.example.com", int(op)%7)
			h.Insert(cl, fq, []netip.Addr{sv}, time.Duration(i))
			o.Insert(cl, fq, []netip.Addr{sv}, time.Duration(i))
		}
		for _, cl := range clients {
			for _, sv := range servers {
				hf, hok := h.Lookup(cl, sv)
				of, ook := o.Lookup(cl, sv)
				if hok != ook || hf != of {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	r := New(Config{ClistSize: 1 << 16})
	servers := []netip.Addr{s1, s2, s3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
		r.Insert(cl, "bench.example.com", servers, time.Duration(i))
	}
}

func BenchmarkLookupHit(b *testing.B) {
	r := New(Config{ClistSize: 1 << 16})
	r.Insert(c1, "bench.example.com", []netip.Addr{s1}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Lookup(c1, s1); !ok {
			b.Fatal("miss")
		}
	}
}
