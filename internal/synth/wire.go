package synth

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"repro/internal/dnswire"
	"repro/internal/flows"
	"repro/internal/layers"
	"repro/internal/netio"
	"repro/internal/stats"
	"repro/internal/tlswire"
)

// wire.go turns simulated behaviour into actual packets: DNS responses over
// UDP/53 and TCP flows with realistic handshakes and payload prefixes, so
// the full DN-Hunter pipeline (parser, flow table, TLS inspector) is
// exercised on real bytes.

// cacheEntry is a client-side cached resolution.
type cacheEntry struct {
	expiry  time.Duration
	servers []netip.Addr
	// provider serves the cached addresses (drives TLS cert policy on
	// cache-hit fetches).
	provider *Provider
	// external marks entries resolved outside the capture (pre-trace or
	// out-of-coverage): flows using them have no visible DNS.
	external bool
}

// resolve returns the servers for fqdn, emitting a DNS response packet on a
// client-cache miss. It returns the addresses the client knows.
func (g *generator) resolve(c *client, at time.Duration, fqdn string, group *HostGroup, provider *Provider) []netip.Addr {
	if e, ok := c.cache[fqdn]; ok && e.expiry > at && len(e.servers) > 0 {
		return e.servers
	}
	addrs := g.selectServers(c, at, fqdn, group, provider)
	if len(addrs) == 0 {
		return nil
	}
	g.emitDNSResponse(c, at, fqdn, addrs)
	ttl := g.ttlFor(provider)
	lifetime := ttl
	if lifetime > time.Hour {
		lifetime = time.Hour
	}
	lifetime = time.Duration(float64(lifetime) * (0.5 + 0.5*c.rng.Float64()))
	c.cache[fqdn] = cacheEntry{expiry: at + lifetime, servers: addrs, provider: provider}
	// Record the reverse zone for every address the LDNS handed out.
	// Provider policy sets the baseline, but tenants override reverse
	// zones for their own blocks, and plenty of addresses simply lack PTR
	// records — Table 3 finds 9% exact / 36% same-SLD / 26% different /
	// 29% unanswered. The overlay reproduces that mixture.
	for _, a := range addrs {
		if _, seen := g.trace.PTRZone[a]; !seen {
			name, ok := g.u.PTRName(provider.Name, a, fqdn)
			switch r := g.rng.Float64(); {
			case r < 0.26:
				name = "" // no PTR published
			case r < 0.34:
				name = fqdn // tenant-configured exact PTR
			case r < 0.60:
				// Same organization, different host name.
				a4 := a.As4()
				name = fmt.Sprintf("host%d-%d.%s", a4[2], a4[3], stats.SLD(fqdn))
			default:
				if !ok {
					name = ""
				}
			}
			g.trace.PTRZone[a] = name
		}
	}
	return addrs
}

// ttlFor returns a TTL for records served by the provider: CDNs use short
// TTLs to keep steering traffic, static hosting uses long ones (§2.2).
func (g *generator) ttlFor(p *Provider) time.Duration {
	if p.Diurnal {
		return time.Duration(20+g.rng.Intn(100)) * time.Second
	}
	return time.Duration(300+g.rng.Intn(3300)) * time.Second
}

// selectServers picks the answer list for a resolution: a subset of the
// provider's currently active pool.
func (g *generator) selectServers(c *client, at time.Duration, fqdn string, group *HostGroup, provider *Provider) []netip.Addr {
	pool := g.u.ServerAddrs(provider.Name)
	if len(pool) == 0 {
		return nil
	}
	// Each host group uses its own slice of the provider pool, offset by a
	// stable hash so e.g. linkedin's two Akamai servers differ from
	// fbcdn's hundreds.
	n := group.Servers
	if n <= 0 || n > len(pool) {
		n = len(pool)
	}
	offset := int(fnv32(group.groupID(provider.Name))) % len(pool)
	active := n
	if provider.Diurnal {
		mult := g.diurnal.Value(g.hourOf(at))
		if stats.SLD(fqdn) == "youtube.com" {
			// The paper observes a sudden jump in YouTube's server pool
			// between 17:00 and 20:30 (Fig. 4) — a peak-load policy change.
			h := g.hourOf(at)
			if h >= 17 && h < 20.5 {
				mult = 1.0
			} else {
				mult *= 0.3
			}
		}
		active = int(float64(n) * mult)
		if active < 1 {
			active = 1
		}
	}
	// Most FQDNs are pinned to a single server for their whole life — a
	// blog, a small site, one tenant VM — which is where Fig. 3's
	// singleton mass (82% of FQDNs on one IP) comes from. The rest are
	// CDN-rotated names with multi-address answers.
	multiThresh := uint32(25)
	if provider.Diurnal {
		multiThresh = 45
	}
	if fnv32(fqdn+"*")%100 >= multiThresh {
		// Pinned names: one server for the whole capture. Per-bin distinct
		// server counts for an SLD then track how many of its names are
		// touched per bin, which follows the diurnal load — and the
		// rotated names below add the active-pool dynamics on top.
		return []netip.Addr{pool[(offset+int(fnv32(fqdn))%n)%len(pool)]}
	}
	// Answer list length for rotated names: mostly 1, sometimes several
	// (§6: ~40% of responses carry more than one address; Google up to 16).
	maxAddrs := provider.MaxAddrsPerResponse
	if maxAddrs <= 0 {
		maxAddrs = 1
	}
	if maxAddrs > active {
		maxAddrs = active
	}
	nAddrs := 1
	switch r := c.rng.Float64(); {
	case r < 0.60 || maxAddrs == 1:
		nAddrs = 1
	case r < 0.85:
		nAddrs = 2 + c.rng.Intn(maxInt(1, minInt(9, maxAddrs-1)))
	default:
		nAddrs = 1 + c.rng.Intn(maxAddrs)
	}
	if nAddrs > active {
		nAddrs = active
	}
	// Server choice is sticky per FQDN (real resolvers return stable
	// subsets per name within a region), with jitter so pools rotate over
	// time. Diurnal CDNs rotate aggressively (short TTLs, load balancing);
	// static hosting barely moves. Fig. 3's singleton mass rides on the
	// stickiness, Fig. 4's per-bin server counts on the rotation.
	jitter := 0.15
	if provider.Diurnal {
		jitter = 0.6
	}
	start := int(fnv32(fqdn)) % active
	if c.rng.Bool(jitter) {
		start = c.rng.Intn(active)
	}
	out := make([]netip.Addr, 0, nAddrs)
	for i := 0; i < nAddrs; i++ {
		out = append(out, pool[(offset+start+i)%len(pool)])
	}
	return out
}

// groupID stably identifies a host group for pool slicing.
func (hg *HostGroup) groupID(provider string) string {
	if len(hg.Names) > 0 {
		return provider + "/" + hg.Names[0].Pattern
	}
	return provider + fmt.Sprintf("/p%d", hg.Port)
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// emitDNSResponse writes the LDNS → client UDP packet.
func (g *generator) emitDNSResponse(c *client, at time.Duration, fqdn string, addrs []netip.Addr) {
	g.dnsID++
	var recs []dnswire.Record
	for _, a := range addrs {
		recs = append(recs, dnswire.Record{Name: fqdn, Type: dnswire.TypeA, TTL: 60, Addr: a})
	}
	msg := dnswire.NewResponse(g.dnsID, fqdn, dnswire.TypeA, recs)
	raw, err := msg.Pack(nil)
	if err != nil {
		return // name too long for the wire; skip silently
	}
	frame, err := g.builder.UDPFrame(g.ldns, c.addr, 53, 30000+g.dnsID%20000, raw)
	if err != nil {
		return
	}
	g.addPacket(at, frame)
	g.trace.DNSResponses++
}

func (g *generator) addPacket(at time.Duration, frame []byte) {
	if at > g.sc.Duration {
		return
	}
	g.trace.Packets = append(g.trace.Packets, netio.Packet{
		Timestamp: at,
		Data:      append([]byte(nil), frame...),
	})
}

// resolveOnly performs a prefetch resolution never followed by a flow.
func (g *generator) resolveOnly(c *client, at time.Duration, fqdn string, group *HostGroup, provider *Provider) {
	g.resolve(c, at, fqdn, group, provider)
}

// resolveAndFetch resolves fqdn and opens one flow to a returned server
// after the access-technology delay.
func (g *generator) resolveAndFetch(c *client, at time.Duration, fqdn string, org *Org, group *HostGroup, provider *Provider, emitDNS bool) {
	addrs := g.resolve(c, at, fqdn, group, provider)
	if len(addrs) == 0 {
		return
	}
	server := addrs[c.rng.Intn(len(addrs))]
	delay := g.flowDelay(c)
	flowAt := at + delay
	if flowAt >= g.sc.Duration {
		return
	}
	port := group.Port
	tls := false
	if port == 0 {
		if c.rng.Bool(group.TLSFrac) {
			port, tls = 443, true
		} else {
			port = 80
		}
	}
	kind := kindService
	if port == 80 {
		kind = kindHTTP
	} else if tls || port == 443 {
		kind = kindTLS
	}
	g.emitFlowKind(c, flowAt, server, port, fqdn, provider, kind)
}

// flowDelay samples the DNS-response → first-packet delay (Fig. 12):
// a lognormal body plus a heavy prefetch tail.
func (g *generator) flowDelay(c *client) time.Duration {
	if c.rng.Bool(g.sc.LatePrefetchProb) {
		// Resolved by the prefetcher; fetched much later (10 s – 300 s).
		return time.Duration((10 + c.rng.Float64()*290) * float64(time.Second))
	}
	sec := c.rng.LogNormal(g.sc.DelayMu, g.sc.DelaySigma)
	if sec > 9 {
		sec = 9
	}
	return time.Duration(sec * float64(time.Second))
}

type flowKind uint8

const (
	kindHTTP flowKind = iota
	kindTLS
	kindService
	kindBT
)

// emitFlow opens one HTTP-or-TLS flow, choosing the port from the TLS coin
// when the caller passes port 0.
func (g *generator) emitFlow(c *client, at time.Duration, server netip.Addr, port uint16, fqdn string, provider *Provider, tlsFrac float64, _ string) {
	if at >= g.sc.Duration {
		return
	}
	kind := kindHTTP
	if c.rng.Bool(tlsFrac) || port == 443 {
		kind = kindTLS
	}
	if port == 0 {
		if kind == kindTLS {
			port = 443
		} else {
			port = 80
		}
	}
	g.emitFlowKind(c, at, server, port, fqdn, provider, kind)
}

// emitFlowKind writes a full TCP conversation.
func (g *generator) emitFlowKind(c *client, at time.Duration, server netip.Addr, port uint16, fqdn string, provider *Provider, kind flowKind) {
	cport := c.nextPort()
	key := flows.Key{
		ClientIP: c.addr, ServerIP: server,
		ClientPort: cport, ServerPort: port,
		Proto: layers.IPProtocolTCP,
	}
	g.trace.Truth[key] = fqdn
	g.trace.Flows++

	rtt := time.Duration(g.rttMillis()) * time.Millisecond
	t := at
	send := func(c2s bool, flags layers.TCPFlags, seq, ack uint32, payload []byte) {
		var frame []byte
		var err error
		if c2s {
			frame, err = g.builder.TCPFrame(c.addr, server, cport, port, flags, seq, ack, payload)
		} else {
			frame, err = g.builder.TCPFrame(server, c.addr, port, cport, flags, seq, ack, payload)
		}
		if err == nil {
			g.addPacket(t, frame)
		}
	}

	send(true, layers.TCPSyn, 0, 0, nil)
	t += rtt
	send(false, layers.TCPSyn|layers.TCPAck, 0, 1, nil)
	t += rtt / 2
	send(true, layers.TCPAck, 1, 1, nil)

	var c2sPayload, s2cPayload []byte
	switch kind {
	case kindHTTP:
		host := fqdn
		if host == "" {
			host = "direct-" + server.String()
		}
		c2sPayload = []byte(fmt.Sprintf("GET /r%d HTTP/1.1\r\nHost: %s\r\nUser-Agent: synth/1.0\r\n\r\n", c.rng.Intn(1000), host))
		body := 200 + c.rng.Intn(2400)
		s2cPayload = append([]byte(fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n", body)), make([]byte, body)...)
	case kindTLS:
		c2sPayload, s2cPayload = g.tlsFlight(c, fqdn, provider)
	case kindService:
		c2sPayload = []byte(fmt.Sprintf("\x01SVC hello %d\r\n", c.rng.Intn(1000)))
		s2cPayload = []byte("\x01SVC ok\r\n")
	case kindBT:
		hs := append([]byte{19}, []byte("BitTorrent protocol")...)
		hs = append(hs, make([]byte, 48)...)
		c2sPayload = hs
		s2cPayload = append([]byte(nil), hs...)
	}

	t += rtt / 2
	send(true, layers.TCPAck|layers.TCPPsh, 1, 1, c2sPayload)
	t += rtt
	send(false, layers.TCPAck|layers.TCPPsh, 1, uint32(1+len(c2sPayload)), s2cPayload)
	t += rtt
	send(true, layers.TCPFin|layers.TCPAck, uint32(1+len(c2sPayload)), uint32(1+len(s2cPayload)), nil)
	t += rtt / 2
	send(false, layers.TCPFin|layers.TCPAck, uint32(1+len(s2cPayload)), uint32(2+len(c2sPayload)), nil)
}

// rttMillis samples a round-trip time from the scenario's access profile.
func (g *generator) rttMillis() int {
	base := 8 + g.rng.Intn(20)
	if g.sc.DelayMu > -1 { // slower access technologies
		base += 40
	}
	return base
}

// tlsFlight builds the ClientHello and the server's first flight according
// to the provider's certificate policy.
func (g *generator) tlsFlight(c *client, fqdn string, provider *Provider) (c2s, s2c []byte) {
	ch := &tlswire.ClientHello{}
	if fqdn != "" && c.rng.Bool(0.75) {
		ch.ServerName = fqdn
	}
	chBody, err := ch.Marshal()
	if err != nil {
		return nil, nil
	}
	c2s, err = tlswire.AppendRecord(nil, tlswire.RecordHandshake, chBody)
	if err != nil {
		return nil, nil
	}
	shBody, err := (&tlswire.ServerHello{}).Marshal()
	if err != nil {
		return c2s, nil
	}
	flight := shBody
	// What certificate the inspection baseline sees (Table 4's mixture:
	// 18% exact, 19% generic wildcard, 40% totally different, 23% none).
	// Session resumption sends no certificate at all; otherwise the
	// outcome blends the provider's policy with tenant-installed certs —
	// CDN frontends mostly present their own names (the paper's
	// a248.e.akamai.net serving Zynga), tenants sometimes install exact
	// or wildcard certificates.
	cn, has := "", false
	if !c.rng.Bool(0.13) && provider != nil && fqdn != "" {
		switch r := c.rng.Float64(); {
		case r < 0.21:
			cn, has = fqdn, true
		case r < 0.44:
			cn, has = "*."+stats.SLD(fqdn), true
		case r < 0.90:
			cn, has = g.u.CertName(provider.Name, fqdn)
			if !has || cn == fqdn || cn == "*."+stats.SLD(fqdn) {
				// Providers with exact/wildcard policies fall in the
				// previous buckets; substitute the frontend's own name.
				cn, has = fmt.Sprintf("a248.e.%s-edge.net", strings.ReplaceAll(provider.Name, " ", "")), true
			}
		default:
			has = false
		}
	}
	if has {
		der, err := tlswire.MarshalCertificate(cn)
		if err == nil {
			certBody, err := (&tlswire.Certificate{Chain: [][]byte{der}}).Marshal()
			if err == nil {
				flight = append(flight, certBody...)
			}
		}
	}
	s2c, err = tlswire.AppendRecord(nil, tlswire.RecordHandshake, flight)
	if err != nil {
		return c2s, nil
	}
	return c2s, s2c
}

// emitBT writes one BitTorrent peer-wire flow (no DNS precedes it).
func (g *generator) emitBT(c *client, at time.Duration, peer netip.Addr) {
	g.emitFlowKind(c, at, peer, uint16(6881+c.rng.Intn(10)), "", nil, kindBT)
}
