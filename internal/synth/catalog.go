package synth

import "fmt"

// catalog.go defines the content-owner and service catalog: which
// organizations exist, who hosts them in each geography, and which
// port-bound services run beside the web — tuned so the analytics reproduce
// the paper's qualitative results (Figs. 7/8/9, Tables 5/6/7/8).

// grp is a HostGroup constructor shorthand.
func grp(provider string, weight float64, servers int, tlsFrac float64, port uint16, names ...NamePattern) HostGroup {
	return HostGroup{Provider: provider, Weight: weight, Servers: servers, TLSFrac: tlsFrac, Port: port, Names: names}
}

func np(pattern string, n int) NamePattern { return NamePattern{Pattern: pattern, N: n} }

func defaultOrgs() []*Org {
	var orgs []*Org
	add := func(o *Org) { orgs = append(orgs, o) }

	// facebook.com: mostly self-hosted, TLS-heavy (Fig. 9 top).
	fb := []HostGroup{
		grp("facebook", 0.92, 110, 0.8, 0, np("www", 1), np("m", 1), np("api", 1), np("login", 1), np("graph", 1)),
		grp("akamai", 0.08, 60, 0.2, 0, np("photos-#", 8), np("profile", 1)),
	}
	add(&Org{SLD: "facebook.com", Popularity: 30, Groups: map[Geo][]HostGroup{GeoUS: fb, GeoEU1: fb, GeoEU2: fb}})

	// fbcdn.net: Facebook static content on Akamai (Fig. 4's 600-server SLD).
	fbcdn := []HostGroup{
		grp("akamai", 1.0, 650, 0.1, 0, np("photos-a-#", 150), np("static-#", 50), np("external-#", 25)),
	}
	add(&Org{SLD: "fbcdn.net", Popularity: 26, Groups: map[Geo][]HostGroup{GeoUS: fbcdn, GeoEU1: fbcdn, GeoEU2: fbcdn}})

	// twitter.com: self in US; Akamai-assisted in Europe (Fig. 9 middle).
	twUS := []HostGroup{
		grp("twitter", 0.85, 35, 0.9, 0, np("www", 1), np("api", 1), np("mobile", 1)),
		grp("akamai", 0.15, 30, 0.5, 0, np("static-#", 6)),
	}
	twEU := []HostGroup{
		grp("twitter", 0.55, 35, 0.9, 0, np("www", 1), np("api", 1), np("mobile", 1)),
		grp("akamai", 0.45, 90, 0.5, 0, np("static-#", 6)),
	}
	add(&Org{SLD: "twitter.com", Popularity: 14, Groups: map[Geo][]HostGroup{GeoUS: twUS, GeoEU1: twEU, GeoEU2: twEU}})

	// twimg.com: Twitter images on Amazon (a Table 5 EU-side entry; the
	// paper's US top-10 does not list it).
	twimg := []HostGroup{grp("amazon", 1.0, 80, 0.2, 0, np("a#", 5), np("si#", 4))}
	add(&Org{SLD: "twimg.com", Popularity: 2, Groups: map[Geo][]HostGroup{GeoUS: twimg, GeoEU1: twimg, GeoEU2: twimg},
		popByGeo: map[Geo]float64{GeoUS: 2, GeoEU1: 5, GeoEU2: 5}})

	// youtube.com: Google-hosted, strong diurnal pool with the 17:00–20:30
	// policy step (Fig. 4).
	yt := []HostGroup{
		grp("google", 1.0, 350, 0.15, 0, np("www", 1), np("r#.sn-video", 60), np("i#.ytimg", 12)),
	}
	add(&Org{SLD: "youtube.com", Popularity: 22, Groups: map[Geo][]HostGroup{GeoUS: yt, GeoEU1: yt, GeoEU2: yt}})

	// google.com: the multi-service platform the intro argues about.
	gg := []HostGroup{
		grp("google", 1.0, 250, 0.7, 0,
			np("www", 1), np("mail", 1), np("docs", 1), np("scholar", 1),
			np("maps", 1), np("apis", 1), np("accounts", 1), np("clientsN#", 8)),
	}
	add(&Org{SLD: "google.com", Popularity: 28, Groups: map[Geo][]HostGroup{GeoUS: gg, GeoEU1: gg, GeoEU2: gg}})

	// blogspot.com: thousands of FQDNs on few servers (Fig. 4 bottom line);
	// unbounded user-content tail (Fig. 6).
	bs := []HostGroup{grp("google", 1.0, 10, 0.1, 0, np("www", 1))}
	add(&Org{
		SLD: "blogspot.com", Popularity: 8,
		Groups:   map[Geo][]HostGroup{GeoUS: bs, GeoEU1: bs, GeoEU2: bs},
		TailRate: 0.85, TailPattern: "#",
	})

	// zynga.com: Amazon EC2 compute + Akamai static + self (Fig. 8).
	zy := []HostGroup{
		grp("amazon", 0.86, 498, 0.6, 0,
			np("petville.facebook", 1), np("cityville.facebook", 1), np("fishville.facebook", 1),
			np("frontierville.facebook", 1), np("treasure.facebook", 1), np("cafe.facebook", 1),
			np("poker.facebook", 1), np("mafiawars.facebook", 1), np("vampires.facebook", 1),
			np("fb-client-#.cityville", 6), np("fb-#.frontierville", 6),
			np("iphone.stats", 1), np("zbar", 1), np("rewards", 1), np("sslrewards", 1),
			np("glb.zyngawithfriends", 1), np("streetracing.myspace#", 3)),
		grp("akamai", 0.07, 30, 0.3, 0,
			np("static", 1), np("assets", 1), np("avatars", 1), np("toolbar", 1), np("zgn", 1)),
		grp("zynga", 0.07, 28, 0.5, 0,
			np("www", 1), np("support", 1), np("forum", 1), np("mwms", 1),
			np("nav#", 3), np("zpay#", 2), np("secure#", 2), np("track", 1), np("accounts", 1)),
	}
	add(&Org{SLD: "zynga.com", Popularity: 10, Groups: map[Geo][]HostGroup{GeoUS: zy, GeoEU1: zy, GeoEU2: zy}})

	// linkedin.com: the paper's Fig. 7 four-way split.
	li := []HostGroup{
		grp("edgecast", 0.59, 1, 0.2, 0, np("static#", 4), np("platform", 1)),
		grp("linkedin", 0.22, 3, 0.7, 0, np("www", 1), np("touch", 1), np("api", 1), np("m", 1)),
		grp("akamai", 0.17, 2, 0.2, 0, np("media#", 6)),
		grp("cdnetworks", 0.03, 15, 0.2, 0, np("media", 1), np("www7", 1)),
	}
	add(&Org{SLD: "linkedin.com", Popularity: 9, Groups: map[Geo][]HostGroup{GeoUS: li, GeoEU1: li, GeoEU2: li}})

	// dailymotion.com: Dedibox-centric with US-side Meta/NTT (Fig. 9 bottom).
	dmEU := []HostGroup{
		grp("dedibox", 0.9, 80, 0.05, 0, np("www", 1), np("static#", 8), np("vid#", 20)),
		grp("edgecast", 0.1, 4, 0.05, 0, np("ak#", 3)),
	}
	dmUS := []HostGroup{
		grp("dedibox", 0.55, 60, 0.05, 0, np("www", 1), np("static#", 8), np("vid#", 20)),
		grp("dailymotion", 0.2, 18, 0.05, 0, np("www", 1), np("api", 1)),
		grp("meta", 0.15, 20, 0.05, 0, np("proxy-#", 5)),
		grp("ntt", 0.1, 20, 0.05, 0, np("cdn#", 5)),
	}
	add(&Org{SLD: "dailymotion.com", Popularity: 9, Groups: map[Geo][]HostGroup{GeoUS: dmUS, GeoEU1: dmEU, GeoEU2: dmEU}})

	// dropbox.com: TLS on shared cloud + self (the policy example).
	db := []HostGroup{
		grp("dropbox", 0.5, 16, 1.0, 0, np("www", 1), np("client#", 4)),
		grp("amazon", 0.5, 120, 1.0, 0, np("dl-client#", 10), np("api-content", 1)),
	}
	add(&Org{SLD: "dropbox.com", Popularity: 8, Groups: map[Geo][]HostGroup{GeoUS: db, GeoEU1: db, GeoEU2: db}})

	// Amazon-hosted long tail with geography-dependent popularity
	// (Table 5). Weights mirror the paper's per-geo ranking.
	amazonTenant := func(sld string, popUS, popEU float64, names ...NamePattern) {
		if len(names) == 0 {
			names = []NamePattern{np("www", 1), np("api", 1), np("cdn#", 4)}
		}
		g := []HostGroup{grp("amazon", 1.0, 100, 0.3, 0, names...)}
		add(&Org{SLD: sld, Popularity: 0, Groups: map[Geo][]HostGroup{GeoUS: g, GeoEU1: g, GeoEU2: g},
			popByGeo: map[Geo]float64{GeoUS: popUS, GeoEU1: popEU, GeoEU2: popEU}})
	}
	amazonTenant("cloudfront.net", 16, 20, np("d#", 200))
	amazonTenant("invitemedia.com", 10, 2)
	amazonTenant("amazon.com", 7, 2, np("www", 1), np("images-#", 6))
	amazonTenant("rubiconproject.com", 7, 2)
	amazonTenant("andomedia.com", 5, 0.3)
	amazonTenant("sharethis.com", 5, 5)
	amazonTenant("mobclix.com", 4, 0.2)
	amazonTenant("admarvel.com", 3, 0.2)
	amazonTenant("amazonaws.com", 3, 4, np("s3", 1), np("ec2-#.compute-1", 30))
	amazonTenant("playfish.com", 0.5, 16)
	amazonTenant("imdb.com", 1, 1)

	// appspot.com: Google-hosted web apps, including freeloading BitTorrent
	// trackers (§5.6, Table 8, Figs. 10/11). The tail generates new app
	// names over long horizons.
	ap := []HostGroup{grp("google", 1.0, 40, 0.3, 0,
		np("open-tracker", 1), np("rlskingbt", 1), np("bt-announce-#", 8),
		np("photo-share-#", 20), np("todo-app-#", 20), np("game-scores-#", 15))}
	add(&Org{
		SLD: "appspot.com", Popularity: 5,
		Groups:   map[Geo][]HostGroup{GeoUS: ap, GeoEU1: ap, GeoEU2: ap},
		TailRate: 0.3, TailPattern: "app-#",
	})

	// microsoft.com / msn ecosystem on the Microsoft pool (Fig. 5 series).
	ms := []HostGroup{
		grp("microsoft", 1.0, 200, 0.4, 0, np("www", 1), np("update", 1), np("download", 1), np("c#.msecnd", 10)),
	}
	add(&Org{SLD: "microsoft.com", Popularity: 12, Groups: map[Geo][]HostGroup{GeoUS: ms, GeoEU1: ms, GeoEU2: ms}})

	// Regional long-tail sites on smaller CDNs, to populate Fig. 5's lower
	// series and Fig. 3's singleton mass.
	small := func(sld, provider string, pop float64) {
		g := []HostGroup{grp(provider, 1.0, 4, 0.1, 0, np("www", 1), np("img", 1))}
		add(&Org{SLD: sld, Popularity: pop, Groups: map[Geo][]HostGroup{GeoUS: g, GeoEU1: g, GeoEU2: g}})
	}
	small("leasehost-a.net", "leaseweb", 2)
	small("leasehost-b.org", "leaseweb", 1.5)
	small("cotendo-shop.com", "cotendo", 1.5)
	small("l3-news.com", "level 3", 3)
	small("l3-video.net", "level 3", 2)
	for i := 0; i < 40; i++ {
		small(fmt.Sprintf("site%02d.example.net", i), pick3(i), 0.4)
	}
	return orgs
}

// pick3 spreads tail sites across small providers.
func pick3(i int) string {
	switch i % 3 {
	case 0:
		return "leaseweb"
	case 1:
		return "level 3"
	default:
		return "cotendo"
	}
}

// popByGeo support: Org carries optional per-geo popularity overrides.

func defaultServices() []*Service {
	sv := func(port uint16, gt, provider string, weight float64, names ...ServiceName) *Service {
		return &Service{Port: port, GroundTruth: gt, Provider: provider, Weight: weight, Names: names}
	}
	sn := func(fqdn string, n int, w float64) ServiceName { return ServiceName{FQDN: fqdn, N: n, Weight: w} }

	services := []*Service{
		// Mail: Table 6's well-known ports.
		sv(25, "SMTP", "isp-mail", 20,
			sn("smtp.isp-mail.com", 1, 60), sn("smtp#.mail.isp-mail.com", 4, 31),
			sn("mx#.mailin.aspmx.gmail.com", 4, 20), sn("mail#.altn.com", 3, 18)),
		sv(110, "POP3", "isp-mail", 18,
			sn("pop.mail.isp-mail.com", 1, 150), sn("pop#.mail.isp-mail.com", 6, 60),
			sn("pop.mailbus.net", 1, 30)),
		sv(143, "IMAP", "isp-mail", 6,
			sn("imap.mail.isp-mail.com", 1, 22), sn("imap.mail.apple.me.com", 1, 8),
			sn("pop.mail.isp-mail.com", 1, 5)),
		sv(554, "RTSP", "apple", 0.5, sn("streaming.quicktime-radio.net", 1, 1)),
		sv(587, "SMTP submission", "isp-mail", 3,
			sn("smtp.mail.isp-mail.com", 1, 10), sn("pop.mail.isp-mail.com", 1, 3),
			sn("imap.mail.isp-mail.com", 1, 1)),
		sv(995, "POP3S", "microsoft", 10,
			sn("pop.mail.isp-mail.com", 1, 70), sn("pop#.mail.hot.glbdns.microsoft.com", 4, 45),
			sn("pop.mail.pec-mail.it", 1, 17)),
		sv(1863, "MSN Messenger", "microsoft", 6,
			sn("messenger.hotmail.msn.com", 1, 21), sn("relay.voice.messenger.msn.com", 1, 5),
			sn("edge.messenger.emea.msn.com", 1, 5)),

		// Table 7's frequently-used ephemeral ports.
		sv(1080, "Opera Mini proxy", "opera", 5,
			sn("opera.mini#.opera-mini.net", 8, 51)),
		sv(1337, "BitTorrent tracker", "trackers", 6,
			sn("exodus.1337x.org", 1, 83), sn("genesis.1337x.org", 1, 41)),
		sv(2710, "BitTorrent tracker", "trackers", 5,
			sn("tracker.openbittorrent.com", 1, 62), sn("www.sumotracker.org", 1, 9)),
		sv(5050, "Yahoo Messenger", "yahoo", 7,
			sn("msg.webcs.yahoo.com", 1, 137), sn("sip.voipa.yahoo.com", 1, 45)),
		sv(5190, "AOL ICQ", "aol", 2, sn("americaonline.aol.com", 1, 27)),
		sv(5222, "Google Talk", "google", 15, sn("chat.gtalk-xmpp.com", 1, 1170)),
		sv(5223, "Apple push", "apple", 9, sn("courier.push.apple.com", 1, 191)),
		sv(5228, "Android Market", "google", 25, sn("mtalk.android-market.com", 1, 15022)),
		sv(6969, "BitTorrent tracker", "trackers", 6,
			sn("tracker.publicbt.com", 1, 88), sn("tracker#.torrentbay.to", 4, 11),
			sn("torrent.resistance.net", 1, 10), sn("exodus.desync.org", 1, 10)),
		sv(12043, "Second Life", "lindenlab", 3, sn("sim#.agni.secondlife-grid.com", 12, 32)),
		sv(12046, "Second Life", "lindenlab", 2, sn("sim#.agni.secondlife-grid.com", 12, 20)),
		sv(18182, "BitTorrent tracker", "trackers", 3,
			sn("useful.broker.publicbt-relay.org", 1, 92)),
	}
	// Port-specific geography: Table 6 is EU1-FTTH, Table 7 is US-3G; the
	// services exist everywhere but mobile-flavoured ones skew US.
	for _, s := range services {
		switch s.Port {
		case 1080, 5228, 5223:
			s.Weight *= 2 // mobile-heavy services
		}
	}
	return services
}
