package synth

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/flowdb"
	"repro/internal/flows"
	"repro/internal/layers"
	"repro/internal/orgdb"
	"repro/internal/stats"
)

// events.go implements "event mode": the same generative model emitting
// pre-labeled resolver/flow events instead of packets, so multi-day
// horizons (the paper's 18-day live deployment: Fig. 6 birth processes,
// Fig. 10/11 and Table 8 appspot tracking) stay tractable. Wire mode and
// event mode share the universe; event mode bypasses packet serialization
// only, as documented in DESIGN.md.

// LiveScenario parameterizes an event-mode run.
type LiveScenario struct {
	Days           int
	Clients        int
	SessionsPerDay int // across all clients, at peak-day rate
	Geo            Geo
	Seed           uint64
}

// DefaultLive18d mirrors the paper's April 2012 deployment window.
func DefaultLive18d(seed uint64) LiveScenario {
	return LiveScenario{Days: 18, Clients: 150, SessionsPerDay: 18000, Geo: GeoEU1, Seed: seed}
}

// DNSEvent is one observed resolution in event mode.
type DNSEvent struct {
	At     time.Duration
	Client netip.Addr
	FQDN   string
	Addrs  []netip.Addr
}

// EventTrace is the event-mode output.
type EventTrace struct {
	Scenario LiveScenario
	DNS      []DNSEvent
	Flows    []flowdb.LabeledFlow
	OrgDB    *orgdb.DB
	// TrackerIDs maps appspot tracker FQDNs to their first-seen order
	// (the y-axis of Fig. 11).
	TrackerIDs map[string]int
}

// trackerSpec models one appspot BitTorrent tracker's activity pattern
// (§5.6, Fig. 11).
type trackerSpec struct {
	fqdn string
	// kind: 0 = always on, 1 = synchronized on/off group, 2 = sporadic,
	// 3 = dies partway (zombie: still resolved, no content after death).
	kind  int
	born  time.Duration
	death time.Duration
}

// GenerateEvents runs event mode.
func GenerateEvents(sc LiveScenario) *EventTrace {
	u := BuildUniverse(sc.Geo)
	rng := stats.NewRNG(sc.Seed)
	tr := &EventTrace{
		Scenario:   sc,
		OrgDB:      u.OrgDB(),
		TrackerIDs: make(map[string]int),
	}
	total := time.Duration(sc.Days) * 24 * time.Hour
	diurnal := stats.Diurnal{PeakHour: 21, Floor: 0.25}

	// Appspot population: ~7% trackers, the rest general apps (Table 8's
	// 56 vs 824 split at full scale; proportional here).
	const nTrackers = 45
	const nGeneral = 560
	trackers := make([]trackerSpec, nTrackers)
	for i := range trackers {
		t := &trackers[i]
		t.fqdn = fmt.Sprintf("bt-tracker-%02d.appspot.com", i+1)
		switch {
		case i < 15:
			t.kind = 0 // persistently active (the paper's red ids 1–15)
			t.born = 0
			t.death = total
		case i >= 25 && i < 31:
			t.kind = 1 // synchronized swarm group (blue ids 26–31)
			t.born = time.Duration(float64(total) * 0.3)
			t.death = total
		case rng.Bool(0.5):
			t.kind = 2
			t.born = time.Duration(rng.Float64() * float64(total) * 0.7)
			t.death = total
		default:
			t.kind = 3 // runs out of quota and dies (zombie)
			t.born = time.Duration(rng.Float64() * float64(total) * 0.4)
			t.death = t.born + time.Duration(rng.Float64()*float64(total)*0.5)
		}
	}
	generalApps := make([]string, nGeneral)
	for i := range generalApps {
		generalApps[i] = fmt.Sprintf("webapp-%03d.appspot.com", i)
	}

	// Popularity samplers.
	var orgW []float64
	for _, o := range u.Orgs {
		orgW = append(orgW, o.Pop(sc.Geo))
	}
	orgPick := stats.NewWeightedChoice(orgW)
	genPick := stats.NewZipf(nGeneral, 1.1)

	clients := make([]netip.Addr, sc.Clients)
	for i := range clients {
		clients[i] = netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
	}
	gen := &generator{sc: Scenario{Geo: sc.Geo, Duration: total}, u: u, rng: rng.Split(), diurnal: diurnal,
		trace: &Trace{Truth: map[flows.Key]string{}, PTRZone: map[netip.Addr]string{}, ServiceGT: map[uint16]string{}}}

	// syncActive precomputes the on/off pattern of the synchronized group:
	// shared 4-hour activity windows.
	syncWindows := make(map[int]bool)
	for w := 0; w < int(total/(4*time.Hour)); w++ {
		syncWindows[w] = rng.Bool(0.45)
	}
	trackerActive := func(t *trackerSpec, at time.Duration) bool {
		if at < t.born || at >= t.death {
			return false
		}
		switch t.kind {
		case 0:
			return rng.Bool(0.95)
		case 1:
			return syncWindows[int(at/(4*time.Hour))]
		default:
			return rng.Bool(0.35)
		}
	}

	// Session loop: Poisson arrivals thinned by the diurnal profile.
	perDay := float64(sc.SessionsPerDay)
	meanGap := 24.0 / perDay // hours between sessions at peak
	cli := rng.Split()
	clientState := make(map[netip.Addr]*client)
	getClient := func(a netip.Addr) *client {
		c, ok := clientState[a]
		if !ok {
			c = &client{addr: a, rng: cli.Split(), cache: map[string]cacheEntry{}, port: uint16(1024 + cli.Intn(30000))}
			clientState[a] = c
		}
		return c
	}

	at := time.Duration(0)
	trackerSeq := 0
	for {
		at += time.Duration(rng.Exponential(meanGap) * float64(time.Hour))
		if at >= total {
			break
		}
		hour := at.Hours()
		for hour >= 24 {
			hour -= 24
		}
		if !rng.Bool(diurnal.Value(hour)) {
			continue
		}
		c := getClient(clients[rng.Intn(len(clients))])

		// 6% of sessions hit appspot (trackers dominate its flow count:
		// Table 8 reports 186K tracker vs 77K general flows).
		if rng.Bool(0.06) {
			if rng.Bool(0.85) {
				// Tracker announce. BitTorrent clients re-announce to the
				// same popular trackers, so the persistent ones dominate.
				ti := rng.Intn(nTrackers)
				if rng.Bool(0.8) {
					ti = rng.Intn(15)
				}
				t := &trackers[ti]
				if !trackerActive(t, at) {
					continue
				}
				if _, seen := tr.TrackerIDs[t.fqdn]; !seen {
					trackerSeq++
					tr.TrackerIDs[t.fqdn] = trackerSeq
				}
				tr.emit(gen, c, at, t.fqdn, u, "google", 80, 1200, 2200)
			} else {
				app := generalApps[genPick.Sample(rng)]
				tr.emit(gen, c, at, app, u, "google", 80, 3800, 64000)
			}
			continue
		}

		// Regular web traffic drives the Fig. 6 birth processes.
		org := u.Orgs[orgPick.Sample(rng)]
		fqdn, group, provider := gen.pickName(c, org)
		port := uint16(80)
		if cli.Bool(group.TLSFrac) {
			port = 443
		}
		tr.emit(gen, c, at, fqdn, u, provider.Name, port, 600+int64(rng.Intn(2000)), 2000+int64(rng.Intn(30000)))
	}
	sort.Slice(tr.Flows, func(i, j int) bool { return tr.Flows[i].Start < tr.Flows[j].Start })
	sort.Slice(tr.DNS, func(i, j int) bool { return tr.DNS[i].At < tr.DNS[j].At })
	return tr
}

// emit appends one DNS event (on client-cache miss) and one labeled flow.
func (tr *EventTrace) emit(gen *generator, c *client, at time.Duration, fqdn string, u *Universe, providerName string, port uint16, c2s, s2c int64) {
	provider := u.Providers[providerName]
	group := &HostGroup{Provider: providerName, Servers: provider.Servers}
	addrs := gen.resolve2(c, at, fqdn, group, provider, func(ev DNSEvent) {
		tr.DNS = append(tr.DNS, ev)
	})
	if len(addrs) == 0 {
		return
	}
	server := addrs[c.rng.Intn(len(addrs))]
	lf := flowdb.LabeledFlow{
		Record: flows.Record{
			Key: flows.Key{
				ClientIP: c.addr, ServerIP: server,
				ClientPort: c.nextPort(), ServerPort: port,
				Proto: layers.IPProtocolTCP,
			},
			Start: at, End: at + time.Duration(1+c.rng.Intn(20))*time.Second,
			PktsC2S: uint64(c2s/1200 + 1), PktsS2C: uint64(s2c/1200 + 1),
			BytesC2S: uint64(c2s), BytesS2C: uint64(s2c),
			L7: flows.L7HTTP, SawSYN: true,
		},
		Label: fqdn, Labeled: true, PreFlow: true,
	}
	tr.Flows = append(tr.Flows, lf)
}

// resolve2 is resolve with an event sink instead of packet emission.
func (g *generator) resolve2(c *client, at time.Duration, fqdn string, group *HostGroup, provider *Provider, sink func(DNSEvent)) []netip.Addr {
	if e, ok := c.cache[fqdn]; ok && e.expiry > at && len(e.servers) > 0 {
		return e.servers
	}
	addrs := g.selectServers(c, at, fqdn, group, provider)
	if len(addrs) == 0 {
		return nil
	}
	sink(DNSEvent{At: at, Client: c.addr, FQDN: fqdn, Addrs: addrs})
	ttl := g.ttlFor(provider)
	if ttl > time.Hour {
		ttl = time.Hour
	}
	c.cache[fqdn] = cacheEntry{expiry: at + time.Duration(float64(ttl)*(0.5+0.5*c.rng.Float64())), servers: addrs}
	return addrs
}
