package synth

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/flows"
	"repro/internal/layers"
	"repro/internal/netio"
	"repro/internal/orgdb"
	"repro/internal/stats"
)

// Scenario parameterizes one synthetic capture, standing in for one of the
// paper's vantage points.
type Scenario struct {
	Name string
	Geo  Geo
	// Duration of the capture.
	Duration time.Duration
	// StartHour is the local time of day at trace start (diurnal phase).
	StartHour float64
	// Clients monitored at the vantage point.
	Clients int
	// SessionRate is sessions per client per hour at peak load.
	SessionRate float64
	// DelayMu/DelaySigma parameterize the lognormal first-flow delay in
	// seconds; access technology shifts these (FTTH small, 3G large).
	DelayMu, DelaySigma float64
	// PrefetchFactor is DNS resolutions per fetched resource; the excess
	// above 1.0 is the useless-DNS mass (Table 9).
	PrefetchFactor float64
	// LatePrefetchProb is the chance a *fetched* resource was resolved by
	// the prefetcher long before its flow (the >10 s tail of Fig. 12).
	LatePrefetchProb float64
	// MobileFraction of clients join mid-trace with externally warmed
	// caches (3G mobility: their early flows miss).
	MobileFraction float64
	// TunnelFraction of sessions open flows with no DNS at all
	// (HTTP/HTTPS tunneling, the US-3G hit-ratio depressant).
	TunnelFraction float64
	// P2PFraction of clients run BitTorrent peers.
	P2PFraction float64
	// WarmCacheFraction of clients hold pre-trace cache entries, causing
	// warm-up misses in the first minutes.
	WarmCacheFraction float64
	// ServiceMix is the fraction of sessions hitting port-bound services
	// instead of web pages.
	ServiceMix float64
	// Seed drives all randomness.
	Seed uint64
}

// Trace is one generated capture plus the sidecars the experiments need.
type Trace struct {
	Scenario Scenario
	Packets  []netio.Packet
	// Truth maps each flow to the FQDN the client actually intended —
	// ground truth for scoring only.
	Truth map[flows.Key]string
	// OrgDB is the IP → organization table (MaxMind substitute).
	OrgDB *orgdb.DB
	// PTRZone is the synthetic reverse zone: what an active reverse lookup
	// of each server address would return ("" entries are absent names).
	PTRZone map[netip.Addr]string
	// ServiceGT maps service ports to their human-readable ground truth
	// (the GT column of Tables 6/7).
	ServiceGT map[uint16]string
	// Flows counts generated flows (before any pipeline processing).
	Flows int
	// DNSResponses counts emitted DNS response packets.
	DNSResponses int
}

// Source returns a PacketSource replaying the trace.
func (t *Trace) Source() *netio.SlicePacketSource {
	return netio.NewSlicePacketSource(t.Packets)
}

// TruthFunc adapts the sidecar for core.Config.Truth.
func (t *Trace) TruthFunc() func(flows.Key) string {
	return func(k flows.Key) string { return t.Truth[k] }
}

// client is the per-user simulation state.
type client struct {
	addr   netip.Addr
	rng    *stats.RNG
	cache  map[string]cacheEntry // fqdn -> cached resolution
	port   uint16
	join   time.Duration
	p2p    bool
	mobile bool
	// warm lists FQDNs resolved before the capture (or outside coverage)
	// that the client revisits: their flows appear with no preceding DNS,
	// the main cause of resolver misses in the paper's Table 2.
	warm []string
}

func (c *client) nextPort() uint16 {
	c.port++
	if c.port < 1024 {
		c.port = 1024
	}
	return c.port
}

// generator carries the in-flight state of one trace synthesis.
type generator struct {
	sc      Scenario
	u       *Universe
	rng     *stats.RNG
	builder layers.Builder
	trace   *Trace

	orgPick  *stats.WeightedChoice
	orgs     []*Org
	svcPick  *stats.WeightedChoice
	services []*Service

	ldns    netip.Addr
	diurnal stats.Diurnal
	dnsID   uint16
	tailSeq int
}

// Generate synthesizes the full trace for a scenario.
func Generate(sc Scenario) *Trace {
	g := newGenerator(sc)
	g.run()
	sort.SliceStable(g.trace.Packets, func(i, j int) bool {
		return g.trace.Packets[i].Timestamp < g.trace.Packets[j].Timestamp
	})
	return g.trace
}

func newGenerator(sc Scenario) *generator {
	u := BuildUniverse(sc.Geo)
	g := &generator{
		sc:  sc,
		u:   u,
		rng: stats.NewRNG(sc.Seed),
		trace: &Trace{
			Scenario:  sc,
			Truth:     make(map[flows.Key]string),
			OrgDB:     u.OrgDB(),
			PTRZone:   make(map[netip.Addr]string),
			ServiceGT: make(map[uint16]string),
		},
		ldns:    netip.MustParseAddr("10.0.255.1"),
		diurnal: stats.Diurnal{PeakHour: 21, Floor: 0.25},
	}
	var ow []float64
	for _, o := range u.Orgs {
		g.orgs = append(g.orgs, o)
		ow = append(ow, o.Pop(sc.Geo))
	}
	g.orgPick = stats.NewWeightedChoice(ow)
	var sw []float64
	for _, s := range u.Services {
		g.services = append(g.services, s)
		sw = append(sw, s.Weight)
		g.trace.ServiceGT[s.Port] = s.GroundTruth
	}
	g.svcPick = stats.NewWeightedChoice(sw)
	return g
}

// hourOf converts a trace offset to local hour of day.
func (g *generator) hourOf(at time.Duration) float64 {
	h := g.sc.StartHour + at.Hours()
	for h >= 24 {
		h -= 24
	}
	return h
}

func (g *generator) run() {
	clients := g.makeClients()
	for _, c := range clients {
		g.runClient(c)
	}
}

func (g *generator) makeClients() []*client {
	out := make([]*client, 0, g.sc.Clients)
	for i := 0; i < g.sc.Clients; i++ {
		c := &client{
			addr:  netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
			rng:   g.rng.Split(),
			cache: make(map[string]cacheEntry),
			port:  uint16(1024 + g.rng.Intn(30000)),
		}
		if g.rng.Bool(g.sc.MobileFraction) {
			// Mobile arrival: joins mid-trace with a warm external cache.
			c.mobile = true
			c.join = time.Duration(g.rng.Float64() * float64(g.sc.Duration) * 0.8)
			g.warmCache(c, 6)
		} else if g.rng.Bool(g.sc.WarmCacheFraction) {
			g.warmCache(c, 4)
		}
		c.p2p = g.rng.Bool(g.sc.P2PFraction)
		out = append(out, c)
	}
	return out
}

// warmCache seeds cache entries resolved before the capture started: the
// client will open flows for them without any visible DNS.
func (g *generator) warmCache(c *client, n int) {
	for i := 0; i < n; i++ {
		org := g.orgs[g.orgPick.Sample(c.rng)]
		fqdn, group, provider := g.pickName(c, org)
		servers := g.selectServers(c, c.join, fqdn, group, provider)
		if len(servers) == 0 {
			continue
		}
		c.cache[fqdn] = cacheEntry{
			expiry:   c.join + time.Duration((10+c.rng.Float64()*40)*float64(time.Minute)),
			servers:  servers,
			provider: provider,
			external: true,
		}
		c.warm = append(c.warm, fqdn)
	}
}

func (g *generator) runClient(c *client) {
	maxRate := g.sc.SessionRate // sessions/hour at peak
	if maxRate <= 0 {
		return
	}
	t := c.join
	for t < g.sc.Duration {
		// Poisson thinning against the diurnal profile.
		gap := c.rng.Exponential(1 / maxRate) // hours
		t += time.Duration(gap * float64(time.Hour))
		if t >= g.sc.Duration {
			break
		}
		if !c.rng.Bool(g.diurnal.Value(g.hourOf(t))) {
			continue
		}
		g.session(c, t)
	}
	if c.p2p {
		g.p2pActivity(c)
	}
}

// session generates one user action: a web page visit or a service contact.
func (g *generator) session(c *client, at time.Duration) {
	if c.rng.Bool(g.sc.ServiceMix) {
		g.serviceSession(c, at)
		return
	}
	if c.rng.Bool(g.sc.TunnelFraction) {
		g.tunnelSession(c, at)
		return
	}
	g.webSession(c, at)
}

// webSession models a page load: resolve + fetch the main resource, then a
// handful of embedded resources, plus prefetch-only resolutions.
func (g *generator) webSession(c *client, at time.Duration) {
	// Revisits of externally resolved names come first: these flows have no
	// DNS in the capture, so the resolver misses them (Table 2's gap).
	if len(c.warm) > 0 && c.rng.Bool(0.6) {
		fqdn := c.warm[c.rng.Intn(len(c.warm))]
		if e, ok := c.cache[fqdn]; ok && e.external && len(e.servers) > 0 {
			if e.expiry <= at && c.mobile && c.rng.Bool(0.6) {
				// Mobile device re-resolved while out of coverage: the
				// entry refreshes with no DNS visible at the vantage point.
				e.expiry = at + time.Duration((10+c.rng.Float64()*40)*float64(time.Minute))
				c.cache[fqdn] = e
			}
			if e.expiry > at {
				server := e.servers[c.rng.Intn(len(e.servers))]
				g.emitFlow(c, at+g.flowDelay(c), server, 0, fqdn, e.provider, 0.3, "")
				return
			}
		}
	}
	org := g.orgs[g.orgPick.Sample(c.rng)]
	nRes := 1 + c.rng.Intn(3)
	fetched := 0
	for i := 0; i < nRes; i++ {
		o := org
		// Embedded third-party content: facebook pages pull fbcdn, etc.
		if i > 0 && c.rng.Bool(0.35) {
			o = g.relatedOrg(c, org)
		}
		fqdn, group, provider := g.pickName(c, o)
		g.resolveAndFetch(c, at+time.Duration(i)*50*time.Millisecond, fqdn, o, group, provider, true)
		fetched++
	}
	// Prefetch-only resolutions (useless DNS): browsers resolve every link
	// on the page; about half the responses are never used (Table 9).
	exact := float64(fetched) * (g.sc.PrefetchFactor - 1)
	extra := int(exact)
	if c.rng.Bool(exact - float64(extra)) {
		extra++
	}
	for i := 0; i < extra; i++ {
		o := org
		if c.rng.Bool(0.5) {
			o = g.orgs[g.orgPick.Sample(c.rng)]
		}
		fqdn, group, provider := g.pickName(c, o)
		g.resolveOnly(c, at+10*time.Millisecond, fqdn, group, provider)
	}
}

// relatedOrg returns a content org commonly embedded alongside base.
func (g *generator) relatedOrg(c *client, base *Org) *Org {
	related := map[string][]string{
		"facebook.com": {"fbcdn.net", "zynga.com", "akamai-embed"},
		"zynga.com":    {"fbcdn.net", "facebook.com"},
		"youtube.com":  {"google.com"},
		"twitter.com":  {"twimg.com"},
		"google.com":   {"blogspot.com", "youtube.com"},
	}
	if names, ok := related[base.SLD]; ok {
		if o := g.u.FindOrg(names[c.rng.Intn(len(names))]); o != nil {
			return o
		}
	}
	return g.orgs[g.orgPick.Sample(c.rng)]
}

// pickName selects an FQDN for the org plus the serving group/provider.
func (g *generator) pickName(c *client, org *Org) (string, *HostGroup, *Provider) {
	groups := org.Groups[g.sc.Geo]
	if len(groups) == 0 {
		for _, gs := range org.Groups {
			groups = gs
			break
		}
	}
	// Weighted group choice.
	total := 0.0
	for _, hg := range groups {
		total += hg.Weight
	}
	pick := c.rng.Float64() * total
	idx := len(groups) - 1
	for i := range groups {
		if pick < groups[i].Weight {
			idx = i
			break
		}
		pick -= groups[i].Weight
	}
	group := &groups[idx]
	provider := g.u.Providers[group.Provider]

	// Unbounded user-content tail (Fig. 6).
	if org.TailRate > 0 && c.rng.Bool(org.TailRate) {
		g.tailSeq++
		token := fmt.Sprintf("u%06x", g.tailSeq)
		pat := org.TailPattern
		if pat == "" {
			pat = "#"
		}
		host := replaceHash(pat, token)
		return host + "." + org.SLD, group, provider
	}
	np := group.Names[c.rng.Intn(len(group.Names))]
	host := np.Expand(c.rng.Intn(np.Variants()))
	return host + "." + org.SLD, group, provider
}

func replaceHash(pattern, token string) string {
	out := make([]byte, 0, len(pattern)+len(token))
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == '#' {
			out = append(out, token...)
			continue
		}
		out = append(out, pattern[i])
	}
	return string(out)
}

// serviceSession contacts one port-bound service.
func (g *generator) serviceSession(c *client, at time.Duration) {
	svc := g.services[g.svcPick.Sample(c.rng)]
	var weights []float64
	for _, n := range svc.Names {
		weights = append(weights, n.Weight)
	}
	n := svc.Names[stats.NewWeightedChoice(weights).Sample(c.rng)]
	fqdn := replaceHash(n.FQDN, fmt.Sprint(1+c.rng.Intn(maxInt(n.N, 1))))
	provider := g.u.Providers[svc.Provider]
	group := &HostGroup{Provider: svc.Provider, Servers: provider.Servers, Port: svc.Port}
	g.resolveAndFetch(c, at, fqdn, nil, group, provider, true)
}

// tunnelSession opens a flow with no DNS visibility at all — HTTP/HTTPS
// tunneling and VPN-over-443, the paper's hypothesis for US-3G's lower hit
// ratio.
func (g *generator) tunnelSession(c *client, at time.Duration) {
	provider := g.u.Providers["amazon"]
	servers := g.u.ServerAddrs("amazon")
	server := servers[c.rng.Intn(len(servers))]
	g.emitFlow(c, at, server, 0, "", provider, 0.6, "")
}

// p2pActivity generates BitTorrent peer-wire flows (no DNS) and tracker
// announces (HTTP, labeled) for a P2P client.
func (g *generator) p2pActivity(c *client) {
	n := 3 + c.rng.Intn(12)
	for i := 0; i < n; i++ {
		at := time.Duration(c.rng.Float64() * float64(g.sc.Duration))
		if at < c.join {
			continue
		}
		// Random remote peer outside the monitored network.
		peer := netip.AddrFrom4([4]byte{
			byte(60 + c.rng.Intn(120)), byte(c.rng.Intn(256)),
			byte(c.rng.Intn(256)), byte(1 + c.rng.Intn(250)),
		})
		g.emitBT(c, at, peer)
	}
}

// maxInt avoids importing math for two ints.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
