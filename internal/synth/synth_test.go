package synth

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestUniverseProvidersWellFormed(t *testing.T) {
	u := BuildUniverse(GeoEU1)
	if len(u.Providers) == 0 {
		t.Fatal("no providers")
	}
	for name, p := range u.Providers {
		if p.Name != name {
			t.Errorf("provider key %q != name %q", name, p.Name)
		}
		if p.Servers <= 0 {
			t.Errorf("%s: no servers", name)
		}
		addrs := u.ServerAddrs(name)
		if len(addrs) == 0 {
			t.Errorf("%s: empty pool", name)
		}
		seen := map[netip.Addr]struct{}{}
		for _, a := range addrs {
			if !p.Prefix.Contains(a) {
				t.Errorf("%s: server %v outside prefix %v", name, a, p.Prefix)
			}
			if _, dup := seen[a]; dup {
				t.Errorf("%s: duplicate server %v", name, a)
			}
			seen[a] = struct{}{}
		}
	}
}

func TestUniverseOrgsHaveGroups(t *testing.T) {
	for _, geo := range []Geo{GeoUS, GeoEU1, GeoEU2} {
		u := BuildUniverse(geo)
		for _, o := range u.Orgs {
			groups := o.Groups[geo]
			if len(groups) == 0 {
				// Orgs may define a single geo-independent layout.
				found := false
				for range o.Groups {
					found = true
				}
				if !found {
					t.Errorf("%s: no groups at all", o.SLD)
				}
				continue
			}
			for _, g := range groups {
				if _, ok := u.Providers[g.Provider]; !ok {
					t.Errorf("%s: unknown provider %q", o.SLD, g.Provider)
				}
				if g.Weight <= 0 {
					t.Errorf("%s: non-positive weight", o.SLD)
				}
			}
		}
	}
}

func TestServicesReferenceKnownProviders(t *testing.T) {
	u := BuildUniverse(GeoUS)
	for _, s := range u.Services {
		if _, ok := u.Providers[s.Provider]; !ok {
			t.Errorf("service port %d: unknown provider %q", s.Port, s.Provider)
		}
		if len(s.Names) == 0 {
			t.Errorf("service port %d: no names", s.Port)
		}
	}
}

func TestOrgDBCoversAllPools(t *testing.T) {
	u := BuildUniverse(GeoEU1)
	db := u.OrgDB()
	for name := range u.Providers {
		for _, a := range u.ServerAddrs(name)[:1] {
			org, ok := db.Lookup(a)
			if !ok || org != name {
				t.Errorf("orgdb lookup %v = %q, %v; want %q", a, org, ok, name)
			}
		}
	}
}

func TestNamePattern(t *testing.T) {
	p := NamePattern{Pattern: "media#", N: 3}
	if p.Variants() != 3 || p.Expand(0) != "media1" || p.Expand(2) != "media3" {
		t.Fatalf("pattern expansion: %q %q", p.Expand(0), p.Expand(2))
	}
	lit := NamePattern{Pattern: "www"}
	if lit.Variants() != 1 || lit.Expand(0) != "www" {
		t.Fatal("literal pattern")
	}
}

func TestPTRPolicies(t *testing.T) {
	u := BuildUniverse(GeoEU1)
	addr := netip.MustParseAddr("23.33.1.2")
	// akamai: provider-internal name, totally different from the FQDN.
	name, ok := u.PTRName("akamai", addr, "static.fbcdn.net")
	if !ok || name == "static.fbcdn.net" || stats.SLD(name) == "fbcdn.net" {
		t.Fatalf("akamai PTR = %q, %v", name, ok)
	}
	// linkedin self-hosting: exact.
	name, ok = u.PTRName("linkedin", addr, "www.linkedin.com")
	if !ok || name != "www.linkedin.com" {
		t.Fatalf("linkedin PTR = %q, %v", name, ok)
	}
	// leaseweb: same SLD, different host.
	name, ok = u.PTRName("leaseweb", addr, "www.leasehost-a.net")
	if !ok || name == "www.leasehost-a.net" || stats.SLD(name) != "leasehost-a.net" {
		t.Fatalf("leaseweb PTR = %q, %v", name, ok)
	}
	// meta: no PTR.
	if _, ok := u.PTRName("meta", addr, "x.example.com"); ok {
		t.Fatal("meta should publish no PTR")
	}
}

func TestCertPolicies(t *testing.T) {
	u := BuildUniverse(GeoEU1)
	if cn, ok := u.CertName("linkedin", "www.linkedin.com"); !ok || cn != "www.linkedin.com" {
		t.Fatalf("exact cert = %q, %v", cn, ok)
	}
	if cn, ok := u.CertName("google", "mail.google.com"); !ok || cn != "*.google.com" {
		t.Fatalf("wildcard cert = %q, %v", cn, ok)
	}
	if cn, ok := u.CertName("akamai", "static.zynga.com"); !ok || cn == "static.zynga.com" || cn == "*.zynga.com" {
		t.Fatalf("provider cert = %q, %v", cn, ok)
	}
	if _, ok := u.CertName("meta", "x.example.com"); ok {
		t.Fatal("meta should send no certificate")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	sc := QuickScenario(7)
	a := Generate(sc)
	b := Generate(sc)
	if len(a.Packets) != len(b.Packets) || a.Flows != b.Flows {
		t.Fatalf("non-deterministic: %d/%d pkts, %d/%d flows",
			len(a.Packets), len(b.Packets), a.Flows, b.Flows)
	}
	for i := range a.Packets {
		if a.Packets[i].Timestamp != b.Packets[i].Timestamp ||
			string(a.Packets[i].Data) != string(b.Packets[i].Data) {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(QuickScenario(1))
	b := Generate(QuickScenario(2))
	if len(a.Packets) == len(b.Packets) && a.Flows == b.Flows && a.DNSResponses == b.DNSResponses {
		// Extremely unlikely to match on all three if seeds matter.
		t.Fatal("different seeds produced identical trace summary")
	}
}

func TestGenerateBasicShape(t *testing.T) {
	tr := Generate(QuickScenario(42))
	if tr.Flows < 100 {
		t.Fatalf("too few flows: %d", tr.Flows)
	}
	if tr.DNSResponses < 50 {
		t.Fatalf("too few DNS responses: %d", tr.DNSResponses)
	}
	if len(tr.Packets) < tr.Flows*4 {
		t.Fatalf("too few packets: %d for %d flows", len(tr.Packets), tr.Flows)
	}
	// Timestamps sorted and within duration.
	for i := 1; i < len(tr.Packets); i++ {
		if tr.Packets[i].Timestamp < tr.Packets[i-1].Timestamp {
			t.Fatal("packets unsorted")
		}
	}
	last := tr.Packets[len(tr.Packets)-1].Timestamp
	if last > tr.Scenario.Duration {
		t.Fatalf("packet beyond duration: %v", last)
	}
	if len(tr.Truth) == 0 || len(tr.PTRZone) == 0 {
		t.Fatal("sidecars missing")
	}
}

func TestGeneratePTRZoneMixture(t *testing.T) {
	tr := Generate(QuickScenario(42))
	var none, some int
	for _, name := range tr.PTRZone {
		if name == "" {
			none++
		} else {
			some++
		}
	}
	if some == 0 {
		t.Fatal("no PTR names at all")
	}
	if none == 0 {
		t.Fatal("every server has a PTR; Table 3's no-answer class would be empty")
	}
}

func TestNamedScenariosConstruct(t *testing.T) {
	for _, name := range ScenarioNames {
		sc := NamedScenario(name, 0.05, 1)
		if sc.Name != name || sc.Clients < 4 || sc.Duration <= 0 {
			t.Fatalf("scenario %s malformed: %+v", name, sc)
		}
	}
}

func TestNamedScenarioUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NamedScenario("nope", 1, 1)
}

func TestGenerateEventsShape(t *testing.T) {
	sc := LiveScenario{Days: 2, Clients: 20, SessionsPerDay: 2000, Geo: GeoEU1, Seed: 5}
	tr := GenerateEvents(sc)
	if len(tr.Flows) < 500 {
		t.Fatalf("too few flows: %d", len(tr.Flows))
	}
	if len(tr.DNS) == 0 {
		t.Fatal("no DNS events")
	}
	for i := 1; i < len(tr.Flows); i++ {
		if tr.Flows[i].Start < tr.Flows[i-1].Start {
			t.Fatal("flows unsorted")
		}
	}
	// Every flow labeled with ground truth.
	for _, f := range tr.Flows[:50] {
		if !f.Labeled || f.Label == "" {
			t.Fatalf("event-mode flow unlabeled: %+v", f)
		}
	}
	if len(tr.TrackerIDs) == 0 {
		t.Fatal("no appspot trackers observed")
	}
}

func TestGenerateEventsDeterministic(t *testing.T) {
	sc := LiveScenario{Days: 1, Clients: 10, SessionsPerDay: 1000, Geo: GeoEU1, Seed: 9}
	a := GenerateEvents(sc)
	b := GenerateEvents(sc)
	if len(a.Flows) != len(b.Flows) || len(a.DNS) != len(b.DNS) {
		t.Fatalf("non-deterministic event mode: %d/%d flows", len(a.Flows), len(b.Flows))
	}
}

func TestTailNamesGrow(t *testing.T) {
	// blogspot-style tails must keep minting new FQDNs.
	sc := QuickScenario(3)
	sc.Duration = time.Hour
	tr := Generate(sc)
	tail := map[string]struct{}{}
	for _, fqdn := range tr.Truth {
		if stats.SLD(fqdn) == "blogspot.com" && fqdn != "www.blogspot.com" {
			tail[fqdn] = struct{}{}
		}
	}
	if len(tail) < 3 {
		t.Fatalf("tail FQDNs = %d, want growth", len(tail))
	}
}

func TestTriVantageScenarios(t *testing.T) {
	scs := TriVantageScenarios(0.5, 9)
	if len(scs) != 3 {
		t.Fatalf("got %d scenarios", len(scs))
	}
	wantName := []string{"US", "EU1", "EU2"}
	wantGeo := []Geo{GeoUS, GeoEU1, GeoEU2}
	seeds := map[uint64]bool{}
	for i, sc := range scs {
		if sc.Name != wantName[i] {
			t.Errorf("scenario %d name = %q, want %q", i, sc.Name, wantName[i])
		}
		if sc.Geo != wantGeo[i] {
			t.Errorf("%s geo = %q, want %q", sc.Name, sc.Geo, wantGeo[i])
		}
		if sc.Duration != 3*time.Hour || sc.StartHour != 17 {
			t.Errorf("%s window = %v @ %vh, want aligned 3h @ 17h", sc.Name, sc.Duration, sc.StartHour)
		}
		if seeds[sc.Seed] {
			t.Errorf("%s reuses seed %d", sc.Name, sc.Seed)
		}
		seeds[sc.Seed] = true
	}
	// Reproducible from (scale, seed): regenerating yields identical traces.
	again := TriVantageScenarios(0.5, 9)
	for i := range scs {
		a, b := Generate(scs[i]), Generate(again[i])
		if len(a.Packets) != len(b.Packets) || a.Flows != b.Flows || a.DNSResponses != b.DNSResponses {
			t.Errorf("%s not reproducible: %d/%d packets", scs[i].Name, len(a.Packets), len(b.Packets))
		}
	}
}
