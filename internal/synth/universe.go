// Package synth generates synthetic ISP traces that stand in for the
// paper's five proprietary captures (Table 1). It models the tangled web
// the paper measures — content owners, the CDNs and clouds hosting them,
// DNS caching at clients, diurnal load, access-technology delays — and
// emits either real wire bytes (Ethernet/IP/UDP DNS + TCP flows, consumed
// by the full DN-Hunter pipeline) or, for multi-day horizons, pre-labeled
// events. Every stochastic choice derives from a seed; the same scenario
// and seed reproduce the identical trace byte for byte.
package synth

import (
	"fmt"
	"net/netip"
	"strings"

	"repro/internal/orgdb"
	"repro/internal/stats"
)

// Geo labels a vantage point's geography; hosting weights differ per geo,
// which is what Table 5 and Fig. 9 measure.
type Geo string

// Geographies of the paper's vantage points.
const (
	GeoUS  Geo = "US"
	GeoEU1 Geo = "EU1"
	GeoEU2 Geo = "EU2"
)

// PTRKind describes a provider's reverse-DNS naming practice, the driver of
// Table 3's mismatch structure.
type PTRKind uint8

// PTR policies.
const (
	// PTRNone publishes no PTR record (29% of the paper's sample).
	PTRNone PTRKind = iota
	// PTRExact publishes the served FQDN (9%).
	PTRExact
	// PTRSameSLD publishes a different host under the same second-level
	// domain, e.g. web12.example.com for www.example.com (36%).
	PTRSameSLD
	// PTRProvider publishes the provider's internal name, totally different
	// from the served FQDN, e.g. a23-1-2-3.deploy.akamaitechnologies.com
	// (26%).
	PTRProvider
)

// CertKind describes what the TLS certificate-inspection baseline sees from
// a server, the driver of Table 4.
type CertKind uint8

// Certificate policies.
const (
	// CertExact presents a certificate for the exact FQDN.
	CertExact CertKind = iota
	// CertWildcard presents *.<sld> — "generic" in the paper's taxonomy.
	CertWildcard
	// CertProvider presents the CDN's own name (a248.e.akamai.net for
	// Zynga content) — "totally different".
	CertProvider
	// CertNone sends no certificate (abbreviated handshake / resumption).
	CertNone
)

// Provider is a hosting organization: a CDN, a cloud, or an org's own
// datacenter.
type Provider struct {
	Name string
	// Prefix is the provider's address block, registered in the org DB.
	Prefix netip.Prefix
	// Servers is the pool size carved from the prefix.
	Servers int
	// Diurnal scales the active server subset with load (CDNs spin up
	// capacity at peak — Fig. 4's evening ramp).
	Diurnal bool
	// PTR is the reverse-zone policy for the pool.
	PTR PTRKind
	// Cert is the certificate policy for TLS served from the pool.
	Cert CertKind
	// MaxAddrsPerResponse caps the answer list length (§6 reports up to 16
	// for Google, >30 rarely).
	MaxAddrsPerResponse int
}

// NamePattern expands to FQDN hostnames under an org's SLD. A pattern
// containing "#" generates numbered variants ("media#" -> media1..mediaN);
// without "#" it is a literal label path ("www", "smtp.mail").
type NamePattern struct {
	Pattern string
	// N is the number of variants for numbered patterns (minimum 1).
	N int
}

// Expand returns the i-th concrete host prefix for the pattern.
func (p NamePattern) Expand(i int) string {
	if !strings.Contains(p.Pattern, "#") {
		return p.Pattern
	}
	return strings.ReplaceAll(p.Pattern, "#", fmt.Sprint(i+1))
}

// Variants returns how many concrete names the pattern yields.
func (p NamePattern) Variants() int {
	if !strings.Contains(p.Pattern, "#") || p.N < 1 {
		return 1
	}
	return p.N
}

// HostGroup is a set of an org's FQDNs served by one provider — one
// rectangle in the paper's Fig. 7/8 domain trees.
type HostGroup struct {
	Provider string
	// Weight is the share of the org's flows landing on this group.
	Weight float64
	// Names under the org SLD served by this group.
	Names []NamePattern
	// Servers is how many provider servers this group uses (<= pool).
	Servers int
	// Port is the server port (default 80; 443 forces TLS).
	Port uint16
	// TLSFrac is the fraction of flows carried over TLS (port 443).
	TLSFrac float64
}

// Org is a content owner.
type Org struct {
	SLD string
	// Popularity is the org's relative traffic weight in the Zipf-like mix.
	Popularity float64
	// Groups maps geography to the hosting layout there.
	Groups map[Geo][]HostGroup
	// TailRate, when positive, makes the org generate previously unseen
	// FQDNs at this per-session probability (user content: blogspot blogs,
	// cloudfront distributions, appspot apps) — the engine behind Fig. 6's
	// unbounded FQDN growth.
	TailRate float64
	// TailPattern formats generated tail names; "#" is replaced by a
	// unique token.
	TailPattern string
	// popByGeo optionally overrides Popularity per geography (Table 5's
	// geo-dependent rankings are driven by this).
	popByGeo map[Geo]float64
}

// Pop returns the org's popularity at a geography, honouring overrides.
func (o *Org) Pop(geo Geo) float64 {
	if o.popByGeo != nil {
		if p, ok := o.popByGeo[geo]; ok {
			return p
		}
	}
	return o.Popularity
}

// ServiceName is one weighted FQDN choice for a port-bound service.
type ServiceName struct {
	FQDN   string // may contain "#" for numbered expansion
	N      int
	Weight float64
}

// Service is non-web traffic bound to a specific port: mail, messengers,
// BitTorrent trackers — the workload behind Tables 6 and 7.
type Service struct {
	Port uint16
	// GroundTruth is the human answer for the port (the tables' GT column).
	GroundTruth string
	// Provider hosting the service endpoints.
	Provider string
	// Names are the FQDNs clients resolve, with relative weights.
	Names []ServiceName
	// Weight is the service's share of total service traffic.
	Weight float64
	// Geos, when non-empty, restricts the service to these vantage points.
	Geos []Geo
}

// Universe is the complete world model for one geography.
type Universe struct {
	Geo       Geo
	Providers map[string]*Provider
	Orgs      []*Org
	Services  []*Service

	// serverAddrs caches the provider pools.
	serverAddrs map[string][]netip.Addr
}

// BuildUniverse constructs the world for one geography. The same universe
// definition is shared across geos; only hosting weights differ.
func BuildUniverse(geo Geo) *Universe {
	u := &Universe{
		Geo:         geo,
		Providers:   make(map[string]*Provider),
		serverAddrs: make(map[string][]netip.Addr),
	}
	for _, p := range defaultProviders() {
		u.Providers[p.Name] = p
	}
	u.Orgs = defaultOrgs()
	u.Services = defaultServices()
	return u
}

// defaultProviders defines the hosting landscape of 2011-2012 as the paper
// reports it: Akamai and Amazon dominate, with regional CDNs beside them.
func defaultProviders() []*Provider {
	mk := func(name, prefix string, servers int, diurnal bool, ptr PTRKind, cert CertKind, maxAddrs int) *Provider {
		return &Provider{
			Name: name, Prefix: netip.MustParsePrefix(prefix), Servers: servers,
			Diurnal: diurnal, PTR: ptr, Cert: cert, MaxAddrsPerResponse: maxAddrs,
		}
	}
	return []*Provider{
		mk("akamai", "23.32.0.0/12", 700, true, PTRProvider, CertProvider, 2),
		mk("amazon", "54.224.0.0/12", 900, true, PTRProvider, CertWildcard, 8),
		mk("google", "173.194.0.0/16", 400, true, PTRProvider, CertWildcard, 16),
		mk("level 3", "8.20.0.0/14", 120, true, PTRNone, CertProvider, 4),
		mk("leaseweb", "85.17.0.0/16", 80, false, PTRSameSLD, CertNone, 2),
		mk("cotendo", "64.78.64.0/18", 40, false, PTRNone, CertProvider, 2),
		mk("edgecast", "93.184.208.0/20", 30, false, PTRProvider, CertProvider, 2),
		mk("microsoft", "65.52.0.0/14", 250, true, PTRSameSLD, CertWildcard, 4),
		mk("dedibox", "88.190.0.0/16", 90, false, PTRSameSLD, CertNone, 2),
		mk("meta", "77.67.0.0/17", 25, false, PTRNone, CertNone, 2),
		mk("ntt", "128.241.0.0/16", 25, false, PTRNone, CertNone, 2),
		mk("cdnetworks", "120.29.128.0/17", 60, false, PTRProvider, CertProvider, 4),
		// Self-hosting content owners.
		mk("facebook", "69.63.176.0/20", 120, true, PTRSameSLD, CertWildcard, 4),
		mk("twitter", "199.59.148.0/22", 40, false, PTRSameSLD, CertWildcard, 3),
		mk("zynga", "166.78.0.0/16", 28, false, PTRSameSLD, CertWildcard, 2),
		mk("linkedin", "108.174.0.0/20", 12, false, PTRExact, CertExact, 2),
		mk("dailymotion", "195.8.214.0/24", 20, false, PTRExact, CertNone, 2),
		mk("dropbox", "174.36.30.0/24", 16, false, PTRSameSLD, CertExact, 2),
		mk("yahoo", "98.136.0.0/14", 150, false, PTRSameSLD, CertWildcard, 4),
		mk("apple", "17.0.0.0/8", 200, false, PTRExact, CertWildcard, 4),
		mk("aol", "64.12.0.0/16", 30, false, PTRSameSLD, CertNone, 2),
		mk("lindenlab", "216.82.0.0/18", 60, false, PTRExact, CertNone, 2),
		mk("isp-mail", "62.101.0.0/16", 40, false, PTRExact, CertExact, 2),
		mk("trackers", "31.172.0.0/16", 50, false, PTRNone, CertNone, 2),
		mk("opera", "195.189.142.0/23", 20, false, PTRSameSLD, CertNone, 2),
	}
}

// OrgDB builds the prefix → organization table the analytics join against
// (the MaxMind substitute).
func (u *Universe) OrgDB() *orgdb.DB {
	var entries []orgdb.Entry
	for _, p := range u.Providers {
		entries = append(entries, orgdb.Entry{Prefix: p.Prefix, Org: p.Name})
	}
	return orgdb.New(entries)
}

// ServerAddrs returns the provider's server pool (deterministic addresses
// carved from its prefix).
func (u *Universe) ServerAddrs(provider string) []netip.Addr {
	if addrs, ok := u.serverAddrs[provider]; ok {
		return addrs
	}
	p, ok := u.Providers[provider]
	if !ok {
		return nil
	}
	base := p.Prefix.Addr().As4()
	addrs := make([]netip.Addr, 0, p.Servers)
	for i := 0; i < p.Servers; i++ {
		// Spread servers across the block: stride through the host bits.
		off := uint32(i)*2654435761 + uint32(i) // Knuth multiplicative hash
		hostBits := 32 - p.Prefix.Bits()
		if hostBits > 24 {
			hostBits = 24
		}
		mask := uint32(1)<<uint(hostBits) - 1
		off &= mask
		if off == 0 {
			off = uint32(i%250) + 1
		}
		b := base
		v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		v |= off
		addrs = append(addrs, netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}))
	}
	// Deduplicate (hash collisions are possible on tiny blocks).
	seen := make(map[netip.Addr]struct{}, len(addrs))
	out := addrs[:0]
	for _, a := range addrs {
		if _, dup := seen[a]; !dup {
			seen[a] = struct{}{}
			out = append(out, a)
		}
	}
	u.serverAddrs[provider] = out
	return out
}

// PTRName returns the reverse-DNS name a provider publishes for one of its
// servers hosting fqdn, following its PTR policy. ok is false for PTRNone.
func (u *Universe) PTRName(provider string, addr netip.Addr, fqdn string) (string, bool) {
	p, ok := u.Providers[provider]
	if !ok {
		return "", false
	}
	switch p.PTR {
	case PTRExact:
		return fqdn, true
	case PTRSameSLD:
		a := addr.As4()
		return fmt.Sprintf("web%d-%d.%s", a[2], a[3], stats.SLD(fqdn)), true
	case PTRProvider:
		a := addr.As4()
		host := strings.ReplaceAll(p.Name, " ", "")
		return fmt.Sprintf("a%d-%d-%d-%d.deploy.%stechnologies.com", a[0], a[1], a[2], a[3], host), true
	default:
		return "", false
	}
}

// CertName returns the certificate subject a provider's server presents for
// fqdn, following its certificate policy. ok is false for CertNone.
func (u *Universe) CertName(provider string, fqdn string) (string, bool) {
	p, ok := u.Providers[provider]
	if !ok {
		return "", false
	}
	switch p.Cert {
	case CertExact:
		return fqdn, true
	case CertWildcard:
		return "*." + stats.SLD(fqdn), true
	case CertProvider:
		host := strings.ReplaceAll(p.Name, " ", "")
		return fmt.Sprintf("a248.e.%s.net", host), true
	default:
		return "", false
	}
}

// FindOrg returns the org with the given SLD, or nil.
func (u *Universe) FindOrg(sld string) *Org {
	for _, o := range u.Orgs {
		if o.SLD == sld {
			return o
		}
	}
	return nil
}
