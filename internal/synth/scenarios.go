package synth

import "time"

// scenarios.go defines the five named captures mirroring the paper's
// Table 1, scaled to laptop size (the paper monitors thousands of
// customers for up to 24 h; we default to a few hundred). Scale multiplies
// client counts; the shapes under study are scale-free.

// Named scenario identifiers.
const (
	NameUS3G     = "US-3G"
	NameEU2ADSL  = "EU2-ADSL"
	NameEU1ADSL1 = "EU1-ADSL1"
	NameEU1ADSL2 = "EU1-ADSL2"
	NameEU1FTTH  = "EU1-FTTH"
	// NameDNSChurn is a synthetic stress vantage point, not one of the
	// paper's captures: aggressive prefetching and a high session rate
	// produce a DNS-response-heavy packet mix with fast resolver churn.
	// The benchmark harness uses it to exercise the DNS decode + insert
	// path, where the flow-dominated scenarios mostly exercise the tagger.
	NameDNSChurn = "DNS-CHURN"
	// NameTriVantage is the multi-geography scenario: one seed expands into
	// three concurrent vantage points (US, EU1, EU2 — see
	// TriVantageScenarios) for the cross-vantage comparisons of Figs. 7-9
	// and Tables 5-8. It is not a single capture: generate it with
	// TriVantageScenarios and ingest the three traces through
	// Engine.RunSources.
	NameTriVantage = "TRIVANTAGE"
)

// ScenarioNames lists the five Table 1 captures in paper order.
var ScenarioNames = []string{NameUS3G, NameEU2ADSL, NameEU1ADSL1, NameEU1ADSL2, NameEU1FTTH}

// NamedScenario returns the scenario configuration for one of the paper's
// vantage points, with client counts multiplied by scale (1.0 ≈ a few
// hundred clients). It panics on an unknown name.
func NamedScenario(name string, scale float64, seed uint64) Scenario {
	if scale <= 0 {
		scale = 1
	}
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 4 {
			v = 4
		}
		return v
	}
	switch name {
	case NameUS3G:
		// Mobile: 3 h, modest rate, high mobility and tunneling — the
		// paper's lowest hit ratio and lowest useless-DNS fraction.
		return Scenario{
			Name: name, Geo: GeoUS,
			Duration: 3 * time.Hour, StartHour: 15.5,
			Clients: n(160), SessionRate: 9,
			DelayMu: -0.5, DelaySigma: 1.1,
			PrefetchFactor: 1.6, LatePrefetchProb: 0.05,
			MobileFraction: 0.35, TunnelFraction: 0.16,
			P2PFraction: 0.06, WarmCacheFraction: 0.25,
			ServiceMix: 0.30, Seed: seed,
		}
	case NameEU2ADSL:
		return Scenario{
			Name: name, Geo: GeoEU2,
			Duration: 6 * time.Hour, StartHour: 14.8,
			Clients: n(200), SessionRate: 10,
			DelayMu: -1.6, DelaySigma: 1.0,
			PrefetchFactor: 2.2, LatePrefetchProb: 0.05,
			MobileFraction: 0, TunnelFraction: 0.01,
			P2PFraction: 0.08, WarmCacheFraction: 0.15,
			ServiceMix: 0.12, Seed: seed,
		}
	case NameEU1ADSL1:
		// The paper's largest capture: 24 h.
		return Scenario{
			Name: name, Geo: GeoEU1,
			Duration: 24 * time.Hour, StartHour: 8,
			Clients: n(120), SessionRate: 8,
			DelayMu: -1.5, DelaySigma: 1.0,
			PrefetchFactor: 2.15, LatePrefetchProb: 0.05,
			MobileFraction: 0, TunnelFraction: 0.02,
			P2PFraction: 0.10, WarmCacheFraction: 0.15,
			ServiceMix: 0.15, Seed: seed,
		}
	case NameEU1ADSL2:
		// Table 1 lists 5 h, but Figs. 4/5 plot 24 h from this vantage
		// point; we generate 24 h so the time-series figures reproduce.
		return Scenario{
			Name: name, Geo: GeoEU1,
			Duration: 24 * time.Hour, StartHour: 0,
			Clients: n(90), SessionRate: 8,
			DelayMu: -1.5, DelaySigma: 1.0,
			PrefetchFactor: 2.2, LatePrefetchProb: 0.05,
			MobileFraction: 0, TunnelFraction: 0.02,
			P2PFraction: 0.09, WarmCacheFraction: 0.15,
			ServiceMix: 0.15, Seed: seed,
		}
	case NameEU1FTTH:
		return Scenario{
			Name: name, Geo: GeoEU1,
			Duration: 3 * time.Hour, StartHour: 17,
			Clients: n(60), SessionRate: 11,
			DelayMu: -2.3, DelaySigma: 0.9,
			PrefetchFactor: 2.25, LatePrefetchProb: 0.05,
			MobileFraction: 0, TunnelFraction: 0.015,
			P2PFraction: 0.12, WarmCacheFraction: 0.18,
			ServiceMix: 0.25, Seed: seed,
		}
	case NameDNSChurn:
		// Stress mix: FTTH-like latencies but with heavy prefetching (most
		// resolutions never followed by a flow), a dense session rate, and
		// a cold cache, so the trace is dominated by DNS responses and
		// short-lived flows — the worst case for resolver and intern churn.
		return Scenario{
			Name: name, Geo: GeoEU1,
			Duration: 90 * time.Minute, StartHour: 20,
			Clients: n(80), SessionRate: 18,
			DelayMu: -2.3, DelaySigma: 0.9,
			PrefetchFactor: 4.5, LatePrefetchProb: 0.10,
			MobileFraction: 0.10, TunnelFraction: 0.01,
			P2PFraction: 0.04, WarmCacheFraction: 0,
			ServiceMix: 0.20, Seed: seed,
		}
	default:
		panic("synth: unknown scenario " + name)
	}
}

// TriVantageScenarios expands one seed into the three-geography vantage
// set of the TRIVANTAGE scenario: a US mobile vantage, an EU1 FTTH vantage,
// and an EU2 ADSL vantage, all covering the same 3-hour evening window so
// their footprints compare directly. Each vantage derives its own sub-seed,
// so the three traces are independent but the whole set reproduces from
// (scale, seed). The scenario Name is the vantage name ("US", "EU1",
// "EU2") — exactly the label the multi-source Engine stamps on events.
func TriVantageScenarios(scale float64, seed uint64) []Scenario {
	us := NamedScenario(NameUS3G, scale, seed*3+1)
	eu1 := NamedScenario(NameEU1FTTH, scale, seed*3+2)
	eu2 := NamedScenario(NameEU2ADSL, scale, seed*3+3)
	us.Name, eu1.Name, eu2.Name = "US", "EU1", "EU2"
	// Align the capture windows: same duration, same local start hour, so
	// per-vantage footprints cover comparable diurnal load.
	for _, sc := range []*Scenario{&us, &eu1, &eu2} {
		sc.Duration = 3 * time.Hour
		sc.StartHour = 17
	}
	return []Scenario{us, eu1, eu2}
}

// QuickScenario is a small fast scenario for tests and examples.
func QuickScenario(seed uint64) Scenario {
	return Scenario{
		Name: "quick", Geo: GeoEU1,
		Duration: 30 * time.Minute, StartHour: 18,
		Clients: 24, SessionRate: 20,
		DelayMu: -1.6, DelaySigma: 1.0,
		PrefetchFactor: 2.2, LatePrefetchProb: 0.05,
		P2PFraction: 0.1, WarmCacheFraction: 0.1,
		TunnelFraction: 0.02, ServiceMix: 0.2,
		Seed: seed,
	}
}
