package analytics

import (
	"fmt"
	"net/netip"
	"sort"
	"time"
)

// anomaly.go implements the application the paper sketches in §4.1: because
// DN-Hunter continuously tracks the FQDN → serverIP mapping, a response
// that suddenly points a well-known name at infrastructure never seen
// before — the signature of DNS cache poisoning or hijacking — can be
// flagged the moment it appears.

// AnomalyKind classifies a mapping change.
type AnomalyKind uint8

// Kinds of mapping change.
const (
	// AnomalyNewOrg: the name moved to a hosting organization never seen
	// serving it before (strongest poisoning signal).
	AnomalyNewOrg AnomalyKind = iota
	// AnomalyNewPrefix: same org but a /16 never seen for this name.
	AnomalyNewPrefix
)

// String names the kind.
func (k AnomalyKind) String() string {
	switch k {
	case AnomalyNewOrg:
		return "new-organization"
	default:
		return "new-prefix"
	}
}

// Anomaly is one flagged mapping change.
type Anomaly struct {
	At     time.Duration
	FQDN   string
	Addr   netip.Addr
	Kind   AnomalyKind
	Detail string
}

// OrgDB resolves an address to an owning organization; orgdb.DB
// satisfies it. (Distinct from OrgLookup, the per-vantage func type the
// Query pipeline uses.)
type OrgDB interface {
	Lookup(netip.Addr) (string, bool)
}

// MappingMonitor watches DNS responses and flags FQDNs whose serving
// infrastructure changes in a suspicious way. It needs a learning phase:
// the first MinObservations responses for a name establish its baseline and
// are never flagged (CDN churn inside the baseline org/prefixes is normal).
type MappingMonitor struct {
	// MinObservations before a name can alarm (default 3).
	MinObservations int
	odb             OrgDB
	names           map[string]*nameBaseline
	anomalies       []Anomaly
	// Suppressed counts changes ignored during learning.
	Suppressed int
}

type nameBaseline struct {
	observations int
	orgs         map[string]struct{}
	prefixes     map[netip.Prefix]struct{}
}

// orgList renders the baseline orgs sorted, for anomaly detail strings.
func (nb *nameBaseline) orgList() []string {
	out := make([]string, 0, len(nb.orgs))
	for o := range nb.orgs {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// NewMappingMonitor creates a monitor joined against the org database.
func NewMappingMonitor(odb OrgDB) *MappingMonitor {
	return &MappingMonitor{
		MinObservations: 3,
		odb:             odb,
		names:           make(map[string]*nameBaseline),
	}
}

// coarse reduces an address to its /16 (or /32 prefix for IPv6) for
// baseline comparison: CDNs rotate inside blocks, hijacks land outside.
func coarse(a netip.Addr) netip.Prefix {
	bits := 16
	if a.Is6() && !a.Is4In6() {
		bits = 32
	}
	p, _ := a.Prefix(bits)
	return p
}

// Observe feeds one DNS response (name + answer addresses) at a trace
// offset and returns any anomalies it raised.
func (m *MappingMonitor) Observe(at time.Duration, fqdn string, addrs []netip.Addr) []Anomaly {
	nb, ok := m.names[fqdn]
	if !ok {
		nb = &nameBaseline{orgs: map[string]struct{}{}, prefixes: map[netip.Prefix]struct{}{}}
		m.names[fqdn] = nb
	}
	var raised []Anomaly
	learning := nb.observations < m.minObs()
	for _, a := range addrs {
		org, orgResolved := m.odb.Lookup(a)
		pfx := coarse(a)
		// Rotation INSIDE a baseline hosting org is ordinary CDN churn and
		// never alarms; the signals are (a) a known org the name has never
		// used and (b) address space outside every known allocation.
		var suspicious bool
		var kind AnomalyKind
		var detail string
		switch {
		case orgResolved:
			if _, known := nb.orgs[org]; !known && len(nb.orgs) > 0 {
				suspicious = true
				kind = AnomalyNewOrg
				detail = fmt.Sprintf("org %q unseen for %s (baseline: %v)", org, fqdn, nb.orgList())
			}
		default:
			if _, known := nb.prefixes[pfx]; !known {
				suspicious = true
				kind = AnomalyNewPrefix
				detail = fmt.Sprintf("unallocated prefix %v unseen for %s", pfx, fqdn)
			}
		}
		switch {
		case suspicious && !learning:
			an := Anomaly{At: at, FQDN: fqdn, Addr: a, Kind: kind, Detail: detail}
			raised = append(raised, an)
			m.anomalies = append(m.anomalies, an)
		case suspicious:
			m.Suppressed++
		}
		if orgResolved {
			nb.orgs[org] = struct{}{}
		}
		nb.prefixes[pfx] = struct{}{}
	}
	nb.observations++
	return raised
}

func (m *MappingMonitor) minObs() int {
	if m.MinObservations <= 0 {
		return 3
	}
	return m.MinObservations
}

// Anomalies returns every anomaly raised so far, in observation order.
func (m *MappingMonitor) Anomalies() []Anomaly { return m.anomalies }

// Names returns how many FQDNs have baselines.
func (m *MappingMonitor) Names() int { return len(m.names) }

// Report renders a summary sorted by FQDN then time.
func (m *MappingMonitor) Report() string {
	out := append([]Anomaly(nil), m.anomalies...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].FQDN != out[j].FQDN {
			return out[i].FQDN < out[j].FQDN
		}
		return out[i].At < out[j].At
	})
	var b []byte
	for _, a := range out {
		b = append(b, fmt.Sprintf("%-10v %-10s %-30s %v %s\n",
			a.At.Round(time.Second), a.Kind, a.FQDN, a.Addr, a.Detail)...)
	}
	if len(b) == 0 {
		return "no anomalies\n"
	}
	return string(b)
}

// FalseAlarmRate estimates how noisy the monitor would be on benign churn:
// feed it every DNS event from an event trace and return anomalies per
// thousand responses. Used by the bench to show CDN churn stays below the
// alarm threshold while an injected hijack fires.
func FalseAlarmRate(m *MappingMonitor, events []struct {
	At    time.Duration
	FQDN  string
	Addrs []netip.Addr
}) float64 {
	if len(events) == 0 {
		return 0
	}
	alarms := 0
	for _, ev := range events {
		alarms += len(m.Observe(ev.At, ev.FQDN, ev.Addrs))
	}
	return 1000 * float64(alarms) / float64(len(events))
}
