// Package analytics implements the paper's off-line analyzer (§4): spatial
// discovery of servers (Algorithm 2), content discovery (Algorithm 3),
// automatic service-tag extraction (Algorithm 4), the two baselines the
// paper compares against (active reverse lookup, TLS certificate
// inspection), and the measurement extraction behind every figure.
package analytics

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/flowdb"
	"repro/internal/stats"
)

// TagScore is one ranked service token.
type TagScore struct {
	Token string
	// Score is Σ_c log(N_X(c)+1) over clients c (paper Eq. 1): the
	// logarithm damps single clients that open very many connections.
	Score float64
	// Flows is the raw flow count carrying the token.
	Flows int
}

// ExtractTags implements Algorithm 4: retrieve the FQDNs of flows to dPort,
// tokenize each (drop TLD and SLD, split on non-alphanumerics, digits → N),
// score tokens per Eq. 1, and return the top k.
func ExtractTags(db *flowdb.DB, dPort uint16, k int) []TagScore {
	// N_X(c): flows per (token, client).
	perClient := make(map[string]map[netip.Addr]int)
	flowsPerToken := make(map[string]int)
	for _, f := range db.ByPort(dPort) {
		if !f.Labeled {
			continue
		}
		for _, tok := range stats.ServiceTokens(f.Label) {
			m, ok := perClient[tok]
			if !ok {
				m = make(map[netip.Addr]int)
				perClient[tok] = m
			}
			m[f.Key.ClientIP]++
			flowsPerToken[tok]++
		}
	}
	out := make([]TagScore, 0, len(perClient))
	//dnhunter:unordered-ok rows are fully sorted below before use
	for tok, clients := range perClient {
		out = append(out, TagScore{Token: tok, Score: logScore(clients), Flows: flowsPerToken[tok]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Token < out[j].Token // stable tie-break
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// ExtractTagsRaw is the ablation variant scoring by raw flow counts instead
// of Eq. 1's per-client log damping (BenchmarkAblationTagScore): a single
// chatty client can dominate the ranking.
func ExtractTagsRaw(db *flowdb.DB, dPort uint16, k int) []TagScore {
	flowsPerToken := make(map[string]int)
	for _, f := range db.ByPort(dPort) {
		if !f.Labeled {
			continue
		}
		for _, tok := range stats.ServiceTokens(f.Label) {
			flowsPerToken[tok]++
		}
	}
	out := make([]TagScore, 0, len(flowsPerToken))
	for tok, n := range flowsPerToken {
		out = append(out, TagScore{Token: tok, Score: float64(n), Flows: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Token < out[j].Token
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// FormatTags renders tags like the paper's tables: "(91)smtp, (37)mail".
func FormatTags(tags []TagScore) string {
	parts := make([]string, len(tags))
	for i, t := range tags {
		parts[i] = fmt.Sprintf("(%.0f)%s", t.Score, t.Token)
	}
	return strings.Join(parts, ", ")
}

// TagCloud scores every token across all ports for an SLD — the word cloud
// of Fig. 10 (appspot services). Scores use Eq. 1 over the host prefix of
// each FQDN under the SLD.
func TagCloud(recs []flowdb.LabeledFlow, sld string, k int) []TagScore {
	perClient := make(map[string]map[netip.Addr]int)
	flowsPer := make(map[string]int)
	for i := range recs {
		f := &recs[i]
		if !f.Labeled || stats.SLD(f.Label) != sld {
			continue
		}
		host := stats.HostPrefix(f.Label)
		if host == "" {
			continue
		}
		tok := stats.GeneralizeDigits(host)
		m, ok := perClient[tok]
		if !ok {
			m = make(map[netip.Addr]int)
			perClient[tok] = m
		}
		m[f.Key.ClientIP]++
		flowsPer[tok]++
	}
	out := make([]TagScore, 0, len(perClient))
	//dnhunter:unordered-ok rows are fully sorted below before use
	for tok, clients := range perClient {
		out = append(out, TagScore{Token: tok, Score: logScore(clients), Flows: flowsPer[tok]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Token < out[j].Token
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
