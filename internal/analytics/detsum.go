package analytics

import (
	"math"
	"sort"
)

// logScore sums log(c+1) over the map's values in sorted order. Float
// addition is not associative, so summing in map iteration order would
// perturb the low bits run over run; sorting the counts first makes the
// score byte-reproducible.
func logScore[K comparable](counts map[K]int) float64 {
	vals := make([]int, 0, len(counts))
	for _, c := range counts {
		vals = append(vals, c)
	}
	sort.Ints(vals)
	score := 0.0
	for _, c := range vals {
		score += math.Log(float64(c) + 1)
	}
	return score
}
