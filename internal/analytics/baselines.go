package analytics

import (
	"net/netip"
	"strings"

	"repro/internal/flowdb"
	"repro/internal/flows"
	"repro/internal/stats"
)

// MatchClass buckets a baseline's answer against DN-Hunter's label, the
// taxonomy of Tables 3 and 4.
type MatchClass uint8

// Comparison outcomes.
const (
	// MatchExact: the baseline returned the same FQDN.
	MatchExact MatchClass = iota
	// MatchSLD: only the second-level domain matched.
	MatchSLD
	// MatchGeneric: a wildcard certificate covering the SLD (Table 4 only).
	MatchGeneric
	// MatchDifferent: a totally different name.
	MatchDifferent
	// MatchNone: the baseline had no answer (no PTR / no certificate).
	MatchNone
)

// String names the class.
func (m MatchClass) String() string {
	switch m {
	case MatchExact:
		return "same FQDN"
	case MatchSLD:
		return "same 2nd-level domain"
	case MatchGeneric:
		return "generic certificate"
	case MatchDifferent:
		return "totally different"
	default:
		return "no answer"
	}
}

// CompareResult tallies comparison outcomes.
type CompareResult struct {
	Counts map[MatchClass]int
	Total  int
}

// Fraction returns the share of outcomes in class m.
func (r CompareResult) Fraction(m MatchClass) float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Counts[m]) / float64(r.Total)
}

// classifyNames buckets a baseline answer vs the DN-Hunter label.
func classifyNames(label, answer string) MatchClass {
	if answer == "" {
		return MatchNone
	}
	label = strings.ToLower(label)
	answer = strings.ToLower(answer)
	if answer == label {
		return MatchExact
	}
	if stats.SLD(answer) == stats.SLD(label) {
		return MatchSLD
	}
	return MatchDifferent
}

// ReverseLookupCompare reproduces Table 3: sample up to n labeled server
// addresses, "perform" the reverse lookup against the PTR zone, and compare
// the PTR with the sniffer's FQDN. The zone maps address → PTR name, with
// "" meaning the name exists but resolves to nothing and a missing key
// meaning NXDOMAIN; both count as no-answer, as in the paper.
func ReverseLookupCompare(db *flowdb.DB, zone map[netip.Addr]string, n int, rng *stats.RNG) CompareResult {
	res := CompareResult{Counts: make(map[MatchClass]int)}
	// Collect (server, one label) pairs for labeled servers.
	servers := db.Servers()
	if len(servers) == 0 {
		return res
	}
	// Deterministic sample without replacement.
	perm := rng.Perm(len(servers))
	for _, idx := range perm {
		if res.Total >= n {
			break
		}
		srv := servers[idx]
		var label string
		for _, f := range db.ByServer(srv) {
			if f.Labeled {
				label = f.Label
				break
			}
		}
		if label == "" {
			continue // the sniffer never labeled this server
		}
		ptr := zone[srv]
		res.Counts[classifyNames(label, ptr)]++
		res.Total++
	}
	return res
}

// CertCompare reproduces Table 4 over every TLS flow DN-Hunter labeled:
// compare the certificate subject captured by the inspection baseline with
// the FQDN label. Wildcard subjects ("*.google.com") covering the label's
// SLD are "generic"; absent certificates (resumption) are "no certificate".
func CertCompare(recs []flowdb.LabeledFlow) CompareResult {
	res := CompareResult{Counts: make(map[MatchClass]int)}
	for i := range recs {
		f := &recs[i]
		// Only TLS flows with a DN-Hunter label participate.
		if !f.Labeled || f.L7 != flows.L7TLS {
			continue
		}
		res.Total++
		if len(f.CertNames) == 0 {
			res.Counts[MatchNone]++
			continue
		}
		cn := strings.ToLower(f.CertNames[0])
		label := strings.ToLower(f.Label)
		switch {
		case cn == label:
			res.Counts[MatchExact]++
		case strings.HasPrefix(cn, "*."):
			if stats.SLD(cn[2:]) == stats.SLD(label) || cn[2:] == stats.SLD(label) {
				res.Counts[MatchGeneric]++
			} else {
				res.Counts[MatchDifferent]++
			}
		case stats.SLD(cn) == stats.SLD(label):
			res.Counts[MatchSLD]++
		default:
			res.Counts[MatchDifferent]++
		}
	}
	return res
}
