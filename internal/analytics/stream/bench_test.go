package stream_test

import (
	"testing"

	"repro/internal/analytics"
	"repro/internal/analytics/stream"
)

// BenchmarkPipelineObserve times one flow through the full standard
// streaming query set — the per-flow cost benchcheck -analytics gates at
// the whole-engine level. Must stay allocation-free: an alloc here is a
// per-flow alloc under run-forever serving.
func BenchmarkPipelineObserve(b *testing.B) {
	flows := testFlows(4096, 7)
	p := analytics.NewPipeline(stream.StandardQueries(nil)...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(&flows[i%len(flows)])
	}
}
