package stream

import (
	"math"
	"math/bits"
	"net/netip"

	"repro/internal/swiss"
)

// hllSeed is the fixed hash seed shared by every HLL in the process (and
// across processes: it is a compile-time constant). Shard merges rely on
// it — register-max merging is only meaningful when all shards hash a
// given value to the same (register, rank) pair.
const hllSeed uint64 = 0x1D8E4C2A9B3F6E57

// Default and bounds for the register-count exponent.
const (
	// DefaultHLLPrecision gives 2^10 = 1024 registers: 1 KiB of state and
	// ~3.25% relative standard error, plenty for per-SLD server counts.
	DefaultHLLPrecision = 10
	minHLLPrecision     = 4
	maxHLLPrecision     = 16
)

// HLL is a HyperLogLog distinct-count estimator: 2^p one-byte registers,
// each remembering the maximum leading-zero rank seen in its substream.
// Relative standard error is 1.04/√(2^p). Merge takes register maxima,
// which is commutative, associative, and idempotent — so estimates are
// independent of shard count and merge order, and Estimate is
// deterministic for a given observed value set.
type HLL struct {
	p    uint8
	regs []uint8
}

// NewHLL builds an estimator with 2^p registers (p clamped to [4, 16]).
func NewHLL(p uint8) *HLL {
	if p < minHLLPrecision {
		p = minHLLPrecision
	}
	if p > maxHLLPrecision {
		p = maxHLLPrecision
	}
	//dnhunter:alloc-ok one-time register allocation at estimator construction, not per observation
	return &HLL{p: p, regs: make([]uint8, 1<<p)}
}

// Precision returns the register-count exponent p.
func (h *HLL) Precision() uint8 { return h.p }

// AddHash folds one already-hashed value: the top p bits select a
// register, the rank is the leading-zero count of the rest (the sentinel
// bit keeps the rank defined when the remaining bits are all zero).
//
//dnhunter:hotpath
func (h *HLL) AddHash(x uint64) {
	idx := x >> (64 - h.p)
	w := x<<h.p | 1<<(h.p-1)
	r := uint8(bits.LeadingZeros64(w)) + 1
	if r > h.regs[idx] {
		h.regs[idx] = r
	}
}

// Add64 folds one 64-bit value, hashing it with the shared fixed seed.
//
//dnhunter:hotpath
func (h *HLL) Add64(v uint64) { h.AddHash(swiss.HashU64(hllSeed, v)) }

// AddAddr folds one address, hashing it with the shared fixed seed.
//
//dnhunter:hotpath
func (h *HLL) AddAddr(a netip.Addr) { h.AddHash(swiss.HashAddr(hllSeed, a)) }

// Merge folds another estimator into this one by register maxima. The
// precisions must match.
func (h *HLL) Merge(o *HLL) error {
	if h.p != o.p {
		return errPrecisionMismatch{h.p, o.p}
	}
	for i, r := range o.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
	return nil
}

type errPrecisionMismatch struct{ a, b uint8 }

func (e errPrecisionMismatch) Error() string {
	return "stream: hll precision mismatch: " + itoa(int(e.a)) + " vs " + itoa(int(e.b))
}

// itoa avoids pulling strconv into the error path of a tiny type.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Estimate returns the distinct-count estimate: the harmonic-mean raw
// estimate with the standard bias correction, switching to linear
// counting in the small range (raw estimate ≤ 2.5m with empty registers
// remaining), where linear counting is more accurate.
func (h *HLL) Estimate() float64 {
	m := float64(int(1) << h.p)
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	e := alpha(1<<h.p) * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// StdError returns the estimator's relative standard error, 1.04/√m.
func (h *HLL) StdError() float64 {
	return 1.04 / math.Sqrt(float64(int(1)<<h.p))
}

// alpha is the bias-correction constant for m registers.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/float64(m))
}
