package stream_test

import (
	"encoding/json"
	"fmt"
	"math"
	"net/netip"
	"testing"

	"repro/internal/analytics"
	"repro/internal/analytics/stream"
	"repro/internal/flowdb"
	"repro/internal/flows"
)

// lcg is a tiny deterministic generator so tests don't depend on
// math/rand's sequence stability.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

func TestSpaceSavingExactUnderCapacity(t *testing.T) {
	ss := stream.NewSpaceSaving(64)
	truth := map[string]uint64{}
	var r lcg = 7
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("k%02d", r.next()%32) // 32 keys < 64 counters
		ss.Observe(key)
		truth[key]++
	}
	top := ss.Top(0)
	if len(top) != len(truth) {
		t.Fatalf("tracked %d keys, want %d", len(top), len(truth))
	}
	for _, e := range top {
		if e.Err != 0 {
			t.Fatalf("key %s: err %d under capacity, want 0", e.Key, e.Err)
		}
		if e.Count != truth[e.Key] {
			t.Fatalf("key %s: count %d, want %d", e.Key, e.Count, truth[e.Key])
		}
	}
}

func TestSpaceSavingInvariants(t *testing.T) {
	const capacity = 8
	ss := stream.NewSpaceSaving(capacity)
	truth := map[string]uint64{}
	var n uint64
	var r lcg = 13
	for i := 0; i < 50_000; i++ {
		// Skewed universe of 50: key j drawn with weight ~ 1/(j+1).
		j := r.next() % 50
		j = j * (r.next() % 50) / 50 // bias toward small j
		key := fmt.Sprintf("k%02d", j)
		ss.Observe(key)
		truth[key]++
		n++
	}
	if got := ss.Observed(); got != n {
		t.Fatalf("observed %d, want %d", got, n)
	}
	bound := n / capacity
	for _, e := range ss.Top(0) {
		if e.Err > bound {
			t.Fatalf("key %s: err %d exceeds N/m = %d", e.Key, e.Err, bound)
		}
		tc := truth[e.Key]
		if tc > e.Count || tc < e.Count-e.Err {
			t.Fatalf("key %s: true count %d outside [%d, %d]", e.Key, tc, e.Count-e.Err, e.Count)
		}
	}
	tracked := map[string]bool{}
	for _, e := range ss.Top(0) {
		tracked[e.Key] = true
	}
	for key, tc := range truth {
		if tc > bound && !tracked[key] {
			t.Fatalf("heavy hitter %s (count %d > N/m %d) not tracked", key, tc, bound)
		}
	}
}

func TestSpaceSavingMergeOrderByteIdentical(t *testing.T) {
	feed := func(seed lcg, items int) *stream.SpaceSaving {
		ss := stream.NewSpaceSaving(4)
		r := seed
		for i := 0; i < items; i++ {
			ss.Observe(fmt.Sprintf("k%d", r.next()%20))
		}
		return ss
	}
	shards := func() [3]*stream.SpaceSaving {
		return [3]*stream.SpaceSaving{feed(1, 500), feed(2, 300), feed(3, 700)}
	}
	marshal := func(ss *stream.SpaceSaving) string {
		b, err := json.Marshal(ss.Top(0))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	// (a⊕b)⊕c
	a := shards()
	a[0].Merge(a[1])
	a[0].Merge(a[2])
	left := marshal(a[0])
	// a⊕(b⊕c)
	b := shards()
	b[1].Merge(b[2])
	b[0].Merge(b[1])
	right := marshal(b[0])
	// c⊕(b⊕a) — commutativity too
	c := shards()
	c[1].Merge(c[0])
	c[2].Merge(c[1])
	rev := marshal(c[2])
	if left != right || left != rev {
		t.Fatalf("merge order changed snapshot:\n(a+b)+c: %s\na+(b+c): %s\nc+(b+a): %s", left, right, rev)
	}
}

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 50_000} {
		h := stream.NewHLL(stream.DefaultHLLPrecision)
		var r lcg = 99
		seen := map[uint64]bool{}
		for len(seen) < n {
			v := r.next()
			if !seen[v] {
				seen[v] = true
				h.Add64(v)
			}
			h.Add64(v) // duplicates must not move the estimate
		}
		est := h.Estimate()
		slack := 5 * h.StdError() * float64(n)
		if slack < 2 {
			slack = 2
		}
		if math.Abs(est-float64(n)) > slack {
			t.Fatalf("n=%d: estimate %.1f off by more than %.1f", n, est, slack)
		}
	}
}

func TestHLLMergeMatchesUnion(t *testing.T) {
	whole := stream.NewHLL(10)
	parts := [3]*stream.HLL{stream.NewHLL(10), stream.NewHLL(10), stream.NewHLL(10)}
	var r lcg = 5
	for i := 0; i < 10_000; i++ {
		v := r.next()
		whole.Add64(v)
		parts[v%3].Add64(v)
	}
	// Merge in two different orders; both must equal the unsharded sketch
	// exactly (register maxima are deterministic, not just approximate).
	m1 := stream.NewHLL(10)
	for _, p := range parts {
		if err := m1.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	m2 := stream.NewHLL(10)
	for i := len(parts) - 1; i >= 0; i-- {
		if err := m2.Merge(parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if m1.Estimate() != whole.Estimate() || m2.Estimate() != whole.Estimate() {
		t.Fatalf("sharded estimates %v/%v != unsharded %v", m1.Estimate(), m2.Estimate(), whole.Estimate())
	}
	if err := m1.Merge(stream.NewHLL(8)); err == nil {
		t.Fatal("merging mismatched precisions must error")
	}
}

// mkFlow builds a labeled flow with enough fields for every query.
func mkFlow(client, server byte, label, sld, vantage string, proto flows.L7Proto) flowdb.LabeledFlow {
	f := flowdb.LabeledFlow{
		Label:   label,
		SLD:     sld,
		Labeled: label != "",
		Vantage: vantage,
	}
	f.Key.ClientIP = netip.AddrFrom4([4]byte{10, 0, 0, client})
	f.Key.ServerIP = netip.AddrFrom4([4]byte{192, 0, 2, server})
	f.L7 = proto
	return f
}

// testFlows synthesizes a deterministic multi-vantage flow set.
func testFlows(n int, seed lcg) []flowdb.LabeledFlow {
	var out []flowdb.LabeledFlow
	r := seed
	vantages := []string{"us", "eu1", "eu2"}
	protos := []flows.L7Proto{flows.L7HTTP, flows.L7TLS, flows.L7Unknown}
	for i := 0; i < n; i++ {
		sld := fmt.Sprintf("site%d.com", r.next()%40)
		label := fmt.Sprintf("cdn%d.%s", r.next()%4, sld)
		if r.next()%5 == 0 {
			label, sld = "", "" // unlabeled flow
		}
		out = append(out, mkFlow(
			byte(r.next()%200), byte(r.next()%100),
			label, sld,
			vantages[r.next()%3],
			protos[r.next()%3],
		))
	}
	return out
}

func newStreamPipeline() *analytics.Pipeline {
	return analytics.NewPipeline(stream.StandardQueries(nil)...)
}

func newExactPipeline() *analytics.Pipeline {
	return analytics.NewPipeline(
		analytics.NewExactTopDomains(stream.DefaultTopK),
		analytics.NewExactTopSLDs(stream.DefaultTopK),
		analytics.NewExactTopOrgs(nil, stream.DefaultTopK),
		analytics.NewExactSLDFootprint(stream.DefaultTopK),
		analytics.NewExactCoverage(0),
	)
}

// TestPipelineMergeOrderByteIdentical shards one flow set three ways and
// checks every merge association and order yields byte-identical
// snapshots, for both query families.
func TestPipelineMergeOrderByteIdentical(t *testing.T) {
	all := testFlows(3000, 42)
	for _, family := range []struct {
		name string
		mk   func() *analytics.Pipeline
	}{
		{"stream", newStreamPipeline},
		{"exact", newExactPipeline},
	} {
		t.Run(family.name, func(t *testing.T) {
			shardSet := func() [3]*analytics.Pipeline {
				ps := [3]*analytics.Pipeline{family.mk(), family.mk(), family.mk()}
				for i, f := range all {
					ps[i%3].Observe(&f)
				}
				return ps
			}
			snapshotAfter := func(order [3]int, assoc string) string {
				ps := shardSet()
				var root *analytics.Pipeline
				switch assoc {
				case "left": // (a⊕b)⊕c
					root = ps[order[0]]
					if err := root.Merge(ps[order[1]]); err != nil {
						t.Fatal(err)
					}
					if err := root.Merge(ps[order[2]]); err != nil {
						t.Fatal(err)
					}
				case "right": // a⊕(b⊕c)
					if err := ps[order[1]].Merge(ps[order[2]]); err != nil {
						t.Fatal(err)
					}
					root = ps[order[0]]
					if err := root.Merge(ps[order[1]]); err != nil {
						t.Fatal(err)
					}
				}
				b, err := json.Marshal(root.Snapshot())
				if err != nil {
					t.Fatal(err)
				}
				return string(b)
			}
			want := snapshotAfter([3]int{0, 1, 2}, "left")
			for _, order := range [][3]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {2, 0, 1}} {
				for _, assoc := range []string{"left", "right"} {
					if got := snapshotAfter(order, assoc); got != want {
						t.Fatalf("%s merge order %v/%s changed snapshot:\nwant %s\ngot  %s",
							family.name, order, assoc, want, got)
					}
				}
			}
			// And sharding itself must not change the result vs one pipeline.
			single := family.mk()
			for _, f := range all {
				single.Observe(&f)
			}
			b, _ := json.Marshal(single.Snapshot())
			if string(b) != want {
				t.Fatalf("%s: sharded snapshot differs from unsharded:\nwant %s\ngot  %s", family.name, string(b), want)
			}
		})
	}
}

// TestStreamMatchesExactSmall checks that under the counter budgets the
// sketches are exact on a small universe (every key tracked, every HLL
// within bounds), so serve-mode defaults lose nothing on ordinary traces.
func TestStreamMatchesExactSmall(t *testing.T) {
	all := testFlows(5000, 7)
	sk, ex := newStreamPipeline(), newExactPipeline()
	for _, f := range all {
		sk.Observe(&f)
		ex.Observe(&f)
	}
	for _, name := range []string{"top_domains", "top_slds", "top_orgs"} {
		sq, _ := sk.Query(name)
		eq, _ := ex.Query(name)
		st := sq.Snapshot().(analytics.TopKResult)
		et := eq.Snapshot().(analytics.TopKResult)
		if st.Observed != et.Observed {
			t.Fatalf("%s: observed %d vs exact %d", name, st.Observed, et.Observed)
		}
		if len(st.Entries) != len(et.Entries) {
			t.Fatalf("%s: %d entries vs exact %d", name, len(st.Entries), len(et.Entries))
		}
		for i := range st.Entries {
			if st.Entries[i].Key != et.Entries[i].Key || st.Entries[i].Count != et.Entries[i].Count {
				t.Fatalf("%s[%d]: %+v vs exact %+v", name, i, st.Entries[i], et.Entries[i])
			}
		}
	}
	sq, _ := sk.Query("sld_server_footprint")
	eq, _ := ex.Query("sld_server_footprint")
	sc := sq.Snapshot().(analytics.CardinalityResult)
	ec := eq.Snapshot().(analytics.CardinalityResult)
	if sc.DroppedFlows != 0 {
		t.Fatalf("dropped %d flows under budget", sc.DroppedFlows)
	}
	if math.Abs(sc.Total-ec.Total) > 5*sc.StdError*ec.Total+2 {
		t.Fatalf("total footprint %v vs exact %v", sc.Total, ec.Total)
	}
	// Coverage is exact in both families.
	scov, _ := sk.Query("coverage")
	ecov, _ := ex.Query("coverage")
	sj, _ := json.Marshal(scov.Snapshot())
	ej, _ := json.Marshal(ecov.Snapshot())
	if string(sj) != string(ej) {
		t.Fatalf("coverage differs:\nstream %s\nexact  %s", sj, ej)
	}
}

// TestSLDFootprintBudget checks the tracking budget drops overflow keys
// into DroppedFlows instead of growing.
func TestSLDFootprintBudget(t *testing.T) {
	q := stream.NewSLDFootprint(5, 3, 10)
	for i := 0; i < 10; i++ {
		f := mkFlow(1, byte(i), fmt.Sprintf("a.s%d.com", i), fmt.Sprintf("s%d.com", i), "", flows.L7HTTP)
		q.Observe(&f)
	}
	res := q.Snapshot().(analytics.CardinalityResult)
	if res.TrackedKeys != 3 {
		t.Fatalf("tracked %d keys, want 3", res.TrackedKeys)
	}
	if res.DroppedFlows != 7 {
		t.Fatalf("dropped %d flows, want 7", res.DroppedFlows)
	}
	if res.Total < 8 { // union HLL still saw all 10 servers
		t.Fatalf("union estimate %v lost dropped keys' servers", res.Total)
	}
}

// TestPipelineObserveWindow checks the streaming entry point counts and
// feeds exactly the window's flows.
func TestPipelineObserveWindow(t *testing.T) {
	p := newStreamPipeline()
	db := flowdb.New()
	for _, f := range testFlows(100, 3) {
		db.Add(f)
	}
	p.ObserveWindow(flowdb.Window{Index: 0, DB: db})
	if p.Observed() != 100 {
		t.Fatalf("observed %d, want 100", p.Observed())
	}
}
