package stream

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/analytics"
	"repro/internal/flowdb"
	"repro/internal/flows"
	"repro/internal/swiss"
)

// Default budgets for StandardQueries. Chosen so the full standard set
// stays under ~2 MiB of state regardless of trace size.
const (
	// DefaultTopK is the rank depth the standard queries snapshot.
	DefaultTopK = 10
	// DefaultCounters is the space-saving budget: error ≤ N/1024 per key
	// and any key above 0.1% of traffic is guaranteed tracked.
	DefaultCounters = 1024
	// DefaultMaxSLDs bounds how many SLDs hold a live server-footprint
	// estimator.
	DefaultMaxSLDs = 1024
)

// mergeAs asserts other is the same concrete query type and name as q
// (the stream-side twin of the analytics package's helper).
func mergeAs[T interface{ Name() string }](q T, other analytics.Query) (T, error) {
	o, ok := other.(T)
	if !ok || o.Name() != q.Name() {
		return o, fmt.Errorf("stream: cannot merge %T(%q) into %T(%q)", other, other.Name(), q, q.Name())
	}
	return o, nil
}

// orgOrUnknown mirrors the analytics package's fallback.
func orgOrUnknown(lookup analytics.OrgLookup, vantage string, addr netip.Addr) string {
	if lookup != nil {
		if org, ok := lookup(vantage, addr); ok {
			return org
		}
	}
	return "unknown"
}

// MemoOrgLookup wraps a lookup with a one-entry memo of the last
// resolution. Two standard queries (top_orgs, provider_usage) resolve the
// same flow back to back; sharing one memoized lookup between them halves
// the per-flow org-database walks, and consecutive flows to the same
// server skip the walk entirely. Single-goroutine like the queries it
// serves: the Pipeline's lock covers it. A nil lookup stays nil.
func MemoOrgLookup(lookup analytics.OrgLookup) analytics.OrgLookup {
	if lookup == nil {
		return nil
	}
	var (
		valid    bool
		vantage  string
		addr     netip.Addr
		org      string
		resolved bool
	)
	return func(v string, a netip.Addr) (string, bool) {
		if valid && a == addr && v == vantage {
			return org, resolved
		}
		org, resolved = lookup(v, a)
		vantage, addr, valid = v, a, true
		return org, resolved
	}
}

// topKKey selects which flow field a topK query counts. A switch rather
// than a key closure: passing &f into a captured func makes the whole
// LabeledFlow escape, one heap copy per query per flow on the hot path.
type topKKey uint8

const (
	keyLabel topKKey = iota
	keySLD
	keyOrg
)

// topK is the sketched counterpart of the exact top-k queries: same
// names, same TopKResult snapshot shape, space-saving state instead of a
// full count map.
type topK struct {
	name   string
	k      int
	key    topKKey
	lookup analytics.OrgLookup // keyOrg only
	ss     *SpaceSaving
}

// NewTopDomains approximates flows-per-FQDN with a space-saving sketch of
// the given counter budget. Stream counterpart of NewExactTopDomains.
func NewTopDomains(k, counters int) analytics.Query {
	return &topK{name: "top_domains", k: k, key: keyLabel, ss: NewSpaceSaving(counters)}
}

// NewTopSLDs approximates flows-per-SLD. Stream counterpart of
// NewExactTopSLDs.
func NewTopSLDs(k, counters int) analytics.Query {
	return &topK{name: "top_slds", k: k, key: keySLD, ss: NewSpaceSaving(counters)}
}

// NewTopOrgs approximates labeled flows per hosting organization. Stream
// counterpart of NewExactTopOrgs.
func NewTopOrgs(lookup analytics.OrgLookup, k, counters int) analytics.Query {
	return &topK{name: "top_orgs", k: k, key: keyOrg, lookup: lookup, ss: NewSpaceSaving(counters)}
}

func (q *topK) Name() string { return q.name }

//dnhunter:hotpath
func (q *topK) Observe(f *flowdb.LabeledFlow) {
	if !f.Labeled {
		return
	}
	var key string
	switch q.key {
	case keyLabel:
		key = f.Label
	case keySLD:
		key = f.SLD
	default:
		key = orgOrUnknown(q.lookup, f.Vantage, f.Key.ServerIP)
	}
	if key != "" {
		q.ss.Observe(key)
	}
}

func (q *topK) Merge(other analytics.Query) error {
	o, err := mergeAs(q, other)
	if err != nil {
		return err
	}
	q.ss.Merge(o.ss)
	return nil
}

func (q *topK) Snapshot() analytics.Result {
	return analytics.TopKResult{
		K:        q.k,
		Observed: q.ss.Observed(),
		Capacity: q.ss.Capacity(),
		Entries:  q.ss.Top(q.k),
	}
}

// sldFootprint estimates distinct server addresses per SLD with one HLL
// per tracked SLD plus one for the union. Stream counterpart of
// NewExactSLDFootprint.
type sldFootprint struct {
	k       int
	maxSLDs int
	p       uint8
	perSLD  map[string]*HLL
	all     *HLL
	dropped uint64
}

// NewSLDFootprint builds the sketched per-SLD server-footprint query:
// at most maxSLDs tracked keys, 2^p registers each. Flows whose SLD
// arrives after the budget is full still count toward the union estimate
// but are reported in DroppedFlows.
func NewSLDFootprint(k, maxSLDs int, p uint8) analytics.Query {
	if maxSLDs < 1 {
		maxSLDs = 1
	}
	return &sldFootprint{k: k, maxSLDs: maxSLDs, p: p,
		perSLD: make(map[string]*HLL, maxSLDs), all: NewHLL(p)}
}

func (q *sldFootprint) Name() string { return "sld_server_footprint" }

//dnhunter:hotpath
func (q *sldFootprint) Observe(f *flowdb.LabeledFlow) {
	if !f.Labeled {
		return
	}
	// One address hash serves both the union and the per-SLD register.
	x := swiss.HashAddr(hllSeed, f.Key.ServerIP)
	q.all.AddHash(x)
	h, ok := q.perSLD[f.SLD]
	if !ok {
		if len(q.perSLD) >= q.maxSLDs {
			q.dropped++
			return
		}
		h = newTrackedHLL(q.p)
		q.perSLD[f.SLD] = h
	}
	h.AddHash(x)
}

// newTrackedHLL is the lazy per-key estimator allocation: it happens at
// most maxSLDs times over a query's whole lifetime, not per flow.
func newTrackedHLL(p uint8) *HLL {
	//dnhunter:alloc-ok one-time per-tracked-key estimator, bounded by the maxSLDs budget
	return NewHLL(p)
}

func (q *sldFootprint) Merge(other analytics.Query) error {
	o, err := mergeAs(q, other)
	if err != nil {
		return err
	}
	// No truncation to maxSLDs here: dropping keys per pairwise merge
	// would make the result depend on merge order. The merged state
	// transiently holds up to shards×maxSLDs estimators.
	//dnhunter:unordered-ok register-max unions keyed by SLD; order-free
	for sld, oh := range o.perSLD {
		h, ok := q.perSLD[sld]
		if !ok {
			h = NewHLL(o.p)
			q.perSLD[sld] = h
		}
		if err := h.Merge(oh); err != nil {
			return err
		}
	}
	q.dropped += o.dropped
	return q.all.Merge(o.all)
}

func (q *sldFootprint) Snapshot() analytics.Result {
	entries := make([]analytics.CardinalityEntry, 0, len(q.perSLD))
	//dnhunter:unordered-ok rows are fully sorted below before use
	for sld, h := range q.perSLD {
		entries = append(entries, analytics.CardinalityEntry{Key: sld, Count: h.Estimate()})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Key < entries[j].Key
	})
	tracked := len(entries)
	if q.k > 0 && len(entries) > q.k {
		entries = entries[:q.k]
	}
	return analytics.CardinalityResult{
		K:            q.k,
		StdError:     q.all.StdError(),
		TrackedKeys:  tracked,
		DroppedFlows: q.dropped,
		Total:        q.all.Estimate(),
		Entries:      entries,
	}
}

// providerUsage is the streaming provider footprint: flow counters per
// (vantage, org) cell plus an HLL per cell for distinct servers. The org
// and vantage universes are small (org databases list tens of providers),
// so plain maps are the bounded state here; only the server sets need
// sketching.
type providerUsage struct {
	lookup  analytics.OrgLookup
	k       int
	p       uint8
	labeled map[string]uint64            // vantage → labeled flows
	flows   map[string]map[string]uint64 // vantage → org → flows
	servers map[string]map[string]*HLL   // vantage → org → distinct servers

	// Current-vantage cell cache; see Observe. Maps are mutated in
	// place everywhere, so the cached references stay valid, but Merge
	// invalidates anyway to keep that a local argument.
	curValid bool
	curV     string
	curVF    map[string]uint64
	curVS    map[string]*HLL
}

// NewProviderUsage builds the streaming Table 5 / Fig. 9 aggregate:
// per-vantage hosting-org shares with HLL-estimated server counts
// (2^p registers per cell). Snapshot returns ProviderUsageResult with
// vantages sorted by name — merge-order independent, unlike the exact
// query's seeded input order.
func NewProviderUsage(lookup analytics.OrgLookup, k int, p uint8) analytics.Query {
	return &providerUsage{lookup: lookup, k: k, p: p,
		labeled: map[string]uint64{},
		flows:   map[string]map[string]uint64{},
		servers: map[string]map[string]*HLL{}}
}

func (q *providerUsage) Name() string { return "provider_usage" }

//dnhunter:hotpath
func (q *providerUsage) Observe(f *flowdb.LabeledFlow) {
	if !f.Labeled {
		return
	}
	v := f.Vantage
	// Flow streams rarely switch vantage mid-stream; cache the current
	// vantage's cell maps to skip two map lookups per flow.
	if !q.curValid || v != q.curV {
		vf, ok := q.flows[v]
		if !ok {
			vf = newOrgCounters()
			q.flows[v] = vf
			q.servers[v] = newOrgEstimators()
		}
		q.curV, q.curVF, q.curVS, q.curValid = v, vf, q.servers[v], true
	}
	q.labeled[v]++
	org := orgOrUnknown(q.lookup, v, f.Key.ServerIP)
	q.curVF[org]++
	h, ok := q.curVS[org]
	if !ok {
		h = newTrackedHLL(q.p)
		q.curVS[org] = h
	}
	h.AddAddr(f.Key.ServerIP)
}

// newOrgCounters / newOrgEstimators are the lazy per-vantage cell maps:
// allocated once per vantage name, not per flow.
func newOrgCounters() map[string]uint64 {
	//dnhunter:alloc-ok one-time per-vantage counter map, bounded by the vantage count
	return make(map[string]uint64)
}

func newOrgEstimators() map[string]*HLL {
	//dnhunter:alloc-ok one-time per-vantage estimator map, bounded by the vantage count
	return make(map[string]*HLL)
}

func (q *providerUsage) Merge(other analytics.Query) error {
	o, err := mergeAs(q, other)
	if err != nil {
		return err
	}
	q.curValid = false
	//dnhunter:unordered-ok keyed sums; order-free
	for v, n := range o.labeled {
		q.labeled[v] += n
	}
	//dnhunter:unordered-ok keyed sums; order-free
	for v, vf := range o.flows {
		dst, ok := q.flows[v]
		if !ok {
			dst = make(map[string]uint64, len(vf))
			q.flows[v] = dst
		}
		for org, n := range vf {
			dst[org] += n
		}
	}
	//dnhunter:unordered-ok register-max unions keyed by vantage and org; order-free
	for v, vs := range o.servers {
		dst, ok := q.servers[v]
		if !ok {
			dst = make(map[string]*HLL, len(vs))
			q.servers[v] = dst
		}
		//dnhunter:unordered-ok register-max unions keyed by org; order-free
		for org, oh := range vs {
			h, ok := dst[org]
			if !ok {
				h = NewHLL(oh.p)
				dst[org] = h
			}
			if err := h.Merge(oh); err != nil {
				return err
			}
		}
	}
	return nil
}

func (q *providerUsage) Snapshot() analytics.Result {
	res := analytics.ProviderUsageResult{
		PerVantage:   make(map[string][]analytics.ProviderShare),
		LabeledFlows: make(map[string]uint64, len(q.labeled)),
	}
	//dnhunter:unordered-ok collected then sorted below
	for v := range q.labeled {
		res.Vantages = append(res.Vantages, v)
	}
	sort.Strings(res.Vantages)
	totals := make(map[string]uint64)
	//dnhunter:unordered-ok keyed sums into a map; order-free
	for _, vf := range q.flows {
		for org, n := range vf {
			totals[org] += n
		}
	}
	//dnhunter:unordered-ok collected then sorted below
	for org := range totals {
		res.Orgs = append(res.Orgs, org)
	}
	sort.Slice(res.Orgs, func(i, j int) bool {
		if totals[res.Orgs[i]] != totals[res.Orgs[j]] {
			return totals[res.Orgs[i]] > totals[res.Orgs[j]]
		}
		return res.Orgs[i] < res.Orgs[j]
	})
	if q.k > 0 && len(res.Orgs) > q.k {
		res.Orgs = res.Orgs[:q.k]
	}
	for _, v := range res.Vantages {
		labeled := q.labeled[v]
		res.LabeledFlows[v] = labeled
		shares := make([]analytics.ProviderShare, 0, len(res.Orgs))
		for _, org := range res.Orgs {
			n, ok := q.flows[v][org]
			if !ok {
				continue
			}
			ps := analytics.ProviderShare{Org: org, Flows: n}
			if labeled > 0 {
				ps.Share = float64(n) / float64(labeled)
			}
			if h := q.servers[v][org]; h != nil {
				ps.Servers = h.Estimate()
			}
			shares = append(shares, ps)
		}
		sort.Slice(shares, func(i, j int) bool {
			if shares[i].Flows != shares[j].Flows {
				return shares[i].Flows > shares[j].Flows
			}
			return shares[i].Org < shares[j].Org
		})
		res.PerVantage[v] = shares
	}
	return res
}

// coverage is the streaming tagging-coverage counter — fixed arrays
// indexed by L7 protocol, no sketching needed (the counter universe is
// the protocol enum).
type coverage struct {
	warmup         time.Duration
	total, labeled [int(flows.L7DNS) + 1]uint64
}

// NewCoverage counts per-protocol tagging coverage for flows starting at
// or after warmup. Identical results to NewExactCoverage (the state is
// already bounded; it lives here so serve mode registers only stream
// queries).
func NewCoverage(warmup time.Duration) analytics.Query {
	return &coverage{warmup: warmup}
}

func (q *coverage) Name() string { return "coverage" }

//dnhunter:hotpath
func (q *coverage) Observe(f *flowdb.LabeledFlow) {
	if f.Start < q.warmup || int(f.L7) >= len(q.total) {
		return
	}
	q.total[f.L7]++
	if f.Labeled {
		q.labeled[f.L7]++
	}
}

func (q *coverage) Merge(other analytics.Query) error {
	o, err := mergeAs(q, other)
	if err != nil {
		return err
	}
	for i := range q.total {
		q.total[i] += o.total[i]
		q.labeled[i] += o.labeled[i]
	}
	return nil
}

func (q *coverage) Snapshot() analytics.Result {
	res := analytics.CoverageResult{WarmupSeconds: q.warmup.Seconds()}
	for i := range q.total {
		if q.total[i] == 0 {
			continue
		}
		pc := analytics.ProtoCoverage{Proto: flows.L7Proto(i).String(), Total: q.total[i], Labeled: q.labeled[i]}
		pc.Ratio = float64(pc.Labeled) / float64(pc.Total)
		res.Protocols = append(res.Protocols, pc)
	}
	return res
}

// StandardQueries returns the default streaming query set — top domains,
// SLDs, and orgs, the per-SLD server footprint, provider usage, and
// tagging coverage — with the package default budgets. This is what
// `dnhunter serve -analytics` registers; pass a nil lookup when no org
// database is loaded (org-keyed queries then report "unknown").
func StandardQueries(lookup analytics.OrgLookup) []analytics.Query {
	// top_orgs and provider_usage share one memoized lookup: the second
	// resolution of each flow is a memo hit, not an org-database walk.
	lookup = MemoOrgLookup(lookup)
	return []analytics.Query{
		NewTopDomains(DefaultTopK, DefaultCounters),
		NewTopSLDs(DefaultTopK, DefaultCounters),
		NewTopOrgs(lookup, DefaultTopK, DefaultCounters),
		NewSLDFootprint(DefaultTopK, DefaultMaxSLDs, DefaultHLLPrecision),
		NewProviderUsage(lookup, DefaultTopK, DefaultHLLPrecision),
		NewCoverage(0),
	}
}
