// Package stream holds the sketch-based streaming implementations of the
// analytics queries: bounded state, documented error bounds, and
// merge-order-independent snapshots. Each query here mirrors an exact
// reference in internal/analytics (the differential-fuzz ground truth);
// register either family in an analytics.Pipeline — batch runs feed it
// with ObserveDB, Engine.Serve feeds it per window through the flowdb
// pre-discard observer.
package stream

import (
	"sort"

	"repro/internal/analytics"
)

// SpaceSaving is the Metwally et al. heavy-hitters sketch: a fixed
// budget of (key, count, err) counters arranged as a min-heap on count.
// A known key increments its counter; a new key beyond the budget evicts
// the minimum counter, inheriting its count as the new key's
// overestimation bound. Invariants, for N observed keys and capacity m:
//
//   - every tracked key's true count lies in [count-err, count];
//   - err ≤ N/m (the evicted minimum can never exceed the mean);
//   - any key with true count > N/m is guaranteed tracked.
//
// Merging sums (count, err) pointwise over the key union WITHOUT
// re-truncating to capacity — truncating per pairwise merge would make
// the result depend on merge order. A key absent from one side is not
// simply counted as zero there: that sketch may have observed and then
// evicted it, so its floor — an upper bound on any untracked key's true
// count — is imputed into both count and err. Floors add across merges,
// which keeps the fold commutative and associative: every merged count
// is Σ(countᵢ or floorᵢ) regardless of association. The merged sketch
// transiently holds up to shards×m counters; Snapshot (Top) sorts
// deterministically (count desc, key asc) and only then cuts to k. The
// per-key bounds and the N/m guarantee hold for the merged totals.
type SpaceSaving struct {
	capacity int
	idx      map[string]int32
	slots    []ssSlot
	observed uint64
	// floor bounds the true count of any key NOT currently tracked: a key
	// is tracked from the moment it is observed, so an untracked key was
	// last seen no later than its last eviction, when its count was at
	// most the evicted counter. Starts 0, raised by evictions, summed by
	// merges.
	floor uint64
}

type ssSlot struct {
	key   string
	count uint64
	err   uint64
}

// NewSpaceSaving builds a sketch with the given counter budget
// (minimum 1).
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity < 1 {
		capacity = 1
	}
	return &SpaceSaving{
		capacity: capacity,
		idx:      make(map[string]int32, capacity),
		slots:    make([]ssSlot, 0, capacity),
	}
}

// Capacity returns the counter budget.
func (s *SpaceSaving) Capacity() int { return s.capacity }

// Observed returns the number of Observe calls folded in (including
// merged-in sketches').
func (s *SpaceSaving) Observed() uint64 { return s.observed }

// Len returns the number of live counters (may exceed Capacity right
// after a merge; Observe evicts back toward the budget).
func (s *SpaceSaving) Len() int { return len(s.slots) }

// Observe folds one occurrence of key into the sketch. Allocation-free
// in steady state: once the counter budget is reached, every call is a
// heap fixup plus one map delete/insert pair over pre-sized storage.
//
//dnhunter:hotpath
func (s *SpaceSaving) Observe(key string) {
	s.observed++
	if i, ok := s.idx[key]; ok {
		s.slots[i].count++
		s.siftDown(int(i))
		return
	}
	if len(s.slots) < s.capacity {
		s.slots = append(s.slots, ssSlot{key: key, count: 1})
		s.idx[key] = int32(len(s.slots) - 1)
		s.siftUp(len(s.slots) - 1)
		return
	}
	// Evict the minimum counter: the newcomer inherits its count as the
	// overestimation bound (the classic space-saving step). The evicted
	// key becomes untracked with true count ≤ the evicted counter, so the
	// floor rises to cover it.
	min := &s.slots[0]
	delete(s.idx, min.key)
	if min.count > s.floor {
		s.floor = min.count
	}
	min.key = key
	min.err = min.count
	min.count++
	s.idx[key] = 0
	s.siftDown(0)
}

// siftDown restores the min-heap property downward from i, keeping the
// key index in sync.
func (s *SpaceSaving) siftDown(i int) {
	n := len(s.slots)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.slots[l].count < s.slots[min].count {
			min = l
		}
		if r < n && s.slots[r].count < s.slots[min].count {
			min = r
		}
		if min == i {
			return
		}
		s.swap(i, min)
		i = min
	}
}

// siftUp restores the min-heap property upward from i.
func (s *SpaceSaving) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.slots[p].count <= s.slots[i].count {
			return
		}
		s.swap(i, p)
		i = p
	}
}

func (s *SpaceSaving) swap(i, j int) {
	s.slots[i], s.slots[j] = s.slots[j], s.slots[i]
	s.idx[s.slots[i].key] = int32(i)
	s.idx[s.slots[j].key] = int32(j)
}

// Merge folds another sketch into this one: pointwise (count, err) sums
// over the key union with floor imputation for one-sided keys, no
// truncation (see the type comment for why). Commutative and associative
// up to heap layout, which Snapshot normalizes away.
func (s *SpaceSaving) Merge(o *SpaceSaving) {
	s.observed += o.observed
	// Keys only this side tracks: the other sketch may have seen and
	// evicted them, so its floor bounds the uncounted occurrences.
	if o.floor > 0 {
		for i := range s.slots {
			if _, both := o.idx[s.slots[i].key]; !both {
				s.slots[i].count += o.floor
				s.slots[i].err += o.floor
			}
		}
	}
	sf := s.floor // pre-merge floor, imputed for keys only o tracks
	for i := range o.slots {
		os := &o.slots[i]
		if j, ok := s.idx[os.key]; ok {
			s.slots[j].count += os.count
			s.slots[j].err += os.err
			continue
		}
		s.slots = append(s.slots, ssSlot{key: os.key, count: os.count + sf, err: os.err + sf})
		s.idx[os.key] = int32(len(s.slots) - 1)
	}
	s.floor += o.floor
	// Counts moved arbitrarily; rebuild the heap in one O(n) pass.
	for i := len(s.slots)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

// Top returns the k heaviest tracked keys, sorted by estimated count
// descending (ties by key ascending); k <= 0 returns all. The result is
// deterministic for a given observed multiset regardless of observation
// interleaving across merged shards.
func (s *SpaceSaving) Top(k int) []analytics.TopEntry {
	out := make([]analytics.TopEntry, len(s.slots))
	for i := range s.slots {
		out[i] = analytics.TopEntry{Key: s.slots[i].key, Count: s.slots[i].count, Err: s.slots[i].err}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
