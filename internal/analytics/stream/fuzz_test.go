package stream_test

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"repro/internal/analytics"
	"repro/internal/analytics/stream"
)

// FuzzSketchVsExact drives both sketches from an arbitrary byte string
// interpreted as an observation stream over a small key universe, and
// cross-checks them against exact map models:
//
//   - space-saving: every tracked count brackets the true count, errors
//     stay under N/m, heavy hitters above N/m are never lost;
//   - HLL: the estimate stays within 6σ of the true distinct count;
//   - merging: sharding the same stream and merging in different orders
//     yields byte-identical snapshots.
//
// CI runs this as a short fuzz smoke (-fuzz -fuzztime 30s) on top of the
// seeded corpus executing in normal test runs.
func FuzzSketchVsExact(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte("aaaaaaaabbbbcccd"))
	f.Add([]byte{255, 254, 0, 0, 0, 1, 128, 128, 128, 7, 7, 7, 7, 7, 7, 7})
	big := make([]byte, 512)
	for i := range big {
		big[i] = byte(i * i)
	}
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		const capacity = 4
		keys := make([]string, len(data))
		for i, b := range data {
			keys[i] = fmt.Sprintf("k%d", b%16) // universe of 16 > capacity 4
		}

		// --- space-saving vs exact counting ---
		ss := stream.NewSpaceSaving(capacity)
		truth := map[string]uint64{}
		for _, k := range keys {
			ss.Observe(k)
			truth[k]++
		}
		n := uint64(len(keys))
		if ss.Observed() != n {
			t.Fatalf("observed %d, want %d", ss.Observed(), n)
		}
		bound := n / capacity
		tracked := map[string]bool{}
		for _, e := range ss.Top(0) {
			tracked[e.Key] = true
			if e.Err > bound {
				t.Fatalf("key %s: err %d > N/m %d", e.Key, e.Err, bound)
			}
			tc := truth[e.Key]
			if tc > e.Count || tc < e.Count-e.Err {
				t.Fatalf("key %s: true %d outside [%d, %d]", e.Key, tc, e.Count-e.Err, e.Count)
			}
		}
		for k, tc := range truth {
			if tc > bound && !tracked[k] {
				t.Fatalf("heavy hitter %s (%d > %d) lost", k, tc, bound)
			}
		}

		// --- sharded merge must be order-independent, byte for byte ---
		marshalTop := func(s *stream.SpaceSaving) string {
			b, err := json.Marshal(s.Top(0))
			if err != nil {
				t.Fatal(err)
			}
			return string(b)
		}
		shardSS := func() [3]*stream.SpaceSaving {
			out := [3]*stream.SpaceSaving{
				stream.NewSpaceSaving(capacity),
				stream.NewSpaceSaving(capacity),
				stream.NewSpaceSaving(capacity),
			}
			for i, k := range keys {
				out[i%3].Observe(k)
			}
			return out
		}
		a := shardSS()
		a[0].Merge(a[1])
		a[0].Merge(a[2])
		left := marshalTop(a[0])
		b := shardSS()
		b[1].Merge(b[2])
		b[0].Merge(b[1])
		right := marshalTop(b[0])
		c := shardSS()
		c[2].Merge(c[0])
		c[2].Merge(c[1])
		rev := marshalTop(c[2])
		if left != right || left != rev {
			t.Fatalf("merge order changed space-saving snapshot:\n%s\n%s\n%s", left, right, rev)
		}
		// Merged bounds hold against the full-stream truth too.
		for _, e := range a[0].Top(0) {
			tc := truth[e.Key]
			if tc > e.Count || tc < e.Count-e.Err {
				t.Fatalf("merged key %s: true %d outside [%d, %d]", e.Key, tc, e.Count-e.Err, e.Count)
			}
		}

		// --- HLL vs exact distinct set ---
		// Widen the universe with pair-encoded values so cardinality varies.
		h := stream.NewHLL(stream.DefaultHLLPrecision)
		distinct := map[uint64]bool{}
		for i := 0; i+1 < len(data); i += 2 {
			v := uint64(data[i])<<8 | uint64(data[i+1])
			h.Add64(v)
			distinct[v] = true
		}
		est := h.Estimate()
		n64 := float64(len(distinct))
		slack := 6 * h.StdError() * n64
		if slack < 2 {
			slack = 2
		}
		if math.Abs(est-n64) > slack {
			t.Fatalf("hll estimate %.1f for %d distinct, slack %.1f", est, len(distinct), slack)
		}
		// Sharded register-max merge equals the unsharded sketch exactly.
		parts := [2]*stream.HLL{stream.NewHLL(stream.DefaultHLLPrecision), stream.NewHLL(stream.DefaultHLLPrecision)}
		i := 0
		for v := range distinct {
			parts[i%2].Add64(v)
			i++
		}
		if err := parts[0].Merge(parts[1]); err != nil {
			t.Fatal(err)
		}
		if parts[0].Estimate() != est {
			t.Fatalf("sharded hll %v != unsharded %v", parts[0].Estimate(), est)
		}

		// --- full stream query set: shard-merge determinism ---
		flowsOf := func() [2]*analytics.Pipeline {
			ps := [2]*analytics.Pipeline{
				analytics.NewPipeline(stream.StandardQueries(nil)...),
				analytics.NewPipeline(stream.StandardQueries(nil)...),
			}
			for i, b := range data {
				f := mkFlow(b, b/2, fmt.Sprintf("a.s%d.com", b%16), fmt.Sprintf("s%d.com", b%16), "", 1)
				ps[i%2].Observe(&f)
			}
			return ps
		}
		p1 := flowsOf()
		if err := p1[0].Merge(p1[1]); err != nil {
			t.Fatal(err)
		}
		s1, _ := json.Marshal(p1[0].Snapshot())
		p2 := flowsOf()
		if err := p2[1].Merge(p2[0]); err != nil {
			t.Fatal(err)
		}
		s2, _ := json.Marshal(p2[1].Snapshot())
		if string(s1) != string(s2) {
			t.Fatalf("pipeline merge order changed snapshot:\n%s\n%s", s1, s2)
		}
	})
}
