package analytics

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/flowdb"
	"repro/internal/flows"
	"repro/internal/layers"
	"repro/internal/orgdb"
	"repro/internal/stats"
)

// mkFlow builds a labeled flow for tests.
func mkFlow(client, server string, port uint16, label string, l7 flows.L7Proto, start time.Duration) flowdb.LabeledFlow {
	return flowdb.LabeledFlow{
		Record: flows.Record{
			Key: flows.Key{
				ClientIP:   netip.MustParseAddr(client),
				ServerIP:   netip.MustParseAddr(server),
				ClientPort: 40000, ServerPort: port,
				Proto: layers.IPProtocolTCP,
			},
			Start: start, End: start + time.Second, L7: l7,
		},
		Label: label, Labeled: label != "",
	}
}

func testDB() *flowdb.DB {
	db := flowdb.New()
	// Mail service on port 25: two clients, skewed usage.
	for i := 0; i < 9; i++ {
		db.Add(mkFlow("10.0.0.1", "62.101.1.1", 25, "smtp2.mail.isp.com", flows.L7Unknown, time.Duration(i)*time.Minute))
	}
	db.Add(mkFlow("10.0.0.2", "62.101.1.1", 25, "smtp1.mail.isp.com", flows.L7Unknown, time.Minute))
	db.Add(mkFlow("10.0.0.2", "62.101.1.2", 25, "mx3.gmail.com", flows.L7Unknown, time.Minute))
	return db
}

func TestExtractTagsPaperSemantics(t *testing.T) {
	db := testDB()
	tags := ExtractTags(db, 25, 10)
	if len(tags) == 0 {
		t.Fatal("no tags")
	}
	// smtpN appears for both clients; mail for both; mxN for one.
	byTok := map[string]TagScore{}
	for _, tg := range tags {
		byTok[tg.Token] = tg
	}
	if _, ok := byTok["smtpN"]; !ok {
		t.Fatalf("smtpN missing: %v", tags)
	}
	if _, ok := byTok["mail"]; !ok {
		t.Fatalf("mail missing: %v", tags)
	}
	if _, ok := byTok["mxN"]; !ok {
		t.Fatalf("mxN missing: %v", tags)
	}
	// Log damping: client 1's nine flows contribute log(10), not 9.
	// score(smtpN) = log(9+1) + log(1+1) ≈ 2.99; score(mail) same; both
	// must exceed mxN = log(2) ≈ 0.69.
	if byTok["smtpN"].Score <= byTok["mxN"].Score {
		t.Fatalf("scores: %v", tags)
	}
	if byTok["smtpN"].Score > 4 {
		t.Fatalf("log damping missing: score = %v", byTok["smtpN"].Score)
	}
}

func TestExtractTagsRawVsDamped(t *testing.T) {
	db := testDB()
	raw := ExtractTagsRaw(db, 25, 10)
	byTok := map[string]TagScore{}
	for _, tg := range raw {
		byTok[tg.Token] = tg
	}
	// Raw counts: smtpN carries 10 flows.
	if byTok["smtpN"].Score != 10 {
		t.Fatalf("raw score = %v", byTok["smtpN"].Score)
	}
}

func TestExtractTagsEmptyPort(t *testing.T) {
	if tags := ExtractTags(testDB(), 9999, 5); len(tags) != 0 {
		t.Fatalf("tags on unused port: %v", tags)
	}
}

func TestExtractTagsKLimit(t *testing.T) {
	tags := ExtractTags(testDB(), 25, 1)
	if len(tags) != 1 {
		t.Fatalf("k ignored: %v", tags)
	}
}

func TestFormatTags(t *testing.T) {
	s := FormatTags([]TagScore{{Token: "smtp", Score: 91}, {Token: "mail", Score: 37}})
	if s != "(91)smtp, (37)mail" {
		t.Fatalf("got %q", s)
	}
}

func TestTagCloud(t *testing.T) {
	recs := []flowdb.LabeledFlow{
		mkFlow("10.0.0.1", "173.194.1.1", 80, "open-tracker.appspot.com", flows.L7HTTP, 0),
		mkFlow("10.0.0.2", "173.194.1.1", 80, "open-tracker.appspot.com", flows.L7HTTP, 0),
		mkFlow("10.0.0.1", "173.194.1.2", 80, "todo-7.appspot.com", flows.L7HTTP, 0),
		mkFlow("10.0.0.1", "1.1.1.1", 80, "www.other.com", flows.L7HTTP, 0),
	}
	for i := range recs {
		recs[i].SLD = stats.SLD(recs[i].Label)
	}
	cloud := TagCloud(recs, "appspot.com", 0)
	if len(cloud) != 2 {
		t.Fatalf("cloud = %v", cloud)
	}
	if cloud[0].Token != "open-tracker" {
		t.Fatalf("top token = %q", cloud[0].Token)
	}
	if cloud[1].Token != "todo-N" {
		t.Fatalf("digits not generalized: %q", cloud[1].Token)
	}
}

func orgDB() *orgdb.DB {
	return orgdb.New([]orgdb.Entry{
		{Prefix: netip.MustParsePrefix("23.0.0.0/8"), Org: "akamai"},
		{Prefix: netip.MustParsePrefix("54.0.0.0/8"), Org: "amazon"},
		{Prefix: netip.MustParsePrefix("108.0.0.0/8"), Org: "linkedin"},
	})
}

func spatialDB() *flowdb.DB {
	db := flowdb.New()
	// linkedin.com: 6 flows edgecast-less version: 3 self, 2 akamai, 1 amazon.
	db.Add(mkFlow("10.0.0.1", "108.0.0.1", 443, "www.linkedin.com", flows.L7TLS, 0))
	db.Add(mkFlow("10.0.0.2", "108.0.0.1", 443, "www.linkedin.com", flows.L7TLS, 0))
	db.Add(mkFlow("10.0.0.1", "108.0.0.2", 443, "api.linkedin.com", flows.L7TLS, 0))
	db.Add(mkFlow("10.0.0.1", "23.0.0.1", 80, "media1.linkedin.com", flows.L7HTTP, 0))
	db.Add(mkFlow("10.0.0.1", "23.0.0.2", 80, "media2.linkedin.com", flows.L7HTTP, 0))
	db.Add(mkFlow("10.0.0.1", "54.0.0.1", 80, "static.linkedin.com", flows.L7HTTP, 0))
	// Unrelated org.
	db.Add(mkFlow("10.0.0.1", "54.0.0.9", 80, "www.zynga.com", flows.L7HTTP, 0))
	return db
}

func TestSpatialDiscovery(t *testing.T) {
	res := SpatialDiscovery(spatialDB(), orgDB(), "media1.linkedin.com")
	if res.SLD != "linkedin.com" {
		t.Fatalf("SLD = %q", res.SLD)
	}
	if res.TotalFlows != 6 {
		t.Fatalf("flows = %d", res.TotalFlows)
	}
	if len(res.Hosts) != 3 {
		t.Fatalf("hosts = %+v", res.Hosts)
	}
	// linkedin self-hosting leads with 3 flows over 2 servers.
	if res.Hosts[0].Org != "linkedin" || res.Hosts[0].Servers != 2 || res.Hosts[0].Flows != 3 {
		t.Fatalf("top host = %+v", res.Hosts[0])
	}
	if res.Hosts[0].FlowShare != 0.5 {
		t.Fatalf("share = %v", res.Hosts[0].FlowShare)
	}
	// Per-FQDN server sets.
	if servers := res.PerFQDN["www.linkedin.com"]; len(servers) != 1 {
		t.Fatalf("www servers = %v", servers)
	}
	if len(res.PerFQDN) != 5 {
		t.Fatalf("per-FQDN entries = %d", len(res.PerFQDN))
	}
}

func TestDomainTree(t *testing.T) {
	tree := DomainTree(spatialDB(), orgDB(), "linkedin.com")
	if tree.Token != "linkedin.com" || tree.Flows != 6 {
		t.Fatalf("root = %+v", tree)
	}
	// mediaN must merge media1 and media2.
	var mediaN *TreeNode
	for _, c := range tree.Children {
		if c.Token == "mediaN" {
			mediaN = c
		}
	}
	if mediaN == nil {
		t.Fatalf("mediaN child missing: %+v", tree.Children)
	}
	if mediaN.Flows != 2 || mediaN.DominantOrg() != "akamai" {
		t.Fatalf("mediaN = %+v", mediaN)
	}
	// www leads by flow count among single-name children.
	if tree.Children[0].Token != "mediaN" && tree.Children[0].Token != "www" {
		t.Fatalf("ordering: %q", tree.Children[0].Token)
	}
	if tree.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestHeatmap(t *testing.T) {
	db := spatialDB()
	odb := orgDB()
	per := map[string]*SpatialResult{
		"T1": SpatialDiscovery(db, odb, "linkedin.com"),
		"T2": SpatialDiscovery(db, odb, "linkedin.com"),
	}
	h := BuildHeatmap("linkedin.com", "linkedin", per)
	if h.HostOrgs[0] != "SELF" {
		t.Fatalf("orgs = %v", h.HostOrgs)
	}
	if v := h.Rows["T1"]["SELF"]; v != 0.5 {
		t.Fatalf("SELF share = %v", v)
	}
	if h.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestContentDiscovery(t *testing.T) {
	db := spatialDB()
	odb := orgDB()
	amazonServers := ServersOfOrg(db, odb, "amazon")
	if len(amazonServers) != 2 {
		t.Fatalf("amazon servers = %v", amazonServers)
	}
	top := ContentDiscovery(db, amazonServers, BySLD, 10)
	if len(top) != 2 {
		t.Fatalf("content = %+v", top)
	}
	names := map[string]bool{}
	for _, c := range top {
		names[c.Name] = true
	}
	if !names["linkedin.com"] || !names["zynga.com"] {
		t.Fatalf("content = %+v", top)
	}
	// FQDN granularity keeps full names.
	topF := ContentDiscovery(db, amazonServers, ByFQDN, 10)
	if len(topF) != 2 || (topF[0].Name != "static.linkedin.com" && topF[0].Name != "www.zynga.com") {
		t.Fatalf("fqdn content = %+v", topF)
	}
}

func TestTopDomainsOnOrg(t *testing.T) {
	top := TopDomainsOnOrg(spatialDB(), orgDB(), "akamai", 5)
	if len(top) != 1 || top[0].Name != "linkedin.com" || top[0].Flows != 2 {
		t.Fatalf("top = %+v", top)
	}
}

func TestFanoutCDFs(t *testing.T) {
	db := flowdb.New()
	// fqdn-a on 3 servers; fqdn-b on 1; server 1.1.1.1 carries 2 names.
	db.Add(mkFlow("10.0.0.1", "1.1.1.1", 80, "a.x.com", flows.L7HTTP, 0))
	db.Add(mkFlow("10.0.0.1", "1.1.1.2", 80, "a.x.com", flows.L7HTTP, 0))
	db.Add(mkFlow("10.0.0.1", "1.1.1.3", 80, "a.x.com", flows.L7HTTP, 0))
	db.Add(mkFlow("10.0.0.1", "1.1.1.1", 80, "b.x.com", flows.L7HTTP, 0))
	ipsPer, fqdnsPer := FanoutCDFs(db)
	if ipsPer.Len() != 2 || fqdnsPer.Len() != 3 {
		t.Fatalf("lens = %d %d", ipsPer.Len(), fqdnsPer.Len())
	}
	if got := ipsPer.At(1); got != 0.5 {
		t.Fatalf("P(ips<=1) = %v", got)
	}
	fqdnSingle, ipSingle := SingletonShares(db)
	if fqdnSingle != 0.5 {
		t.Fatalf("fqdnSingle = %v", fqdnSingle)
	}
	if ipSingle < 0.6 || ipSingle > 0.7 {
		t.Fatalf("ipSingle = %v", ipSingle)
	}
}

func TestReverseLookupCompare(t *testing.T) {
	db := flowdb.New()
	db.Add(mkFlow("10.0.0.1", "1.1.1.1", 80, "www.x.com", flows.L7HTTP, 0))
	db.Add(mkFlow("10.0.0.1", "1.1.1.2", 80, "www.y.com", flows.L7HTTP, 0))
	db.Add(mkFlow("10.0.0.1", "1.1.1.3", 80, "www.z.com", flows.L7HTTP, 0))
	db.Add(mkFlow("10.0.0.1", "1.1.1.4", 80, "www.w.com", flows.L7HTTP, 0))
	zone := map[netip.Addr]string{
		netip.MustParseAddr("1.1.1.1"): "www.x.com",      // exact
		netip.MustParseAddr("1.1.1.2"): "server9.y.com",  // same SLD
		netip.MustParseAddr("1.1.1.3"): "a1.cdnhost.net", // different
		netip.MustParseAddr("1.1.1.4"): "",               // no answer
	}
	res := ReverseLookupCompare(db, zone, 10, stats.NewRNG(1))
	if res.Total != 4 {
		t.Fatalf("total = %d", res.Total)
	}
	for class, want := range map[MatchClass]int{MatchExact: 1, MatchSLD: 1, MatchDifferent: 1, MatchNone: 1} {
		if res.Counts[class] != want {
			t.Fatalf("class %v = %d, want %d (%+v)", class, res.Counts[class], want, res.Counts)
		}
	}
	if res.Fraction(MatchExact) != 0.25 {
		t.Fatalf("fraction = %v", res.Fraction(MatchExact))
	}
}

func TestCertCompare(t *testing.T) {
	mk := func(label string, certs []string) flowdb.LabeledFlow {
		f := mkFlow("10.0.0.1", "1.1.1.1", 443, label, flows.L7TLS, 0)
		f.CertNames = certs
		return f
	}
	recs := []flowdb.LabeledFlow{
		mk("www.x.com", []string{"www.x.com"}),                          // exact
		mk("mail.google.com", []string{"*.google.com"}),                 // generic
		mk("static.zynga.com", []string{"a248.e.akamai.net"}),           // different
		mk("www.y.com", nil),                                            // no certificate
		mkFlow("10.0.0.1", "1.1.1.1", 80, "www.h.com", flows.L7HTTP, 0), // non-TLS: excluded
	}
	res := CertCompare(recs)
	if res.Total != 4 {
		t.Fatalf("total = %d", res.Total)
	}
	for class, want := range map[MatchClass]int{MatchExact: 1, MatchGeneric: 1, MatchDifferent: 1, MatchNone: 1} {
		if res.Counts[class] != want {
			t.Fatalf("class %v = %d (%+v)", class, res.Counts[class], res.Counts)
		}
	}
}

func TestMatchClassString(t *testing.T) {
	for _, m := range []MatchClass{MatchExact, MatchSLD, MatchGeneric, MatchDifferent, MatchNone} {
		if m.String() == "" {
			t.Fatal("empty class name")
		}
	}
}

func TestServerTimeseries(t *testing.T) {
	db := flowdb.New()
	db.Add(mkFlow("10.0.0.1", "1.1.1.1", 80, "a.x.com", flows.L7HTTP, time.Minute))
	db.Add(mkFlow("10.0.0.1", "1.1.1.2", 80, "b.x.com", flows.L7HTTP, 2*time.Minute))
	db.Add(mkFlow("10.0.0.1", "1.1.1.1", 80, "a.x.com", flows.L7HTTP, 15*time.Minute))
	ts := ServerTimeseries(db, []string{"x.com"}, 10*time.Minute)
	if got := ts["x.com"]; len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("series = %v", got)
	}
}

func TestCDNTimeseries(t *testing.T) {
	db := spatialDB()
	ts := CDNTimeseries(db, orgDB(), []string{"akamai", "amazon"}, 10*time.Minute)
	if got := ts["akamai"]; len(got) != 1 || got[0] != 2 {
		t.Fatalf("akamai series = %v", got)
	}
	if got := ts["amazon"]; got[0] != 2 {
		t.Fatalf("amazon series = %v", got)
	}
}

func TestDelayCDFs(t *testing.T) {
	db := flowdb.New()
	f1 := mkFlow("10.0.0.1", "1.1.1.1", 80, "a.x.com", flows.L7HTTP, time.Second)
	f1.DNSDelay = 500 * time.Millisecond
	f1.FirstAfterDNS = true
	f2 := mkFlow("10.0.0.1", "1.1.1.1", 80, "a.x.com", flows.L7HTTP, 2*time.Second)
	f2.DNSDelay = 90 * time.Second
	db.Add(f1)
	db.Add(f2)
	first, any := DelayCDFs(db)
	if first.Len() != 1 || any.Len() != 2 {
		t.Fatalf("lens = %d %d", first.Len(), any.Len())
	}
	if first.At(1) != 1 {
		t.Fatalf("first-flow CDF at 1s = %v", first.At(1))
	}
	if any.At(1) != 0.5 {
		t.Fatalf("any-flow CDF at 1s = %v", any.At(1))
	}
}

func TestDNSRate(t *testing.T) {
	times := []time.Duration{time.Minute, 2 * time.Minute, 11 * time.Minute}
	vs := DNSRate(times, 10*time.Minute)
	if len(vs) != 2 || vs[0] != 2 || vs[1] != 1 {
		t.Fatalf("rate = %v", vs)
	}
}

// crossVantageFixture builds two vantages observing the same content org:
// both see cdn-a, only one sees cdn-b, with disjoint server addresses for
// the shared host org.
func crossVantageFixture() []VantageData {
	odb := orgdb.New([]orgdb.Entry{
		{Prefix: netip.MustParsePrefix("20.0.0.0/24"), Org: "cdn-a"},
		{Prefix: netip.MustParsePrefix("30.0.0.0/24"), Org: "cdn-b"},
	})

	us := flowdb.New()
	for i := 0; i < 6; i++ {
		us.Add(mkFlow("10.0.0.1", "20.0.0.1", 80, "img.site.com", flows.L7HTTP, time.Duration(i)*time.Second))
	}
	us.Add(mkFlow("10.0.0.1", "30.0.0.1", 80, "www.site.com", flows.L7HTTP, time.Minute))
	us.Add(mkFlow("10.0.0.1", "30.0.0.2", 80, "other.example.org", flows.L7HTTP, time.Minute))

	eu := flowdb.New()
	for i := 0; i < 4; i++ {
		eu.Add(mkFlow("10.0.0.9", "20.0.0.200", 80, "img.site.com", flows.L7HTTP, time.Duration(i)*time.Second))
	}
	return []VantageData{
		{Name: "US", DB: us, Orgs: odb},
		{Name: "EU", DB: eu, Orgs: odb},
	}
}

func TestProviderUsage(t *testing.T) {
	pf := ProviderUsage(crossVantageFixture(), 0)
	if len(pf.Vantages) != 2 || pf.Vantages[0] != "US" {
		t.Fatalf("vantages = %v", pf.Vantages)
	}
	// cdn-a carries 10 flows total vs cdn-b's 2: ranked first.
	if len(pf.Orgs) != 2 || pf.Orgs[0] != "cdn-a" {
		t.Fatalf("orgs = %v", pf.Orgs)
	}
	if pf.LabeledFlows["US"] != 8 || pf.LabeledFlows["EU"] != 4 {
		t.Fatalf("labeled flows = %v", pf.LabeledFlows)
	}
	if got := pf.Share["US"]["cdn-a"]; got != 0.75 {
		t.Errorf("US cdn-a share = %v, want 0.75", got)
	}
	if got := pf.Share["EU"]["cdn-a"]; got != 1.0 {
		t.Errorf("EU cdn-a share = %v, want 1", got)
	}
	if got := pf.Share["EU"]["cdn-b"]; got != 0 {
		t.Errorf("EU cdn-b share = %v, want 0", got)
	}
	if pf.Servers["US"]["cdn-b"] != 2 || pf.Servers["EU"]["cdn-a"] != 1 {
		t.Errorf("servers = %v", pf.Servers)
	}
	// k=1 truncates to the top org.
	if top := ProviderUsage(crossVantageFixture(), 1); len(top.Orgs) != 1 || top.Orgs[0] != "cdn-a" {
		t.Errorf("top-1 orgs = %v", top.Orgs)
	}
	out := pf.Render()
	for _, want := range []string{"cdn-a", "cdn-b", "US", "EU", "labeled flows"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestCrossVantageFootprint(t *testing.T) {
	cv := CrossVantageFootprint(crossVantageFixture(), "www.site.com")
	if cv.SLD != "site.com" {
		t.Fatalf("SLD = %q", cv.SLD)
	}
	if len(cv.Vantages) != 2 {
		t.Fatalf("vantages = %v", cv.Vantages)
	}
	// US sees {cdn-a, cdn-b} for site.com, EU sees {cdn-a}: Jaccard 1/2.
	if got := cv.HostOverlap[0][1]; got != 0.5 {
		t.Errorf("host overlap = %v, want 0.5", got)
	}
	if cv.HostOverlap[0][0] != 1 || cv.HostOverlap[1][1] != 1 {
		t.Errorf("diagonal != 1: %v", cv.HostOverlap)
	}
	// Server sets are fully disjoint across vantages.
	if got := cv.ServerOverlap[0][1]; got != 0 {
		t.Errorf("server overlap = %v, want 0", got)
	}
	if cv.Per["US"].TotalFlows != 7 || cv.Per["EU"].TotalFlows != 4 {
		t.Errorf("per-vantage flows = %d/%d", cv.Per["US"].TotalFlows, cv.Per["EU"].TotalFlows)
	}
	out := cv.Render()
	for _, want := range []string{"site.com", "host-org overlap", "server-IP overlap"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}
