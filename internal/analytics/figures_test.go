package analytics

import (
	"testing"
	"time"

	"repro/internal/synth"
)

func liveTrace(t *testing.T) *synth.EventTrace {
	t.Helper()
	return synth.GenerateEvents(synth.LiveScenario{
		Days: 3, Clients: 30, SessionsPerDay: 4000, Geo: synth.GeoEU1, Seed: 11,
	})
}

func TestBirthProcessShapes(t *testing.T) {
	tr := liveTrace(t)
	bs := BirthProcess(tr, 4*time.Hour)
	n := len(bs.FQDN)
	if n < 10 {
		t.Fatalf("bins = %d", n)
	}
	// Cumulative curves must be non-decreasing.
	for i := 1; i < n; i++ {
		if bs.FQDN[i] < bs.FQDN[i-1] || bs.SLD[i] < bs.SLD[i-1] || bs.Server[i] < bs.Server[i-1] {
			t.Fatal("birth curves not monotone")
		}
	}
	if bs.FQDN[n-1] == 0 || bs.Server[n-1] == 0 {
		t.Fatal("empty curves")
	}
	// The paper's claim: FQDNs keep growing while SLDs saturate. The
	// late/early growth ratio of FQDNs must exceed that of SLDs.
	fq := bs.GrowthRatio(bs.FQDN)
	sld := bs.GrowthRatio(bs.SLD)
	if fq <= sld {
		t.Fatalf("FQDN growth ratio %v not above SLD %v", fq, sld)
	}
	// And FQDN count must dwarf the SLD count.
	if bs.FQDN[n-1] < 5*bs.SLD[n-1] {
		t.Fatalf("FQDN total %d vs SLD %d", bs.FQDN[n-1], bs.SLD[n-1])
	}
}

func TestAppspotTracking(t *testing.T) {
	tr := liveTrace(t)
	rep := AppspotTracking(tr, 4*time.Hour)
	if rep.TrackerServices == 0 || rep.GeneralServices == 0 {
		t.Fatalf("services: %+v", rep)
	}
	// Table 8's shape: trackers are few but flow-heavy; general apps move
	// far more server-to-client bytes per flow.
	if rep.GeneralServices < rep.TrackerServices {
		t.Fatalf("general (%d) should outnumber trackers (%d)", rep.GeneralServices, rep.TrackerServices)
	}
	if rep.TrackerFlows < rep.GeneralFlows {
		t.Fatalf("tracker flows (%d) should exceed general flows (%d)", rep.TrackerFlows, rep.GeneralFlows)
	}
	perFlowTracker := float64(rep.TrackerS2C) / float64(rep.TrackerFlows)
	perFlowGeneral := float64(rep.GeneralS2C) / float64(rep.GeneralFlows)
	if perFlowGeneral < 4*perFlowTracker {
		t.Fatalf("S2C per flow: general %v vs tracker %v", perFlowGeneral, perFlowTracker)
	}
	if len(rep.Timeline) == 0 {
		t.Fatal("no tracker timelines")
	}
	// Persistent trackers (ids assigned from first-seen) should span many
	// bins.
	max := 0
	for _, bins := range rep.Timeline {
		if len(bins) > max {
			max = len(bins)
		}
	}
	if max < 5 {
		t.Fatalf("most active tracker spans only %d bins", max)
	}
}

func TestBirthProcessEmptyTrace(t *testing.T) {
	tr := &synth.EventTrace{Scenario: synth.LiveScenario{Days: 1}}
	bs := BirthProcess(tr, time.Hour)
	if len(bs.FQDN) == 0 || bs.FQDN[len(bs.FQDN)-1] != 0 {
		t.Fatalf("empty trace curves: %v", bs.FQDN)
	}
}

func TestGrowthRatioDegenerate(t *testing.T) {
	bs := &BirthSeries{}
	if bs.GrowthRatio([]int{1, 2}) != 0 {
		t.Fatal("short series should yield 0")
	}
	if bs.GrowthRatio([]int{5, 5, 5, 5, 5, 5}) != 0 {
		t.Fatal("flat series should yield 0")
	}
}
