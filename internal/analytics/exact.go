package analytics

// Exact reference implementations of the Query interface. These keep the
// full key sets in memory — paper-fidelity results, unbounded state —
// and exist for batch runs and as the ground truth the stream
// subpackage's sketches are differential-tested against. The historical
// free functions (ProviderUsage, CrossVantageFootprint, TopDomainsOnOrg)
// are now deprecated wrappers over these queries; see the README's
// analytics migration table.

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/flowdb"
	"repro/internal/flows"
	"repro/internal/stats"
)

// mergeAs asserts other is the same concrete query type and name as q.
func mergeAs[T interface{ Name() string }](q T, other Query) (T, error) {
	o, ok := other.(T)
	if !ok || o.Name() != q.Name() {
		return o, fmt.Errorf("analytics: cannot merge %T(%q) into %T(%q)", other, other.Name(), q, q.Name())
	}
	return o, nil
}

// exactTopK counts keys exactly in a map; the reference for the stream
// subpackage's space-saving sketch.
type exactTopK struct {
	name   string
	k      int
	key    func(f *flowdb.LabeledFlow) string // "" skips the flow
	counts map[string]uint64
	total  uint64
}

// NewExactTopDomains counts flows per FQDN label exactly; Snapshot
// returns TopKResult. Reference for stream.NewTopDomains.
func NewExactTopDomains(k int) Query {
	return &exactTopK{name: "top_domains", k: k, counts: map[string]uint64{},
		key: func(f *flowdb.LabeledFlow) string {
			if !f.Labeled {
				return ""
			}
			return f.Label
		}}
}

// NewExactTopSLDs counts flows per second-level domain exactly; Snapshot
// returns TopKResult. Reference for stream.NewTopSLDs.
func NewExactTopSLDs(k int) Query {
	return &exactTopK{name: "top_slds", k: k, counts: map[string]uint64{},
		key: func(f *flowdb.LabeledFlow) string {
			if !f.Labeled {
				return ""
			}
			return f.SLD
		}}
}

// NewExactTopOrgs counts labeled flows per hosting organization exactly;
// Snapshot returns TopKResult. Reference for stream.NewTopOrgs.
func NewExactTopOrgs(lookup OrgLookup, k int) Query {
	return &exactTopK{name: "top_orgs", k: k, counts: map[string]uint64{},
		key: func(f *flowdb.LabeledFlow) string {
			if !f.Labeled {
				return ""
			}
			return orgOrUnknown(lookup, f.Vantage, f.Key.ServerIP)
		}}
}

func (q *exactTopK) Name() string { return q.name }

func (q *exactTopK) Observe(f *flowdb.LabeledFlow) {
	if key := q.key(f); key != "" {
		q.counts[key]++
		q.total++
	}
}

func (q *exactTopK) Merge(other Query) error {
	o, err := mergeAs(q, other)
	if err != nil {
		return err
	}
	//dnhunter:unordered-ok pointwise sum into a map; commutative per key
	for key, n := range o.counts {
		q.counts[key] += n
	}
	q.total += o.total
	return nil
}

func (q *exactTopK) Snapshot() Result {
	entries := make([]TopEntry, 0, len(q.counts))
	//dnhunter:unordered-ok rows are fully sorted below before use
	for key, n := range q.counts {
		entries = append(entries, TopEntry{Key: key, Count: n})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Key < entries[j].Key
	})
	if q.k > 0 && len(entries) > q.k {
		entries = entries[:q.k]
	}
	return TopKResult{K: q.k, Observed: q.total, Entries: entries}
}

// exactCardinality tracks exact distinct-server sets per SLD; the
// reference for stream.NewSLDFootprint.
type exactCardinality struct {
	k      int
	perSLD map[string]map[netip.Addr]struct{}
	all    map[netip.Addr]struct{}
}

// NewExactSLDFootprint tracks the exact distinct server addresses
// serving each SLD; Snapshot returns CardinalityResult. Reference for
// stream.NewSLDFootprint.
func NewExactSLDFootprint(k int) Query {
	return &exactCardinality{k: k,
		perSLD: map[string]map[netip.Addr]struct{}{},
		all:    map[netip.Addr]struct{}{}}
}

func (q *exactCardinality) Name() string { return "sld_server_footprint" }

func (q *exactCardinality) Observe(f *flowdb.LabeledFlow) {
	if !f.Labeled {
		return
	}
	set, ok := q.perSLD[f.SLD]
	if !ok {
		set = map[netip.Addr]struct{}{}
		q.perSLD[f.SLD] = set
	}
	set[f.Key.ServerIP] = struct{}{}
	q.all[f.Key.ServerIP] = struct{}{}
}

func (q *exactCardinality) Merge(other Query) error {
	o, err := mergeAs(q, other)
	if err != nil {
		return err
	}
	//dnhunter:unordered-ok set unions keyed by SLD and address; order-free
	for sld, set := range o.perSLD {
		dst, ok := q.perSLD[sld]
		if !ok {
			dst = map[netip.Addr]struct{}{}
			q.perSLD[sld] = dst
		}
		for a := range set {
			dst[a] = struct{}{}
		}
	}
	//dnhunter:unordered-ok set union; order-free
	for a := range o.all {
		q.all[a] = struct{}{}
	}
	return nil
}

func (q *exactCardinality) Snapshot() Result {
	entries := make([]CardinalityEntry, 0, len(q.perSLD))
	//dnhunter:unordered-ok rows are fully sorted below before use
	for sld, set := range q.perSLD {
		entries = append(entries, CardinalityEntry{Key: sld, Count: float64(len(set))})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Key < entries[j].Key
	})
	tracked := len(entries)
	if q.k > 0 && len(entries) > q.k {
		entries = entries[:q.k]
	}
	return CardinalityResult{K: q.k, TrackedKeys: tracked, Total: float64(len(q.all)), Entries: entries}
}

// exactProviderUsage is the Query form of the historical ProviderUsage
// free function; Snapshot returns the same *ProviderFootprint.
type exactProviderUsage struct {
	lookup OrgLookup
	k      int
	// seeded vantages render first, in constructor order, even with zero
	// flows (matching the free function's input-order contract); vantages
	// first seen in the stream follow, sorted, so merge order cannot
	// change the snapshot.
	seeded  []string
	seen    map[string]bool
	labeled map[string]int
	flows   map[string]map[string]int
	servers map[string]map[string]map[netip.Addr]struct{}
}

// NewExactProviderUsage builds the exact cross-vantage provider
// footprint (Snapshot returns *ProviderFootprint), keeping the k hosting
// orgs with the most total flows (k <= 0 keeps all). Seeded vantage
// names appear in the result in the given order even when no flows carry
// them; unseeded vantages found in the stream are appended sorted.
func NewExactProviderUsage(lookup OrgLookup, k int, vantages ...string) Query {
	q := &exactProviderUsage{
		lookup:  lookup,
		k:       k,
		seen:    map[string]bool{},
		labeled: map[string]int{},
		flows:   map[string]map[string]int{},
		servers: map[string]map[string]map[netip.Addr]struct{}{},
	}
	for _, v := range vantages {
		if !q.seen[v] {
			q.seen[v] = true
			q.seeded = append(q.seeded, v)
			q.labeled[v] = 0
		}
	}
	return q
}

func (q *exactProviderUsage) Name() string { return "provider_usage" }

func (q *exactProviderUsage) Observe(f *flowdb.LabeledFlow) {
	if !f.Labeled {
		return
	}
	v := f.Vantage
	q.seen[v] = true
	q.labeled[v]++
	org := orgOrUnknown(q.lookup, v, f.Key.ServerIP)
	vf, ok := q.flows[v]
	if !ok {
		vf = map[string]int{}
		q.flows[v] = vf
	}
	vf[org]++
	vs, ok := q.servers[v]
	if !ok {
		vs = map[string]map[netip.Addr]struct{}{}
		q.servers[v] = vs
	}
	set, ok := vs[org]
	if !ok {
		set = map[netip.Addr]struct{}{}
		vs[org] = set
	}
	set[f.Key.ServerIP] = struct{}{}
}

func (q *exactProviderUsage) Merge(other Query) error {
	o, err := mergeAs(q, other)
	if err != nil {
		return err
	}
	//dnhunter:unordered-ok keyed sums and set unions; order-free
	for v := range o.seen {
		q.seen[v] = true
	}
	//dnhunter:unordered-ok keyed sums; order-free
	for v, n := range o.labeled {
		q.labeled[v] += n
	}
	//dnhunter:unordered-ok keyed sums; order-free
	for v, vf := range o.flows {
		dst, ok := q.flows[v]
		if !ok {
			dst = map[string]int{}
			q.flows[v] = dst
		}
		for org, n := range vf {
			dst[org] += n
		}
	}
	//dnhunter:unordered-ok set unions; order-free
	for v, vs := range o.servers {
		dst, ok := q.servers[v]
		if !ok {
			dst = map[string]map[netip.Addr]struct{}{}
			q.servers[v] = dst
		}
		//dnhunter:unordered-ok set unions keyed by org; order-free
		for org, set := range vs {
			d, ok := dst[org]
			if !ok {
				d = map[netip.Addr]struct{}{}
				dst[org] = d
			}
			for a := range set {
				d[a] = struct{}{}
			}
		}
	}
	return nil
}

// vantageOrder lists seeded vantages in constructor order, then every
// other observed vantage sorted by name.
func (q *exactProviderUsage) vantageOrder() []string {
	out := append([]string(nil), q.seeded...)
	inSeed := map[string]bool{}
	for _, v := range q.seeded {
		inSeed[v] = true
	}
	var rest []string
	//dnhunter:unordered-ok collected then sorted below
	for v := range q.seen {
		if !inSeed[v] {
			rest = append(rest, v)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

func (q *exactProviderUsage) Snapshot() Result {
	pf := &ProviderFootprint{
		Share:        make(map[string]map[string]float64),
		Servers:      make(map[string]map[string]int),
		LabeledFlows: make(map[string]int),
	}
	totals := make(map[string]int)
	for _, v := range q.vantageOrder() {
		pf.Vantages = append(pf.Vantages, v)
		labeled := q.labeled[v]
		pf.LabeledFlows[v] = labeled
		share := make(map[string]float64, len(q.flows[v]))
		srv := make(map[string]int, len(q.servers[v]))
		//dnhunter:unordered-ok keyed map writes only; shares and counts land in maps
		for org, n := range q.flows[v] {
			totals[org] += n
			if labeled > 0 {
				share[org] = float64(n) / float64(labeled)
			}
			srv[org] = len(q.servers[v][org])
		}
		pf.Share[v] = share
		pf.Servers[v] = srv
	}
	for org := range totals {
		pf.Orgs = append(pf.Orgs, org)
	}
	sort.Slice(pf.Orgs, func(i, j int) bool {
		if totals[pf.Orgs[i]] != totals[pf.Orgs[j]] {
			return totals[pf.Orgs[i]] > totals[pf.Orgs[j]]
		}
		return pf.Orgs[i] < pf.Orgs[j]
	})
	if q.k > 0 && len(pf.Orgs) > q.k {
		pf.Orgs = pf.Orgs[:q.k]
	}
	return pf
}

// exactCrossVantage is the Query form of CrossVantageFootprint; Snapshot
// returns the same *CrossVantage.
type exactCrossVantage struct {
	sld    string
	lookup OrgLookup
	seeded []string
	seen   map[string]bool
	per    map[string]*cvVantage
}

type cvVantage struct {
	total   int
	perOrg  map[string]*cvAgg
	perFQDN map[string]map[netip.Addr]struct{}
	servers map[netip.Addr]struct{}
}

type cvAgg struct {
	servers map[netip.Addr]struct{}
	fqdns   map[string]struct{}
	flows   int
}

// NewExactCrossVantage builds the exact cross-vantage CDN-overlap query
// for one content organization (Snapshot returns *CrossVantage). The
// query name embeds the SLD, so one pipeline can track several.
func NewExactCrossVantage(name string, lookup OrgLookup, vantages ...string) Query {
	q := &exactCrossVantage{sld: stats.SLD(name), lookup: lookup, seen: map[string]bool{}, per: map[string]*cvVantage{}}
	for _, v := range vantages {
		if !q.seen[v] {
			q.seen[v] = true
			q.seeded = append(q.seeded, v)
		}
	}
	return q
}

func (q *exactCrossVantage) Name() string { return "cross_vantage:" + q.sld }

func (q *exactCrossVantage) vantage(v string) *cvVantage {
	cv, ok := q.per[v]
	if !ok {
		cv = &cvVantage{
			perOrg:  map[string]*cvAgg{},
			perFQDN: map[string]map[netip.Addr]struct{}{},
			servers: map[netip.Addr]struct{}{},
		}
		q.per[v] = cv
	}
	return cv
}

func (q *exactCrossVantage) Observe(f *flowdb.LabeledFlow) {
	if !f.Labeled || f.SLD != q.sld {
		return
	}
	q.seen[f.Vantage] = true
	cv := q.vantage(f.Vantage)
	cv.total++
	org := orgOrUnknown(q.lookup, f.Vantage, f.Key.ServerIP)
	a, ok := cv.perOrg[org]
	if !ok {
		a = &cvAgg{servers: map[netip.Addr]struct{}{}, fqdns: map[string]struct{}{}}
		cv.perOrg[org] = a
	}
	a.servers[f.Key.ServerIP] = struct{}{}
	a.fqdns[f.Label] = struct{}{}
	a.flows++
	set, ok := cv.perFQDN[f.Label]
	if !ok {
		set = map[netip.Addr]struct{}{}
		cv.perFQDN[f.Label] = set
	}
	set[f.Key.ServerIP] = struct{}{}
	cv.servers[f.Key.ServerIP] = struct{}{}
}

func (q *exactCrossVantage) Merge(other Query) error {
	o, err := mergeAs(q, other)
	if err != nil {
		return err
	}
	//dnhunter:unordered-ok set unions and keyed sums; order-free
	for v := range o.seen {
		q.seen[v] = true
	}
	//dnhunter:unordered-ok set unions and keyed sums; order-free
	for v, ocv := range o.per {
		cv := q.vantage(v)
		cv.total += ocv.total
		//dnhunter:unordered-ok keyed sums and set unions; order-free
		for org, oa := range ocv.perOrg {
			a, ok := cv.perOrg[org]
			if !ok {
				a = &cvAgg{servers: map[netip.Addr]struct{}{}, fqdns: map[string]struct{}{}}
				cv.perOrg[org] = a
			}
			a.flows += oa.flows
			for s := range oa.servers {
				a.servers[s] = struct{}{}
			}
			for f := range oa.fqdns {
				a.fqdns[f] = struct{}{}
			}
		}
		//dnhunter:unordered-ok set unions keyed by FQDN; order-free
		for fqdn, set := range ocv.perFQDN {
			dst, ok := cv.perFQDN[fqdn]
			if !ok {
				dst = map[netip.Addr]struct{}{}
				cv.perFQDN[fqdn] = dst
			}
			for s := range set {
				dst[s] = struct{}{}
			}
		}
		for s := range ocv.servers {
			cv.servers[s] = struct{}{}
		}
	}
	return nil
}

// vantageOrder mirrors exactProviderUsage's: seeded order, then sorted.
func (q *exactCrossVantage) vantageOrder() []string {
	out := append([]string(nil), q.seeded...)
	inSeed := map[string]bool{}
	for _, v := range q.seeded {
		inSeed[v] = true
	}
	var rest []string
	//dnhunter:unordered-ok collected then sorted below
	for v := range q.seen {
		if !inSeed[v] {
			rest = append(rest, v)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

func (q *exactCrossVantage) Snapshot() Result {
	order := q.vantageOrder()
	cv := &CrossVantage{SLD: q.sld, Per: make(map[string]*SpatialResult)}
	hostSets := make([]map[string]struct{}, len(order))
	serverSets := make([]map[netip.Addr]struct{}, len(order))
	for i, v := range order {
		cv.Vantages = append(cv.Vantages, v)
		st := q.per[v]
		if st == nil {
			st = &cvVantage{perOrg: map[string]*cvAgg{}, perFQDN: map[string]map[netip.Addr]struct{}{}, servers: map[netip.Addr]struct{}{}}
		}
		res := &SpatialResult{SLD: q.sld, PerFQDN: make(map[string][]netip.Addr), TotalFlows: st.total}
		//dnhunter:unordered-ok keyed copy; each PerFQDN slice is sorted on build
		for fqdn, set := range st.perFQDN {
			res.PerFQDN[fqdn] = sortedAddrs(set)
		}
		//dnhunter:unordered-ok rows are fully sorted below before use
		for org, a := range st.perOrg {
			hs := HostShare{Org: org, Servers: len(a.servers), Flows: a.flows}
			if st.total > 0 {
				hs.FlowShare = float64(a.flows) / float64(st.total)
			}
			for f := range a.fqdns {
				hs.FQDNs = append(hs.FQDNs, f)
			}
			sort.Strings(hs.FQDNs)
			res.Hosts = append(res.Hosts, hs)
		}
		sort.Slice(res.Hosts, func(i, j int) bool {
			if res.Hosts[i].Flows != res.Hosts[j].Flows {
				return res.Hosts[i].Flows > res.Hosts[j].Flows
			}
			return res.Hosts[i].Org < res.Hosts[j].Org
		})
		cv.Per[v] = res
		hosts := make(map[string]struct{}, len(res.Hosts))
		for _, hs := range res.Hosts {
			hosts[hs.Org] = struct{}{}
		}
		hostSets[i] = hosts
		serverSets[i] = st.servers
	}
	cv.HostOverlap = make([][]float64, len(order))
	cv.ServerOverlap = make([][]float64, len(order))
	for i := range order {
		cv.HostOverlap[i] = make([]float64, len(order))
		cv.ServerOverlap[i] = make([]float64, len(order))
		for j := range order {
			cv.HostOverlap[i][j] = jaccard(hostSets[i], hostSets[j])
			cv.ServerOverlap[i][j] = jaccard(serverSets[i], serverSets[j])
		}
	}
	return cv
}

func sortedAddrs(set map[netip.Addr]struct{}) []netip.Addr {
	out := make([]netip.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// exactTopContent is the Query form of TopDomainsOnOrg / ContentDiscovery
// restricted to one hosting org; Snapshot returns []ContentShare.
type exactTopContent struct {
	org       string
	lookup    OrgLookup
	g         Granularity
	k         int
	perClient map[string]map[netip.Addr]int
	flowsPer  map[string]int
	total     int
}

// NewExactTopContent builds the Table 5 content-discovery query: the
// top-k names (per the granularity) among labeled flows served from the
// given hosting organization's addresses. Snapshot returns
// []ContentShare, identical to TopDomainsOnOrg on the same flows.
func NewExactTopContent(org string, lookup OrgLookup, g Granularity, k int) Query {
	return &exactTopContent{org: org, lookup: lookup, g: g, k: k,
		perClient: map[string]map[netip.Addr]int{}, flowsPer: map[string]int{}}
}

func (q *exactTopContent) Name() string { return "top_content:" + q.org }

func (q *exactTopContent) Observe(f *flowdb.LabeledFlow) {
	if !f.Labeled || q.lookup == nil {
		return
	}
	org, ok := q.lookup(f.Vantage, f.Key.ServerIP)
	if !ok || org != q.org {
		return
	}
	name := f.Label
	if q.g == BySLD {
		name = f.SLD
	}
	m, ok := q.perClient[name]
	if !ok {
		m = map[netip.Addr]int{}
		q.perClient[name] = m
	}
	m[f.Key.ClientIP]++
	q.flowsPer[name]++
	q.total++
}

func (q *exactTopContent) Merge(other Query) error {
	o, err := mergeAs(q, other)
	if err != nil {
		return err
	}
	//dnhunter:unordered-ok keyed sums; order-free
	for name, m := range o.perClient {
		dst, ok := q.perClient[name]
		if !ok {
			dst = map[netip.Addr]int{}
			q.perClient[name] = dst
		}
		for c, n := range m {
			dst[c] += n
		}
	}
	//dnhunter:unordered-ok keyed sums; order-free
	for name, n := range o.flowsPer {
		q.flowsPer[name] += n
	}
	q.total += o.total
	return nil
}

func (q *exactTopContent) Snapshot() Result {
	out := make([]ContentShare, 0, len(q.flowsPer))
	//dnhunter:unordered-ok rows are fully sorted below before use
	for name, n := range q.flowsPer {
		cs := ContentShare{Name: name, Flows: n, Score: logScore(q.perClient[name])}
		if q.total > 0 {
			cs.Share = float64(n) / float64(q.total)
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flows != out[j].Flows {
			return out[i].Flows > out[j].Flows
		}
		return out[i].Name < out[j].Name
	})
	if q.k > 0 && len(out) > q.k {
		out = out[:q.k]
	}
	return out
}

// exactCoverage is the streaming form of flowdb.DB.Coverage; Snapshot
// returns CoverageResult.
type exactCoverage struct {
	warmup         time.Duration
	total, labeled [int(flows.L7DNS) + 1]uint64
}

// NewExactCoverage counts per-protocol tagging coverage for flows
// starting at or after warmup (Table 2's measurement). Snapshot returns
// CoverageResult; equivalent to flowdb.DB.Coverage on the same flows.
func NewExactCoverage(warmup time.Duration) Query {
	return &exactCoverage{warmup: warmup}
}

func (q *exactCoverage) Name() string { return "coverage" }

func (q *exactCoverage) Observe(f *flowdb.LabeledFlow) {
	if f.Start < q.warmup || int(f.L7) >= len(q.total) {
		return
	}
	q.total[f.L7]++
	if f.Labeled {
		q.labeled[f.L7]++
	}
}

func (q *exactCoverage) Merge(other Query) error {
	o, err := mergeAs(q, other)
	if err != nil {
		return err
	}
	for i := range q.total {
		q.total[i] += o.total[i]
		q.labeled[i] += o.labeled[i]
	}
	return nil
}

func (q *exactCoverage) Snapshot() Result {
	res := CoverageResult{WarmupSeconds: q.warmup.Seconds()}
	for i := range q.total {
		if q.total[i] == 0 {
			continue
		}
		pc := ProtoCoverage{Proto: flows.L7Proto(i).String(), Total: q.total[i], Labeled: q.labeled[i]}
		pc.Ratio = float64(pc.Labeled) / float64(pc.Total)
		res.Protocols = append(res.Protocols, pc)
	}
	return res
}

// ObserveVantages feeds every vantage's database through the pipeline,
// stamping each flow with its vantage name so per-vantage queries
// partition correctly even when the databases were built without stamps
// (as single-source Engine runs are). One pass feeds every registered
// query — the batch replacement for calling N free functions that each
// re-walk the databases.
func ObserveVantages(p *Pipeline, vantages []VantageData) {
	for _, v := range vantages {
		recs := v.DB.All()
		for i := range recs {
			f := recs[i]
			f.Vantage = v.Name
			p.Observe(&f)
		}
	}
}

// VantageNames extracts the names of a vantage set, in order — the seed
// list for NewExactProviderUsage / NewExactCrossVantage.
func VantageNames(vantages []VantageData) []string {
	out := make([]string, len(vantages))
	for i, v := range vantages {
		out[i] = v.Name
	}
	return out
}
