package analytics

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/orgdb"
	"repro/internal/synth"
)

func anomalyOrgDB() *orgdb.DB {
	return orgdb.New([]orgdb.Entry{
		{Prefix: netip.MustParsePrefix("23.0.0.0/8"), Org: "akamai"},
		{Prefix: netip.MustParsePrefix("198.51.100.0/24"), Org: "attacker"},
	})
}

func TestMonitorLearnsThenFlags(t *testing.T) {
	m := NewMappingMonitor(anomalyOrgDB())
	m.MinObservations = 2
	good1 := netip.MustParseAddr("23.1.2.3")
	good2 := netip.MustParseAddr("23.1.2.4")
	evil := netip.MustParseAddr("198.51.100.7")

	// Learning phase: nothing fires.
	if a := m.Observe(0, "www.bank.com", []netip.Addr{good1}); len(a) != 0 {
		t.Fatalf("learning phase alarmed: %v", a)
	}
	if a := m.Observe(time.Minute, "www.bank.com", []netip.Addr{good2}); len(a) != 0 {
		t.Fatalf("learning phase alarmed: %v", a)
	}
	// Benign repeat: no alarm.
	if a := m.Observe(2*time.Minute, "www.bank.com", []netip.Addr{good1}); len(a) != 0 {
		t.Fatalf("benign repeat alarmed: %v", a)
	}
	// Hijacked response: must fire with the strongest kind.
	raised := m.Observe(3*time.Minute, "www.bank.com", []netip.Addr{evil})
	if len(raised) != 1 {
		t.Fatalf("hijack not flagged: %v", raised)
	}
	if raised[0].Kind != AnomalyNewOrg || raised[0].Addr != evil {
		t.Fatalf("anomaly = %+v", raised[0])
	}
	if !strings.Contains(raised[0].Detail, "attacker") {
		t.Fatalf("detail = %q", raised[0].Detail)
	}
}

func TestMonitorBenignChurnInsideOrg(t *testing.T) {
	m := NewMappingMonitor(anomalyOrgDB())
	m.MinObservations = 1
	m.Observe(0, "cdn.example.com", []netip.Addr{netip.MustParseAddr("23.1.0.1")})
	// Same org (akamai /8), different /16: ordinary CDN rotation, quiet.
	if raised := m.Observe(time.Minute, "cdn.example.com", []netip.Addr{netip.MustParseAddr("23.99.0.1")}); len(raised) != 0 {
		t.Fatalf("benign rotation alarmed: %+v", raised)
	}
}

func TestMonitorUnallocatedPrefix(t *testing.T) {
	m := NewMappingMonitor(anomalyOrgDB())
	m.MinObservations = 1
	m.Observe(0, "cdn.example.com", []netip.Addr{netip.MustParseAddr("23.1.0.1")})
	// Address outside every known allocation: NewPrefix signal.
	raised := m.Observe(time.Minute, "cdn.example.com", []netip.Addr{netip.MustParseAddr("203.0.113.9")})
	if len(raised) != 1 || raised[0].Kind != AnomalyNewPrefix {
		t.Fatalf("raised = %+v", raised)
	}
}

func TestMonitorPerNameIsolation(t *testing.T) {
	m := NewMappingMonitor(anomalyOrgDB())
	m.MinObservations = 1
	m.Observe(0, "a.example.com", []netip.Addr{netip.MustParseAddr("23.1.0.1")})
	// A different name on the attacker block is just that name's baseline.
	if a := m.Observe(0, "b.example.com", []netip.Addr{netip.MustParseAddr("198.51.100.9")}); len(a) != 0 {
		t.Fatalf("cross-name contamination: %v", a)
	}
	if m.Names() != 2 {
		t.Fatalf("names = %d", m.Names())
	}
}

func TestMonitorSuppressedCounting(t *testing.T) {
	m := NewMappingMonitor(anomalyOrgDB())
	m.MinObservations = 5
	// Unallocated space during learning: suspicious but suppressed.
	for i := 1; i < 4; i++ {
		m.Observe(0, "x.example.com", []netip.Addr{netip.AddrFrom4([4]byte{203, 0, byte(113 + i), 1})})
	}
	if m.Suppressed == 0 {
		t.Fatal("learning-phase changes should be counted as suppressed")
	}
	if len(m.Anomalies()) != 0 {
		t.Fatalf("anomalies during learning: %v", m.Anomalies())
	}
}

func TestMonitorReport(t *testing.T) {
	m := NewMappingMonitor(anomalyOrgDB())
	if m.Report() != "no anomalies\n" {
		t.Fatalf("empty report = %q", m.Report())
	}
	m.MinObservations = 1
	m.Observe(0, "x.example.com", []netip.Addr{netip.MustParseAddr("23.1.0.1")})
	m.Observe(time.Minute, "x.example.com", []netip.Addr{netip.MustParseAddr("198.51.100.1")})
	if !strings.Contains(m.Report(), "x.example.com") {
		t.Fatalf("report = %q", m.Report())
	}
}

func TestMonitorQuietOnBenignCDNChurn(t *testing.T) {
	// Feed a real synthetic trace's DNS events: ordinary CDN churn must
	// stay quiet (the poisoning signal must be rare), because rotation
	// happens inside each provider's block.
	tr := synth.GenerateEvents(synth.LiveScenario{
		Days: 1, Clients: 20, SessionsPerDay: 3000, Geo: synth.GeoEU1, Seed: 3,
	})
	m := NewMappingMonitor(tr.OrgDB)
	alarms := 0
	for _, ev := range tr.DNS {
		alarms += len(m.Observe(ev.At, ev.FQDN, ev.Addrs))
	}
	rate := float64(alarms) / float64(len(tr.DNS))
	if rate > 0.02 {
		t.Fatalf("false-alarm rate on benign churn = %.3f (%d/%d)", rate, alarms, len(tr.DNS))
	}
	// And an injected hijack still fires: take a well-observed name and
	// point it somewhere absurd.
	var victim string
	seen := map[string]int{}
	for _, ev := range tr.DNS {
		seen[ev.FQDN]++
		if seen[ev.FQDN] >= 5 {
			victim = ev.FQDN
			break
		}
	}
	if victim == "" {
		t.Skip("no name observed often enough")
	}
	raised := m.Observe(25*time.Hour, victim, []netip.Addr{netip.MustParseAddr("203.0.113.66")})
	if len(raised) == 0 {
		t.Fatalf("injected hijack of %s not flagged", victim)
	}
}
