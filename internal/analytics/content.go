package analytics

import (
	"net/netip"
	"sort"

	"repro/internal/flowdb"
	"repro/internal/orgdb"
	"repro/internal/stats"
)

// ContentShare is one hosted name with its traffic share on a server set.
type ContentShare struct {
	Name  string // FQDN or SLD depending on granularity
	Flows int
	Share float64
	Score float64 // Eq. 1 log-damped score
}

// Granularity selects how Algorithm 3 aggregates FQDNs.
type Granularity uint8

// Aggregation levels.
const (
	// ByFQDN keeps complete FQDNs.
	ByFQDN Granularity = iota
	// BySLD folds to second-level domains (organizations) — the Table 5
	// view.
	BySLD
)

// ContentDiscovery implements Algorithm 3: given a server set (e.g. all
// addresses of one CDN), return the ranked content hosted there.
func ContentDiscovery(db *flowdb.DB, servers []netip.Addr, g Granularity, k int) []ContentShare {
	perClient := make(map[string]map[netip.Addr]int)
	flowsPer := make(map[string]int)
	total := 0
	for _, srv := range servers {
		for _, f := range db.ByServer(srv) {
			if !f.Labeled {
				continue
			}
			name := f.Label
			if g == BySLD {
				name = f.SLD
			}
			m, ok := perClient[name]
			if !ok {
				m = make(map[netip.Addr]int)
				perClient[name] = m
			}
			m[f.Key.ClientIP]++
			flowsPer[name]++
			total++
		}
	}
	out := make([]ContentShare, 0, len(flowsPer))
	//dnhunter:unordered-ok rows are fully sorted below before use
	for name, n := range flowsPer {
		cs := ContentShare{Name: name, Flows: n, Score: logScore(perClient[name])}
		if total > 0 {
			cs.Share = float64(n) / float64(total)
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flows != out[j].Flows {
			return out[i].Flows > out[j].Flows
		}
		return out[i].Name < out[j].Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// ServersOfOrg returns every observed server address belonging to the given
// hosting organization, per the org database.
func ServersOfOrg(db *flowdb.DB, odb *orgdb.DB, org string) []netip.Addr {
	var out []netip.Addr
	for _, srv := range db.Servers() {
		if got, ok := odb.Lookup(srv); ok && got == org {
			out = append(out, srv)
		}
	}
	return out
}

// TopDomainsOnOrg is the Table 5 query: the top-k second-level domains
// hosted on one provider's servers.
//
// Deprecated: register NewExactTopContent(org, OrgLookupDB(odb), BySLD, k)
// in a Pipeline and feed it with ObserveDB — the query also runs
// incrementally under Engine.Serve, which this wrapper cannot.
func TopDomainsOnOrg(db *flowdb.DB, odb *orgdb.DB, org string, k int) []ContentShare {
	p := NewPipeline(NewExactTopContent(org, OrgLookupDB(odb), BySLD, k))
	p.ObserveDB(db)
	cs, _ := p.Snapshot()[0].Result.([]ContentShare)
	return cs
}

// FanoutCDFs computes Fig. 3: the distribution of (a) how many server
// addresses each FQDN is served by and (b) how many FQDNs each server
// address serves.
func FanoutCDFs(db *flowdb.DB) (ipsPerFQDN, fqdnsPerIP *stats.CDF) {
	ipsPerFQDN = &stats.CDF{}
	fqdnsPerIP = &stats.CDF{}
	for _, fqdn := range db.FQDNs() {
		ipsPerFQDN.Add(float64(len(db.ServersOfFQDN(fqdn))))
	}
	perServer := make(map[netip.Addr]map[string]struct{})
	for _, f := range db.All() {
		if !f.Labeled {
			continue
		}
		m, ok := perServer[f.Key.ServerIP]
		if !ok {
			m = make(map[string]struct{})
			perServer[f.Key.ServerIP] = m
		}
		m[f.Label] = struct{}{}
	}
	//dnhunter:unordered-ok CDF sorts its samples before any read, so insertion order is immaterial
	for _, names := range perServer {
		fqdnsPerIP.Add(float64(len(names)))
	}
	return ipsPerFQDN, fqdnsPerIP
}

// SingletonShares returns the fraction of FQDNs served by exactly one
// address and the fraction of addresses serving exactly one FQDN — the two
// headline numbers of Fig. 3 (82% and 73% in the paper).
func SingletonShares(db *flowdb.DB) (fqdnSingle, ipSingle float64) {
	a, b := FanoutCDFs(db)
	if a.Len() > 0 {
		fqdnSingle = a.At(1)
	}
	if b.Len() > 0 {
		ipSingle = b.At(1)
	}
	return fqdnSingle, ipSingle
}
