package analytics

import (
	"net/netip"
	"sort"
	"time"

	"repro/internal/flowdb"
	"repro/internal/orgdb"
	"repro/internal/stats"
	"repro/internal/synth"
)

// figures.go extracts the measurement series behind the paper's remaining
// figures: per-bin server pools (Fig. 4), per-CDN FQDN counts (Fig. 5),
// birth processes (Fig. 6), appspot tracking (Figs. 10/11, Table 8), delay
// CDFs (Figs. 12/13) and the DNS response rate (Fig. 14).

// ServerTimeseries computes Fig. 4 for a set of second-level domains: the
// number of distinct server addresses observed serving each SLD per time
// bin.
func ServerTimeseries(db *flowdb.DB, slds []string, bin time.Duration) map[string][]int {
	acc := make(map[string]*stats.SetBinUnion, len(slds))
	for _, s := range slds {
		acc[s] = stats.NewSetBinUnion(bin)
	}
	for _, f := range db.All() {
		if !f.Labeled {
			continue
		}
		if a, ok := acc[f.SLD]; ok {
			a.Add(f.Start, f.Key.ServerIP.String())
		}
	}
	out := make(map[string][]int, len(slds))
	//dnhunter:unordered-ok keyed copy with a per-entry pure transform; result is a map
	for s, a := range acc {
		out[s] = a.Counts()
	}
	return out
}

// CDNTimeseries computes Fig. 5: distinct FQDNs served per hosting org per
// time bin.
func CDNTimeseries(db *flowdb.DB, odb *orgdb.DB, orgs []string, bin time.Duration) map[string][]int {
	want := make(map[string]*stats.SetBinUnion, len(orgs))
	for _, o := range orgs {
		want[o] = stats.NewSetBinUnion(bin)
	}
	for _, f := range db.All() {
		if !f.Labeled {
			continue
		}
		org, ok := odb.Lookup(f.Key.ServerIP)
		if !ok {
			continue
		}
		if a, ok := want[org]; ok {
			a.Add(f.Start, f.Label)
		}
	}
	out := make(map[string][]int, len(orgs))
	//dnhunter:unordered-ok keyed copy with a per-entry pure transform; result is a map
	for o, a := range want {
		out[o] = a.Counts()
	}
	return out
}

// BirthSeries is one cumulative-unique-count curve of Fig. 6.
type BirthSeries struct {
	Bin    time.Duration
	FQDN   []int
	SLD    []int
	Server []int
}

// BirthProcess computes Fig. 6 from an event-mode trace: the cumulative
// number of unique FQDNs, second-level domains, and server addresses over
// time. FQDNs must keep growing while the other two saturate.
func BirthProcess(tr *synth.EventTrace, bin time.Duration) *BirthSeries {
	nBins := int(time.Duration(tr.Scenario.Days)*24*time.Hour/bin) + 1
	bs := &BirthSeries{Bin: bin, FQDN: make([]int, nBins), SLD: make([]int, nBins), Server: make([]int, nBins)}
	seenF := map[string]struct{}{}
	seenS := map[string]struct{}{}
	seenIP := map[netip.Addr]struct{}{}
	idx := 0
	commit := func(upTo int) {
		for ; idx <= upTo && idx < nBins; idx++ {
			bs.FQDN[idx] = len(seenF)
			bs.SLD[idx] = len(seenS)
			bs.Server[idx] = len(seenIP)
		}
	}
	for _, ev := range tr.DNS {
		b := int(ev.At / bin)
		if b >= idx {
			commit(b - 1)
		}
		seenF[ev.FQDN] = struct{}{}
		seenS[stats.SLD(ev.FQDN)] = struct{}{}
		for _, a := range ev.Addrs {
			seenIP[a] = struct{}{}
		}
	}
	commit(nBins - 1)
	return bs
}

// GrowthRatio summarizes Fig. 6's claim: FQDN growth in the last third of
// the window divided by growth in the first third, compared per curve.
// FQDNs should retain a substantially higher late-growth ratio than servers.
func (bs *BirthSeries) GrowthRatio(series []int) float64 {
	n := len(series)
	if n < 3 {
		return 0
	}
	third := n / 3
	early := series[third] - series[0]
	late := series[n-1] - series[n-1-third]
	if early <= 0 {
		return 0
	}
	return float64(late) / float64(early)
}

// AppspotReport reproduces Table 8 and Fig. 11 from an event-mode trace.
type AppspotReport struct {
	// Table 8 rows.
	TrackerServices, GeneralServices int
	TrackerFlows, GeneralFlows       int
	TrackerC2S, TrackerS2C           uint64
	GeneralC2S, GeneralS2C           uint64
	// Timeline[id] lists the active 4-hour bins of tracker #id (Fig. 11).
	Timeline map[int][]int
}

// AppspotTracking analyses appspot.com traffic in an event trace: trackers
// versus general apps, plus each tracker's activity timeline.
func AppspotTracking(tr *synth.EventTrace, bin time.Duration) *AppspotReport {
	rep := &AppspotReport{Timeline: make(map[int][]int)}
	trackerSvcs := map[string]struct{}{}
	generalSvcs := map[string]struct{}{}
	seenBin := map[int]map[int]struct{}{}
	for i := range tr.Flows {
		f := &tr.Flows[i]
		if stats.SLD(f.Label) != "appspot.com" {
			continue
		}
		if id, isTracker := tr.TrackerIDs[f.Label]; isTracker {
			trackerSvcs[f.Label] = struct{}{}
			rep.TrackerFlows++
			rep.TrackerC2S += f.BytesC2S
			rep.TrackerS2C += f.BytesS2C
			b := int(f.Start / bin)
			if seenBin[id] == nil {
				seenBin[id] = map[int]struct{}{}
			}
			seenBin[id][b] = struct{}{}
		} else {
			generalSvcs[f.Label] = struct{}{}
			rep.GeneralFlows++
			rep.GeneralC2S += f.BytesC2S
			rep.GeneralS2C += f.BytesS2C
		}
	}
	rep.TrackerServices = len(trackerSvcs)
	rep.GeneralServices = len(generalSvcs)
	//dnhunter:unordered-ok keyed map write; each timeline is sorted per entry
	for id, bins := range seenBin {
		var list []int
		for b := range bins {
			list = append(list, b)
		}
		sort.Ints(list)
		rep.Timeline[id] = list
	}
	return rep
}

// DelayCDFs computes Figs. 12 and 13 from a labeled flow database: the
// first-flow delay (DNS response → first flow using it) and the any-flow
// delay (DNS response → every flow using it).
func DelayCDFs(db *flowdb.DB) (firstFlow, anyFlow *stats.CDF) {
	firstFlow = &stats.CDF{}
	anyFlow = &stats.CDF{}
	for _, f := range db.All() {
		if !f.Labeled || f.DNSDelay < 0 {
			continue
		}
		sec := f.DNSDelay.Seconds()
		anyFlow.Add(sec)
		if f.FirstAfterDNS {
			firstFlow.Add(sec)
		}
	}
	return firstFlow, anyFlow
}

// DNSRate computes Fig. 14: DNS responses per time bin, from the response
// timestamps collected by the pipeline's OnDNSResponse hook.
func DNSRate(times []time.Duration, bin time.Duration) []float64 {
	b := stats.NewBinner(bin)
	for _, t := range times {
		b.Incr(t)
	}
	return b.Values()
}
