package analytics

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/flowdb"
	"repro/internal/orgdb"
	"repro/internal/stats"
)

// SpatialResult answers Algorithm 2 for one organization: which servers —
// grouped by the hosting organization — deliver each of its FQDNs, and how
// flows split across them.
type SpatialResult struct {
	SLD string
	// PerFQDN maps each FQDN under the SLD to its serving addresses.
	PerFQDN map[string][]netip.Addr
	// Hosts aggregates by hosting organization (Fig. 7/8's rectangles).
	Hosts []HostShare
	// TotalFlows is the number of labeled flows to the SLD.
	TotalFlows int
}

// HostShare is one hosting org's slice of an organization's traffic.
type HostShare struct {
	Org       string
	Servers   int
	Flows     int
	FlowShare float64
	// FQDNs served from this host org, sorted.
	FQDNs []string
}

// SpatialDiscovery implements Algorithm 2: given a target name, extract the
// second-level domain, pull every flow to that organization, and rank the
// serving infrastructure. The org database plays the whois/MaxMind role.
func SpatialDiscovery(db *flowdb.DB, odb *orgdb.DB, name string) *SpatialResult {
	sld := stats.SLD(name)
	res := &SpatialResult{SLD: sld, PerFQDN: make(map[string][]netip.Addr)}
	type agg struct {
		servers map[netip.Addr]struct{}
		fqdns   map[string]struct{}
		flows   int
	}
	byOrg := make(map[string]*agg)
	for _, f := range db.BySLD(sld) {
		res.TotalFlows++
		org, ok := odb.Lookup(f.Key.ServerIP)
		if !ok {
			org = "unknown"
		}
		a, ok := byOrg[org]
		if !ok {
			a = &agg{servers: map[netip.Addr]struct{}{}, fqdns: map[string]struct{}{}}
			byOrg[org] = a
		}
		a.servers[f.Key.ServerIP] = struct{}{}
		a.fqdns[f.Label] = struct{}{}
		a.flows++
	}
	for _, fqdn := range db.FQDNsOfSLD(sld) {
		res.PerFQDN[fqdn] = db.ServersOfFQDN(fqdn)
	}
	for org, a := range byOrg {
		hs := HostShare{Org: org, Servers: len(a.servers), Flows: a.flows}
		if res.TotalFlows > 0 {
			hs.FlowShare = float64(a.flows) / float64(res.TotalFlows)
		}
		for f := range a.fqdns {
			hs.FQDNs = append(hs.FQDNs, f)
		}
		sort.Strings(hs.FQDNs)
		res.Hosts = append(res.Hosts, hs)
	}
	sort.Slice(res.Hosts, func(i, j int) bool {
		if res.Hosts[i].Flows != res.Hosts[j].Flows {
			return res.Hosts[i].Flows > res.Hosts[j].Flows
		}
		return res.Hosts[i].Org < res.Hosts[j].Org
	})
	return res
}

// TreeNode is one token of a domain-structure tree (Figs. 7/8): FQDNs of an
// organization merged into a token trie, numbers generalized to N, with
// hosting info at the leaves.
type TreeNode struct {
	Token    string
	Children []*TreeNode
	// Flows through this node's subtree.
	Flows int
	// Orgs serving leaves below this node (leaf nodes typically have one).
	Orgs map[string]int
}

// DomainTree builds the token trie for an SLD. Labels are read from the TLD
// inward (the paper's trees hang sub-labels beneath the SLD), and numeric
// runs collapse ("media1", "media2" → "mediaN").
func DomainTree(db *flowdb.DB, odb *orgdb.DB, name string) *TreeNode {
	sld := stats.SLD(name)
	root := &TreeNode{Token: sld, Orgs: map[string]int{}}
	for _, f := range db.BySLD(sld) {
		prefix := stats.HostPrefix(f.Label)
		labels := stats.SplitFQDN(prefix)
		// Walk from the label closest to the SLD outwards.
		node := root
		node.Flows++
		org, ok := odb.Lookup(f.Key.ServerIP)
		if !ok {
			org = "unknown"
		}
		root.Orgs[org]++
		for i := len(labels) - 1; i >= 0; i-- {
			tok := stats.GeneralizeDigits(labels[i])
			child := node.findChild(tok)
			if child == nil {
				child = &TreeNode{Token: tok, Orgs: map[string]int{}}
				node.Children = append(node.Children, child)
			}
			child.Flows++
			child.Orgs[org]++
			node = child
		}
	}
	root.sortRec()
	return root
}

func (n *TreeNode) findChild(tok string) *TreeNode {
	for _, c := range n.Children {
		if c.Token == tok {
			return c
		}
	}
	return nil
}

func (n *TreeNode) sortRec() {
	sort.Slice(n.Children, func(i, j int) bool {
		if n.Children[i].Flows != n.Children[j].Flows {
			return n.Children[i].Flows > n.Children[j].Flows
		}
		return n.Children[i].Token < n.Children[j].Token
	})
	for _, c := range n.Children {
		c.sortRec()
	}
}

// DominantOrg returns the hosting org carrying most of the node's flows.
func (n *TreeNode) DominantOrg() string {
	best, bestN := "", -1
	for org, c := range n.Orgs {
		if c > bestN || (c == bestN && org < best) {
			best, bestN = org, c
		}
	}
	return best
}

// Render prints the tree with flow shares, a text stand-in for Figs. 7/8.
func (n *TreeNode) Render() string {
	var b strings.Builder
	total := n.Flows
	if total == 0 {
		total = 1
	}
	var walk func(node *TreeNode, depth int)
	walk = func(node *TreeNode, depth int) {
		fmt.Fprintf(&b, "%s%s [%d flows, %.0f%%, %s]\n",
			strings.Repeat("  ", depth), node.Token, node.Flows,
			100*float64(node.Flows)/float64(total), node.DominantOrg())
		for _, c := range node.Children {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

// Heatmap is the Fig. 9 structure: for one content organization, the share
// of flows served by each hosting org in each trace.
type Heatmap struct {
	SLD string
	// Rows: trace name -> hosting org -> flow share in that trace.
	Rows map[string]map[string]float64
	// HostOrgs is the union of hosting orgs across rows, "SELF" first.
	HostOrgs []string
}

// BuildHeatmap aggregates spatial results from several traces. self names
// the org's own hosting provider (mapped to "SELF" as in the paper).
func BuildHeatmap(sld, self string, perTrace map[string]*SpatialResult) *Heatmap {
	h := &Heatmap{SLD: sld, Rows: make(map[string]map[string]float64)}
	set := map[string]struct{}{}
	for trace, res := range perTrace {
		row := make(map[string]float64)
		for _, hs := range res.Hosts {
			org := hs.Org
			if org == self {
				org = "SELF"
			}
			row[org] += hs.FlowShare
			set[org] = struct{}{}
		}
		h.Rows[trace] = row
	}
	if _, ok := set["SELF"]; ok {
		h.HostOrgs = append(h.HostOrgs, "SELF")
		delete(set, "SELF")
	}
	var rest []string
	for org := range set {
		rest = append(rest, org)
	}
	sort.Strings(rest)
	h.HostOrgs = append(h.HostOrgs, rest...)
	return h
}

// Render prints the heat map as a table of percentages.
func (h *Heatmap) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-12s", h.SLD, "")
	for _, org := range h.HostOrgs {
		fmt.Fprintf(&b, " %12s", org)
	}
	b.WriteByte('\n')
	var traces []string
	for t := range h.Rows {
		traces = append(traces, t)
	}
	sort.Strings(traces)
	for _, t := range traces {
		fmt.Fprintf(&b, "%-12s", t)
		for _, org := range h.HostOrgs {
			fmt.Fprintf(&b, " %11.1f%%", 100*h.Rows[t][org])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
