package analytics

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/flowdb"
	"repro/internal/orgdb"
	"repro/internal/stats"
)

// SpatialResult answers Algorithm 2 for one organization: which servers —
// grouped by the hosting organization — deliver each of its FQDNs, and how
// flows split across them.
type SpatialResult struct {
	SLD string
	// PerFQDN maps each FQDN under the SLD to its serving addresses.
	PerFQDN map[string][]netip.Addr
	// Hosts aggregates by hosting organization (Fig. 7/8's rectangles).
	Hosts []HostShare
	// TotalFlows is the number of labeled flows to the SLD.
	TotalFlows int
}

// HostShare is one hosting org's slice of an organization's traffic.
type HostShare struct {
	Org       string
	Servers   int
	Flows     int
	FlowShare float64
	// FQDNs served from this host org, sorted.
	FQDNs []string
}

// SpatialDiscovery implements Algorithm 2: given a target name, extract the
// second-level domain, pull every flow to that organization, and rank the
// serving infrastructure. The org database plays the whois/MaxMind role.
func SpatialDiscovery(db *flowdb.DB, odb *orgdb.DB, name string) *SpatialResult {
	sld := stats.SLD(name)
	res := &SpatialResult{SLD: sld, PerFQDN: make(map[string][]netip.Addr)}
	type agg struct {
		servers map[netip.Addr]struct{}
		fqdns   map[string]struct{}
		flows   int
	}
	byOrg := make(map[string]*agg)
	for _, f := range db.BySLD(sld) {
		res.TotalFlows++
		org, ok := odb.Lookup(f.Key.ServerIP)
		if !ok {
			org = "unknown"
		}
		a, ok := byOrg[org]
		if !ok {
			a = &agg{servers: map[netip.Addr]struct{}{}, fqdns: map[string]struct{}{}}
			byOrg[org] = a
		}
		a.servers[f.Key.ServerIP] = struct{}{}
		a.fqdns[f.Label] = struct{}{}
		a.flows++
	}
	for _, fqdn := range db.FQDNsOfSLD(sld) {
		res.PerFQDN[fqdn] = db.ServersOfFQDN(fqdn)
	}
	//dnhunter:unordered-ok rows are fully sorted below before use
	for org, a := range byOrg {
		hs := HostShare{Org: org, Servers: len(a.servers), Flows: a.flows}
		if res.TotalFlows > 0 {
			hs.FlowShare = float64(a.flows) / float64(res.TotalFlows)
		}
		for f := range a.fqdns {
			hs.FQDNs = append(hs.FQDNs, f)
		}
		sort.Strings(hs.FQDNs)
		res.Hosts = append(res.Hosts, hs)
	}
	sort.Slice(res.Hosts, func(i, j int) bool {
		if res.Hosts[i].Flows != res.Hosts[j].Flows {
			return res.Hosts[i].Flows > res.Hosts[j].Flows
		}
		return res.Hosts[i].Org < res.Hosts[j].Org
	})
	return res
}

// TreeNode is one token of a domain-structure tree (Figs. 7/8): FQDNs of an
// organization merged into a token trie, numbers generalized to N, with
// hosting info at the leaves.
type TreeNode struct {
	Token    string
	Children []*TreeNode
	// Flows through this node's subtree.
	Flows int
	// Orgs serving leaves below this node (leaf nodes typically have one).
	Orgs map[string]int
}

// DomainTree builds the token trie for an SLD. Labels are read from the TLD
// inward (the paper's trees hang sub-labels beneath the SLD), and numeric
// runs collapse ("media1", "media2" → "mediaN").
func DomainTree(db *flowdb.DB, odb *orgdb.DB, name string) *TreeNode {
	sld := stats.SLD(name)
	root := &TreeNode{Token: sld, Orgs: map[string]int{}}
	for _, f := range db.BySLD(sld) {
		prefix := stats.HostPrefix(f.Label)
		labels := stats.SplitFQDN(prefix)
		// Walk from the label closest to the SLD outwards.
		node := root
		node.Flows++
		org, ok := odb.Lookup(f.Key.ServerIP)
		if !ok {
			org = "unknown"
		}
		root.Orgs[org]++
		for i := len(labels) - 1; i >= 0; i-- {
			tok := stats.GeneralizeDigits(labels[i])
			child := node.findChild(tok)
			if child == nil {
				child = &TreeNode{Token: tok, Orgs: map[string]int{}}
				node.Children = append(node.Children, child)
			}
			child.Flows++
			child.Orgs[org]++
			node = child
		}
	}
	root.sortRec()
	return root
}

func (n *TreeNode) findChild(tok string) *TreeNode {
	for _, c := range n.Children {
		if c.Token == tok {
			return c
		}
	}
	return nil
}

func (n *TreeNode) sortRec() {
	sort.Slice(n.Children, func(i, j int) bool {
		if n.Children[i].Flows != n.Children[j].Flows {
			return n.Children[i].Flows > n.Children[j].Flows
		}
		return n.Children[i].Token < n.Children[j].Token
	})
	for _, c := range n.Children {
		c.sortRec()
	}
}

// DominantOrg returns the hosting org carrying most of the node's flows.
func (n *TreeNode) DominantOrg() string {
	best, bestN := "", -1
	//dnhunter:unordered-ok argmax with a total tie-break on org name; any order yields the same winner
	for org, c := range n.Orgs {
		if c > bestN || (c == bestN && org < best) {
			best, bestN = org, c
		}
	}
	return best
}

// Render prints the tree with flow shares, a text stand-in for Figs. 7/8.
func (n *TreeNode) Render() string {
	var b strings.Builder
	total := n.Flows
	if total == 0 {
		total = 1
	}
	var walk func(node *TreeNode, depth int)
	walk = func(node *TreeNode, depth int) {
		fmt.Fprintf(&b, "%s%s [%d flows, %.0f%%, %s]\n",
			strings.Repeat("  ", depth), node.Token, node.Flows,
			100*float64(node.Flows)/float64(total), node.DominantOrg())
		for _, c := range node.Children {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

// VantageData bundles one vantage point's pipeline output for the
// cross-vantage analytics: its (partition of the) labeled-flow database and
// its IP → organization table. Multi-source Engine runs produce one per
// registered source (MultiResult.PerVantage).
type VantageData struct {
	Name string
	DB   *flowdb.DB
	Orgs *orgdb.DB
}

// ProviderFootprint compares hosting-infrastructure usage across vantage
// points: for each hosting organization, the share of each vantage's
// labeled flows it served. It is the aggregate behind the paper's
// US-vs-EU observations (Table 5, Fig. 9): the same content arrives via
// different CDNs depending on where the client sits.
type ProviderFootprint struct {
	// Vantages in input order.
	Vantages []string
	// Orgs is the union of hosting orgs, ranked by total flow count
	// across vantages (ties alphabetical), truncated to the requested k.
	Orgs []string
	// Share maps vantage → hosting org → fraction of that vantage's
	// labeled flows.
	Share map[string]map[string]float64
	// Servers maps vantage → hosting org → distinct server addresses.
	Servers map[string]map[string]int
	// LabeledFlows counts each vantage's labeled flows (the denominators).
	LabeledFlows map[string]int
}

// ProviderUsage computes the cross-vantage provider footprint over every
// labeled flow of each vantage, keeping the k hosting orgs with the most
// total flows (k <= 0 keeps all).
//
// Deprecated: register NewExactProviderUsage (or the sketch-based
// stream.NewProviderUsage) in a Pipeline and feed it with
// ObserveVantages; this wrapper re-walks the databases for one query,
// where a Pipeline walks them once for all registered queries.
func ProviderUsage(vantages []VantageData, k int) *ProviderFootprint {
	p := NewPipeline(NewExactProviderUsage(OrgLookupVantages(vantages), k, VantageNames(vantages)...))
	ObserveVantages(p, vantages)
	pf, _ := p.Snapshot()[0].Result.(*ProviderFootprint)
	return pf
}

// Render prints the footprint as a hosting-org × vantage share table.
func (pf *ProviderFootprint) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "host org")
	for _, v := range pf.Vantages {
		fmt.Fprintf(&b, " %17s", v)
	}
	b.WriteByte('\n')
	for _, org := range pf.Orgs {
		fmt.Fprintf(&b, "%-14s", org)
		for _, v := range pf.Vantages {
			fmt.Fprintf(&b, "  %5.1f%% (%4d ip)", 100*pf.Share[v][org], pf.Servers[v][org])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-14s", "labeled flows")
	for _, v := range pf.Vantages {
		fmt.Fprintf(&b, " %17d", pf.LabeledFlows[v])
	}
	b.WriteByte('\n')
	return b.String()
}

// CrossVantage answers Algorithm 2 for one content organization at several
// vantage points at once, plus the pairwise overlap of the serving
// infrastructure — how much of the CDN mix is shared between vantages.
type CrossVantage struct {
	SLD      string
	Vantages []string
	// Per holds each vantage's spatial-discovery result for the SLD.
	Per map[string]*SpatialResult
	// HostOverlap[i][j] is the Jaccard similarity of the hosting-org sets
	// observed at vantages i and j (1 = same CDN mix, 0 = disjoint).
	HostOverlap [][]float64
	// ServerOverlap[i][j] is the Jaccard similarity of the concrete server
	// address sets (usually far lower than HostOverlap: the same CDN
	// serves each geography from different racks).
	ServerOverlap [][]float64
}

// CrossVantageFootprint runs SpatialDiscovery for name at every vantage and
// computes the pairwise infrastructure overlaps.
//
// Deprecated: register NewExactCrossVantage in a Pipeline and feed it
// with ObserveVantages; one pass over the databases then serves every
// registered SLD (and any other query) at once.
func CrossVantageFootprint(vantages []VantageData, name string) *CrossVantage {
	p := NewPipeline(NewExactCrossVantage(name, OrgLookupVantages(vantages), VantageNames(vantages)...))
	ObserveVantages(p, vantages)
	cv, _ := p.Snapshot()[0].Result.(*CrossVantage)
	return cv
}

// jaccard is |a∩b| / |a∪b|; two empty sets count as identical.
func jaccard[K comparable](a, b map[K]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	//dnhunter:unordered-ok integer intersection count; addition is order-free
	for k := range a {
		if _, ok := b[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Render prints the per-vantage host mix and both overlap matrices.
func (cv *CrossVantage) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", cv.SLD)
	for _, v := range cv.Vantages {
		res := cv.Per[v]
		fmt.Fprintf(&b, "  %-6s %5d flows:", v, res.TotalFlows)
		for i, hs := range res.Hosts {
			if i == 4 {
				fmt.Fprintf(&b, " …")
				break
			}
			fmt.Fprintf(&b, " %s %.0f%%", hs.Org, 100*hs.FlowShare)
		}
		b.WriteByte('\n')
	}
	writeMatrix := func(title string, m [][]float64) {
		fmt.Fprintf(&b, "  %s\n  %-8s", title, "")
		for _, v := range cv.Vantages {
			fmt.Fprintf(&b, " %6s", v)
		}
		b.WriteByte('\n')
		for i, v := range cv.Vantages {
			fmt.Fprintf(&b, "  %-8s", v)
			for j := range cv.Vantages {
				fmt.Fprintf(&b, " %6.2f", m[i][j])
			}
			b.WriteByte('\n')
		}
	}
	writeMatrix("host-org overlap (Jaccard):", cv.HostOverlap)
	writeMatrix("server-IP overlap (Jaccard):", cv.ServerOverlap)
	return b.String()
}

// Heatmap is the Fig. 9 structure: for one content organization, the share
// of flows served by each hosting org in each trace.
type Heatmap struct {
	SLD string
	// Rows: trace name -> hosting org -> flow share in that trace.
	Rows map[string]map[string]float64
	// HostOrgs is the union of hosting orgs across rows, "SELF" first.
	HostOrgs []string
}

// BuildHeatmap aggregates spatial results from several traces. self names
// the org's own hosting provider (mapped to "SELF" as in the paper).
func BuildHeatmap(sld, self string, perTrace map[string]*SpatialResult) *Heatmap {
	h := &Heatmap{SLD: sld, Rows: make(map[string]map[string]float64)}
	set := map[string]struct{}{}
	//dnhunter:unordered-ok keyed copy per trace; row totals do not depend on trace order
	for trace, res := range perTrace {
		row := make(map[string]float64)
		for _, hs := range res.Hosts {
			org := hs.Org
			if org == self {
				org = "SELF"
			}
			row[org] += hs.FlowShare
			set[org] = struct{}{}
		}
		h.Rows[trace] = row
	}
	if _, ok := set["SELF"]; ok {
		h.HostOrgs = append(h.HostOrgs, "SELF")
		delete(set, "SELF")
	}
	var rest []string
	for org := range set {
		rest = append(rest, org)
	}
	sort.Strings(rest)
	h.HostOrgs = append(h.HostOrgs, rest...)
	return h
}

// Render prints the heat map as a table of percentages.
func (h *Heatmap) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-12s", h.SLD, "")
	for _, org := range h.HostOrgs {
		fmt.Fprintf(&b, " %12s", org)
	}
	b.WriteByte('\n')
	var traces []string
	for t := range h.Rows {
		traces = append(traces, t)
	}
	sort.Strings(traces)
	for _, t := range traces {
		fmt.Fprintf(&b, "%-12s", t)
		for _, org := range h.HostOrgs {
			fmt.Fprintf(&b, " %11.1f%%", 100*h.Rows[t][org])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
