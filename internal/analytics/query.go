package analytics

// The unified analytics entry surface. Historically every analysis in
// this package was a free function over a fully materialized *flowdb.DB —
// fine for batch runs, incompatible with Engine.Serve, whose windowed
// store discards each window's flows right after flushing it. Query is
// the incremental form: an analysis that observes one flow at a time,
// merges with the same query run on another shard or vantage (the way
// stats.Stats.Add already composes), and snapshots a deterministic
// result on demand. Pipeline is the registry that feeds a set of queries
// from either source — a one-shot DB walk in batch mode, or
// flowdb.Windowed's pre-discard observer in serve mode.
//
// Two families implement Query:
//
//   - the exact reference implementations in exact.go (paper-fidelity,
//     unbounded state — they hold full key sets), and
//   - the sketch-based streaming versions in the stream subpackage
//     (bounded state, documented error bounds).
//
// Snapshots must be deterministic: byte-identical for the same observed
// multiset of flows regardless of shard count or merge order. Every
// implementation sorts before emitting and keeps merge a commutative,
// associative fold (pointwise sums, register maxima, set unions) with
// any truncation deferred to Snapshot.

import (
	"fmt"
	"net/netip"
	"sync"

	"repro/internal/flowdb"
	"repro/internal/orgdb"
)

// Result is one query's snapshot: a JSON-marshalable, deterministic
// value. The concrete type is fixed per query (see each constructor).
type Result any

// Query is one incremental analysis over the labeled-flow stream.
type Query interface {
	// Name identifies the query inside a Pipeline (registry key, JSON
	// field, metrics label).
	Name() string
	// Observe folds one flow into the query state. The pointer is only
	// valid during the call (serve mode recycles the window's storage
	// right after) — implementations must copy what they keep, never
	// retain f. Passed by pointer because a pipeline fans each flow out
	// to every registered query; by-value would copy the ~200-byte
	// record once per query per flow on the hot path. Not safe for
	// concurrent use; the Pipeline serializes it.
	Observe(f *flowdb.LabeledFlow)
	// Merge folds another instance of the same query (same constructor
	// parameters, fed from a different shard or vantage) into this one.
	// Merging is commutative and associative: any merge order yields
	// byte-identical snapshots.
	Merge(other Query) error
	// Snapshot returns the current result. It must not retain or be
	// invalidated by later Observe calls, and must be deterministic for
	// a given observed multiset of flows.
	Snapshot() Result
}

// OrgLookup resolves a server address to its hosting organization, per
// vantage point (multi-vantage runs carry different IP→org tables per
// geography; vantage is empty for single-source runs). A nil OrgLookup
// is valid everywhere one is accepted and resolves nothing.
type OrgLookup func(vantage string, addr netip.Addr) (org string, ok bool)

// OrgLookupDB adapts a single org database, ignoring the vantage.
func OrgLookupDB(odb *orgdb.DB) OrgLookup {
	if odb == nil {
		return nil
	}
	return func(_ string, addr netip.Addr) (string, bool) { return odb.Lookup(addr) }
}

// OrgLookupVantages routes lookups to each vantage's own org database.
// Flows from unknown vantages resolve through the first entry, matching
// the old per-vantage free functions' behavior for unstamped flows.
func OrgLookupVantages(vantages []VantageData) OrgLookup {
	if len(vantages) == 0 {
		return nil
	}
	tables := make(map[string]*orgdb.DB, len(vantages))
	for _, v := range vantages {
		tables[v.Name] = v.Orgs
	}
	first := vantages[0].Orgs
	return func(vantage string, addr netip.Addr) (string, bool) {
		odb, ok := tables[vantage]
		if !ok || odb == nil {
			odb = first
		}
		if odb == nil {
			return "", false
		}
		return odb.Lookup(addr)
	}
}

// orgOrUnknown applies a lookup with the package-wide "unknown" fallback.
func orgOrUnknown(lookup OrgLookup, vantage string, addr netip.Addr) string {
	if lookup != nil {
		if org, ok := lookup(vantage, addr); ok {
			return org
		}
	}
	return "unknown"
}

// QueryResult pairs a query name with its snapshot; Pipeline.Snapshot
// returns them in registration order.
type QueryResult struct {
	Name   string `json:"name"`
	Result Result `json:"result"`
}

// Pipeline is the query registry: the single entry point for both batch
// and streaming analytics. Register queries by name, feed flows with
// Observe/ObserveDB/ObserveWindow, and read results with Snapshot.
// All methods are safe for concurrent use; Observe serializes under one
// mutex, so a Pipeline fed from the serving goroutine can be snapshotted
// live by the HTTP endpoint.
type Pipeline struct {
	mu       sync.Mutex
	queries  []Query
	byName   map[string]int
	observed uint64
}

// NewPipeline builds a pipeline over the given queries. It panics on a
// duplicate name — registration is configuration, and a collision there
// is a programming error, not a runtime condition.
func NewPipeline(queries ...Query) *Pipeline {
	p := &Pipeline{byName: make(map[string]int)}
	for _, q := range queries {
		if err := p.Register(q); err != nil {
			panic(err)
		}
	}
	return p
}

// Register adds one query; names must be unique within the pipeline.
func (p *Pipeline) Register(q Query) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	name := q.Name()
	if _, dup := p.byName[name]; dup {
		return fmt.Errorf("analytics: duplicate query name %q", name)
	}
	p.byName[name] = len(p.queries)
	p.queries = append(p.queries, q)
	return nil
}

// Names returns the registered query names in registration order.
func (p *Pipeline) Names() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.queries))
	for i, q := range p.queries {
		out[i] = q.Name()
	}
	return out
}

// Query returns the registered query by name.
func (p *Pipeline) Query(name string) (Query, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	i, ok := p.byName[name]
	if !ok {
		return nil, false
	}
	return p.queries[i], true
}

// Observe feeds one flow to every registered query. The flow is only
// read during the call.
//
//dnhunter:hotpath
func (p *Pipeline) Observe(f *flowdb.LabeledFlow) {
	p.mu.Lock()
	p.observed++
	for _, q := range p.queries {
		q.Observe(f)
	}
	p.mu.Unlock()
}

// ObserveDB feeds every flow of a materialized database — the batch-mode
// entry point, equivalent to having streamed the DB's flows in order.
func (p *Pipeline) ObserveDB(db *flowdb.DB) {
	p.mu.Lock()
	defer p.mu.Unlock()
	recs := db.All()
	for i := range recs {
		p.observed++
		for _, q := range p.queries {
			q.Observe(&recs[i])
		}
	}
}

// ObserveWindow feeds one completed window — the streaming-mode entry
// point, shaped to drop into flowdb.WindowConfig.Observe (and, via
// core.ServeConfig.ObserveWindow, Engine.Serve). The window's DB is only
// read during the call, honoring the pre-discard lifetime contract.
func (p *Pipeline) ObserveWindow(w flowdb.Window) {
	p.ObserveDB(w.DB)
}

// Observed returns the number of flows fed so far.
func (p *Pipeline) Observed() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.observed
}

// Merge folds another pipeline's query states into this one, matching
// queries by name. Every name registered here must exist in other;
// queries only in other are ignored. Merge order never changes
// snapshots: shard pipelines can be folded in any association.
func (p *Pipeline) Merge(other *Pipeline) error {
	// Lock ordering: always this then other; merging two pipelines from
	// two goroutines in opposite directions concurrently is not supported.
	p.mu.Lock()
	defer p.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
	for _, q := range p.queries {
		i, ok := other.byName[q.Name()]
		if !ok {
			return fmt.Errorf("analytics: merge: query %q missing from other pipeline", q.Name())
		}
		if err := q.Merge(other.queries[i]); err != nil {
			return fmt.Errorf("analytics: merge %q: %w", q.Name(), err)
		}
	}
	p.observed += other.observed
	return nil
}

// Snapshot returns every query's current result in registration order.
func (p *Pipeline) Snapshot() []QueryResult {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]QueryResult, len(p.queries))
	for i, q := range p.queries {
		out[i] = QueryResult{Name: q.Name(), Result: q.Snapshot()}
	}
	return out
}

// Shared result types. The streaming and exact top-k queries both
// snapshot TopKResult, so the differential tests (and any consumer)
// compare like with like.

// TopEntry is one ranked key of a TopKResult.
type TopEntry struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	// Err bounds the sketch overestimate: the true count lies in
	// [Count-Err, Count]. Exact queries report 0.
	Err uint64 `json:"err,omitempty"`
}

// TopKResult ranks the heaviest keys of one dimension.
type TopKResult struct {
	// K is the requested rank depth; Entries holds min(K, distinct keys).
	K int `json:"k"`
	// Observed counts the flows that contributed a key.
	Observed uint64 `json:"observed"`
	// Capacity is the sketch's counter budget (0 for exact queries). Any
	// key with true count > Observed/Capacity is guaranteed present.
	Capacity int        `json:"capacity,omitempty"`
	Entries  []TopEntry `json:"entries"`
}

// CardinalityEntry is one key's estimated distinct-count.
type CardinalityEntry struct {
	Key string `json:"key"`
	// Count is the (estimated) number of distinct values. Exact queries
	// report whole numbers.
	Count float64 `json:"count"`
}

// CardinalityResult estimates distinct-value footprints per key (e.g.
// distinct server addresses per SLD).
type CardinalityResult struct {
	K int `json:"k"`
	// StdError is the estimator's relative standard error (1.04/√m for
	// an HLL with m registers; 0 for exact queries).
	StdError float64 `json:"std_error,omitempty"`
	// TrackedKeys is how many keys hold a live estimator; DroppedFlows
	// counts flows to keys beyond the tracking budget.
	TrackedKeys  int    `json:"tracked_keys"`
	DroppedFlows uint64 `json:"dropped_flows,omitempty"`
	// Total estimates the distinct values across all keys combined.
	Total   float64            `json:"total"`
	Entries []CardinalityEntry `json:"entries"`
}

// ProviderShare is one hosting org's slice of a vantage's labeled flows.
type ProviderShare struct {
	Org   string  `json:"org"`
	Flows uint64  `json:"flows"`
	Share float64 `json:"share"`
	// Servers is the (estimated) count of distinct server addresses the
	// org served this vantage from.
	Servers float64 `json:"servers"`
}

// ProviderUsageResult is the streaming provider footprint: per vantage,
// the top hosting orgs by flow share (the Table 5 / Fig. 9 aggregate).
type ProviderUsageResult struct {
	// Vantages sorted by name (merge-order independence; the exact
	// ProviderFootprint keeps input order instead).
	Vantages []string `json:"vantages"`
	// Orgs is the union of hosting orgs ranked by total flows across
	// vantages (ties alphabetical), truncated to the requested k.
	Orgs []string `json:"orgs"`
	// PerVantage maps vantage → ranked provider shares (same org cut).
	PerVantage map[string][]ProviderShare `json:"per_vantage"`
	// LabeledFlows is each vantage's labeled-flow denominator.
	LabeledFlows map[string]uint64 `json:"labeled_flows"`
}

// ProtoCoverage is one protocol's tagging coverage.
type ProtoCoverage struct {
	Proto   string  `json:"proto"`
	Total   uint64  `json:"total"`
	Labeled uint64  `json:"labeled"`
	Ratio   float64 `json:"ratio"`
}

// CoverageResult is the streaming form of flowdb.LabelCoverage: per-L7
// tagging coverage past the warm-up (Table 2's measurement).
type CoverageResult struct {
	WarmupSeconds float64         `json:"warmup_seconds"`
	Protocols     []ProtoCoverage `json:"protocols"`
}
