package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/flows"
	"repro/internal/netio"
	"repro/internal/synth"
)

// TestCancelReleasesEveryBlock is the abort-path arena audit: a context
// cancelled mid-run — while Blocks checked out of the pool are in flight
// through dispatchers, rings, and shards — must still retire every block.
// Any Gets/Retired imbalance is a leaked (or double-released) handle. The
// matrix covers the single-pipeline, sharded, and reader-fanout dispatch
// shapes, whose abort paths are all different. Not parallel: the audit
// reads the shared default pool's counters.
func TestCancelReleasesEveryBlock(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(31))
	for _, shards := range []int{1, 4} {
		for _, readers := range []int{1, 4} {
			if readers > shards {
				continue // forced to 1 anyway; shape already covered
			}
			t.Run(fmt.Sprintf("shards=%d/readers=%d", shards, readers), func(t *testing.T) {
				for _, cutAt := range []int{1, len(tr.Packets) / 3, len(tr.Packets) - 2} {
					before := netio.DefaultBlockPool().Stats()
					eng := NewEngine(EngineConfig{
						Shards:  shards,
						Readers: readers,
						Flows:   flows.Config{ClientNets: fanoutNets()},
					})
					ctx, cancel := context.WithCancel(context.Background())
					src := &cancelAtSource{inner: tr.Source(), at: cutAt, cancel: cancel}
					_, err := eng.Run(ctx, src)
					cancel()
					if err != nil && !errors.Is(err, context.Canceled) {
						t.Fatalf("cutAt=%d: Run = %v, want nil or context.Canceled", cutAt, err)
					}
					after := netio.DefaultBlockPool().Stats()
					dg, dr := after.Gets-before.Gets, after.Retired-before.Retired
					if dg != dr {
						t.Fatalf("cutAt=%d: %d gets vs %d retires after cancel — leaked blocks",
							cutAt, dg, dr)
					}
				}
			})
		}
	}
}

// cancelAtSource cancels the run's context from inside the read path once
// `at` packets have been delivered — the cancellation lands exactly while
// a ReadBlockRef block is being filled, the hardest point in the abort
// path.
type cancelAtSource struct {
	inner netio.PacketSource
	at    int
	n     int
	cancel context.CancelFunc
}

func (c *cancelAtSource) Next() (netio.Packet, error) {
	if c.n == c.at {
		c.cancel()
		// Give the cancellation a moment to propagate so later reads race
		// the abort path rather than finishing first.
		time.Sleep(time.Millisecond)
	}
	c.n++
	return c.inner.Next()
}
