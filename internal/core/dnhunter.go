// Package core wires the DN-Hunter pipeline together (paper Fig. 1): a
// packet source feeds the flow sniffer and the DNS response sniffer; DNS
// responses populate the resolver (the clients' cache replica); the flow
// tagger labels every flow at its first packet — before any payload byte —
// and emits labeled flows to the database and to the policy hook.
//
// The pipeline has two run modes: Engine.Run ingests a finite trace and
// returns an accumulated Result, while Server.Serve (see serve.go) runs
// the same stages against unbounded input with windowed flushing, overload
// shedding, and resolver checkpointing.
package core

import (
	"errors"
	"io"
	"net/netip"
	"time"

	"repro/internal/dnswire"
	"repro/internal/flowdb"
	"repro/internal/flows"
	"repro/internal/layers"
	"repro/internal/netio"
	"repro/internal/resolver"
)

// TagEvent is delivered to the policy hook the moment a flow is first seen
// and labeled. Because it fires on the SYN, a policy enforcer can act on
// the whole connection including the three-way handshake.
type TagEvent struct {
	Key    flows.Key
	At     time.Duration
	Label  string // empty when the resolver missed
	Hit    bool
	SYN    bool // true when the flow was caught at its first segment
	PreDNS time.Duration
	// Vantage names the packet source that observed the flow; empty for
	// single-source runs (Engine.Run).
	Vantage string
}

// DNSEvent describes one sniffed DNS response.
type DNSEvent struct {
	At       time.Duration
	Client   netip.Addr
	FQDN     string
	NumAddrs int
	// Vantage names the packet source that sniffed the response; empty for
	// single-source runs (Engine.Run).
	Vantage string
}

// Config assembles a pipeline.
type Config struct {
	// Resolver configuration (Clist size, map kind, history).
	Resolver resolver.Config
	// Flows configures the flow table (timeouts, client networks).
	Flows flows.Config
	// DB receives labeled flows; nil allocates a fresh one.
	DB *flowdb.DB
	// OnTag, when set, fires at flow start with the assigned label — the
	// online policy-enforcement hook.
	OnTag func(TagEvent)
	// OnDNSResponse, when set, fires for every decoded DNS response.
	OnDNSResponse func(DNSEvent)
	// OnFlow, when set, fires for every finished labeled flow, after it is
	// stored in the database.
	OnFlow func(flowdb.LabeledFlow)
	// Truth, when set, supplies ground-truth FQDNs for synthetic flows
	// (used only for scoring, never for labeling).
	Truth func(flows.Key) string
	// DiscardDB skips storing finished flows in the database (DB stays
	// empty); the OnFlow hook still observes every flow. Streaming mode
	// sets it to keep heap bounded over unbounded input.
	DiscardDB bool
	// Vantage labels every emitted event and flow record with the packet
	// source's name. The multi-source Engine sets it per vantage pipeline;
	// empty (the default) leaves records unlabeled, preserving the exact
	// single-source output.
	Vantage string
}

// sinkConfig bridges a Sink onto the legacy callback fields.
func sinkConfig(cfg Config, s Sink) Config {
	if s == nil {
		return cfg
	}
	cfg.OnTag = s.OnTag
	cfg.OnDNSResponse = s.OnDNSResponse
	cfg.OnFlow = s.OnFlow
	return cfg
}

// Stats aggregates pipeline counters.
type Stats struct {
	Parser   layers.ParserStats
	Resolver resolver.Stats
	Table    flows.TableStats
	// DNSResponses counts sniffed DNS responses carrying >= 1 address.
	DNSResponses uint64
	// DNSResponsesEmpty counts responses with no usable address records.
	DNSResponsesEmpty uint64
	// DNSMalformed counts UDP/53 payloads that failed to parse.
	DNSMalformed uint64
	// UsedEntries counts resolver entries that labeled at least one flow;
	// DNSResponses - UsedEntries approximates the paper's "useless DNS"
	// (Table 9).
	UsedEntries uint64
	// Flows counts labeled-flow records emitted.
	Flows uint64
	// LabeledFlows counts records that carried a label.
	LabeledFlows uint64
}

// UselessDNSFraction returns the fraction of address-bearing DNS responses
// never followed by a flow (Table 9).
func (s Stats) UselessDNSFraction() float64 {
	if s.DNSResponses == 0 {
		return 0
	}
	return 1 - float64(s.UsedEntries)/float64(s.DNSResponses)
}

// Add accumulates o into s; the sharded Engine merges per-shard counters
// with it. Because every client lives on exactly one shard, summing the
// per-shard counters reproduces the single-pipeline aggregates.
func (s *Stats) Add(o Stats) {
	s.Parser.Add(o.Parser)
	s.Resolver.Add(o.Resolver)
	s.Table.Add(o.Table)
	s.DNSResponses += o.DNSResponses
	s.DNSResponsesEmpty += o.DNSResponsesEmpty
	s.DNSMalformed += o.DNSMalformed
	s.UsedEntries += o.UsedEntries
	s.Flows += o.Flows
	s.LabeledFlows += o.LabeledFlows
}

// tag is the pending label attached when a flow begins.
type tag struct {
	label    string
	hit      bool
	preFlow  bool
	dnsAt    time.Duration
	firstUse bool
}

// DNHunter is one assembled single-threaded pipeline instance. Not safe
// for concurrent use. It remains the building block the sharded Engine
// runs one of per shard; new code should prefer Engine, which adds
// context cancellation, error returns, and parallelism.
type DNHunter struct {
	cfg    Config
	res    *resolver.Resolver
	table  *flows.Table
	db     *flowdb.DB
	parser layers.Parser
	dnsMsg dnswire.Message
	// tags holds the pending label of every live flow, indexed by the flow
	// table's slot handle — a dense slice instead of a keyed map, so the
	// tag attach/detach pair per flow costs two array stores.
	tags []tag
	// addrs is the reusable answer-address scratch for handleDNS.
	addrs []netip.Addr
	stats Stats
}

// New assembles a pipeline from cfg.
func New(cfg Config) *DNHunter {
	h := &DNHunter{
		cfg: cfg,
		res: resolver.New(cfg.Resolver),
		db:  cfg.DB,
	}
	if h.db == nil {
		h.db = flowdb.New()
	}
	// The intern table deduplicates decoded FQDN strings; it is owned by
	// this pipeline instance, so in a sharded engine it is per shard.
	h.dnsMsg.SetInterner(dnswire.NewInterner(0))
	fcfg := cfg.Flows
	fcfg.OnRecord = h.onRecord
	h.table = flows.NewTable(fcfg)
	return h
}

// DB returns the labeled flows database.
func (h *DNHunter) DB() *flowdb.DB { return h.db }

// Resolver exposes the cache replica (for diagnostics and experiments).
func (h *DNHunter) Resolver() *resolver.Resolver { return h.res }

// Stats snapshots the pipeline counters.
func (h *DNHunter) Stats() Stats {
	s := h.stats
	s.Parser = h.parser.Stats
	s.Resolver = h.res.Stats()
	s.Table = h.table.Stats()
	return s
}

// Run drains the packet source through the pipeline and flushes remaining
// flows at EOF.
func (h *DNHunter) Run(src netio.PacketSource) error {
	for {
		pkt, err := src.Next()
		if err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		h.HandlePacket(pkt)
	}
	h.Close()
	return nil
}

// HandlePacket feeds one packet through the pipeline (streaming use).
//
//dnhunter:hotpath
func (h *DNHunter) HandlePacket(pkt netio.Packet) {
	info, err := h.parser.Parse(pkt.Data)
	if err != nil {
		// Malformed and unhandled frames are counted by the parser.
		return
	}
	h.handleParsed(info, pkt.Timestamp)
}

// handleParsed feeds one already-decoded packet through the pipeline.
func (h *DNHunter) handleParsed(info *layers.Decoded, at time.Duration) {
	if info.HasUDP && (info.SrcPort == 53 || info.DstPort == 53) {
		h.handleDNSPayload(info.DstIP, info.Payload, at)
		return
	}
	h.table.Add(info, at, h.onNewFlow)
}

// handleOrientedFlow feeds one pre-routed flow entry through the pipeline.
// The shard workers use it directly: the Engine's dispatcher owns the
// parser and the orientation replica, so shards skip both the parse and
// the orient step (and keep zero parser stats of their own).
func (h *DNHunter) handleOrientedFlow(e *shardEntry, payload []byte) {
	p := flows.OrientedPacket{
		Key: e.key, C2S: e.c2s, Hash: e.hash, TCP: e.tcp, Flags: e.flags, Payload: payload,
	}
	h.table.AddOriented(&p, e.at, h.onNewFlow)
}

// expireFlow expires one flow the dispatcher's tracker declared idle. The
// sharded Engine delivers these in-band, so expiry happens at the same
// trace times (and on the same flows) on every shard as it would in a
// single-threaded run, where the table's own recency list drives FlushIdle.
func (h *DNHunter) expireFlow(key flows.Key, hash uint64) {
	h.table.ExpireFlow(key, hash)
}

// Close flushes all in-flight flows (end of capture).
func (h *DNHunter) Close() {
	h.table.FlushAll()
}

// handleDNSPayload decodes a DNS payload and inserts responses into the
// resolver. client is the packet's destination address: a response travels
// server → client, so the monitored client is the destination.
func (h *DNHunter) handleDNSPayload(client netip.Addr, payload []byte, at time.Duration) {
	if err := h.dnsMsg.Unpack(payload); err != nil {
		h.stats.DNSMalformed++
		return
	}
	if !h.dnsMsg.Header.Response {
		return // queries carry no answer list
	}
	fqdn := h.dnsMsg.QueriedName()
	addrs := h.dnsMsg.AppendAnswerAddrs(h.addrs[:0])
	h.addrs = addrs
	if fqdn == "" || len(addrs) == 0 {
		h.stats.DNSResponsesEmpty++
		return
	}
	h.stats.DNSResponses++
	h.res.Insert(client, fqdn, addrs, at)
	if h.cfg.OnDNSResponse != nil {
		h.cfg.OnDNSResponse(DNSEvent{At: at, Client: client, FQDN: fqdn, NumAddrs: len(addrs), Vantage: h.cfg.Vantage})
	}
}

// onNewFlow is the pre-flow tagging hook: label the 5-tuple the moment its
// first packet appears. The tag parks in the dense tags slice under the
// flow's table handle until onRecord collects it.
func (h *DNHunter) onNewFlow(key flows.Key, at time.Duration, sawSYN bool, hd flows.Handle) {
	var tg tag
	if e, ok := h.res.LookupEntry(key.ClientIP, key.ServerIP); ok {
		tg = tag{label: e.FQDN, hit: true, preFlow: sawSYN, dnsAt: e.At}
		if !e.Used {
			e.Used = true
			tg.firstUse = true
			h.stats.UsedEntries++
		}
	}
	for int(hd) >= len(h.tags) {
		h.tags = append(h.tags, tag{})
	}
	h.tags[hd] = tg
	if h.cfg.OnTag != nil {
		h.cfg.OnTag(TagEvent{
			Key: key, At: at, Label: tg.label, Hit: tg.hit, SYN: sawSYN,
			PreDNS: at - tg.dnsAt, Vantage: h.cfg.Vantage,
		})
	}
}

// onRecord receives finished flows from the table and emits labeled flows.
func (h *DNHunter) onRecord(r flows.Record, hd flows.Handle) {
	tg := h.tags[hd]
	h.tags[hd] = tag{} // release the label string with the handle
	lf := flowdb.LabeledFlow{
		Record:  r,
		Label:   tg.label,
		Labeled: tg.hit,
		PreFlow: tg.preFlow,
		Vantage: h.cfg.Vantage,
	}
	if tg.hit {
		lf.DNSDelay = r.Start - tg.dnsAt
		lf.FirstAfterDNS = tg.firstUse
	}
	if h.cfg.Truth != nil {
		lf.Truth = h.cfg.Truth(r.Key)
	}
	h.stats.Flows++
	if tg.hit {
		h.stats.LabeledFlows++
	}
	if !h.cfg.DiscardDB {
		h.db.Add(lf)
	}
	if h.cfg.OnFlow != nil {
		h.cfg.OnFlow(lf)
	}
}

// ErrStopped is returned by streaming helpers when a consumer aborts.
var ErrStopped = errors.New("core: stopped")
