package core

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/flows"
	"repro/internal/layers"
	"repro/internal/netio"
	"repro/internal/resolver"
)

var (
	clientA = netip.MustParseAddr("10.0.0.1")
	clientB = netip.MustParseAddr("10.0.0.2")
	ldns    = netip.MustParseAddr("10.0.0.53")
	srv1    = netip.MustParseAddr("203.0.113.10")
	srv2    = netip.MustParseAddr("203.0.113.20")
)

// traceBuilder assembles an in-memory packet trace.
type traceBuilder struct {
	t    *testing.T
	b    layers.Builder
	pkts []netio.Packet
}

func (tb *traceBuilder) add(at time.Duration, frame []byte, err error) {
	tb.t.Helper()
	if err != nil {
		tb.t.Fatal(err)
	}
	tb.pkts = append(tb.pkts, netio.Packet{Timestamp: at, Data: append([]byte(nil), frame...)})
}

// dnsResponse emits a response from the LDNS to client for fqdn -> addrs.
func (tb *traceBuilder) dnsResponse(at time.Duration, client netip.Addr, fqdn string, addrs ...netip.Addr) {
	tb.t.Helper()
	var recs []dnswire.Record
	for _, a := range addrs {
		typ := dnswire.TypeA
		if a.Is6() && !a.Is4In6() {
			typ = dnswire.TypeAAAA
		}
		recs = append(recs, dnswire.Record{Name: fqdn, Type: typ, TTL: 60, Addr: a})
	}
	msg := dnswire.NewResponse(4242, fqdn, dnswire.TypeA, recs)
	raw, err := msg.Pack(nil)
	if err != nil {
		tb.t.Fatal(err)
	}
	frame, err := tb.b.UDPFrame(ldns, client, 53, 40053, raw)
	tb.add(at, frame, err)
}

// httpFlow emits a minimal TCP connection from client to server with an
// HTTP request.
func (tb *traceBuilder) httpFlow(at time.Duration, client, server netip.Addr, cport uint16, host string) {
	tb.t.Helper()
	f, err := tb.b.TCPFrame(client, server, cport, 80, layers.TCPSyn, 0, 0, nil)
	tb.add(at, f, err)
	f, err = tb.b.TCPFrame(server, client, 80, cport, layers.TCPSyn|layers.TCPAck, 0, 1, nil)
	tb.add(at+time.Millisecond, f, err)
	req := []byte("GET / HTTP/1.1\r\nHost: " + host + "\r\n\r\n")
	f, err = tb.b.TCPFrame(client, server, cport, 80, layers.TCPAck|layers.TCPPsh, 1, 1, req)
	tb.add(at+2*time.Millisecond, f, err)
	f, err = tb.b.TCPFrame(client, server, cport, 80, layers.TCPFin|layers.TCPAck, 2, 1, nil)
	tb.add(at+3*time.Millisecond, f, err)
	f, err = tb.b.TCPFrame(server, client, 80, cport, layers.TCPFin|layers.TCPAck, 1, 3, nil)
	tb.add(at+4*time.Millisecond, f, err)
}

func (tb *traceBuilder) source() netio.PacketSource {
	return netio.NewSlicePacketSource(tb.pkts)
}

func TestEndToEndLabeling(t *testing.T) {
	tb := &traceBuilder{t: t}
	tb.dnsResponse(0, clientA, "www.example.com", srv1, srv2)
	tb.httpFlow(500*time.Millisecond, clientA, srv1, 40000, "www.example.com")
	tb.httpFlow(700*time.Millisecond, clientA, srv2, 40001, "www.example.com")

	h := New(Config{Resolver: resolverCfg()})
	if err := h.Run(tb.source()); err != nil {
		t.Fatal(err)
	}
	db := h.DB()
	if db.Len() != 2 {
		t.Fatalf("flows = %d", db.Len())
	}
	for _, f := range db.All() {
		if !f.Labeled || f.Label != "www.example.com" {
			t.Fatalf("flow not labeled: %+v", f)
		}
		if !f.PreFlow {
			t.Fatal("label should be available at SYN time")
		}
	}
	st := h.Stats()
	if st.DNSResponses != 1 || st.LabeledFlows != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientScopedLabeling(t *testing.T) {
	tb := &traceBuilder{t: t}
	tb.dnsResponse(0, clientA, "a.example.com", srv1)
	tb.dnsResponse(time.Millisecond, clientB, "b.example.com", srv1)
	tb.httpFlow(time.Second, clientA, srv1, 40000, "a.example.com")
	tb.httpFlow(time.Second, clientB, srv1, 41000, "b.example.com")

	h := New(Config{Resolver: resolverCfg()})
	if err := h.Run(tb.source()); err != nil {
		t.Fatal(err)
	}
	labels := map[netip.Addr]string{}
	for _, f := range h.DB().All() {
		labels[f.Key.ClientIP] = f.Label
	}
	if labels[clientA] != "a.example.com" || labels[clientB] != "b.example.com" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestMissWithoutDNS(t *testing.T) {
	tb := &traceBuilder{t: t}
	tb.httpFlow(0, clientA, srv1, 40000, "nodns.example.com")
	h := New(Config{Resolver: resolverCfg()})
	if err := h.Run(tb.source()); err != nil {
		t.Fatal(err)
	}
	f := h.DB().All()[0]
	if f.Labeled || f.Label != "" {
		t.Fatalf("unexpected label: %+v", f)
	}
}

func TestFirstFlowDelayMeasured(t *testing.T) {
	tb := &traceBuilder{t: t}
	tb.dnsResponse(time.Second, clientA, "www.example.com", srv1)
	tb.httpFlow(time.Second+300*time.Millisecond, clientA, srv1, 40000, "www.example.com")
	tb.httpFlow(5*time.Second, clientA, srv1, 40007, "www.example.com")

	h := New(Config{Resolver: resolverCfg()})
	if err := h.Run(tb.source()); err != nil {
		t.Fatal(err)
	}
	var first, second *struct {
		delay time.Duration
		fresh bool
	}
	for _, f := range h.DB().All() {
		v := &struct {
			delay time.Duration
			fresh bool
		}{f.DNSDelay, f.FirstAfterDNS}
		if f.Start < 2*time.Second {
			first = v
		} else {
			second = v
		}
	}
	if first == nil || !first.fresh || first.delay != 300*time.Millisecond {
		t.Fatalf("first flow: %+v", first)
	}
	if second == nil || second.fresh {
		t.Fatalf("second flow should not be FirstAfterDNS: %+v", second)
	}
	if second.delay != 4*time.Second {
		t.Fatalf("second delay = %v", second.delay)
	}
}

func TestUselessDNSCounted(t *testing.T) {
	tb := &traceBuilder{t: t}
	tb.dnsResponse(0, clientA, "used.example.com", srv1)
	tb.dnsResponse(0, clientA, "prefetch.example.com", srv2) // never followed
	tb.httpFlow(time.Second, clientA, srv1, 40000, "used.example.com")

	h := New(Config{Resolver: resolverCfg()})
	if err := h.Run(tb.source()); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.DNSResponses != 2 || st.UsedEntries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if f := st.UselessDNSFraction(); f != 0.5 {
		t.Fatalf("useless = %v", f)
	}
}

func TestOnTagPolicyHookAtSYN(t *testing.T) {
	tb := &traceBuilder{t: t}
	tb.dnsResponse(0, clientA, "games.zynga.com", srv1)
	tb.httpFlow(time.Second, clientA, srv1, 40000, "games.zynga.com")

	policy := NewPolicy(
		Rule{Pattern: "zynga.com", Action: ActionBlock},
		Rule{Pattern: "dropbox.com", Action: ActionPrioritize},
	)
	var events []TagEvent
	var actions []Action
	h := New(Config{
		Resolver: resolverCfg(),
		OnTag: func(e TagEvent) {
			events = append(events, e)
			actions = append(actions, policy.Decide(e.Label))
		},
	})
	if err := h.Run(tb.source()); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[0]
	if !e.Hit || e.Label != "games.zynga.com" || !e.SYN {
		t.Fatalf("event = %+v", e)
	}
	if actions[0] != ActionBlock {
		t.Fatalf("action = %v", actions[0])
	}
}

func TestDNSEventCallback(t *testing.T) {
	tb := &traceBuilder{t: t}
	tb.dnsResponse(time.Minute, clientA, "x.example.com", srv1, srv2)
	var got []DNSEvent
	h := New(Config{Resolver: resolverCfg(), OnDNSResponse: func(e DNSEvent) { got = append(got, e) }})
	if err := h.Run(tb.source()); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].FQDN != "x.example.com" || got[0].NumAddrs != 2 || got[0].Client != clientA {
		t.Fatalf("events = %+v", got)
	}
}

func TestMalformedDNSCounted(t *testing.T) {
	tb := &traceBuilder{t: t}
	frame, err := tb.b.UDPFrame(ldns, clientA, 53, 40053, []byte{1, 2, 3})
	tb.add(0, frame, err)
	h := New(Config{Resolver: resolverCfg()})
	if err := h.Run(tb.source()); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.DNSMalformed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDNSQueryIgnored(t *testing.T) {
	tb := &traceBuilder{t: t}
	q := dnswire.NewQuery(7, "x.example.com", dnswire.TypeA)
	raw, err := q.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := tb.b.UDPFrame(clientA, ldns, 40053, 53, raw)
	tb.add(0, frame, err)
	h := New(Config{Resolver: resolverCfg()})
	if err := h.Run(tb.source()); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.DNSResponses != 0 || st.DNSMalformed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTruthSidecar(t *testing.T) {
	tb := &traceBuilder{t: t}
	tb.httpFlow(0, clientA, srv1, 40000, "h.example.com")
	h := New(Config{
		Resolver: resolverCfg(),
		Truth:    func(k flows.Key) string { return "truth.example.com" },
	})
	if err := h.Run(tb.source()); err != nil {
		t.Fatal(err)
	}
	if got := h.DB().All()[0].Truth; got != "truth.example.com" {
		t.Fatalf("truth = %q", got)
	}
}

func resolverCfg() resolver.Config {
	return resolver.Config{ClistSize: 1024}
}
