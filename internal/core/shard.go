package core

// Sharded execution (Shards > 1): a single dispatcher goroutine block-reads
// frames, parses them, extracts and orients the flow key, and hands each
// shard pre-framed (key, direction, flags, payload) entries over a bounded
// lock-free SPSC ring (see ring.go). Each shard runs its own
// single-threaded DNHunter (resolver Clist, flow table, tag slice).
// The paper suggests exactly this partitioning for parallel deployments
// (§3.1.1): all state is keyed by client, so clients can be split across
// independent pipelines with no shared mutable state.
//
// Equivalence with the single-threaded pipeline is exact, not approximate,
// because the dispatcher mirrors every piece of global state that decides
// where a packet must go (flows.Tracker — the same swiss index and recency
// list the Table itself runs on):
//
//   - Flow orientation. The tracker replicates the flow table's key set
//     and applies the table's own orientation rules (existing entry wins,
//     then SYN, then client networks, then first-sender), so each packet
//     is routed to the shard of the flow's eventual client — where that
//     client's resolver entries live. The oriented key and direction
//     travel with the entry, so shard tables skip orient entirely
//     (flows.AddOriented).
//   - Flow lifetime. The tracker removes entries on the same transitions
//     the table does (RST, second FIN), so a reused 5-tuple re-orients at
//     the same packet in both modes.
//   - Idle expiry. Shard tables run with the amortized auto-sweep
//     disabled; at the exact trace times a single-threaded table would
//     sweep, the dispatcher computes the expired set centrally
//     (Tracker.ExpireIdle walks the recency list over the global packet
//     order — FlushIdle's exact rule) and sends each owning shard an
//     in-band per-flow expiry command, so idle flows are expired (and
//     split into the same records) regardless of shard count. Shards do
//     O(1) work per expired flow; nobody scans active flows.
//
// The one intentional deviation: each shard has its own Clist of the
// configured size, so aggregate eviction behaviour differs from one global
// Clist once a shard overflows. Size the Clist for the per-shard client
// population (the paper sizes it for ~1 hour of responses).

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flowdb"
	"repro/internal/flows"
	"repro/internal/layers"
	"repro/internal/netio"
)

// defaultBatch is the dispatcher→shard hand-off granularity (entries per
// ring slot). Large enough to amortize the publish/consume hand-off, small
// enough to keep shards busy on short traces.
const defaultBatch = 512

// ringDepth is the number of slots per shard ring: enough in-flight
// batches that a briefly stalled shard does not back-pressure the
// dispatcher, few enough that total slab memory stays modest.
const ringDepth = 8

// slotBufPerEntry sizes each slot's payload arena (batch × this many
// bytes). A slot publishes early rather than outgrow its arena, so slot
// storage is allocated once; only a single payload larger than the whole
// arena forces a (one-time, kept) growth.
const slotBufPerEntry = 128

// blockLen is how many packets the reader stage requests per ReadBlock.
const blockLen = 256

// shardWorker owns one pipeline shard.
type shardWorker struct {
	h    *DNHunter
	ring *spscRing
}

// run drains ring slots until the ring closes, then flushes the shard's
// flow table. When abort is set (cancellation) it keeps consuming so the
// dispatcher never blocks on a full ring, but stops processing.
//
//dnhunter:hotpath
func (w *shardWorker) run(wg *sync.WaitGroup, abort *atomic.Bool) {
	defer wg.Done()
	for {
		s, ok := w.ring.consume()
		if !ok {
			break
		}
		if !abort.Load() {
			for i := range s.entries {
				e := &s.entries[i]
				switch e.kind {
				case entryFlow:
					w.h.handleOrientedFlow(e, s.payload(e))
				case entryDNS:
					w.h.handleDNSPayload(e.key.ClientIP, s.payload(e), e.at)
				case entryExpire:
					w.h.expireFlow(e.key, e.hash)
				}
			}
		}
		w.ring.release()
	}
	if !abort.Load() {
		w.h.Close()
	}
}

// dispatcher parses, routes, batches, and sweeps.
type dispatcher struct {
	workers []*shardWorker
	parser  layers.Parser
	rings   []*spscRing
	batch   int
	bufMax  int

	// tracker mirrors the shard tables' flow lifecycle over the global
	// packet order; assign/expire are its prebound callbacks (bound once so
	// the per-packet Route call passes a plain func value, no closure).
	tracker   *flows.Tracker
	assign    func(netip.Addr) uint32
	expire    func(flows.Key, uint64, uint32)
	idle      time.Duration
	sweepMark time.Duration

	// shed, when non-nil, switches enqueue from blocking back-pressure to
	// overload shedding: entries bound for a full ring are dropped (and
	// counted per shard) instead of stalling the reader. Serve mode sets
	// it; batch runs keep the blocking behaviour. Expiry commands and
	// flow-closing segments are never shed — see enqueue.
	shed *ShedStats
}

// runSharded is the Shards>1 path.
func (e *Engine) runSharded(ctx context.Context, src netio.PacketSource) (*Result, error) {
	n := e.cfg.Shards
	sink := SyncSink(e.cfg.Sink)

	bufCap := e.cfg.Batch * slotBufPerEntry
	seed := rand.Uint64() | 1 // shared tracker/table hash seed, never zero
	workers := make([]*shardWorker, n)
	for i := range workers {
		fcfg := e.cfg.Flows
		fcfg.DisableAutoSweep = true // dispatcher drives expiry via tracker commands
		fcfg.OnRecord = nil          // engine-managed; see EngineConfig.Flows
		fcfg.Seed = seed
		workers[i] = &shardWorker{
			h: New(sinkConfig(Config{
				Resolver:  e.cfg.Resolver,
				Flows:     fcfg,
				Truth:     e.cfg.Truth,
				Vantage:   e.cfg.Vantage,
				DiscardDB: e.cfg.DiscardDB,
			}, sink)),
			ring: newRing(ringDepth, e.cfg.Batch, bufCap),
		}
	}
	if e.cfg.tapPipelines != nil {
		// Serve-mode seam: expose the shard pipelines (checkpoint restore
		// writes resolver state here) before the first packet is dispatched.
		hs := make([]*DNHunter, n)
		for i, w := range workers {
			hs[i] = w.h
		}
		e.cfg.tapPipelines(hs)
	}
	var (
		wg    sync.WaitGroup
		abort atomic.Bool
	)
	for _, w := range workers {
		wg.Add(1)
		go w.run(&wg, &abort)
	}

	// One shared hash seed: the tracker computes each flow key's hash once
	// at dispatch and ships it; shard tables (built with the same seed via
	// fcfg.Seed above) use it directly instead of re-hashing per packet.
	tracker := flows.NewTracker(e.cfg.Flows.ClientNets, e.cfg.Flows.IdleTimeout, seed)
	d := &dispatcher{
		workers: workers,
		rings:   make([]*spscRing, n),
		batch:   e.cfg.Batch,
		bufMax:  bufCap,
		tracker: tracker,
		idle:    tracker.IdleTimeout(), // lockstep with flows.NewTable's default
	}
	d.assign = d.shardOf
	d.expire = d.enqueueExpire
	for i, w := range workers {
		d.rings[i] = w.ring
	}
	if e.cfg.Shed != nil {
		e.cfg.Shed.init(n)
		d.shed = e.cfg.Shed
	}
	if e.cfg.tapRings != nil {
		e.cfg.tapRings(d.rings)
	}

	var runErr error
	done := ctx.Done()
	block := make([]netio.Packet, blockLen)
	fetch := newBlockFetcher(src)
	for processed := 0; ; {
		if processed&^(yieldEvery-1) != 0 {
			processed &= yieldEvery - 1
			runtime.Gosched() // see yieldEvery
		}
		select {
		case <-done:
			runErr = ctx.Err()
		default:
		}
		if runErr != nil {
			break
		}
		bn, err := fetch.read(block)
		for i := 0; i < bn; i++ {
			d.dispatch(block[i])
		}
		processed += bn
		if err != nil {
			if err != io.EOF {
				runErr = fmt.Errorf("core: packet source: %w", err)
			}
			break
		}
	}
	if runErr != nil {
		abort.Store(true)
	} else {
		for _, r := range d.rings {
			r.publish() // final partial slots
		}
	}
	for _, r := range d.rings {
		r.close()
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}

	// Merge: per-shard databases in shard order (deterministic for a fixed
	// shard count), counters summed.
	db := flowdb.New()
	dbs := make([]*flowdb.DB, n)
	var st Stats
	st.Parser = d.parser.Stats
	for i, w := range workers {
		dbs[i] = w.h.DB()
		st.Add(w.h.Stats())
	}
	db.Merge(dbs...)
	return &Result{DB: db, Stats: st}, nil
}

// shardOfAddr hashes a client address onto one of n shards with FNV-1a:
// deterministic across runs and processes, so a fixed shard count always
// produces the same client partitioning. Serve-mode checkpoint restore
// relies on this to route snapshot entries to the shard that owns the
// client — even when the shard count changed across the restart.
func shardOfAddr(client netip.Addr, n int) uint32 {
	b := client.As16()
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return uint32(h % uint64(n))
}

// shardOf routes a client address onto this dispatcher's shards.
func (d *dispatcher) shardOf(client netip.Addr) uint32 {
	return shardOfAddr(client, len(d.workers))
}

// dispatch parses one frame and routes it. Mirrors DNHunter.HandlePacket's
// branching exactly: parse failures are only counted, UDP port-53 traffic
// goes to the DNS path, everything else to the flow path.
//
//dnhunter:hotpath
func (d *dispatcher) dispatch(pkt netio.Packet) {
	dec, err := d.parser.Parse(pkt.Data)
	if err != nil {
		return
	}
	at := pkt.Timestamp
	if dec.HasUDP && (dec.SrcPort == 53 || dec.DstPort == 53) {
		// handleDNS attributes every response to DstIP, so responses MUST
		// land on shardOf(DstIP) — regardless of which port is 53 — or the
		// resolver entry would be invisible to that client's flows. Peek at
		// the header QR bit (byte 2, MSB) to spot responses; queries and
		// runts are dropped (or merely counted) by the shard, so for them
		// any choice preserves equivalence and SrcIP spreads the load of
		// unpacking queries across the clients that sent them.
		client := dec.SrcIP
		if len(dec.Payload) >= 3 && dec.Payload[2]&0x80 != 0 {
			client = dec.DstIP
		}
		d.enqueue(int(d.shardOf(client)), shardEntry{
			at:   at,
			kind: entryDNS,
			key:  flows.Key{ClientIP: dec.DstIP},
		}, dec.Payload)
		return
	}
	if !dec.HasTCP && !dec.HasUDP {
		return // the flow table ignores these; don't ship them
	}
	// The tracker mirrors the table's orientation and entry lifecycle, so
	// the oriented key/direction ship with the entry and the shard's table
	// skips both the reverse probe and the orientation rules.
	key, c2s, kh, sh := d.tracker.Route(dec, at, d.assign)
	d.enqueue(int(sh), shardEntry{
		at:    at,
		kind:  entryFlow,
		key:   key,
		hash:  kh,
		c2s:   c2s,
		tcp:   dec.HasTCP,
		flags: dec.TCPFlags,
	}, dec.Payload)
	// Amortized sweep, after the packet, at the same trace times a
	// single-threaded table would sweep inside Add.
	if at-d.sweepMark >= d.idle {
		d.sweepMark = at
		d.tracker.ExpireIdle(at, d.expire)
	}
}

// enqueueExpire ships one centrally-computed idle expiry to the owning
// shard, in-band with its packet stream, hash included so the shard's
// table probe skips hashKey just like the entryFlow path.
func (d *dispatcher) enqueueExpire(key flows.Key, hash uint64, shard uint32) {
	d.enqueue(int(shard), shardEntry{kind: entryExpire, key: key, hash: hash}, nil)
}

// enqueue appends an entry (copying its payload into the slot arena — the
// parser and block reader beneath it reuse their buffers) to the shard's
// current ring slot, publishing when the slot fills. In the default
// (batch) mode, publishing may block on ring wraparound: that is the
// back-pressure that bounds dispatcher run-ahead. In shed mode the
// blocking acquire is replaced by trySlot and the entry is dropped (and
// counted) when the ring is full — a live reader must never stall on a
// slow shard. Three entry classes are still never shed, because dropping
// them would corrupt state rather than degrade coverage: expiry commands
// (auto-sweep is disabled on shard tables, so a dropped expiry leaks the
// flow entry until drain) and RST/FIN segments (the tracker has already
// forgotten the flow, so the shard table must see the close too). Both
// are rare, so the bounded wait they may incur does not stall the reader
// at packet rate.
func (d *dispatcher) enqueue(sh int, e shardEntry, payload []byte) {
	r := d.rings[sh]
	sheddable := d.shed != nil && e.kind != entryExpire &&
		(!e.tcp || e.flags&(layers.TCPRst|layers.TCPFin) == 0)
	s, ok := d.acquire(r, sheddable)
	if !ok {
		d.shed.drop(sh, e.kind, len(payload))
		return
	}
	if len(payload) > 0 {
		// Publish before an append that would outgrow the arena, so slot
		// storage really is allocated once (a single payload larger than
		// the whole arena still has to grow it — once, kept thereafter).
		if len(s.buf)+len(payload) > d.bufMax && len(s.entries) > 0 {
			r.publish()
			if s, ok = d.acquire(r, sheddable); !ok {
				d.shed.drop(sh, e.kind, len(payload))
				return
			}
		}
		e.payOff = uint32(len(s.buf))
		e.payLen = uint32(len(payload))
		s.buf = append(s.buf, payload...)
	}
	s.entries = append(s.entries, e)
	if len(s.entries) >= d.batch {
		r.publish()
	}
}

// acquire obtains the shard's current fill slot: non-blocking (ok=false
// on a full ring) for sheddable entries, blocking otherwise.
func (d *dispatcher) acquire(r *spscRing, sheddable bool) (*ringSlot, bool) {
	if sheddable {
		return r.trySlot()
	}
	return r.slot(), true
}
