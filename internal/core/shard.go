package core

// Sharded execution (Shards > 1): a single dispatcher goroutine parses
// frames and hashes them by client address onto per-shard workers, each
// running its own single-threaded DNHunter (resolver Clist, flow table,
// pending-tag map). The paper suggests exactly this partitioning for
// parallel deployments (§3.1.1): all state is keyed by client, so clients
// can be split across independent pipelines with no shared mutable state.
//
// Equivalence with the single-threaded pipeline is exact, not approximate,
// because the dispatcher mirrors every piece of global state that decides
// where a packet must go:
//
//   - Flow orientation. The dispatcher keeps a replica of the flow table's
//     key set and applies the table's own orientation rules (existing entry
//     wins, then SYN, then client networks, then first-sender), so each
//     packet is routed to the shard of the flow's eventual client — where
//     that client's resolver entries live.
//   - Flow lifetime. The replica removes entries on the same transitions
//     the table does (RST, second FIN), so a reused 5-tuple re-orients at
//     the same packet in both modes.
//   - Idle sweeps. Shard tables run with the amortized auto-sweep disabled;
//     the dispatcher broadcasts in-band sweep markers at the exact trace
//     times a single-threaded table would sweep, and expires its own
//     replica entries with the same rule, so idle flows are expired (and
//     split into the same records) regardless of shard count.
//
// The one intentional deviation: each shard has its own Clist of the
// configured size, so aggregate eviction behaviour differs from one global
// Clist once a shard overflows. Size the Clist for the per-shard client
// population (the paper sizes it for ~1 hour of responses).

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flowdb"
	"repro/internal/flows"
	"repro/internal/layers"
	"repro/internal/netio"
)

// defaultBatch is the dispatcher→shard hand-off granularity. Large enough
// to amortize channel overhead, small enough to keep shards busy on short
// traces.
const defaultBatch = 512

// shardItem is one unit of shard work: a decoded packet or a sweep marker.
type shardItem struct {
	at    time.Duration
	sweep bool
	dec   layers.Decoded
	// payOff/payLen locate the copied payload in the batch buffer; the
	// dec.Payload slice is fixed up at flush time because the buffer may
	// reallocate while the batch fills.
	payOff, payLen int
}

// shardBatch carries items plus the arena holding their payload copies.
// Batches cycle through a pool: dispatcher fills → worker drains → pool.
type shardBatch struct {
	items []shardItem
	buf   []byte
}

// reset empties the batch for reuse, keeping both backing arrays.
func (b *shardBatch) reset() {
	b.items = b.items[:0]
	b.buf = b.buf[:0]
}

// shardWorker owns one pipeline shard.
type shardWorker struct {
	h    *DNHunter
	ch   chan *shardBatch
	pool *sync.Pool
}

// run drains batches until the channel closes, then flushes the shard's
// flow table. When abort is set (cancellation) it keeps draining so the
// dispatcher never blocks, but stops processing.
func (w *shardWorker) run(wg *sync.WaitGroup, abort *atomic.Bool) {
	defer wg.Done()
	for b := range w.ch {
		if !abort.Load() {
			for i := range b.items {
				it := &b.items[i]
				if it.sweep {
					w.h.sweepIdle(it.at)
					continue
				}
				w.h.handleParsed(&it.dec, it.at)
			}
		}
		b.reset()
		w.pool.Put(b)
	}
	if !abort.Load() {
		w.h.Close()
	}
}

// dispEntry mirrors one live flow-table entry: which shard owns it, when
// it last saw traffic, and whether one FIN has been seen.
type dispEntry struct {
	shard   int
	end     time.Duration
	closing bool
}

// dispatcher parses, routes, batches, and sweeps.
type dispatcher struct {
	workers []*shardWorker
	parser  layers.Parser
	out     []*shardBatch
	pool    *sync.Pool
	batch   int

	entries    map[flows.Key]*dispEntry
	clientNets []netip.Prefix
	idle       time.Duration
	sweepMark  time.Duration

	// freeEntries recycles dispEntry structs removed from the replica.
	freeEntries []*dispEntry
}

// runSharded is the Shards>1 path.
func (e *Engine) runSharded(ctx context.Context, src netio.PacketSource) (*Result, error) {
	n := e.cfg.Shards
	sink := SyncSink(e.cfg.Sink)

	pool := &sync.Pool{New: func() any {
		return &shardBatch{items: make([]shardItem, 0, e.cfg.Batch)}
	}}
	workers := make([]*shardWorker, n)
	for i := range workers {
		fcfg := e.cfg.Flows
		fcfg.DisableAutoSweep = true // dispatcher drives sweeps via markers
		fcfg.OnRecord = nil          // engine-managed; see EngineConfig.Flows
		workers[i] = &shardWorker{
			h: New(sinkConfig(Config{
				Resolver: e.cfg.Resolver,
				Flows:    fcfg,
				Truth:    e.cfg.Truth,
				Vantage:  e.cfg.Vantage,
			}, sink)),
			ch:   make(chan *shardBatch, 4),
			pool: pool,
		}
	}
	var (
		wg    sync.WaitGroup
		abort atomic.Bool
	)
	for _, w := range workers {
		wg.Add(1)
		go w.run(&wg, &abort)
	}

	idle := e.cfg.Flows.IdleTimeout
	if idle <= 0 {
		idle = 5 * time.Minute // keep in lockstep with flows.NewTable
	}
	d := &dispatcher{
		workers:    workers,
		out:        make([]*shardBatch, n),
		pool:       pool,
		batch:      e.cfg.Batch,
		entries:    make(map[flows.Key]*dispEntry),
		clientNets: e.cfg.Flows.ClientNets,
		idle:       idle,
	}
	for i := range d.out {
		d.out[i] = pool.Get().(*shardBatch)
	}

	var runErr error
	done := ctx.Done()
	for i := 0; ; i++ {
		if i&(ctxCheckEvery-1) == 0 {
			if i&(yieldEvery-1) == 0 {
				runtime.Gosched() // see yieldEvery
			}
			select {
			case <-done:
				runErr = ctx.Err()
			default:
			}
			if runErr != nil {
				break
			}
		}
		pkt, err := src.Next()
		if err != nil {
			if err != io.EOF {
				runErr = fmt.Errorf("core: packet source: %w", err)
			}
			break
		}
		d.dispatch(pkt)
	}
	if runErr != nil {
		abort.Store(true)
	} else {
		for sh := range d.out {
			d.flush(sh)
		}
	}
	for _, w := range workers {
		close(w.ch)
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}

	// Merge: per-shard databases in shard order (deterministic for a fixed
	// shard count), counters summed.
	db := flowdb.New()
	dbs := make([]*flowdb.DB, n)
	var st Stats
	st.Parser = d.parser.Stats
	for i, w := range workers {
		dbs[i] = w.h.DB()
		st.Add(w.h.Stats())
	}
	db.Merge(dbs...)
	return &Result{DB: db, Stats: st}, nil
}

// shardOf hashes a client address onto a shard with FNV-1a: deterministic
// across runs and processes, so a fixed shard count always produces the
// same client partitioning.
func (d *dispatcher) shardOf(client netip.Addr) int {
	b := client.As16()
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return int(h % uint64(len(d.workers)))
}

// dispatch parses one frame and routes it. Mirrors DNHunter.HandlePacket's
// branching exactly: parse failures are only counted, UDP port-53 traffic
// goes to the DNS path, everything else to the flow path.
func (d *dispatcher) dispatch(pkt netio.Packet) {
	dec, err := d.parser.Parse(pkt.Data)
	if err != nil {
		return
	}
	at := pkt.Timestamp
	if dec.HasUDP && (dec.SrcPort == 53 || dec.DstPort == 53) {
		// handleDNS attributes every response to DstIP, so responses MUST
		// land on shardOf(DstIP) — regardless of which port is 53 — or the
		// resolver entry would be invisible to that client's flows. Peek at
		// the header QR bit (byte 2, MSB) to spot responses; queries and
		// runts are dropped (or merely counted) by the shard, so for them
		// any choice preserves equivalence and SrcIP spreads the load of
		// unpacking queries across the clients that sent them.
		client := dec.SrcIP
		if len(dec.Payload) >= 3 && dec.Payload[2]&0x80 != 0 {
			client = dec.DstIP
		}
		d.enqueue(d.shardOf(client), dec, at)
		return
	}
	if !dec.HasTCP && !dec.HasUDP {
		return // the flow table ignores these; don't ship them
	}
	d.enqueue(d.routeFlow(dec, at), dec, at)
	// Amortized sweep, after the packet, at the same trace times a
	// single-threaded table would sweep inside Add.
	if at-d.sweepMark >= d.idle {
		d.sweepMark = at
		d.broadcastSweep(at)
	}
}

// routeFlow mirrors flows.Table.orient plus the table's entry lifecycle,
// returning the shard owning the packet's flow.
func (d *dispatcher) routeFlow(dec *layers.Decoded, at time.Duration) int {
	key := flows.Key{
		ClientIP: dec.SrcIP, ServerIP: dec.DstIP,
		ClientPort: dec.SrcPort, ServerPort: dec.DstPort,
		Proto: dec.Proto,
	}
	e, ok := d.entries[key]
	if !ok {
		rev := key.Reverse()
		if e, ok = d.entries[rev]; ok {
			key = rev
		}
	}
	if !ok {
		// New flow: same orientation rules as the table — a pure SYN marks
		// the sender as client, else the configured client networks, else
		// the first sender.
		if !(dec.HasTCP && dec.TCPFlags.Has(layers.TCPSyn) && !dec.TCPFlags.Has(layers.TCPAck)) && len(d.clientNets) > 0 {
			src := containsAddr(d.clientNets, dec.SrcIP)
			dst := containsAddr(d.clientNets, dec.DstIP)
			if dst && !src {
				key = key.Reverse()
			}
		}
		e = d.newEntry(d.shardOf(key.ClientIP))
		d.entries[key] = e
	}
	e.end = at
	if dec.HasTCP {
		// Mirror advanceTCP's finish transitions so a reused 5-tuple
		// re-orients at the same packet the table would re-create it.
		switch {
		case dec.TCPFlags.Has(layers.TCPRst):
			d.dropEntry(key, e)
		case dec.TCPFlags.Has(layers.TCPFin):
			if e.closing {
				d.dropEntry(key, e)
			} else {
				e.closing = true
			}
		}
	}
	return e.shard
}

// newEntry takes a replica entry from the free list or allocates one.
func (d *dispatcher) newEntry(shard int) *dispEntry {
	if n := len(d.freeEntries); n > 0 {
		e := d.freeEntries[n-1]
		d.freeEntries = d.freeEntries[:n-1]
		*e = dispEntry{shard: shard}
		return e
	}
	return &dispEntry{shard: shard}
}

// dropEntry removes a replica entry and recycles it.
func (d *dispatcher) dropEntry(key flows.Key, e *dispEntry) {
	delete(d.entries, key)
	d.freeEntries = append(d.freeEntries, e)
}

func containsAddr(nets []netip.Prefix, a netip.Addr) bool {
	for _, p := range nets {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// enqueue copies the decoded packet into the shard's pending batch. The
// payload is copied into the batch arena because the parser (and pcap
// reader beneath it) reuse their buffers on the next packet.
func (d *dispatcher) enqueue(sh int, dec *layers.Decoded, at time.Duration) {
	b := d.out[sh]
	it := shardItem{at: at, dec: *dec}
	it.dec.Payload = nil
	if len(dec.Payload) > 0 {
		it.payOff = len(b.buf)
		it.payLen = len(dec.Payload)
		b.buf = append(b.buf, dec.Payload...)
	}
	b.items = append(b.items, it)
	if len(b.items) >= d.batch {
		d.flush(sh)
	}
}

// broadcastSweep appends an in-band sweep marker to every shard's stream
// and expires the dispatcher's own flow replica with the table's rule.
func (d *dispatcher) broadcastSweep(now time.Duration) {
	for sh := range d.out {
		d.out[sh].items = append(d.out[sh].items, shardItem{at: now, sweep: true})
		if len(d.out[sh].items) >= d.batch {
			d.flush(sh)
		}
	}
	for key, e := range d.entries {
		if now-e.end >= d.idle {
			d.dropEntry(key, e)
		}
	}
}

// flush fixes up payload slices and hands the batch to the shard, taking a
// recycled batch from the pool for the next fill.
func (d *dispatcher) flush(sh int) {
	b := d.out[sh]
	if len(b.items) == 0 {
		return
	}
	for i := range b.items {
		it := &b.items[i]
		if it.payLen > 0 {
			it.dec.Payload = b.buf[it.payOff : it.payOff+it.payLen]
		}
	}
	d.workers[sh].ch <- b
	d.out[sh] = d.pool.Get().(*shardBatch)
}
