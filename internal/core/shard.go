package core

// Sharded execution (Shards > 1): dispatchers parse frames, extract and
// orient flow keys, and hand each shard pre-framed (key, direction, flags,
// payload-handle) entries over bounded lock-free SPSC rings (see ring.go).
// Each shard runs its own single-threaded DNHunter (resolver Clist, flow
// table, tag slice). The paper suggests exactly this partitioning for
// parallel deployments (§3.1.1): all state is keyed by client, so clients
// can be split across independent pipelines with no shared mutable state.
//
// With Readers == 1 the classic shape applies: one goroutine block-reads,
// parses, and dispatches. With Readers > 1 the same argument is applied
// once more, upstream: the parse itself is keyed by client too, so a thin
// stripe stage (see stripe.go) routes raw frames by a ~40-byte header peek
// onto R dispatcher partitions, each with its own parser and flow tracker,
// and every (reader, shard) pair gets its own SPSC ring — the MPSC
// hand-off is composed from R×S SPSC rings, no new lock-free structure.
//
// Equivalence with the single-threaded pipeline is exact, not approximate,
// because each dispatcher mirrors every piece of global state that decides
// where a packet must go (flows.Tracker — the same swiss index and recency
// list the Table itself runs on):
//
//   - Flow orientation. The tracker replicates the flow table's key set
//     and applies the table's own orientation rules (existing entry wins,
//     then SYN, then client networks, then first-sender), so each packet
//     is routed to the shard of the flow's eventual client — where that
//     client's resolver entries live. The oriented key and direction
//     travel with the entry, so shard tables skip orient entirely
//     (flows.AddOriented).
//   - Flow lifetime. The tracker removes entries on the same transitions
//     the table does (RST, second FIN), so a reused 5-tuple re-orients at
//     the same packet in both modes.
//   - Idle expiry. Shard tables run with the amortized auto-sweep
//     disabled; at the exact trace times a single-threaded table would
//     sweep, the expired set is computed centrally (Tracker.ExpireIdle
//     walks the recency list — FlushIdle's exact rule) and each owning
//     shard receives an in-band per-flow expiry command, so idle flows are
//     expired (and split into the same records) regardless of shard count.
//     With Readers > 1 the stripe owns the sweep schedule and the global
//     clock, broadcasting in-band sweep markers so every partition expires
//     at the same trace times (see stripe.go for the full argument).
//
// The intentional deviations: each shard has its own Clist of the
// configured size, so aggregate eviction behaviour differs from one global
// Clist once a shard overflows (size it for the per-shard population); and
// with Readers > 1, flows whose two endpoints are both inside or both
// outside the client networks ride a symmetric fallback stripe, so their
// ordering against either endpoint's DNS stream is best-effort.

import (
	"context"
	"fmt"
	"io"
	"math/bits"
	"math/rand/v2"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flowdb"
	"repro/internal/flows"
	"repro/internal/layers"
	"repro/internal/netio"
)

// defaultBatch is the dispatcher→shard hand-off granularity (entries per
// ring slot). Large enough to amortize the publish/consume hand-off, small
// enough to keep shards busy on short traces.
const defaultBatch = 512

// ringDepth is the number of slots per ring: enough in-flight batches that
// a briefly stalled consumer does not back-pressure its producer, few
// enough that total slot memory stays modest.
const ringDepth = 8

// blockLen is how many packets the reader stage requests per block read.
const blockLen = 256

// shardWorker owns one pipeline shard, draining one ring per reader.
type shardWorker struct {
	h     *DNHunter
	rings []*spscRing // one per reader, all waking the shared gate
	gate  *consGate
}

// run drains the shard's reader rings until all close, then flushes the
// shard's flow table. The scan is a fair fixed-order sweep: each pass
// consumes at most one slot per ring, so no reader partition can starve
// another, and the shard parks once on its shared gate (any producer
// wakes it) when no ring has work. When abort is set (cancellation) it
// keeps consuming — and keeps returning block references — so no
// dispatcher ever blocks on a full ring, but stops processing.
//
//dnhunter:hotpath
func (w *shardWorker) run(wg *sync.WaitGroup, abort *atomic.Bool) {
	defer wg.Done()
	//dnhunter:alloc-ok one-time per-run drain bookkeeping, not per-packet
	done := make([]bool, len(w.rings))
	for remaining := len(w.rings); remaining > 0; {
		progressed := false
		for i, r := range w.rings {
			if done[i] {
				continue
			}
			if s, ok := r.tryConsume(); ok {
				if !abort.Load() {
					w.process(s)
				}
				releaseSlotBlocks(s)
				r.release()
				progressed = true
				continue
			}
			if r.drained() {
				done[i] = true
				remaining--
				progressed = true
			}
		}
		if progressed || remaining == 0 {
			continue
		}
		for spins := 0; ; {
			if w.anyReady(done) {
				break
			}
			if spins < ringConsumerSpins {
				spins++
				runtime.Gosched()
				continue
			}
			w.gate.parked.Store(true)
			if w.anyReady(done) {
				w.gate.parked.Store(false)
				break
			}
			<-w.gate.wake
			w.gate.parked.Store(false)
			spins = 0
		}
	}
	if !abort.Load() {
		w.h.Close()
	}
}

// anyReady reports whether any still-open ring has a published slot or a
// close to observe.
func (w *shardWorker) anyReady(done []bool) bool {
	for i, r := range w.rings {
		if !done[i] && r.ready() {
			return true
		}
	}
	return false
}

// process applies one consumed slot to the shard pipeline.
//
//dnhunter:hotpath
func (w *shardWorker) process(s *ringSlot) {
	for i := range s.entries {
		e := &s.entries[i]
		switch e.kind {
		case entryFlow:
			w.h.handleOrientedFlow(e, e.pay)
		case entryDNS:
			w.h.handleDNSPayload(e.key.ClientIP, e.pay, e.at)
		case entryExpire:
			w.h.expireFlow(e.key, e.hash)
		}
	}
}

// dispatcher parses, routes, and batches one reader partition.
type dispatcher struct {
	reader  int
	nshards int
	parser  layers.Parser
	rings   []*spscRing // this reader's row of the (reader, shard) mesh
	batch   int

	// tracker mirrors the shard tables' flow lifecycle over this partition's
	// packet order; assign/expire are its prebound callbacks (bound once so
	// the per-packet Route call passes a plain func value, no closure).
	tracker *flows.Tracker
	assign  func(netip.Addr) uint32
	expire  func(flows.Key, uint64, uint32)
	// idle/sweepMark drive the amortized sweep on the Readers==1 path; with
	// Readers>1 the stripe owns the schedule and ships srcSweep markers.
	idle      time.Duration
	sweepMark time.Duration

	// shed, when non-nil, switches enqueue from blocking back-pressure to
	// overload shedding: entries bound for a full ring are dropped (and
	// counted per reader per shard) instead of stalling the reader. Serve
	// mode sets it; batch runs keep the blocking behaviour. Expiry commands
	// and flow-closing segments are never shed — see enqueue.
	shed *ShedStats
}

// runSharded is the Shards>1 path.
func (e *Engine) runSharded(ctx context.Context, src netio.PacketSource) (*Result, error) {
	n := e.cfg.Shards
	nr := e.cfg.Readers
	if nr < 1 {
		nr = 1
	}
	sink := SyncSink(e.cfg.Sink)

	seed := rand.Uint64() | 1 // shared tracker/table hash seed, never zero
	workers := make([]*shardWorker, n)
	gates := make([]*consGate, n)
	for i := range workers {
		fcfg := e.cfg.Flows
		fcfg.DisableAutoSweep = true // dispatcher drives expiry via tracker commands
		fcfg.OnRecord = nil          // engine-managed; see EngineConfig.Flows
		fcfg.Seed = seed
		gates[i] = newConsGate()
		workers[i] = &shardWorker{
			h: New(sinkConfig(Config{
				Resolver:  e.cfg.Resolver,
				Flows:     fcfg,
				Truth:     e.cfg.Truth,
				Vantage:   e.cfg.Vantage,
				DiscardDB: e.cfg.DiscardDB,
			}, sink)),
			gate: gates[i],
		}
	}
	// The (reader, shard) ring mesh: dispatcher r produces into mesh[r],
	// shard s consumes mesh[·][s] through its shared gate.
	cells := make([]readerCell, nr)
	mesh := make([][]*spscRing, nr)
	for r := range mesh {
		mesh[r] = make([]*spscRing, n)
		for s := range mesh[r] {
			ring := newRing(ringDepth, e.cfg.Batch, gates[s])
			ring.parks = &cells[r].meshParks
			mesh[r][s] = ring
		}
	}
	for i, w := range workers {
		w.rings = make([]*spscRing, nr)
		for r := 0; r < nr; r++ {
			w.rings[r] = mesh[r][i]
		}
	}
	if e.cfg.tapPipelines != nil {
		// Serve-mode seam: expose the shard pipelines (checkpoint restore
		// writes resolver state here) before the first packet is dispatched.
		hs := make([]*DNHunter, n)
		for i, w := range workers {
			hs[i] = w.h
		}
		e.cfg.tapPipelines(hs)
	}
	var (
		wg    sync.WaitGroup
		abort atomic.Bool
	)
	for _, w := range workers {
		wg.Add(1)
		go w.run(&wg, &abort)
	}

	// One shared hash seed: each tracker computes a flow key's hash once at
	// dispatch and ships it; shard tables (built with the same seed via
	// fcfg.Seed above) use it directly instead of re-hashing per packet.
	dispatchers := make([]*dispatcher, nr)
	for r := range dispatchers {
		tracker := flows.NewTracker(e.cfg.Flows.ClientNets, e.cfg.Flows.IdleTimeout, seed)
		d := &dispatcher{
			reader:  r,
			nshards: n,
			rings:   mesh[r],
			batch:   e.cfg.Batch,
			tracker: tracker,
			idle:    tracker.IdleTimeout(), // lockstep with flows.NewTable's default
		}
		d.assign = d.shardOf
		d.expire = d.enqueueExpire
		dispatchers[r] = d
	}
	if e.cfg.Shed != nil {
		e.cfg.Shed.init(nr, n)
		for _, d := range dispatchers {
			d.shed = e.cfg.Shed
		}
	}
	if e.cfg.tapRings != nil {
		// Shard-major flattening: ring i*nr+r is (reader r → shard i), so
		// per-shard gauges group a shard's rings contiguously.
		flat := make([]*spscRing, 0, nr*n)
		for s := 0; s < n; s++ {
			for r := 0; r < nr; r++ {
				flat = append(flat, mesh[r][s])
			}
		}
		e.cfg.tapRings(flat)
	}
	if e.cfg.tapReaders != nil {
		e.cfg.tapReaders(cells)
	}

	var runErr error
	done := ctx.Done()
	block := make([]netio.Packet, blockLen)
	adapter := netio.NewRefAdapter(src, nil)
	if nr == 1 {
		// Classic shape: the Run goroutine reads, parses, and dispatches.
		d := dispatchers[0]
		for processed := 0; ; {
			if processed&^(yieldEvery-1) != 0 {
				processed &= yieldEvery - 1
				runtime.Gosched() // see yieldEvery
			}
			select {
			case <-done:
				runErr = ctx.Err()
			default:
			}
			if runErr != nil {
				break
			}
			bn, blk, err := adapter.ReadBlockRef(block)
			cells[0].pkts.Add(uint64(bn))
			for i := 0; i < bn; i++ {
				d.dispatch(block[i], blk)
			}
			if blk != nil {
				blk.Release(1) // the reader's own reference, after distribution
			}
			processed += bn
			if err != nil {
				if err != io.EOF {
					runErr = fmt.Errorf("core: packet source: %w", err)
				}
				break
			}
		}
		if runErr != nil {
			abort.Store(true)
			for _, r := range d.rings {
				r.discardFill() // return refs held by never-published entries
			}
		} else {
			for _, r := range d.rings {
				r.publish() // final partial slots
			}
		}
		for _, r := range d.rings {
			r.close()
		}
	} else {
		// Striped shape: the Run goroutine becomes the stripe (raw-frame
		// routing only), and each dispatcher runs on its own goroutine.
		ingress := make([]*srcRing, nr)
		for r := range ingress {
			ingress[r] = newSrcRing(ringDepth, e.cfg.Batch)
			ingress[r].parks = &cells[r].parks
		}
		st := &stripe{
			ingress: ingress,
			nets:    e.cfg.Flows.ClientNets,
			cells:   cells,
			idle:    dispatchers[0].idle,
			batch:   e.cfg.Batch,
			shed:    e.cfg.Shed != nil,
		}
		var dwg sync.WaitGroup
		for r, d := range dispatchers {
			dwg.Add(1)
			go d.runLoop(&dwg, ingress[r], &abort)
		}
		for processed := 0; ; {
			if processed&^(yieldEvery-1) != 0 {
				processed &= yieldEvery - 1
				runtime.Gosched()
			}
			select {
			case <-done:
				runErr = ctx.Err()
			default:
			}
			if runErr != nil {
				break
			}
			bn, blk, err := adapter.ReadBlockRef(block)
			for i := 0; i < bn; i++ {
				st.route(block[i], blk)
			}
			if blk != nil {
				blk.Release(1)
			}
			processed += bn
			if err != nil {
				if err != io.EOF {
					runErr = fmt.Errorf("core: packet source: %w", err)
				}
				break
			}
		}
		if runErr != nil {
			abort.Store(true)
			for _, ir := range ingress {
				ir.discardFill()
			}
		} else {
			for _, ir := range ingress {
				ir.publish()
			}
		}
		for _, ir := range ingress {
			ir.close()
		}
		// Dispatchers drain their ingress rings (releasing block refs even
		// under abort), finish their mesh rows, and close them; shards keep
		// consuming under abort, so this join cannot deadlock.
		dwg.Wait()
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}

	// Merge: per-shard databases in shard order (deterministic for a fixed
	// shard count), counters summed; parser stats summed over dispatchers.
	db := flowdb.New()
	dbs := make([]*flowdb.DB, n)
	var st Stats
	st.Parser = dispatchers[0].parser.Stats
	for _, d := range dispatchers[1:] {
		st.Parser.Add(d.parser.Stats)
	}
	for i, w := range workers {
		dbs[i] = w.h.DB()
		st.Add(w.h.Stats())
	}
	db.Merge(dbs...)
	readers := make([]ReaderStat, nr)
	for i := range cells {
		c := &cells[i]
		readers[i] = ReaderStat{
			Pkts:          c.pkts.Load(),
			RingFullParks: c.parks.Load(),
			MeshFullParks: c.meshParks.Load(),
			ShedFrames:    c.shedFrames.Load(),
		}
	}
	return &Result{DB: db, Stats: st, Readers: readers}, nil
}

// fastRange reduces a 64-bit hash onto [0, n) with a multiply-shift
// (Lemire's fast range): the high word of h×n. Two multiplies cheaper than
// the old %, and uniform for well-mixed h. It consumes the hash's HIGH
// bits — FNV-1a's weak spot for short varying suffixes (an IPv4 host byte
// barely reaches them), so every caller finalizes through mix64 first.
func fastRange(h uint64, n int) uint32 {
	hi, _ := bits.Mul64(h, uint64(n))
	return uint32(hi)
}

// mix64 is the murmur3/splitmix64 finalizer: a bijective avalanche so
// every input bit reaches the high bits fastRange consumes.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// addrHash is the deterministic FNV-1a digest of an address (16-byte
// form): stable across runs and processes, so a fixed shard count always
// produces the same client partitioning. Serve-mode checkpoint restore
// relies on this to route snapshot entries to the shard that owns the
// client — even when the shard count changed across the restart.
func addrHash(a netip.Addr) uint64 {
	b := a.As16()
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// readerSalt decorrelates reader striping from shard routing. Feeding the
// same digest to both dimensions would make reader ≈ shard whenever their
// counts match — a diagonal mesh where each dispatcher feeds mostly one
// shard and load skew compounds instead of spreading. Salting before the
// mix64 avalanche gives the reader dimension independent high bits with
// the same determinism. The constant is 2^64/φ.
const readerSalt = 0x9E3779B97F4A7C15

// shardOfAddr maps a client address onto one of n shards.
func shardOfAddr(client netip.Addr, n int) uint32 {
	return fastRange(mix64(addrHash(client)), n)
}

// readerOfAddr maps a client address onto one of n reader partitions.
func readerOfAddr(client netip.Addr, n int) uint32 {
	return fastRange(mix64(addrHash(client)^readerSalt), n)
}

// readerOfPair is the direction-symmetric fallback stripe for flows with
// no single client-side endpoint (both or neither address in the client
// networks): commutative in (a, b), so both directions land together.
func readerOfPair(a, b netip.Addr, n int) uint32 {
	return fastRange(mix64((addrHash(a)+addrHash(b))^readerSalt), n)
}

// shardOf routes a client address onto this dispatcher's shards.
func (d *dispatcher) shardOf(client netip.Addr) uint32 {
	return shardOfAddr(client, d.nshards)
}

// dispatch parses one frame and routes it (the Readers==1 path). Mirrors
// DNHunter.HandlePacket's branching exactly: parse failures are only
// counted, UDP port-53 traffic goes to the DNS path, everything else to
// the flow path.
//
//dnhunter:hotpath
func (d *dispatcher) dispatch(pkt netio.Packet, blk *netio.Block) {
	dec, err := d.parser.Parse(pkt.Data)
	if err != nil {
		return
	}
	at := pkt.Timestamp
	if dec.HasUDP && (dec.SrcPort == 53 || dec.DstPort == 53) {
		// handleDNS attributes every response to DstIP, so responses MUST
		// land on shardOf(DstIP) — regardless of which port is 53 — or the
		// resolver entry would be invisible to that client's flows. Peek at
		// the header QR bit (byte 2, MSB) to spot responses; queries and
		// runts are dropped (or merely counted) by the shard, so for them
		// any choice preserves equivalence and SrcIP spreads the load of
		// unpacking queries across the clients that sent them.
		client := dec.SrcIP
		if len(dec.Payload) >= 3 && dec.Payload[2]&0x80 != 0 {
			client = dec.DstIP
		}
		d.enqueue(int(d.shardOf(client)), shardEntry{
			at:   at,
			kind: entryDNS,
			key:  flows.Key{ClientIP: dec.DstIP},
		}, dec.Payload, blk)
		return
	}
	if !dec.HasTCP && !dec.HasUDP {
		return // the flow table ignores these; don't ship them
	}
	// The tracker mirrors the table's orientation and entry lifecycle, so
	// the oriented key/direction ship with the entry and the shard's table
	// skips both the reverse probe and the orientation rules.
	key, c2s, kh, sh := d.tracker.Route(dec, at, d.assign)
	d.enqueue(int(sh), shardEntry{
		at:    at,
		kind:  entryFlow,
		key:   key,
		hash:  kh,
		c2s:   c2s,
		tcp:   dec.HasTCP,
		flags: dec.TCPFlags,
	}, dec.Payload, blk)
	// Amortized sweep, after the packet, at the same trace times a
	// single-threaded table would sweep inside Add.
	if at-d.sweepMark >= d.idle {
		d.sweepMark = at
		d.tracker.ExpireIdle(at, d.expire)
	}
}

// runLoop is a striped dispatcher's goroutine body: drain this partition's
// ingress ring, then finish and close its mesh row. Under abort it keeps
// draining — returning every block reference — but stops processing, so
// the stripe never wedges on a full ingress ring.
func (d *dispatcher) runLoop(dwg *sync.WaitGroup, in *srcRing, abort *atomic.Bool) {
	defer dwg.Done()
	for {
		s, ok := in.consume()
		if !ok {
			break
		}
		if !abort.Load() {
			for i := range s.entries {
				d.dispatchEntry(&s.entries[i])
			}
		}
		releaseSrcSlotBlocks(s)
		in.release()
	}
	if abort.Load() {
		for _, r := range d.rings {
			r.discardFill()
		}
	} else {
		for _, r := range d.rings {
			r.publish()
		}
	}
	for _, r := range d.rings {
		r.close()
	}
}

// dispatchEntry handles one striped ingress entry: sweep markers expire
// this partition; packets follow dispatch's branching, with the tracker
// clock pre-advanced to the stripe's global flow clock so lastSeen stamps
// match the single-reader pipeline exactly (Route's own monotone-max then
// no-ops: at ≤ the shipped clock by construction).
//
//dnhunter:hotpath
func (d *dispatcher) dispatchEntry(se *srcEntry) {
	if se.kind == srcSweep {
		d.tracker.ExpireIdle(se.at, d.expire)
		return
	}
	dec, err := d.parser.Parse(se.data)
	if err != nil {
		return
	}
	at := se.at
	if dec.HasUDP && (dec.SrcPort == 53 || dec.DstPort == 53) {
		client := dec.SrcIP
		if len(dec.Payload) >= 3 && dec.Payload[2]&0x80 != 0 {
			client = dec.DstIP
		}
		d.enqueue(int(d.shardOf(client)), shardEntry{
			at:   at,
			kind: entryDNS,
			key:  flows.Key{ClientIP: dec.DstIP},
		}, dec.Payload, se.blk)
		return
	}
	if !dec.HasTCP && !dec.HasUDP {
		return
	}
	d.tracker.AdvanceClock(se.clock)
	key, c2s, kh, sh := d.tracker.Route(dec, at, d.assign)
	d.enqueue(int(sh), shardEntry{
		at:    at,
		kind:  entryFlow,
		key:   key,
		hash:  kh,
		c2s:   c2s,
		tcp:   dec.HasTCP,
		flags: dec.TCPFlags,
	}, dec.Payload, se.blk)
}

// enqueueExpire ships one centrally-computed idle expiry to the owning
// shard, in-band with its packet stream, hash included so the shard's
// table probe skips hashKey just like the entryFlow path.
func (d *dispatcher) enqueueExpire(key flows.Key, hash uint64, shard uint32) {
	d.enqueue(int(shard), shardEntry{kind: entryExpire, key: key, hash: hash}, nil, nil)
}

// enqueue appends an entry to the shard's current ring slot, publishing
// when the slot fills. The payload travels by handle: pay aliases blk's
// refcounted arena (or stable source storage when blk is nil) and the
// entry takes one block reference, returned by releaseSlotBlocks when the
// slot retires — no byte of payload is copied on this path. In the default
// (batch) mode, acquiring a slot may block on ring wraparound: that is the
// back-pressure that bounds dispatcher run-ahead. In shed mode the
// blocking acquire is replaced by trySlot and the entry is dropped (and
// counted per reader per shard) when the ring is full — a live reader must
// never stall on a slow shard. Two entry classes are still never shed,
// because dropping them would corrupt state rather than degrade coverage:
// expiry commands (auto-sweep is disabled on shard tables, so a dropped
// expiry leaks the flow entry until drain) and RST/FIN segments (the
// tracker has already forgotten the flow, so the shard table must see the
// close too). Both are rare, so the bounded wait they may incur does not
// stall the reader at packet rate.
func (d *dispatcher) enqueue(sh int, e shardEntry, pay []byte, blk *netio.Block) {
	r := d.rings[sh]
	var s *ringSlot
	if d.shed != nil && e.kind != entryExpire &&
		(!e.tcp || e.flags&(layers.TCPRst|layers.TCPFin) == 0) {
		var ok bool
		if s, ok = r.trySlot(); !ok {
			d.shed.drop(d.reader, sh, e.kind, len(pay))
			return
		}
	} else {
		s = r.slot()
	}
	if len(pay) > 0 {
		e.pay = pay
		if blk != nil {
			blk.Retain(1)
			e.blk = blk
		}
	}
	s.entries = append(s.entries, e)
	if len(s.entries) >= d.batch {
		r.publish()
	}
}
