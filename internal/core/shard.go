package core

// Sharded execution (Shards > 1): a single dispatcher goroutine block-reads
// frames, parses them, extracts and orients the flow key, and hands each
// shard pre-framed (key, direction, flags, payload) entries over a bounded
// lock-free SPSC ring (see ring.go). Each shard runs its own
// single-threaded DNHunter (resolver Clist, flow table, pending-tag map).
// The paper suggests exactly this partitioning for parallel deployments
// (§3.1.1): all state is keyed by client, so clients can be split across
// independent pipelines with no shared mutable state.
//
// Equivalence with the single-threaded pipeline is exact, not approximate,
// because the dispatcher mirrors every piece of global state that decides
// where a packet must go:
//
//   - Flow orientation. The dispatcher keeps a replica of the flow table's
//     key set and applies the table's own orientation rules (existing entry
//     wins, then SYN, then client networks, then first-sender), so each
//     packet is routed to the shard of the flow's eventual client — where
//     that client's resolver entries live. The oriented key and direction
//     travel with the entry, so shard tables skip orient entirely
//     (flows.AddOriented).
//   - Flow lifetime. The replica removes entries on the same transitions
//     the table does (RST, second FIN), so a reused 5-tuple re-orients at
//     the same packet in both modes.
//   - Idle sweeps. Shard tables run with the amortized auto-sweep disabled;
//     the dispatcher broadcasts in-band sweep markers at the exact trace
//     times a single-threaded table would sweep, and expires its own
//     replica entries with the same rule, so idle flows are expired (and
//     split into the same records) regardless of shard count.
//
// The one intentional deviation: each shard has its own Clist of the
// configured size, so aggregate eviction behaviour differs from one global
// Clist once a shard overflows. Size the Clist for the per-shard client
// population (the paper sizes it for ~1 hour of responses).

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flowdb"
	"repro/internal/flows"
	"repro/internal/layers"
	"repro/internal/netio"
)

// defaultBatch is the dispatcher→shard hand-off granularity (entries per
// ring slot). Large enough to amortize the publish/consume hand-off, small
// enough to keep shards busy on short traces.
const defaultBatch = 512

// ringDepth is the number of slots per shard ring: enough in-flight
// batches that a briefly stalled shard does not back-pressure the
// dispatcher, few enough that total slab memory stays modest.
const ringDepth = 8

// slotBufPerEntry sizes each slot's payload arena (batch × this many
// bytes). A slot publishes early rather than outgrow its arena, so slot
// storage is allocated once; only a single payload larger than the whole
// arena forces a (one-time, kept) growth.
const slotBufPerEntry = 128

// blockLen is how many packets the reader stage requests per ReadBlock.
const blockLen = 256

// shardWorker owns one pipeline shard.
type shardWorker struct {
	h    *DNHunter
	ring *spscRing
}

// run drains ring slots until the ring closes, then flushes the shard's
// flow table. When abort is set (cancellation) it keeps consuming so the
// dispatcher never blocks on a full ring, but stops processing.
func (w *shardWorker) run(wg *sync.WaitGroup, abort *atomic.Bool) {
	defer wg.Done()
	for {
		s, ok := w.ring.consume()
		if !ok {
			break
		}
		if !abort.Load() {
			for i := range s.entries {
				e := &s.entries[i]
				switch e.kind {
				case entryFlow:
					w.h.handleOrientedFlow(e, s.payload(e))
				case entryDNS:
					w.h.handleDNSPayload(e.key.ClientIP, s.payload(e), e.at)
				case entrySweep:
					w.h.sweepIdle(e.at)
				}
			}
		}
		w.ring.release()
	}
	if !abort.Load() {
		w.h.Close()
	}
}

// dispEntry mirrors one live flow-table entry: which shard owns it, when
// it last saw traffic, and whether one FIN has been seen.
type dispEntry struct {
	shard   int
	end     time.Duration
	closing bool
}

// dispatcher parses, routes, batches, and sweeps.
type dispatcher struct {
	workers []*shardWorker
	parser  layers.Parser
	rings   []*spscRing
	batch   int
	bufMax  int

	entries    map[flows.Key]*dispEntry
	clientNets []netip.Prefix
	idle       time.Duration
	sweepMark  time.Duration

	// freeEntries recycles dispEntry structs removed from the replica.
	freeEntries []*dispEntry
}

// runSharded is the Shards>1 path.
func (e *Engine) runSharded(ctx context.Context, src netio.PacketSource) (*Result, error) {
	n := e.cfg.Shards
	sink := SyncSink(e.cfg.Sink)

	bufCap := e.cfg.Batch * slotBufPerEntry
	workers := make([]*shardWorker, n)
	for i := range workers {
		fcfg := e.cfg.Flows
		fcfg.DisableAutoSweep = true // dispatcher drives sweeps via markers
		fcfg.OnRecord = nil          // engine-managed; see EngineConfig.Flows
		workers[i] = &shardWorker{
			h: New(sinkConfig(Config{
				Resolver: e.cfg.Resolver,
				Flows:    fcfg,
				Truth:    e.cfg.Truth,
				Vantage:  e.cfg.Vantage,
			}, sink)),
			ring: newRing(ringDepth, e.cfg.Batch, bufCap),
		}
	}
	var (
		wg    sync.WaitGroup
		abort atomic.Bool
	)
	for _, w := range workers {
		wg.Add(1)
		go w.run(&wg, &abort)
	}

	idle := e.cfg.Flows.IdleTimeout
	if idle <= 0 {
		idle = 5 * time.Minute // keep in lockstep with flows.NewTable
	}
	d := &dispatcher{
		workers:    workers,
		rings:      make([]*spscRing, n),
		batch:      e.cfg.Batch,
		bufMax:     bufCap,
		entries:    make(map[flows.Key]*dispEntry),
		clientNets: e.cfg.Flows.ClientNets,
		idle:       idle,
	}
	for i, w := range workers {
		d.rings[i] = w.ring
	}

	var runErr error
	done := ctx.Done()
	block := make([]netio.Packet, blockLen)
	fetch := newBlockFetcher(src)
	for processed := 0; ; {
		if processed&^(yieldEvery-1) != 0 {
			processed &= yieldEvery - 1
			runtime.Gosched() // see yieldEvery
		}
		select {
		case <-done:
			runErr = ctx.Err()
		default:
		}
		if runErr != nil {
			break
		}
		bn, err := fetch.read(block)
		for i := 0; i < bn; i++ {
			d.dispatch(block[i])
		}
		processed += bn
		if err != nil {
			if err != io.EOF {
				runErr = fmt.Errorf("core: packet source: %w", err)
			}
			break
		}
	}
	if runErr != nil {
		abort.Store(true)
	} else {
		for _, r := range d.rings {
			r.publish() // final partial slots
		}
	}
	for _, r := range d.rings {
		r.close()
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}

	// Merge: per-shard databases in shard order (deterministic for a fixed
	// shard count), counters summed.
	db := flowdb.New()
	dbs := make([]*flowdb.DB, n)
	var st Stats
	st.Parser = d.parser.Stats
	for i, w := range workers {
		dbs[i] = w.h.DB()
		st.Add(w.h.Stats())
	}
	db.Merge(dbs...)
	return &Result{DB: db, Stats: st}, nil
}

// shardOf hashes a client address onto a shard with FNV-1a: deterministic
// across runs and processes, so a fixed shard count always produces the
// same client partitioning.
func (d *dispatcher) shardOf(client netip.Addr) int {
	b := client.As16()
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return int(h % uint64(len(d.workers)))
}

// dispatch parses one frame and routes it. Mirrors DNHunter.HandlePacket's
// branching exactly: parse failures are only counted, UDP port-53 traffic
// goes to the DNS path, everything else to the flow path.
func (d *dispatcher) dispatch(pkt netio.Packet) {
	dec, err := d.parser.Parse(pkt.Data)
	if err != nil {
		return
	}
	at := pkt.Timestamp
	if dec.HasUDP && (dec.SrcPort == 53 || dec.DstPort == 53) {
		// handleDNS attributes every response to DstIP, so responses MUST
		// land on shardOf(DstIP) — regardless of which port is 53 — or the
		// resolver entry would be invisible to that client's flows. Peek at
		// the header QR bit (byte 2, MSB) to spot responses; queries and
		// runts are dropped (or merely counted) by the shard, so for them
		// any choice preserves equivalence and SrcIP spreads the load of
		// unpacking queries across the clients that sent them.
		client := dec.SrcIP
		if len(dec.Payload) >= 3 && dec.Payload[2]&0x80 != 0 {
			client = dec.DstIP
		}
		d.enqueue(d.shardOf(client), shardEntry{
			at:   at,
			kind: entryDNS,
			key:  flows.Key{ClientIP: dec.DstIP},
		}, dec.Payload)
		return
	}
	if !dec.HasTCP && !dec.HasUDP {
		return // the flow table ignores these; don't ship them
	}
	key, c2s, sh := d.routeFlow(dec, at)
	d.enqueue(sh, shardEntry{
		at:    at,
		kind:  entryFlow,
		key:   key,
		c2s:   c2s,
		tcp:   dec.HasTCP,
		flags: dec.TCPFlags,
	}, dec.Payload)
	// Amortized sweep, after the packet, at the same trace times a
	// single-threaded table would sweep inside Add.
	if at-d.sweepMark >= d.idle {
		d.sweepMark = at
		d.broadcastSweep(at)
	}
}

// routeFlow mirrors flows.Table.orient plus the table's entry lifecycle,
// returning the canonical flow key, the packet's direction under it, and
// the shard owning the flow. The key/direction pair is exactly what the
// shard's table would compute, so it ships with the entry and the table's
// orient step runs once, here.
func (d *dispatcher) routeFlow(dec *layers.Decoded, at time.Duration) (flows.Key, bool, int) {
	key := flows.Key{
		ClientIP: dec.SrcIP, ServerIP: dec.DstIP,
		ClientPort: dec.SrcPort, ServerPort: dec.DstPort,
		Proto: dec.Proto,
	}
	c2s := true
	e, ok := d.entries[key]
	if !ok {
		rev := key.Reverse()
		if e, ok = d.entries[rev]; ok {
			key = rev
			c2s = false
		}
	}
	if !ok {
		// New flow: same orientation rules as the table — a pure SYN marks
		// the sender as client, else the configured client networks, else
		// the first sender.
		if !(dec.HasTCP && dec.TCPFlags.Has(layers.TCPSyn) && !dec.TCPFlags.Has(layers.TCPAck)) && len(d.clientNets) > 0 {
			src := containsAddr(d.clientNets, dec.SrcIP)
			dst := containsAddr(d.clientNets, dec.DstIP)
			if dst && !src {
				key = key.Reverse()
				c2s = false
			}
		}
		e = d.newEntry(d.shardOf(key.ClientIP))
		d.entries[key] = e
	}
	e.end = at
	if dec.HasTCP {
		// Mirror advanceTCP's finish transitions so a reused 5-tuple
		// re-orients at the same packet the table would re-create it.
		switch {
		case dec.TCPFlags.Has(layers.TCPRst):
			d.dropEntry(key, e)
		case dec.TCPFlags.Has(layers.TCPFin):
			if e.closing {
				d.dropEntry(key, e)
			} else {
				e.closing = true
			}
		}
	}
	return key, c2s, e.shard
}

// newEntry takes a replica entry from the free list or allocates one.
func (d *dispatcher) newEntry(shard int) *dispEntry {
	if n := len(d.freeEntries); n > 0 {
		e := d.freeEntries[n-1]
		d.freeEntries = d.freeEntries[:n-1]
		*e = dispEntry{shard: shard}
		return e
	}
	return &dispEntry{shard: shard}
}

// dropEntry removes a replica entry and recycles it.
func (d *dispatcher) dropEntry(key flows.Key, e *dispEntry) {
	delete(d.entries, key)
	d.freeEntries = append(d.freeEntries, e)
}

func containsAddr(nets []netip.Prefix, a netip.Addr) bool {
	for _, p := range nets {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// enqueue appends an entry (copying its payload into the slot arena — the
// parser and block reader beneath it reuse their buffers) to the shard's
// current ring slot, publishing when the slot fills. Publishing may block
// on ring wraparound: that is the back-pressure that bounds dispatcher
// run-ahead.
func (d *dispatcher) enqueue(sh int, e shardEntry, payload []byte) {
	r := d.rings[sh]
	s := r.slot()
	if len(payload) > 0 {
		// Publish before an append that would outgrow the arena, so slot
		// storage really is allocated once (a single payload larger than
		// the whole arena still has to grow it — once, kept thereafter).
		if len(s.buf)+len(payload) > d.bufMax && len(s.entries) > 0 {
			r.publish()
			s = r.slot()
		}
		e.payOff = uint32(len(s.buf))
		e.payLen = uint32(len(payload))
		s.buf = append(s.buf, payload...)
	}
	s.entries = append(s.entries, e)
	if len(s.entries) >= d.batch {
		r.publish()
	}
}

// broadcastSweep appends an in-band sweep marker to every shard's stream
// and expires the dispatcher's own flow replica with the table's rule.
func (d *dispatcher) broadcastSweep(now time.Duration) {
	for sh := range d.rings {
		d.enqueue(sh, shardEntry{at: now, kind: entrySweep}, nil)
	}
	for key, e := range d.entries {
		if now-e.end >= d.idle {
			d.dropEntry(key, e)
		}
	}
}
