package core

import (
	"strings"
	"sync"

	"repro/internal/stats"
)

// Action is what the policy enforcer decides for a flow.
type Action uint8

// Policy actions, in increasing priority of interest.
const (
	ActionAllow Action = iota
	ActionPrioritize
	ActionDeprioritize
	ActionRateLimit
	ActionBlock
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionPrioritize:
		return "prioritize"
	case ActionDeprioritize:
		return "deprioritize"
	case ActionRateLimit:
		return "ratelimit"
	case ActionBlock:
		return "block"
	default:
		return "allow"
	}
}

// Rule matches flows by domain name. Exactly the scenario the paper opens
// with: block all Zynga traffic while prioritizing Dropbox, both running
// over TLS on shared cloud addresses, where neither DPI nor IP filtering
// can tell them apart.
type Rule struct {
	// Pattern matches an FQDN. "zynga.com" matches the name itself and any
	// subdomain; "*.google.com" matches subdomains only; "mail.google.com"
	// with no wildcard still matches deeper labels (drive semantics follow
	// the suffix rule).
	Pattern string
	Action  Action
}

// Policy is an ordered rule set; the first matching rule wins. Safe for
// concurrent readers once built.
type Policy struct {
	mu    sync.RWMutex
	rules []Rule
	// Decisions counts, per action, how many tag events the policy judged.
	decisions map[Action]uint64
}

// NewPolicy builds a policy from rules (evaluated in order).
func NewPolicy(rules ...Rule) *Policy {
	return &Policy{rules: rules, decisions: make(map[Action]uint64)}
}

// Append adds a rule at the end (lowest precedence).
func (p *Policy) Append(r Rule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, r)
}

// match reports whether pattern covers fqdn.
func match(pattern, fqdn string) bool {
	pattern = strings.ToLower(strings.TrimSpace(pattern))
	fqdn = strings.ToLower(strings.TrimSpace(fqdn))
	if pattern == "" || fqdn == "" {
		return false
	}
	if rest, ok := strings.CutPrefix(pattern, "*."); ok {
		return strings.HasSuffix(fqdn, "."+rest)
	}
	return fqdn == pattern || strings.HasSuffix(fqdn, "."+pattern)
}

// Decide returns the action for a labeled flow. Unlabeled flows are
// allowed: DN-Hunter's coverage limits (P2P, §1) are a documented property,
// not silently blocked traffic.
func (p *Policy) Decide(label string) Action {
	p.mu.Lock()
	defer p.mu.Unlock()
	action := ActionAllow
	for _, r := range p.rules {
		if match(r.Pattern, label) {
			action = r.Action
			break
		}
	}
	p.decisions[action]++
	return action
}

// Decisions snapshots the per-action counters.
func (p *Policy) Decisions() map[Action]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Action]uint64, len(p.decisions))
	for k, v := range p.decisions {
		out[k] = v
	}
	return out
}

// DecideSLD is Decide against the flow's second-level domain, for policies
// expressed at organization granularity.
func (p *Policy) DecideSLD(label string) Action {
	return p.Decide(stats.SLD(label))
}
