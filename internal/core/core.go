package core
