package core

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/flowdb"
	"repro/internal/flows"
	"repro/internal/netio"
	"repro/internal/resolver"
)

// EngineConfig assembles an Engine.
type EngineConfig struct {
	// Shards is the number of parallel pipeline workers. Packets are hashed
	// by client address onto shards, each owning its own resolver Clist,
	// flow table, and tag state — the paper's suggested client-IP
	// sharding (§3.1.1). 0 means 1 (the exact single-threaded pipeline);
	// negative means GOMAXPROCS.
	Shards int
	// Readers is the number of parallel reader/dispatcher partitions feeding
	// the shards. 1 (the default) keeps the classic single-dispatcher shape;
	// N > 1 stripes raw frames over N dispatchers by a header-peek hash of
	// the client address (see stripe.go), each with its own parser and flow
	// tracker, so the parse itself scales past one core. 0 means 1; negative
	// means GOMAXPROCS. Forced to 1 when Shards <= 1 (no dispatch stage) or
	// when Flows.ClientNets is empty: client-address striping needs to know
	// which endpoint is the client, and without the nets every flow would
	// ride the best-effort symmetric fallback — losing the DNS-before-flow
	// ordering guarantee for no labeling benefit.
	Readers int
	// Batch is the number of entries per dispatcher→shard ring slot (the
	// hand-off granularity); 0 means 512. Only used when Shards > 1.
	Batch int
	// Resolver configures each shard's DNS cache replica. Note the Clist
	// size applies per shard.
	Resolver resolver.Config
	// Flows configures each shard's flow table. The engine owns the
	// table's record plumbing and sweep scheduling: OnRecord and
	// DisableAutoSweep are overridden (observe finished flows through
	// Sink.OnFlow instead), so results never depend on the shard count.
	Flows flows.Config
	// Sink receives the event stream; nil discards events.
	Sink Sink
	// Truth, when set, supplies ground-truth FQDNs for synthetic flows
	// (used only for scoring, never for labeling). For multi-source runs a
	// per-source Truth (NamedSource.Truth) takes precedence.
	Truth func(flows.Key) string
	// Vantage labels events and flow records with the packet source's name.
	// RunSources overrides it per vantage pipeline; leave empty for
	// single-source runs.
	Vantage string
	// MergeWindow bounds the virtual-clock skew between concurrently
	// ingested sources in RunSources: no vantage runs more than this far
	// ahead of the slowest active vantage in trace time. 0 means the
	// 1-minute default; negative disables pacing (sources free-run).
	// Ignored by single-source Run.
	MergeWindow time.Duration
	// DiscardDB stops the pipelines from accumulating labeled flows into
	// Result.DB (it comes back empty). Streaming mode sets it: flows are
	// observed through Sink.OnFlow and the windowed store instead, so heap
	// stays bounded over unbounded input.
	DiscardDB bool
	// Shed, when non-nil, switches the dispatcher→shard rings from
	// blocking back-pressure to overload shedding with per-shard drop
	// accounting (see ShedStats). Only meaningful with Shards > 1; the
	// single-shard pipeline has no ring to shed from.
	Shed *ShedStats

	// tapPipelines, tapRings, and tapReaders are the serve-mode
	// instrumentation seams, settable only from within the package (the
	// Server uses them). All fire on the Run goroutine after construction
	// and before the first packet: tapPipelines receives the shard pipelines
	// (checkpoint restore/snapshot), tapRings the dispatch rings (depth
	// gauges, flattened shard-major: ring i*Readers+r is reader r → shard
	// i), tapReaders the per-reader backpressure counters.
	tapPipelines func([]*DNHunter)
	tapRings     func([]*spscRing)
	tapReaders   func([]readerCell)
}

// Engine is the concurrent DN-Hunter pipeline. An Engine is an immutable
// configuration handle: every Run builds fresh resolvers, flow tables, and
// a fresh flow database, so one Engine may be reused across traces —
// concurrently, too, unless a Sink is configured: a Sink instance belongs
// to one run at a time (its events would interleave across runs and its
// Close would fire once per run).
//
// With Shards == 1 the Engine byte-for-byte reproduces the deterministic
// single-threaded pipeline; with Shards == N it produces the identical
// flow set and aggregate statistics, at up to N-core throughput. The one
// caveat: each shard owns a Clist of the configured size, so once a trace
// is hot enough to overflow a Clist and force evictions, labeling can
// deviate across shard counts. Size the Clist to the workload (the
// default 1M entries covers the paper's busiest vantage points) and the
// equivalence is exact.
type Engine struct {
	cfg EngineConfig
}

// NewEngine assembles an Engine, normalizing the configuration.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Readers == 0 {
		cfg.Readers = 1
	}
	if cfg.Readers < 0 {
		cfg.Readers = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards <= 1 || len(cfg.Flows.ClientNets) == 0 {
		cfg.Readers = 1 // see EngineConfig.Readers
	}
	if cfg.Batch <= 0 {
		cfg.Batch = defaultBatch
	}
	return &Engine{cfg: cfg}
}

// Shards reports the resolved shard count.
func (e *Engine) Shards() int { return e.cfg.Shards }

// Readers reports the resolved reader-partition count.
func (e *Engine) Readers() int { return e.cfg.Readers }

// Result is the outcome of one Engine run: the merged labeled-flow
// database and the aggregate pipeline statistics. Readers carries the
// per-reader backpressure counters for sharded runs (one entry per reader
// partition); it lives outside Stats so the equivalence suites can keep
// comparing Stats by value across reader counts.
type Result struct {
	DB      *flowdb.DB
	Stats   Stats
	Readers []ReaderStat
}

// blockFetcher adapts any PacketSource to block reads: sources that
// implement netio.BlockSource frame many packets per call, others fall
// back to one Next per read (Next's buffer-reuse contract forbids batching
// it — the second packet would invalidate the first).
type blockFetcher struct {
	bs  netio.BlockSource
	src netio.PacketSource
}

func newBlockFetcher(src netio.PacketSource) blockFetcher {
	f := blockFetcher{src: src}
	if bs, ok := src.(netio.BlockSource); ok {
		f.bs = bs
	}
	return f
}

// read fills dst with at least one packet unless err is non-nil; dst[:n]
// is valid even alongside a non-nil err (including io.EOF).
func (f blockFetcher) read(dst []netio.Packet) (int, error) {
	if f.bs != nil {
		return f.bs.ReadBlock(dst)
	}
	pkt, err := f.src.Next()
	if err != nil {
		return 0, err
	}
	dst[0] = pkt
	return 1, nil
}

// yieldEvery bounds how many packets are processed between explicit
// scheduler yields. The near-allocation-free hot loop no longer enters the
// scheduler via GC assists, so on a saturated GOMAXPROCS=1 machine the
// goroutines that would cancel the context (os/signal watcher, timers)
// can starve until EOF without this. A power of two; large enough that the
// yield costs well under 1% of throughput, small enough that cancellation
// latency stays in single-digit milliseconds. The context itself is
// polled every read block (≤ blockLen packets).
const yieldEvery = 8192

// Run drains the packet source through the pipeline and returns the merged
// result. It stops early with ctx.Err() when the context is cancelled. The
// configured Sink is closed exactly once before Run returns, on success,
// error, and cancellation alike.
func (e *Engine) Run(ctx context.Context, src netio.PacketSource) (*Result, error) {
	var (
		res *Result
		err error
	)
	if e.cfg.Shards <= 1 {
		res, err = e.runSingle(ctx, src)
	} else {
		res, err = e.runSharded(ctx, src)
	}
	if e.cfg.Sink != nil {
		cerr := e.cfg.Sink.Close()
		if err == nil && cerr != nil {
			err = fmt.Errorf("core: closing sink: %w", cerr)
		}
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runSingle is the Shards==1 path: the legacy pipeline, inline, plus
// context polling. It reproduces the single-threaded results exactly.
func (e *Engine) runSingle(ctx context.Context, src netio.PacketSource) (*Result, error) {
	fcfg := e.cfg.Flows
	fcfg.DisableAutoSweep = false // engine-managed; see EngineConfig.Flows
	fcfg.OnRecord = nil
	h := New(sinkConfig(Config{
		Resolver:  e.cfg.Resolver,
		Flows:     fcfg,
		Truth:     e.cfg.Truth,
		Vantage:   e.cfg.Vantage,
		DiscardDB: e.cfg.DiscardDB,
	}, e.cfg.Sink))
	if e.cfg.tapPipelines != nil {
		e.cfg.tapPipelines([]*DNHunter{h})
	}
	done := ctx.Done()
	block := make([]netio.Packet, blockLen)
	fetch := newBlockFetcher(src)
	for processed := 0; ; {
		if processed&^(yieldEvery-1) != 0 {
			processed &= yieldEvery - 1
			runtime.Gosched() // see yieldEvery
		}
		select {
		case <-done:
			return nil, ctx.Err()
		default:
		}
		n, err := fetch.read(block)
		for i := 0; i < n; i++ {
			h.HandlePacket(block[i])
		}
		processed += n
		if err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("core: packet source: %w", err)
		}
	}
	h.Close()
	return &Result{DB: h.DB(), Stats: h.Stats()}, nil
}
