package core

// Multi-vantage execution (RunSources): the paper deploys DN-Hunter at four
// vantage points (EU1 FTTH/ADSL, EU2, US) and all its cross-vantage results
// (Figs. 7-9, Tables 5-8) compare the outputs. RunSources ingests several
// named packet sources in ONE run: each vantage gets its own full pipeline
// (resolver Clist, flow table, flow database — clients at different vantage
// points live in unrelated, possibly colliding address spaces, so no state
// may be shared), driven by its own reader goroutine and, with Shards > 1,
// its own dispatcher and shard workers.
//
// A merged virtual clock couples the readers: every vantage publishes its
// current trace time, and a reader blocks while it is more than MergeWindow
// ahead of the slowest still-active vantage. The vantages therefore sweep
// through trace time together, so a shared Sink observes a roughly
// time-aligned interleave of per-vantage event streams instead of one trace
// completing before the next starts. Pacing never changes results — each
// vantage's pipeline is deterministic in isolation — it only bounds skew.
//
// Equivalence: a single-source RunSources runs exactly the code path of Run
// (pacing is skipped for one source), so its aggregate Stats and flow
// multiset are identical to Run's at any shard count; the only difference
// is the vantage label stamped on events and records.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/flowdb"
	"repro/internal/flows"
	"repro/internal/netio"
)

// defaultMergeWindow is the virtual-clock skew bound applied when
// EngineConfig.MergeWindow is zero.
const defaultMergeWindow = time.Minute

// NamedSource is one vantage point's packet feed for RunSources.
type NamedSource struct {
	// Name labels the vantage; it must be non-empty and unique within one
	// RunSources call. It appears on every event and flow record.
	Name string
	// Src yields the vantage's packets in capture order.
	Src netio.PacketSource
	// Truth optionally overrides EngineConfig.Truth for this vantage:
	// synthetic multi-vantage runs need per-trace sidecars because flow
	// keys collide across vantage address spaces.
	Truth func(flows.Key) string
}

// MultiResult is the outcome of one RunSources call.
type MultiResult struct {
	// Vantages lists the source names in registration order.
	Vantages []string
	// PerVantage holds each vantage's own labeled-flow database and stats.
	// Failed vantages have no entry; consult Errors for them.
	PerVantage map[string]*Result
	// Errors records each failed vantage's error by name: one vantage
	// point going dark degrades the run to the surviving vantages instead
	// of killing it (the paper's four capture points fail independently).
	// Empty on a fully successful run.
	Errors map[string]error
	// DB is the merged database: every surviving vantage's flows, each
	// stamped with its vantage label, merged in registration order
	// (deterministic for a fixed source list).
	DB *flowdb.DB
	// Stats aggregates the surviving vantages' counters.
	Stats Stats
}

// vclock is the merged virtual clock: a bounded-skew barrier over the
// vantage readers' trace times.
type vclock struct {
	mu     sync.Mutex
	cond   *sync.Cond
	window time.Duration
	times  []time.Duration
	done   []bool
	closed bool // cancellation: all waits return immediately
}

func newVClock(n int, window time.Duration) *vclock {
	c := &vclock{window: window, times: make([]time.Duration, n), done: make([]bool, n)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// minActive returns the smallest published time among unfinished vantages.
// Callers hold c.mu.
func (c *vclock) minActive() (time.Duration, bool) {
	min, any := time.Duration(0), false
	for i, t := range c.times {
		if c.done[i] {
			continue
		}
		if !any || t < min {
			min, any = t, true
		}
	}
	return min, any
}

// advance publishes vantage i's trace time and blocks while i is more than
// window ahead of the slowest active vantage. The slowest vantage is never
// blocked, so progress is always possible.
func (c *vclock) advance(i int, t time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.times[i] {
		c.times[i] = t
		// Raising this vantage's time may raise the minimum and release
		// waiters.
		c.cond.Broadcast()
	}
	for !c.closed {
		min, any := c.minActive()
		if !any || t <= min+c.window {
			return
		}
		c.cond.Wait()
	}
}

// finish removes vantage i from the skew computation (EOF or error), so a
// short trace never holds the others back.
func (c *vclock) finish(i int) {
	c.mu.Lock()
	c.done[i] = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// close releases every waiter permanently (run cancelled or failed).
func (c *vclock) close() {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// pacedSource wraps a vantage's PacketSource with merged-clock pacing. It
// enters the clock only when trace time has advanced by a tick — pacing is
// a coarse-grained rendezvous, so the per-packet hot path stays lock-free.
// It forwards block reads (netio.BlockSource) so paced vantages keep the
// bulk reader stage; the clock is then entered at block granularity, which
// is within the rendezvous' tick-level coarseness.
type pacedSource struct {
	fetch blockFetcher
	ref   *netio.RefAdapter
	clock *vclock
	idx   int
	tick  time.Duration
	next  time.Duration // next trace time at which to enter the clock
}

func newPacedSource(src netio.PacketSource, clock *vclock, idx int, tick time.Duration) *pacedSource {
	return &pacedSource{fetch: newBlockFetcher(src), ref: netio.NewRefAdapter(src, nil), clock: clock, idx: idx, tick: tick}
}

func (p *pacedSource) pace(ts time.Duration) {
	if ts >= p.next {
		p.next = ts + p.tick
		p.clock.advance(p.idx, ts)
	}
}

func (p *pacedSource) Next() (netio.Packet, error) {
	pkt, err := p.fetch.src.Next()
	if err != nil {
		return pkt, err
	}
	p.pace(pkt.Timestamp)
	return pkt, nil
}

// ReadBlock implements netio.BlockSource. The clock is entered once per
// block, on the newest timestamp read.
func (p *pacedSource) ReadBlock(dst []netio.Packet) (int, error) {
	n, err := p.fetch.read(dst)
	if n > 0 {
		p.pace(dst[n-1].Timestamp)
	}
	return n, err
}

// ReadBlockRef implements netio.BlockRefSource through an embedded
// RefAdapter over the vantage's source, so paced vantages keep the engine's
// handle-based zero-copy dispatch.
func (p *pacedSource) ReadBlockRef(dst []netio.Packet) (int, *netio.Block, error) {
	n, blk, err := p.ref.ReadBlockRef(dst)
	if n > 0 {
		p.pace(dst[n-1].Timestamp)
	}
	return n, blk, err
}

// RunSources drains every named source through its own vantage pipeline
// concurrently and returns per-vantage and merged results. Source names
// must be non-empty and unique. The configured Sink is shared across
// vantages (calls are serialized; events carry the vantage name) and closed
// exactly once, on success, error, and cancellation alike. See MergeWindow
// for the virtual-clock coupling between sources.
//
// Vantage failures are isolated: a failing source does not cancel its
// siblings. When some (but not all) vantages fail, RunSources returns a
// partial MultiResult — surviving vantages merged as usual, failures
// recorded in MultiResult.Errors — alongside a non-nil error joining
// every vantage error (errors.Join; errors.Is matches each underlying
// cause). Only caller cancellation aborts the whole run, returning
// (nil, ctx.Err()).
func (e *Engine) RunSources(ctx context.Context, sources []NamedSource) (*MultiResult, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: RunSources: no sources")
	}
	seen := make(map[string]bool, len(sources))
	for _, s := range sources {
		if s.Name == "" {
			return nil, fmt.Errorf("core: RunSources: unnamed source")
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("core: RunSources: duplicate source %q", s.Name)
		}
		seen[s.Name] = true
		if s.Src == nil {
			return nil, fmt.Errorf("core: RunSources: source %q has no PacketSource", s.Name)
		}
	}

	res, err := e.runSources(ctx, sources)
	if e.cfg.Sink != nil {
		cerr := e.cfg.Sink.Close()
		if err == nil && cerr != nil {
			err = fmt.Errorf("core: closing sink: %w", cerr)
		}
	}
	return res, err
}

func (e *Engine) runSources(ctx context.Context, sources []NamedSource) (*MultiResult, error) {
	window := e.cfg.MergeWindow
	if window == 0 {
		window = defaultMergeWindow
	}
	clock := newVClock(len(sources), window)
	pace := len(sources) > 1 && window > 0

	// One cancellation scope for the whole run. Only the caller's ctx
	// cancels it: a failing vantage merely finishes its clock slot (so
	// survivors never stall on it) and records its error — failure
	// isolation, not fate sharing.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-runCtx.Done():
			clock.close()
		case <-stopWatch:
		}
	}()
	defer close(stopWatch)

	// The sink is shared across concurrently running vantage pipelines, so
	// serialize it once here; per-vantage engines must not close it.
	shared := SyncSink(e.cfg.Sink)

	type vantageOut struct {
		res *Result
		err error
	}
	outs := make([]vantageOut, len(sources))
	var wg sync.WaitGroup
	for i, s := range sources {
		wg.Add(1)
		go func(i int, s NamedSource) {
			defer wg.Done()
			defer clock.finish(i) // a dead vantage must not stall the clock
			sub := *e
			sub.cfg.Vantage = s.Name
			sub.cfg.Sink = shared
			if s.Truth != nil {
				sub.cfg.Truth = s.Truth
			}
			src := s.Src
			if pace {
				src = newPacedSource(src, clock, i, window/8)
			}
			var out vantageOut
			if sub.cfg.Shards <= 1 {
				out.res, out.err = sub.runSingle(runCtx, src)
			} else {
				out.res, out.err = sub.runSharded(runCtx, src)
			}
			if out.err != nil {
				out.err = fmt.Errorf("vantage %q: %w", s.Name, out.err)
			}
			outs[i] = out
		}(i, s)
	}
	wg.Wait()

	// Caller cancellation aborts the whole run; every vantage error is
	// then just collateral of the shared cancellation, so report only the
	// context error and no partial result.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Build the partial (possibly complete) result: survivors merge as
	// usual, failures are recorded per vantage and joined into one error
	// so no failure hides behind another.
	mr := &MultiResult{
		PerVantage: make(map[string]*Result, len(sources)),
		Errors:     make(map[string]error),
	}
	var errs []error
	var dbs []*flowdb.DB
	for i, s := range sources {
		mr.Vantages = append(mr.Vantages, s.Name)
		if out := outs[i]; out.err != nil {
			mr.Errors[s.Name] = out.err
			errs = append(errs, out.err)
			continue
		}
		mr.PerVantage[s.Name] = outs[i].res
		mr.Stats.Add(outs[i].res.Stats)
		dbs = append(dbs, outs[i].res.DB)
	}
	mr.DB = flowdb.New()
	mr.DB.Merge(dbs...)
	return mr, errors.Join(errs...)
}
