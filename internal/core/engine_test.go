package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/flowdb"
	"repro/internal/flows"
	"repro/internal/netio"
	"repro/internal/synth"
)

// runEngine runs one trace through an Engine with the given shard count.
func runEngine(t *testing.T, tr *synth.Trace, shards int) *Result {
	t.Helper()
	eng := NewEngine(EngineConfig{Shards: shards, Truth: tr.TruthFunc()})
	res, err := eng.Run(context.Background(), tr.Source())
	if err != nil {
		t.Fatalf("Engine.Run(shards=%d): %v", shards, err)
	}
	return res
}

// flowMultiset renders every labeled flow to a canonical string and counts
// occurrences, so shard orderings can be compared as sets.
func flowMultiset(db *flowdb.DB) map[string]int {
	m := make(map[string]int, db.Len())
	for _, f := range db.All() {
		m[fmt.Sprintf("%+v", f)]++
	}
	return m
}

func diffMultisets(t *testing.T, want, got map[string]int, label string) {
	t.Helper()
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s: flow %q: want %d, got %d", label, k, n, got[k])
			return
		}
	}
	for k, n := range got {
		if want[k] != n {
			t.Errorf("%s: extra flow %q x%d", label, k, n)
			return
		}
	}
}

// TestEngineShardEquivalence is the core guarantee of the sharded design:
// any shard count produces the identical flow set and identical aggregate
// statistics as the deterministic single-threaded pipeline.
func TestEngineShardEquivalence(t *testing.T) {
	traces := map[string]*synth.Trace{
		"quick":    synth.Generate(synth.QuickScenario(7)),
		"EU1-FTTH": synth.Generate(synth.NamedScenario(synth.NameEU1FTTH, 0.12, 3)),
		"US-3G":    synth.Generate(synth.NamedScenario(synth.NameUS3G, 0.12, 5)),
	}
	for name, tr := range traces {
		t.Run(name, func(t *testing.T) {
			single := runEngine(t, tr, 1)
			want := flowMultiset(single.DB)
			for _, shards := range []int{2, 3, 8} {
				got := runEngine(t, tr, shards)
				if got.Stats != single.Stats {
					t.Errorf("shards=%d stats diverge:\n single %+v\n sharded %+v",
						shards, single.Stats, got.Stats)
				}
				if got.DB.Len() != single.DB.Len() {
					t.Errorf("shards=%d: %d flows vs %d", shards, got.DB.Len(), single.DB.Len())
				}
				diffMultisets(t, want, flowMultiset(got.DB), fmt.Sprintf("shards=%d", shards))
			}
		})
	}
}

// TestEngineSingleMatchesLegacy pins the shard-1 engine to the legacy
// DNHunter byte for byte.
func TestEngineSingleMatchesLegacy(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(11))
	h := New(Config{Truth: tr.TruthFunc()})
	if err := h.Run(tr.Source()); err != nil {
		t.Fatal(err)
	}
	h.Close()
	legacyStats := h.Stats()

	res := runEngine(t, tr, 1)
	if res.Stats != legacyStats {
		t.Errorf("stats diverge:\n legacy %+v\n engine %+v", legacyStats, res.Stats)
	}
	diffMultisets(t, flowMultiset(h.DB()), flowMultiset(res.DB), "engine-vs-legacy")
}

// TestEnginePcapSourceSharded exercises the payload-copy path: the pcap
// reader reuses its buffer on every Next, so the dispatcher must hand each
// shard stable copies.
func TestEnginePcapSourceSharded(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(13))
	var buf bytes.Buffer
	w := netio.NewWriter(&buf)
	for _, p := range tr.Packets {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := netio.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(EngineConfig{Shards: 4})
	fromPcap, err := eng.Run(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewEngine(EngineConfig{Shards: 4}).Run(context.Background(), tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if fromPcap.Stats != direct.Stats {
		t.Errorf("pcap path diverges:\n pcap %+v\n mem  %+v", fromPcap.Stats, direct.Stats)
	}
}

// countingSink tallies every event; the Engine serializes calls, so plain
// ints suffice even with 8 shards under -race.
type countingSink struct {
	tags, dns, flowEvents int
	closed                int
	closeErr              error
}

func (s *countingSink) OnTag(TagEvent)            { s.tags++ }
func (s *countingSink) OnDNSResponse(DNSEvent)    { s.dns++ }
func (s *countingSink) OnFlow(flowdb.LabeledFlow) { s.flowEvents++ }
func (s *countingSink) Close() error              { s.closed++; return s.closeErr }

// TestEngineSinkContract checks the Sink sees every event exactly once and
// Close fires exactly once, for both execution modes. Running with 8 shards
// under -race is the concurrency exercise for the dispatcher/worker paths.
func TestEngineSinkContract(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(17))
	for _, shards := range []int{1, 8} {
		sink := &countingSink{}
		eng := NewEngine(EngineConfig{Shards: shards, Sink: sink})
		res, err := eng.Run(context.Background(), tr.Source())
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if sink.closed != 1 {
			t.Errorf("shards=%d: Close ran %d times", shards, sink.closed)
		}
		if uint64(sink.dns) != res.Stats.DNSResponses {
			t.Errorf("shards=%d: %d DNS events vs %d responses", shards, sink.dns, res.Stats.DNSResponses)
		}
		if uint64(sink.flowEvents) != res.Stats.Flows {
			t.Errorf("shards=%d: %d flow events vs %d flows", shards, sink.flowEvents, res.Stats.Flows)
		}
		if uint64(sink.tags) != res.Stats.Table.FlowsCreated {
			t.Errorf("shards=%d: %d tag events vs %d flows created", shards, sink.tags, res.Stats.Table.FlowsCreated)
		}
	}
}

// TestEngineSinkCloseError: a failing sink surfaces as a run error.
func TestEngineSinkCloseError(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(19))
	sink := &countingSink{closeErr: errors.New("disk full")}
	_, err := NewEngine(EngineConfig{Sink: sink}).Run(context.Background(), tr.Source())
	if err == nil || !errors.Is(err, sink.closeErr) {
		t.Fatalf("err = %v, want wrapped close error", err)
	}
}

// endlessSource replays its packets forever; only cancellation stops it.
type endlessSource struct {
	pkts []netio.Packet
	i    int
}

func (s *endlessSource) Next() (netio.Packet, error) {
	p := s.pkts[s.i%len(s.pkts)]
	s.i++
	return p, nil
}

func TestEngineContextCancel(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(23))
	for _, shards := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		sink := &countingSink{}
		eng := NewEngine(EngineConfig{Shards: shards, Sink: sink})
		_, err := eng.Run(ctx, &endlessSource{pkts: tr.Packets})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("shards=%d: err = %v, want deadline exceeded", shards, err)
		}
		if sink.closed != 1 {
			t.Errorf("shards=%d: Close ran %d times after cancel", shards, sink.closed)
		}
	}
}

// failingSource returns an error mid-stream.
type failingSource struct {
	pkts []netio.Packet
	i    int
	err  error
}

func (s *failingSource) Next() (netio.Packet, error) {
	if s.i >= len(s.pkts) {
		return netio.Packet{}, s.err
	}
	p := s.pkts[s.i]
	s.i++
	return p, nil
}

func TestEngineSourceError(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(29))
	srcErr := errors.New("ring buffer overrun")
	for _, shards := range []int{1, 4} {
		src := &failingSource{pkts: tr.Packets[:100], err: srcErr}
		_, err := NewEngine(EngineConfig{Shards: shards}).Run(context.Background(), src)
		if !errors.Is(err, srcErr) {
			t.Fatalf("shards=%d: err = %v, want source error", shards, err)
		}
	}
}

// TestEngineDNSOddPortRouting pins the dispatcher's response routing to
// handleDNS's attribution rule (client = DstIP, unconditionally): a DNS
// response sent from an ephemeral source port TO port 53 must still land
// on the destination client's shard, or its resolver entry would be
// invisible to that client's flows.
func TestEngineDNSOddPortRouting(t *testing.T) {
	tb := &traceBuilder{t: t}
	// Response travels ldns:9999 -> clientA:53 — both the "non-53 end" and
	// the "source is the server" heuristics would misattribute it.
	var recs []dnswire.Record
	recs = append(recs, dnswire.Record{Name: "odd.example.com", Type: dnswire.TypeA, TTL: 60, Addr: srv1})
	msg := dnswire.NewResponse(99, "odd.example.com", dnswire.TypeA, recs)
	raw, err := msg.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	frame, ferr := tb.b.UDPFrame(ldns, clientA, 9999, 53, raw)
	tb.add(0, frame, ferr)
	tb.httpFlow(10*time.Millisecond, clientA, srv1, 40000, "odd.example.com")

	for _, shards := range []int{1, 8} {
		res, err := NewEngine(EngineConfig{Shards: shards}).Run(
			context.Background(), netio.NewSlicePacketSource(tb.pkts))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.LabeledFlows != 1 {
			t.Errorf("shards=%d: labeled %d flows, want 1 (response misrouted?)",
				shards, res.Stats.LabeledFlows)
		}
	}
}

// TestEngineOwnsFlowsPlumbing: user-supplied OnRecord/DisableAutoSweep in
// the flows config must not leak through — results stay shard-count
// independent and flows are observed via the Sink only.
func TestEngineOwnsFlowsPlumbing(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(37))
	leaked := 0
	fcfg := flows.Config{
		DisableAutoSweep: true,
		OnRecord:         func(flows.Record, flows.Handle) { leaked++ },
	}
	single, err := NewEngine(EngineConfig{Flows: fcfg}).Run(context.Background(), tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewEngine(EngineConfig{Flows: fcfg, Shards: 4}).Run(context.Background(), tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if leaked != 0 {
		t.Errorf("user OnRecord fired %d times; engine owns record plumbing", leaked)
	}
	if single.Stats != sharded.Stats {
		t.Errorf("flows config leaks shard-dependent behaviour:\n 1: %+v\n 4: %+v",
			single.Stats, sharded.Stats)
	}
}

// TestEngineReusable: one Engine value runs multiple traces independently.
func TestEngineReusable(t *testing.T) {
	eng := NewEngine(EngineConfig{Shards: 2})
	a, err := eng.Run(context.Background(), synth.Generate(synth.QuickScenario(31)).Source())
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Run(context.Background(), synth.Generate(synth.QuickScenario(31)).Source())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats || a.DB.Len() != b.DB.Len() {
		t.Fatalf("engine reuse not independent: %+v vs %+v", a.Stats, b.Stats)
	}
}
