package core

// The parallel pre-parse fanout (Readers > 1): one stripe goroutine reads
// blocks and routes each raw frame — via netio.PeekFrame, an exact ~40-byte
// mirror of the parser's accept/reject rules — onto one of R ingress rings.
// Each ring feeds a dispatcher goroutine that owns a disjoint client
// partition: its own layers.Parser, its own flows.Tracker, and its own row
// of dispatcher→shard mesh rings. The stripe hashes the frame's CLIENT
// address (not a symmetric flow hash): all of one client's flow packets AND
// its DNS responses land on the same dispatcher, preserving the per-client
// DNS-insert-before-flow-lookup ordering that labeling equivalence needs.
//
// Partition-ownership invariants (see docs/ARCHITECTURE.md for the full
// argument):
//
//   - Affinity. A 5-tuple always routes to the same reader: the in-nets
//     test is a static property of each address and the fallback hash is
//     direction-symmetric, so a flow's packets never split across trackers.
//   - Clock. The stripe owns the global flow clock (monotone max of
//     flow-path packet times) and ships it with every entry; dispatchers
//     pre-advance their tracker (Tracker.AdvanceClock) so lastSeen stamps
//     equal the single-reader pipeline's under timestamp jitter.
//   - Sweep. The stripe owns the sweep schedule: at exactly the trace
//     times the single-reader dispatcher would sweep, it broadcasts an
//     in-band sweep marker to every ingress ring; each dispatcher then
//     expires its own partition at that time. Per-partition recency lists
//     are lastSeen-sorted, so the early-stop walk computes the exact
//     threshold set and the union over partitions equals the global sweep.
//   - Frames. Every frame — including ones the peek rejects — is forwarded
//     to exactly one dispatcher and fully parsed there, so the summed
//     parser stats match the single-reader pipeline's.

import (
	"net/netip"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/netio"
)

// srcEntry kinds carried by ingress ring slots.
const (
	srcPacket uint8 = iota // one raw frame
	srcSweep               // sweep marker: expire the partition at time at
)

// srcEntry is one stripe→dispatcher unit: a raw frame plus the global flow
// clock at its position in the stream (srcPacket), or an in-band sweep
// marker (srcSweep). Entries live in recycled slot storage; a *srcEntry
// must never outlive the batch it was delivered in. data aliases blk's
// refcounted arena (or stable source storage when blk is nil) and the
// entry holds one block reference, returned when the slot retires.
//
//dnhunter:slab
type srcEntry struct {
	at    time.Duration
	clock time.Duration // global flow clock (max flow-path time seen)
	data  []byte        // raw Ethernet frame
	blk   *netio.Block
	kind  uint8
	// noShed exempts the entry from ingress shedding (sweep markers are
	// state, not coverage — dropping one would desynchronize expiry).
	noShed bool
}

// srcSlot is one ingress batch in flight.
type srcSlot struct {
	entries []srcEntry
}

// releaseSrcSlotBlocks returns the slot's block references (run-length
// batched, handles cleared) — the ingress twin of releaseSlotBlocks.
func releaseSrcSlotBlocks(s *srcSlot) {
	var run *netio.Block
	var n int64
	for i := range s.entries {
		e := &s.entries[i]
		b := e.blk
		e.blk, e.data = nil, nil
		if b != run {
			if run != nil {
				run.Release(n)
			}
			run, n = b, 0
		}
		n++
	}
	if run != nil {
		run.Release(n)
	}
}

// srcRing is the bounded SPSC ingress ring (stripe → one dispatcher). Same
// protocol as spscRing, over srcEntry slots; each ring has its own
// consGate because a dispatcher drains exactly one ingress ring.
//
//dnhunter:hotatomic
type srcRing struct {
	slots []srcSlot
	mask  uint64

	_    cacheLinePad
	head atomic.Uint64 // slots published; advanced only by the producer
	_    cacheLinePad
	tail atomic.Uint64 // slots released; advanced only by the consumer
	_    cacheLinePad

	closed     atomic.Bool
	prodParked atomic.Bool
	prodWake   chan struct{}
	gate       *consGate

	// parks, when non-nil, counts producer park events (ring full past the
	// spin budget) — the per-reader ingress backpressure gauge.
	parks *atomic.Uint64

	acquired bool
	batch    int
}

func newSrcRing(depth, batch int) *srcRing {
	if depth < 2 {
		depth = 2
	}
	size := 1
	for size < depth {
		size <<= 1
	}
	return &srcRing{
		slots:    make([]srcSlot, size),
		mask:     uint64(size - 1),
		batch:    batch,
		prodWake: make(chan struct{}, 1),
		gate:     newConsGate(),
	}
}

func (r *srcRing) claim(h uint64) *srcSlot {
	s := &r.slots[h&r.mask]
	if s.entries == nil {
		//dnhunter:alloc-ok one-time lazy slot init; storage is recycled in place forever after
		s.entries = make([]srcEntry, 0, r.batch)
	}
	s.entries = s.entries[:0]
	r.acquired = true
	return s
}

// slot returns the producer's fill slot, blocking on wraparound.
func (r *srcRing) slot() *srcSlot {
	h := r.head.Load()
	if !r.acquired {
		size := uint64(len(r.slots))
		for spins := 0; h-r.tail.Load() >= size; {
			if spins < ringProducerSpins {
				spins++
				runtime.Gosched()
				continue
			}
			if r.parks != nil {
				r.parks.Add(1)
			}
			r.prodParked.Store(true)
			if h-r.tail.Load() < size {
				r.prodParked.Store(false)
				break
			}
			<-r.prodWake
			r.prodParked.Store(false)
			spins = 0
		}
		return r.claim(h)
	}
	return &r.slots[h&r.mask]
}

// trySlot is slot without the wait; ok=false when the ring is full (the
// ingress shedding path drops raw frames rather than stall a live reader).
func (r *srcRing) trySlot() (*srcSlot, bool) {
	h := r.head.Load()
	if !r.acquired {
		if h-r.tail.Load() >= uint64(len(r.slots)) {
			return nil, false
		}
		return r.claim(h), true
	}
	return &r.slots[h&r.mask], true
}

// publish hands the fill slot to the consumer (no-op if empty/unacquired).
func (r *srcRing) publish() {
	if !r.acquired {
		return
	}
	if len(r.slots[r.head.Load()&r.mask].entries) == 0 {
		return
	}
	r.acquired = false
	r.head.Add(1)
	if r.gate.parked.Load() {
		select {
		case r.gate.wake <- struct{}{}:
		default:
		}
	}
}

// discardFill releases the unpublished fill slot's block refs (abort path).
func (r *srcRing) discardFill() {
	if !r.acquired {
		return
	}
	s := &r.slots[r.head.Load()&r.mask]
	releaseSrcSlotBlocks(s)
	s.entries = s.entries[:0]
}

// close marks the stream finished and wakes the consumer.
func (r *srcRing) close() {
	r.closed.Store(true)
	if r.gate.parked.Load() {
		select {
		case r.gate.wake <- struct{}{}:
		default:
		}
	}
}

// consume blocks for the next published slot; ok=false once closed and
// drained (with the post-close head recheck, as in spscRing).
func (r *srcRing) consume() (*srcSlot, bool) {
	t := r.tail.Load()
	for spins := 0; ; {
		if r.head.Load() > t {
			return &r.slots[t&r.mask], true
		}
		if r.closed.Load() {
			if r.head.Load() > t {
				return &r.slots[t&r.mask], true
			}
			return nil, false
		}
		if spins < ringConsumerSpins {
			spins++
			runtime.Gosched()
			continue
		}
		r.gate.parked.Store(true)
		if r.head.Load() > t || r.closed.Load() {
			r.gate.parked.Store(false)
			continue
		}
		<-r.gate.wake
		r.gate.parked.Store(false)
		spins = 0
	}
}

// release returns the consumed slot to the producer.
func (r *srcRing) release() {
	r.tail.Add(1)
	if r.prodParked.Load() {
		select {
		case r.prodWake <- struct{}{}:
		default:
		}
	}
}

// stripe is the reader-fanout stage state (one goroutine).
type stripe struct {
	ingress []*srcRing
	nets    []netip.Prefix
	cells   []readerCell

	idle      time.Duration
	sweepMark time.Duration
	clock     time.Duration // global flow clock (monotone max)
	batch     int
	shed      bool // drop raw frames instead of blocking on a full ring
}

// inNets reports whether any prefix contains a (flows.containsAddr's rule;
// addresses come from PeekFrame as AddrFrom4/AddrFrom16, exactly like the
// parser's, so membership agrees with the trackers' orientation test).
func inNets(nets []netip.Prefix, a netip.Addr) bool {
	for _, p := range nets {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// route classifies one raw frame and appends it to its reader's ingress
// ring, then broadcasts a sweep marker when the frame crossed the sweep
// schedule — the same "after the triggering packet" order the
// single-reader dispatcher uses.
//
//dnhunter:hotpath
func (st *stripe) route(pkt netio.Packet, blk *netio.Block) {
	pk, ok := netio.PeekFrame(pkt.Data)
	at := pkt.Timestamp
	nr := len(st.ingress)
	var r uint32
	flowPath := false
	if ok {
		if pk.UDP && (pk.SrcPort == 53 || pk.DstPort == 53) {
			// Mirror dispatch's DNS attribution: responses (QR set) belong
			// to DstIP, everything else spreads by SrcIP.
			client := pk.Src
			if pk.DNSResponse {
				client = pk.Dst
			}
			r = readerOfAddr(client, nr)
		} else {
			flowPath = true
			sin, din := inNets(st.nets, pk.Src), inNets(st.nets, pk.Dst)
			switch {
			case sin && !din:
				r = readerOfAddr(pk.Src, nr)
			case din && !sin:
				r = readerOfAddr(pk.Dst, nr)
			default:
				// Both or neither endpoint monitored: no single client-side
				// address. A direction-symmetric hash keeps the flow on one
				// tracker; its ordering against either endpoint's DNS
				// stream is best-effort (see ARCHITECTURE.md deviations).
				r = readerOfPair(pk.Src, pk.Dst, nr)
			}
			if at > st.clock {
				st.clock = at
			}
		}
	}
	st.cells[r].pkts.Add(1)
	st.append(int(r), srcEntry{at: at, clock: st.clock, data: pkt.Data, blk: blk, kind: srcPacket})
	if flowPath && at-st.sweepMark >= st.idle {
		st.sweepMark = at
		for i := range st.ingress {
			// Sweep markers are state, not coverage: never shed, in-band
			// behind the packets they must expire after.
			st.append(i, srcEntry{at: at, kind: srcSweep, noShed: true})
		}
	}
}

// append adds one entry to reader r's ingress ring, taking a block
// reference for the frame it carries. In shed mode a full ring drops the
// frame (counted per reader) instead of stalling the stripe; sweep markers
// always block.
func (st *stripe) append(r int, e srcEntry) {
	ring := st.ingress[r]
	var s *srcSlot
	if st.shed && !e.noShed {
		var ok bool
		if s, ok = ring.trySlot(); !ok {
			st.cells[r].shedFrames.Add(1)
			return
		}
	} else {
		s = ring.slot()
	}
	if e.blk != nil {
		e.blk.Retain(1)
	}
	s.entries = append(s.entries, e)
	if len(s.entries) >= st.batch {
		ring.publish()
	}
}
