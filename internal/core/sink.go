package core

import (
	"sync"

	"repro/internal/flowdb"
)

// Sink receives the pipeline's event stream. It replaces the loose
// Config.OnTag / Config.OnDNSResponse callback fields with one composable
// interface that also observes finished flows and end-of-run.
//
// Ordering guarantees: events for one client (its DNS responses, its flows'
// tag events, its finished flows) are always delivered in trace order. When
// the Engine runs with more than one shard, events of *different* clients
// may interleave arbitrarily; the Engine serializes all Sink calls through
// a mutex (see SyncSink), so implementations never need internal locking
// unless they are also read concurrently from outside the pipeline.
//
// Close fires exactly once, after the last event of the run, whether the
// run completed or was cancelled.
type Sink interface {
	// OnTag fires the moment a flow is first seen and labeled — at the SYN
	// for flows caught from their first segment.
	OnTag(TagEvent)
	// OnDNSResponse fires for every decoded DNS response carrying at least
	// one address record.
	OnDNSResponse(DNSEvent)
	// OnFlow fires when a flow finishes (close, idle expiry, or end of
	// capture) with its full labeled record.
	OnFlow(flowdb.LabeledFlow)
	// Close flushes the sink. The pipeline reports its error to the caller
	// of Engine.Run.
	Close() error
}

// NopSink is a Sink that ignores everything. Embed it to implement only the
// events a consumer cares about:
//
//	type tagCounter struct {
//		core.NopSink
//		n int
//	}
//
//	func (c *tagCounter) OnTag(core.TagEvent) { c.n++ }
type NopSink struct{}

// OnTag implements Sink.
func (NopSink) OnTag(TagEvent) {}

// OnDNSResponse implements Sink.
func (NopSink) OnDNSResponse(DNSEvent) {}

// OnFlow implements Sink.
func (NopSink) OnFlow(flowdb.LabeledFlow) {}

// Close implements Sink.
func (NopSink) Close() error { return nil }

// FuncSink adapts plain functions to the Sink interface; nil fields are
// skipped. It bridges the legacy Config callbacks onto the new API.
type FuncSink struct {
	Tag  func(TagEvent)
	DNS  func(DNSEvent)
	Flow func(flowdb.LabeledFlow)
	// CloseFunc, when set, runs at end of run.
	CloseFunc func() error
}

// OnTag implements Sink.
func (s *FuncSink) OnTag(e TagEvent) {
	if s.Tag != nil {
		s.Tag(e)
	}
}

// OnDNSResponse implements Sink.
func (s *FuncSink) OnDNSResponse(e DNSEvent) {
	if s.DNS != nil {
		s.DNS(e)
	}
}

// OnFlow implements Sink.
func (s *FuncSink) OnFlow(f flowdb.LabeledFlow) {
	if s.Flow != nil {
		s.Flow(f)
	}
}

// Close implements Sink.
func (s *FuncSink) Close() error {
	if s.CloseFunc != nil {
		return s.CloseFunc()
	}
	return nil
}

// MultiSink fans every event out to each sink in order. Close closes all
// sinks and returns the first error.
func MultiSink(sinks ...Sink) Sink {
	switch len(sinks) {
	case 0:
		return NopSink{}
	case 1:
		return sinks[0]
	}
	return multiSink(sinks)
}

type multiSink []Sink

func (m multiSink) OnTag(e TagEvent) {
	for _, s := range m {
		s.OnTag(e)
	}
}

func (m multiSink) OnDNSResponse(e DNSEvent) {
	for _, s := range m {
		s.OnDNSResponse(e)
	}
}

func (m multiSink) OnFlow(f flowdb.LabeledFlow) {
	for _, s := range m {
		s.OnFlow(f)
	}
}

func (m multiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SyncSink wraps s so every call holds a mutex. The sharded Engine applies
// it automatically; it is exported for consumers who share one sink across
// independently running pipelines.
func SyncSink(s Sink) Sink {
	if s == nil {
		return nil
	}
	return &syncSink{inner: s}
}

type syncSink struct {
	mu    sync.Mutex
	inner Sink
}

func (s *syncSink) OnTag(e TagEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.OnTag(e)
}

func (s *syncSink) OnDNSResponse(e DNSEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.OnDNSResponse(e)
}

func (s *syncSink) OnFlow(f flowdb.LabeledFlow) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.OnFlow(f)
}

func (s *syncSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Close()
}
