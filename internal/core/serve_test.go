package core

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/flowdb"
	"repro/internal/netio"
	"repro/internal/synth"
)

// serveFlows runs tr through Serve with the given shards, collecting every
// flushed window's flows and the report.
func serveFlows(t *testing.T, tr *synth.Trace, shards int, scfg ServeConfig) ([]flowdb.LabeledFlow, *ServeReport) {
	t.Helper()
	var flows []flowdb.LabeledFlow
	scfg.FlushWindow = func(w flowdb.Window) error {
		flows = append(flows, w.DB.All()...)
		return nil
	}
	srv := NewServer(EngineConfig{Shards: shards, Truth: tr.TruthFunc()}, scfg)
	rep, err := srv.Serve(context.Background(), tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	return flows, rep
}

// TestServeWindowsMatchBatch: the concatenation of flushed windows must
// reproduce a single-shard batch run record for record (windows chop the
// emission sequence; they never reorder it).
func TestServeWindowsMatchBatch(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(23))

	batch, err := NewEngine(EngineConfig{Shards: 1, Truth: tr.TruthFunc()}).Run(context.Background(), tr.Source())
	if err != nil {
		t.Fatal(err)
	}

	got, rep := serveFlows(t, tr, 1, ServeConfig{Window: 5 * time.Minute})
	if rep.Windows < 3 {
		t.Fatalf("flushed %d windows, want >= 3 rotations over a 30-minute trace", rep.Windows)
	}
	want := batch.DB.All()
	if len(got) != len(want) {
		t.Fatalf("windows hold %d flows, batch %d", len(got), len(want))
	}
	for i := range want {
		w, g := &want[i], &got[i]
		if w.Key != g.Key || w.Label != g.Label || w.Start != g.Start || w.End != g.End ||
			w.BytesC2S != g.BytesC2S || w.BytesS2C != g.BytesS2C {
			t.Fatalf("record %d diverges: batch %+v, serve %+v", i, w.Record, g.Record)
		}
	}
	if rep.Stats.Flows != batch.Stats.Flows || rep.Stats.LabeledFlows != batch.Stats.LabeledFlows {
		t.Fatalf("stats diverge: batch %d/%d, serve %d/%d",
			batch.Stats.Flows, batch.Stats.LabeledFlows, rep.Stats.Flows, rep.Stats.LabeledFlows)
	}
}

// TestServeDiscardsDB: serve mode must not accumulate flows outside the
// windowed store (the bounded-heap contract).
func TestServeDiscardsDB(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(23))
	srv := NewServer(EngineConfig{Shards: 1}, ServeConfig{Window: 5 * time.Minute})
	rep, err := srv.Serve(context.Background(), tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Flows == 0 {
		t.Fatal("no flows served")
	}
	for _, h := range srv.pipes {
		if h.DB().Len() != 0 {
			t.Fatalf("pipeline DB holds %d flows in serve mode, want 0", h.DB().Len())
		}
	}
}

// TestServeGracefulDrain: cancelling the serve context over an infinite
// source must flush in-flight state and return cleanly, not abort.
func TestServeGracefulDrain(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(29))
	loop := netio.NewLoopSource(tr.Packets, 0, 0) // forever

	var flows []flowdb.LabeledFlow
	srv := NewServer(EngineConfig{Shards: 2}, ServeConfig{
		Window:       5 * time.Minute,
		DrainTimeout: 30 * time.Second,
		FlushWindow: func(w flowdb.Window) error {
			flows = append(flows, w.DB.All()...)
			return nil
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		// Cancel once the engine has demonstrably processed traffic.
		for srv.Metrics().Flows() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		close(done)
	}()
	rep, err := srv.Serve(ctx, loop)
	<-done
	if err != nil {
		t.Fatalf("graceful drain returned %v", err)
	}
	if !srv.Metrics().Draining() {
		t.Fatal("draining metric never set")
	}
	if rep.Stats.Flows == 0 || len(flows) == 0 {
		t.Fatalf("drain flushed nothing: %d stat flows, %d window flows", rep.Stats.Flows, len(flows))
	}
	// Every emitted flow must have reached a flushed window (final partial
	// window included) — the drain really flushed, it didn't abort.
	if uint64(len(flows)) != rep.Stats.Flows {
		t.Fatalf("windows hold %d flows, stats emitted %d", len(flows), rep.Stats.Flows)
	}
}

// TestServeDrainTimeout: a source that keeps delivering after the stop
// signal is irrelevant — the drain EOF halts reads — so the timeout path
// only triggers when the pipeline itself wedges. Simulate with a sink
// that blocks forever on its first flow; Serve must abandon the wedged
// run and return an error within ~DrainTimeout.
func TestServeDrainTimeout(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(31))
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	entered := make(chan struct{})
	var once sync.Once
	sink := &FuncSink{Flow: func(flowdb.LabeledFlow) {
		once.Do(func() { close(entered) })
		<-block
	}}
	srv := NewServer(EngineConfig{Shards: 1, Sink: sink}, ServeConfig{DrainTimeout: 50 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-entered // the pipeline is provably wedged on the sink
		cancel()
	}()
	_, err := srv.Serve(ctx, netio.NewLoopSource(tr.Packets, 0, 0))
	if err == nil {
		t.Fatal("wedged drain returned nil error")
	}
}

// TestServeCheckpointRestart: DNS context sniffed before a restart must
// keep labeling flows after it. Phase A serves the first half of a trace
// and writes a checkpoint; phase B serves the second half twice — with
// and without the checkpoint — and restoring must label at least as many
// flows, strictly more than zero of which come from phase-A responses.
func TestServeCheckpointRestart(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(37))
	half := len(tr.Packets) / 2
	ckpt := filepath.Join(t.TempDir(), "clist.ckpt")

	_, repA := serveFlows(t, &synth.Trace{Packets: tr.Packets[:half]}, 2, ServeConfig{CheckpointPath: ckpt})
	if repA.CheckpointedEntries == 0 {
		t.Fatal("phase A checkpointed no resolver entries")
	}

	second := func(path string, shards int) *ServeReport {
		srv := NewServer(EngineConfig{Shards: shards}, ServeConfig{CheckpointPath: path})
		rep, err := srv.Serve(context.Background(), netio.NewSlicePacketSource(tr.Packets[half:]))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cold := second("", 2)
	// Restore into a different shard count than the checkpoint was taken
	// at: entries re-route by client hash.
	warm := second(ckpt, 3)
	if warm.RestoredEntries != repA.CheckpointedEntries {
		t.Fatalf("restored %d entries, checkpoint held %d", warm.RestoredEntries, repA.CheckpointedEntries)
	}
	if warm.Stats.LabeledFlows <= cold.Stats.LabeledFlows {
		t.Fatalf("restored resolver labeled %d flows, cold start %d — restore had no effect",
			warm.Stats.LabeledFlows, cold.Stats.LabeledFlows)
	}
}

// TestServeSheddingDropsInsteadOfBlocking: with shedding on and a stalled
// shard, the dispatcher must drop (and count) rather than stall; the run
// must still complete and report the drops.
func TestServeSheddingDropsInsteadOfBlocking(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(41))
	slow := &FuncSink{Tag: func(TagEvent) { time.Sleep(50 * time.Microsecond) }}
	srv := NewServer(EngineConfig{Shards: 2, Batch: 4, Sink: slow}, ServeConfig{Shed: true})
	rep, err := srv.Serve(context.Background(), tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Dropped
	if d.Flows+d.DNS == 0 {
		t.Fatal("stalled shard shed nothing; expected drops with a 4-entry batch and a slow sink")
	}
	per := srv.Metrics().Shed.PerShard()
	if len(per) != 2 {
		t.Fatalf("per-shard drop accounting has %d shards, want 2", len(per))
	}
	var sum uint64
	for _, sh := range per {
		sum += sh.Flows + sh.DNS
	}
	if sum != d.Flows+d.DNS {
		t.Fatalf("per-shard drops sum %d != totals %d", sum, d.Flows+d.DNS)
	}
	if rep.Stats.Flows == 0 {
		t.Fatal("shedding run emitted no flows at all")
	}
}

// TestServeMetricsLive: the metrics view must reflect a finished run.
func TestServeMetricsLive(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(43))
	srv := NewServer(EngineConfig{Shards: 2}, ServeConfig{Window: 10 * time.Minute})
	rep, err := srv.Serve(context.Background(), tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	if m.Packets() == 0 || m.Bytes() == 0 {
		t.Fatalf("packets=%d bytes=%d", m.Packets(), m.Bytes())
	}
	if m.Packets() != rep.Packets || m.Bytes() != rep.Bytes {
		t.Fatalf("report (%d,%d) != metrics (%d,%d)", rep.Packets, rep.Bytes, m.Packets(), m.Bytes())
	}
	if m.TraceClock() <= 0 {
		t.Fatal("trace clock never advanced")
	}
	if m.Flows() != rep.Stats.Flows || m.DNSResponses() != rep.Stats.DNSResponses {
		t.Fatalf("metrics flows/dns (%d,%d) != stats (%d,%d)",
			m.Flows(), m.DNSResponses(), rep.Stats.Flows, rep.Stats.DNSResponses)
	}
	if m.Tags() == 0 {
		t.Fatal("no tag events counted")
	}
	if got := m.RingDepths(); len(got) != 2 {
		t.Fatalf("ring depth gauges: %d, want 2", len(got))
	}
	if m.WindowsFlushed() != rep.Windows || rep.Windows == 0 {
		t.Fatalf("windows: metrics %d, report %d", m.WindowsFlushed(), rep.Windows)
	}
}
