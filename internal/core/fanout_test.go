package core

import (
	"context"
	"fmt"
	"math"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"repro/internal/flows"
	"repro/internal/synth"
)

// fanoutNets covers the synthetic scenarios' client population (clients
// and LDNS live in 10.0.0.0/16; servers and P2P peers do not), so every
// flow has exactly one client-side endpoint and the stripe's equivalence
// guarantee is exact, not best-effort.
func fanoutNets() []netip.Prefix {
	return []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")}
}

// runFanout runs one trace at the given (shards, readers, batch), with the
// client networks configured — both sides of a reader-equivalence
// comparison must share them, since they change flow orientation.
func runFanout(t *testing.T, tr *synth.Trace, shards, readers, batch int) *Result {
	t.Helper()
	eng := NewEngine(EngineConfig{
		Shards:  shards,
		Readers: readers,
		Batch:   batch,
		Flows:   flows.Config{ClientNets: fanoutNets()},
		Truth:   tr.TruthFunc(),
	})
	res, err := eng.Run(context.Background(), tr.Source())
	if err != nil {
		t.Fatalf("Engine.Run(shards=%d readers=%d): %v", shards, readers, err)
	}
	return res
}

// TestEngineReaderEquivalence is the fanout's core guarantee: any reader
// count produces the identical flow multiset and aggregate statistics as
// the single-reader sharded pipeline.
func TestEngineReaderEquivalence(t *testing.T) {
	traces := map[string]*synth.Trace{
		"quick":    synth.Generate(synth.QuickScenario(7)),
		"EU1-FTTH": synth.Generate(synth.NamedScenario(synth.NameEU1FTTH, 0.12, 3)),
	}
	for name, tr := range traces {
		t.Run(name, func(t *testing.T) {
			base := runFanout(t, tr, 4, 1, 0)
			want := flowMultiset(base.DB)
			for _, readers := range []int{2, 3, 4} {
				got := runFanout(t, tr, 4, readers, 0)
				if got.Stats != base.Stats {
					t.Errorf("readers=%d stats diverge:\n readers=1 %+v\n readers=%d %+v",
						readers, base.Stats, readers, got.Stats)
				}
				diffMultisets(t, want, flowMultiset(got.DB), fmt.Sprintf("readers=%d", readers))
			}
		})
	}
}

// TestEngineReaderStats checks the per-reader counters: one ReaderStat per
// partition, and — since batch runs never shed — the routed-frame counts
// sum to exactly the trace length.
func TestEngineReaderStats(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(11))
	total := uint64(tr.Source().Len())
	for _, readers := range []int{1, 3} {
		res := runFanout(t, tr, 2, readers, 0)
		if len(res.Readers) != readers {
			t.Fatalf("readers=%d: got %d ReaderStats", readers, len(res.Readers))
		}
		var pkts uint64
		for _, rs := range res.Readers {
			pkts += rs.Pkts
			if rs.ShedFrames != 0 {
				t.Errorf("readers=%d: shed %d frames in a non-shedding batch run", readers, rs.ShedFrames)
			}
		}
		if pkts != total {
			t.Errorf("readers=%d: reader pkts sum %d, want %d", readers, pkts, total)
		}
	}
}

// TestEngineReaderClamp pins the Readers normalization: no dispatch stage
// (Shards<=1) or no client networks forces a single reader; negative means
// GOMAXPROCS.
func TestEngineReaderClamp(t *testing.T) {
	nets := flows.Config{ClientNets: fanoutNets()}
	cases := []struct {
		name string
		cfg  EngineConfig
		want int
	}{
		{"default", EngineConfig{Shards: 4, Flows: nets}, 1},
		{"explicit", EngineConfig{Shards: 4, Readers: 3, Flows: nets}, 3},
		{"negative", EngineConfig{Shards: 4, Readers: -1, Flows: nets}, runtime.GOMAXPROCS(0)},
		{"single-shard", EngineConfig{Shards: 1, Readers: 4, Flows: nets}, 1},
		{"no-nets", EngineConfig{Shards: 4, Readers: 4}, 1},
	}
	for _, c := range cases {
		if got := NewEngine(c.cfg).Readers(); got != c.want {
			t.Errorf("%s: Readers()=%d, want %d", c.name, got, c.want)
		}
	}
}

// TestReaderFanoutCancelStress aborts striped runs mid-flight, repeatedly:
// the abort path must tear down the ingress rings and the (reader, shard)
// ring mesh without deadlock or leaked block references. Run under -race
// this also exercises the close/drain protocol across all three stages.
func TestReaderFanoutCancelStress(t *testing.T) {
	tr := synth.Generate(synth.NamedScenario(synth.NameEU1FTTH, 0.12, 3))
	for round := 0; round < 8; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		delay := time.Duration(round) * 200 * time.Microsecond
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		eng := NewEngine(EngineConfig{
			Shards:  3,
			Readers: 3,
			Batch:   8, // small slots: wraparound and final-partial paths both hit
			Flows:   flows.Config{ClientNets: fanoutNets()},
		})
		_, err := eng.Run(ctx, tr.Source())
		if err != nil && err != context.Canceled {
			t.Fatalf("round %d: unexpected error %v", round, err)
		}
		cancel()
	}
}

// TestFastRangeReduction pins the multiply-shift reduction: in-range,
// deterministic, reasonably uniform over the synthetic client population,
// and decorrelated between the shard and reader dimensions. Aggregate
// equivalence across shard/reader counts — the property the pipeline
// actually needs, independent of WHERE each client lands — is pinned by
// TestEngineShardEquivalence and TestEngineReaderEquivalence.
func TestFastRangeReduction(t *testing.T) {
	const n = 8
	shardCounts := make([]int, n)
	readerCounts := make([]int, n)
	diag := 0
	const clients = 1 << 12
	for i := 0; i < clients; i++ {
		a := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
		sh := shardOfAddr(a, n)
		rd := readerOfAddr(a, n)
		if sh >= n || rd >= n {
			t.Fatalf("client %v: out of range shard=%d reader=%d", a, sh, rd)
		}
		if sh != shardOfAddr(a, n) || rd != readerOfAddr(a, n) {
			t.Fatalf("client %v: nondeterministic reduction", a)
		}
		shardCounts[sh]++
		readerCounts[rd]++
		if sh == rd {
			diag++
		}
	}
	ideal := float64(clients) / n
	for i := 0; i < n; i++ {
		for dim, got := range map[string]int{"shard": shardCounts[i], "reader": readerCounts[i]} {
			if math.Abs(float64(got)-ideal) > ideal/2 {
				t.Errorf("%s %d: %d clients, want ~%.0f (skew > 50%%)", dim, i, got, ideal)
			}
		}
	}
	// Independent dimensions put ~1/n of clients on the diagonal; a reader
	// hash correlated with the shard hash puts ~all of them there.
	if float64(diag) > 3*ideal {
		t.Errorf("shard/reader diagonal %d of %d clients — dimensions correlated (readerSalt broken?)", diag, clients)
	}
}

// FuzzReaderFanoutEquivalence fuzzes the (seed, readers, shards, batch)
// space: any combination must reproduce the single-reader flow multiset
// and stats exactly.
func FuzzReaderFanoutEquivalence(f *testing.F) {
	f.Add(uint64(7), 2, 2, 1)
	f.Add(uint64(7), 3, 4, defaultBatch)
	f.Add(uint64(7), 4, 2, 7)
	f.Add(uint64(21), 8, 3, 64)
	f.Fuzz(func(t *testing.T, seed uint64, readers, shards, batch int) {
		if readers < 2 || readers > 8 || shards < 2 || shards > 8 || batch < 1 || batch > 4*defaultBatch {
			t.Skip()
		}
		tr := synth.Generate(synth.QuickScenario(seed))
		base := runFanout(t, tr, shards, 1, batch)
		got := runFanout(t, tr, shards, readers, batch)
		if got.Stats != base.Stats {
			t.Errorf("seed=%d readers=%d shards=%d batch=%d stats diverge:\n readers=1 %+v\n fanout %+v",
				seed, readers, shards, batch, base.Stats, got.Stats)
		}
		diffMultisets(t, flowMultiset(base.DB), flowMultiset(got.DB),
			fmt.Sprintf("seed=%d readers=%d shards=%d batch=%d", seed, readers, shards, batch))
	})
}
