package core

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/netio"
	"repro/internal/synth"
)

// transientTestErr is a locally marked transient error (the same
// Transient() bool convention internal/faults.Transient uses; the faults
// package itself cannot be imported here without a cycle).
type transientTestErr struct{ msg string }

func (e transientTestErr) Error() string   { return e.msg }
func (e transientTestErr) Transient() bool { return true }

// flakySource replays pkts but injects err before delivering the packet
// at each index in failAt (value = how many consecutive failures there).
type flakySource struct {
	pkts   []netio.Packet
	failAt map[int]int
	err    error
	i      int
}

func (f *flakySource) Next() (netio.Packet, error) {
	if f.i >= len(f.pkts) {
		return netio.Packet{}, io.EOF
	}
	if n := f.failAt[f.i]; n > 0 {
		f.failAt[f.i] = n - 1
		return netio.Packet{}, f.err
	}
	p := f.pkts[f.i]
	f.i++
	return p, nil
}

// testPolicy is a fast-backoff policy for tests.
func testPolicy(budget int) *RestartPolicy {
	return &RestartPolicy{MaxRestarts: budget, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 7}
}

// TestServeSupervisorRecovers: transient mid-stream source errors are
// absorbed by restarts — every packet is still delivered, the restarts
// are counted, and the run ends degraded but successful.
func TestServeSupervisorRecovers(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(51))
	src := &flakySource{
		pkts:   tr.Packets,
		failAt: map[int]int{10: 1, 200: 2, 500: 1},
		err:    transientTestErr{msg: "exporter hiccup"},
	}
	srv := NewServer(EngineConfig{}, ServeConfig{Window: time.Minute, DrainTimeout: 10 * time.Second, Restart: testPolicy(10)})
	rep, err := srv.Serve(context.Background(), src)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got, want := rep.Packets, uint64(len(tr.Packets)); got != want {
		t.Errorf("delivered %d packets, want %d (restarts must not lose input)", got, want)
	}
	if rep.SourceRestarts != 4 {
		t.Errorf("SourceRestarts = %d, want 4", rep.SourceRestarts)
	}
	tn, fat := srv.Metrics().SourceErrors()
	if tn != 4 || fat != 0 {
		t.Errorf("SourceErrors = (%d, %d), want (4, 0)", tn, fat)
	}
	if !srv.Metrics().Degraded() {
		t.Error("run with restarts not marked degraded")
	}
	if total, rem := srv.Metrics().RestartBudget(); total != 10 || rem != 6 {
		t.Errorf("RestartBudget = (%d, %d), want (10, 6)", total, rem)
	}
}

// TestServeSupervisorFatal: an unclassified error is fatal — no restart,
// the run fails with the cause.
func TestServeSupervisorFatal(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(52))
	cause := errors.New("capture descriptor closed")
	src := &flakySource{pkts: tr.Packets, failAt: map[int]int{50: 1}, err: cause}
	srv := NewServer(EngineConfig{}, ServeConfig{Window: time.Minute, DrainTimeout: 10 * time.Second, Restart: testPolicy(10)})
	if _, err := srv.Serve(context.Background(), src); !errors.Is(err, cause) {
		t.Fatalf("Serve = %v, want the fatal cause", err)
	}
	tn, fat := srv.Metrics().SourceErrors()
	if tn != 0 || fat != 1 {
		t.Errorf("SourceErrors = (%d, %d), want (0, 1)", tn, fat)
	}
	if srv.Metrics().SourceRestarts() != 0 {
		t.Errorf("restarted on a fatal error")
	}
}

// TestServeSupervisorBudget: transient failures past the error budget
// become fatal.
func TestServeSupervisorBudget(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(53))
	src := &flakySource{
		pkts:   tr.Packets,
		failAt: map[int]int{100: 5},
		err:    transientTestErr{msg: "exporter flapping"},
	}
	srv := NewServer(EngineConfig{}, ServeConfig{Window: time.Minute, DrainTimeout: 10 * time.Second, Restart: testPolicy(2)})
	_, err := srv.Serve(context.Background(), src)
	if err == nil || !strings.Contains(err.Error(), "budget exhausted") {
		t.Fatalf("Serve = %v, want budget-exhausted error", err)
	}
	if got := srv.Metrics().SourceRestarts(); got != 2 {
		t.Errorf("SourceRestarts = %d, want the full budget of 2", got)
	}
	if _, rem := srv.Metrics().RestartBudget(); rem != 0 {
		t.Errorf("remaining budget = %d, want 0", rem)
	}
}

// TestServeSupervisorReopen: the policy's Reopen hook replaces the source
// after a transient failure — the model for reconnecting to an exporter
// that died rather than hiccuped.
func TestServeSupervisorReopen(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(54))
	half := len(tr.Packets) / 2
	reopened := 0
	pol := testPolicy(3)
	pol.Reopen = func() (netio.PacketSource, error) {
		reopened++
		// The replacement feed resumes from where the first one died.
		return &flakySource{pkts: tr.Packets[half:]}, nil
	}
	// The original feed delivers the first half, then dies (an error, not
	// a clean EOF), so the supervisor reopens.
	srv := NewServer(EngineConfig{}, ServeConfig{Window: time.Minute, DrainTimeout: 10 * time.Second, Restart: pol})
	srcDying := &dyingSource{pkts: tr.Packets[:half], err: transientTestErr{msg: "feed died"}}
	rep, err := srv.Serve(context.Background(), srcDying)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if reopened != 1 {
		t.Errorf("Reopen called %d times, want 1", reopened)
	}
	if got, want := rep.Packets, uint64(len(tr.Packets)); got != want {
		t.Errorf("delivered %d packets, want %d across the reopen", got, want)
	}
}

// dyingSource yields pkts then fails with err forever (never a clean EOF).
type dyingSource struct {
	pkts []netio.Packet
	err  error
	i    int
}

func (d *dyingSource) Next() (netio.Packet, error) {
	if d.i >= len(d.pkts) {
		return netio.Packet{}, d.err
	}
	p := d.pkts[d.i]
	d.i++
	return p, nil
}

// TestServeFreshStartOnCorruptCheckpoint: an invalid checkpoint file
// yields a counted, reported fresh start — not a failed startup — and a
// clean drain rewrites it so the next run restores normally.
func TestServeFreshStartOnCorruptCheckpoint(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(55))
	path := filepath.Join(t.TempDir(), "clist.ckpt")
	if err := os.WriteFile(path, []byte("DNHCLIST\x02 definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	scfg := ServeConfig{Window: time.Minute, DrainTimeout: 10 * time.Second, CheckpointPath: path}
	srv := NewServer(EngineConfig{}, scfg)
	rep, err := srv.Serve(context.Background(), netio.NewLoopSource(tr.Packets, 0, 1))
	if err != nil {
		t.Fatalf("Serve with corrupt checkpoint: %v", err)
	}
	if rep.FreshStart == "" {
		t.Error("ServeReport.FreshStart empty after a rejected checkpoint")
	}
	if rep.RestoredEntries != 0 {
		t.Errorf("restored %d entries from a corrupt checkpoint", rep.RestoredEntries)
	}
	if got := srv.Metrics().CheckpointFreshStarts(); got != 1 {
		t.Errorf("CheckpointFreshStarts = %d, want 1", got)
	}
	if !srv.Metrics().Degraded() {
		t.Error("fresh start not marked degraded")
	}
	if rep.CheckpointedEntries == 0 {
		t.Fatal("drain wrote no checkpoint to recover with")
	}
	// The rewritten checkpoint heals the next run.
	srv2 := NewServer(EngineConfig{}, scfg)
	rep2, err := srv2.Serve(context.Background(), netio.NewLoopSource(tr.Packets, 0, 1))
	if err != nil {
		t.Fatalf("second Serve: %v", err)
	}
	if rep2.FreshStart != "" {
		t.Errorf("second run rejected the rewritten checkpoint: %s", rep2.FreshStart)
	}
	if rep2.RestoredEntries == 0 {
		t.Error("second run restored nothing from the rewritten checkpoint")
	}
}
