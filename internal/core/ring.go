package core

// Bounded lock-free SPSC rings: the dispatcher→shard hand-off. Each
// (reader, shard) pair owns one ring whose slots carry pre-parsed entry
// batches. Entries no longer embed payload copies: since PR 9 they carry
// handles into refcounted netio.Block arenas (or stable source storage), so
// a payload moves from the packet source to the shard by reference — the
// per-slot payload arenas (and their ~525 dispatch bytes/pkt of copying)
// are gone. All slot storage is allocated once when the ring is built and
// recycled in place forever after — no sync.Pool round-trips, no per-batch
// reallocation.
//
// The synchronization is the classic single-producer/single-consumer ring:
// a head index advanced only by the producer and a tail index advanced
// only by the consumer, each on its own cache line so the two sides never
// false-share. The producer side spins briefly (yielding to the scheduler,
// which on a saturated machine is the fast path) and then parks on a
// buffered wake channel, with the usual set-flag/recheck/sleep protocol so
// a wake is never lost. The consumer side is shared: one shard drains R
// rings (one per reader) through a single consGate, so the MPSC hand-off
// is composed from SPSC rings without any new lock-free structure — see
// shardWorker.run for the fair drain loop.

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/flows"
	"repro/internal/layers"
	"repro/internal/netio"
)

// Entry kinds carried by ring slots.
const (
	entryFlow   uint8 = iota // pre-routed flow packet
	entryDNS                 // UDP/53 payload
	entryExpire              // idle-expiry command for one flow (key)
)

// shardEntry is one pre-parsed unit of shard work. The dispatcher has
// already parsed the frame, extracted and oriented the flow key, and
// decided the direction, so the shard touches only its own flow table and
// resolver — no re-parse, no re-orient. Entries live in slot storage that
// is recycled on release, so a *shardEntry must never outlive the batch it
// was delivered in. The payload handle (pay/blk) is slab-adjacent: pay
// aliases blk's refcounted arena (or stable source storage when blk is
// nil), the dispatcher takes one block reference per appended entry, and
// releaseSlotBlocks returns them when the slot retires — so the bytes
// behind pay are valid for exactly as long as the entry itself.
//
//dnhunter:slab
type shardEntry struct {
	at  time.Duration
	key flows.Key // entryFlow/entryExpire: oriented flow key; entryDNS: ClientIP holds the attribution client (packet DstIP)
	// hash is the key's hash under the engine's shared seed
	// (entryFlow/entryExpire): computed once by the dispatcher's tracker,
	// consumed by the shard table via OrientedPacket.Hash / ExpireFlow.
	hash uint64
	// pay is the transport payload, aliasing blk's arena (or stable source
	// storage when blk is nil); nil when the entry carries no payload.
	pay []byte
	// blk is the refcounted block backing pay; the entry holds one
	// reference, released by releaseSlotBlocks when the slot retires.
	blk   *netio.Block
	kind  uint8
	c2s   bool // entryFlow: packet direction under key's orientation
	tcp   bool // entryFlow: transport is TCP
	flags layers.TCPFlags
}

// ringSlot is one batch in flight. Capacity is fixed at ring construction.
type ringSlot struct {
	entries []shardEntry
}

// releaseSlotBlocks returns every block reference the slot's entries hold,
// batching consecutive same-block runs into one atomic add (entries from
// one read block are adjacent, so a full slot usually costs a handful of
// adds, not one per entry). It also clears the handles so recycled slot
// storage never pins a block or a source buffer.
func releaseSlotBlocks(s *ringSlot) {
	var run *netio.Block
	var n int64
	for i := range s.entries {
		e := &s.entries[i]
		b := e.blk
		e.blk, e.pay = nil, nil
		if b != run {
			if run != nil {
				run.Release(n)
			}
			run, n = b, 0
		}
		n++
	}
	if run != nil {
		run.Release(n)
	}
}

// Spin budgets before parking. Each spin is a runtime.Gosched, which on a
// busy box hands the quantum straight to the peer goroutine — usually all
// that is needed. Parking beyond that keeps an idle ring from burning a
// core (a vantage stalled on the merge clock, a consumer waiting at EOF).
const (
	ringProducerSpins = 64
	ringConsumerSpins = 64
)

// cacheLinePad separates the producer- and consumer-owned indices so the
// two sides never invalidate each other's cache line.
type cacheLinePad [64]byte

// consGate is one consumer's park/wake state, shared by every ring that
// consumer drains (a shard parks once across its R reader rings; any of
// their producers wakes it). The usual set-flag/recheck/sleep protocol
// applies: the consumer stores parked, rechecks every ring, and only then
// sleeps, so a producer's wake is never lost.
type consGate struct {
	parked atomic.Bool
	wake   chan struct{}
}

func newConsGate() *consGate { return &consGate{wake: make(chan struct{}, 1)} }

// spscRing is the bounded single-producer/single-consumer slot ring.
// Exactly one goroutine may call producer methods (slot, publish, close)
// and exactly one may call consumer methods (tryConsume, release) — the
// consumer may be shared across rings via the consGate.
//
//dnhunter:hotatomic
type spscRing struct {
	slots []ringSlot
	mask  uint64

	_    cacheLinePad
	head atomic.Uint64 // slots published; advanced only by the producer
	_    cacheLinePad
	tail atomic.Uint64 // slots released; advanced only by the consumer
	_    cacheLinePad

	closed     atomic.Bool
	prodParked atomic.Bool
	prodWake   chan struct{}
	gate       *consGate

	// parks, when non-nil, counts producer park events (ring full past the
	// spin budget) — the per-reader backpressure gauge.
	parks *atomic.Uint64

	// acquired tracks whether the producer's current fill slot has been
	// claimed (waited free and reset). batch sizes slot storage on first
	// use. Producer-only state.
	acquired bool
	batch    int
}

// newRing builds a ring of `depth` slots (rounded up to a power of two),
// each holding up to batch entries, waking its consumer through gate. Slot
// storage is allocated on a slot's first use — a short trace that never
// wraps the ring only pays for the slots it touches — and recycled in
// place forever after.
func newRing(depth, batch int, gate *consGate) *spscRing {
	if depth < 2 {
		depth = 2
	}
	size := 1
	for size < depth {
		size <<= 1
	}
	return &spscRing{
		slots:    make([]ringSlot, size),
		mask:     uint64(size - 1),
		batch:    batch,
		prodWake: make(chan struct{}, 1),
		gate:     gate,
	}
}

// claim resets and acquires the fill slot at head position h. The caller
// has verified the slot is free (consumer released it).
func (r *spscRing) claim(h uint64) *ringSlot {
	s := &r.slots[h&r.mask]
	if s.entries == nil {
		//dnhunter:alloc-ok one-time lazy slot init; storage is recycled in place forever after
		s.entries = make([]shardEntry, 0, r.batch)
	}
	s.entries = s.entries[:0]
	r.acquired = true
	return s
}

// slot returns the producer's current fill slot, blocking until the
// consumer has freed it on wraparound. The slot is reset on first use
// after acquisition.
func (r *spscRing) slot() *ringSlot {
	h := r.head.Load()
	if !r.acquired {
		size := uint64(len(r.slots))
		for spins := 0; h-r.tail.Load() >= size; {
			if spins < ringProducerSpins {
				spins++
				runtime.Gosched()
				continue
			}
			if r.parks != nil {
				r.parks.Add(1)
			}
			r.prodParked.Store(true)
			if h-r.tail.Load() < size {
				r.prodParked.Store(false)
				break
			}
			<-r.prodWake
			r.prodParked.Store(false)
			spins = 0
		}
		return r.claim(h)
	}
	return &r.slots[h&r.mask]
}

// trySlot is slot without the wraparound wait: ok=false when the ring is
// full and no fill slot is currently acquired. The overload-shedding
// dispatch path uses it to drop instead of blocking the reader when a
// shard backs up.
func (r *spscRing) trySlot() (*ringSlot, bool) {
	h := r.head.Load()
	if !r.acquired {
		if h-r.tail.Load() >= uint64(len(r.slots)) {
			return nil, false
		}
		return r.claim(h), true
	}
	return &r.slots[h&r.mask], true
}

// depth reports the number of published-but-unreleased slots, 0 to
// len(slots). Safe to call from any goroutine (a metrics gauge): it
// touches only the atomic indices, not the producer-owned fill state.
func (r *spscRing) depth() int {
	return int(r.head.Load() - r.tail.Load())
}

// publish hands the current fill slot to the consumer. A no-op when the
// slot is empty or unacquired.
func (r *spscRing) publish() {
	if !r.acquired {
		return
	}
	if len(r.slots[r.head.Load()&r.mask].entries) == 0 {
		return
	}
	r.acquired = false
	r.head.Add(1)
	r.wakeConsumer()
}

// discardFill releases the unpublished fill slot's block references (the
// abort path: entries that will never reach a shard must still return
// their refs so blocks recycle).
func (r *spscRing) discardFill() {
	if !r.acquired {
		return
	}
	s := &r.slots[r.head.Load()&r.mask]
	releaseSlotBlocks(s)
	s.entries = s.entries[:0]
}

// close marks the stream finished (after a final publish) and wakes the
// consumer so it can observe the close. Producer side only.
func (r *spscRing) close() {
	r.closed.Store(true)
	r.wakeConsumer()
}

func (r *spscRing) wakeConsumer() {
	if r.gate.parked.Load() {
		select {
		case r.gate.wake <- struct{}{}:
		default:
		}
	}
}

// tryConsume returns the next published slot without blocking; ok=false
// when none is ready. The slot stays valid until release.
func (r *spscRing) tryConsume() (*ringSlot, bool) {
	t := r.tail.Load()
	if r.head.Load() > t {
		return &r.slots[t&r.mask], true
	}
	return nil, false
}

// drained reports a closed ring with no published slot left. The head
// re-load after observing the close matters: the producer's final publish
// happens before close, but a first head load may predate it.
func (r *spscRing) drained() bool {
	if !r.closed.Load() {
		return false
	}
	return r.head.Load() == r.tail.Load()
}

// ready reports that the consumer should rescan this ring: a published
// slot is waiting, or the ring closed (so the drain check can retire it).
func (r *spscRing) ready() bool {
	return r.head.Load() > r.tail.Load() || r.closed.Load()
}

// release returns the consumed slot to the producer. The caller has
// already returned the slot's block references (releaseSlotBlocks).
func (r *spscRing) release() {
	r.tail.Add(1)
	if r.prodParked.Load() {
		select {
		case r.prodWake <- struct{}{}:
		default:
		}
	}
}

// consume is the single-ring blocking drain (tests and simple consumers):
// it returns the next published slot, blocking until one is available, and
// ok=false once the ring is closed and drained.
func (r *spscRing) consume() (*ringSlot, bool) {
	for spins := 0; ; {
		if s, ok := r.tryConsume(); ok {
			return s, true
		}
		if r.drained() {
			return nil, false
		}
		if spins < ringConsumerSpins {
			spins++
			runtime.Gosched()
			continue
		}
		r.gate.parked.Store(true)
		if r.ready() {
			r.gate.parked.Store(false)
			continue
		}
		<-r.gate.wake
		r.gate.parked.Store(false)
		spins = 0
	}
}
